// Package workload generates the synthetic Grid service population and the
// canonical query mix used by the experiments — the substitution for the
// European DataGrid testbed population of the paper (see DESIGN.md). The
// generator is deterministic in its seed so every experiment is repeatable.
package workload
