package workload

import (
	"fmt"
	"math/rand"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
)

// Domains are the administrative domains of the synthetic Grid, patterned
// on the HEP collaborations of thesis Ch. 1.
var Domains = []string{
	"cern.ch", "infn.it", "ral.ac.uk", "in2p3.fr", "fnal.gov",
	"desy.de", "slac.stanford.edu", "kek.jp", "nikhef.nl", "triumf.ca",
}

// Kinds are the service kinds of the population with their interface mix.
var Kinds = []string{
	"replica-catalog", "job-scheduler", "storage-element",
	"compute-element", "file-transfer", "monitor",
}

// VOs are the virtual organizations services belong to.
var VOs = []string{"cms", "atlas", "alice", "lhcb"}

// Gen deterministically generates service tuples.
type Gen struct {
	rng *rand.Rand
}

// NewGen creates a generator.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Service generates the i-th synthetic service description. The index
// pins the identity (name, domain, kind); the generator's randomness fills
// in the dynamic attributes (load, uptime, capacities).
func (g *Gen) Service(i int) *wsda.Service {
	domain := Domains[i%len(Domains)]
	// The kind index mixes in i/len(Domains) so that every domain sees all
	// kinds as the population grows (a plain i%len(Kinds) would lock each
	// domain to same-parity kinds, making cross-kind same-domain joins
	// unsatisfiable).
	kind := Kinds[(i+i/len(Domains))%len(Kinds)]
	vo := VOs[i%len(VOs)]
	name := fmt.Sprintf("%s-%04d", kind, i)
	base := fmt.Sprintf("http://%s/%s", domain, name)

	b := wsda.NewService(name).
		Domain(domain).
		Owner(vo).
		Link(base+wsda.PathPresenter).
		Attr("kind", kind).
		Attr("vo", vo).
		Attr("load", fmt.Sprintf("%.2f", g.rng.Float64())).
		Attr("uptime", fmt.Sprintf("%d", g.rng.Intn(1_000_000))).
		Attr("diskGB", fmt.Sprintf("%d", 10+g.rng.Intn(10_000))).
		Attr("cpus", fmt.Sprintf("%d", 1<<g.rng.Intn(8))).
		Op(wsda.IfacePresenter, "getServiceDescription", base+wsda.PathPresenter)

	// Every service presents itself; richer interfaces depend on the kind.
	switch kind {
	case "replica-catalog", "monitor":
		b.Op(wsda.IfaceXQuery, "query", base+wsda.PathXQuery)
		b.Op(wsda.IfaceMinQuery, "minQuery", base+wsda.PathMinQuery)
		b.Op(wsda.IfaceConsumer, "publish", base+wsda.PathPublish)
	case "job-scheduler", "compute-element":
		b.Op("Execution", "submitJob", base+"/job")
		b.Op(wsda.IfaceMinQuery, "minQuery", base+wsda.PathMinQuery)
	case "storage-element", "file-transfer":
		b.Op("Transfer", "get", base+"/get")
		b.Op("Transfer", "put", base+"/put")
	}
	return b.Build()
}

// Tuple wraps the i-th service description in a registry tuple.
func (g *Gen) Tuple(i int) *tuple.Tuple {
	svc := g.Service(i)
	return &tuple.Tuple{
		Link:    svc.Link,
		Type:    tuple.TypeService,
		Context: "child",
		Owner:   svc.Owner,
		Content: svc.ToXML(),
	}
}

// Populate publishes n services into the registry with the given lifetime.
func (g *Gen) Populate(r *registry.Registry, n int, ttl time.Duration) error {
	for i := 0; i < n; i++ {
		if _, err := r.Publish(g.Tuple(i), ttl); err != nil {
			return fmt.Errorf("workload: publish %d: %w", i, err)
		}
	}
	return nil
}

// PopulateShard publishes the shard of services owned by node `node` out of
// `nodes` total, for distributing a population of n across a P2P cluster.
func (g *Gen) PopulateShard(r *registry.Registry, n, node, nodes int, ttl time.Duration) error {
	for i := 0; i < n; i++ {
		if i%nodes != node {
			continue
		}
		if _, err := r.Publish(g.Tuple(i), ttl); err != nil {
			return fmt.Errorf("workload: publish %d: %w", i, err)
		}
	}
	return nil
}

// QueryClass labels the three query classes of thesis Ch. 3.
type QueryClass string

// The query classes.
const (
	Simple  QueryClass = "simple"  // exact-match lookups
	Medium  QueryClass = "medium"  // predicates + navigation
	Complex QueryClass = "complex" // joins, aggregation, restructuring
)

// CanonicalQuery is one entry of the discovery query mix.
type CanonicalQuery struct {
	ID    string     // short identifier, e.g. "Q3"
	Class QueryClass // difficulty class of the query
	Prose string     // the thesis formulates queries in prose first
	XQ    string     // the XQuery formulation
	// KeyLookup reports whether a pure key-lookup system (DNS, Chord,
	// Gnutella) can answer it; LDAPFilter whether an LDAP-style attribute
	// filter can.
	KeyLookup  bool
	LDAPFilter bool // answerable by an LDAP-style attribute filter
}

// CanonicalQueries is the experiment E1 query mix: the simple/medium/
// complex discovery queries the thesis motivates in Ch. 3, formulated
// against the registry's /tupleset view.
var CanonicalQueries = []CanonicalQuery{
	{
		ID: "Q1", Class: Simple,
		Prose:     "Find the service with the given content link (key lookup).",
		XQ:        `/tupleset/tuple[@link="http://cern.ch/replica-catalog-0000/wsda/presenter"]`,
		KeyLookup: true, LDAPFilter: true,
	},
	{
		ID: "Q2", Class: Simple,
		Prose:      "Find all services in the domain cern.ch.",
		XQ:         `/tupleset/tuple/content/service[@domain="cern.ch"]`,
		LDAPFilter: true,
	},
	{
		ID: "Q3", Class: Simple,
		Prose:      "Find all replica catalogs.",
		XQ:         `/tupleset/tuple/content/service[attr[@name="kind"]/@value="replica-catalog"]`,
		LDAPFilter: true,
	},
	{
		ID: "Q4", Class: Medium,
		Prose:      "Find all services owned by VO cms with load below 0.5.",
		XQ:         `/tupleset/tuple/content/service[@owner="cms"][number(attr[@name="load"]/@value) < 0.5]`,
		LDAPFilter: true,
	},
	{
		ID: "Q5", Class: Medium,
		Prose: "Find services implementing the XQuery interface over HTTP.",
		XQ:    `/tupleset/tuple/content/service[interface[@type="XQuery"]/operation/bind/@protocol="http"]`,
	},
	{
		ID: "Q6", Class: Medium,
		Prose: "Find the names of the three least loaded compute elements.",
		XQ: `let $ce := /tupleset/tuple/content/service[attr[@name="kind"]/@value="compute-element"]
for $s at $i in (for $c in $ce order by number($c/attr[@name="load"]/@value) return $c)
where $i <= 3
return string($s/@name)`,
	},
	{
		ID: "Q7", Class: Medium,
		Prose: "Find storage elements with more than a terabyte of disk, sorted by free disk.",
		XQ: `for $s in /tupleset/tuple/content/service[attr[@name="kind"]/@value="storage-element"]
where number($s/attr[@name="diskGB"]/@value) > 1000
order by number($s/attr[@name="diskGB"]/@value) descending
return $s/@name`,
	},
	{
		ID: "Q8", Class: Complex,
		Prose: "For each domain, report how many services it runs and their average load.",
		XQ: `for $d in distinct-values(/tupleset/tuple/content/service/@domain)
let $svcs := /tupleset/tuple/content/service[@domain = $d]
order by $d
return <domain name="{$d}" services="{count($svcs)}"
  avgload="{avg(for $l in $svcs/attr[@name="load"]/@value return number($l))}"/>`,
	},
	{
		ID: "Q9", Class: Complex,
		Prose: "Correlate: find (scheduler, storage) pairs in the same domain where both are lightly loaded.",
		XQ: `for $j in /tupleset/tuple/content/service[attr[@name="kind"]/@value="job-scheduler"],
    $s in /tupleset/tuple/content/service[attr[@name="kind"]/@value="storage-element"]
where $j/@domain = $s/@domain
  and number($j/attr[@name="load"]/@value) < 0.3
  and number($s/attr[@name="load"]/@value) < 0.3
return <pair scheduler="{$j/@name}" storage="{$s/@name}" domain="{$j/@domain}"/>`,
	},
	{
		ID: "Q10", Class: Complex,
		Prose: "Summarize the total download capacity and participating organizations of the file-sharing services.",
		XQ: `let $xfer := /tupleset/tuple/content/service[attr[@name="kind"]/@value="file-transfer"]
return <summary services="{count($xfer)}"
  domains="{count(distinct-values($xfer/@domain))}"
  totalDiskGB="{sum(for $d in $xfer/attr[@name="diskGB"]/@value return number($d))}"/>`,
	},
}

// QueriesByClass returns the canonical queries of one class.
func QueriesByClass(c QueryClass) []CanonicalQuery {
	var out []CanonicalQuery
	for _, q := range CanonicalQueries {
		if q.Class == c {
			out = append(out, q)
		}
	}
	return out
}
