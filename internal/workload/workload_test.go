package workload

import (
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/wsda"
	"wsda/internal/xq"
)

func TestGenDeterministic(t *testing.T) {
	g1, g2 := NewGen(7), NewGen(7)
	for i := 0; i < 20; i++ {
		a, b := g1.Service(i), g2.Service(i)
		if a.String() != b.String() {
			t.Fatalf("service %d differs between same-seed generators", i)
		}
	}
	g3 := NewGen(8)
	diff := false
	for i := 0; i < 20; i++ {
		if NewGen(7).Service(i).String() != g3.Service(i).String() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical populations")
	}
}

func TestServiceShape(t *testing.T) {
	g := NewGen(1)
	s := g.Service(0) // kind = replica-catalog, domain = cern.ch
	if s.Domain != "cern.ch" {
		t.Errorf("domain = %q", s.Domain)
	}
	if s.Attributes["kind"] != "replica-catalog" {
		t.Errorf("kind = %q", s.Attributes["kind"])
	}
	if !s.Implements(wsda.IfacePresenter, wsda.IfaceXQuery) {
		t.Error("replica catalog must present and answer XQueries")
	}
	// Round-trips through SWSDL.
	got, err := wsda.ParseService(s.String())
	if err != nil || got.Name != s.Name {
		t.Errorf("round trip: %v %v", got, err)
	}
	ce := g.Service(3) // compute-element
	if ce.Attributes["kind"] != "compute-element" {
		t.Fatalf("kind = %q", ce.Attributes["kind"])
	}
	if !ce.Matches(wsda.MatchSpec{Interface: "Execution", Operation: "submitJob"}) {
		t.Error("compute element must offer job submission")
	}
}

func TestPopulateAndCanonicalQueries(t *testing.T) {
	r := registry.New(registry.Config{Name: "wl"})
	g := NewGen(42)
	if err := g.Populate(r, 120, time.Hour); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 120 {
		t.Fatalf("len = %d", r.Len())
	}
	for _, cq := range CanonicalQueries {
		seq, err := r.Query(cq.XQ, registry.QueryOptions{})
		if err != nil {
			t.Errorf("%s failed: %v", cq.ID, err)
			continue
		}
		// Every canonical query must produce something on a 120-service
		// population except possibly the correlation query Q9.
		if len(seq) == 0 && cq.ID != "Q9" && cq.ID != "Q1" {
			t.Errorf("%s returned nothing", cq.ID)
		}
		_ = seq
	}
	// Q1 with a link present in the population.
	link := g.Tuple(0).Link
	seq, err := r.Query(`/tupleset/tuple[@link="`+link+`"]`, registry.QueryOptions{})
	if err != nil || len(seq) != 1 {
		t.Errorf("key lookup: %d %v", len(seq), err)
	}
	// Q8 returns one element per domain.
	seq, err = r.Query(CanonicalQueries[7].XQ, registry.QueryOptions{})
	if err != nil || len(seq) != len(Domains) {
		t.Errorf("Q8 domains = %d, want %d (%v)", len(seq), len(Domains), err)
	}
	_ = xq.Serialize(seq)
}

func TestPopulateShard(t *testing.T) {
	g := NewGen(1)
	total := 0
	for node := 0; node < 4; node++ {
		r := registry.New(registry.Config{Name: "shard"})
		if err := NewGen(1).PopulateShard(r, 100, node, 4, time.Hour); err != nil {
			t.Fatal(err)
		}
		total += r.Len()
	}
	if total != 100 {
		t.Errorf("shards sum to %d, want 100", total)
	}
	_ = g
}

func TestQueriesByClass(t *testing.T) {
	s, m, c := QueriesByClass(Simple), QueriesByClass(Medium), QueriesByClass(Complex)
	if len(s)+len(m)+len(c) != len(CanonicalQueries) {
		t.Error("classes do not partition the mix")
	}
	if len(s) == 0 || len(m) == 0 || len(c) == 0 {
		t.Error("every class must be populated")
	}
}
