package provider

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/wsda"
)

// Config configures a Provider.
type Config struct {
	// Name identifies the provider in logs and tuple ownership.
	Name string
	// Registries are the publication targets (WSDA Consumer primitives).
	Registries []wsda.Consumer
	// TTL is the requested tuple lifetime. Zero means 2*Period.
	TTL time.Duration
	// Period is the refresh interval. Zero means 30s. It should be well
	// under TTL; the classic operating point is TTL = 2..4 × Period.
	Period time.Duration
	// Jitter randomizes each refresh by ±Jitter to avoid thundering herds
	// against the registry. Zero disables.
	Jitter time.Duration
	// OnError observes publication failures (nil ignores them; soft state
	// makes sporadic failures harmless as long as one refresh per TTL
	// succeeds).
	OnError func(registry int, err error)
	// Now is the clock; nil means time.Now.
	Now func() time.Time
	// Seed seeds the jitter RNG (0 uses a fixed default).
	Seed int64
}

// Provider keeps a set of tuples alive in remote registries.
type Provider struct {
	cfg Config

	mu      sync.Mutex
	tuples  map[string]*tuple.Tuple // by content link
	stopped chan struct{}
	done    chan struct{}
	running bool
	rng     *rand.Rand

	refreshes, failures int
}

// New creates a provider. At least one registry is required.
func New(cfg Config) (*Provider, error) {
	if len(cfg.Registries) == 0 {
		return nil, fmt.Errorf("provider: needs at least one registry")
	}
	if cfg.Period == 0 {
		cfg.Period = 30 * time.Second
	}
	if cfg.TTL == 0 {
		cfg.TTL = 2 * cfg.Period
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Provider{
		cfg:    cfg,
		tuples: make(map[string]*tuple.Tuple),
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Offer adds (or replaces) a tuple in the provider's advertised set and
// publishes it immediately.
func (p *Provider) Offer(t *tuple.Tuple) error {
	if t.Owner == "" {
		t.Owner = p.cfg.Name
	}
	p.mu.Lock()
	p.tuples[t.Link] = t
	p.mu.Unlock()
	return p.publishOne(t)
}

// Withdraw removes a tuple from the advertised set and unpublishes it
// explicitly (faster than waiting for expiry).
func (p *Provider) Withdraw(link string) {
	p.mu.Lock()
	delete(p.tuples, link)
	p.mu.Unlock()
	for i, r := range p.cfg.Registries {
		if err := r.Unpublish(link); err != nil && p.cfg.OnError != nil {
			p.cfg.OnError(i, err)
		}
	}
}

// Links returns the advertised content links.
func (p *Provider) Links() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.tuples))
	for l := range p.tuples {
		out = append(out, l)
	}
	return out
}

// RefreshNow re-publishes every advertised tuple once (heartbeat round).
// It returns the number of successful publications.
func (p *Provider) RefreshNow() int {
	p.mu.Lock()
	snapshot := make([]*tuple.Tuple, 0, len(p.tuples))
	for _, t := range p.tuples {
		snapshot = append(snapshot, t)
	}
	p.mu.Unlock()
	ok := 0
	for _, t := range snapshot {
		if err := p.publishOne(t); err == nil {
			ok++
		}
	}
	p.mu.Lock()
	p.refreshes++
	p.mu.Unlock()
	return ok
}

// publishOne publishes a heartbeat for one tuple to every registry.
// Content is sent along so registries can refresh their caches (push
// model); a heartbeat-only variant would omit it.
func (p *Provider) publishOne(t *tuple.Tuple) error {
	var firstErr error
	for i, r := range p.cfg.Registries {
		if _, err := r.Publish(t, p.cfg.TTL); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			p.mu.Lock()
			p.failures++
			p.mu.Unlock()
			if p.cfg.OnError != nil {
				p.cfg.OnError(i, err)
			}
		}
	}
	return firstErr
}

// Start launches the heartbeat loop. It is an error to start twice.
func (p *Provider) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return fmt.Errorf("provider %s: already running", p.cfg.Name)
	}
	p.running = true
	p.stopped = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stopped, p.done)
	return nil
}

// Stop halts the heartbeat loop. Tuples are left to expire on their own —
// exactly what happens when a provider crashes.
func (p *Provider) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	stopped, done := p.stopped, p.done
	p.mu.Unlock()
	close(stopped)
	<-done
}

// Stats returns heartbeat round and failure counts.
func (p *Provider) Stats() (refreshRounds, failures int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshes, p.failures
}

func (p *Provider) loop(stopped <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		d := p.cfg.Period
		if j := p.cfg.Jitter; j > 0 {
			p.mu.Lock()
			d += time.Duration(p.rng.Int63n(int64(2*j))) - j
			p.mu.Unlock()
			if d <= 0 {
				d = time.Millisecond
			}
		}
		select {
		case <-time.After(d):
			p.RefreshNow()
		case <-stopped:
			return
		}
	}
}
