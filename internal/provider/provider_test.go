package provider

import (
	"fmt"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
)

func newNode(name string) *wsda.LocalNode {
	return &wsda.LocalNode{
		Desc:     wsda.NewService(name).Build(),
		Registry: registry.New(registry.Config{Name: name, DefaultTTL: time.Minute, MinTTL: time.Millisecond}),
	}
}

func testTuple(i int) *tuple.Tuple {
	return &tuple.Tuple{
		Link:    fmt.Sprintf("http://prov/x%d", i),
		Type:    tuple.TypeService,
		Content: xmldoc.MustParse(fmt.Sprintf(`<service name="x%d"/>`, i)).DocumentElement().Clone(),
	}
}

func TestOfferPublishesEverywhere(t *testing.T) {
	n1, n2 := newNode("r1"), newNode("r2")
	p, err := New(Config{Name: "prov", Registries: []wsda.Consumer{n1, n2}, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Offer(testTuple(1)); err != nil {
		t.Fatal(err)
	}
	if n1.Registry.Len() != 1 || n2.Registry.Len() != 1 {
		t.Errorf("lens = %d, %d", n1.Registry.Len(), n2.Registry.Len())
	}
	got, _ := n1.Registry.Get("http://prov/x1")
	if got.Owner != "prov" {
		t.Errorf("owner = %q", got.Owner)
	}
	if len(p.Links()) != 1 {
		t.Errorf("links = %v", p.Links())
	}
}

func TestWithdraw(t *testing.T) {
	n := newNode("r")
	p, _ := New(Config{Name: "prov", Registries: []wsda.Consumer{n}, Period: time.Hour})
	p.Offer(testTuple(1)) //nolint:errcheck
	p.Withdraw("http://prov/x1")
	if n.Registry.Len() != 0 {
		t.Error("withdraw did not unpublish")
	}
	if len(p.Links()) != 0 {
		t.Error("link still advertised")
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	n := newNode("r")
	p, _ := New(Config{
		Name: "prov", Registries: []wsda.Consumer{n},
		Period: 10 * time.Millisecond, TTL: 50 * time.Millisecond,
	})
	p.Offer(testTuple(1)) //nolint:errcheck
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Error("double start accepted")
	}
	time.Sleep(150 * time.Millisecond)
	if n.Registry.Len() != 1 {
		t.Error("tuple expired despite heartbeats")
	}
	// Crash the provider: the tuple must vanish within one TTL.
	p.Stop()
	time.Sleep(80 * time.Millisecond)
	if n.Registry.Len() != 0 {
		t.Error("tuple survived provider death")
	}
	rounds, failures := p.Stats()
	if rounds == 0 {
		t.Error("no refresh rounds recorded")
	}
	if failures != 0 {
		t.Errorf("failures = %d", failures)
	}
	p.Stop() // idempotent
}

// failingConsumer rejects every publish.
type failingConsumer struct{}

func (failingConsumer) Publish(*tuple.Tuple, time.Duration) (time.Duration, error) {
	return 0, fmt.Errorf("registry down")
}
func (failingConsumer) Unpublish(string) error { return fmt.Errorf("registry down") }

func TestPartialRegistryFailure(t *testing.T) {
	good := newNode("good")
	var errs int
	p, _ := New(Config{
		Name:       "prov",
		Registries: []wsda.Consumer{failingConsumer{}, good},
		Period:     time.Hour,
		OnError:    func(i int, err error) { errs++ },
	})
	if err := p.Offer(testTuple(1)); err == nil {
		t.Error("failure not reported")
	}
	// The healthy registry still got the tuple.
	if good.Registry.Len() != 1 {
		t.Error("good registry missed the publish")
	}
	if errs != 1 {
		t.Errorf("OnError calls = %d", errs)
	}
	if _, failures := p.Stats(); failures != 1 {
		t.Errorf("failures = %d", failures)
	}
}

func TestRefreshNowCount(t *testing.T) {
	n := newNode("r")
	p, _ := New(Config{Name: "prov", Registries: []wsda.Consumer{n}, Period: time.Hour})
	for i := 0; i < 5; i++ {
		p.Offer(testTuple(i)) //nolint:errcheck
	}
	if ok := p.RefreshNow(); ok != 5 {
		t.Errorf("refreshed %d, want 5", ok)
	}
	st := n.Registry.Stats()
	if st.Publishes != 5 || st.Refreshes != 5 {
		t.Errorf("registry stats = %+v", st)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no registries accepted")
	}
}

func TestJitterBounds(t *testing.T) {
	n := newNode("r")
	p, _ := New(Config{
		Name: "prov", Registries: []wsda.Consumer{n},
		Period: 5 * time.Millisecond, Jitter: 4 * time.Millisecond,
		TTL: time.Minute, Seed: 99,
	})
	p.Offer(testTuple(1)) //nolint:errcheck
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	p.Stop()
	rounds, _ := p.Stats()
	if rounds < 3 {
		t.Errorf("rounds = %d, want several despite jitter", rounds)
	}
}
