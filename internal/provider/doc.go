// Package provider implements the content-provider side of the hybrid
// pull/push model (thesis Ch. 4.2): a provider owns a set of content links,
// publishes their tuples into one or more registries under soft-state
// lifetimes, and keeps them alive with periodic heartbeat refreshes. When
// the provider stops (crash, shutdown, network partition), its tuples
// silently expire everywhere — no distributed cleanup protocol needed.
//
// Publication and refresh go through the internal/wsda Consumer
// primitive, so a provider can feed a local registry or a remote HTTP
// node interchangeably.
package provider
