// Package changefeed turns the registry's soft-state change journal into a
// network-consumable replication stream and runs read-only registry
// replicas off it.
//
// The thesis's soft-state argument (Ch. 2.6, 4.6) is what makes this safe:
// replicated tuples carry the remainder of their original lifetime, so a
// replica that falls behind — or keeps serving after its primary dies —
// degrades gracefully into staleness and then silence as its copies
// expire, instead of serving confidently wrong state forever. Related
// discovery systems (MIND, the WebContent XML Store; see PAPERS.md) make
// exactly this replication step the availability backbone of discovery.
//
// The protocol has two endpoints, mounted by Server:
//
//	GET /wsda/snapshot
//	    Full bootstrap: the registry's <snapshot> document stamped with
//	    the store generation (gen attribute) it atomically corresponds
//	    to, plus the X-Wsda-Epoch response header identifying the server
//	    incarnation.
//
//	GET /wsda/feed?since=CURSOR&wait-ms=N
//	    Deltas after generation CURSOR as a <changes from To> document of
//	    <change> elements (full tuple state, or deleted="true"). With
//	    wait-ms the request long-polls until a change arrives or the wait
//	    elapses. truncated="true" tells the client its cursor fell off
//	    the bounded journal and it must re-bootstrap from snapshot.
//
// Replica composes the client side: snapshot bootstrap, cursor-resumed
// tailing, exponential backoff with jitter across primary outages, epoch
// detection across primary restarts, and automatic re-bootstrap after
// journal truncation. Applied deltas land in an ordinary
// registry.Registry, so the incremental view machinery answers queries on
// the replica exactly as on the primary.
package changefeed

import (
	"fmt"
	"strconv"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// HTTP binding paths for the replication endpoints.
const (
	PathFeed     = "/wsda/feed"
	PathSnapshot = "/wsda/snapshot"
)

// EpochHeader carries the server incarnation ID on both endpoints. A
// replica that observes a new epoch re-bootstraps: a restarted primary has
// a fresh generation counter, so cursors from the previous incarnation are
// meaningless.
const EpochHeader = "X-Wsda-Epoch"

// page is one feed response: the cursor window it covers and the changes
// inside it, or a truncation notice.
type page struct {
	Epoch     string
	From, To  uint64
	Truncated bool
	Changes   []registry.Change
}

// marshalPage renders a feed response document.
func marshalPage(p page) *xmldoc.Node {
	root := xmldoc.NewElement("changes")
	root.SetAttr("epoch", p.Epoch)
	root.SetAttr("from", strconv.FormatUint(p.From, 10))
	root.SetAttr("to", strconv.FormatUint(p.To, 10))
	if p.Truncated {
		root.SetAttr("truncated", "true")
	}
	for _, c := range p.Changes {
		el := xmldoc.NewElement("change")
		el.SetAttr("key", c.Key)
		if c.Tuple == nil {
			el.SetAttr("deleted", "true")
		} else {
			el.AppendChild(c.Tuple.ToXML())
		}
		root.AppendChild(el)
	}
	root.Renumber()
	return root
}

// unmarshalPage parses a feed response document.
func unmarshalPage(doc *xmldoc.Node) (page, error) {
	root := doc
	if root.Kind == xmldoc.DocumentNode {
		root = root.DocumentElement()
	}
	if root == nil || root.LocalName() != "changes" {
		return page{}, fmt.Errorf("changefeed: expected <changes> element")
	}
	var p page
	p.Epoch, _ = root.Attr("epoch")
	var err error
	if p.From, err = genAttr(root, "from"); err != nil {
		return page{}, err
	}
	if p.To, err = genAttr(root, "to"); err != nil {
		return page{}, err
	}
	if s, _ := root.Attr("truncated"); s == "true" {
		p.Truncated = true
	}
	for _, el := range root.ChildElements() {
		if el.LocalName() != "change" {
			continue
		}
		key, ok := el.Attr("key")
		if !ok {
			return page{}, fmt.Errorf("changefeed: <change> missing key")
		}
		c := registry.Change{Key: key}
		if del, _ := el.Attr("deleted"); del != "true" {
			tupleEl := el.FirstChildElement("tuple")
			if tupleEl == nil {
				return page{}, fmt.Errorf("changefeed: live <change %s> missing <tuple>", key)
			}
			t, err := tuple.FromXML(tupleEl)
			if err != nil {
				return page{}, fmt.Errorf("changefeed: %w", err)
			}
			c.Tuple = t
		}
		p.Changes = append(p.Changes, c)
	}
	return p, nil
}

func genAttr(el *xmldoc.Node, name string) (uint64, error) {
	s, ok := el.Attr(name)
	if !ok {
		return 0, fmt.Errorf("changefeed: <%s> missing %s attribute", el.LocalName(), name)
	}
	g, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("changefeed: bad %s=%q", name, s)
	}
	return g, nil
}
