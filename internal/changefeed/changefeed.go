package changefeed

import (
	"fmt"
	"strconv"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// HTTP binding paths for the replication endpoints.
const (
	PathFeed     = "/wsda/feed"
	PathSnapshot = "/wsda/snapshot"
)

// EpochHeader carries the server incarnation ID on both endpoints. A
// replica that observes a new epoch re-bootstraps: a restarted primary has
// a fresh generation counter, so cursors from the previous incarnation are
// meaningless.
const EpochHeader = "X-Wsda-Epoch"

// page is one feed response: the cursor window it covers and the changes
// inside it, or a truncation notice.
type page struct {
	Epoch     string
	From, To  uint64
	Truncated bool
	Changes   []registry.Change
}

// marshalPage renders a feed response document.
func marshalPage(p page) *xmldoc.Node {
	root := xmldoc.NewElement("changes")
	root.SetAttr("epoch", p.Epoch)
	root.SetAttr("from", strconv.FormatUint(p.From, 10))
	root.SetAttr("to", strconv.FormatUint(p.To, 10))
	if p.Truncated {
		root.SetAttr("truncated", "true")
	}
	for _, c := range p.Changes {
		el := xmldoc.NewElement("change")
		el.SetAttr("key", c.Key)
		if c.Tuple == nil {
			el.SetAttr("deleted", "true")
		} else {
			el.AppendChild(c.Tuple.ToXML())
		}
		root.AppendChild(el)
	}
	root.Renumber()
	return root
}

// unmarshalPage parses a feed response document.
func unmarshalPage(doc *xmldoc.Node) (page, error) {
	root := doc
	if root.Kind == xmldoc.DocumentNode {
		root = root.DocumentElement()
	}
	if root == nil || root.LocalName() != "changes" {
		return page{}, fmt.Errorf("changefeed: expected <changes> element")
	}
	var p page
	p.Epoch, _ = root.Attr("epoch")
	var err error
	if p.From, err = genAttr(root, "from"); err != nil {
		return page{}, err
	}
	if p.To, err = genAttr(root, "to"); err != nil {
		return page{}, err
	}
	if s, _ := root.Attr("truncated"); s == "true" {
		p.Truncated = true
	}
	for _, el := range root.ChildElements() {
		if el.LocalName() != "change" {
			continue
		}
		key, ok := el.Attr("key")
		if !ok {
			return page{}, fmt.Errorf("changefeed: <change> missing key")
		}
		c := registry.Change{Key: key}
		if del, _ := el.Attr("deleted"); del != "true" {
			tupleEl := el.FirstChildElement("tuple")
			if tupleEl == nil {
				return page{}, fmt.Errorf("changefeed: live <change %s> missing <tuple>", key)
			}
			t, err := tuple.FromXML(tupleEl)
			if err != nil {
				return page{}, fmt.Errorf("changefeed: %w", err)
			}
			c.Tuple = t
		}
		p.Changes = append(p.Changes, c)
	}
	return p, nil
}

func genAttr(el *xmldoc.Node, name string) (uint64, error) {
	s, ok := el.Attr(name)
	if !ok {
		return 0, fmt.Errorf("changefeed: <%s> missing %s attribute", el.LocalName(), name)
	}
	g, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("changefeed: bad %s=%q", name, s)
	}
	return g, nil
}
