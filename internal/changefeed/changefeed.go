package changefeed

import (
	"fmt"
	"strconv"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// HTTP binding paths for the replication endpoints.
const (
	PathFeed     = "/wsda/feed"
	PathSnapshot = "/wsda/snapshot"
)

// EpochHeader carries the server incarnation ID on both endpoints. A
// replica that observes a new epoch re-bootstraps: a restarted primary has
// a fresh generation counter, so cursors from the previous incarnation are
// meaningless.
const EpochHeader = "X-Wsda-Epoch"

// Page is one feed response: the cursor window it covers and the changes
// inside it, or a truncation notice. Exported so feed consumers beyond the
// Replica — the client SDK's cache tailer — parse responses with the same
// code the server writes them with.
type Page struct {
	// Epoch is the serving incarnation; a new value invalidates cursors.
	Epoch string
	// From and To delimit the generation window this page covers; readers
	// advance their cursor to To after applying it.
	From, To uint64
	// Truncated means the requested cursor fell off the bounded journal:
	// the reader must resynchronize (snapshot bootstrap, or cache drop).
	Truncated bool
	// Changes are the window's mutations, oldest first, full state per key.
	Changes []registry.Change
}

// MarshalPage renders a feed response document.
func MarshalPage(p Page) *xmldoc.Node {
	root := xmldoc.NewElement("changes")
	root.SetAttr("epoch", p.Epoch)
	root.SetAttr("from", strconv.FormatUint(p.From, 10))
	root.SetAttr("to", strconv.FormatUint(p.To, 10))
	if p.Truncated {
		root.SetAttr("truncated", "true")
	}
	for _, c := range p.Changes {
		el := xmldoc.NewElement("change")
		el.SetAttr("key", c.Key)
		if c.Tuple == nil {
			el.SetAttr("deleted", "true")
		} else {
			el.AppendChild(c.Tuple.ToXML())
		}
		root.AppendChild(el)
	}
	root.Renumber()
	return root
}

// UnmarshalPage parses a feed response document.
func UnmarshalPage(doc *xmldoc.Node) (Page, error) {
	root := doc
	if root.Kind == xmldoc.DocumentNode {
		root = root.DocumentElement()
	}
	if root == nil || root.LocalName() != "changes" {
		return Page{}, fmt.Errorf("changefeed: expected <changes> element")
	}
	var p Page
	p.Epoch, _ = root.Attr("epoch")
	var err error
	if p.From, err = genAttr(root, "from"); err != nil {
		return Page{}, err
	}
	if p.To, err = genAttr(root, "to"); err != nil {
		return Page{}, err
	}
	if s, _ := root.Attr("truncated"); s == "true" {
		p.Truncated = true
	}
	for _, el := range root.ChildElements() {
		if el.LocalName() != "change" {
			continue
		}
		key, ok := el.Attr("key")
		if !ok {
			return Page{}, fmt.Errorf("changefeed: <change> missing key")
		}
		c := registry.Change{Key: key}
		if del, _ := el.Attr("deleted"); del != "true" {
			tupleEl := el.FirstChildElement("tuple")
			if tupleEl == nil {
				return Page{}, fmt.Errorf("changefeed: live <change %s> missing <tuple>", key)
			}
			t, err := tuple.FromXML(tupleEl)
			if err != nil {
				return Page{}, fmt.Errorf("changefeed: %w", err)
			}
			c.Tuple = t
		}
		p.Changes = append(p.Changes, c)
	}
	return p, nil
}

func genAttr(el *xmldoc.Node, name string) (uint64, error) {
	s, ok := el.Attr(name)
	if !ok {
		return 0, fmt.Errorf("changefeed: <%s> missing %s attribute", el.LocalName(), name)
	}
	g, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("changefeed: bad %s=%q", name, s)
	}
	return g, nil
}
