package changefeed

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"wsda/internal/registry"
)

// startPrimary binds addr (or an ephemeral port when addr is empty), mounts
// a fresh feed Server for reg on it, and returns the bound address plus a
// shutdown func. Rebinding a just-closed address is retried briefly.
func startPrimary(t *testing.T, addr string, reg *registry.Registry) (string, func()) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	NewServer(reg).Mount(mux)
	srv := &http.Server{Handler: mux}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), func() { srv.Close() }
}

// firstDiff reports the first line on which two line-oriented strings
// disagree, for readable divergence failures.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\nreplica: %s\nprimary: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicaSurvivesPrimaryRestart is the end-to-end failover scenario:
// a replica bootstraps from snapshot, tails over 1000 journaled mutations
// live, the primary is killed mid-stream and restarted (from its own
// snapshot) on the same address, and the replica detects the new epoch,
// re-bootstraps, and reconverges to lag 0 with a byte-exact copy of the
// primary's live tuple set.
func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	prim := newReg("prim", 0)
	for i := 0; i < 10; i++ {
		if _, err := prim.Publish(testTuple(fmt.Sprintf("seed%d", i)), time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	addr, stop := startPrimary(t, "", prim)

	rep := New(Config{
		Primary:      "http://" + addr,
		Registry:     newReg("rep", 0),
		LongPollWait: 200 * time.Millisecond,
		PollInterval: 2 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep.Run(ctx) //nolint:errcheck
	}()

	waitFor(t, "initial bootstrap", func() bool {
		st := rep.Stats()
		return st.Bootstraps >= 1 && st.Lag == 0
	})

	mutate := func(r *registry.Registry, lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if _, err := r.Publish(testTuple(fmt.Sprintf("svc%04d", i)), time.Hour); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
			if i%7 == 0 { // sprinkle deletions through the stream
				r.Unpublish(fmt.Sprintf("http://cern.ch/svc%04d", i))
			}
		}
	}

	// Phase 1: ~680 journaled mutations tailed live over the feed.
	mutate(prim, 0, 600)
	// Lag is computed against the last *observed* primary generation, so
	// catch-up waits compare the cursor against the primary's live counter.
	waitFor(t, "phase 1 tail", func() bool { return rep.Stats().Cursor >= prim.Gen() })
	if got, want := tupleSetString(t, rep.cfg.Registry), tupleSetString(t, prim); got != want {
		t.Fatalf("replica diverged during phase 1:\nreplica %d bytes, primary %d bytes\nfirst diff:\n%s",
			len(got), len(want), firstDiff(got, want))
	}

	// Kill the primary mid-stream, preserving its state via snapshot —
	// the durability story a real deployment would use.
	var snap bytes.Buffer
	if _, err := prim.SnapshotWithGen(&snap); err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart on the same address: a fresh registry restored from the
	// snapshot, served by a fresh Server incarnation (new epoch, new
	// generation counter). Services retired while the replica is cut off
	// never appear in the restarted journal — only re-bootstrap
	// reconciliation can drop them from the replica.
	prim2 := newReg("prim2", 0)
	if _, _, err := prim2.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i += 2 {
		prim2.Unpublish(fmt.Sprintf("http://cern.ch/svc%04d", i))
	}
	startPrimary(t, addr, prim2)

	waitFor(t, "post-restart re-bootstrap", func() bool {
		st := rep.Stats()
		return st.Bootstraps >= 2 && st.Cursor >= prim2.Gen()
	})

	// Phase 2: another ~680 journaled mutations tailed live, bringing the
	// total tailed over the feed past 1000.
	mutate(prim2, 600, 1200)
	waitFor(t, "phase 2 tail", func() bool {
		return rep.Stats().Cursor >= prim2.Gen() && rep.Lag() == 0
	})
	if got, want := tupleSetString(t, rep.cfg.Registry), tupleSetString(t, prim2); got != want {
		t.Fatalf("replica diverged after restart:\nreplica %d bytes, primary %d bytes\nfirst diff:\n%s",
			len(got), len(want), firstDiff(got, want))
	}

	st := rep.Stats()
	if st.Bootstraps < 2 {
		t.Fatalf("bootstraps = %d, want >= 2 (initial + post-restart)", st.Bootstraps)
	}
	if st.Applied < 1000 {
		t.Fatalf("applied = %d deltas tailed live, want >= 1000", st.Applied)
	}
	for i := 1; i < 20; i += 2 {
		if _, ok := rep.cfg.Registry.Get(fmt.Sprintf("http://cern.ch/svc%04d", i)); ok {
			t.Fatalf("svc%04d was retired during the outage but survived on the replica", i)
		}
	}

	// No stale results: a filtered query through the cached-view machinery
	// answers identically on primary and replica.
	f := registry.Filter{LinkPrefix: "http://cern.ch/svc00"}
	if pn, rn := len(prim2.MinQuery(f)), len(rep.cfg.Registry.MinQuery(f)); pn != rn {
		t.Fatalf("filtered query disagrees: primary %d, replica %d", pn, rn)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replica Run did not stop on cancel")
	}
}
