package changefeed

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// A 401 from the primary is a fatal configuration error, not a transient
// outage: it must be counted separately, surface on Status(), and be
// logged at error exactly once per outage — then clear once the primary
// accepts us again.
func TestReplicaAuthRejectionIsFatalConfig(t *testing.T) {
	prim := newReg("primary", 64)
	srv := NewServer(prim)
	mux := http.NewServeMux()
	srv.Mount(mux)

	var reject atomic.Bool
	reject.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reject.Load() {
			http.Error(w, "who are you", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	rep := New(Config{
		Primary:  ts.URL,
		Registry: newReg("replica", 64),
		Log:      slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := rep.Step(ctx); err == nil {
			t.Fatal("step against a 401 primary succeeded")
		} else if !isAuthError(err) {
			t.Fatalf("err = %v, not classified as auth", err)
		}
	}

	st := rep.Status()
	if st.FatalConfig == "" {
		t.Error("Status().FatalConfig empty after 401s")
	}
	if !strings.Contains(st.FatalConfig, "401") {
		t.Errorf("FatalConfig = %q, want the status code in it", st.FatalConfig)
	}
	if got := rep.authFailures.Load(); got != 3 {
		t.Errorf("authFailures = %d, want 3", got)
	}
	if got := strings.Count(logBuf.String(), "rejected replica as unauthorized"); got != 1 {
		t.Errorf("error logged %d times across one outage, want exactly once:\n%s", got, logBuf.String())
	}

	// Fix the "tenants file": the next round must clear the flag.
	reject.Store(false)
	if _, err := rep.Step(ctx); err != nil {
		t.Fatalf("step after auth fix: %v", err)
	}
	if st := rep.Status(); st.FatalConfig != "" {
		t.Errorf("FatalConfig = %q after recovery, want empty", st.FatalConfig)
	}
	if !strings.Contains(logBuf.String(), "accepted replica auth again") {
		t.Error("recovery not logged")
	}

	// A second outage logs again (once): the log-once latch is per outage,
	// not per process.
	reject.Store(true)
	if _, err := rep.Step(ctx); err == nil {
		t.Fatal("step against re-enabled 401 succeeded")
	}
	if got := strings.Count(logBuf.String(), "rejected replica as unauthorized"); got != 2 {
		t.Errorf("second outage: error log count = %d, want 2", got)
	}
}

// A plain outage (network error, 5xx) must NOT raise the fatal-config
// flag, and must not clear one already raised — a rejected replica whose
// primary then goes down is still misconfigured.
func TestReplicaAuthFlagUntouchedByOutages(t *testing.T) {
	var mode atomic.Int32 // 0 = 401, 1 = 503
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			http.Error(w, "no", http.StatusUnauthorized)
		} else {
			http.Error(w, "down", http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	rep := New(Config{Primary: ts.URL, Registry: newReg("replica", 64)})
	ctx := context.Background()

	if _, err := rep.Step(ctx); err == nil {
		t.Fatal("want 401 error")
	}
	if rep.Status().FatalConfig == "" {
		t.Fatal("flag not raised by 401")
	}
	mode.Store(1)
	if _, err := rep.Step(ctx); err == nil {
		t.Fatal("want 503 error")
	}
	if rep.Status().FatalConfig == "" {
		t.Error("a 503 cleared the fatal-config flag; only success may")
	}
	if got := rep.authFailures.Load(); got != 1 {
		t.Errorf("authFailures = %d, want 1 (the 503 is not an auth failure)", got)
	}
}
