package changefeed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// Config configures a Replica.
type Config struct {
	// Primary is the base URL of the primary node (scheme://host:port);
	// the replica appends the changefeed binding paths.
	Primary string

	// Registry is the local registry replicated state is applied into. It
	// should be dedicated to the replica: local writers would race the
	// feed.
	Registry *registry.Registry

	// HTTP is the client used against the primary; nil builds one whose
	// timeout comfortably exceeds the long-poll wait.
	HTTP *http.Client

	// LongPollWait is the wait-ms hint sent with feed requests; the
	// primary holds the request until a change arrives or the wait
	// elapses. 0 disables long-polling (plain polling every
	// PollInterval).
	LongPollWait time.Duration

	// PollInterval spaces feed requests when long-polling is disabled or
	// a poll came back empty. Defaults to 100ms.
	PollInterval time.Duration

	// BackoffMin and BackoffMax bound the exponential backoff (with
	// jitter) applied after feed or bootstrap failures. Defaults: 100ms
	// and 10s.
	BackoffMin, BackoffMax time.Duration

	// Filter, when set, restricts replication to the keys it accepts: only
	// matching snapshot tuples and feed changes are applied, and bootstrap
	// delete-reconciliation only touches matching local keys. This is the
	// key-range hook shard rebalancing uses — a joining shard tails each
	// old owner for exactly the slice of the key space it is taking over,
	// while several such replicas share one registry without clobbering
	// each other's ranges. Nil replicates everything.
	Filter func(key string) bool

	// Metrics, when set, exposes replication lag, staleness, applied
	// deltas, re-bootstraps and feed errors. One replica per metrics
	// registry: the families are unlabeled.
	Metrics *telemetry.Metrics

	// Log, when set, receives the replica's own diagnostics — today just
	// the fatal-config auth rejection, logged at error once per outage
	// instead of once per retry. Nil logs nothing.
	Log *slog.Logger

	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.PollInterval == 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{Timeout: c.LongPollWait + 15*time.Second}
	}
	return c
}

// Stats is a snapshot of a replica's replication progress.
type Stats struct {
	Cursor     uint64    // primary generation applied through
	PrimaryGen uint64    // latest primary generation observed
	Lag        uint64    // PrimaryGen - Cursor
	Applied    int64     // deltas applied (bootstrap tuples excluded)
	Bootstraps int64     // snapshot bootstraps, initial one included
	FeedErrors int64     // failed feed/snapshot rounds
	LastSync   time.Time // wall-clock time of the last successful sync
}

// Replica tails a primary's change feed into a local registry. Create with
// New, drive with Run (or Step for deterministic tests), query the local
// registry as usual.
type Replica struct {
	cfg Config

	cursor       atomic.Uint64
	primaryGen   atomic.Uint64
	applied      atomic.Int64
	bootstraps   atomic.Int64
	feedErrors   atomic.Int64
	authFailures atomic.Int64
	lastSync     atomic.Int64 // UnixNano of the last successful round; 0 = never

	mu            sync.Mutex
	epoch         string // primary incarnation the cursor belongs to
	needBootstrap bool
	fatalConfig   string // non-empty while the primary rejects us as unauthorized
	authLogged    bool   // the current auth outage has been logged already
}

// New returns a replica for cfg. Call Run to start replication.
func New(cfg Config) *Replica {
	cfg = cfg.withDefaults()
	r := &Replica{cfg: cfg, needBootstrap: true}
	if m := cfg.Metrics; m != nil {
		m.GaugeFunc("wsda_replica_lag_generations",
			"Primary generations observed but not yet applied locally.",
			func() float64 { return float64(r.Stats().Lag) })
		m.GaugeFunc("wsda_replica_staleness_seconds",
			"Seconds since the replica last successfully synced with its primary.",
			func() float64 { return r.staleness().Seconds() })
		m.CounterFunc("wsda_replica_applied_changes_total",
			"Change-feed deltas applied into the local registry.",
			r.applied.Load)
		m.CounterFunc("wsda_replica_bootstraps_total",
			"Snapshot bootstraps, including the initial one and journal-truncation recoveries.",
			r.bootstraps.Load)
		m.CounterFunc("wsda_replica_feed_errors_total",
			"Failed feed or snapshot rounds against the primary.",
			r.feedErrors.Load)
		m.CounterFunc("wsda_replica_auth_failures_total",
			"Feed or snapshot rounds the primary rejected as unauthorized (401/403) — a fatal configuration error (missing or wrong -peer-token), not a transient outage.",
			r.authFailures.Load)
	}
	return r
}

// Registry returns the local registry replicated state is applied into —
// the store a replica node serves queries from.
func (r *Replica) Registry() *registry.Registry { return r.cfg.Registry }

// Stats returns a snapshot of replication progress.
func (r *Replica) Stats() Stats {
	cur, pg := r.cursor.Load(), r.primaryGen.Load()
	lag := uint64(0)
	if pg > cur {
		lag = pg - cur
	}
	var last time.Time
	if ns := r.lastSync.Load(); ns != 0 {
		last = time.Unix(0, ns)
	}
	return Stats{
		Cursor:     cur,
		PrimaryGen: pg,
		Lag:        lag,
		Applied:    r.applied.Load(),
		Bootstraps: r.bootstraps.Load(),
		FeedErrors: r.feedErrors.Load(),
		LastSync:   last,
	}
}

// Lag returns the current replication lag in generations.
func (r *Replica) Lag() uint64 { return r.Stats().Lag }

// Status is the operator-facing condition of a replica: readiness plus any
// fatal configuration error replication is stalled on.
type Status struct {
	// Ready mirrors Ready(): the bootstrap has landed and no resync is
	// pending.
	Ready bool
	// FatalConfig is non-empty while the primary rejects this replica as
	// unauthorized (401/403): replication cannot make progress until the
	// operator fixes -peer-token (or the primary's tenants file). Unlike an
	// outage, waiting does not help.
	FatalConfig string
	// Stats is the usual progress snapshot.
	Stats Stats
}

// Status returns the replica's operator-facing condition. A non-empty
// FatalConfig distinguishes "the primary is down, retrying" from "the
// primary is up and refusing us" — the latter needs a config fix, not
// patience.
func (r *Replica) Status() Status {
	r.mu.Lock()
	fatal := r.fatalConfig
	r.mu.Unlock()
	return Status{Ready: r.Ready(), FatalConfig: fatal, Stats: r.Stats()}
}

// Ready reports whether the replica is fit to serve reads: the initial
// snapshot bootstrap has completed and no re-bootstrap is pending. It
// flips false when a primary restart, journal truncation, or future
// cursor forces a resync, and back true once the new snapshot lands —
// the value behind a replica daemon's /readyz.
func (r *Replica) Ready() bool {
	if r.bootstraps.Load() == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.needBootstrap
}

// Staleness returns how long ago the replica last synced successfully
// with its primary (0 before the first sync) — the sample feeding the
// replica-staleness SLO.
func (r *Replica) Staleness() time.Duration { return r.staleness() }

func (r *Replica) staleness() time.Duration {
	ns := r.lastSync.Load()
	if ns == 0 {
		return 0
	}
	return r.cfg.Now().Sub(time.Unix(0, ns))
}

// Run replicates until ctx is canceled: bootstrap from snapshot, tail the
// feed, back off exponentially (with jitter) across primary outages,
// re-bootstrap after journal truncation or a primary restart. It returns
// ctx.Err().
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.cfg.BackoffMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := r.Step(ctx)
		switch {
		case err != nil:
			if isAuthError(err) {
				// Fatal-config, not transient: the primary is up and
				// refusing us. Hammering it with the hot end of the backoff
				// ladder cannot help, so go straight to the slow end and
				// keep probing only so a fixed tenants file heals without a
				// restart.
				backoff = r.cfg.BackoffMax
			}
			if !sleepCtx(ctx, jitter(backoff)) {
				return ctx.Err()
			}
			backoff *= 2
			if backoff > r.cfg.BackoffMax {
				backoff = r.cfg.BackoffMax
			}
		case !progressed && r.cfg.LongPollWait == 0:
			// Plain polling and nothing new: pace the next poll. With
			// long-polling the primary already did the waiting.
			backoff = r.cfg.BackoffMin
			if !sleepCtx(ctx, r.cfg.PollInterval) {
				return ctx.Err()
			}
		default:
			backoff = r.cfg.BackoffMin
		}
	}
}

// Step performs one replication round — a snapshot bootstrap if one is
// needed, otherwise a single feed poll — and reports whether it applied
// any change. Run loops Step; tests drive it directly for determinism.
func (r *Replica) Step(ctx context.Context) (progressed bool, err error) {
	r.mu.Lock()
	boot := r.needBootstrap
	r.mu.Unlock()
	if boot {
		if err := r.bootstrap(ctx); err != nil {
			r.feedErrors.Add(1)
			r.noteOutcome(err)
			return false, err
		}
		r.noteOutcome(nil)
		return true, nil
	}
	progressed, err = r.poll(ctx)
	if err != nil {
		r.feedErrors.Add(1)
	}
	r.noteOutcome(err)
	return progressed, err
}

// noteOutcome classifies one round's result for Status(): an auth
// rejection raises the fatal-config flag (counted, logged at error once
// per outage); a successful round clears it. Other failures leave the flag
// alone — a rejected replica whose primary then goes unreachable is still
// misconfigured.
func (r *Replica) noteOutcome(err error) {
	if err != nil && isAuthError(err) {
		r.authFailures.Add(1)
		r.mu.Lock()
		logIt := !r.authLogged
		r.authLogged = true
		r.fatalConfig = err.Error()
		r.mu.Unlock()
		if logIt && r.cfg.Log != nil {
			r.cfg.Log.Error("primary rejected replica as unauthorized; fix -peer-token (fatal config, not retryable outage)",
				"primary", r.cfg.Primary, "err", err)
		}
		return
	}
	if err != nil {
		return
	}
	r.mu.Lock()
	recovered := r.fatalConfig != ""
	r.fatalConfig = ""
	r.authLogged = false
	r.mu.Unlock()
	if recovered && r.cfg.Log != nil {
		r.cfg.Log.Info("primary accepted replica auth again", "primary", r.cfg.Primary)
	}
}

// bootstrap fetches the primary's snapshot, applies it, reconciles local
// tuples the snapshot no longer contains, and arms the cursor at the
// snapshot's generation.
func (r *Replica) bootstrap(ctx context.Context) error {
	doc, epoch, err := r.get(ctx, r.cfg.Primary+PathSnapshot)
	if err != nil {
		return err
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "snapshot" {
		return fmt.Errorf("changefeed: bootstrap: expected <snapshot>")
	}
	gen, err := genAttr(root, "gen")
	if err != nil {
		return err
	}
	inSnapshot := make(map[string]struct{})
	for _, el := range root.ChildElements() {
		if el.LocalName() != "tuple" {
			continue
		}
		t, err := tupleFromSnapshot(el)
		if err != nil {
			// Mirror Restore's contract: one corrupt element must not
			// prevent the bootstrap.
			continue
		}
		if r.cfg.Filter != nil && !r.cfg.Filter(t.Key) {
			continue
		}
		inSnapshot[t.Key] = struct{}{}
		r.cfg.Registry.ApplyReplicated(t)
	}
	// Drop local tuples the primary no longer has — unpublished while this
	// replica was disconnected, so no journal record will ever say so. With
	// a Filter only this replica's own key slice is reconciled: other keys
	// in the shared registry belong to other sources (or local writers).
	for _, link := range r.cfg.Registry.LiveLinks() {
		if r.cfg.Filter != nil && !r.cfg.Filter(link) {
			continue
		}
		if _, ok := inSnapshot[link]; !ok {
			r.cfg.Registry.ApplyReplicated(registry.Change{Key: link})
		}
	}

	r.mu.Lock()
	r.epoch = epoch
	r.needBootstrap = false
	r.mu.Unlock()
	r.cursor.Store(gen)
	r.primaryGen.Store(gen)
	r.bootstraps.Add(1)
	r.lastSync.Store(r.cfg.Now().UnixNano())
	return nil
}

func tupleFromSnapshot(el *xmldoc.Node) (registry.Change, error) {
	t, err := tuple.FromXML(el)
	if err != nil || t.Link == "" {
		return registry.Change{}, fmt.Errorf("changefeed: bad snapshot tuple: %v", err)
	}
	return registry.Change{Key: t.Link, Tuple: t}, nil
}

// poll issues one feed request from the cursor and applies the page.
func (r *Replica) poll(ctx context.Context) (progressed bool, err error) {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	cursor := r.cursor.Load()

	u := fmt.Sprintf("%s%s?since=%d", r.cfg.Primary, PathFeed, cursor)
	if r.cfg.LongPollWait > 0 {
		u += "&wait-ms=" + strconv.FormatInt(r.cfg.LongPollWait.Milliseconds(), 10)
	}
	doc, gotEpoch, err := r.get(ctx, u)
	if err != nil {
		return false, err
	}
	p, err := UnmarshalPage(doc)
	if err != nil {
		return false, err
	}
	if p.Epoch == "" {
		p.Epoch = gotEpoch
	}
	if p.Epoch != epoch || p.Truncated || p.To < cursor {
		// Restarted primary (fresh generation counter), truncated journal,
		// or a cursor from the future: resynchronize from scratch.
		r.mu.Lock()
		r.needBootstrap = true
		r.mu.Unlock()
		return false, nil
	}
	applied := 0
	for _, c := range p.Changes {
		if r.cfg.Filter != nil && !r.cfg.Filter(c.Key) {
			continue
		}
		r.cfg.Registry.ApplyReplicated(c)
		applied++
	}
	r.applied.Add(int64(applied))
	r.cursor.Store(p.To)
	r.primaryGen.Store(p.To)
	r.lastSync.Store(r.cfg.Now().UnixNano())
	return len(p.Changes) > 0, nil
}

// get fetches a URL and parses the XML body, returning the epoch header.
func (r *Replica) get(ctx context.Context, u string) (*xmldoc.Node, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := r.cfg.HTTP.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", &remoteError{code: resp.StatusCode, body: strings.TrimSpace(string(data))}
	}
	doc, err := xmldoc.ParseString(string(data))
	if err != nil {
		return nil, "", err
	}
	return doc, resp.Header.Get(EpochHeader), nil
}

// remoteError is a non-200 answer from the primary, typed so Run can tell
// a fatal auth rejection from a transient failure.
type remoteError struct {
	code int
	body string
}

// Error formats the status and the remote error text.
func (e *remoteError) Error() string {
	return fmt.Sprintf("changefeed: remote error %d: %s", e.code, e.body)
}

// isAuthError reports whether err is a primary's 401/403 — the gated-
// primary/missing-peer-token case that retrying cannot fix.
func isAuthError(err error) bool {
	var re *remoteError
	return errors.As(err, &re) &&
		(re.code == http.StatusUnauthorized || re.code == http.StatusForbidden)
}

// jitter spreads a backoff delay uniformly over [d/2, 3d/2) so a fleet of
// replicas does not reconnect in lockstep after a primary restart.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps d or until ctx is done, reporting whether it slept the
// full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
