package changefeed

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

func testTuple(name string) *tuple.Tuple {
	return &tuple.Tuple{
		Link:    "http://cern.ch/" + name,
		Type:    tuple.TypeService,
		Context: "child",
		Content: xmldoc.MustParse(fmt.Sprintf(`<service name=%q><load>0.5</load></service>`, name)).
			DocumentElement().Clone(),
	}
}

func newReg(name string, journalCap int) *registry.Registry {
	return registry.New(registry.Config{
		Name:       name,
		DefaultTTL: time.Hour,
		MinTTL:     time.Millisecond,
		JournalCap: journalCap,
	})
}

// tupleSetString serializes a registry's live tuple set deterministically,
// so two registries can be compared for exact replication equality
// (attributes, timestamps and content included).
func tupleSetString(t *testing.T, r *registry.Registry) string {
	t.Helper()
	var sb strings.Builder
	for _, tp := range r.MinQuery(registry.Filter{}) {
		sb.WriteString(tp.ToXML().String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPageRoundTrip(t *testing.T) {
	live := testTuple("a")
	live.TS3 = time.UnixMilli(90_000)
	p := Page{
		Epoch: "abc", From: 3, To: 9,
		Changes: []registry.Change{
			{Key: live.Link, Tuple: live},
			{Key: "http://cern.ch/gone"},
		},
	}
	got, err := UnmarshalPage(MarshalPage(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != "abc" || got.From != 3 || got.To != 9 || got.Truncated {
		t.Fatalf("envelope mangled: %+v", got)
	}
	if len(got.Changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(got.Changes))
	}
	rt := got.Changes[0].Tuple
	if rt == nil || rt.Link != live.Link || !rt.TS3.Equal(live.TS3) || rt.Content == nil {
		t.Fatalf("live change mangled: %+v", rt)
	}
	if got.Changes[1].Tuple != nil {
		t.Fatalf("deletion mangled: %+v", got.Changes[1])
	}

	trunc := Page{Epoch: "abc", From: 1, To: 50, Truncated: true}
	got, err = UnmarshalPage(MarshalPage(trunc))
	if err != nil || !got.Truncated {
		t.Fatalf("truncation page mangled: %+v, %v", got, err)
	}
}

// TestStepBootstrapTailRebootstrap drives one replica deterministically
// through its whole lifecycle: snapshot bootstrap, incremental tailing
// (inserts, refreshes and deletions), and the forced re-bootstrap after
// the primary's bounded journal truncates past the replica's cursor.
func TestStepBootstrapTailRebootstrap(t *testing.T) {
	prim := newReg("prim", 8)
	srv := NewServer(prim)
	mux := http.NewServeMux()
	srv.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if _, err := prim.Publish(testTuple(fmt.Sprintf("s%d", i)), time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	rep := New(Config{Primary: ts.URL, Registry: newReg("rep", 0)})
	ctx := context.Background()

	// Round 1: bootstrap from snapshot.
	if progressed, err := rep.Step(ctx); err != nil || !progressed {
		t.Fatalf("bootstrap step = %v, %v", progressed, err)
	}
	st := rep.Stats()
	if st.Bootstraps != 1 || st.Lag != 0 || rep.cfg.Registry.Len() != 3 {
		t.Fatalf("after bootstrap: %+v, len %d", st, rep.cfg.Registry.Len())
	}

	// Round 2: tail deltas — an insert, a refresh and a deletion.
	if _, err := prim.Publish(testTuple("s3"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Publish(testTuple("s0"), time.Hour); err != nil {
		t.Fatal(err)
	}
	prim.Unpublish("http://cern.ch/s1")
	if progressed, err := rep.Step(ctx); err != nil || !progressed {
		t.Fatalf("tail step = %v, %v", progressed, err)
	}
	if got, want := tupleSetString(t, rep.cfg.Registry), tupleSetString(t, prim); got != want {
		t.Fatalf("replica diverged after tail:\n%s\nwant:\n%s", got, want)
	}
	if st := rep.Stats(); st.Applied != 3 || st.Lag != 0 {
		t.Fatalf("after tail: %+v", st)
	}

	// Round 3: blast past the 8-entry journal; the next poll must demand a
	// re-bootstrap, and the bootstrap must reconverge exactly.
	for i := 10; i < 30; i++ {
		if _, err := prim.Publish(testTuple(fmt.Sprintf("s%d", i)), time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if progressed, err := rep.Step(ctx); err != nil || progressed {
		t.Fatalf("truncated poll = %v, %v (want no progress, no error)", progressed, err)
	}
	if progressed, err := rep.Step(ctx); err != nil || !progressed {
		t.Fatalf("re-bootstrap step = %v, %v", progressed, err)
	}
	if st := rep.Stats(); st.Bootstraps != 2 || st.Lag != 0 {
		t.Fatalf("after re-bootstrap: %+v", st)
	}
	if got, want := tupleSetString(t, rep.cfg.Registry), tupleSetString(t, prim); got != want {
		t.Fatalf("replica diverged after re-bootstrap:\n%s\nwant:\n%s", got, want)
	}

	// An empty poll is quiet: no progress, no error, cursor pinned.
	if progressed, err := rep.Step(ctx); err != nil || progressed {
		t.Fatalf("idle poll = %v, %v", progressed, err)
	}
}

// TestStepEpochChange swaps in a fresh primary (new Server incarnation,
// new generation counter) behind the same URL — the cursor must be
// abandoned and the replica must re-bootstrap, dropping tuples the new
// primary does not have.
func TestStepEpochChange(t *testing.T) {
	prim1 := newReg("prim1", 0)
	srv1 := NewServer(prim1)
	mux1 := http.NewServeMux()
	srv1.Mount(mux1)
	var current atomic.Value // *http.ServeMux
	current.Store(mux1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().(*http.ServeMux).ServeHTTP(w, r)
	}))
	defer ts.Close()

	if _, err := prim1.Publish(testTuple("only-on-old"), time.Hour); err != nil {
		t.Fatal(err)
	}
	rep := New(Config{Primary: ts.URL, Registry: newReg("rep", 0)})
	ctx := context.Background()
	if _, err := rep.Step(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart" the primary: fresh registry, fresh epoch, same address.
	prim2 := newReg("prim2", 0)
	if _, err := prim2.Publish(testTuple("only-on-new"), time.Hour); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(prim2)
	mux2 := http.NewServeMux()
	srv2.Mount(mux2)
	current.Store(mux2)
	if srv1.Epoch() == srv2.Epoch() {
		t.Fatal("two server incarnations share an epoch")
	}

	if progressed, err := rep.Step(ctx); err != nil || progressed {
		t.Fatalf("epoch-change poll = %v, %v (want re-bootstrap demand)", progressed, err)
	}
	if _, err := rep.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := tupleSetString(t, rep.cfg.Registry), tupleSetString(t, prim2); got != want {
		t.Fatalf("replica kept pre-restart state:\n%s\nwant:\n%s", got, want)
	}
	if st := rep.Stats(); st.Bootstraps != 2 {
		t.Fatalf("bootstraps = %d, want 2", st.Bootstraps)
	}
}

// TestFeedLongPoll holds a feed request open until a publish lands.
func TestFeedLongPoll(t *testing.T) {
	prim := newReg("prim", 0)
	srv := NewServer(prim)
	mux := http.NewServeMux()
	srv.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	type res struct {
		p       Page
		elapsed time.Duration
		err     error
	}
	ch := make(chan res, 1)
	start := time.Now()
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s%s?since=0&wait-ms=5000", ts.URL, PathFeed))
		if err != nil {
			ch <- res{err: err}
			return
		}
		defer resp.Body.Close()
		doc, err := xmldoc.Parse(resp.Body)
		if err != nil {
			ch <- res{err: err}
			return
		}
		p, err := UnmarshalPage(doc)
		ch <- res{p: p, elapsed: time.Since(start), err: err}
	}()

	time.Sleep(60 * time.Millisecond)
	if _, err := prim.Publish(testTuple("late"), time.Hour); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.p.Changes) != 1 || r.p.Changes[0].Key != "http://cern.ch/late" {
			t.Fatalf("long poll returned %+v", r.p)
		}
		if r.elapsed >= 5*time.Second {
			t.Fatalf("long poll burned the full wait: %v", r.elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never returned")
	}
}

// TestFeedBadParams rejects malformed cursors and waits.
func TestFeedBadParams(t *testing.T) {
	prim := newReg("prim", 0)
	srv := NewServer(prim)
	mux := http.NewServeMux()
	srv.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	for _, u := range []string{
		ts.URL + PathFeed + "?since=banana",
		ts.URL + PathFeed + "?wait-ms=-5",
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
}
