package changefeed

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wsda/internal/registry"
)

// DefaultMaxWait caps how long one feed request may long-poll server-side,
// whatever the client asks for.
const DefaultMaxWait = 30 * time.Second

// pollTick is the granularity at which a long-polling feed handler
// re-checks the store generation.
const pollTick = 15 * time.Millisecond

// Server serves a registry's change feed and bootstrap snapshot. Every
// Server gets a fresh random epoch at construction, so a restarted daemon
// is distinguishable from a slow one and replicas know to re-bootstrap.
type Server struct {
	reg     *registry.Registry
	epoch   string
	maxWait time.Duration
}

// NewServer returns a feed server for reg.
func NewServer(reg *registry.Registry) *Server {
	return &Server{reg: reg, epoch: newEpoch(), maxWait: DefaultMaxWait}
}

// Epoch returns the server incarnation ID.
func (s *Server) Epoch() string { return s.epoch }

// Mount registers the feed and snapshot handlers on mux.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc(PathFeed, s.handleFeed)
	mux.HandleFunc(PathSnapshot, s.handleSnapshot)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(EpochHeader, s.epoch)
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	if _, err := s.reg.SnapshotWithGen(w); err != nil {
		// Headers are gone; all we can do is abort the body mid-stream.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := uint64(0)
	if v := q.Get("since"); v != "" {
		g, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad since=%q", v), http.StatusBadRequest)
			return
		}
		since = g
	}
	var wait time.Duration
	if v := q.Get("wait-ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, fmt.Sprintf("bad wait-ms=%q", v), http.StatusBadRequest)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > s.maxWait {
		wait = s.maxWait
	}

	deadline := time.Now().Add(wait)
	for {
		to, changes, ok := s.reg.ChangesSince(since)
		p := Page{Epoch: s.epoch, From: since, To: to, Truncated: !ok, Changes: changes}
		if !ok || len(changes) > 0 || time.Now().After(deadline) {
			s.writePage(w, p)
			return
		}
		// Long poll: nothing new yet. Sleep a tick unless the client went
		// away or the wait budget is about to lapse.
		select {
		case <-r.Context().Done():
			return
		case <-time.After(pollTick):
		}
	}
}

func (s *Server) writePage(w http.ResponseWriter, p Page) {
	w.Header().Set(EpochHeader, s.epoch)
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, MarshalPage(p).String())
}

// newEpoch returns a random server-incarnation ID.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to the
		// clock so two restarts still differ.
		return strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}
