// Package changefeed turns the registry's soft-state change journal into a
// network-consumable replication stream and runs read-only registry
// replicas off it.
//
// The thesis's soft-state argument (Ch. 2.6, 4.6) is what makes this safe:
// replicated tuples carry the remainder of their original lifetime, so a
// replica that falls behind — or keeps serving after its primary dies —
// degrades gracefully into staleness and then silence as its copies
// expire, instead of serving confidently wrong state forever. Related
// discovery systems (MIND, the WebContent XML Store; see PAPERS.md) make
// exactly this replication step the availability backbone of discovery.
//
// The protocol has two endpoints, mounted by Server:
//
//	GET /wsda/snapshot
//	    Full bootstrap: the registry's <snapshot> document stamped with
//	    the store generation (gen attribute) it atomically corresponds
//	    to, plus the X-Wsda-Epoch response header identifying the server
//	    incarnation.
//
//	GET /wsda/feed?since=CURSOR&wait-ms=N
//	    Deltas after generation CURSOR as a <changes from To> document of
//	    <change> elements (full tuple state, or deleted="true"). With
//	    wait-ms the request long-polls until a change arrives or the wait
//	    elapses. truncated="true" tells the client its cursor fell off
//	    the bounded journal and it must re-bootstrap from snapshot.
//
// Replica composes the client side: snapshot bootstrap, cursor-resumed
// tailing, exponential backoff with jitter across primary outages, epoch
// detection across primary restarts, and automatic re-bootstrap after
// journal truncation. Applied deltas land in an ordinary
// registry.Registry, so the incremental view machinery answers queries on
// the replica exactly as on the primary.
package changefeed
