package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFlightNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record("tx", FlightReceived, "n", "", 0, "")
	fr.Finish("tx", FlightSummary{})
	if fr.Tx("tx") != nil {
		t.Fatal("nil recorder returned a tx")
	}
	if sl, total := fr.Slowlog(); sl != nil || total != 0 {
		t.Fatal("nil recorder returned slowlog entries")
	}
	if fr.SlowThreshold() != 0 {
		t.Fatal("nil recorder has a threshold")
	}
}

func TestFlightRecordAndFinish(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Second})
	fr.Record("t1", FlightSubmit, "orig", "node/0", 0, "routed")
	fr.Record("t1", FlightReceived, "node/0", "orig", 1, "")
	fr.Record("t1", FlightForward, "node/0", "node/1", 0, "")
	fr.Finish("t1", FlightSummary{
		FirstItem: 10 * time.Millisecond,
		Elapsed:   20 * time.Millisecond,
		Items:     3, Complete: true,
		NodesContacted: 2, NodesResponded: 2,
	})

	info := fr.Tx("t1")
	if info == nil {
		t.Fatal("tx not found")
	}
	if len(info.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(info.Events))
	}
	kinds := []string{FlightSubmit, FlightReceived, FlightForward, FlightSummaryKind}
	for i, k := range kinds {
		if info.Events[i].Kind != k {
			t.Fatalf("event %d kind = %q, want %q", i, info.Events[i].Kind, k)
		}
	}
	for i := 1; i < len(info.Events); i++ {
		if info.Events[i].Seq <= info.Events[i-1].Seq {
			t.Fatalf("seq not increasing at %d", i)
		}
	}
	if info.Summary == nil || !info.Summary.Complete || info.Summary.Items != 3 {
		t.Fatalf("bad summary: %+v", info.Summary)
	}
	if info.Summary.Reason != "" {
		t.Fatalf("fast complete query admitted to slowlog: %q", info.Summary.Reason)
	}
	if sl, _ := fr.Slowlog(); len(sl) != 0 {
		t.Fatalf("slowlog = %d entries, want 0", len(sl))
	}
}

func TestFlightSlowlogGating(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: 50 * time.Millisecond})

	// Slow first item.
	fr.Finish("slow", FlightSummary{FirstItem: 80 * time.Millisecond, Items: 1, Complete: true})
	// Incomplete but fast.
	fr.Finish("inc", FlightSummary{FirstItem: time.Millisecond, Items: 1, Complete: false})
	// Empty and slow overall.
	fr.Finish("empty", FlightSummary{Elapsed: 90 * time.Millisecond, Complete: true})
	// Fast and complete: not admitted.
	fr.Finish("ok", FlightSummary{FirstItem: time.Millisecond, Items: 1, Complete: true})

	sl, total := fr.Slowlog()
	if total != 3 || len(sl) != 3 {
		t.Fatalf("slowlog total=%d len=%d, want 3/3", total, len(sl))
	}
	// Most recent first.
	if sl[0].TxID != "empty" || sl[1].TxID != "inc" || sl[2].TxID != "slow" {
		t.Fatalf("slowlog order: %s %s %s", sl[0].TxID, sl[1].TxID, sl[2].TxID)
	}
	want := map[string]string{"slow": "slow-first-item", "inc": "incomplete", "empty": "slow-empty"}
	for _, e := range sl {
		if e.Reason != want[e.TxID] {
			t.Fatalf("tx %s reason = %q, want %q", e.TxID, e.Reason, want[e.TxID])
		}
	}
}

func TestFlightEviction(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Capacity: 4, SlowThreshold: time.Second})
	for i := 0; i < 10; i++ {
		fr.Record(fmt.Sprintf("tx%d", i), FlightReceived, "n", "", 0, "")
	}
	for i := 0; i < 6; i++ {
		if fr.Tx(fmt.Sprintf("tx%d", i)) != nil {
			t.Fatalf("tx%d survived eviction", i)
		}
	}
	for i := 6; i < 10; i++ {
		if fr.Tx(fmt.Sprintf("tx%d", i)) == nil {
			t.Fatalf("tx%d missing", i)
		}
	}
}

func TestFlightEventCap(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{EventsPerTx: 8, SlowThreshold: time.Second})
	for i := 0; i < 20; i++ {
		fr.Record("tx", FlightItem, "n", "", int64(i), "")
	}
	info := fr.Tx("tx")
	if len(info.Events) != 8 || info.Dropped != 12 {
		t.Fatalf("events=%d dropped=%d, want 8/12", len(info.Events), info.Dropped)
	}
}

func TestFlightSlowlogRing(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowlogCapacity: 3, SlowThreshold: time.Nanosecond})
	for i := 0; i < 7; i++ {
		fr.Finish(fmt.Sprintf("tx%d", i), FlightSummary{FirstItem: time.Second, Items: 1, Complete: true})
	}
	sl, total := fr.Slowlog()
	if total != 7 || len(sl) != 3 {
		t.Fatalf("total=%d len=%d, want 7/3", total, len(sl))
	}
	if sl[0].TxID != "tx6" || sl[2].TxID != "tx4" {
		t.Fatalf("ring kept %s..%s, want tx6..tx4", sl[0].TxID, sl[2].TxID)
	}
}

func TestFlightConcurrent(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := fmt.Sprintf("tx%d", g%4)
			for i := 0; i < 200; i++ {
				fr.Record(tx, FlightItem, "n", "peer", int64(i), "")
				if i%50 == 0 {
					fr.Tx(tx)
					fr.Slowlog()
				}
			}
			fr.Finish(tx, FlightSummary{Items: 200, Complete: true, FirstItem: time.Millisecond})
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if fr.Tx(fmt.Sprintf("tx%d", g)) == nil {
			t.Fatalf("tx%d lost", g)
		}
	}
}

func TestFlightHandlers(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Nanosecond})
	fr.Record("a#1", FlightReceived, "node/0", "orig", 1, "")
	fr.Finish("a#1", FlightSummary{FirstItem: time.Second, Items: 2, Complete: false})

	mux := http.NewServeMux()
	MountObservability(mux, fr, NewSLO(SLOConfig{}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/query/a%231")
	if err != nil {
		t.Fatal(err)
	}
	var info FlightInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.TxID != "a#1" || len(info.Events) != 2 || info.Summary == nil {
		t.Fatalf("bad flight info: %+v", info)
	}

	resp, err = http.Get(srv.URL + "/debug/query/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing tx status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var slow SlowlogResponse
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slow.Admitted != 1 || len(slow.Entries) != 1 || slow.Entries[0].Reason == "" {
		t.Fatalf("bad slowlog: %+v", slow)
	}

	resp, err = http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var st SLOStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Objectives) != 3 {
		t.Fatalf("slo objectives = %d, want 3", len(st.Objectives))
	}
}
