package telemetry

import (
	"strings"
	"testing"
	"time"
)

// sloClock is a controllable clock for window tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time { return c.t }

func newTestSLO(clk *sloClock, windows ...time.Duration) *SLO {
	return NewSLO(SLOConfig{
		FirstItemTarget:    100 * time.Millisecond,
		FirstItemObjective: 0.9,
		CompletenessTarget: 0.99,
		StalenessTarget:    time.Second,
		Windows:            windows,
		Now:                clk.now,
	})
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.ObserveFirstItem(time.Second)
	s.ObserveCompleteness(0)
	s.ObserveStaleness(time.Hour)
	s.RegisterMetrics(nil)
	if s.BurnRate(SLOFirstItem, time.Minute) != 0 {
		t.Fatal("nil SLO burned")
	}
	if st := s.Status(); st.Breach || len(st.Objectives) != 0 {
		t.Fatal("nil SLO reported state")
	}
}

func TestSLOBurnMath(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	s := newTestSLO(clk, time.Minute)

	// 90 good + 10 bad at a 0.9 objective: error rate 0.1, budget 0.1,
	// burn exactly 1.0 — at, not above, threshold.
	for i := 0; i < 90; i++ {
		s.ObserveFirstItem(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.ObserveFirstItem(time.Second)
	}
	if br := s.BurnRate(SLOFirstItem, time.Minute); br < 0.99 || br > 1.01 {
		t.Fatalf("burn = %v, want ~1.0", br)
	}
	st := s.Status()
	var fi ObjectiveStatus
	for _, o := range st.Objectives {
		if o.Name == SLOFirstItem {
			fi = o
		}
	}
	if fi.Breach {
		t.Fatal("burn == threshold must not breach")
	}

	// Ten more bad events push the burn over 1.0.
	for i := 0; i < 10; i++ {
		s.ObserveFirstItem(time.Second)
	}
	st = s.Status()
	for _, o := range st.Objectives {
		if o.Name == SLOFirstItem && !o.Breach {
			t.Fatalf("expected breach: %+v", o)
		}
	}
	if !st.Breach {
		t.Fatal("status breach not set")
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	s := newTestSLO(clk, time.Minute)
	for i := 0; i < 20; i++ {
		s.ObserveFirstItem(time.Second)
	}
	if br := s.BurnRate(SLOFirstItem, time.Minute); br <= 1 {
		t.Fatalf("burn = %v, want > 1", br)
	}
	// Two minutes later every bucket has expired.
	clk.t = clk.t.Add(2 * time.Minute)
	if br := s.BurnRate(SLOFirstItem, time.Minute); br != 0 {
		t.Fatalf("burn after expiry = %v, want 0", br)
	}
	st := s.Status()
	for _, o := range st.Objectives {
		if o.Name == SLOFirstItem && o.Windows[0].Events != 0 {
			t.Fatalf("events after expiry = %d", o.Windows[0].Events)
		}
	}
}

func TestSLOMultiWindowRule(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	s := newTestSLO(clk, time.Minute, 10*time.Minute)

	// Old good history fills the long window.
	for i := 0; i < 500; i++ {
		s.ObserveCompleteness(1.0)
	}
	// A burst of failures five minutes later: the short window burns hot,
	// but the long window still holds the good history (3/503 is inside
	// the 1% budget), so no breach yet.
	clk.t = clk.t.Add(5 * time.Minute)
	for i := 0; i < 3; i++ {
		s.ObserveCompleteness(0.5)
	}
	st := s.Status()
	for _, o := range st.Objectives {
		if o.Name != SLOCompleteness {
			continue
		}
		if !o.Windows[0].Burning {
			t.Fatalf("short window not burning: %+v", o.Windows[0])
		}
		if o.Breach {
			t.Fatal("breach despite healthy long window")
		}
	}

	// Sustained failures eventually burn the long window too.
	for i := 0; i < 200; i++ {
		s.ObserveCompleteness(0.5)
	}
	st = s.Status()
	for _, o := range st.Objectives {
		if o.Name == SLOCompleteness && !o.Breach {
			t.Fatalf("sustained failure did not breach: %+v", o)
		}
	}
}

func TestSLOStaleness(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	s := newTestSLO(clk, time.Minute)
	s.ObserveStaleness(100 * time.Millisecond)
	s.ObserveStaleness(10 * time.Second)
	st := s.Status()
	for _, o := range st.Objectives {
		if o.Name == SLOStaleness {
			if o.Windows[0].Events != 2 || o.Windows[0].Violations != 1 {
				t.Fatalf("staleness window: %+v", o.Windows[0])
			}
		}
	}
}

func TestSLOMetrics(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	s := newTestSLO(clk, time.Minute)
	m := NewMetrics()
	s.RegisterMetrics(m)
	for i := 0; i < 5; i++ {
		s.ObserveFirstItem(time.Second)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "wsda_slo_burn_rate") {
		t.Fatalf("burn-rate metric missing:\n%s", out)
	}
	if !strings.Contains(out, `objective="first_item"`) || !strings.Contains(out, `window="1m0s"`) {
		t.Fatalf("burn-rate labels missing:\n%s", out)
	}
}
