package telemetry

import (
	"context"
	"testing"
)

// TestSpanTreeReconstruction builds the span topology of a two-hop P2P
// query — originator submit, two node handlers parented across "the wire"
// by span ID, per-node evals and net.hop events — and checks that the
// tracer rebuilds the exact tree from its ring.
func TestSpanTreeReconstruction(t *testing.T) {
	tr := NewTracer(64)
	const tx = "tx-123"

	submit := tr.StartSpanID(tx, 0, "updf.submit")
	// Hop originator -> node1 (parent travels in the message).
	tr.Event(tx, submit.ID(), "net.hop", String("to", "node1"))
	n1 := tr.StartSpanID(tx, submit.ID(), "updf.query")
	eval1 := tr.StartSpan(tx, n1, "updf.eval")
	eval1.SetAttr(Int("hits", 3))
	eval1.End()
	// Hop node1 -> node2.
	tr.Event(tx, n1.ID(), "net.hop", String("to", "node2"))
	n2 := tr.StartSpanID(tx, n1.ID(), "updf.query")
	eval2 := tr.StartSpan(tx, n2, "updf.eval")
	eval2.End()
	n2.End()
	n1.End()
	submit.SetAttr(Int("items", 5))
	submit.End()

	trace := tr.Trace(tx)
	if trace == nil {
		t.Fatal("Trace returned nil")
	}
	if trace.Spans != 7 {
		t.Fatalf("Spans = %d, want 7", trace.Spans)
	}
	if len(trace.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(trace.Roots))
	}
	root := trace.Roots[0]
	if root.Name != "updf.submit" || root.ID != submit.ID() {
		t.Fatalf("root = %s (id %d), want updf.submit (id %d)", root.Name, root.ID, submit.ID())
	}
	if root.Attrs["items"] != "5" {
		t.Fatalf("root attrs = %v, want items=5", root.Attrs)
	}
	if len(root.Children) != 2 { // net.hop event + node1 query span
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	var node1 *SpanInfo
	for _, c := range root.Children {
		if c.Name == "updf.query" {
			node1 = c
		}
	}
	if node1 == nil || node1.ID != n1.ID() {
		t.Fatalf("node1 query span not under submit: %+v", root.Children)
	}
	if len(node1.Children) != 3 { // eval, net.hop, node2 query
		t.Fatalf("node1 has %d children, want 3", len(node1.Children))
	}
	var node2 *SpanInfo
	for _, c := range node1.Children {
		if c.Name == "updf.query" {
			node2 = c
		}
	}
	if node2 == nil || node2.ID != n2.ID() {
		t.Fatalf("node2 query span not under node1: %+v", node1.Children)
	}
	if len(node2.Children) != 1 || node2.Children[0].Name != "updf.eval" {
		t.Fatalf("node2 children = %+v, want one updf.eval", node2.Children)
	}
}

func TestTracesMostRecentFirst(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 3; i++ {
		sp := tr.StartSpanID(tr.NewTraceID(), 0, "op")
		sp.End()
	}
	all := tr.Traces(0)
	if len(all) != 3 {
		t.Fatalf("got %d traces, want 3", len(all))
	}
	if all[0].TraceID != "t3" || all[2].TraceID != "t1" {
		t.Fatalf("order = %s,%s,%s, want t3,t2,t1",
			all[0].TraceID, all[1].TraceID, all[2].TraceID)
	}
	if got := tr.Traces(2); len(got) != 2 {
		t.Fatalf("Traces(2) returned %d traces, want 2", len(got))
	}
}

// TestRingWrapEviction checks that spans beyond the ring capacity evict
// the oldest and that orphaned children (parent evicted) surface as
// roots rather than disappearing.
func TestRingWrapEviction(t *testing.T) {
	tr := NewTracer(4)
	parent := tr.StartSpanID("tx", 0, "parent")
	parent.End()
	child := tr.StartSpanID("tx", parent.ID(), "child")
	child.End()
	for i := 0; i < 4; i++ { // push the parent (and child) out of the ring
		sp := tr.StartSpanID("other", 0, "filler")
		sp.End()
	}
	if tr.Trace("tx") != nil {
		t.Fatal("evicted trace should be gone")
	}

	tr2 := NewTracer(4)
	p2 := tr2.StartSpanID("tx2", 0, "parent")
	p2.End()
	c2 := tr2.StartSpanID("tx2", p2.ID(), "child")
	c2.End()
	for i := 0; i < 3; i++ { // evict only the parent
		sp := tr2.StartSpanID("other", 0, "filler")
		sp.End()
	}
	trace := tr2.Trace("tx2")
	if trace == nil || len(trace.Roots) != 1 || trace.Roots[0].Name != "child" {
		t.Fatalf("orphaned child should surface as root, got %+v", trace)
	}
}

// TestParentCycleBreaks reproduces a cross-process span-ID collision:
// two spans whose parent pointers form a loop, so neither is a root. The
// reconstruction must promote one to a root instead of dropping both.
func TestParentCycleBreaks(t *testing.T) {
	tr := NewTracer(16)
	probe := tr.StartSpanID("probe", 0, "p") // learn the current ID counter
	probe.End()
	// Event IDs are allocated sequentially, so these two events point at
	// each other: a = (probe+1, parent probe+2), b = (probe+2, parent probe+1).
	tr.Event("tx", probe.ID()+2, "a")
	tr.Event("tx", probe.ID()+1, "b")
	trace := tr.Trace("tx")
	if trace == nil || trace.Spans != 2 {
		t.Fatalf("trace = %+v, want 2 spans", trace)
	}
	if len(trace.Roots) == 0 {
		t.Fatal("cycle dropped both spans: no roots")
	}
	total := 0
	var count func(s *SpanInfo)
	count = func(s *SpanInfo) {
		total++
		for _, c := range s.Children {
			count(c)
		}
	}
	for _, r := range trace.Roots {
		count(r)
	}
	if total != 2 {
		t.Fatalf("reachable spans = %d, want 2", total)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.StartSpanID("tx", 0, "op")
	sp.End()
	sp.End()
	trace := tr.Trace("tx")
	if trace == nil || trace.Spans != 1 {
		t.Fatalf("double End recorded %+v, want 1 span", trace)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End()
	root.End()
	trace := tr.Trace(root.TraceID())
	if trace == nil || len(trace.Roots) != 1 {
		t.Fatalf("trace = %+v, want one root", trace)
	}
	r := trace.Roots[0]
	if r.Name != "root" || len(r.Children) != 1 || r.Children[0].Name != "child" {
		t.Fatalf("tree = %+v, want root->child", r)
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("SpanFromContext on empty ctx should be nil")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				sp := tr.StartSpanID(tr.NewTraceID(), 0, "op")
				sp.SetAttr(Int("i", int64(i)))
				sp.End()
				_ = tr.Traces(4)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
