package telemetry

import (
	"context"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`   // annotation name
	Value string `json:"value"` // annotation value, already stringified
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Span is one timed, annotated operation within a trace. Spans form a
// tree through parent IDs; across PDP nodes the parent ID travels inside
// the query message, so a network query's full hop tree reconstructs
// from the ring even though each hop ran on a different node.
//
// A nil *Span is a valid disabled span: every method is a no-op.
type Span struct {
	t       *Tracer
	traceID string
	id      uint64
	parent  uint64
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// spanRecord is the immutable snapshot of a completed span held in the
// tracer's ring.
type spanRecord struct {
	traceID string
	id      uint64
	parent  uint64
	name    string
	start   time.Time
	end     time.Time
	attrs   []Attr
}

// Tracer records completed spans into a bounded ring buffer; when the
// ring wraps, the oldest spans are overwritten. A nil *Tracer is a valid
// disabled tracer.
type Tracer struct {
	capacity int

	mu    sync.Mutex
	ring  []spanRecord
	next  int
	total uint64 // completed spans ever, for overwrite accounting

	ids  atomic.Uint64
	tids atomic.Uint64
}

// DefaultTraceCapacity bounds the span ring when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer creates a tracer retaining up to capacity completed spans.
//
// Span IDs start at a random 64-bit offset so that spans minted by
// different processes (each with its own tracer) do not collide: a query
// hop tree spans processes, and a remote parent ID accidentally equal to
// a local span ID would mis-nest the tree.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{capacity: capacity, ring: make([]spanRecord, 0, capacity)}
	t.ids.Store(rand.Uint64())
	return t
}

// NewTraceID mints a process-unique trace identifier.
func (t *Tracer) NewTraceID() string {
	if t == nil {
		return ""
	}
	return "t" + strconv.FormatUint(t.tids.Add(1), 10)
}

// StartSpan begins a span in the given trace under the given parent
// (nil for a root). An empty traceID mints a fresh one (or inherits the
// parent's). Returns nil on a nil tracer.
func (t *Tracer) StartSpan(traceID string, parent *Span, name string) *Span {
	var pid uint64
	if parent != nil {
		pid = parent.id
		if traceID == "" {
			traceID = parent.traceID
		}
	}
	return t.StartSpanID(traceID, pid, name)
}

// StartSpanID is StartSpan with an explicit parent span ID — the form
// used when the parent lives on another node and only its ID traveled
// over the wire.
func (t *Tracer) StartSpanID(traceID string, parentID uint64, name string) *Span {
	if t == nil {
		return nil
	}
	if traceID == "" {
		traceID = t.NewTraceID()
	}
	return &Span{
		t: t, traceID: traceID, id: t.ids.Add(1), parent: parentID,
		name: name, start: time.Now(),
	}
}

// Start begins a span as a child of the span in ctx (a root if none) and
// returns a derived context carrying the new span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.StartSpan("", SpanFromContext(ctx), name)
	return ContextWithSpan(ctx, s), s
}

// Event records a completed zero-duration span — a point annotation such
// as one message hop on a link.
func (t *Tracer) Event(traceID string, parentID uint64, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	now := time.Now()
	t.record(spanRecord{
		traceID: traceID, id: t.ids.Add(1), parent: parentID,
		name: name, start: now, end: now, attrs: attrs,
	})
}

func (t *Tracer) record(r spanRecord) {
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
	}
	t.next = (t.next + 1) % t.capacity
	t.total++
	t.mu.Unlock()
}

// ID returns the span's process-unique ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the span's trace identifier ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SetAttr annotates the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End completes the span and commits it to the tracer's ring. Ending a
// span twice records it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.record(spanRecord{
		traceID: s.traceID, id: s.id, parent: s.parent, name: s.name,
		start: s.start, end: time.Now(), attrs: attrs,
	})
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanInfo is the JSON form of one completed span, nested by parentage.
type SpanInfo struct {
	ID         uint64            `json:"id"`                 // span ID within the trace
	Parent     uint64            `json:"parent,omitempty"`   // parent span ID (0 for roots)
	Name       string            `json:"name"`               // operation name
	Start      time.Time         `json:"start"`              // wall-clock start
	DurationUS int64             `json:"duration_us"`        // duration in microseconds
	Attrs      map[string]string `json:"attrs,omitempty"`    // span annotations
	Children   []*SpanInfo       `json:"children,omitempty"` // child spans, by start time
}

// TraceInfo is one reconstructed trace: the span forest sharing a trace
// ID, roots ordered by start time.
type TraceInfo struct {
	TraceID string      `json:"trace"` // shared trace identifier
	Start   time.Time   `json:"start"` // earliest span start
	Spans   int         `json:"spans"` // total spans in the trace
	Roots   []*SpanInfo `json:"roots"` // parentless spans, by start time
}

func (r *spanRecord) info() *SpanInfo {
	si := &SpanInfo{
		ID: r.id, Parent: r.parent, Name: r.name, Start: r.start,
		DurationUS: r.end.Sub(r.start).Microseconds(),
	}
	if len(r.attrs) > 0 {
		si.Attrs = make(map[string]string, len(r.attrs))
		for _, a := range r.attrs {
			si.Attrs[a.Key] = a.Value
		}
	}
	return si
}

// snapshotRing copies the ring oldest-first.
func (t *Tracer) snapshotRing() []spanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]spanRecord, 0, len(t.ring))
	if len(t.ring) == t.capacity {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Traces reconstructs the most recent max traces (all retained traces
// when max <= 0) from the span ring, most recent first. Spans whose
// parent fell off the ring (or ran on another process) surface as roots.
func (t *Tracer) Traces(max int) []*TraceInfo {
	if t == nil {
		return nil
	}
	recs := t.snapshotRing()
	byTrace := make(map[string][]*spanRecord)
	order := make([]string, 0, 16) // trace IDs by most recent span, dedup below
	for i := range recs {
		r := &recs[i]
		byTrace[r.traceID] = append(byTrace[r.traceID], r)
		order = append(order, r.traceID)
	}
	// Most recent first: walk the ring backwards, keeping first sighting.
	seen := make(map[string]bool, len(byTrace))
	ids := make([]string, 0, len(byTrace))
	for i := len(order) - 1; i >= 0; i-- {
		if !seen[order[i]] {
			seen[order[i]] = true
			ids = append(ids, order[i])
		}
	}
	if max > 0 && len(ids) > max {
		ids = ids[:max]
	}
	out := make([]*TraceInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, buildTrace(id, byTrace[id]))
	}
	return out
}

// Trace reconstructs one trace by ID, or nil if no spans are retained.
func (t *Tracer) Trace(traceID string) *TraceInfo {
	if t == nil {
		return nil
	}
	recs := t.snapshotRing()
	var mine []*spanRecord
	for i := range recs {
		if recs[i].traceID == traceID {
			mine = append(mine, &recs[i])
		}
	}
	if len(mine) == 0 {
		return nil
	}
	return buildTrace(traceID, mine)
}

func buildTrace(id string, recs []*spanRecord) *TraceInfo {
	infos := make(map[uint64]*SpanInfo, len(recs))
	ordered := make([]*SpanInfo, 0, len(recs))
	for _, r := range recs {
		si := r.info()
		infos[si.ID] = si
		ordered = append(ordered, si)
	}
	ti := &TraceInfo{TraceID: id, Spans: len(recs)}
	for _, si := range ordered {
		if p, ok := infos[si.Parent]; ok && si.Parent != si.ID {
			p.Children = append(p.Children, si)
		} else {
			ti.Roots = append(ti.Roots, si)
		}
	}
	// Break parentage cycles. A remote parent ID that happens to equal a
	// local span ID (possible if another process's ID space collides)
	// can link spans into a loop where no member is a root, which would
	// silently drop the whole component. Promote the earliest span of
	// each unreachable component to a root.
	reached := make(map[uint64]bool, len(infos))
	var mark func(si *SpanInfo)
	mark = func(si *SpanInfo) {
		if reached[si.ID] {
			return
		}
		reached[si.ID] = true
		for _, c := range si.Children {
			mark(c)
		}
	}
	for _, r := range ti.Roots {
		mark(r)
	}
	for len(reached) < len(ordered) {
		var pick *SpanInfo
		for _, si := range ordered {
			if !reached[si.ID] && (pick == nil || si.Start.Before(pick.Start)) {
				pick = si
			}
		}
		if p, ok := infos[pick.Parent]; ok {
			for i, c := range p.Children {
				if c == pick {
					p.Children = append(p.Children[:i], p.Children[i+1:]...)
					break
				}
			}
		}
		ti.Roots = append(ti.Roots, pick)
		mark(pick)
	}
	sortSpans(ti.Roots)
	for _, si := range infos {
		sortSpans(si.Children)
	}
	if len(ordered) > 0 {
		min := ordered[0].Start
		for _, si := range ordered[1:] {
			if si.Start.Before(min) {
				min = si.Start
			}
		}
		ti.Start = min
	}
	return ti
}

func sortSpans(s []*SpanInfo) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Start.Equal(s[j].Start) {
			return s[i].ID < s[j].ID
		}
		return s[i].Start.Before(s[j].Start)
	})
}
