// The SLO engine: sliding-window service-level objectives with
// multi-window burn rates. Each objective (first-item latency,
// completeness ratio, replica staleness) counts good/bad events into
// bucketed rings at several window lengths; the burn rate of a window is
// its error rate divided by the objective's error budget, and an
// objective is breaching only when EVERY window burns above threshold —
// the classic multi-window rule that ignores both stale history (long
// window alone) and momentary blips (short window alone).

package telemetry

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Objective names used in /slo output and burn-rate metric labels.
const (
	// SLOFirstItem is the time-to-first-item latency objective.
	SLOFirstItem = "first_item"
	// SLOCompleteness is the query completeness-ratio objective.
	SLOCompleteness = "completeness"
	// SLOStaleness is the replica staleness objective.
	SLOStaleness = "staleness"
)

// Default objective targets, exported so daemon flags can advertise the
// same values the engine falls back to.
const (
	// DefaultFirstItemTarget is the default first-item latency target.
	DefaultFirstItemTarget = 500 * time.Millisecond
	// DefaultCompletenessTarget is the default completeness-ratio target.
	DefaultCompletenessTarget = 0.99
	// DefaultStalenessTarget is the default replica staleness target.
	DefaultStalenessTarget = 30 * time.Second
)

// SLOConfig tunes an SLO engine. Zero values take the documented
// defaults, so SLO{} configured with SLOConfig{} is fully usable.
type SLOConfig struct {
	// FirstItemTarget is the latency a query's first item must beat to
	// count as good. Zero means 500ms.
	FirstItemTarget time.Duration
	// FirstItemObjective is the fraction of queries that must meet
	// FirstItemTarget. Zero means 0.99.
	FirstItemObjective float64
	// CompletenessTarget is the minimum completeness ratio a query must
	// reach to count as good. Zero means 0.99.
	CompletenessTarget float64
	// CompletenessObjective is the fraction of queries that must meet
	// CompletenessTarget. Zero means 0.99.
	CompletenessObjective float64
	// StalenessTarget is the maximum replica lag that counts as good.
	// Zero means 30s.
	StalenessTarget time.Duration
	// StalenessObjective is the fraction of staleness samples that must
	// meet StalenessTarget. Zero means 0.99.
	StalenessObjective float64
	// Windows are the sliding-window lengths, shortest first. Empty means
	// {1m, 5m, 30m}. Tests and experiments inject short windows here.
	Windows []time.Duration
	// BurnThreshold is the burn rate above which a window is considered
	// burning. Zero means 1.0 (consuming error budget faster than allowed).
	BurnThreshold float64
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.FirstItemTarget <= 0 {
		c.FirstItemTarget = DefaultFirstItemTarget
	}
	if c.FirstItemObjective <= 0 {
		c.FirstItemObjective = 0.99
	}
	if c.CompletenessTarget <= 0 {
		c.CompletenessTarget = DefaultCompletenessTarget
	}
	if c.CompletenessObjective <= 0 {
		c.CompletenessObjective = 0.99
	}
	if c.StalenessTarget <= 0 {
		c.StalenessTarget = DefaultStalenessTarget
	}
	if c.StalenessObjective <= 0 {
		c.StalenessObjective = 0.99
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1.0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloBuckets is the number of ring buckets per window: enough resolution
// that an expiring bucket moves the error rate by at most a few percent.
const sloBuckets = 30

// sloWindow is one bucketed sliding window of good/bad counts.
type sloWindow struct {
	length    time.Duration
	bucketDur time.Duration
	good      [sloBuckets]int64
	bad       [sloBuckets]int64
	lastIdx   int64 // absolute bucket index last written/advanced to
}

// advance zeroes buckets skipped since the last observation so stale
// counts never linger. Must be called with the objective lock held.
func (w *sloWindow) advance(now time.Time) int {
	idx := now.UnixNano() / int64(w.bucketDur)
	if w.lastIdx == 0 {
		w.lastIdx = idx
	}
	for i := w.lastIdx + 1; i <= idx; i++ {
		slot := int(i % sloBuckets)
		if slot < 0 {
			slot += sloBuckets
		}
		w.good[slot] = 0
		w.bad[slot] = 0
		if i-w.lastIdx > sloBuckets {
			// Everything expired; no need to walk the rest one by one.
			for j := range w.good {
				w.good[j] = 0
				w.bad[j] = 0
			}
			break
		}
	}
	if idx > w.lastIdx {
		w.lastIdx = idx
	}
	slot := int(idx % sloBuckets)
	if slot < 0 {
		slot += sloBuckets
	}
	return slot
}

// totals sums the window's counts after expiring stale buckets.
func (w *sloWindow) totals(now time.Time) (good, bad int64) {
	w.advance(now)
	for i := range w.good {
		good += w.good[i]
		bad += w.bad[i]
	}
	return good, bad
}

// sloObjective is one named objective with its windows.
type sloObjective struct {
	name      string
	objective float64 // e.g. 0.99 — target fraction of good events
	mu        sync.Mutex
	windows   []*sloWindow
}

func (o *sloObjective) observe(now time.Time, good bool) {
	o.mu.Lock()
	for _, w := range o.windows {
		slot := w.advance(now)
		if good {
			w.good[slot]++
		} else {
			w.bad[slot]++
		}
	}
	o.mu.Unlock()
}

// WindowStatus is one window's view of an objective in /slo output.
type WindowStatus struct {
	Window     string  `json:"window"`     // window length, e.g. "1m0s"
	Events     int64   `json:"events"`     // observations inside the window
	Violations int64   `json:"violations"` // bad observations inside the window
	ErrorRate  float64 `json:"error_rate"` // violations / events
	BurnRate   float64 `json:"burn_rate"`  // error rate / error budget
	Burning    bool    `json:"burning"`    // burn rate above threshold
}

// ObjectiveStatus is one objective's view in /slo output.
type ObjectiveStatus struct {
	Name      string         `json:"name"`      // objective name
	Objective float64        `json:"objective"` // target good fraction
	Target    string         `json:"target"`    // human-readable good/bad boundary
	Windows   []WindowStatus `json:"windows"`   // per-window burn state
	Breach    bool           `json:"breach"`    // all windows burning
}

// SLOStatus is the full /slo response body.
type SLOStatus struct {
	At         time.Time         `json:"at"`         // evaluation time
	Objectives []ObjectiveStatus `json:"objectives"` // per-objective state
	Breach     bool              `json:"breach"`     // any objective breaching
}

// SLO is the sliding-window objective engine. A nil *SLO is a valid
// disabled engine: observations are no-ops and Status reports nothing.
type SLO struct {
	cfg        SLOConfig
	firstItem  *sloObjective
	complete   *sloObjective
	staleness  *sloObjective
	objectives []*sloObjective
	targets    map[string]string
}

// NewSLO creates an SLO engine with the given objectives and windows.
func NewSLO(cfg SLOConfig) *SLO {
	cfg = cfg.withDefaults()
	mk := func(name string, objective float64) *sloObjective {
		o := &sloObjective{name: name, objective: objective}
		for _, l := range cfg.Windows {
			d := l / sloBuckets
			if d <= 0 {
				d = time.Millisecond
			}
			o.windows = append(o.windows, &sloWindow{length: l, bucketDur: d})
		}
		return o
	}
	s := &SLO{
		cfg:       cfg,
		firstItem: mk(SLOFirstItem, cfg.FirstItemObjective),
		complete:  mk(SLOCompleteness, cfg.CompletenessObjective),
		staleness: mk(SLOStaleness, cfg.StalenessObjective),
		targets: map[string]string{
			SLOFirstItem:    "first item within " + cfg.FirstItemTarget.String(),
			SLOCompleteness: "completeness >= " + formatRatio(cfg.CompletenessTarget),
			SLOStaleness:    "replica lag within " + cfg.StalenessTarget.String(),
		},
	}
	s.objectives = []*sloObjective{s.firstItem, s.complete, s.staleness}
	return s
}

func formatRatio(r float64) string {
	return strconv.FormatFloat(r, 'g', 4, 64)
}

// FirstItemTarget returns the configured first-item latency target
// (0 on nil) so callers can align other thresholds with it.
func (s *SLO) FirstItemTarget() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.FirstItemTarget
}

// ObserveFirstItem records one query's time-to-first-item. Queries whose
// first item beat the target count as good.
func (s *SLO) ObserveFirstItem(d time.Duration) {
	if s == nil {
		return
	}
	s.firstItem.observe(s.cfg.Now(), d <= s.cfg.FirstItemTarget)
}

// ObserveCompleteness records one query's completeness ratio
// (responded/contacted). Ratios at or above the target count as good.
func (s *SLO) ObserveCompleteness(ratio float64) {
	if s == nil {
		return
	}
	s.complete.observe(s.cfg.Now(), ratio >= s.cfg.CompletenessTarget)
}

// ObserveStaleness records one replica staleness sample. Lag at or below
// the target counts as good.
func (s *SLO) ObserveStaleness(d time.Duration) {
	if s == nil {
		return
	}
	s.staleness.observe(s.cfg.Now(), d <= s.cfg.StalenessTarget)
}

// BurnRate returns the named objective's burn rate over the given window
// (0 when the engine is nil or the window has no events). It exists for
// experiment scoring; /slo and metrics cover operations.
func (s *SLO) BurnRate(name string, window time.Duration) float64 {
	if s == nil {
		return 0
	}
	now := s.cfg.Now()
	for _, o := range s.objectives {
		if o.name != name {
			continue
		}
		o.mu.Lock()
		defer o.mu.Unlock()
		for _, w := range o.windows {
			if w.length != window {
				continue
			}
			good, bad := w.totals(now)
			return burnRate(good, bad, o.objective)
		}
	}
	return 0
}

// burnRate converts good/bad counts into an error-budget burn multiple.
func burnRate(good, bad int64, objective float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		budget = 1e-9
	}
	errRate := float64(bad) / float64(total)
	return errRate / budget
}

// Status evaluates every objective across every window.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	now := s.cfg.Now()
	st := SLOStatus{At: now}
	for _, o := range s.objectives {
		os := ObjectiveStatus{Name: o.name, Objective: o.objective, Target: s.targets[o.name]}
		o.mu.Lock()
		burningAll := true
		sawEvents := false
		for _, w := range o.windows {
			good, bad := w.totals(now)
			total := good + bad
			ws := WindowStatus{
				Window:     w.length.String(),
				Events:     total,
				Violations: bad,
				BurnRate:   burnRate(good, bad, o.objective),
			}
			if total > 0 {
				sawEvents = true
				ws.ErrorRate = float64(bad) / float64(total)
			}
			// The epsilon absorbs float error so a burn of exactly 1.0
			// (budget consumed at precisely the allowed rate) is not a breach.
			ws.Burning = ws.BurnRate > s.cfg.BurnThreshold+1e-9
			if !ws.Burning {
				burningAll = false
			}
			os.Windows = append(os.Windows, ws)
		}
		o.mu.Unlock()
		os.Breach = burningAll && sawEvents
		if os.Breach {
			st.Breach = true
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// RegisterMetrics exposes per-objective, per-window burn rates as the
// wsda_slo_burn_rate gauge family on m. Safe on nil receiver or nil m.
func (s *SLO) RegisterMetrics(m *Metrics) {
	if s == nil || m == nil {
		return
	}
	vec := m.GaugeFuncVec("wsda_slo_burn_rate",
		"Error-budget burn rate per objective and window (1.0 = budget consumed exactly at the allowed rate).",
		"objective", "window")
	for _, o := range s.objectives {
		for _, w := range o.windows {
			o, w := o, w
			vec.With(func() float64 {
				o.mu.Lock()
				good, bad := w.totals(s.cfg.Now())
				o.mu.Unlock()
				return burnRate(good, bad, o.objective)
			}, o.name, w.length.String())
		}
	}
}

// SLOHandler serves the engine's Status as JSON at /slo.
func SLOHandler(s *SLO) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	}
}
