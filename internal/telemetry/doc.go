// Package telemetry provides the observability layer of this
// reproduction: a lock-cheap metrics registry (atomic counters, gauges
// and bounded histograms with quantile estimation, optionally labeled),
// a span tracer with a bounded ring of recent traces, and HTTP handlers
// exposing both in Prometheus text and JSON form.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Span, *Metrics or *Tracer are no-ops, so library code can
// thread instruments through hot paths unconditionally and pay only a
// nil check (~1ns) when telemetry is disabled.
//
// cmd/registryd and cmd/peerd mount the exposition handlers; DESIGN.md
// and OPERATIONS.md catalog the metric families the system emits.
package telemetry
