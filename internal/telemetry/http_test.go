package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMountEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Counter("mount_total", "Things.").Add(9)
	tr := NewTracer(16)
	sp := tr.StartSpanID("tx-a", 0, "op")
	child := tr.StartSpan("", sp, "inner")
	child.End()
	sp.End()

	mux := http.NewServeMux()
	Mount(mux, m, tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "mount_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if len(fams) != 1 || fams[0].Name != "mount_total" || fams[0].Series[0].Value != 9 {
		t.Fatalf("/debug/vars = %+v", fams)
	}

	resp, body = get("/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", resp.StatusCode)
	}
	var traces []*TraceInfo
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].TraceID != "tx-a" || traces[0].Spans != 2 {
		t.Fatalf("/debug/traces = %+v", traces)
	}

	resp, body = get("/debug/traces?trace=tx-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?trace status = %d", resp.StatusCode)
	}
	var one TraceInfo
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("?trace not JSON: %v\n%s", err, body)
	}
	if one.TraceID != "tx-a" || len(one.Roots) != 1 || one.Roots[0].Name != "op" {
		t.Fatalf("?trace = %+v", one)
	}

	resp, _ = get("/debug/traces?trace=missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", resp.StatusCode)
	}
}
