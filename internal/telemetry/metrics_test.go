package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("test_total", "")
	const goroutines, perG = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value() = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	m := NewMetrics()
	v := m.CounterVec("test_labeled_total", "", "node")
	const goroutines, perG = 8, 2_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Alternate between a shared child and a per-goroutine child so
			// both the fast read path and the create path race.
			mine := string(rune('a' + g))
			for i := 0; i < perG; i++ {
				v.With("shared").Inc()
				v.With(mine).Inc()
			}
		}(g)
	}
	wg.Wait()
	if got := v.With("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared child = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := v.With(string(rune('a' + g))).Value(); got != perG {
			t.Fatalf("child %c = %d, want %d", 'a'+g, got, perG)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("test_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.005)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count() = %d, want %d", got, goroutines*perG)
	}
	want := 0.005 * goroutines * perG
	if got := h.Sum(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("Sum() = %g, want ~%g", got, want)
	}
	// All observations landed in the (0.001, 0.01] bucket, so every
	// quantile interpolates inside it.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := h.Quantile(q); v <= 0.001 || v > 0.01 {
			t.Fatalf("Quantile(%v) = %g, want in (0.001, 0.01]", q, v)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in first bucket
	}
	if v := h.Quantile(0.5); v <= 0 || v > 1 {
		t.Fatalf("Quantile(0.5) = %g, want in (0, 1]", v)
	}
	h.Observe(100) // overflow bucket reports the largest finite bound
	if v := h.Quantile(1); v != 4 {
		t.Fatalf("Quantile(1) = %g, want 4", v)
	}
	var empty Histogram
	if v := empty.Quantile(0.5); v != 0 {
		t.Fatalf("empty Quantile = %g, want 0", v)
	}
}

// TestWritePrometheusGolden pins the exact exposition output: family and
// series ordering, label escaping, cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("test_requests_total", "Requests served.").Add(3)
	m.Gauge("test_queue_depth", "Queue depth.").Set(7.5)
	v := m.CounterVec("test_hits_total", "Hits per node.", "node")
	v.With("b").Add(2)
	v.With(`a"quoted\`).Add(1)
	h := m.Histogram("test_latency_seconds", "Latency.", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(7)
	m.CounterFunc("test_fn_total", "Bridged counter.", func() int64 { return 42 })

	want := strings.Join([]string{
		`# HELP test_fn_total Bridged counter.`,
		`# TYPE test_fn_total counter`,
		`test_fn_total 42`,
		`# HELP test_hits_total Hits per node.`,
		`# TYPE test_hits_total counter`,
		`test_hits_total{node="a\"quoted\\"} 1`,
		`test_hits_total{node="b"} 2`,
		`# HELP test_latency_seconds Latency.`,
		`# TYPE test_latency_seconds histogram`,
		`test_latency_seconds_bucket{le="1"} 1`,
		`test_latency_seconds_bucket{le="5"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		`test_latency_seconds_sum 10.5`,
		`test_latency_seconds_count 3`,
		`# HELP test_queue_depth Queue depth.`,
		`# TYPE test_queue_depth gauge`,
		`test_queue_depth 7.5`,
		`# HELP test_requests_total Requests served.`,
		`# TYPE test_requests_total counter`,
		`test_requests_total 3`,
	}, "\n") + "\n"

	var sb strings.Builder
	m.WritePrometheus(&sb)
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Counter("s_total", "").Add(5)
	m.HistogramVec("s_seconds", "", []float64{1, 2}, "phase").With("p1").Observe(0.5)
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d families, want 2", len(snap))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	if v := byName["s_total"].Series[0].Value; v != 5 {
		t.Fatalf("s_total = %g, want 5", v)
	}
	hs := byName["s_seconds"].Series[0]
	if hs.Labels["phase"] != "p1" {
		t.Fatalf("labels = %v, want phase=p1", hs.Labels)
	}
	if hs.Hist == nil || hs.Hist.Count != 1 || hs.Hist.Sum != 0.5 {
		t.Fatalf("hist = %+v, want count=1 sum=0.5", hs.Hist)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge should panic")
		}
	}()
	m.Gauge("x_total", "")
}

// TestNilSafety exercises every instrument method on nil receivers — the
// disabled-telemetry configuration every library package runs with by
// default. Any panic here breaks telemetry-off users.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	c := m.Counter("n_total", "")
	c.Add(1)
	c.Inc()
	_ = c.Value()
	g := m.Gauge("n_gauge", "")
	g.Set(1)
	_ = g.Value()
	h := m.Histogram("n_seconds", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	_ = h.Count()
	_ = h.Sum()
	_ = h.Quantile(0.5)
	m.CounterFunc("n_fn", "", func() int64 { return 0 })
	m.GaugeFunc("n_gfn", "", func() float64 { return 0 })
	m.CounterVec("n_cv", "", "l").With("v").Inc()
	m.GaugeVec("n_gv", "", "l").With("v").Set(1)
	m.HistogramVec("n_hv", "", nil, "l").With("v").Observe(1)
	m.WritePrometheus(&strings.Builder{})
	if m.Snapshot() != nil {
		t.Fatal("nil Metrics Snapshot should be nil")
	}

	var tr *Tracer
	_ = tr.NewTraceID()
	sp := tr.StartSpan("t1", nil, "op")
	sp.SetAttr(String("k", "v"))
	_ = sp.ID()
	_ = sp.TraceID()
	sp.End()
	sp2 := tr.StartSpanID("t1", 7, "op")
	sp2.End()
	tr.Event("t1", 0, "ev")
	if tr.Traces(10) != nil {
		t.Fatal("nil Tracer Traces should be nil")
	}
	if tr.Trace("t1") != nil {
		t.Fatal("nil Tracer Trace should be nil")
	}
}

// Benchmarks proving the disabled configuration costs only a nil check.
// The acceptance bar is <=5ns/op; a predicted branch on nil runs in well
// under 1ns on anything modern.

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.0)
	}
}

func BenchmarkNilSpanLifecycle(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpanID("t", 0, "op")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	m := NewMetrics()
	c := m.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	m := NewMetrics()
	h := m.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
