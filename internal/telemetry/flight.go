// The query flight recorder: a bounded, allocation-cheap event log of a
// transaction's full lifecycle across the discovery plane. Where the span
// ring (trace.go) answers "how long did each hop take", the flight
// recorder answers the operator question "what exactly happened to THIS
// query" — every fan-out, retransmission, breaker trip, streamed item and
// the closing summary, in order, keyed by transaction ID.
//
// Recording is a single mutex-guarded append of a small value into a
// per-transaction slice; transactions are retained in an insertion-order
// ring so a busy node cannot grow memory without bound. Queries that
// finish slow (first item past the SLO target) or incomplete are copied
// into a second ring, the slowlog — the operator's entry point: slowlog
// names the suspect transaction, /debug/query/<tx> replays its life.

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Flight event kinds. String constants keep the JSON self-describing and
// cost nothing to record.
const (
	// FlightSubmit marks the originator accepting a query (peer = entry).
	FlightSubmit = "submit"
	// FlightReceived marks a query message arriving on a node (n = hop).
	FlightReceived = "received"
	// FlightDuplicate marks a loop-detected duplicate query.
	FlightDuplicate = "duplicate"
	// FlightExpired marks a query dropped past its loop deadline.
	FlightExpired = "dropped-expired"
	// FlightPlanned marks the registry planning a local evaluation
	// (note = chosen plan: index/scan pushdown or the view path).
	FlightPlanned = "planned"
	// FlightPlanFallback marks a local evaluation whose shape the pushdown
	// planner rejected, falling back to the interpreted view path
	// (note = shared|streamed view path).
	FlightPlanFallback = "plan-fallback"
	// FlightViewHit marks a local evaluation served from the synced view.
	FlightViewHit = "view-hit"
	// FlightViewMiss marks a local evaluation that had to rebuild a view.
	FlightViewMiss = "view-miss"
	// FlightEval marks a finished local evaluation (n = hits).
	FlightEval = "eval"
	// FlightForward marks a child query sent to a neighbor (peer = child).
	FlightForward = "forward"
	// FlightRetransmit marks a retransmission (peer = target, n = budget left).
	FlightRetransmit = "retransmit"
	// FlightBreakerSkip marks a neighbor skipped on an open circuit.
	FlightBreakerSkip = "breaker-skip"
	// FlightBreakerOpen marks a neighbor circuit tripping open.
	FlightBreakerOpen = "breaker-open"
	// FlightPartial marks a partial result arriving (peer = child, n = items).
	FlightPartial = "partial"
	// FlightChildFinal marks a child's final answer (n = subtree hits).
	FlightChildFinal = "child-final"
	// FlightNodeFinal marks a node sending its final upstream (n = subtree hits).
	FlightNodeFinal = "node-final"
	// FlightAbort marks the dynamic abort timer firing on a node.
	FlightAbort = "abort"
	// FlightClose marks a KindClose cancelling the transaction on a node.
	FlightClose = "close"
	// FlightItem marks one result item reaching the originator (n = count so far).
	FlightItem = "item"
	// FlightFirstItem marks the first result item reaching the originator.
	FlightFirstItem = "first-item"
	// FlightNetSend marks the transport accepting a message (note = kind).
	FlightNetSend = "net-send"
	// FlightStreamItem marks an item leaving the HTTP edge (n = count so far).
	FlightStreamItem = "stream-item"
	// FlightStreamClose marks the HTTP edge writing its summary trailer.
	FlightStreamClose = "stream-close"
	// FlightRouted marks a shard router dispatching work to a shard
	// (peer = shard, note = "write", "single-shard" or "scatter").
	FlightRouted = "routed"
	// FlightShardError marks a shard failing mid-request on the router
	// (peer = shard, note = error text) — the event behind a
	// complete="false" merged stream.
	FlightShardError = "shard-error"
	// FlightTenantAdmit marks the tenant gate admitting a request
	// (peer = tenant, n = tenant in-flight after admission, note = class).
	FlightTenantAdmit = "tenant-admit"
	// FlightTenantShed marks the tenant gate shedding a request because
	// the admission queue saturated (peer = tenant, note = class).
	FlightTenantShed = "tenant-shed"
	// FlightTenantThrottle marks the tenant gate rejecting a request on a
	// per-tenant quota (peer = tenant, note = "rate" or "concurrency").
	FlightTenantThrottle = "tenant-throttle"
	// FlightSummaryKind is the closing accounting event written by Finish.
	FlightSummaryKind = "summary"
)

// FlightEvent is one recorded lifecycle event. Seq orders events globally
// within one recorder even when timestamps collide.
type FlightEvent struct {
	Seq  uint64    `json:"seq"`            // recorder-wide sequence number
	At   time.Time `json:"at"`             // wall-clock time of the event
	Kind string    `json:"kind"`           // one of the Flight* constants
	Node string    `json:"node,omitempty"` // where the event happened
	Peer string    `json:"peer,omitempty"` // the other party, if any
	N    int64     `json:"n,omitempty"`    // kind-specific count
	Note string    `json:"note,omitempty"` // kind-specific annotation
}

// FlightSummary is the closing accounting of one transaction — what Finish
// records and what the slowlog retains.
type FlightSummary struct {
	TxID           string        `json:"tx"`               // transaction ID
	At             time.Time     `json:"at"`               // completion time
	FirstItem      time.Duration `json:"first_item_ns"`    // latency to first item (0 = none)
	Elapsed        time.Duration `json:"elapsed_ns"`       // total latency
	Items          int           `json:"items"`            // result items delivered
	Complete       bool          `json:"complete"`         // nothing known missing
	Aborted        bool          `json:"aborted"`          // deadline cut it short
	NodesContacted int           `json:"nodes_contacted"`  // fan-out accounting
	NodesResponded int           `json:"nodes_responded"`  // fan-out accounting
	Err            string        `json:"err,omitempty"`    // downstream failure notes
	Reason         string        `json:"reason,omitempty"` // slowlog admission reason
}

// FlightInfo is the queryable snapshot of one transaction's recording —
// the /debug/query/<tx> response body.
type FlightInfo struct {
	TxID    string         `json:"tx"`                // transaction ID
	Events  []FlightEvent  `json:"events"`            // lifecycle events, in order
	Dropped int            `json:"dropped,omitempty"` // events lost to the per-tx cap
	Summary *FlightSummary `json:"summary,omitempty"` // closing accounting, if finished
}

// FlightConfig tunes a FlightRecorder.
type FlightConfig struct {
	// Capacity bounds how many transactions are retained; the oldest is
	// evicted when a new transaction arrives at the cap. Zero means 256.
	Capacity int
	// EventsPerTx bounds the events retained per transaction; further
	// events are counted as dropped. Zero means 512.
	EventsPerTx int
	// SlowlogCapacity bounds the slowlog ring. Zero means 64.
	SlowlogCapacity int
	// SlowThreshold admits a finished transaction into the slowlog when
	// its first-item latency exceeds it (or when it finished incomplete).
	// This is normally the first-item SLO target. Zero means 250ms.
	SlowThreshold time.Duration
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.EventsPerTx <= 0 {
		c.EventsPerTx = 512
	}
	if c.SlowlogCapacity <= 0 {
		c.SlowlogCapacity = 64
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// flightTx is the mutable per-transaction record inside the recorder.
type flightTx struct {
	events  []FlightEvent
	dropped int
	summary *FlightSummary
}

// FlightRecorder records per-transaction lifecycle events into bounded
// rings. A nil *FlightRecorder is a valid disabled recorder: every method
// is a cheap no-op, so instrumentation points need no branching.
type FlightRecorder struct {
	cfg FlightConfig
	seq atomic.Uint64

	mu    sync.Mutex
	txs   map[string]*flightTx
	order []string // tx eviction ring, insertion order
	next  int
	slow  []FlightSummary // slowlog ring
	snext int
	total int // slowlog entries ever admitted
}

// NewFlightRecorder creates a recorder with the given bounds.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:   cfg,
		txs:   make(map[string]*flightTx, cfg.Capacity),
		order: make([]string, cfg.Capacity),
	}
}

// SlowThreshold returns the slowlog admission threshold (0 on nil).
func (fr *FlightRecorder) SlowThreshold() time.Duration {
	if fr == nil {
		return 0
	}
	return fr.cfg.SlowThreshold
}

// getLocked returns (creating if needed) the record for tx, evicting the
// oldest transaction at capacity. fr.mu must be held.
func (fr *FlightRecorder) getLocked(tx string) *flightTx {
	if t, ok := fr.txs[tx]; ok {
		return t
	}
	if old := fr.order[fr.next]; old != "" {
		delete(fr.txs, old)
	}
	fr.order[fr.next] = tx
	fr.next = (fr.next + 1) % len(fr.order)
	t := &flightTx{events: make([]FlightEvent, 0, 16)}
	fr.txs[tx] = t
	return t
}

// Record appends one event to tx's flight log. Safe on nil; events past
// the per-transaction cap are counted, not stored.
func (fr *FlightRecorder) Record(tx, kind, node, peer string, n int64, note string) {
	if fr == nil || tx == "" {
		return
	}
	ev := FlightEvent{
		Seq: fr.seq.Add(1), At: fr.cfg.Now(),
		Kind: kind, Node: node, Peer: peer, N: n, Note: note,
	}
	fr.mu.Lock()
	t := fr.getLocked(tx)
	if len(t.events) < fr.cfg.EventsPerTx {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	fr.mu.Unlock()
}

// Finish closes tx's recording with its summary: a FlightSummaryKind event
// is appended, the summary is attached for /debug/query/<tx>, and slow or
// incomplete transactions are admitted into the slowlog.
func (fr *FlightRecorder) Finish(tx string, sum FlightSummary) {
	if fr == nil || tx == "" {
		return
	}
	sum.TxID = tx
	if sum.At.IsZero() {
		sum.At = fr.cfg.Now()
	}
	switch {
	case sum.FirstItem > fr.cfg.SlowThreshold:
		sum.Reason = "slow-first-item"
	case sum.Items == 0 && sum.Elapsed > fr.cfg.SlowThreshold:
		sum.Reason = "slow-empty"
	case !sum.Complete:
		sum.Reason = "incomplete"
	}
	note := "complete"
	if !sum.Complete {
		note = "incomplete"
	}
	if sum.Aborted {
		note += ",aborted"
	}
	ev := FlightEvent{
		Seq: fr.seq.Add(1), At: sum.At, Kind: FlightSummaryKind,
		N: int64(sum.Items), Note: note,
	}
	fr.mu.Lock()
	t := fr.getLocked(tx)
	if len(t.events) < fr.cfg.EventsPerTx {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	s := sum
	t.summary = &s
	if sum.Reason != "" {
		if len(fr.slow) < fr.cfg.SlowlogCapacity {
			fr.slow = append(fr.slow, sum)
		} else {
			fr.slow[fr.snext] = sum
		}
		fr.snext = (fr.snext + 1) % fr.cfg.SlowlogCapacity
		fr.total++
	}
	fr.mu.Unlock()
}

// Tx returns the recorded flight of one transaction, or nil when the
// recorder is disabled or the transaction fell off the ring.
func (fr *FlightRecorder) Tx(tx string) *FlightInfo {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	t, ok := fr.txs[tx]
	if !ok {
		return nil
	}
	info := &FlightInfo{
		TxID:    tx,
		Events:  append([]FlightEvent(nil), t.events...),
		Dropped: t.dropped,
	}
	if t.summary != nil {
		s := *t.summary
		info.Summary = &s
	}
	return info
}

// Slowlog returns the retained slow/incomplete transaction summaries, most
// recent first, plus how many were ever admitted (the ring may have
// evicted older ones).
func (fr *FlightRecorder) Slowlog() ([]FlightSummary, int) {
	if fr == nil {
		return nil, 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightSummary, 0, len(fr.slow))
	// Walk the ring backwards from the most recently written slot.
	for i := 0; i < len(fr.slow); i++ {
		idx := (fr.snext - 1 - i + len(fr.slow)) % len(fr.slow)
		out = append(out, fr.slow[idx])
	}
	return out, fr.total
}
