package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// MetricsHandler serves the Prometheus text exposition of m. A nil
// registry serves an empty body.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}

// VarsHandler serves the JSON snapshot of m (expvar-style, but typed).
func VarsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Snapshot())
	})
}

// TracesHandler serves reconstructed span trees from t as JSON.
// Query parameters: trace=ID selects one trace; limit=N bounds how many
// recent traces are returned (default 20).
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace"); id != "" {
			ti := t.Trace(id)
			if ti == nil {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			writeJSON(w, ti)
			return
		}
		limit := 20
		if s := r.URL.Query().Get("limit"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				limit = v
			}
		}
		writeJSON(w, t.Traces(limit))
	})
}

// FlightHandler serves one transaction's flight recording as JSON. It is
// meant to be mounted at /debug/query/ (note the trailing slash); the
// transaction ID is the remainder of the path after the mount prefix.
func FlightHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tx := strings.TrimPrefix(r.URL.Path, "/debug/query/")
		if tx == "" || tx == r.URL.Path {
			http.Error(w, "usage: /debug/query/<tx>", http.StatusBadRequest)
			return
		}
		info := fr.Tx(tx)
		if info == nil {
			http.Error(w, "no such transaction (evicted or never recorded)", http.StatusNotFound)
			return
		}
		writeJSON(w, info)
	})
}

// SlowlogResponse is the /debug/slowlog body: the retained slow or
// incomplete transaction summaries, most recent first.
type SlowlogResponse struct {
	Threshold string          `json:"threshold"` // slowlog admission threshold
	Admitted  int             `json:"admitted"`  // entries ever admitted
	Entries   []FlightSummary `json:"entries"`   // retained summaries, newest first
}

// SlowlogHandler serves the recorder's slowlog as JSON.
func SlowlogHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entries, total := fr.Slowlog()
		if entries == nil {
			entries = []FlightSummary{}
		}
		writeJSON(w, SlowlogResponse{
			Threshold: fr.SlowThreshold().String(),
			Admitted:  total,
			Entries:   entries,
		})
	})
}

// Mount registers the standard telemetry endpoints — /metrics,
// /debug/vars and /debug/traces — on the mux.
func Mount(mux *http.ServeMux, m *Metrics, t *Tracer) {
	mux.Handle("/metrics", MetricsHandler(m))
	mux.Handle("/debug/vars", VarsHandler(m))
	mux.Handle("/debug/traces", TracesHandler(t))
}

// MountObservability registers the flight-recorder and SLO endpoints —
// /debug/query/<tx>, /debug/slowlog and /slo — on the mux. Nil arguments
// mount handlers that report empty/disabled state rather than 404s, so
// probes keep working when a daemon runs with telemetry off.
func MountObservability(mux *http.ServeMux, fr *FlightRecorder, s *SLO) {
	mux.Handle("/debug/query/", FlightHandler(fr))
	mux.Handle("/debug/slowlog", SlowlogHandler(fr))
	mux.Handle("/slo", SLOHandler(s))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
