package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the Prometheus text exposition of m. A nil
// registry serves an empty body.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}

// VarsHandler serves the JSON snapshot of m (expvar-style, but typed).
func VarsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Snapshot())
	})
}

// TracesHandler serves reconstructed span trees from t as JSON.
// Query parameters: trace=ID selects one trace; limit=N bounds how many
// recent traces are returned (default 20).
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace"); id != "" {
			ti := t.Trace(id)
			if ti == nil {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			writeJSON(w, ti)
			return
		}
		limit := 20
		if s := r.URL.Query().Get("limit"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				limit = v
			}
		}
		writeJSON(w, t.Traces(limit))
	})
}

// Mount registers the standard telemetry endpoints — /metrics,
// /debug/vars and /debug/traces — on the mux.
func Mount(mux *http.ServeMux, m *Metrics, t *Tracer) {
	mux.Handle("/metrics", MetricsHandler(m))
	mux.Handle("/debug/vars", VarsHandler(m))
	mux.Handle("/debug/traces", TracesHandler(t))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
