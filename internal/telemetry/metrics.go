package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning 1µs..10s — the latency range of every path this repo measures,
// from in-process registry operations to simulated wide-area hops.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a bounded, atomic bucketed histogram. Observations are
// counted into fixed buckets; quantiles are estimated by linear
// interpolation within the target bucket. The sum is kept in 1e-9 fixed
// point so that Observe never needs a CAS loop.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the final +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNano.Load()) / 1e9
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts.
// It returns 0 when the histogram is empty; values landing in the
// overflow bucket are reported as the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// kind discriminates instrument families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// child is one labeled series of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFn   func() int64
	gaugeFn     func() float64
}

// family is one named metric with zero or more labeled series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]*child
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Metrics is a registry of named instrument families. A nil *Metrics is
// a valid disabled registry: every constructor returns a nil instrument
// whose methods are no-ops.
type Metrics struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it if needed and
// panicking if the name is already registered with a different kind.
func (m *Metrics) lookup(name, help string, k kind, labels []string, buckets []float64) *family {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				name, k.promType(), f.kind.promType()))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	m.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	return m.lookup(name, help, kindCounter, nil, nil).get(nil).counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	return m.lookup(name, help, kindGauge, nil, nil).get(nil).gauge
}

// Histogram registers (or fetches) an unlabeled histogram. A nil or
// empty buckets slice uses DefBuckets.
func (m *Metrics) Histogram(name, help string, buckets []float64) *Histogram {
	if m == nil {
		return nil
	}
	return m.lookup(name, help, kindHistogram, nil, buckets).get(nil).hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their
// own atomic counters (no double accounting).
func (m *Metrics) CounterFunc(name, help string, fn func() int64) {
	if m == nil {
		return
	}
	f := m.lookup(name, help, kindCounterFunc, nil, nil)
	c := f.get(nil)
	c.counterFn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (e.g. live tuple counts, state-table sizes).
func (m *Metrics) GaugeFunc(name, help string, fn func() float64) {
	if m == nil {
		return
	}
	f := m.lookup(name, help, kindGaugeFunc, nil, nil)
	c := f.get(nil)
	c.gaugeFn = fn
}

// GaugeFuncVec is a gauge family with labels whose series values are read
// from callbacks at exposition time — the labeled form of GaugeFunc, for
// per-instance state that already lives behind an accessor (e.g. one
// breaker open-count per node).
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec registers (or fetches) a labeled gauge-func family.
func (m *Metrics) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	if m == nil {
		return nil
	}
	return &GaugeFuncVec{f: m.lookup(name, help, kindGaugeFunc, labels, nil)}
}

// With binds fn as the series for the given label values; fn is invoked on
// every exposition. Re-binding the same label set replaces the callback.
func (v *GaugeFuncVec) With(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	c := v.f.get(values)
	c.gaugeFn = fn
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (m *Metrics) CounterVec(name, help string, labels ...string) *CounterVec {
	if m == nil {
		return nil
	}
	return &CounterVec{f: m.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (m *Metrics) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if m == nil {
		return nil
	}
	return &GaugeVec{f: m.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (m *Metrics) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if m == nil {
		return nil
	}
	return &HistogramVec{f: m.lookup(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values).hist
}

// sortedFamilies returns families ordered by name, each with its
// children ordered by label values, for deterministic exposition.
func (m *Metrics) sortedFamilies() []*family {
	m.mu.RLock()
	fams := make([]*family, 0, len(m.families))
	for _, f := range m.families {
		fams = append(fams, f)
	}
	m.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	cs := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		cs = append(cs, c)
	}
	f.mu.RUnlock()
	sort.Slice(cs, func(i, j int) bool {
		return strings.Join(cs[i].labelValues, "\x00") < strings.Join(cs[j].labelValues, "\x00")
	})
	return cs
}

func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	for _, f := range m.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, c := range f.sortedChildren() {
			ls := labelString(f.labels, c.labelValues)
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.counter.Value())
			case kindCounterFunc:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.counterFn())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fnum(c.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fnum(c.gaugeFn()))
			case kindHistogram:
				h := c.hist
				cum := int64(0)
				for i, ub := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.labelValues, "le", fnum(ub)), cum)
				}
				cum += h.buckets[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, fnum(h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, h.Count())
			}
		}
	}
}

// HistSnapshot is the JSON form of one histogram series.
type HistSnapshot struct {
	Count int64   `json:"count"` // observations recorded
	Sum   float64 `json:"sum"`   // sum of observed values
	P50   float64 `json:"p50"`   // median estimate from the buckets
	P95   float64 `json:"p95"`   // 95th-percentile estimate
	P99   float64 `json:"p99"`   // 99th-percentile estimate
}

// Series is one labeled series of a family snapshot.
type Series struct {
	Labels map[string]string `json:"labels,omitempty"` // label set ("" family: nil)
	Value  float64           `json:"value,omitempty"`  // counter/gauge value
	Hist   *HistSnapshot     `json:"hist,omitempty"`   // histogram summary, if a histogram
}

// FamilySnapshot is the JSON form of one metric family.
type FamilySnapshot struct {
	Name   string   `json:"name"`           // metric family name
	Help   string   `json:"help,omitempty"` // registration help text
	Type   string   `json:"type"`           // "counter", "gauge" or "histogram"
	Series []Series `json:"series"`         // every labeled series of the family
}

// Snapshot captures every family for JSON exposition (/debug/vars) and
// for embedding in benchmark harness output.
func (m *Metrics) Snapshot() []FamilySnapshot {
	if m == nil {
		return nil
	}
	var out []FamilySnapshot
	for _, f := range m.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.promType()}
		for _, c := range f.sortedChildren() {
			s := Series{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					s.Labels[n] = c.labelValues[i]
				}
			}
			switch f.kind {
			case kindCounter:
				s.Value = float64(c.counter.Value())
			case kindCounterFunc:
				s.Value = float64(c.counterFn())
			case kindGauge:
				s.Value = c.gauge.Value()
			case kindGaugeFunc:
				s.Value = c.gaugeFn()
			case kindHistogram:
				s.Hist = &HistSnapshot{
					Count: c.hist.Count(), Sum: c.hist.Sum(),
					P50: c.hist.Quantile(0.50), P95: c.hist.Quantile(0.95),
					P99: c.hist.Quantile(0.99),
				}
			}
			fs.Series = append(fs.Series, s)
		}
		out = append(out, fs)
	}
	return out
}
