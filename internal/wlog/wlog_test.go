package wlog

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevels(t *testing.T) {
	l, err := parseLevels("warn,updf=debug,replica=error")
	if err != nil {
		t.Fatal(err)
	}
	if l.base != slog.LevelWarn {
		t.Fatalf("base = %v", l.base)
	}
	if l.min("updf") != slog.LevelDebug || l.min("replica") != slog.LevelError {
		t.Fatalf("overrides wrong: %+v", l.override)
	}
	if l.min("other") != slog.LevelWarn {
		t.Fatal("unknown component should use base")
	}
	if _, err := parseLevels("bogus"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := parseLevels("updf=debug,info"); err == nil {
		t.Fatal("base after override accepted")
	}
}

func TestTextFormat(t *testing.T) {
	var sb strings.Builder
	l, err := New(Config{W: &sb})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("serving", "addr", "127.0.0.1:8080")
	l.Warn("slow query", "tx", "a#1", "note", "two words")
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "serving addr=127.0.0.1:8080") {
		t.Fatalf("info line: %q", lines[0])
	}
	if strings.Contains(lines[0], "INFO") {
		t.Fatalf("info lines must stay unprefixed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "WARN slow query") || !strings.Contains(lines[1], `note="two words"`) {
		t.Fatalf("warn line: %q", lines[1])
	}
}

func TestJSONFormat(t *testing.T) {
	var sb strings.Builder
	l, err := New(Config{Format: "json", W: &sb})
	if err != nil {
		t.Fatal(err)
	}
	WithTx(WithComponent(l, "updf"), "a#7").Info("forwarded", "peer", "node/3")
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, sb.String())
	}
	if rec["msg"] != "forwarded" || rec[AttrComponent] != "updf" || rec[AttrTx] != "a#7" || rec["peer"] != "node/3" {
		t.Fatalf("record: %v", rec)
	}
}

func TestPerComponentFiltering(t *testing.T) {
	var sb strings.Builder
	l, err := New(Config{Level: "warn,updf=debug", W: &sb})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	WithComponent(l, "updf").Debug("kept", "k", "v")
	WithComponent(l, "replica").Info("dropped too")
	out := sb.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("filtered lines leaked:\n%s", out)
	}
	if !strings.Contains(out, "kept") {
		t.Fatalf("override level lost:\n%s", out)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Format: "xml"}); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := New(Config{Level: "loud"}); err == nil {
		t.Fatal("bad level accepted")
	}
}
