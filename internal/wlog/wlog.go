// Package wlog is the discovery plane's structured logging layer: a thin
// configuration shim over the standard library's log/slog that gives every
// daemon and CLI the same three knobs — level, per-component level
// overrides, and output format — plus the correlation attributes (tx,
// trace, component) that tie a log line back to a flight recording or a
// span tree.
//
// The default "text" format deliberately mimics the classic log.Printf
// look ("2006/01/02 15:04:05 message key=value"), so flipping a daemon
// from ad-hoc logging to wlog changes nothing for a human tailing stderr;
// "json" switches to slog's JSON handler for machine ingestion.
//
// Per-component levels are spelled in the level string itself:
// "info,updf=debug,replica=warn" runs everything at info except the updf
// and replica components. A component is whatever a caller tags its logger
// with via WithComponent.
package wlog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"
)

// AttrComponent is the attribute key that names the subsystem a logger
// speaks for; per-component level overrides match against it.
const AttrComponent = "component"

// AttrTx is the attribute key carrying a transaction ID, correlating a
// log line with /debug/query/<tx>.
const AttrTx = "tx"

// AttrTrace is the attribute key carrying a trace ID, correlating a log
// line with /debug/traces.
const AttrTrace = "trace"

// AttrTenant is the attribute key naming the authenticated tenant a log
// line concerns, correlating it with the wsda_tenant_* metric families.
const AttrTenant = "tenant"

// Config selects level, format and destination for a new logger.
type Config struct {
	// Level is the minimum level, optionally with per-component
	// overrides: "info", "debug", "warn,updf=debug". Empty means "info".
	Level string
	// Format is "text" (human-readable, log.Printf-like; the default) or
	// "json" (one slog JSON object per line).
	Format string
	// W is the destination; nil means os.Stderr.
	W io.Writer
}

// ParseLevel converts a single level word into a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// levels is a parsed level spec: a base level plus per-component
// overrides.
type levels struct {
	base     slog.Level
	override map[string]slog.Level
}

func parseLevels(spec string) (levels, error) {
	l := levels{base: slog.LevelInfo, override: map[string]slog.Level{}}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if comp, lvl, ok := strings.Cut(part, "="); ok {
			v, err := ParseLevel(lvl)
			if err != nil {
				return l, err
			}
			l.override[strings.TrimSpace(comp)] = v
			continue
		}
		v, err := ParseLevel(part)
		if err != nil {
			return l, err
		}
		if i > 0 {
			return l, fmt.Errorf("base level must come first in %q", spec)
		}
		l.base = v
	}
	return l, nil
}

func (l levels) min(component string) slog.Level {
	if v, ok := l.override[component]; ok {
		return v
	}
	return l.base
}

// filterHandler wraps an inner handler with per-component level
// filtering. It tracks the component attribute through WithAttrs so a
// logger built with WithComponent filters at that component's level.
type filterHandler struct {
	inner     slog.Handler
	levels    levels
	component string
}

// Enabled reports whether a record at the given level should be logged
// for this handler's component.
func (h *filterHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.levels.min(h.component)
}

// Handle forwards the record to the wrapped handler.
func (h *filterHandler) Handle(ctx context.Context, r slog.Record) error {
	return h.inner.Handle(ctx, r)
}

// WithAttrs returns a handler with the attributes bound, adopting a new
// component for filtering when one of them is the component attribute.
func (h *filterHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &filterHandler{inner: h.inner.WithAttrs(attrs), levels: h.levels, component: h.component}
	for _, a := range attrs {
		if a.Key == AttrComponent {
			nh.component = a.Value.String()
		}
	}
	return nh
}

// WithGroup returns a handler with the group opened on the wrapped
// handler; component filtering is unaffected.
func (h *filterHandler) WithGroup(name string) slog.Handler {
	return &filterHandler{inner: h.inner.WithGroup(name), levels: h.levels, component: h.component}
}

// textHandler renders records in the classic log.Printf shape:
// "2006/01/02 15:04:05 message key=value ...", with a level prefix on
// non-info lines. It keeps daemons' stderr familiar to humans while still
// carrying structured attributes.
type textHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	attrs []slog.Attr
}

func newTextHandler(w io.Writer) *textHandler {
	return &textHandler{mu: &sync.Mutex{}, w: w}
}

// Enabled always reports true; level filtering happens in filterHandler.
func (h *textHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle writes one formatted line.
func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	t := r.Time
	if t.IsZero() {
		t = time.Now()
	}
	b.WriteString(t.Format("2006/01/02 15:04:05"))
	b.WriteByte(' ')
	if r.Level != slog.LevelInfo {
		b.WriteString(r.Level.String())
		b.WriteByte(' ')
	}
	b.WriteString(r.Message)
	writeAttr := func(a slog.Attr) {
		if a.Equal(slog.Attr{}) {
			return
		}
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		v := a.Value.String()
		if strings.ContainsAny(v, " \t\"") {
			fmt.Fprintf(&b, "%q", v)
		} else {
			b.WriteString(v)
		}
	}
	for _, a := range h.attrs {
		writeAttr(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs returns a handler with the attributes appended to every line.
func (h *textHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	na = append(na, attrs...)
	return &textHandler{mu: h.mu, w: h.w, attrs: na}
}

// WithGroup is accepted but flattened: the text format has no nesting.
func (h *textHandler) WithGroup(string) slog.Handler { return h }

// New builds a logger from cfg. The zero Config yields an info-level,
// text-format logger on stderr.
func New(cfg Config) (*slog.Logger, error) {
	lv, err := parseLevels(cfg.Level)
	if err != nil {
		return nil, err
	}
	w := cfg.W
	if w == nil {
		w = os.Stderr
	}
	var inner slog.Handler
	switch cfg.Format {
	case "", "text":
		inner = newTextHandler(w)
	case "json":
		inner = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", cfg.Format)
	}
	return slog.New(&filterHandler{inner: inner, levels: lv}), nil
}

// WithComponent tags l with a component name; per-component level
// overrides apply from here down.
func WithComponent(l *slog.Logger, component string) *slog.Logger {
	return l.With(AttrComponent, component)
}

// WithTx tags l with a transaction ID for flight-recorder correlation.
func WithTx(l *slog.Logger, tx string) *slog.Logger {
	return l.With(AttrTx, tx)
}
