// Package broker implements the remaining processing steps of thesis
// Ch. 2: request, discovery, brokering, execution and control. A request
// names the abstract operations it needs (with interface requirements,
// attribute constraints and locality affinities); the discovery step finds
// candidate services through a WSDA query interface; the brokering step
// maps operations to concrete service endpoints (an invocation schedule);
// the execution step invokes them with failover; and the control step
// monitors lifecycle with timeouts so that a stalled service does not hang
// the request.
//
// Discovery runs through the internal/wsda query interfaces (local
// registry or remote node alike); execution resilience — exponential
// failover backoff and the per-service circuit breaker — builds on
// internal/resilience.
package broker
