package broker

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/resilience"
	"wsda/internal/tuple"
	"wsda/internal/workload"
	"wsda/internal/wsda"
)

// populatedNode builds a registry with n synthetic services and wraps it
// as the discovery source.
func populatedNode(t *testing.T, n int) *wsda.LocalNode {
	t.Helper()
	reg := registry.New(registry.Config{Name: "disc", DefaultTTL: time.Hour})
	if err := workload.NewGen(42).Populate(reg, n, time.Hour); err != nil {
		t.Fatal(err)
	}
	return &wsda.LocalNode{Desc: wsda.NewService("disc").Build(), Registry: reg}
}

// analysisRequest is the thesis's running example: stage input, locate a
// replica, execute, stage output.
func analysisRequest() Request {
	return Request{
		ID: "hep-analysis-1",
		Ops: []OpSpec{
			{
				Name:      "locate-replica",
				Interface: wsda.IfaceXQuery, Operation: "query",
				Constraints: []Constraint{{Attr: "kind", Op: "=", Value: "replica-catalog"}},
			},
			{
				Name:      "stage-in",
				Interface: "Transfer", Operation: "get",
				Constraints: []Constraint{
					{Attr: "kind", Op: "=", Value: "storage-element"},
					{Attr: "diskGB", Op: ">=", Value: "100"},
				},
			},
			{
				Name:      "execute",
				Interface: "Execution", Operation: "submitJob",
				Constraints:  []Constraint{{Attr: "kind", Op: "=", Value: "compute-element"}, {Attr: "load", Op: "<", Value: "0.9"}},
				AffinityWith: "stage-in",
			},
		},
	}
}

func TestDiscoverFiltersAndSorts(t *testing.T) {
	node := populatedNode(t, 120)
	d := &RegistryDiscoverer{Node: node}
	cands, err := d.Discover(OpSpec{
		Interface: "Execution", Operation: "submitJob",
		Constraints: []Constraint{
			{Attr: "kind", Op: "=", Value: "compute-element"},
			{Attr: "load", Op: "<", Value: "0.5"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		if c.Load >= 0.5 {
			t.Errorf("candidate %s load %.2f violates constraint", c.Service.Name, c.Load)
		}
		if c.Service.Attributes["kind"] != "compute-element" {
			t.Errorf("wrong kind: %s", c.Service.Attributes["kind"])
		}
		if c.Endpoint == "" {
			t.Errorf("candidate %s missing endpoint", c.Service.Name)
		}
		if i > 0 && cands[i-1].Load > c.Load {
			t.Error("candidates not sorted by load")
		}
	}
}

func TestDiscoverInterfaceMismatch(t *testing.T) {
	node := populatedNode(t, 60)
	d := &RegistryDiscoverer{Node: node}
	// Storage elements do not implement Execution.
	cands, err := d.Discover(OpSpec{
		Interface: "Execution", Operation: "submitJob",
		Constraints: []Constraint{{Attr: "kind", Op: "=", Value: "storage-element"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("storage elements matched Execution: %d", len(cands))
	}
}

func TestPlanAffinity(t *testing.T) {
	node := populatedNode(t, 200)
	sched, err := Plan(analysisRequest(), &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assign) != 3 {
		t.Fatalf("assignments = %d", len(sched.Assign))
	}
	var stageDomain, execDomain string
	for _, a := range sched.Assign {
		switch a.Op {
		case "stage-in":
			stageDomain = a.Chosen.Service.Domain
		case "execute":
			execDomain = a.Chosen.Service.Domain
		}
	}
	if stageDomain == "" || execDomain == "" {
		t.Fatal("missing assignments")
	}
	// With 200 services every domain has compute elements, so affinity
	// must be satisfiable; the greedy planner must co-locate.
	if stageDomain != execDomain {
		t.Errorf("affinity violated: stage-in in %s, execute in %s", stageDomain, execDomain)
	}
}

func TestPlanErrors(t *testing.T) {
	node := populatedNode(t, 30)
	d := &RegistryDiscoverer{Node: node}
	// Unsatisfiable constraint.
	_, err := Plan(Request{ID: "r", Ops: []OpSpec{{
		Name: "x", Constraints: []Constraint{{Attr: "kind", Op: "=", Value: "no-such-kind"}},
	}}}, d, PlanConfig{})
	if err == nil || !strings.Contains(err.Error(), "no candidate") {
		t.Errorf("err = %v", err)
	}
	// Affinity with a later op.
	_, err = Plan(Request{ID: "r", Ops: []OpSpec{{
		Name: "x", AffinityWith: "later",
		Constraints: []Constraint{{Attr: "kind", Op: "=", Value: "monitor"}},
	}}}, d, PlanConfig{})
	if err == nil {
		t.Error("dangling affinity accepted")
	}
}

func TestRunHappyPath(t *testing.T) {
	node := populatedNode(t, 200)
	sched, err := Plan(analysisRequest(), &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var invoked []string
	r := &Runner{Exec: ExecutorFunc(func(op string, c Candidate, beat func()) error {
		invoked = append(invoked, op+"@"+c.Service.Name)
		return nil
	})}
	rep := r.Run(sched)
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	if len(invoked) != 3 {
		t.Errorf("invoked = %v", invoked)
	}
}

func TestRunFailover(t *testing.T) {
	node := populatedNode(t, 200)
	sched, err := Plan(analysisRequest(), &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var firstExec atomic.Value
	r := &Runner{Exec: ExecutorFunc(func(op string, c Candidate, beat func()) error {
		if op == "execute" && firstExec.CompareAndSwap(nil, c.Service.Name) {
			return fmt.Errorf("service crashed")
		}
		return nil
	})}
	rep := r.Run(sched)
	if !rep.Succeeded() {
		t.Fatalf("failover did not recover: %+v", rep)
	}
	for _, o := range rep.Ops {
		if o.Op == "execute" {
			if len(o.Attempts) != 2 {
				t.Errorf("attempts = %d, want 2", len(o.Attempts))
			}
			if o.Attempts[0].Err == "" || o.Attempts[1].Err != "" {
				t.Errorf("attempts = %+v", o.Attempts)
			}
		}
	}
}

func TestRunExhaustsAndStops(t *testing.T) {
	node := populatedNode(t, 60)
	sched, err := Plan(analysisRequest(), &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		MaxAttempts: 2,
		Exec: ExecutorFunc(func(op string, c Candidate, beat func()) error {
			if op == "stage-in" {
				return fmt.Errorf("all storage down")
			}
			return nil
		}),
	}
	rep := r.Run(sched)
	if rep.Succeeded() {
		t.Fatal("impossible success")
	}
	states := map[string]OpState{}
	for _, o := range rep.Ops {
		states[o.Op] = o.State
	}
	if states["locate-replica"] != StateDone {
		t.Errorf("locate-replica = %s", states["locate-replica"])
	}
	if states["stage-in"] != StateFailed {
		t.Errorf("stage-in = %s", states["stage-in"])
	}
	if states["execute"] != StatePending {
		t.Errorf("execute = %s (must not run after failure)", states["execute"])
	}
}

func TestStallDetection(t *testing.T) {
	node := populatedNode(t, 60)
	sched, err := Plan(Request{ID: "r", Ops: []OpSpec{{
		Name:      "mon",
		Interface: wsda.IfaceXQuery, Operation: "query",
		Constraints: []Constraint{{Attr: "kind", Op: "=", Value: "monitor"}},
	}}}, &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	r := &Runner{
		StallTimeout: 30 * time.Millisecond,
		MaxAttempts:  2,
		Exec: ExecutorFunc(func(op string, c Candidate, beat func()) error {
			if calls.Add(1) == 1 {
				// First service hangs without heartbeats.
				time.Sleep(120 * time.Millisecond)
				return nil
			}
			// Second service is slow but heartbeats properly.
			for i := 0; i < 4; i++ {
				time.Sleep(15 * time.Millisecond)
				beat()
			}
			return nil
		}),
	}
	rep := r.Run(sched)
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	att := rep.Ops[0].Attempts
	if len(att) != 2 || !att[0].Stalled || att[1].Stalled {
		t.Errorf("attempts = %+v", att)
	}
}

func TestBuildDiscoveryQueryQuoting(t *testing.T) {
	q := buildDiscoveryQuery(OpSpec{Constraints: []Constraint{
		{Attr: "kind", Op: "=", Value: "replica-catalog"},
		{Attr: "load", Op: "<", Value: "0.5"},
	}})
	if !strings.Contains(q, `"replica-catalog"`) || !strings.Contains(q, "number(") {
		t.Errorf("query = %s", q)
	}
	// And it must actually compile and run.
	node := populatedNode(t, 30)
	if _, err := node.XQuery(q, registry.QueryOptions{}); err != nil {
		t.Errorf("generated query invalid: %v", err)
	}
	_ = tuple.TypeService
}

func TestRunBreakerSkipsFailedService(t *testing.T) {
	node := populatedNode(t, 200)
	req := analysisRequest()
	sched, err := Plan(req, &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var bad atomic.Value
	exec := ExecutorFunc(func(op string, c Candidate, beat func()) error {
		if op == "execute" {
			bad.CompareAndSwap(nil, c.Service.Name)
			if c.Service.Name == bad.Load().(string) {
				return fmt.Errorf("service crashed")
			}
		}
		return nil
	})
	br := resilience.NewBreaker(resilience.BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	r := &Runner{Exec: exec, Breaker: br}

	// First run: the chosen execute service fails, trips its circuit, and
	// failover recovers on the next candidate.
	if rep := r.Run(sched); !rep.Succeeded() {
		t.Fatalf("first run: %+v", rep)
	}
	name := bad.Load().(string)
	if !br.Open(name) {
		t.Fatalf("circuit for %s not open", name)
	}

	// Second run over a fresh schedule: the broken service is skipped
	// without an invocation attempt.
	sched2, err := Plan(req, &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run(sched2)
	if !rep.Succeeded() {
		t.Fatalf("second run: %+v", rep)
	}
	for _, o := range rep.Ops {
		if o.Op != "execute" {
			continue
		}
		var skipped, invoked bool
		for _, a := range o.Attempts {
			if a.Service == name {
				if a.Skipped {
					skipped = true
				} else {
					invoked = true
				}
			}
		}
		if !skipped || invoked {
			t.Errorf("attempts = %+v: want %s skipped, never invoked", o.Attempts, name)
		}
	}
}

func TestRunRetryBackoffDelaysFailover(t *testing.T) {
	node := populatedNode(t, 200)
	sched, err := Plan(analysisRequest(), &RegistryDiscoverer{Node: node}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	r := &Runner{
		RetryBackoff: 30 * time.Millisecond,
		Exec: ExecutorFunc(func(op string, c Candidate, beat func()) error {
			if op == "execute" && calls.Add(1) < 3 {
				return fmt.Errorf("transient")
			}
			return nil
		}),
	}
	t0 := time.Now()
	rep := r.Run(sched)
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	// Two failovers: 30ms + 60ms of backoff at minimum.
	if d := time.Since(t0); d < 90*time.Millisecond {
		t.Errorf("elapsed %v: backoff not applied", d)
	}
}
