// Package broker implements the remaining processing steps of thesis
// Ch. 2: request, discovery, brokering, execution and control. A request
// names the abstract operations it needs (with interface requirements,
// attribute constraints and locality affinities); the discovery step finds
// candidate services through a WSDA query interface; the brokering step
// maps operations to concrete service endpoints (an invocation schedule);
// the execution step invokes them with failover; and the control step
// monitors lifecycle with timeouts so that a stalled service does not hang
// the request.
package broker

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
)

// Constraint is one attribute predicate of an operation spec, e.g.
// {"load", "<", "0.5"} or {"diskGB", ">=", "1000"}.
type Constraint struct {
	Attr  string
	Op    string // "<", "<=", ">", ">=", "=", "!="
	Value string
}

// OpSpec is one abstract operation of a request.
type OpSpec struct {
	// Name is the logical step name, e.g. "stage-in".
	Name string
	// Interface and Operation state what the executing service must
	// implement; Protocol optionally pins the binding.
	Interface string
	Operation string
	Protocol  string
	// Constraints filter candidates on service attributes.
	Constraints []Constraint
	// AffinityWith names another OpSpec whose chosen service's domain this
	// operation prefers (data-locality: run the job where the data is).
	AffinityWith string
}

// Request is a unit of work needing several correlated services (the
// thesis example: file transfer + replica catalog + request execution).
type Request struct {
	ID  string
	Ops []OpSpec
}

// Candidate is a discovered service able to execute an operation.
type Candidate struct {
	Service  *wsda.Service
	Link     string
	Endpoint string
	Load     float64
}

// Discoverer finds candidates for an operation spec (the discovery step).
type Discoverer interface {
	Discover(spec OpSpec) ([]Candidate, error)
}

// RegistryDiscoverer discovers candidates through a WSDA XQuery interface
// by compiling the spec into a discovery query.
type RegistryDiscoverer struct {
	Node wsda.XQueryIface
}

// Discover implements Discoverer. The generated query selects service
// tuples, filters on constraints server-side, and returns the matching
// service elements; interface matching happens client-side through the
// parsed description (bindings need structural inspection anyway).
func (d *RegistryDiscoverer) Discover(spec OpSpec) ([]Candidate, error) {
	query := buildDiscoveryQuery(spec)
	seq, err := d.Node.XQuery(query, registry.QueryOptions{})
	if err != nil {
		return nil, fmt.Errorf("broker: discovery for %s: %w", spec.Name, err)
	}
	var out []Candidate
	for _, it := range seq {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			continue
		}
		svc, err := wsda.ServiceFromXML(n)
		if err != nil {
			continue
		}
		if spec.Interface != "" && !svc.Matches(wsda.MatchSpec{
			Interface: spec.Interface, Operation: spec.Operation, Protocol: spec.Protocol,
		}) {
			continue
		}
		load := 0.0
		if s, ok := svc.Attributes["load"]; ok {
			load, _ = strconv.ParseFloat(s, 64)
		}
		ep := ""
		if spec.Interface != "" {
			proto := spec.Protocol
			if proto == "" {
				proto = "http"
			}
			ep = svc.Endpoint(spec.Interface, spec.Operation, proto)
		}
		out = append(out, Candidate{Service: svc, Link: svc.Link, Endpoint: ep, Load: load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Load < out[j].Load })
	return out, nil
}

// buildDiscoveryQuery renders an OpSpec as an XQuery over the registry's
// tuple-set view.
func buildDiscoveryQuery(spec OpSpec) string {
	var conds []string
	for _, c := range spec.Constraints {
		op := c.Op
		if op == "" {
			op = "="
		}
		if _, err := strconv.ParseFloat(c.Value, 64); err == nil {
			conds = append(conds, fmt.Sprintf(
				`number($s/attr[@name=%q]/@value) %s %s`, c.Attr, op, c.Value))
		} else {
			conds = append(conds, fmt.Sprintf(
				`$s/attr[@name=%q]/@value %s %q`, c.Attr, op, c.Value))
		}
	}
	where := ""
	if len(conds) > 0 {
		where = "where " + strings.Join(conds, " and ")
	}
	return fmt.Sprintf(`for $s in /tupleset/tuple/content/service %s return $s`, where)
}

// Assignment binds one operation to a concrete candidate, with the
// runner's failover alternatives.
type Assignment struct {
	Op           string
	Chosen       Candidate
	Alternatives []Candidate // sorted by increasing cost, excluding Chosen
}

// Schedule is the brokering result: a mapping of operations to service
// invocations (thesis Ch. 2.7).
type Schedule struct {
	Request string
	Assign  []Assignment
	Cost    float64

	// TraceID links the discovery/brokering trace with the later
	// execution trace when telemetry is enabled ("" otherwise).
	TraceID string
}

// PlanConfig tunes the brokering cost function.
type PlanConfig struct {
	// AffinityPenalty is added when an operation lands in a different
	// domain than its affinity target. Default 1.0 (dominates load).
	AffinityPenalty float64

	// Metrics, when set, receives discovery latency histograms.
	Metrics *telemetry.Metrics
	// Tracer, when set, records a span tree for the plan: one root with a
	// discovery child per operation.
	Tracer *telemetry.Tracer
}

// Plan performs the brokering step: discover candidates per operation and
// greedily choose the cheapest assignment, honoring locality affinities
// (operations are processed in order, so affinity targets must precede
// their dependents).
func Plan(req Request, disc Discoverer, cfg PlanConfig) (*Schedule, error) {
	if cfg.AffinityPenalty == 0 {
		cfg.AffinityPenalty = 1.0
	}
	sp := cfg.Tracer.StartSpan("", nil, "broker.plan")
	sp.SetAttr(telemetry.String("request", req.ID))
	defer sp.End()
	discoverSeconds := cfg.Metrics.Histogram("wsda_broker_discover_seconds",
		"Latency of candidate discovery per operation.", nil)
	chosenDomain := map[string]string{}
	sched := &Schedule{Request: req.ID, TraceID: sp.TraceID()}
	for _, spec := range req.Ops {
		var d0 time.Time
		if discoverSeconds != nil {
			d0 = time.Now()
		}
		dsp := cfg.Tracer.StartSpan("", sp, "broker.discover")
		dsp.SetAttr(telemetry.String("op", spec.Name))
		cands, err := disc.Discover(spec)
		discoverSeconds.ObserveSince(d0)
		if dsp != nil {
			dsp.SetAttr(telemetry.Int("candidates", int64(len(cands))))
			if err != nil {
				dsp.SetAttr(telemetry.String("err", err.Error()))
			}
			dsp.End()
		}
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("broker: no candidate for operation %q", spec.Name)
		}
		affDomain := ""
		if spec.AffinityWith != "" {
			d, ok := chosenDomain[spec.AffinityWith]
			if !ok {
				return nil, fmt.Errorf("broker: %q has affinity with unknown/later op %q", spec.Name, spec.AffinityWith)
			}
			affDomain = d
		}
		cost := func(c Candidate) float64 {
			v := c.Load
			if affDomain != "" && c.Service.Domain != affDomain {
				v += cfg.AffinityPenalty
			}
			return v
		}
		sort.SliceStable(cands, func(i, j int) bool { return cost(cands[i]) < cost(cands[j]) })
		a := Assignment{Op: spec.Name, Chosen: cands[0], Alternatives: cands[1:]}
		sched.Assign = append(sched.Assign, a)
		sched.Cost += cost(cands[0])
		chosenDomain[spec.Name] = cands[0].Service.Domain
	}
	return sched, nil
}

// Executor invokes one assignment (the execution step). Implementations
// range from real HTTP invocations to the simulator used in tests.
type Executor interface {
	// Invoke runs the operation; progress may be reported through beat
	// (the control channel): calling beat() renews the runner's stall
	// timer, mirroring the soft-state heartbeats of thesis Ch. 2.9.
	Invoke(op string, c Candidate, beat func()) error
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(op string, c Candidate, beat func()) error

// Invoke implements Executor.
func (f ExecutorFunc) Invoke(op string, c Candidate, beat func()) error { return f(op, c, beat) }

// OpState is the lifecycle state of one operation (the control step).
type OpState string

// Lifecycle states.
const (
	StatePending OpState = "pending"
	StateRunning OpState = "running"
	StateDone    OpState = "done"
	StateFailed  OpState = "failed"
)

// OpReport describes one operation's execution.
type OpReport struct {
	Op       string
	State    OpState
	Attempts []Attempt
}

// Attempt is one invocation try.
type Attempt struct {
	Service  string
	Err      string
	Stalled  bool
	Duration time.Duration
}

// Report is the outcome of running a schedule.
type Report struct {
	Request string
	Ops     []OpReport
	Elapsed time.Duration
}

// Succeeded reports whether every operation completed.
func (r *Report) Succeeded() bool {
	for _, o := range r.Ops {
		if o.State != StateDone {
			return false
		}
	}
	return true
}

// Runner executes schedules with failover and stall detection.
type Runner struct {
	Exec Executor
	// StallTimeout aborts an invocation if no heartbeat arrives for this
	// long (0 disables stall detection).
	StallTimeout time.Duration
	// MaxAttempts bounds tries per operation including failovers
	// (0 means 1 + len(alternatives)).
	MaxAttempts int

	// Metrics, when set, receives invocation latency histograms and
	// failover/stall counters.
	Metrics *telemetry.Metrics
	// Tracer, when set, records an execution span tree: one root per run,
	// one child per invocation attempt, sharing the schedule's TraceID so
	// discovery, brokering and execution line up in one trace.
	Tracer *telemetry.Tracer
}

// Run executes the schedule's operations in order, failing over to the
// next-best candidate on error or stall.
func (r *Runner) Run(s *Schedule) *Report {
	start := time.Now()
	sp := r.Tracer.StartSpanID(s.TraceID, 0, "broker.execute")
	sp.SetAttr(telemetry.String("request", s.Request))
	var invokeSeconds *telemetry.Histogram
	var failovers, stalls *telemetry.Counter
	if m := r.Metrics; m != nil {
		invokeSeconds = m.Histogram("wsda_broker_invoke_seconds",
			"Latency of service invocation attempts.", nil)
		failovers = m.Counter("wsda_broker_failovers_total",
			"Invocation attempts beyond the first, per operation.")
		stalls = m.Counter("wsda_broker_stalls_total",
			"Invocations aborted by the control step's stall timeout.")
	}
	rep := &Report{Request: s.Request}
	for _, a := range s.Assign {
		or := OpReport{Op: a.Op, State: StateRunning}
		tries := append([]Candidate{a.Chosen}, a.Alternatives...)
		maxAttempts := r.MaxAttempts
		if maxAttempts <= 0 || maxAttempts > len(tries) {
			maxAttempts = len(tries)
		}
		for i := 0; i < maxAttempts; i++ {
			cand := tries[i]
			if i > 0 {
				failovers.Inc()
			}
			isp := r.Tracer.StartSpan(s.TraceID, sp, "broker.invoke")
			att, ok := r.invokeOnce(a.Op, cand)
			invokeSeconds.ObserveDuration(att.Duration)
			if att.Stalled {
				stalls.Inc()
			}
			if isp != nil {
				isp.SetAttr(telemetry.String("op", a.Op),
					telemetry.String("service", cand.Service.Name),
					telemetry.Bool("ok", ok))
				if att.Err != "" {
					isp.SetAttr(telemetry.String("err", att.Err))
				}
				if att.Stalled {
					isp.SetAttr(telemetry.Bool("stalled", true))
				}
				isp.End()
			}
			or.Attempts = append(or.Attempts, att)
			if ok {
				or.State = StateDone
				break
			}
		}
		if or.State != StateDone {
			or.State = StateFailed
		}
		rep.Ops = append(rep.Ops, or)
		if or.State == StateFailed {
			// Later operations are pointless once a step fails.
			for _, rest := range s.Assign[len(rep.Ops):] {
				rep.Ops = append(rep.Ops, OpReport{Op: rest.Op, State: StatePending})
			}
			break
		}
	}
	rep.Elapsed = time.Since(start)
	if sp != nil {
		sp.SetAttr(telemetry.Bool("succeeded", rep.Succeeded()))
		sp.End()
	}
	return rep
}

// invokeOnce runs a single attempt with stall monitoring.
func (r *Runner) invokeOnce(op string, cand Candidate) (Attempt, bool) {
	att := Attempt{Service: cand.Service.Name}
	t0 := time.Now()
	if r.StallTimeout <= 0 {
		err := r.Exec.Invoke(op, cand, func() {})
		att.Duration = time.Since(t0)
		if err != nil {
			att.Err = err.Error()
			return att, false
		}
		return att, true
	}
	beatCh := make(chan struct{}, 16)
	done := make(chan error, 1)
	go func() {
		done <- r.Exec.Invoke(op, cand, func() {
			select {
			case beatCh <- struct{}{}:
			default:
			}
		})
	}()
	timer := time.NewTimer(r.StallTimeout)
	defer timer.Stop()
	for {
		select {
		case err := <-done:
			att.Duration = time.Since(t0)
			if err != nil {
				att.Err = err.Error()
				return att, false
			}
			return att, true
		case <-beatCh:
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(r.StallTimeout)
		case <-timer.C:
			att.Duration = time.Since(t0)
			att.Stalled = true
			att.Err = fmt.Sprintf("broker: %s on %s stalled (> %v without heartbeat)", op, cand.Service.Name, r.StallTimeout)
			return att, false
		}
	}
}
