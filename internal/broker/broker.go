package broker

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsda/internal/registry"
	"wsda/internal/resilience"
	"wsda/internal/telemetry"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
)

// Constraint is one attribute predicate of an operation spec, e.g.
// {"load", "<", "0.5"} or {"diskGB", ">=", "1000"}.
type Constraint struct {
	Attr  string // service attribute name, e.g. "load"
	Op    string // "<", "<=", ">", ">=", "=", "!="
	Value string // literal the attribute is compared against
}

// OpSpec is one abstract operation of a request.
type OpSpec struct {
	// Name is the logical step name, e.g. "stage-in".
	Name string
	// Interface and Operation state what the executing service must
	// implement; Protocol optionally pins the binding.
	Interface string
	Operation string // operation name within Interface
	Protocol  string // optional binding protocol filter, e.g. "http"
	// Constraints filter candidates on service attributes.
	Constraints []Constraint
	// AffinityWith names another OpSpec whose chosen service's domain this
	// operation prefers (data-locality: run the job where the data is).
	AffinityWith string
}

// Request is a unit of work needing several correlated services (the
// thesis example: file transfer + replica catalog + request execution).
type Request struct {
	ID  string   // caller-chosen request identifier, echoed in reports
	Ops []OpSpec // the correlated operations to be brokered together
}

// Candidate is a discovered service able to execute an operation.
type Candidate struct {
	Service  *wsda.Service // parsed service description
	Link     string        // tuple link (service identity)
	Endpoint string        // bound invocation endpoint for the operation
	Load     float64       // advertised load attribute (0 when absent)
}

// Discoverer finds candidates for an operation spec (the discovery step).
type Discoverer interface {
	// Discover returns every candidate service able to satisfy the spec.
	Discover(spec OpSpec) ([]Candidate, error)
}

// RegistryDiscoverer discovers candidates through a WSDA XQuery interface
// by compiling the spec into a discovery query.
type RegistryDiscoverer struct {
	Node wsda.XQueryIface // the registry (local or remote) to query
}

// Discover implements Discoverer. The generated query selects service
// tuples, filters on constraints server-side, and returns the matching
// service elements; interface matching happens client-side through the
// parsed description (bindings need structural inspection anyway).
func (d *RegistryDiscoverer) Discover(spec OpSpec) ([]Candidate, error) {
	query := buildDiscoveryQuery(spec)
	seq, err := d.Node.XQuery(query, registry.QueryOptions{})
	if err != nil {
		return nil, fmt.Errorf("broker: discovery for %s: %w", spec.Name, err)
	}
	var out []Candidate
	for _, it := range seq {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			continue
		}
		svc, err := wsda.ServiceFromXML(n)
		if err != nil {
			continue
		}
		if spec.Interface != "" && !svc.Matches(wsda.MatchSpec{
			Interface: spec.Interface, Operation: spec.Operation, Protocol: spec.Protocol,
		}) {
			continue
		}
		load := 0.0
		if s, ok := svc.Attributes["load"]; ok {
			load, _ = strconv.ParseFloat(s, 64)
		}
		ep := ""
		if spec.Interface != "" {
			proto := spec.Protocol
			if proto == "" {
				proto = "http"
			}
			ep = svc.Endpoint(spec.Interface, spec.Operation, proto)
		}
		out = append(out, Candidate{Service: svc, Link: svc.Link, Endpoint: ep, Load: load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Load < out[j].Load })
	return out, nil
}

// buildDiscoveryQuery renders an OpSpec as an XQuery over the registry's
// tuple-set view.
func buildDiscoveryQuery(spec OpSpec) string {
	var conds []string
	for _, c := range spec.Constraints {
		op := c.Op
		if op == "" {
			op = "="
		}
		if _, err := strconv.ParseFloat(c.Value, 64); err == nil {
			conds = append(conds, fmt.Sprintf(
				`number($s/attr[@name=%q]/@value) %s %s`, c.Attr, op, c.Value))
		} else {
			conds = append(conds, fmt.Sprintf(
				`$s/attr[@name=%q]/@value %s %q`, c.Attr, op, c.Value))
		}
	}
	where := ""
	if len(conds) > 0 {
		where = "where " + strings.Join(conds, " and ")
	}
	return fmt.Sprintf(`for $s in /tupleset/tuple/content/service %s return $s`, where)
}

// Assignment binds one operation to a concrete candidate, with the
// runner's failover alternatives.
type Assignment struct {
	Op           string      // OpSpec.Name this assignment covers
	Chosen       Candidate   // cheapest candidate satisfying the spec
	Alternatives []Candidate // sorted by increasing cost, excluding Chosen
}

// Schedule is the brokering result: a mapping of operations to service
// invocations (thesis Ch. 2.7).
type Schedule struct {
	Request string       // Request.ID this schedule answers
	Assign  []Assignment // one entry per operation, in request order
	Cost    float64      // summed cost of the chosen candidates

	// TraceID links the discovery/brokering trace with the later
	// execution trace when telemetry is enabled ("" otherwise).
	TraceID string
}

// PlanConfig tunes the brokering cost function.
type PlanConfig struct {
	// AffinityPenalty is added when an operation lands in a different
	// domain than its affinity target. Default 1.0 (dominates load).
	AffinityPenalty float64

	// Metrics, when set, receives discovery latency histograms.
	Metrics *telemetry.Metrics
	// Tracer, when set, records a span tree for the plan: one root with a
	// discovery child per operation.
	Tracer *telemetry.Tracer
}

// Plan performs the brokering step: discover candidates per operation and
// greedily choose the cheapest assignment, honoring locality affinities
// (operations are processed in order, so affinity targets must precede
// their dependents).
func Plan(req Request, disc Discoverer, cfg PlanConfig) (*Schedule, error) {
	if cfg.AffinityPenalty == 0 {
		cfg.AffinityPenalty = 1.0
	}
	sp := cfg.Tracer.StartSpan("", nil, "broker.plan")
	sp.SetAttr(telemetry.String("request", req.ID))
	defer sp.End()
	discoverSeconds := cfg.Metrics.Histogram("wsda_broker_discover_seconds",
		"Latency of candidate discovery per operation.", nil)
	chosenDomain := map[string]string{}
	sched := &Schedule{Request: req.ID, TraceID: sp.TraceID()}
	for _, spec := range req.Ops {
		var d0 time.Time
		if discoverSeconds != nil {
			d0 = time.Now()
		}
		dsp := cfg.Tracer.StartSpan("", sp, "broker.discover")
		dsp.SetAttr(telemetry.String("op", spec.Name))
		cands, err := disc.Discover(spec)
		discoverSeconds.ObserveSince(d0)
		if dsp != nil {
			dsp.SetAttr(telemetry.Int("candidates", int64(len(cands))))
			if err != nil {
				dsp.SetAttr(telemetry.String("err", err.Error()))
			}
			dsp.End()
		}
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("broker: no candidate for operation %q", spec.Name)
		}
		affDomain := ""
		if spec.AffinityWith != "" {
			d, ok := chosenDomain[spec.AffinityWith]
			if !ok {
				return nil, fmt.Errorf("broker: %q has affinity with unknown/later op %q", spec.Name, spec.AffinityWith)
			}
			affDomain = d
		}
		cost := func(c Candidate) float64 {
			v := c.Load
			if affDomain != "" && c.Service.Domain != affDomain {
				v += cfg.AffinityPenalty
			}
			return v
		}
		sort.SliceStable(cands, func(i, j int) bool { return cost(cands[i]) < cost(cands[j]) })
		a := Assignment{Op: spec.Name, Chosen: cands[0], Alternatives: cands[1:]}
		sched.Assign = append(sched.Assign, a)
		sched.Cost += cost(cands[0])
		chosenDomain[spec.Name] = cands[0].Service.Domain
	}
	return sched, nil
}

// Executor invokes one assignment (the execution step). Implementations
// range from real HTTP invocations to the simulator used in tests.
type Executor interface {
	// Invoke runs the operation; progress may be reported through beat
	// (the control channel): calling beat() renews the runner's stall
	// timer, mirroring the soft-state heartbeats of thesis Ch. 2.9.
	Invoke(op string, c Candidate, beat func()) error
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(op string, c Candidate, beat func()) error

// Invoke implements Executor.
func (f ExecutorFunc) Invoke(op string, c Candidate, beat func()) error { return f(op, c, beat) }

// OpState is the lifecycle state of one operation (the control step).
type OpState string

// Lifecycle states.
const (
	StatePending OpState = "pending"
	StateRunning OpState = "running"
	StateDone    OpState = "done"
	StateFailed  OpState = "failed"
)

// OpReport describes one operation's execution.
type OpReport struct {
	Op       string    // operation name
	State    OpState   // final state after all attempts
	Attempts []Attempt // every try, including skips and failovers
}

// Attempt is one invocation try.
type Attempt struct {
	Service  string        // candidate service name
	Err      string        // failure reason ("" on success)
	Stalled  bool          // aborted by stall detection (no heartbeat)
	Skipped  bool          // circuit open: candidate passed over without invoking
	Duration time.Duration // wall-clock time spent in the invocation
}

// Report is the outcome of running a schedule.
type Report struct {
	Request string        // Request.ID
	Ops     []OpReport    // per-operation outcomes, in schedule order
	Elapsed time.Duration // total run time including backoff sleeps
}

// Succeeded reports whether every operation completed.
func (r *Report) Succeeded() bool {
	for _, o := range r.Ops {
		if o.State != StateDone {
			return false
		}
	}
	return true
}

// Runner executes schedules with failover and stall detection.
type Runner struct {
	// Exec performs one invocation attempt.
	Exec Executor
	// StallTimeout aborts an invocation if no heartbeat arrives for this
	// long (0 disables stall detection).
	StallTimeout time.Duration
	// MaxAttempts bounds tries per operation including failovers
	// (0 means 1 + len(alternatives)).
	MaxAttempts int

	// RetryBackoff, when positive, sleeps between failover attempts on an
	// exponential series (RetryBackoff, 2×, 4×, capped at 10×RetryBackoff)
	// so a transiently overloaded service is not hammered by immediate
	// failover storms. Zero keeps the historical fail-fast behavior.
	RetryBackoff time.Duration

	// Breaker, when set, is consulted per candidate (keyed by service
	// name): candidates whose circuit is open are skipped without an
	// invocation attempt, and every attempt outcome feeds back into it.
	// One Breaker is typically shared across runners so a service that
	// just failed for one request is skipped by the next.
	Breaker *resilience.Breaker

	// Metrics, when set, receives invocation latency histograms and
	// failover/stall counters.
	Metrics *telemetry.Metrics
	// Tracer, when set, records an execution span tree: one root per run,
	// one child per invocation attempt, sharing the schedule's TraceID so
	// discovery, brokering and execution line up in one trace.
	Tracer *telemetry.Tracer
}

// Run executes the schedule's operations in order, failing over to the
// next-best candidate on error or stall.
func (r *Runner) Run(s *Schedule) *Report {
	start := time.Now()
	sp := r.Tracer.StartSpanID(s.TraceID, 0, "broker.execute")
	sp.SetAttr(telemetry.String("request", s.Request))
	var invokeSeconds *telemetry.Histogram
	var failovers, stalls, skips *telemetry.Counter
	var breakerOpen *telemetry.Gauge
	if m := r.Metrics; m != nil {
		invokeSeconds = m.Histogram("wsda_broker_invoke_seconds",
			"Latency of service invocation attempts.", nil)
		failovers = m.Counter("wsda_broker_failovers_total",
			"Invocation attempts beyond the first, per operation.")
		stalls = m.Counter("wsda_broker_stalls_total",
			"Invocations aborted by the control step's stall timeout.")
		skips = m.Counter("wsda_broker_breaker_skips_total",
			"Candidates passed over because their circuit was open.")
		breakerOpen = m.Gauge("wsda_broker_breaker_open",
			"Service circuits currently open (updated on breaker events).")
	}
	rep := &Report{Request: s.Request}
	for _, a := range s.Assign {
		or := OpReport{Op: a.Op, State: StateRunning}
		tries := append([]Candidate{a.Chosen}, a.Alternatives...)
		maxAttempts := r.MaxAttempts
		if maxAttempts <= 0 || maxAttempts > len(tries) {
			maxAttempts = len(tries)
		}
		backoff := resilience.NewBackoff(r.RetryBackoff, 10*r.RetryBackoff)
		attempts := 0
		for i := 0; i < len(tries) && attempts < maxAttempts; i++ {
			cand := tries[i]
			// Circuit-broken candidates are skipped without burning an
			// attempt: a service that keeps failing for everyone should not
			// cost this request an invocation round trip to rediscover it.
			if r.Breaker != nil && !r.Breaker.Allow(cand.Service.Name) {
				skips.Inc()
				or.Attempts = append(or.Attempts, Attempt{
					Service: cand.Service.Name, Skipped: true, Err: "circuit open",
				})
				continue
			}
			if attempts > 0 {
				failovers.Inc()
				if r.RetryBackoff > 0 {
					time.Sleep(backoff.Next())
				}
			}
			attempts++
			isp := r.Tracer.StartSpan(s.TraceID, sp, "broker.invoke")
			att, ok := r.invokeOnce(a.Op, cand)
			invokeSeconds.ObserveDuration(att.Duration)
			if att.Stalled {
				stalls.Inc()
			}
			if isp != nil {
				isp.SetAttr(telemetry.String("op", a.Op),
					telemetry.String("service", cand.Service.Name),
					telemetry.Bool("ok", ok))
				if att.Err != "" {
					isp.SetAttr(telemetry.String("err", att.Err))
				}
				if att.Stalled {
					isp.SetAttr(telemetry.Bool("stalled", true))
				}
				isp.End()
			}
			or.Attempts = append(or.Attempts, att)
			if r.Breaker != nil {
				if ok {
					r.Breaker.Success(cand.Service.Name)
				} else {
					r.Breaker.Failure(cand.Service.Name)
				}
				if breakerOpen != nil {
					breakerOpen.Set(float64(r.Breaker.OpenCount()))
				}
			}
			if ok {
				or.State = StateDone
				break
			}
		}
		if or.State != StateDone {
			or.State = StateFailed
		}
		rep.Ops = append(rep.Ops, or)
		if or.State == StateFailed {
			// Later operations are pointless once a step fails.
			for _, rest := range s.Assign[len(rep.Ops):] {
				rep.Ops = append(rep.Ops, OpReport{Op: rest.Op, State: StatePending})
			}
			break
		}
	}
	rep.Elapsed = time.Since(start)
	if sp != nil {
		sp.SetAttr(telemetry.Bool("succeeded", rep.Succeeded()))
		sp.End()
	}
	return rep
}

// invokeOnce runs a single attempt with stall monitoring.
func (r *Runner) invokeOnce(op string, cand Candidate) (Attempt, bool) {
	att := Attempt{Service: cand.Service.Name}
	t0 := time.Now()
	if r.StallTimeout <= 0 {
		err := r.Exec.Invoke(op, cand, func() {})
		att.Duration = time.Since(t0)
		if err != nil {
			att.Err = err.Error()
			return att, false
		}
		return att, true
	}
	beatCh := make(chan struct{}, 16)
	done := make(chan error, 1)
	go func() {
		done <- r.Exec.Invoke(op, cand, func() {
			select {
			case beatCh <- struct{}{}:
			default:
			}
		})
	}()
	timer := time.NewTimer(r.StallTimeout)
	defer timer.Stop()
	for {
		select {
		case err := <-done:
			att.Duration = time.Since(t0)
			if err != nil {
				att.Err = err.Error()
				return att, false
			}
			return att, true
		case <-beatCh:
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(r.StallTimeout)
		case <-timer.C:
			att.Duration = time.Since(t0)
			att.Stalled = true
			att.Err = fmt.Sprintf("broker: %s on %s stalled (> %v without heartbeat)", op, cand.Service.Name, r.StallTimeout)
			return att, false
		}
	}
}
