package sdk

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/changefeed"
	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// origin is a full WSDA node (query binding + change feed) with request
// accounting, so tests can assert which reads hit the wire.
type origin struct {
	srv      *httptest.Server
	reg      *registry.Registry
	node     *wsda.LocalNode
	requests atomic.Int64 // query-path requests (feed excluded)
}

func newOrigin(t *testing.T) *origin {
	t.Helper()
	reg := registry.New(registry.Config{
		Name: "origin", DefaultTTL: time.Hour, MinTTL: time.Millisecond,
		JournalCap: 1024,
	})
	o := &origin{reg: reg, node: &wsda.LocalNode{
		Desc:     wsda.NewService("origin").Build(),
		Registry: reg,
	}}
	mux := http.NewServeMux()
	handler := wsda.Handler(o.node)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		o.requests.Add(1)
		handler.ServeHTTP(w, r)
	})
	changefeed.NewServer(reg).Mount(mux) // more specific: feed bypasses the counter
	o.srv = httptest.NewServer(mux)
	t.Cleanup(o.srv.Close)
	return o
}

func (o *origin) publish(t *testing.T, name string) string {
	t.Helper()
	link := "http://sdk.example/" + name
	tp := &tuple.Tuple{
		Link: link, Type: tuple.TypeService,
		Content: xmldoc.MustParse(fmt.Sprintf(`<service name=%q/>`, name)).DocumentElement().Clone(),
	}
	if _, err := o.node.Publish(tp, time.Hour); err != nil {
		t.Fatal(err)
	}
	return link
}

func (o *origin) unpublish(t *testing.T, link string) {
	t.Helper()
	if err := o.node.Unpublish(link); err != nil {
		t.Fatal(err)
	}
}

// newWarmClient returns a started client that has finished arming.
func newWarmClient(t *testing.T, o *origin) *Client {
	t.Helper()
	c, err := New(Config{Origin: o.srv.URL, FeedWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitCursor(ctx, o.reg.Gen()); err != nil {
		t.Fatalf("cache never warmed: %v", err)
	}
	return c
}

// waitPast blocks until the client's cursor passes the origin's current
// generation — "the feed has seen everything written so far".
func waitPast(t *testing.T, c *Client, o *origin) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitCursor(ctx, o.reg.Gen()); err != nil {
		t.Fatalf("cursor never reached gen %d: %v", o.reg.Gen(), err)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	o := newOrigin(t)
	link := o.publish(t, "alpha")
	c := newWarmClient(t, o)

	before := o.requests.Load()
	tp, ok, err := c.Lookup(link)
	if err != nil || !ok {
		t.Fatalf("first lookup: ok=%v err=%v", ok, err)
	}
	if o.requests.Load() != before+1 {
		t.Fatalf("first lookup made %d origin requests, want 1", o.requests.Load()-before)
	}
	tp2, ok, err := c.Lookup(link)
	if err != nil || !ok {
		t.Fatalf("second lookup: ok=%v err=%v", ok, err)
	}
	if o.requests.Load() != before+1 {
		t.Error("second lookup hit the origin; want cache hit")
	}
	if tp2 != tp {
		t.Error("cache hit returned a different tuple pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

// The ordering table: every (fill kind, change kind) pair must converge to
// the origin's state once the feed cursor passes the change — publish
// invalidates stale result sets, unpublish kills dead tuples, and the
// subsequent read refills from the origin. Run under -race this also
// exercises the fill/invalidation guard.
func TestInvalidationOrdering(t *testing.T) {
	filter := registry.Filter{Type: tuple.TypeService}
	cases := []struct {
		name string
		// read performs the cacheable read under test and returns how many
		// live results it sees.
		read func(c *Client) (int, error)
	}{
		{"minquery", func(c *Client) (int, error) {
			ts, err := c.MinQuery(filter)
			return len(ts), err
		}},
		{"xquery", func(c *Client) (int, error) {
			seq, err := c.XQuery(`count(//service)`, registry.QueryOptions{Filter: filter})
			if err != nil || len(seq) == 0 {
				return 0, err
			}
			return int(xq.NumberValue(seq[0])), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := newOrigin(t)
			o.publish(t, "seed")
			c := newWarmClient(t, o)

			if n, err := tc.read(c); err != nil || n != 1 {
				t.Fatalf("cold read: n=%d err=%v", n, err)
			}
			if n, _ := tc.read(c); n != 1 {
				t.Fatalf("warm read diverged: %d", n)
			}
			if st := c.Stats(); st.Hits == 0 {
				t.Fatal("warm read did not hit the cache")
			}

			// publish -> invalidate -> refill
			link := o.publish(t, "second")
			waitPast(t, c, o)
			if n, err := tc.read(c); err != nil || n != 2 {
				t.Fatalf("read after publish: n=%d err=%v (stale result survived the feed)", n, err)
			}

			// unpublish -> invalidate -> refill
			o.unpublish(t, link)
			waitPast(t, c, o)
			if n, err := tc.read(c); err != nil || n != 1 {
				t.Fatalf("read after unpublish: n=%d err=%v (dead tuple served)", n, err)
			}
			if st := c.Stats(); st.Invalidations == 0 {
				t.Error("no invalidations counted across publish+unpublish")
			}
		})
	}
}

// After the feed cursor passes an unpublish, Lookup must never serve the
// dead tuple — the headline guarantee — while unrelated cached entries
// survive untouched (exact invalidation, not a flush).
func TestUnpublishExactInvalidation(t *testing.T) {
	o := newOrigin(t)
	dead := o.publish(t, "dead")
	alive := o.publish(t, "alive")
	c := newWarmClient(t, o)

	for _, l := range []string{dead, alive} {
		if _, ok, err := c.Lookup(l); err != nil || !ok {
			t.Fatalf("prefill %s: ok=%v err=%v", l, ok, err)
		}
	}
	before := o.requests.Load()
	o.unpublish(t, dead)
	waitPast(t, c, o)

	if _, ok, err := c.Lookup(dead); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("dead tuple served after the feed cursor passed the delete")
	}
	// The unrelated entry must still be a hit: no origin round-trip.
	reqAfterDead := o.requests.Load()
	if _, ok, err := c.Lookup(alive); err != nil || !ok {
		t.Fatalf("alive lookup: ok=%v err=%v", ok, err)
	}
	if o.requests.Load() != reqAfterDead {
		t.Error("unpublish of one key evicted an unrelated entry (origin was re-read)")
	}
	_ = before
}

// A MinQuery result set must be invalidated when a NEW tuple matching its
// filter appears (membership can't know it yet — the filter match must).
func TestResultSetInvalidatedByNewMatch(t *testing.T) {
	o := newOrigin(t)
	o.publish(t, "one")
	c := newWarmClient(t, o)

	f := registry.Filter{Type: tuple.TypeService}
	ts, err := c.MinQuery(f)
	if err != nil || len(ts) != 1 {
		t.Fatalf("seed minquery: %d, %v", len(ts), err)
	}
	o.publish(t, "two")
	waitPast(t, c, o)
	ts, err = c.MinQuery(f)
	if err != nil || len(ts) != 2 {
		t.Fatalf("minquery after new match: %d, %v (entry not invalidated)", len(ts), err)
	}
}

// An origin restart (new epoch, reset generation counter) must drop the
// cache cold and re-arm against the new incarnation.
func TestEpochChangeDropsCold(t *testing.T) {
	o1 := newOrigin(t)
	link := o1.publish(t, "x")

	// A stable front URL whose backend can be swapped, like a failover VIP.
	var backend atomic.Pointer[httptest.Server]
	backend.Store(o1.srv)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		r2.RequestURI = ""
		u := *r.URL
		u.Scheme = "http"
		u.Host = backend.Load().Listener.Addr().String()
		r2.URL = &u
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}))
	defer front.Close()

	c, err := New(Config{Origin: front.URL, FeedWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitCursor(ctx, o1.reg.Gen()); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Lookup(link); !ok {
		t.Fatal("prefill failed")
	}

	// Swap in a fresh incarnation that never heard of the tuple.
	o2 := newOrigin(t)
	backend.Store(o2.srv)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.Stats().ColdDrops > 0 && c.Warm() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cold drop after epoch change: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok, err := c.Lookup(link); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("tuple from the old incarnation served after the epoch change")
	}
}

// Concurrency hammer: readers loop Lookup/MinQuery while a writer
// publishes and unpublishes. Run under -race; afterwards the cache must
// converge to the origin's exact final state.
func TestConcurrentReadsDuringChurn(t *testing.T) {
	o := newOrigin(t)
	links := make([]string, 8)
	for i := range links {
		links[i] = o.publish(t, fmt.Sprintf("churn%d", i))
	}
	c := newWarmClient(t, o)

	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 0 {
					_, _ = c.MinQuery(registry.Filter{Type: tuple.TypeService})
				} else {
					_, _, _ = c.Lookup(links[(g+i)%len(links)])
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		o.unpublish(t, links[round%len(links)])
		o.publish(t, fmt.Sprintf("churn%d", round%len(links)))
	}
	final := links[3]
	o.unpublish(t, final)
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}
	waitPast(t, c, o)

	if _, ok, err := c.Lookup(final); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("finally-unpublished tuple still served after churn settled")
	}
	ts, err := c.MinQuery(registry.Filter{Type: tuple.TypeService})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(o.reg.MinQuery(registry.Filter{Type: tuple.TypeService})); len(ts) != want {
		t.Errorf("post-churn minquery = %d tuples, origin has %d", len(ts), want)
	}
}

// The Pager must walk a large result set page by page through the SDK,
// surviving a mid-pagination republish of an existing link.
func TestPagerRoundTrip(t *testing.T) {
	o := newOrigin(t)
	for i := 0; i < 10; i++ {
		o.publish(t, fmt.Sprintf("p%02d", i))
	}
	c, err := New(Config{Origin: o.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	p := c.Pages(`//service/@name`, registry.QueryOptions{}, 4)
	var items []string
	pages := 0
	for p.Next() {
		pages++
		if pages == 1 {
			// Mid-pagination republish of a link already delivered: the
			// positional cursor must keep the walk stable.
			o.publish(t, "p01")
		}
		for _, it := range p.Items() {
			items = append(items, xq.Serialize(xq.Sequence{it}))
		}
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if pages != 3 {
		t.Errorf("pages = %d, want 3 (4+4+2)", pages)
	}
	if len(items) != 10 {
		t.Fatalf("items = %d, want 10", len(items))
	}
	seen := map[string]bool{}
	for _, s := range items {
		if seen[s] {
			t.Errorf("duplicate across page boundary: %s", s)
		}
		seen[s] = true
	}
}

// A pager error must surface through Err and stop iteration.
func TestPagerSurfacesErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{Origin: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pages(`//x`, registry.QueryOptions{}, 2)
	if p.Next() {
		t.Fatal("Next succeeded against an always-500 origin")
	}
	if p.Err() == nil {
		t.Fatal("Err nil after failed page")
	}
}

// Reads with options the cache cannot represent (Emit, freshness bounds)
// must bypass it entirely.
func TestUncacheableOptionsBypass(t *testing.T) {
	o := newOrigin(t)
	o.publish(t, "a")
	c := newWarmClient(t, o)

	opts := registry.QueryOptions{Freshness: registry.Freshness{MaxAge: time.Second}}
	before := o.requests.Load()
	for i := 0; i < 2; i++ {
		if _, err := c.XQuery(`count(//service)`, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.requests.Load() - before; got != 2 {
		t.Errorf("freshness-bounded reads made %d origin requests, want 2 (no caching)", got)
	}
}

// A cold (never started) client is a pure pass-through: correct answers,
// no hits, no stale entries.
func TestColdClientPassesThrough(t *testing.T) {
	o := newOrigin(t)
	link := o.publish(t, "cold")
	c, err := New(Config{Origin: o.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := c.Lookup(link); err != nil || !ok {
			t.Fatalf("cold lookup: ok=%v err=%v", ok, err)
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("cold stats = %+v, want 0 hits 2 misses", st)
	}
}

// MaxEntries must bound the cache: filling past the cap evicts rather than
// grows.
func TestMaxEntriesBoundsCache(t *testing.T) {
	o := newOrigin(t)
	links := make([]string, 12)
	for i := range links {
		links[i] = o.publish(t, fmt.Sprintf("cap%02d", i))
	}
	c, err := New(Config{Origin: o.srv.URL, MaxEntries: 4, FeedWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitCursor(ctx, o.reg.Gen()); err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if _, ok, err := c.Lookup(l); err != nil || !ok {
			t.Fatalf("lookup %s: ok=%v err=%v", l, ok, err)
		}
	}
	if got := c.Stats().Entries; got > 4 {
		t.Errorf("entries = %d, want <= MaxEntries 4", got)
	}
}
