// Package sdk is the production client library for WSDA deployments: a
// read-through tuple/result cache invalidated *exactly* by the origin's
// change feed (S30). There is no TTL guessing — a cached entry lives until
// the feed says its key (or a key matching its filter) changed, so a
// post-unpublish read never serves the dead tuple once the feed cursor has
// passed the delete. When the feed gaps (journal truncation, primary
// restart/epoch change, transport failure) the cache drops to cold and
// re-arms at the origin's current generation, mirroring
// changefeed.Replica's resync semantics: an empty cache plus a current
// cursor is always consistent, because every subsequent fill reads through
// to the origin.
//
// The package also exposes cursor pagination (Pages/Next over
// wsda.Client.XQueryPage) so large result sets never buffer whole, and
// rides the wsda package's shared pooled transport for connection reuse.
package sdk

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xq"
)

// Metric names exported by a Client when Config.Metrics is set.
const (
	// MetricCacheHits counts reads served from the warm cache.
	MetricCacheHits = "wsda_sdk_cache_hit_total"
	// MetricCacheMisses counts reads that went through to the origin.
	MetricCacheMisses = "wsda_sdk_cache_miss_total"
	// MetricCacheInvalidations counts cache entries dropped by feed changes.
	MetricCacheInvalidations = "wsda_sdk_cache_invalidation_total"
	// MetricColdDrops counts whole-cache drops (feed gap/truncation/epoch
	// change/transport failure).
	MetricColdDrops = "wsda_sdk_cache_cold_drops_total"
	// MetricStaleness is the seconds-since-last-feed-sync gauge: how far
	// behind the origin this cache's invalidation view may be.
	MetricStaleness = "wsda_sdk_staleness_seconds"
)

// Config configures a Client.
type Config struct {
	// Origin is the base URL of the node queries and the feed tail go to —
	// a registry or a router that proxies the feed. Required.
	Origin string

	// Token authenticates against origins behind a tenant gate (sent as
	// "Authorization: Bearer ..."). Empty sends no header.
	Token string

	// HTTP overrides the transport for queries and the feed tail; nil uses
	// the wsda package's shared pooled client (sane timeouts, keep-alive
	// reuse). Its response-header timeout must exceed FeedWait.
	HTTP *http.Client

	// FeedWait is the long-poll wait the feed tail asks the origin to hold
	// each request for. Defaults to 10s; must stay below the transport's
	// response-header timeout (wsda.ResponseHeaderTimeout for the default).
	// Negative disables long-polling (plain polling, paced ~10ms).
	FeedWait time.Duration

	// BackoffMin and BackoffMax bound the exponential backoff (with the
	// same jitter a Replica uses) between failed feed rounds. Defaults:
	// 100ms and 10s.
	BackoffMin, BackoffMax time.Duration

	// MaxEntries bounds the cache (tuple entries + result entries) with
	// random-victim eviction. Defaults to 4096.
	MaxEntries int

	// Metrics, when set, exposes the wsda_sdk_* cache counters and the
	// staleness gauge. One Client per metrics registry: the families are
	// unlabeled.
	Metrics *telemetry.Metrics

	// Log, when set, receives feed-tail diagnostics (cold drops, errors).
	// Nil logs nothing.
	Log *slog.Logger

	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.FeedWait == 0 {
		c.FeedWait = 10 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a snapshot of a Client's cache behavior.
type Stats struct {
	Hits          int64         // reads served from the warm cache
	Misses        int64         // reads that went through to the origin
	Invalidations int64         // entries dropped by feed changes
	ColdDrops     int64         // whole-cache drops (gap/truncation/epoch/error)
	Entries       int           // live cache entries (tuples + results)
	Warm          bool          // the feed tail is armed; hits are being served
	Cursor        uint64        // origin generation invalidations are applied through
	Staleness     time.Duration // time since the last successful feed round (0 before the first)
}

// resultEntry is one cached result set plus the information needed to
// invalidate it exactly from feed changes.
type resultEntry struct {
	filter registry.Filter
	// links is the exact membership of a MinQuery result: a delete of one
	// of these keys kills the entry. Nil for XQuery entries, whose item
	// provenance is unknown — deletes fall back to the filter's link
	// prefix, conservatively.
	links  map[string]struct{}
	tuples []*tuple.Tuple // MinQuery results (shared, read-only)
	seq    xq.Sequence    // XQuery results (shared, read-only)
}

// invalidatedBy reports whether feed change ch can affect this result set.
// Upserts match against the entry's filter (the new state may have joined
// the set) or its membership (old state may have left it); deletes match
// membership when known, the filter's link prefix otherwise.
func (e *resultEntry) invalidatedBy(ch registry.Change) bool {
	if e.links != nil {
		if _, ok := e.links[ch.Key]; ok {
			return true
		}
	}
	if ch.Tuple != nil {
		return e.filter.Matches(ch.Tuple)
	}
	if e.links != nil {
		return false // exact membership known, and the deleted key is not in it
	}
	return strings.HasPrefix(ch.Key, e.filter.LinkPrefix)
}

// Client is a caching WSDA client: reads are served from an in-process
// cache kept exact by tailing the origin's change feed. Create with New,
// arm with Start, stop with Close. Safe for concurrent use.
//
// Cached values (tuples, result slices) are shared between callers and the
// cache: treat them as read-only.
type Client struct {
	cfg Config
	wc  *wsda.Client

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	coldDrops     atomic.Int64
	lastSync      atomic.Int64  // UnixNano of the last successful feed round; 0 = never
	cursor        atomic.Uint64 // origin generation invalidations are applied through

	mu       sync.RWMutex
	warm     bool                     // feed armed; cache may serve and fill
	epoch    string                   // origin incarnation the cursor belongs to
	resetSeq uint64                   // bumped on every cold drop; stale fills compare it
	version  uint64                   // bumped per feed change; orders fills against invalidations
	inflight int                      // origin fills in progress (prunes inval when it drains)
	inval    map[string]uint64        // key -> version at its last invalidation
	fills    map[string]chan struct{} // key -> in-flight leader fill (coalescing)
	tuples   map[string]*tuple.Tuple
	results  map[string]*resultEntry

	stop   context.CancelFunc
	stopWG sync.WaitGroup
}

// New returns a caching client for cfg. The cache stays cold (every read
// passes through) until Start arms the feed tail.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Origin == "" {
		return nil, fmt.Errorf("sdk: Config.Origin is required")
	}
	wc := wsda.NewClient(cfg.Origin)
	wc.Token = cfg.Token
	if cfg.HTTP != nil {
		wc.HTTP = cfg.HTTP
	}
	c := &Client{
		cfg:     cfg,
		wc:      wc,
		inval:   make(map[string]uint64),
		fills:   make(map[string]chan struct{}),
		tuples:  make(map[string]*tuple.Tuple),
		results: make(map[string]*resultEntry),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc(MetricCacheHits,
			"SDK reads served from the feed-invalidated cache.", c.hits.Load)
		m.CounterFunc(MetricCacheMisses,
			"SDK reads that went through to the origin.", c.misses.Load)
		m.CounterFunc(MetricCacheInvalidations,
			"SDK cache entries dropped by change-feed invalidations.", c.invalidations.Load)
		m.CounterFunc(MetricColdDrops,
			"SDK whole-cache drops: feed gap, journal truncation, origin epoch change, or feed transport failure.",
			c.coldDrops.Load)
		m.GaugeFunc(MetricStaleness,
			"Seconds since the SDK cache last completed a feed round — the bound on how old its invalidation view is.",
			func() float64 { return c.staleness().Seconds() })
	}
	return c, nil
}

// Origin returns the underlying uncached wsda.Client — for writes
// (publish/unpublish) and anything else that must bypass the cache.
func (c *Client) Origin() *wsda.Client { return c.wc }

// Start launches the feed tail that arms and maintains the cache. It
// returns immediately; until the first feed round lands, reads pass
// through to the origin uncached. Call Close to stop.
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	c.stopWG.Add(1)
	go func() {
		defer c.stopWG.Done()
		c.runFeed(ctx)
	}()
}

// Close stops the feed tail and drops the cache cold. The client remains
// usable as a pass-through (uncached) client afterwards. A clean Close is
// not a feed failure: it neither warns nor counts toward the cold-drop
// metric.
func (c *Client) Close() {
	if c.stop != nil {
		c.stop()
		c.stopWG.Wait()
		c.stop = nil
	}
	c.mu.Lock()
	c.clearLocked()
	c.mu.Unlock()
}

// Stats returns a snapshot of cache behavior.
func (c *Client) Stats() Stats {
	c.mu.RLock()
	entries := len(c.tuples) + len(c.results)
	warm := c.warm
	c.mu.RUnlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		ColdDrops:     c.coldDrops.Load(),
		Entries:       entries,
		Warm:          warm,
		Cursor:        c.cursor.Load(),
		Staleness:     c.staleness(),
	}
}

// Warm reports whether the feed tail is armed: cached entries may be
// served and new fills are cached.
func (c *Client) Warm() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.warm
}

// Cursor returns the origin generation invalidations have been applied
// through. Once Cursor() >= the generation of a delete, a read can no
// longer serve the deleted tuple.
func (c *Client) Cursor() uint64 { return c.cursor.Load() }

// WaitCursor blocks until the cache is warm with its cursor at or past
// gen, or ctx is done. It is how tests (and operators' probes) phrase "the
// feed has passed this write".
func (c *Client) WaitCursor(ctx context.Context, gen uint64) error {
	for {
		if c.Warm() && c.Cursor() >= gen {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (c *Client) staleness() time.Duration {
	ns := c.lastSync.Load()
	if ns == 0 {
		return 0
	}
	return c.cfg.Now().Sub(time.Unix(0, ns))
}

// ---- read paths -------------------------------------------------------

// Lookup resolves one tuple by its exact link, through the cache. The
// returned tuple is shared with the cache: read-only. Negative results are
// not cached: every lookup of an absent link goes to the origin.
func (c *Client) Lookup(link string) (*tuple.Tuple, bool, error) {
	hit := func() (*tuple.Tuple, bool) {
		t, ok := c.tuples[link]
		return t, ok
	}
	if t, ok := probe(c, hit); ok {
		return t, true, nil
	}
	fillCh := lead(c, link, hit)
	defer c.releaseFill(link, fillCh)
	if t, ok := probe(c, hit); ok {
		// The leader we queued behind resolved our link too.
		return t, true, nil
	}
	c.misses.Add(1)
	v0, r0, cacheable := c.fillStart()
	if cacheable {
		defer c.fillEnd()
	}
	ts, err := c.wc.MinQuery(registry.Filter{LinkPrefix: link})
	if err != nil {
		return nil, false, err
	}
	for _, t := range ts {
		if t.Link == link {
			if cacheable {
				c.install(v0, r0, func() {
					c.tuples[link] = t
				})
			}
			return t, true, nil
		}
	}
	return nil, false, nil
}

// MinQuery runs the minimal query primitive through the result cache. The
// returned slice is shared with the cache: read-only.
func (c *Client) MinQuery(f registry.Filter) ([]*tuple.Tuple, error) {
	key := "m\x00" + f.Type + "\x00" + f.Context + "\x00" + f.LinkPrefix
	hit := func() ([]*tuple.Tuple, bool) {
		if e, ok := c.results[key]; ok {
			return e.tuples, true
		}
		return nil, false
	}
	if ts, ok := probe(c, hit); ok {
		return ts, nil
	}
	fillCh := lead(c, key, hit)
	defer c.releaseFill(key, fillCh)
	if ts, ok := probe(c, hit); ok {
		return ts, nil
	}
	c.misses.Add(1)
	v0, r0, cacheable := c.fillStart()
	if cacheable {
		defer c.fillEnd()
	}
	ts, err := c.wc.MinQuery(f)
	if err != nil {
		return nil, err
	}
	if cacheable {
		links := make(map[string]struct{}, len(ts))
		for _, t := range ts {
			links[t.Link] = struct{}{}
		}
		c.install(v0, r0, func() {
			c.results[key] = &resultEntry{filter: f, links: links, tuples: ts}
		})
	}
	return ts, nil
}

// XQuery runs the powerful query primitive through the result cache when
// the options allow it (no Emit, Vars or freshness demands — those force a
// pass-through). The returned sequence is shared with the cache:
// read-only.
func (c *Client) XQuery(query string, opts registry.QueryOptions) (xq.Sequence, error) {
	if opts.Emit != nil || opts.Vars != nil ||
		opts.Freshness.MaxAge > 0 || opts.Freshness.PullMissing {
		c.misses.Add(1)
		return c.wc.XQuery(query, opts)
	}
	f := opts.Filter
	key := "x\x00" + f.Type + "\x00" + f.Context + "\x00" + f.LinkPrefix + "\x00" + query
	hit := func() (xq.Sequence, bool) {
		if e, ok := c.results[key]; ok {
			return e.seq, true
		}
		return nil, false
	}
	if seq, ok := probe(c, hit); ok {
		return seq, nil
	}
	fillCh := lead(c, key, hit)
	defer c.releaseFill(key, fillCh)
	if seq, ok := probe(c, hit); ok {
		return seq, nil
	}
	c.misses.Add(1)
	v0, r0, cacheable := c.fillStart()
	if cacheable {
		defer c.fillEnd()
	}
	seq, err := c.wc.XQuery(query, opts)
	if err != nil {
		return nil, err
	}
	if cacheable {
		c.install(v0, r0, func() {
			c.results[key] = &resultEntry{filter: f, seq: seq}
		})
	}
	return seq, nil
}

// ---- fill coalescing ---------------------------------------------------
//
// A popular key on a cold cache draws a thundering herd: every concurrent
// reader misses and hammers the origin with identical fills — exactly the
// load multiplication the cache exists to prevent. Fills are therefore
// coalesced per key: the first misser leads (one origin round-trip),
// everyone else queues on its completion and re-checks the cache. A
// follower that still misses after the leader finishes (failed fill,
// vetoed install, negative lookup) takes leadership itself, so progress
// never depends on an entry actually appearing.

// probe is the fast path: a warm-cache read of hit under RLock, counting a
// cache hit when it lands.
func probe[T any](c *Client, hit func() (T, bool)) (T, bool) {
	c.mu.RLock()
	var v T
	ok := false
	if c.warm {
		v, ok = hit()
	}
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// lead queues on any in-flight fill of key until this caller either is
// satisfied by a finished leader's fill (returns nil; the caller's re-probe
// will land the hit) or acquires leadership itself (returns the channel to
// pass to releaseFill). On a cold cache fills are uncoordinated — and
// uncached — so no leadership is taken (nil).
func lead[T any](c *Client, key string, hit func() (T, bool)) chan struct{} {
	for {
		c.mu.Lock()
		if !c.warm {
			c.mu.Unlock()
			return nil
		}
		ch, busy := c.fills[key]
		if !busy {
			ch = make(chan struct{})
			c.fills[key] = ch
			c.mu.Unlock()
			return ch
		}
		c.mu.Unlock()
		<-ch
		// The leader finished. If its fill satisfied us, stop queueing
		// (without counting — the caller's re-probe does); otherwise loop
		// and contend for leadership.
		c.mu.RLock()
		satisfied := false
		if c.warm {
			_, satisfied = hit()
		}
		c.mu.RUnlock()
		if satisfied {
			return nil
		}
	}
}

// releaseFill ends a leadership acquired by lead, waking queued followers.
// A nil ch (no leadership taken) is a no-op.
func (c *Client) releaseFill(key string, ch chan struct{}) {
	if ch == nil {
		return
	}
	c.mu.Lock()
	if c.fills[key] == ch {
		delete(c.fills, key)
	}
	c.mu.Unlock()
	close(ch)
}

// ---- fill/invalidation ordering ---------------------------------------
//
// The race this machinery kills: a read misses, the origin answers with
// pre-change state, the feed applies the change (invalidating the key),
// and only then does the fill install — resurrecting state the feed
// already declared dead, with nothing left to invalidate it. Every fill
// therefore records the global change version (v0) and cold-drop sequence
// (r0) before its origin request; install is skipped when the key was
// invalidated past v0 or the cache dropped cold since r0. The inval map
// only needs entries while fills are in flight, so it is cleared when the
// last concurrent fill completes.

// fillStart opens a fill: snapshots the version/reset counters and marks
// the fill in flight. cacheable=false (cold cache) means the read should
// not attempt to install at all.
func (c *Client) fillStart() (v0, r0 uint64, cacheable bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.warm {
		return 0, 0, false
	}
	c.inflight++
	return c.version, c.resetSeq, true
}

// fillEnd closes a fill opened by fillStart, pruning the invalidation
// journal once no fills are left to consult it.
func (c *Client) fillEnd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight--
	if c.inflight == 0 && len(c.inval) > 0 {
		c.inval = make(map[string]uint64)
	}
}

// install commits a fill's result via put unless the cache was reset or
// any key was invalidated after the fill started. Invalidations are
// tracked per key, but a fill's result set may depend on keys beyond its
// own (a MinQuery's membership), so any invalidation past v0 vetoes the
// install — cheap, conservative, and only in the fill/invalidate race
// window.
func (c *Client) install(v0, r0 uint64, put func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.warm || c.resetSeq != r0 || c.version > v0 {
		return
	}
	if len(c.tuples)+len(c.results) >= c.cfg.MaxEntries {
		c.evictLocked()
	}
	put()
}

// evictLocked drops one random victim (Go's randomized map iteration picks
// it), preferring result entries — they are bigger and cheaper to refill.
func (c *Client) evictLocked() {
	for k := range c.results {
		delete(c.results, k)
		return
	}
	for k := range c.tuples {
		delete(c.tuples, k)
		return
	}
}

// applyChanges folds one feed page's changes into the cache: drop the
// changed keys' tuple entries and every result set the change can affect.
func (c *Client) applyChanges(changes []registry.Change) {
	if len(changes) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := int64(0)
	for _, ch := range changes {
		c.version++
		if c.inflight > 0 {
			c.inval[ch.Key] = c.version
		}
		if _, ok := c.tuples[ch.Key]; ok {
			delete(c.tuples, ch.Key)
			dropped++
		}
		for k, e := range c.results {
			if e.invalidatedBy(ch) {
				delete(c.results, k)
				dropped++
			}
		}
	}
	c.invalidations.Add(dropped)
}

// dropCold clears the whole cache and disarms serving until the feed
// re-arms — the gap/truncation/epoch-change/error path.
func (c *Client) dropCold(reason string) {
	c.mu.Lock()
	wasWarm := c.warm
	c.clearLocked()
	c.mu.Unlock()
	if wasWarm {
		c.coldDrops.Add(1)
		if c.cfg.Log != nil {
			c.cfg.Log.Warn("sdk cache dropped cold", "reason", reason)
		}
	}
}

// clearLocked disarms serving and empties the cache; callers hold mu and
// own any cold-drop accounting.
func (c *Client) clearLocked() {
	c.warm = false
	c.resetSeq++
	c.tuples = make(map[string]*tuple.Tuple)
	c.results = make(map[string]*resultEntry)
	c.inval = make(map[string]uint64)
}

// arm (re)arms the cache at the origin generation gen of epoch: from here
// on fills are cached and feed changes invalidate them.
func (c *Client) arm(epoch string, gen uint64) {
	c.mu.Lock()
	c.warm = true
	c.epoch = epoch
	c.resetSeq++
	c.mu.Unlock()
	c.cursor.Store(gen)
	c.lastSync.Store(c.cfg.Now().UnixNano())
}
