package sdk

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wsda/internal/changefeed"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
)

// runFeed arms the cache and tails the origin's change feed until ctx is
// canceled. Any irregularity — transport failure, origin epoch change,
// journal truncation, a cursor from the future — drops the cache cold and
// re-arms; an empty cache plus a current cursor is always consistent,
// because every subsequent fill reads through to the origin. Unlike a
// changefeed.Replica the cache carries no full-state obligation, so no
// snapshot bootstrap is ever needed: even a truncated page reports the
// origin's current generation in To, which is exactly where a fresh empty
// cache belongs.
func (c *Client) runFeed(ctx context.Context) {
	backoff := c.cfg.BackoffMin
	armed := false
	for {
		if ctx.Err() != nil {
			return
		}
		page, epoch, err := c.fetchFeed(ctx, c.cursor.Load())
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if armed {
				c.dropCold(fmt.Sprintf("feed error: %v", err))
				armed = false
			} else if c.cfg.Log != nil {
				c.cfg.Log.Warn("sdk feed round failed", "origin", c.cfg.Origin, "err", err)
			}
			if !sleepCtx(ctx, jitterDur(backoff)) {
				return
			}
			backoff = min(backoff*2, c.cfg.BackoffMax)
			continue
		}
		backoff = c.cfg.BackoffMin
		if page.Epoch == "" {
			page.Epoch = epoch
		}
		c.mu.RLock()
		curEpoch := c.epoch
		c.mu.RUnlock()
		switch {
		case !armed, page.Epoch != curEpoch, page.Truncated, page.To < c.cursor.Load():
			// Cold start, restarted origin, gap, or future cursor: clear and
			// re-arm at the page's To — the origin's current generation even
			// on a truncated page, since ChangesSince past the journal still
			// reports where "now" is.
			if armed {
				c.dropCold(fmt.Sprintf("feed resync: epoch %q->%q truncated=%v to=%d cursor=%d",
					curEpoch, page.Epoch, page.Truncated, page.To, c.cursor.Load()))
			}
			c.arm(page.Epoch, page.To)
			armed = true
		default:
			c.applyChanges(page.Changes)
			c.cursor.Store(page.To)
			c.lastSync.Store(c.cfg.Now().UnixNano())
		}
		if len(page.Changes) == 0 && c.cfg.FeedWait <= 0 {
			// Plain polling (long-poll disabled): pace the next round
			// instead of spinning. With long-polling the origin already did
			// the waiting.
			if !sleepCtx(ctx, 10*time.Millisecond) {
				return
			}
		}
	}
}

// fetchFeed issues one GET /wsda/feed round from cursor and parses the
// page, returning the epoch header alongside.
func (c *Client) fetchFeed(ctx context.Context, cursor uint64) (changefeed.Page, string, error) {
	u := c.cfg.Origin + changefeed.PathFeed + "?since=" + strconv.FormatUint(cursor, 10)
	if c.cfg.FeedWait > 0 {
		u += "&wait-ms=" + strconv.FormatInt(c.cfg.FeedWait.Milliseconds(), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return changefeed.Page{}, "", err
	}
	if c.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.Token)
	}
	hc := c.cfg.HTTP
	if hc == nil {
		hc = wsda.DefaultHTTPClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return changefeed.Page{}, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return changefeed.Page{}, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return changefeed.Page{}, "", fmt.Errorf("sdk: feed: remote error %d: %s",
			resp.StatusCode, strings.TrimSpace(string(data)))
	}
	doc, err := xmldoc.ParseString(string(data))
	if err != nil {
		return changefeed.Page{}, "", err
	}
	p, err := changefeed.UnmarshalPage(doc)
	if err != nil {
		return changefeed.Page{}, "", err
	}
	return p, resp.Header.Get(changefeed.EpochHeader), nil
}

// jitterDur spreads a backoff delay uniformly over [d/2, 3d/2) so a fleet
// of cached clients does not reconnect in lockstep after an origin
// restart.
func jitterDur(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps d or until ctx is done, reporting whether it slept the
// full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
