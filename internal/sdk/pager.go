package sdk

import (
	"wsda/internal/registry"
	"wsda/internal/wsda"
	"wsda/internal/xq"
)

// Pager iterates a paginated XQuery one page at a time, carrying the
// opaque continuation cursor between requests so no more than pageSize
// items are ever buffered at either end. Pages bypass the result cache:
// pagination exists precisely for result sets too large to pin in memory.
//
//	p := c.Pages(query, opts, 100)
//	for p.Next() {
//	    for _, it := range p.Items() { ... }
//	}
//	if err := p.Err(); err != nil { ... }
type Pager struct {
	wc       *wsda.Client
	query    string
	opts     registry.QueryOptions
	pageSize int

	cursor string
	items  xq.Sequence
	err    error
	done   bool
}

// Pages returns a Pager over query with pageSize items per page. Resume an
// interrupted iteration by seeding opts via Pages and calling Seek with a
// cursor from a previous Pager's Cursor().
func (c *Client) Pages(query string, opts registry.QueryOptions, pageSize int) *Pager {
	return &Pager{wc: c.wc, query: query, opts: opts, pageSize: pageSize}
}

// Seek positions the pager at cursor (from a previous Pager's Cursor())
// instead of the first page. Must be called before the first Next.
func (p *Pager) Seek(cursor string) { p.cursor = cursor }

// Next fetches the next page, reporting whether one was retrieved. It
// returns false at the end of the result set or on error — check Err
// after the loop.
func (p *Pager) Next() bool {
	if p.done || p.err != nil {
		return false
	}
	page, err := p.wc.XQueryPage(p.query, p.opts, p.pageSize, p.cursor)
	if err != nil {
		p.err = err
		return false
	}
	p.items = page.Items
	p.cursor = page.Next
	if page.Next == "" {
		p.done = true
	}
	return true
}

// Items returns the current page's items (valid after a true Next).
func (p *Pager) Items() xq.Sequence { return p.items }

// Err returns the first error the iteration hit, nil on clean completion.
func (p *Pager) Err() error { return p.err }

// Cursor returns the continuation cursor for the page AFTER the current
// one — persist it to resume iteration later with Seek; empty means the
// current page was the last.
func (p *Pager) Cursor() string { return p.cursor }
