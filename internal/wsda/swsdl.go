package wsda

import (
	"fmt"
	"sort"
	"strings"

	"wsda/internal/xmldoc"
)

// Binding attaches an operation to a network protocol and endpoint, e.g.
// {"http", "http://cms.cern.ch/rc/xquery"}.
type Binding struct {
	Protocol string // wire protocol name, e.g. "http"
	Endpoint string // invocation address for that protocol
}

// Operation is a named operation of a service interface, invokable over one
// or more protocol bindings.
type Operation struct {
	Name     string    // operation name within the interface
	Bindings []Binding // ways to invoke it, in preference order
}

// Interface is a set of operations under a well-known interface type.
type Interface struct {
	Type       string      // e.g. "Presenter", "Consumer", "MinQuery", "XQuery"
	Operations []Operation // the operations this interface offers
}

// Service is an SWSDL service description (thesis Ch. 2.2): a network
// service is a collection of interfaces capable of executing operations
// over network protocols to endpoints.
type Service struct {
	Name       string            // human-readable service name
	Owner      string            // owning principal or organization
	Domain     string            // administrative domain, e.g. "cern.ch"
	Link       string            // the service link: HTTP URL retrieving this description
	Interfaces []Interface       // the interfaces the service implements
	Attributes map[string]string // free-form service properties (load, ...)
}

// Well-known WSDA interface types.
const (
	IfacePresenter = "Presenter"
	IfaceConsumer  = "Consumer"
	IfaceMinQuery  = "MinQuery"
	IfaceXQuery    = "XQuery"
)

// Interface returns the interface of the given type, or nil.
func (s *Service) Interface(typ string) *Interface {
	for i := range s.Interfaces {
		if s.Interfaces[i].Type == typ {
			return &s.Interfaces[i]
		}
	}
	return nil
}

// Implements reports whether the service offers all the given interface
// types — the dynamic plug-ability test of thesis Ch. 1.2.
func (s *Service) Implements(types ...string) bool {
	for _, t := range types {
		if s.Interface(t) == nil {
			return false
		}
	}
	return true
}

// Endpoint returns the first endpoint bound to (ifaceType, opName, proto),
// or "".
func (s *Service) Endpoint(ifaceType, opName, proto string) string {
	iface := s.Interface(ifaceType)
	if iface == nil {
		return ""
	}
	for _, op := range iface.Operations {
		if op.Name != opName {
			continue
		}
		for _, b := range op.Bindings {
			if b.Protocol == proto {
				return b.Endpoint
			}
		}
	}
	return ""
}

// ToXML renders the description in SWSDL form:
//
//	<service name="..." owner="..." domain="..." link="...">
//	  <attr name="load" value="0.35"/>
//	  <interface type="XQuery">
//	    <operation name="query">
//	      <bind protocol="http" endpoint="http://..."/>
//	    </operation>
//	  </interface>
//	</service>
func (s *Service) ToXML() *xmldoc.Node {
	el := xmldoc.NewElement("service")
	if s.Name != "" {
		el.SetAttr("name", s.Name)
	}
	if s.Owner != "" {
		el.SetAttr("owner", s.Owner)
	}
	if s.Domain != "" {
		el.SetAttr("domain", s.Domain)
	}
	if s.Link != "" {
		el.SetAttr("link", s.Link)
	}
	keys := make([]string, 0, len(s.Attributes))
	for k := range s.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := xmldoc.NewElement("attr")
		a.SetAttr("name", k)
		a.SetAttr("value", s.Attributes[k])
		el.AppendChild(a)
	}
	for _, iface := range s.Interfaces {
		ie := xmldoc.NewElement("interface")
		ie.SetAttr("type", iface.Type)
		for _, op := range iface.Operations {
			oe := xmldoc.NewElement("operation")
			oe.SetAttr("name", op.Name)
			for _, b := range op.Bindings {
				be := xmldoc.NewElement("bind")
				be.SetAttr("protocol", b.Protocol)
				be.SetAttr("endpoint", b.Endpoint)
				oe.AppendChild(be)
			}
			ie.AppendChild(oe)
		}
		el.AppendChild(ie)
	}
	el.Renumber()
	return el
}

// ServiceFromXML parses an SWSDL <service> element (or a document holding
// one).
func ServiceFromXML(n *xmldoc.Node) (*Service, error) {
	if n.Kind == xmldoc.DocumentNode {
		n = n.DocumentElement()
	}
	if n == nil || n.LocalName() != "service" {
		return nil, fmt.Errorf("wsda: expected <service> element")
	}
	s := &Service{}
	s.Name, _ = n.Attr("name")
	s.Owner, _ = n.Attr("owner")
	s.Domain, _ = n.Attr("domain")
	s.Link, _ = n.Attr("link")
	for _, c := range n.ChildElements() {
		switch c.LocalName() {
		case "attr":
			if s.Attributes == nil {
				s.Attributes = make(map[string]string)
			}
			k, _ := c.Attr("name")
			v, _ := c.Attr("value")
			s.Attributes[k] = v
		case "interface":
			iface := Interface{}
			iface.Type, _ = c.Attr("type")
			if iface.Type == "" {
				return nil, fmt.Errorf("wsda: interface without type in service %q", s.Name)
			}
			for _, oc := range c.ChildElements() {
				if oc.LocalName() != "operation" {
					continue
				}
				op := Operation{}
				op.Name, _ = oc.Attr("name")
				for _, bc := range oc.ChildElements() {
					if bc.LocalName() != "bind" {
						continue
					}
					b := Binding{}
					b.Protocol, _ = bc.Attr("protocol")
					b.Endpoint, _ = bc.Attr("endpoint")
					op.Bindings = append(op.Bindings, b)
				}
				iface.Operations = append(iface.Operations, op)
			}
			s.Interfaces = append(s.Interfaces, iface)
		}
	}
	return s, nil
}

// ParseService parses an SWSDL document from text.
func ParseService(src string) (*Service, error) {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return nil, err
	}
	return ServiceFromXML(doc)
}

// String renders the description as compact SWSDL text.
func (s *Service) String() string { return s.ToXML().String() }

// Builder provides fluent construction of service descriptions.
type Builder struct{ s Service }

// NewService starts building a service description.
func NewService(name string) *Builder {
	return &Builder{s: Service{Name: name}}
}

// Owner sets the owning principal.
func (b *Builder) Owner(o string) *Builder { b.s.Owner = o; return b }

// Domain sets the administrative domain.
func (b *Builder) Domain(d string) *Builder { b.s.Domain = d; return b }

// Link sets the service link.
func (b *Builder) Link(l string) *Builder { b.s.Link = l; return b }

// Attr adds a free-form attribute.
func (b *Builder) Attr(k, v string) *Builder {
	if b.s.Attributes == nil {
		b.s.Attributes = make(map[string]string)
	}
	b.s.Attributes[k] = v
	return b
}

// Op adds an operation (creating the interface if absent) with an optional
// HTTP binding endpoint.
func (b *Builder) Op(ifaceType, opName, httpEndpoint string) *Builder {
	var iface *Interface
	for i := range b.s.Interfaces {
		if b.s.Interfaces[i].Type == ifaceType {
			iface = &b.s.Interfaces[i]
			break
		}
	}
	if iface == nil {
		b.s.Interfaces = append(b.s.Interfaces, Interface{Type: ifaceType})
		iface = &b.s.Interfaces[len(b.s.Interfaces)-1]
	}
	op := Operation{Name: opName}
	if httpEndpoint != "" {
		op.Bindings = append(op.Bindings, Binding{Protocol: "http", Endpoint: httpEndpoint})
	}
	iface.Operations = append(iface.Operations, op)
	return b
}

// Build returns the completed description.
func (b *Builder) Build() *Service { s := b.s; return &s }

// MatchSpec is an interface/operation requirement used to match services
// against a specification (thesis Ch. 1.2: "match services against an
// interface and network protocol specification").
type MatchSpec struct {
	Interface string // required interface type
	Operation string // optional: required operation name
	Protocol  string // optional: required protocol
}

// Matches reports whether the service satisfies every requirement.
func (s *Service) Matches(specs ...MatchSpec) bool {
	for _, spec := range specs {
		iface := s.Interface(spec.Interface)
		if iface == nil {
			return false
		}
		if spec.Operation == "" {
			continue
		}
		found := false
		for _, op := range iface.Operations {
			if op.Name != spec.Operation {
				continue
			}
			if spec.Protocol == "" {
				found = true
				break
			}
			for _, b := range op.Bindings {
				if strings.EqualFold(b.Protocol, spec.Protocol) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
