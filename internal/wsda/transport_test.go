package wsda

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/xq"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// An HTTP-date in the future yields roughly the remaining delay.
	in := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(in); got < 25*time.Second || got > 31*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~30s", got)
	}
}

// A 429 with Retry-After must surface the hint on the typed HTTPError so
// retry loops can honor the server's pacing instead of guessing.
func TestHTTPErrorCarriesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "throttled", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	_, err := NewClient(srv.URL).GetServiceDescription()
	he, ok := err.(*HTTPError)
	if !ok {
		t.Fatalf("err = %T (%v), want *HTTPError", err, err)
	}
	if he.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", he.RetryAfter)
	}
	if !he.Retryable() {
		t.Error("429 must be retryable")
	}
}

// tracingTransport wraps a RoundTripper, counting how many requests rode a
// reused (kept-alive) connection.
type tracingTransport struct {
	base   http.RoundTripper
	reused atomic.Int64
	total  atomic.Int64
}

func (tt *tracingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	tt.total.Add(1)
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				tt.reused.Add(1)
			}
		},
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
	return tt.base.RoundTrip(req)
}

// Early-stopped streamed queries must not burn a connection per request:
// drainClose consumes the small remainder (trailer) so the pooled
// transport recycles the connection, which httptrace observes as Reused on
// the following request.
func TestStreamEarlyStopReusesConnection(t *testing.T) {
	node := newLocalNode()
	for i := 0; i < 20; i++ {
		publishSample(t, node, fmt.Sprintf("svc%02d", i), "reuse.example")
	}
	srv := httptest.NewServer(Handler(node))
	defer srv.Close()

	// A dedicated transport so other tests' connections don't pollute the
	// reuse accounting.
	tt := &tracingTransport{base: &http.Transport{MaxIdleConnsPerHost: 4}}
	cl := NewClient(srv.URL)
	cl.HTTP = &http.Client{Transport: tt}

	const rounds = 5
	for i := 0; i < rounds; i++ {
		// Stop after the first item: everything after it (items + trailer)
		// is the remainder drainClose must swallow for the connection to
		// stay reusable.
		_, err := cl.XQueryStream(`//service`, registry.QueryOptions{}, 0,
			func(xq.Item) bool { return false })
		if err != nil {
			t.Fatal(err)
		}
	}
	if tt.total.Load() != rounds {
		t.Fatalf("requests = %d, want %d", tt.total.Load(), rounds)
	}
	if reused := tt.reused.Load(); reused < rounds-1 {
		t.Errorf("reused connections = %d/%d, want %d (early stop must drain, not kill, the connection)",
			reused, rounds, rounds-1)
	}
}
