package wsda

import (
	"errors"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xq"
)

// Presenter is the service-identification/description-retrieval primitive:
// a service presents its current description so that clients from anywhere
// can retrieve it at any time (thesis Ch. 2.3).
type Presenter interface {
	// GetServiceDescription returns the service's current description.
	GetServiceDescription() (*Service, error)
}

// Consumer is the publication primitive: content providers publish tuples
// under soft-state lifetimes (thesis Ch. 2.4–2.6).
type Consumer interface {
	// Publish inserts or refreshes a tuple; the registry returns the
	// lifetime it actually granted.
	Publish(t *tuple.Tuple, ttl time.Duration) (time.Duration, error)
	// Unpublish removes a tuple before its lifetime elapses.
	Unpublish(link string) error
}

// MinQuery is the minimal query primitive: attribute filtering only, cheap
// to implement on any node (thesis Ch. 5.2).
type MinQuery interface {
	// MinQuery returns the tuples matching an attribute filter.
	MinQuery(f registry.Filter) ([]*tuple.Tuple, error)
}

// XQueryIface is the powerful query primitive: full XQuery over the node's
// tuple-set view.
type XQueryIface interface {
	// XQuery evaluates a query against the node's tuple-set view.
	XQuery(query string, opts registry.QueryOptions) (xq.Sequence, error)
}

// Node is the full set of primitives a hyper registry node offers. Clients
// compose the individual primitives; a specific peer may implement only a
// subset (e.g. Presenter+MinQuery).
type Node interface {
	Presenter
	Consumer
	MinQuery
	XQueryIface
}

// LocalNode adapts an in-process Registry (plus its service description) to
// the WSDA primitive interfaces.
type LocalNode struct {
	Desc     *Service           // this node's own service description
	Registry *registry.Registry // the local hyper registry
}

var _ Node = (*LocalNode)(nil)

// GetServiceDescription implements Presenter.
func (n *LocalNode) GetServiceDescription() (*Service, error) { return n.Desc, nil }

// Publish implements Consumer.
func (n *LocalNode) Publish(t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	return n.Registry.Publish(t, ttl)
}

// Unpublish implements Consumer.
func (n *LocalNode) Unpublish(link string) error {
	n.Registry.Unpublish(link)
	return nil
}

// MinQuery implements the minimal query primitive.
func (n *LocalNode) MinQuery(f registry.Filter) ([]*tuple.Tuple, error) {
	return n.Registry.MinQuery(f), nil
}

// XQuery implements the powerful query primitive.
func (n *LocalNode) XQuery(query string, opts registry.QueryOptions) (xq.Sequence, error) {
	return n.Registry.Query(query, opts)
}

// ErrReadOnly is what a read-only replica's Consumer primitives return:
// its tuple set is owned by its primary's change feed, so publications must
// go to the primary.
var ErrReadOnly = errors.New("wsda: read-only replica; publish to its primary")

// ReadOnlyNode wraps a Node and rejects the Consumer primitives — the
// shape of a journal-tailing read replica.
type ReadOnlyNode struct{ Node }

// Publish implements Consumer by refusing.
func (ReadOnlyNode) Publish(*tuple.Tuple, time.Duration) (time.Duration, error) {
	return 0, ErrReadOnly
}

// Unpublish implements Consumer by refusing.
func (ReadOnlyNode) Unpublish(string) error { return ErrReadOnly }
