package wsda

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// MetricFirstItemSeconds is the edge time-to-first-item histogram, labeled
// by path ("xquery" here, "netquery" at the peer's network-query edge).
const MetricFirstItemSeconds = "wsda_http_first_item_seconds"

// HTTP binding paths for the WSDA primitives.
const (
	PathPresenter = "/wsda/presenter"
	PathPublish   = "/wsda/publish"
	PathUnpublish = "/wsda/unpublish"
	PathMinQuery  = "/wsda/minquery"
	PathXQuery    = "/wsda/xquery"
)

// PathNetQuery is the network-query endpoint peers expose alongside the
// WSDA binding (served by peerd, not by this package's Handler).
const PathNetQuery = "/netquery"

// HeaderPlan is the /wsda/xquery response header describing how the
// registry executed the query (registry.PlanInfo.String form); wsdaquery
// -explain surfaces it.
const HeaderPlan = "X-Wsda-Plan"

// MaxQueryBytes bounds the request body of query endpoints. Oversize
// queries are rejected with 413 rather than silently truncated into a
// different (usually malformed) query.
const MaxQueryBytes = 1 << 20

// StatusCoder lets a Node error pick its own HTTP status instead of the
// handler's default. The shard guard uses it to answer a publish for a key
// this shard does not own with 421 Misdirected Request — a definitive,
// non-retryable rejection telling the client to consult the partition map,
// not to resend.
type StatusCoder interface {
	// HTTPStatus is the response code this error should map to.
	HTTPStatus() int
}

// errorStatus returns err's own HTTP status when it carries one (directly
// or wrapped), the fallback otherwise.
func errorStatus(err error, fallback int) int {
	var sc StatusCoder
	if errors.As(err, &sc) {
		return sc.HTTPStatus()
	}
	return fallback
}

// Handler exposes a Node over the WSDA HTTP protocol binding. Register it
// on any mux; all paths are absolute.
func Handler(n Node) http.Handler { return HandlerWithMetrics(n, nil) }

// HandlerWithMetrics is Handler with edge telemetry: when m is non-nil,
// streamed /wsda/xquery responses record the time from request start to
// the first item in the wsda_http_first_item_seconds histogram.
func HandlerWithMetrics(n Node, m *telemetry.Metrics) http.Handler {
	return HandlerWithObservability(n, m, nil)
}

// HandlerWithObservability is HandlerWithMetrics plus flight correlation:
// when fr is non-nil and a /wsda/xquery request carries a tx parameter
// (minted by a router or another upstream), the local evaluation's flight
// events — plan choice, view hits, streamed items — are recorded under
// that transaction ID, so a routed query is explainable end-to-end by
// asking each hop's /debug/query/<tx> for the same tx.
func HandlerWithObservability(n Node, m *telemetry.Metrics, fr *telemetry.FlightRecorder) http.Handler {
	var firstItem *telemetry.Histogram
	if m != nil {
		firstItem = m.HistogramVec(MetricFirstItemSeconds,
			"Time from request start to the first streamed result item leaving the HTTP edge.",
			nil, "path").With("xquery")
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathPresenter, func(w http.ResponseWriter, r *http.Request) {
		desc, err := n.GetServiceDescription()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeXML(w, desc.ToXML())
	})
	mux.HandleFunc(PathPublish, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		doc, err := xmldoc.Parse(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		root := doc.DocumentElement()
		if root == nil || root.LocalName() != "publish" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("expected <publish> element"))
			return
		}
		var ttl time.Duration
		if s, ok := root.Attr("ttl-ms"); ok {
			ms, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad ttl-ms: %v", err))
				return
			}
			ttl = time.Duration(ms) * time.Millisecond
		}
		tupleEl := root.FirstChildElement("tuple")
		if tupleEl == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing <tuple>"))
			return
		}
		t, err := tuple.FromXML(tupleEl)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		granted, err := n.Publish(t, ttl)
		if err != nil {
			httpError(w, errorStatus(err, http.StatusUnprocessableEntity), err)
			return
		}
		resp := xmldoc.NewElement("granted")
		resp.SetAttr("ttl-ms", strconv.FormatInt(granted.Milliseconds(), 10))
		writeXML(w, resp)
	})
	mux.HandleFunc(PathUnpublish, func(w http.ResponseWriter, r *http.Request) {
		link := r.URL.Query().Get("link")
		if link == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing link parameter"))
			return
		}
		if err := n.Unpublish(link); err != nil {
			httpError(w, errorStatus(err, http.StatusInternalServerError), err)
			return
		}
		writeXML(w, xmldoc.NewElement("ok"))
	})
	mux.HandleFunc(PathMinQuery, func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		tuples, err := n.MinQuery(registry.Filter{
			Type:       q.Get("type"),
			Context:    q.Get("ctx"),
			LinkPrefix: q.Get("prefix"),
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		root := xmldoc.NewElement("tupleset")
		for _, t := range tuples {
			root.AppendChild(t.ToXML())
		}
		writeXML(w, root)
	})
	mux.HandleFunc(PathXQuery, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		// Read one byte past the limit so an oversize body is detectable
		// and answered with 413 instead of evaluating a truncated query.
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxQueryBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(body) > MaxQueryBytes {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("query exceeds %d bytes", MaxQueryBytes))
			return
		}
		q := r.URL.Query()
		opts := registry.QueryOptions{
			Filter: registry.Filter{
				Type:       q.Get("type"),
				Context:    q.Get("ctx"),
				LinkPrefix: q.Get("prefix"),
			},
		}
		if s := q.Get("maxage-ms"); s != "" {
			ms, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad maxage-ms: %v", err))
				return
			}
			opts.Freshness.MaxAge = time.Duration(ms) * time.Millisecond
		}
		if q.Get("pull-missing") == "true" {
			opts.Freshness.PullMissing = true
		}
		// An upstream-minted transaction ID (tx parameter) threads this
		// evaluation into the upstream's flight recording.
		opts.TxID = q.Get("tx")
		// Capture the chosen plan; local registries fill it before the
		// first item is emitted, so the header can lead a streamed body.
		var plan registry.PlanInfo
		opts.Explain = &plan
		planHeader := func() {
			if plan.Mode != "" {
				w.Header().Set(HeaderPlan, plan.String())
			}
		}
		maxResults := 0
		if s := q.Get("max-results"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad max-results"))
				return
			}
			maxResults = v
		}
		// Cursor pagination: page-size bounds this response to one page and
		// page-cursor resumes where a previous page stopped. Pagination
		// implies streamed delivery — the continuation cursor rides the
		// trailing <summary> — and composes with Emit-driven early stop, so
		// the engine never materializes the skipped prefix's renderings nor
		// anything past the page bound plus one probe item.
		pageSize := 0
		if s := q.Get("page-size"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad page-size"))
				return
			}
			pageSize = v
		}
		pageOffset := 0
		if s := q.Get("page-cursor"); s != "" {
			if pageSize == 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("page-cursor requires page-size"))
				return
			}
			off, err := DecodePageCursor(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			pageOffset = off
		}
		if q.Get("stream") != "true" && maxResults == 0 && pageSize == 0 {
			seq, err := n.XQuery(string(body), opts)
			if err != nil {
				httpError(w, http.StatusUnprocessableEntity, err)
				return
			}
			planHeader()
			writeXML(w, MarshalSequence(seq))
			return
		}

		// Streamed (or result-bounded) delivery: items leave through the
		// Emit callback the moment the engine produces them; evaluation
		// stops early on the max-results bound or a client disconnect.
		start := time.Now()
		var sw *StreamWriter
		if q.Get("stream") == "true" || pageSize > 0 {
			sw = NewStreamWriter(w)
			if fr != nil && opts.TxID != "" {
				sw.SetFlight(fr, opts.TxID)
			}
		}
		var collected xq.Sequence
		count := 0
		truncated := false
		skip := pageOffset
		nextCursor := ""
		ctx := r.Context()
		deliver := func(it xq.Item) bool {
			if ctx.Err() != nil {
				truncated = true
				return false
			}
			if skip > 0 {
				skip--
				return true
			}
			if pageSize > 0 && count >= pageSize {
				// This item is past the page bound; its existence (not its
				// value) is the proof that a next page exists, so mint the
				// continuation cursor and stop the evaluation.
				nextCursor = EncodePageCursor(pageOffset + pageSize)
				truncated = true
				return false
			}
			if sw != nil {
				if count == 0 {
					planHeader() // before the first write commits headers
					firstItem.ObserveSince(start)
				}
				if sw.WriteItem(it) != nil {
					truncated = true
					return false
				}
			} else {
				collected = append(collected, it)
			}
			count++
			if maxResults > 0 && count >= maxResults {
				truncated = true
				return false
			}
			return true
		}
		opts.Emit = deliver
		seq, err := n.XQuery(string(body), opts)
		if err != nil {
			if sw == nil || !sw.Started() {
				httpError(w, http.StatusUnprocessableEntity, err)
				return
			}
			_ = sw.Close(StreamSummary{Complete: false, Elapsed: time.Since(start)})
			return
		}
		// Nodes that do not honor Emit (e.g. a proxying Client) return the
		// full sequence instead; feed it through the same delivery path.
		if count == 0 && len(seq) > 0 {
			for _, it := range seq {
				if !deliver(it) {
					break
				}
			}
		}
		if sw != nil {
			if !sw.Started() {
				planHeader() // zero-item stream: headers not committed yet
			}
			_ = sw.Close(StreamSummary{Complete: !truncated, Elapsed: time.Since(start),
				NextCursor: nextCursor})
			return
		}
		planHeader()
		writeXML(w, MarshalSequence(collected))
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func writeXML(w http.ResponseWriter, n *xmldoc.Node) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, n.String())
}

// MarshalSequence renders a result sequence as a <results> element: nodes
// wrapped in <node>, atomics in <atomic type="...">.
func MarshalSequence(seq xq.Sequence) *xmldoc.Node {
	root := xmldoc.NewElement("results")
	root.SetAttr("count", strconv.Itoa(len(seq)))
	for _, it := range seq {
		root.AppendChild(marshalItem(it))
	}
	root.Renumber()
	return root
}

func atomicType(it xq.Item) string {
	switch it.(type) {
	case bool:
		return "boolean"
	case int64:
		return "integer"
	case float64:
		return "decimal"
	default:
		return "string"
	}
}

// UnmarshalSequence parses a <results> element back into a sequence. Node
// items come back as detached element trees (document identity is not
// preserved across the wire).
func UnmarshalSequence(root *xmldoc.Node) (xq.Sequence, error) {
	if root.Kind == xmldoc.DocumentNode {
		root = root.DocumentElement()
	}
	if root == nil || root.LocalName() != "results" {
		return nil, fmt.Errorf("wsda: expected <results> element")
	}
	var seq xq.Sequence
	for _, c := range root.ChildElements() {
		switch c.LocalName() {
		case "node", "atomic":
			it, err := unmarshalItem(c)
			if err != nil {
				return nil, err
			}
			seq = append(seq, it)
		default:
			// Skip non-item elements (e.g. a <summary> trailer).
		}
	}
	return seq, nil
}

// Client talks the WSDA HTTP binding to a remote node. BaseURL is the
// node's root (scheme://host:port); the client appends the binding paths.
type Client struct {
	BaseURL string       // node root, scheme://host:port
	HTTP    *http.Client // transport override; nil uses DefaultHTTPClient (pooled, sane timeouts)
	// Token is sent as "Authorization: Bearer <Token>" on every request
	// — a static tenant token or one minted by `wsdaquery mint` — for
	// nodes running behind a -tenants gate. Empty sends no header.
	Token string
}

var _ Node = (*Client)(nil)

// NewClient returns a client for the node at baseURL, on the package's
// shared pooled transport (DefaultHTTPClient). Set HTTP afterwards to
// override per-client.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: DefaultHTTPClient}
}

// newRequest builds a request with the client's auth header attached.
func (c *Client) newRequest(method, u string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

func (c *Client) get(path string, q url.Values) (*xmldoc.Node, error) {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := c.newRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	return readXMLResponse(resp)
}

func (c *Client) post(path string, q url.Values, body string) (*xmldoc.Node, error) {
	doc, _, err := c.postHdr(path, q, body)
	return doc, err
}

// postHdr is post, additionally returning the response headers (nil on
// transport errors) for callers that read side-channel metadata like
// X-Wsda-Plan.
func (c *Client) postHdr(path string, q url.Values, body string) (*xmldoc.Node, http.Header, error) {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := c.newRequest(http.MethodPost, u, strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "text/xml")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	doc, err := readXMLResponse(resp)
	return doc, resp.Header, err
}

// HTTPError is a non-2xx response from a remote WSDA node. It carries the
// status code so callers can tell definitive client-side rejections (a
// malformed query stays malformed, however often it is resent) from
// transient server-side failures worth retrying.
type HTTPError struct {
	StatusCode int    // HTTP status the node answered with
	Body       string // trimmed response body (the error text)
	// RetryAfter is the node's Retry-After hint (tenant gates send one with
	// 429), 0 when absent. Retry loops should wait at least this long —
	// capped by their own policy — before resending.
	RetryAfter time.Duration
}

// Error formats the status and the remote error text.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("wsda: remote error %d: %s", e.StatusCode, e.Body)
}

// Retryable reports whether resending the same request can plausibly
// succeed: 5xx server errors, request timeouts and rate limiting are
// retryable; every other 4xx is a definitive rejection.
func (e *HTTPError) Retryable() bool {
	return e.StatusCode >= 500 ||
		e.StatusCode == http.StatusRequestTimeout ||
		e.StatusCode == http.StatusTooManyRequests
}

func readXMLResponse(resp *http.Response) (*xmldoc.Node, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{
			StatusCode: resp.StatusCode,
			Body:       strings.TrimSpace(string(data)),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return xmldoc.ParseString(string(data))
}

// GetServiceDescription implements Presenter against the remote node. This
// is also the service-link resolution mechanism: an HTTP GET retrieving the
// current description.
func (c *Client) GetServiceDescription() (*Service, error) {
	doc, err := c.get(PathPresenter, nil)
	if err != nil {
		return nil, err
	}
	return ServiceFromXML(doc)
}

// Publish implements Consumer against the remote node.
func (c *Client) Publish(t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	req := xmldoc.NewElement("publish")
	req.SetAttr("ttl-ms", strconv.FormatInt(ttl.Milliseconds(), 10))
	req.AppendChild(t.ToXML())
	doc, err := c.post(PathPublish, nil, req.String())
	if err != nil {
		return 0, err
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "granted" {
		return 0, fmt.Errorf("wsda: unexpected publish response")
	}
	s, _ := root.Attr("ttl-ms")
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wsda: bad granted ttl %q", s)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// Unpublish implements Consumer against the remote node.
func (c *Client) Unpublish(link string) error {
	_, err := c.get(PathUnpublish, url.Values{"link": {link}})
	return err
}

// MinQuery implements the minimal query primitive against the remote node.
func (c *Client) MinQuery(f registry.Filter) ([]*tuple.Tuple, error) {
	q := url.Values{}
	if f.Type != "" {
		q.Set("type", f.Type)
	}
	if f.Context != "" {
		q.Set("ctx", f.Context)
	}
	if f.LinkPrefix != "" {
		q.Set("prefix", f.LinkPrefix)
	}
	doc, err := c.get(PathMinQuery, q)
	if err != nil {
		return nil, err
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "tupleset" {
		return nil, fmt.Errorf("wsda: unexpected minquery response")
	}
	var out []*tuple.Tuple
	for _, el := range root.ChildElements() {
		t, err := tuple.FromXML(el)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// xqueryParams renders the wire-crossing query options (Filter, Freshness
// and TxID; Emit and Vars are local-only concepts) as URL parameters.
func xqueryParams(opts registry.QueryOptions) url.Values {
	q := url.Values{}
	if opts.Filter.Type != "" {
		q.Set("type", opts.Filter.Type)
	}
	if opts.Filter.Context != "" {
		q.Set("ctx", opts.Filter.Context)
	}
	if opts.Filter.LinkPrefix != "" {
		q.Set("prefix", opts.Filter.LinkPrefix)
	}
	if opts.Freshness.MaxAge > 0 {
		q.Set("maxage-ms", strconv.FormatInt(opts.Freshness.MaxAge.Milliseconds(), 10))
	}
	if opts.Freshness.PullMissing {
		q.Set("pull-missing", "true")
	}
	if opts.TxID != "" {
		q.Set("tx", opts.TxID)
	}
	return q
}

// XQuery implements the powerful query primitive against the remote node.
// Only the Filter and Freshness options cross the wire; Emit and Vars are
// local-only concepts. When opts.Explain is set it is filled from the
// remote node's X-Wsda-Plan header (the view fallback when absent).
func (c *Client) XQuery(query string, opts registry.QueryOptions) (xq.Sequence, error) {
	doc, hdr, err := c.postHdr(PathXQuery, xqueryParams(opts), query)
	if err != nil {
		return nil, err
	}
	if opts.Explain != nil {
		*opts.Explain = registry.ParsePlanInfo(hdr.Get(HeaderPlan))
	}
	return UnmarshalSequence(doc)
}
