package wsda

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wsda/internal/registry"
)

// Error-path coverage for the HTTP binding: malformed requests must come
// back as clean HTTP errors, never 200s or panics.
func TestHTTPBindingErrorPaths(t *testing.T) {
	srv := httptest.NewServer(Handler(newLocalNode()))
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "text/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Publish: wrong method, bad XML, wrong root, missing tuple, invalid
	// tuple, bad ttl.
	if code := get(PathPublish); code != http.StatusMethodNotAllowed {
		t.Errorf("GET publish = %d", code)
	}
	if code, _ := post(PathPublish, `not xml`); code != http.StatusBadRequest {
		t.Errorf("bad xml = %d", code)
	}
	if code, _ := post(PathPublish, `<wrong/>`); code != http.StatusBadRequest {
		t.Errorf("wrong root = %d", code)
	}
	if code, _ := post(PathPublish, `<publish ttl-ms="1000"/>`); code != http.StatusBadRequest {
		t.Errorf("missing tuple = %d", code)
	}
	if code, _ := post(PathPublish, `<publish ttl-ms="x"><tuple link="l" type="t"><content/></tuple></publish>`); code != http.StatusBadRequest {
		t.Errorf("bad ttl = %d", code)
	}
	if code, _ := post(PathPublish, `<publish ttl-ms="1000"><tuple type="t"><content/></tuple></publish>`); code != http.StatusUnprocessableEntity {
		t.Errorf("invalid tuple = %d", code)
	}

	// Unpublish without link.
	if code := get(PathUnpublish); code != http.StatusBadRequest {
		t.Errorf("unpublish no link = %d", code)
	}

	// XQuery: wrong method, syntax error, bad freshness parameter.
	if code := get(PathXQuery); code != http.StatusMethodNotAllowed {
		t.Errorf("GET xquery = %d", code)
	}
	if code, body := post(PathXQuery, `for $x in`); code != http.StatusUnprocessableEntity || !strings.Contains(body, "xq:") {
		t.Errorf("syntax error = %d %q", code, body)
	}
	if code, _ := post(PathXQuery+"?maxage-ms=zzz", `1`); code != http.StatusBadRequest {
		t.Errorf("bad maxage = %d", code)
	}

	// A denied query-step budget surfaces as a remote error through the
	// client, too.
	client := NewClient(srv.URL)
	if _, err := client.XQuery(`for $x in`, registry.QueryOptions{}); err == nil {
		t.Error("client swallowed the remote error")
	}
	// Unknown host: transport errors surface.
	bad := NewClient("http://127.0.0.1:1")
	if _, err := bad.GetServiceDescription(); err == nil {
		t.Error("unreachable node did not error")
	}
	// URL escaping in unpublish round trip.
	if err := client.Unpublish("http://x.y/a?b=c&d=e"); err != nil {
		t.Errorf("unpublish with query chars: %v", err)
	}
}
