package wsda

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Connection-pool and timeout tuning for the package's shared transport.
// The numbers are chosen for discovery traffic: many small request/response
// exchanges against a handful of registry/router endpoints (fan-in), plus
// long-lived streamed responses that must not be cut by a whole-request
// timeout.
const (
	// DialTimeout bounds TCP connection establishment to a node.
	DialTimeout = 5 * time.Second
	// TLSHandshakeTimeout bounds the TLS handshake on HTTPS endpoints.
	TLSHandshakeTimeout = 5 * time.Second
	// ResponseHeaderTimeout bounds the wait for response headers after the
	// request is written — the "stuck registry" guard. It is deliberately
	// generous so feed long-polls (which hold headers until a change or the
	// wait elapses, DefaultMaxWait 30s on the server) still fit under it.
	ResponseHeaderTimeout = 45 * time.Second
	// MaxIdleConnsPerHost keeps enough warm connections per endpoint for a
	// fan-in client (an SDK cache, a router) hammering one registry from
	// many goroutines without a dial per request.
	MaxIdleConnsPerHost = 64
	// IdleConnTimeout retires idle pooled connections.
	IdleConnTimeout = 90 * time.Second
)

// DefaultTransport is the shared pooled keep-alive transport every Client
// without an explicit HTTP override uses. Unlike http.DefaultTransport it
// bounds dial, TLS and response-header waits (a stuck registry fails the
// call instead of hanging the caller forever) and pools enough idle
// connections per host for fan-in workloads. There is intentionally no
// whole-request timeout: streamed query responses and feed long-polls are
// expected to outlive any reasonable one; slow-loris bodies are the
// caller's context's problem.
var DefaultTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   DialTimeout,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:     true,
	TLSHandshakeTimeout:   TLSHandshakeTimeout,
	ResponseHeaderTimeout: ResponseHeaderTimeout,
	ExpectContinueTimeout: 1 * time.Second,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   MaxIdleConnsPerHost,
	IdleConnTimeout:       IdleConnTimeout,
}

// DefaultHTTPClient is the shared client over DefaultTransport. NewClient
// installs it, and a Client whose HTTP field is nil falls back to it — the
// old fallback was http.DefaultClient, which pools a single idle connection
// per host and never times out a dead peer.
var DefaultHTTPClient = &http.Client{Transport: DefaultTransport}

// httpClient resolves the client to issue requests with: the explicit
// override when set, the shared pooled default otherwise. A zero-value
// Client is therefore usable, matching the documented nil semantics.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return DefaultHTTPClient
}

// maxDrainBytes bounds how much of an unread response body is consumed
// before closing it so the pooled transport can recycle the connection. A
// remainder larger than this is cheaper to abandon (close kills the
// connection) than to read.
const maxDrainBytes = 256 << 10

// maxDrainWait bounds how long drainClose waits for that remainder. A
// response already in flight drains in microseconds, keeping the
// connection reusable; a server still producing (a streamed query being
// abandoned mid-evaluation) must instead see a prompt close — the
// disconnect is itself a signal, canceling a streamed netquery's
// transaction network-wide, and waiting out a trickle would both delay
// that and swallow it entirely on short streams.
const maxDrainWait = 25 * time.Millisecond

// drainClose discards a bounded remainder of body (bounded in bytes and in
// time) and closes it. Closing a body with unread bytes tears down the
// underlying connection; on the streaming early-stop path (onItem returned
// false, max-results reached) what remains is typically just the trailer,
// so draining it keeps the keep-alive connection reusable.
func drainClose(body io.ReadCloser) {
	done := make(chan struct{})
	go func() {
		_, _ = io.CopyN(io.Discard, body, maxDrainBytes)
		close(done)
	}()
	t := time.NewTimer(maxDrainWait)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
	// Close unblocks the drain goroutine's pending Read if it lost the race.
	body.Close()
}

// parseRetryAfter interprets a Retry-After response header value: either a
// non-negative integer delay in seconds, or an HTTP-date. Returns 0 for an
// absent or unparseable value (0 means "no hint", so a literal
// "Retry-After: 0" is indistinguishable from none — both mean retry
// whenever the caller pleases).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
