package wsda

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// StreamSummary is the trailing accounting of a streamed result set: the
// attributes that used to ride on the <results> root are unknown when a
// streamed header is written, so they travel in a final <summary> element
// instead. The decoder also fills it from root attributes when the peer
// answered with a buffered <results> document, so callers handle both
// shapes uniformly.
type StreamSummary struct {
	TxID           string        // network query transaction ID ("" for local queries)
	Count          int           // items delivered
	Complete       bool          // nothing known to be missing (and not truncated)
	Aborted        bool          // the abort deadline cut collection short
	NodesContacted int           // nodes the query reached or tried to reach
	NodesResponded int           // nodes whose final answer arrived
	Elapsed        time.Duration // server-side elapsed time
	Network        bool          // network accounting attrs present/meaningful
	// Shortfall names what a partial result is missing (e.g. the shards or
	// peers that never answered), so an incomplete delivery is actionable
	// rather than a bare complete="false". Empty when nothing is missing.
	Shortfall string
	// Plan is the server's X-Wsda-Plan header, filled client-side by
	// postStream ("" when the server sent none). It never crosses the
	// wire inside the <summary> trailer.
	Plan string
	// NextCursor is the opaque continuation cursor of a paginated response
	// (next-cursor attribute): pass it back as page-cursor to resume where
	// this page stopped. Empty on the final page and on unpaginated
	// responses. A paginated page reports Complete=false — the result set
	// continues — until the final page.
	NextCursor string
}

// StreamWriter emits a chunked <results> stream over HTTP: one <node> or
// <atomic> element per item — byte-identical to the elements MarshalSequence
// produces, so streamed and buffered deliveries carry the same item bytes —
// flushed to the client as they are written, terminated by a <summary>
// element carrying the accounting. The zero value is not usable; call
// NewStreamWriter.
type StreamWriter struct {
	w          io.Writer
	fl         http.Flusher
	flushEvery int
	unflushed  int
	count      int
	started    bool
	err        error

	// Flight correlation (SetFlight): records one stream-item event per
	// written item and a stream-close on the trailer, tying the HTTP edge
	// into /debug/query/<tx>.
	fr *telemetry.FlightRecorder
	tx string
}

// NewStreamWriter prepares a streamed <results> response on w. Nothing is
// written until the first item (or Close), so callers may still answer an
// error status for failures detected before evaluation starts.
func NewStreamWriter(w http.ResponseWriter) *StreamWriter {
	fl, _ := w.(http.Flusher)
	return &StreamWriter{w: w, fl: fl, flushEvery: 1}
}

// SetFlushEvery makes the writer flush once per n items instead of after
// every item — the knob for high-volume streams where per-item flushes cost
// a syscall each. Values below 1 are treated as 1.
func (sw *StreamWriter) SetFlushEvery(n int) {
	if n < 1 {
		n = 1
	}
	sw.flushEvery = n
}

// SetFlight attaches a flight recorder and the transaction this stream
// serves; subsequent WriteItem/Close calls record stream-item and
// stream-close events. A nil recorder (or empty tx) disables recording.
func (sw *StreamWriter) SetFlight(fr *telemetry.FlightRecorder, tx string) {
	sw.fr, sw.tx = fr, tx
}

// Count returns how many items have been written so far.
func (sw *StreamWriter) Count() int { return sw.count }

// Started reports whether the response header has been committed (after
// which errors can no longer be answered with an HTTP status).
func (sw *StreamWriter) Started() bool { return sw.started }

func (sw *StreamWriter) start() {
	if sw.started {
		return
	}
	sw.started = true
	if hw, ok := sw.w.(http.ResponseWriter); ok {
		hw.Header().Set("Content-Type", "text/xml; charset=utf-8")
	}
	_, sw.err = io.WriteString(sw.w, `<results streamed="true">`)
	sw.flush()
}

func (sw *StreamWriter) flush() {
	sw.unflushed = 0
	if sw.fl != nil {
		sw.fl.Flush()
	}
}

// WriteItem appends one result item to the stream and flushes per the
// flush policy. The first call commits the response header.
func (sw *StreamWriter) WriteItem(it xq.Item) error {
	if sw.err != nil {
		return sw.err
	}
	sw.start()
	if sw.err != nil {
		return sw.err
	}
	if _, sw.err = io.WriteString(sw.w, marshalItem(it).String()); sw.err != nil {
		return sw.err
	}
	sw.count++
	sw.fr.Record(sw.tx, telemetry.FlightStreamItem, "", "", int64(sw.count), "")
	if sw.unflushed++; sw.unflushed >= sw.flushEvery {
		sw.flush()
	}
	return nil
}

// Close terminates the stream with the <summary> trailer and the closing
// </results> tag. sum.Count is overridden with the writer's own item count.
func (sw *StreamWriter) Close(sum StreamSummary) error {
	if sw.err != nil {
		return sw.err
	}
	sw.start()
	if sw.err != nil {
		return sw.err
	}
	sum.Count = sw.count
	el := xmldoc.NewElement("summary")
	if sum.TxID != "" {
		el.SetAttr("tx", sum.TxID)
	}
	el.SetAttr("count", strconv.Itoa(sum.Count))
	el.SetAttr("complete", strconv.FormatBool(sum.Complete))
	el.SetAttr("elapsed-ms", strconv.FormatInt(sum.Elapsed.Milliseconds(), 10))
	if sum.Network {
		el.SetAttr("aborted", strconv.FormatBool(sum.Aborted))
		el.SetAttr("nodes-contacted", strconv.Itoa(sum.NodesContacted))
		el.SetAttr("nodes-responded", strconv.Itoa(sum.NodesResponded))
	}
	if sum.Shortfall != "" {
		el.SetAttr("shortfall", sum.Shortfall)
	}
	if sum.NextCursor != "" {
		el.SetAttr("next-cursor", sum.NextCursor)
	}
	if _, sw.err = io.WriteString(sw.w, el.String()+"</results>"); sw.err != nil {
		return sw.err
	}
	note := "complete"
	if !sum.Complete {
		note = "incomplete"
	}
	sw.fr.Record(sw.tx, telemetry.FlightStreamClose, "", "", int64(sum.Count), note)
	sw.flush()
	return nil
}

// DecodeStream incrementally parses a <results> document from r, invoking
// onItem for every result item the moment its element is fully read — no
// buffering of the document, so items surface while the producer is still
// streaming. onItem returning false stops the parse early. The returned
// summary comes from the trailing <summary> element (streamed responses) or
// from the root's own attributes (buffered responses); on early stop it
// reflects what had been seen so far.
func DecodeStream(r io.Reader, onItem func(it xq.Item) bool) (*StreamSummary, error) {
	dec := xml.NewDecoder(r)
	sum := &StreamSummary{Complete: true}
	depth := 0
	count := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return sum, fmt.Errorf("wsda: truncated result stream")
			}
			break
		}
		if err != nil {
			return sum, fmt.Errorf("wsda: decode results: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				if t.Name.Local != "results" {
					return sum, fmt.Errorf("wsda: expected <results> element, got <%s>", t.Name.Local)
				}
				summaryFromAttrs(sum, t.Attr)
				depth = 1
				continue
			}
			// A complete child element: materialize it from the token
			// stream, then interpret it.
			el, err := buildElement(dec, t)
			if err != nil {
				return sum, err
			}
			if el.LocalName() == "summary" {
				summaryFromElement(sum, el)
				continue
			}
			it, err := unmarshalItem(el)
			if err != nil {
				return sum, err
			}
			count++
			sum.Count = count
			if onItem != nil && !onItem(it) {
				// The consumer stopped before the stream (and its trailing
				// accounting) finished: whatever was left unread is missing,
				// so this result must not claim completeness.
				sum.Complete = false
				return sum, nil
			}
		case xml.EndElement:
			if depth == 1 && t.Name.Local == "results" {
				depth = 0
			}
		}
	}
	if sum.Count < count {
		sum.Count = count
	}
	return sum, nil
}

// summaryFromAttrs folds encoding/xml attributes (the <results> root of a
// buffered response) into the summary.
func summaryFromAttrs(sum *StreamSummary, attrs []xml.Attr) {
	el := xmldoc.NewElement("summary")
	for _, a := range attrs {
		el.SetAttr(a.Name.Local, a.Value)
	}
	summaryFromElement(sum, el)
}

// summaryFromElement folds a <summary>-shaped element's attributes into sum.
func summaryFromElement(sum *StreamSummary, el *xmldoc.Node) {
	if v, ok := el.Attr("tx"); ok {
		sum.TxID = v
	}
	if v, ok := el.Attr("count"); ok {
		if n, err := strconv.Atoi(v); err == nil {
			sum.Count = n
		}
	}
	if v, ok := el.Attr("complete"); ok {
		sum.Complete = v == "true"
	}
	if v, ok := el.Attr("elapsed-ms"); ok {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			sum.Elapsed = time.Duration(ms) * time.Millisecond
		}
	}
	if v, ok := el.Attr("aborted"); ok {
		sum.Aborted = v == "true"
		sum.Network = true
	}
	if v, ok := el.Attr("nodes-contacted"); ok {
		if n, err := strconv.Atoi(v); err == nil {
			sum.NodesContacted = n
			sum.Network = true
		}
	}
	if v, ok := el.Attr("nodes-responded"); ok {
		if n, err := strconv.Atoi(v); err == nil {
			sum.NodesResponded = n
		}
	}
	if v, ok := el.Attr("shortfall"); ok {
		sum.Shortfall = v
	}
	if v, ok := el.Attr("next-cursor"); ok {
		sum.NextCursor = v
	}
}

// buildElement materializes the element opened by se (and its whole
// subtree) from the decoder's token stream into an xmldoc tree — the
// incremental counterpart of xmldoc.Parse for one child element.
func buildElement(dec *xml.Decoder, se xml.StartElement) (*xmldoc.Node, error) {
	root := elementFromStart(se)
	cur := root
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("wsda: decode results: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := elementFromStart(t)
			cur.AppendChild(el)
			cur = el
		case xml.EndElement:
			if cur == root {
				root.Renumber()
				return root, nil
			}
			cur = cur.Parent
		case xml.CharData:
			cur.AppendChild(xmldoc.NewText(string(t)))
		case xml.Comment:
			cur.AppendChild(xmldoc.NewComment(string(t)))
		}
	}
}

func elementFromStart(se xml.StartElement) *xmldoc.Node {
	el := xmldoc.NewElement(se.Name.Local)
	for _, a := range se.Attr {
		if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
			continue
		}
		el.SetAttr(a.Name.Local, a.Value)
	}
	return el
}

// XQueryStream runs the powerful query primitive against the remote node
// with streamed delivery: the response is decoded incrementally and onItem
// is invoked per item as it arrives, so the first result surfaces while
// the server is still evaluating. maxResults > 0 asks the server to stop
// after that many items; onItem returning false stops the client-side
// parse (and, by closing the connection, the server run).
func (c *Client) XQueryStream(query string, opts registry.QueryOptions, maxResults int, onItem func(xq.Item) bool) (*StreamSummary, error) {
	q := xqueryParams(opts)
	q.Set("stream", "true")
	if maxResults > 0 {
		q.Set("max-results", strconv.Itoa(maxResults))
	}
	return c.postStream(PathXQuery, q, query, onItem)
}

// NetQueryStream submits a network query to the peer's /netquery endpoint
// and decodes the response incrementally. params carries the endpoint's
// query parameters (mode, radius, pipeline, stream, max-results, ...)
// verbatim; the summary works for both streamed and buffered responses.
func (c *Client) NetQueryStream(query string, params url.Values, onItem func(xq.Item) bool) (*StreamSummary, error) {
	return c.postStream(PathNetQuery, params, query, onItem)
}

// postStream POSTs body and hands the (possibly chunked) response to the
// incremental decoder instead of buffering it whole.
func (c *Client) postStream(path string, q url.Values, body string, onItem func(xq.Item) bool) (*StreamSummary, error) {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := c.newRequest(http.MethodPost, u, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/xml")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	// Drain-then-close, not a bare close: when the decoder stops early
	// (onItem returned false, max-results reached) the body still holds the
	// unread trailer; closing over it would tear down the keep-alive
	// connection and force the next request on this pooled transport to
	// re-dial. The drain is bounded, so a huge abandoned stream still just
	// gets its connection dropped.
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, &HTTPError{
			StatusCode: resp.StatusCode,
			Body:       strings.TrimSpace(string(data)),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	sum, err := DecodeStream(resp.Body, onItem)
	if sum != nil {
		sum.Plan = resp.Header.Get(HeaderPlan)
	}
	return sum, err
}

// marshalItem renders one result item as its wire element: nodes wrapped
// in <node> (attribute nodes via the attr-name form), atomics in
// <atomic type="...">. MarshalSequence and StreamWriter share it, which is
// what makes buffered and streamed item bytes identical.
func marshalItem(it xq.Item) *xmldoc.Node {
	switch v := it.(type) {
	case *xmldoc.Node:
		wrap := xmldoc.NewElement("node")
		body := v
		if body.Kind == xmldoc.DocumentNode {
			body = body.DocumentElement()
		}
		if body != nil {
			switch body.Kind {
			case xmldoc.ElementNode:
				wrap.AppendChild(body.Clone())
			case xmldoc.AttributeNode:
				wrap.SetAttr("attr-name", body.Name)
				wrap.AppendChild(xmldoc.NewText(body.Data))
			default:
				wrap.AppendChild(xmldoc.NewText(body.StringValue()))
			}
		}
		wrap.Renumber()
		return wrap
	default:
		a := xmldoc.NewElement("atomic")
		a.SetAttr("type", atomicType(it))
		a.AppendChild(xmldoc.NewText(xq.StringValue(it)))
		a.Renumber()
		return a
	}
}

// unmarshalItem parses one wire element (<node> or <atomic>) back into a
// result item — the per-item core of UnmarshalSequence, shared with the
// streaming decoder.
func unmarshalItem(c *xmldoc.Node) (xq.Item, error) {
	switch c.LocalName() {
	case "node":
		if an, ok := c.Attr("attr-name"); ok {
			return xmldoc.NewAttr(an, c.StringValue()), nil
		}
		var inner *xmldoc.Node
		for _, cc := range c.ChildElements() {
			inner = cc
			break
		}
		if inner != nil {
			n := inner.Clone()
			n.Renumber()
			return n, nil
		}
		return xmldoc.NewText(c.StringValue()), nil
	case "atomic":
		typ, _ := c.Attr("type")
		s := c.StringValue()
		switch typ {
		case "boolean":
			return s == "true", nil
		case "integer":
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wsda: bad integer %q", s)
			}
			return i, nil
		case "decimal":
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("wsda: bad decimal %q", s)
			}
			return f, nil
		default:
			return s, nil
		}
	}
	return nil, fmt.Errorf("wsda: unexpected result element <%s>", c.LocalName())
}
