// Cursor pagination over the WSDA query binding (S30). A page request
// carries page-size (the bound) and optionally page-cursor (an opaque
// continuation minted by the previous page's <summary>); the response is a
// streamed <results> holding at most page-size items whose trailer carries
// next-cursor while more items remain.
//
// The cursor encodes the item offset into the query's result sequence.
// Both the planner's candidate walk and the tuple-set view deliver items
// in document order — tuples sorted by link — so offsets are stable across
// requests as long as the tuple set itself is stable; a mutation between
// pages can shift items across page boundaries (skip or repeat), exactly
// the anomaly every offset cursor has. Callers that need a consistent
// snapshot should drain the pages promptly or watch the change feed (the
// SDK's Pager rides a feed-invalidated cache for this reason).

package wsda

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"wsda/internal/registry"
	"wsda/internal/xq"
)

// pageCursorPrefix versions the cursor wire format so a future anchored
// (keyset) cursor can coexist with offset cursors.
const pageCursorPrefix = "wsda.p1:"

// EncodePageCursor mints the opaque continuation cursor for the given item
// offset. The encoding is deliberately opaque on the wire: clients must
// round-trip it verbatim, not construct or interpret it.
func EncodePageCursor(offset int) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(pageCursorPrefix + strconv.Itoa(offset)))
}

// DecodePageCursor validates an opaque continuation cursor and returns the
// item offset it encodes. Handlers answer a failed decode with 400: a
// malformed cursor stays malformed however often it is resent.
func DecodePageCursor(cursor string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, fmt.Errorf("bad page-cursor: %v", err)
	}
	s, ok := strings.CutPrefix(string(raw), pageCursorPrefix)
	if !ok {
		return 0, fmt.Errorf("bad page-cursor: unknown format")
	}
	off, err := strconv.Atoi(s)
	if err != nil || off < 0 {
		return 0, fmt.Errorf("bad page-cursor: bad offset")
	}
	return off, nil
}

// Page is one page of a cursor-paginated query result.
type Page struct {
	// Items are this page's result items, at most the requested page size.
	Items xq.Sequence
	// Next is the continuation cursor for the following page; empty when
	// this was the final page.
	Next string
	// Summary is the page's stream accounting (plan header, elapsed,
	// completeness of the page's own delivery).
	Summary *StreamSummary
}

// XQueryPage runs one page of a cursor-paginated query against the remote
// node: up to pageSize items starting at the continuation cursor ("" for
// the first page). The sdk package's Pager iterates this.
func (c *Client) XQueryPage(query string, opts registry.QueryOptions, pageSize int, cursor string) (*Page, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("wsda: page size must be positive")
	}
	q := xqueryParams(opts)
	q.Set("page-size", strconv.Itoa(pageSize))
	if cursor != "" {
		q.Set("page-cursor", cursor)
	}
	var items xq.Sequence
	sum, err := c.postStream(PathXQuery, q, query, func(it xq.Item) bool {
		items = append(items, it)
		return true
	})
	if err != nil {
		return nil, err
	}
	if opts.Explain != nil {
		*opts.Explain = registry.ParsePlanInfo(sum.Plan)
	}
	return &Page{Items: items, Next: sum.NextCursor, Summary: sum}, nil
}
