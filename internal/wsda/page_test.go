package wsda

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// encodeRawCursor hand-crafts a cursor with an arbitrary offset payload,
// for probing the decoder's validation.
func encodeRawCursor(payload string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(pageCursorPrefix + payload))
}

func TestPageCursorRoundTrip(t *testing.T) {
	for _, off := range []int{0, 1, 7, 1 << 20} {
		c := EncodePageCursor(off)
		got, err := DecodePageCursor(c)
		if err != nil {
			t.Fatalf("DecodePageCursor(%q): %v", c, err)
		}
		if got != off {
			t.Errorf("round trip %d -> %q -> %d", off, c, got)
		}
	}
}

func TestPageCursorRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not base64 !!",
		"aGVsbG8",                 // valid base64, wrong prefix
		EncodePageCursor(3) + "x", // corrupted tail
	} {
		if _, err := DecodePageCursor(bad); err == nil {
			t.Errorf("DecodePageCursor(%q) accepted garbage", bad)
		}
	}
	// A negative offset must not survive a hand-crafted cursor.
	if _, err := DecodePageCursor(encodeRawCursor("-4")); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := DecodePageCursor(encodeRawCursor("12junk")); err == nil {
		t.Error("non-numeric offset accepted")
	}
}

// pagedNode builds a server with n sequentially-named tuples so document
// order (link-sorted) is predictable.
func pagedNode(t *testing.T, n int) (*httptest.Server, *LocalNode) {
	t.Helper()
	node := newLocalNode()
	for i := 0; i < n; i++ {
		tp := &tuple.Tuple{
			Link:    fmt.Sprintf("http://paged.example/%03d", i),
			Type:    tuple.TypeService,
			Content: xmldoc.MustParse(fmt.Sprintf(`<service name="s%03d"/>`, i)).DocumentElement().Clone(),
		}
		if _, err := node.Publish(tp, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(Handler(node))
	t.Cleanup(srv.Close)
	return srv, node
}

// Paginating through a result set with XQueryPage must deliver exactly the
// items an unpaginated query delivers, in the same order, with no
// duplicates across page boundaries.
func TestXQueryPageWalksWholeResultSet(t *testing.T) {
	srv, _ := pagedNode(t, 10)
	cl := NewClient(srv.URL)
	const q = `//service/@name`

	whole, err := cl.XQuery(q, registry.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, it := range whole {
		want = append(want, xq.Serialize(xq.Sequence{it}))
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		page, err := cl.XQueryPage(q, registry.QueryOptions{}, 3, cursor)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		pages++
		if len(page.Items) > 3 {
			t.Fatalf("page %d has %d items, page-size 3", pages, len(page.Items))
		}
		for _, it := range page.Items {
			got = append(got, xq.Serialize(xq.Sequence{it}))
		}
		if page.Next == "" {
			if !page.Summary.Complete {
				t.Error("final page not marked complete")
			}
			break
		}
		if page.Summary.Complete {
			t.Errorf("page %d has a next cursor but claims complete", pages)
		}
		cursor = page.Next
	}
	if pages != 4 {
		t.Errorf("pages = %d, want 4 (3+3+3+1)", pages)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("paginated walk diverged from buffered result:\ngot  %v\nwant %v", got, want)
	}
}

// An exact multiple of the page size must not mint a cursor pointing at an
// empty trailing page.
func TestXQueryPageExactMultiple(t *testing.T) {
	srv, _ := pagedNode(t, 6)
	cl := NewClient(srv.URL)
	page, err := cl.XQueryPage(`//service/@name`, registry.QueryOptions{}, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(page.Items))
	}
	if page.Next != "" {
		t.Errorf("exact-multiple page minted a next cursor %q", page.Next)
	}
}

// A republish between pages must not derail the cursor: offset cursors are
// positional, so updating an EXISTING link keeps the walk stable (the set
// membership is unchanged). This is the mid-pagination republish anomaly
// the design note promises is survivable.
func TestXQueryPageSurvivesMidPaginationRepublish(t *testing.T) {
	srv, node := pagedNode(t, 6)
	cl := NewClient(srv.URL)
	const q = `//service/@name`

	first, err := cl.XQueryPage(q, registry.QueryOptions{}, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) != 3 || first.Next == "" {
		t.Fatalf("first page: %d items, next %q", len(first.Items), first.Next)
	}

	// Republish an already-delivered link with fresh content mid-walk.
	tp := &tuple.Tuple{
		Link:    "http://paged.example/001",
		Type:    tuple.TypeService,
		Content: xmldoc.MustParse(`<service name="s001"/>`).DocumentElement().Clone(),
	}
	if _, err := node.Publish(tp, time.Minute); err != nil {
		t.Fatal(err)
	}

	second, err := cl.XQueryPage(q, registry.QueryOptions{}, 3, first.Next)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, it := range append(first.Items, second.Items...) {
		got = append(got, xq.Serialize(xq.Sequence{it}))
	}
	if len(got) != 6 {
		t.Fatalf("walked %d items, want 6", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Errorf("duplicate item across page boundary: %s", s)
		}
		seen[s] = true
	}
}

// The handler must reject pagination misuse cleanly: bad cursors and a
// cursor without a page size are 400s, not silent full result sets.
func TestHandlerPaginationErrors(t *testing.T) {
	srv, _ := pagedNode(t, 3)
	post := func(params string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+PathXQuery+"?"+params, "text/plain",
			strings.NewReader(`//service`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("page-size=0"); code != http.StatusBadRequest {
		t.Errorf("page-size=0 = %d, want 400", code)
	}
	if code := post("page-size=x"); code != http.StatusBadRequest {
		t.Errorf("page-size=x = %d, want 400", code)
	}
	if code := post("page-size=2&page-cursor=garbage!"); code != http.StatusBadRequest {
		t.Errorf("bad cursor = %d, want 400", code)
	}
	if code := post("page-cursor=" + EncodePageCursor(2)); code != http.StatusBadRequest {
		t.Errorf("cursor without page-size = %d, want 400", code)
	}
	if code := post("page-size=2"); code != http.StatusOK {
		t.Errorf("valid pagination = %d, want 200", code)
	}
}

// XQueryPage must reject a non-positive page size client-side.
func TestXQueryPageRejectsBadSize(t *testing.T) {
	cl := NewClient("http://unused.example")
	if _, err := cl.XQueryPage(`1`, registry.QueryOptions{}, 0, ""); err == nil {
		t.Error("pageSize 0 accepted")
	}
}
