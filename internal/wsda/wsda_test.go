package wsda

import (
	"net/http/httptest"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

func sampleService() *Service {
	return NewService("replica-catalog").
		Owner("cms").
		Domain("cern.ch").
		Link("http://cms.cern.ch/rc/wsda/presenter").
		Attr("load", "0.35").
		Op(IfacePresenter, "getServiceDescription", "http://cms.cern.ch/rc/wsda/presenter").
		Op(IfaceXQuery, "query", "http://cms.cern.ch/rc/wsda/xquery").
		Op(IfaceConsumer, "publish", "http://cms.cern.ch/rc/wsda/publish").
		Build()
}

func TestSWSDLRoundTrip(t *testing.T) {
	s := sampleService()
	got, err := ParseService(s.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Name != s.Name || got.Owner != s.Owner || got.Domain != s.Domain || got.Link != s.Link {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Attributes["load"] != "0.35" {
		t.Errorf("attributes = %v", got.Attributes)
	}
	if len(got.Interfaces) != 3 {
		t.Fatalf("interfaces = %d", len(got.Interfaces))
	}
	if ep := got.Endpoint(IfaceXQuery, "query", "http"); ep != "http://cms.cern.ch/rc/wsda/xquery" {
		t.Errorf("endpoint = %q", ep)
	}
}

func TestImplementsAndMatches(t *testing.T) {
	s := sampleService()
	if !s.Implements(IfacePresenter, IfaceXQuery) {
		t.Error("Implements failed")
	}
	if s.Implements(IfaceMinQuery) {
		t.Error("claims MinQuery")
	}
	if !s.Matches(MatchSpec{Interface: IfaceXQuery, Operation: "query", Protocol: "http"}) {
		t.Error("Matches failed")
	}
	if s.Matches(MatchSpec{Interface: IfaceXQuery, Operation: "nope"}) {
		t.Error("matched missing operation")
	}
	if s.Matches(MatchSpec{Interface: IfaceXQuery, Operation: "query", Protocol: "ftp"}) {
		t.Error("matched missing protocol")
	}
}

func TestParseServiceErrors(t *testing.T) {
	if _, err := ParseService("<notservice/>"); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := ParseService(`<service><interface/></service>`); err == nil {
		t.Error("interface without type accepted")
	}
}

func newLocalNode() *LocalNode {
	reg := registry.New(registry.Config{Name: "node1", DefaultTTL: time.Minute})
	return &LocalNode{Desc: sampleService(), Registry: reg}
}

func publishSample(t *testing.T, n Node, name, domain string) {
	t.Helper()
	tp := &tuple.Tuple{
		Link:    "http://" + domain + "/" + name,
		Type:    tuple.TypeService,
		Content: xmldoc.MustParse(`<service name="` + name + `" domain="` + domain + `"><load>0.5</load></service>`).DocumentElement().Clone(),
	}
	if _, err := n.Publish(tp, time.Minute); err != nil {
		t.Fatalf("publish %s: %v", name, err)
	}
}

func TestLocalNode(t *testing.T) {
	n := newLocalNode()
	publishSample(t, n, "a", "cern.ch")
	publishSample(t, n, "b", "infn.it")

	desc, err := n.GetServiceDescription()
	if err != nil || desc.Name != "replica-catalog" {
		t.Errorf("presenter: %v %v", desc, err)
	}
	tuples, err := n.MinQuery(registry.Filter{LinkPrefix: "http://cern.ch/"})
	if err != nil || len(tuples) != 1 {
		t.Errorf("minquery: %d %v", len(tuples), err)
	}
	seq, err := n.XQuery(`count(/tupleset/tuple)`, registry.QueryOptions{})
	if err != nil || xq.StringValue(seq[0]) != "2" {
		t.Errorf("xquery: %v %v", seq, err)
	}
	if err := n.Unpublish("http://cern.ch/a"); err != nil {
		t.Errorf("unpublish: %v", err)
	}
	if n.Registry.Len() != 1 {
		t.Error("unpublish had no effect")
	}
}

func TestHTTPBinding(t *testing.T) {
	node := newLocalNode()
	srv := httptest.NewServer(Handler(node))
	defer srv.Close()
	client := NewClient(srv.URL)

	// Presenter over the wire (= service link resolution).
	desc, err := client.GetServiceDescription()
	if err != nil {
		t.Fatalf("remote presenter: %v", err)
	}
	if desc.Name != "replica-catalog" || !desc.Implements(IfaceXQuery) {
		t.Errorf("desc = %+v", desc)
	}

	// Publish over the wire.
	tp := &tuple.Tuple{
		Link:     "http://cms.cern.ch/svc1",
		Type:     tuple.TypeService,
		Context:  "child",
		Metadata: map[string]string{"vo": "cms"},
		Content:  xmldoc.MustParse(`<service name="svc1"><load>0.2</load></service>`).DocumentElement().Clone(),
	}
	granted, err := client.Publish(tp, 30*time.Second)
	if err != nil {
		t.Fatalf("remote publish: %v", err)
	}
	if granted != 30*time.Second {
		t.Errorf("granted = %v", granted)
	}

	// MinQuery over the wire.
	tuples, err := client.MinQuery(registry.Filter{Type: tuple.TypeService})
	if err != nil || len(tuples) != 1 {
		t.Fatalf("remote minquery: %d %v", len(tuples), err)
	}
	if tuples[0].Link != tp.Link || tuples[0].Metadata["vo"] != "cms" {
		t.Errorf("tuple = %+v", tuples[0])
	}
	if tuples[0].Content == nil {
		t.Fatal("content lost in transit")
	}

	// XQuery over the wire: nodes and atomics.
	seq, err := client.XQuery(`for $s in //service return $s/@name`, registry.QueryOptions{})
	if err != nil || len(seq) != 1 {
		t.Fatalf("remote xquery: %v %v", seq, err)
	}
	if xq.StringValue(seq[0]) != "svc1" {
		t.Errorf("result = %v", seq)
	}
	seq, err = client.XQuery(`count(//service), avg(//load) * 2, exists(//nope), "str"`, registry.QueryOptions{})
	if err != nil || len(seq) != 4 {
		t.Fatalf("atomics: %v %v", seq, err)
	}
	if seq[0] != int64(1) || seq[1] != 0.4 || seq[2] != false || seq[3] != "str" {
		t.Errorf("atomic round trip = %#v", seq)
	}

	// Element results survive as trees.
	seq, err = client.XQuery(`<hit n="{count(//service)}">{//service/@name}</hit>`, registry.QueryOptions{})
	if err != nil || len(seq) != 1 {
		t.Fatalf("element result: %v %v", seq, err)
	}
	el, ok := seq[0].(*xmldoc.Node)
	if !ok {
		t.Fatalf("element result is %T", seq[0])
	}
	if v, _ := el.Attr("n"); v != "1" {
		t.Errorf("element = %s", el.String())
	}
	if v, _ := el.Attr("name"); v != "svc1" {
		t.Errorf("attr content = %s", el.String())
	}

	// Query errors propagate as remote errors.
	if _, err := client.XQuery(`for $x in`, registry.QueryOptions{}); err == nil {
		t.Error("remote syntax error not propagated")
	}

	// Unpublish over the wire.
	if err := client.Unpublish(tp.Link); err != nil {
		t.Fatalf("remote unpublish: %v", err)
	}
	if node.Registry.Len() != 0 {
		t.Error("unpublish had no effect")
	}
}

func TestSequenceMarshalRoundTrip(t *testing.T) {
	el := xmldoc.MustParse(`<a x="1"><b>t</b></a>`).DocumentElement()
	seq := xq.Sequence{el, "s", int64(7), 2.5, true, xmldoc.NewAttr("k", "v")}
	got, err := UnmarshalSequence(MarshalSequence(seq))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got) != len(seq) {
		t.Fatalf("len = %d, want %d", len(got), len(seq))
	}
	if n, ok := got[0].(*xmldoc.Node); !ok || !n.Equal(el) {
		t.Errorf("node item mismatch: %v", got[0])
	}
	if got[1] != "s" || got[2] != int64(7) || got[3] != 2.5 || got[4] != true {
		t.Errorf("atomics = %#v", got[1:5])
	}
	if a, ok := got[5].(*xmldoc.Node); !ok || a.Kind != xmldoc.AttributeNode || a.Data != "v" {
		t.Errorf("attr item = %#v", got[5])
	}
}
