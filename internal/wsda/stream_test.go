package wsda

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

const allServices = `/tupleset/tuple/content/service`

func newStreamTestServer(t *testing.T) (*Client, *telemetry.Metrics) {
	t.Helper()
	node := newLocalNode()
	publishSample(t, node, "a", "cern.ch")
	publishSample(t, node, "b", "infn.it")
	m := telemetry.NewMetrics()
	srv := httptest.NewServer(HandlerWithMetrics(node, m))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), m
}

// A streamed xquery must deliver the same item bytes as the buffered
// binding and record the first-item histogram.
func TestXQueryStreamMatchesBuffered(t *testing.T) {
	c, m := newStreamTestServer(t)
	buffered, err := c.XQuery(allServices, registry.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var streamed xq.Sequence
	sum, err := c.XQueryStream(allServices, registry.QueryOptions{}, 0, func(it xq.Item) bool {
		streamed = append(streamed, it)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(buffered) || sum.Count != len(buffered) {
		t.Fatalf("streamed %d items (summary %d), buffered %d", len(streamed), sum.Count, len(buffered))
	}
	for i := range buffered {
		b, s := marshalItem(buffered[i]).String(), marshalItem(streamed[i]).String()
		if b != s {
			t.Fatalf("item %d bytes differ:\nbuffered: %s\nstreamed: %s", i, b, s)
		}
	}
	if !sum.Complete {
		t.Fatal("summary complete = false for a full local query")
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), MetricFirstItemSeconds) {
		t.Fatalf("metrics lack %s after a streamed query", MetricFirstItemSeconds)
	}
}

// max-results must stop local evaluation at exactly N items and mark the
// result incomplete.
func TestXQueryStreamMaxResults(t *testing.T) {
	c, _ := newStreamTestServer(t)
	var n int
	sum, err := c.XQueryStream(allServices, registry.QueryOptions{}, 1, func(xq.Item) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || sum.Count != 1 {
		t.Fatalf("delivered %d items (summary %d), want exactly 1", n, sum.Count)
	}
	if sum.Complete {
		t.Fatal("truncated result reported complete=true")
	}
}

// Oversized xquery bodies answer 413 instead of silently truncating the
// query text.
func TestXQueryOversizeBody(t *testing.T) {
	c, _ := newStreamTestServer(t)
	big := strings.Repeat("x", MaxQueryBytes+1)
	resp, err := http.Post(c.BaseURL+PathXQuery, "text/xml", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// DecodeStream must handle a buffered <results> document (accounting on
// the root) and a StreamWriter stream (trailing <summary>) identically.
func TestDecodeStreamBothShapes(t *testing.T) {
	el := xmldoc.MustParse(`<a x="1"><b>t</b></a>`).DocumentElement()
	seq := xq.Sequence{el, "s", int64(7), 2.5, true, xmldoc.NewAttr("k", "v")}

	// Buffered shape.
	doc := MarshalSequence(seq)
	doc.SetAttr("complete", "true")
	doc.SetAttr("nodes-contacted", "3")
	doc.SetAttr("nodes-responded", "3")
	var got xq.Sequence
	sum, err := DecodeStream(strings.NewReader(doc.String()), func(it xq.Item) bool {
		got = append(got, it)
		return true
	})
	if err != nil {
		t.Fatalf("decode buffered: %v", err)
	}
	if len(got) != len(seq) || sum.Count != len(seq) || !sum.Complete || sum.NodesContacted != 3 {
		t.Fatalf("buffered decode: %d items, summary %+v", len(got), sum)
	}

	// Streamed shape.
	rec := httptest.NewRecorder()
	sw := NewStreamWriter(rec)
	for _, it := range seq {
		if err := sw.WriteItem(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(StreamSummary{
		TxID: "tx1", Complete: true, Elapsed: 42 * time.Millisecond,
		Network: true, NodesContacted: 3, NodesResponded: 3,
	}); err != nil {
		t.Fatal(err)
	}
	got = nil
	sum, err = DecodeStream(rec.Body, func(it xq.Item) bool {
		got = append(got, it)
		return true
	})
	if err != nil {
		t.Fatalf("decode streamed: %v", err)
	}
	if len(got) != len(seq) || sum.Count != len(seq) {
		t.Fatalf("streamed decode: %d items, summary count %d", len(got), sum.Count)
	}
	if sum.TxID != "tx1" || !sum.Complete || !sum.Network ||
		sum.NodesContacted != 3 || sum.Elapsed != 42*time.Millisecond {
		t.Fatalf("streamed summary = %+v", sum)
	}
	if n, ok := got[0].(*xmldoc.Node); !ok || !n.Equal(el) {
		t.Errorf("node item mismatch: %v", got[0])
	}
	if got[1] != "s" || got[2] != int64(7) || got[3] != 2.5 || got[4] != true {
		t.Errorf("atomics = %#v", got[1:5])
	}
}

// onItem returning false stops the incremental parse early.
func TestDecodeStreamEarlyStop(t *testing.T) {
	doc := MarshalSequence(xq.Sequence{"a", "b", "c"})
	n := 0
	sum, err := DecodeStream(strings.NewReader(doc.String()), func(xq.Item) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || sum.Count != 2 {
		t.Fatalf("decoded %d items (summary %d), want 2", n, sum.Count)
	}
	if sum.Complete {
		t.Fatal("an early-stopped decode reported complete=true")
	}
}

// A stream cut off mid-flight must surface as an error, not a silently
// short result.
func TestDecodeStreamTruncated(t *testing.T) {
	full := `<results streamed="true"><atomic type="string">a</atomic>`
	_, err := DecodeStream(strings.NewReader(full), nil)
	if err == nil || (!strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "EOF")) {
		t.Fatalf("err = %v, want truncated-stream error", err)
	}
}
