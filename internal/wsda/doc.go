// Package wsda implements the Web Service Discovery Architecture of thesis
// Ch. 2 and Ch. 5: SWSDL service descriptions, service links, and the small
// set of orthogonal discovery primitives — Presenter (service description
// retrieval), Consumer (data publication), MinQuery (minimal query support)
// and XQuery (powerful query support) — together with their HTTP network
// protocol bindings.
//
// internal/registry supplies the local implementation of the query
// primitives; Client/Handler bind them to HTTP for remote nodes.
package wsda
