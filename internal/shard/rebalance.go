package shard

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"wsda/internal/changefeed"
	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
)

// Shard administration paths mounted by Member.Mount.
const (
	// PathShardStatus answers GET with the shard's assignment and
	// bootstrap state as JSON.
	PathShardStatus = "/wsda/shard"
	// PathShardCutover answers POST ?of=K/N by installing a new
	// assignment: rebalance tails stop, out-of-range keys are pruned, and
	// the response reports {"pruned": n}.
	PathShardCutover = "/wsda/shard/cutover"
)

// Member is one registry's participation in a partition map: it knows the
// shard's assignment, rejects writes for keys outside it, and runs the
// change-feed tails that bootstrap a joining shard's key range from the
// old owners.
type Member struct {
	reg    *registry.Registry
	logger *slog.Logger

	mu          sync.Mutex
	asgn        Assignment
	boot        []*changefeed.Replica // active rebalance tails, one per old owner
	cancelTails context.CancelFunc
	tailsDone   *sync.WaitGroup

	rejected *telemetry.Counter
	pruned   *telemetry.Counter
}

// NewMember wraps reg as the shard described by asgn. metrics, when
// non-nil, gains the wsda_shard_* families; logger nil discards.
func NewMember(reg *registry.Registry, asgn Assignment, metrics *telemetry.Metrics, logger *slog.Logger) *Member {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &Member{reg: reg, logger: logger, asgn: asgn}
	if metrics != nil {
		m.rejected = metrics.Counter("wsda_shard_rejected_publishes_total",
			"Publish/unpublish requests rejected with 421 because this shard does not own the key.")
		m.pruned = metrics.Counter("wsda_shard_pruned_tuples_total",
			"Tuples pruned at assignment cutovers because they fell outside the new key range.")
		metrics.GaugeFunc("wsda_shard_index",
			"This shard's index in the partition map.",
			func() float64 { return float64(m.Assignment().Index) })
		metrics.GaugeFunc("wsda_shard_total",
			"Total shards in the partition map (0 = unsharded).",
			func() float64 { return float64(m.Assignment().Total) })
	}
	return m
}

// Assignment returns the member's current slice of the key space.
func (m *Member) Assignment() Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.asgn
}

// Owns reports whether the member's current assignment owns link.
func (m *Member) Owns(link string) bool { return m.Assignment().Owns(link) }

// CheckOwns returns a NotOwnedError (HTTP 421) if the member's current
// assignment does not own link, counting the rejection.
func (m *Member) CheckOwns(link string) error {
	a := m.Assignment()
	if a.Owns(link) {
		return nil
	}
	if m.rejected != nil {
		m.rejected.Inc()
	}
	return &NotOwnedError{Link: link, Assignment: a, OwnedBy: Owner(link, a.Total)}
}

// Guard wraps node so Consumer writes for keys outside the member's range
// are rejected with NotOwnedError instead of accepted into the wrong
// partition. Queries pass through untouched: during a rebalance a shard
// may legitimately serve reads for keys it is about to hand off.
func (m *Member) Guard(node wsda.Node) wsda.Node { return &guardedNode{Node: node, m: m} }

type guardedNode struct {
	wsda.Node
	m *Member
}

func (g *guardedNode) Publish(t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	if err := g.m.CheckOwns(t.Link); err != nil {
		return 0, err
	}
	return g.Node.Publish(t, ttl)
}

func (g *guardedNode) Unpublish(link string) error {
	if err := g.m.CheckOwns(link); err != nil {
		return err
	}
	return g.Node.Unpublish(link)
}

// StartBootstrap begins pulling the member's key range from the old
// owners: one change-feed replica per source (sources in old-map shard
// order), each restricted by Filter to the keys this member owns AND that
// source owned under the old map — the ranges stay disjoint, so several
// tails share one registry without clobbering each other, and
// delete-reconciliation cannot touch another source's keys. The tails run
// until ctx is canceled or SetAssignment cuts them over.
func (m *Member) StartBootstrap(ctx context.Context, sources []string, longPoll time.Duration, hc *http.Client) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tctx, cancel := context.WithCancel(ctx)
	m.cancelTails = cancel
	wg := &sync.WaitGroup{}
	m.tailsDone = wg
	oldTotal := len(sources)
	for i, src := range sources {
		i := i
		rep := changefeed.New(changefeed.Config{
			Primary:      src,
			Registry:     m.reg,
			HTTP:         hc,
			LongPollWait: longPoll,
			Log:          m.logger,
			Filter: func(key string) bool {
				return m.Owns(key) && Owner(key, oldTotal) == i
			},
		})
		m.boot = append(m.boot, rep)
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			m.logger.Info("shard bootstrap tail starting", "source", src, "slice", i, "of", oldTotal)
			_ = rep.Run(tctx)
			m.logger.Info("shard bootstrap tail stopped", "source", src)
		}(src)
	}
}

// Ready reports whether the member can serve its full key range: true
// when no bootstrap is running, otherwise only once every source tail has
// applied its snapshot and is tailing the feed.
func (m *Member) Ready() bool {
	m.mu.Lock()
	boot := m.boot
	m.mu.Unlock()
	for _, rep := range boot {
		if !rep.Ready() {
			return false
		}
	}
	return true
}

// SetAssignment installs a new assignment: any bootstrap tails are
// stopped and drained FIRST (so an old owner's post-cutover prunes cannot
// ride the feed into this shard as deletions of just-moved keys), then
// keys outside the new range are pruned. Returns how many tuples were
// pruned.
func (m *Member) SetAssignment(a Assignment) int {
	m.mu.Lock()
	cancel, done := m.cancelTails, m.tailsDone
	m.cancelTails, m.tailsDone, m.boot = nil, nil, nil
	m.mu.Unlock()
	if cancel != nil {
		cancel()
		done.Wait()
	}
	m.mu.Lock()
	old := m.asgn
	m.asgn = a
	m.mu.Unlock()
	n := m.reg.PruneLinks(a.Owns)
	if m.pruned != nil {
		m.pruned.Add(int64(n))
	}
	m.logger.Info("shard assignment cutover", "from", old.String(), "to", a.String(), "pruned", n)
	return n
}

// Mount installs the shard administration endpoints on mux: GET
// PathShardStatus for the assignment/bootstrap state, POST
// PathShardCutover?of=K/N for the rebalance cutover barrier's per-shard
// step.
func (m *Member) Mount(mux *http.ServeMux) {
	mux.HandleFunc(PathShardStatus, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		a := m.Assignment()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"shard":   a.String(),
			"sharded": a.Sharded(),
			"ready":   m.Ready(),
			"tuples":  m.reg.Len(),
		})
	})
	mux.HandleFunc(PathShardCutover, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		a, err := ParseAssignment(r.URL.Query().Get("of"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := m.SetAssignment(a)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"pruned": n})
	})
}
