package shard

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"wsda/internal/changefeed"
	"wsda/internal/registry"
	"wsda/internal/wsda"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// feedServer mounts a change-feed server for reg on an httptest server.
func feedServer(t *testing.T, reg *registry.Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	changefeed.NewServer(reg).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func sortedLinks(reg *registry.Registry) []string {
	links := reg.LiveLinks()
	sort.Strings(links)
	return links
}

// TestMemberBootstrapPullsExactlyItsRange is the N→N+1 rebalance core: a
// joining shard 2/3 bootstraps from the two old owners (0/2 and 1/2) over
// their change feeds and ends up holding EXACTLY the keys the new map
// assigns it — each source's tail is filtered to a disjoint slice, so
// neither bootstrap's delete-reconciliation clobbers the other's tuples.
func TestMemberBootstrapPullsExactlyItsRange(t *testing.T) {
	old := []*registry.Registry{newReg("old0"), newReg("old1")}
	var all []string
	for i := 0; i < 120; i++ {
		link := fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)
		all = append(all, link)
		if _, err := old[Owner(link, 2)].Publish(testTuple(link), time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	srv0, srv1 := feedServer(t, old[0]), feedServer(t, old[1])

	joining := newReg("new2")
	newAsgn := Assignment{Index: 2, Total: 3}
	m := NewMember(joining, newAsgn, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartBootstrap(ctx, []string{srv0.URL, srv1.URL}, 50*time.Millisecond, nil)
	waitFor(t, "bootstrap ready", m.Ready)

	var want []string
	for _, l := range all {
		if newAsgn.Owns(l) {
			want = append(want, l)
		}
	}
	sort.Strings(want)
	waitFor(t, "joining shard to hold its range", func() bool {
		return joining.Len() == len(want)
	})
	got := sortedLinks(joining)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("joining shard link %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Tails are live: a mutation on an old owner inside the range flows in.
	var moving string
	for i := 1000; ; i++ {
		l := fmt.Sprintf("urn:late:%d", i)
		if newAsgn.Owns(l) {
			moving = l
			break
		}
	}
	if _, err := old[Owner(moving, 2)].Publish(testTuple(moving), time.Hour); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live tail to apply the late publish", func() bool {
		_, ok := joining.Get(moving)
		return ok
	})

	// Cutover: the joining shard stops its tails first, then the old
	// owners prune. No key is lost and no key lives on two shards.
	if pruned := m.SetAssignment(newAsgn); pruned != 0 {
		t.Fatalf("cutover on the joining shard pruned %d of its own keys", pruned)
	}
	prunedTotal := 0
	prunedTotal += old[0].PruneLinks(Assignment{Index: 0, Total: 3}.Owns)
	prunedTotal += old[1].PruneLinks(Assignment{Index: 1, Total: 3}.Owns)
	if prunedTotal == 0 {
		t.Fatal("old owners pruned nothing at cutover; keys should have moved")
	}

	counts := make(map[string]int)
	for _, reg := range []*registry.Registry{old[0], old[1], joining} {
		for _, l := range reg.LiveLinks() {
			counts[l]++
		}
	}
	for _, l := range append(append([]string{}, all...), moving) {
		if counts[l] != 1 {
			t.Fatalf("after cutover %q lives on %d shards, want exactly 1", l, counts[l])
		}
	}
	if len(counts) != len(all)+1 {
		t.Fatalf("after cutover %d distinct keys, want %d", len(counts), len(all)+1)
	}
}

// TestRouterCutoverBarrier runs the full N→N+1 through the Router: no
// query observes a tuple twice or not at all across the cutover, and the
// new map serves the same key set.
func TestRouterCutoverBarrier(t *testing.T) {
	const keys = 90
	regs := []*registry.Registry{newReg("shard0"), newReg("shard1")}
	members := []*Member{
		NewMember(regs[0], Assignment{0, 2}, nil, nil),
		NewMember(regs[1], Assignment{1, 2}, nil, nil),
	}
	backends := []Backend{
		&LocalBackend{Label: "shard0", Reg: regs[0], Member: members[0]},
		&LocalBackend{Label: "shard1", Reg: regs[1], Member: members[1]},
	}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	publishVia(t, srv.URL, keys)

	// The joining shard bootstraps its slice from both old owners.
	srv0, srv1 := feedServer(t, regs[0]), feedServer(t, regs[1])
	joinReg := newReg("shard2")
	joinMember := NewMember(joinReg, Assignment{2, 3}, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinMember.StartBootstrap(ctx, []string{srv0.URL, srv1.URL}, 50*time.Millisecond, nil)
	wantJoin := 0
	for i := 0; i < keys; i++ {
		if (Assignment{2, 3}).Owns(fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)) {
			wantJoin++
		}
	}
	waitFor(t, "joining shard bootstrap", func() bool {
		return joinMember.Ready() && joinReg.Len() == wantJoin
	})

	// Queries during the pre-cutover window still see exactly the old map.
	got, sum, _ := streamQuery(t, srv.URL, `/tupleset/tuple[@type="service"]`, "")
	if len(got) != keys || !sum.Complete {
		t.Fatalf("pre-cutover query = %d items complete=%v, want %d complete", len(got), sum.Complete, keys)
	}

	newBackends := append(append([]Backend{}, backends...),
		&LocalBackend{Label: "shard2", Reg: joinReg, Member: joinMember})
	pruned, err := rt.CutoverTo(context.Background(), newBackends)
	if err != nil {
		t.Fatalf("cutover: %v", err)
	}
	if pruned["shard2"] != 0 {
		t.Fatalf("joining shard pruned %d of its own keys", pruned["shard2"])
	}
	if pruned["shard0"]+pruned["shard1"] != wantJoin {
		t.Fatalf("old owners pruned %d keys, want the %d that moved", pruned["shard0"]+pruned["shard1"], wantJoin)
	}

	// Post-cutover: same key set, each key exactly once, served by 3 shards.
	got, sum, hdr := streamQuery(t, srv.URL, `/tupleset/tuple[@type="service"]`, "")
	if len(got) != keys || !sum.Complete {
		t.Fatalf("post-cutover query = %d items complete=%v, want %d complete", len(got), sum.Complete, keys)
	}
	seen := make(map[string]bool)
	for _, l := range got {
		if seen[l] {
			t.Fatalf("post-cutover query observed %q twice", l)
		}
		seen[l] = true
	}
	if sum.NodesContacted != 3 {
		t.Fatalf("post-cutover fan-out = %d, want 3", sum.NodesContacted)
	}
	if hdr.Get(HeaderRoute) != "scatter=3" {
		t.Fatalf("route header = %q", hdr.Get(HeaderRoute))
	}

	// Writes route by the NEW map: a key the joining shard owns lands there.
	var joinLink string
	for i := keys; ; i++ {
		l := fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)
		if (Assignment{2, 3}).Owns(l) {
			joinLink = l
			break
		}
	}
	before := joinReg.Len()
	c := wsda.NewClient(srv.URL)
	if _, err := c.Publish(testTuple(joinLink), time.Hour); err != nil {
		t.Fatalf("post-cutover publish: %v", err)
	}
	if joinReg.Len() != before+1 {
		t.Fatal("post-cutover publish did not land on the joining shard")
	}
}
