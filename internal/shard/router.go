package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// HeaderRoute is the router's response header describing its routing
// decision for a query: "shard=K/N" (a link-equality plan pinned one
// shard), "scatter=N" (fan-out to every shard), or "never" (statically
// empty, no shard contacted).
const HeaderRoute = "X-Wsda-Route"

// Router administration paths.
const (
	// PathRouterStatus answers GET with the partition map as JSON.
	PathRouterStatus = "/router/status"
	// PathRouterCutover answers POST ?peers=urlA,urlB,... by cutting the
	// partition map over to the listed shards under the write barrier.
	PathRouterCutover = "/router/cutover"
)

// Config configures a Router.
type Config struct {
	// Backends is the initial partition map, in shard order: Backends[i]
	// serves Assignment{i, len(Backends)}.
	Backends []Backend
	// Desc is the service description the router presents; nil presents a
	// minimal "wsda-router" service.
	Desc *wsda.Service
	// Metrics, when set, gains the wsda_router_* families.
	Metrics *telemetry.Metrics
	// Flight, when set, records routed-query flight events: the router
	// mints one transaction ID per query, forwards it to every shard, and
	// records the dispatch/merge/shard-error timeline under it.
	Flight *telemetry.FlightRecorder
	// Logger nil discards.
	Logger *slog.Logger
	// Dial builds a Backend for a peer base URL at cutover time; nil uses
	// NewHTTPBackend with a shared client.
	Dial func(base string) Backend
	// HealthTimeout bounds each per-shard health/readiness probe.
	// Defaults to 2s.
	HealthTimeout time.Duration
}

// Router owns no tuples: it accepts the full WSDA HTTP surface, routes
// each write to the shard owning the key, and scatter-gathers queries
// across the shards with a streamed merge. A single RWMutex is the
// rebalance cutover barrier — queries and writes hold it shared for their
// whole duration, a cutover takes it exclusively — so no query ever
// observes a half-installed partition map.
type Router struct {
	cfg    Config
	logger *slog.Logger

	mu       sync.RWMutex // cutover barrier
	backends []Backend

	seq atomic.Int64 // transaction ID mint

	requests    *telemetry.CounterVec
	shardErrors *telemetry.CounterVec
	fanout      *telemetry.CounterVec
	firstItem   *telemetry.Histogram
	cutovers    *telemetry.Counter
}

// NewRouter builds a Router over cfg.Backends.
func NewRouter(cfg Config) *Router {
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.Dial == nil {
		hc := &http.Client{Timeout: 30 * time.Second}
		cfg.Dial = func(base string) Backend { return NewHTTPBackend(base, hc) }
	}
	rt := &Router{cfg: cfg, logger: cfg.Logger, backends: cfg.Backends}
	if m := cfg.Metrics; m != nil {
		rt.requests = m.CounterVec("wsda_router_requests_total",
			"Requests accepted by the router, by path.", "path")
		rt.shardErrors = m.CounterVec("wsda_router_shard_errors_total",
			"Shard calls that failed (transport error or non-2xx), by shard.", "shard")
		rt.fanout = m.CounterVec("wsda_router_fanout_total",
			"Query routing decisions, by route class (single, scatter, never).", "route")
		rt.firstItem = m.HistogramVec(wsda.MetricFirstItemSeconds,
			"Time from request start to the first streamed result item leaving the HTTP edge.",
			nil, "path").With("router")
		rt.cutovers = m.Counter("wsda_router_cutovers_total",
			"Partition-map cutovers performed under the write barrier.")
		m.GaugeFunc("wsda_router_shards",
			"Shards in the router's current partition map.",
			func() float64 { return float64(len(rt.Backends())) })
	}
	return rt
}

// Backends returns the current partition map, in shard order.
func (rt *Router) Backends() []Backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]Backend, len(rt.backends))
	copy(out, rt.backends)
	return out
}

func (rt *Router) mintTx() string {
	return fmt.Sprintf("router#%d", rt.seq.Add(1))
}

// CutoverTo installs a new partition map under the write barrier. With the
// barrier held (no query or write in flight), every backend is told its
// new assignment — backends NOT in the old map first, so a joining shard's
// rebalance tails stop before any old owner prunes the keys it handed off
// (a prune riding the feed into a still-tailing joiner would delete the
// just-moved tuples). Returns per-shard pruned counts. On error the old
// map stays installed; shards already assigned keep the new assignment, so
// the operator retries the cutover rather than unwinding it.
func (rt *Router) CutoverTo(ctx context.Context, backends []Backend) (map[string]int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old := make(map[string]bool, len(rt.backends))
	for _, b := range rt.backends {
		old[b.Name()] = true
	}
	total := len(backends)
	var order []int
	for i, b := range backends {
		if !old[b.Name()] {
			order = append(order, i)
		}
	}
	for i, b := range backends {
		if old[b.Name()] {
			order = append(order, i)
		}
	}
	pruned := make(map[string]int, total)
	for _, i := range order {
		b := backends[i]
		n, err := b.Assign(ctx, Assignment{Index: i, Total: total})
		if err != nil {
			return pruned, fmt.Errorf("shard: cutover: assign %s=%d/%d: %w", b.Name(), i, total, err)
		}
		pruned[b.Name()] = n
	}
	rt.backends = backends
	rt.cutovers.Inc()
	names := make([]string, total)
	for i, b := range backends {
		names[i] = b.Name()
	}
	rt.logger.Info("partition map cutover", "shards", total, "map", strings.Join(names, ","), "pruned", fmt.Sprint(pruned))
	return pruned, nil
}

// Handler exposes the router over HTTP: the full WSDA binding plus
// /netquery (same scatter-gather semantics; network-routing parameters
// are accepted and ignored, the shards ARE the network), aggregate
// /healthz and /readyz, and the /router/* administration endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(wsda.PathPresenter, rt.counted("presenter", rt.handlePresenter))
	mux.HandleFunc(wsda.PathPublish, rt.counted("publish", rt.handlePublish))
	mux.HandleFunc(wsda.PathUnpublish, rt.counted("unpublish", rt.handleUnpublish))
	mux.HandleFunc(wsda.PathMinQuery, rt.counted("minquery", rt.handleMinQuery))
	mux.HandleFunc(wsda.PathXQuery, rt.counted("xquery", rt.handleQuery))
	mux.HandleFunc(wsda.PathNetQuery, rt.counted("netquery", rt.handleQuery))
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleHealth)
	mux.HandleFunc(PathRouterStatus, rt.handleStatus)
	mux.HandleFunc(PathRouterCutover, rt.handleCutoverHTTP)
	return mux
}

func (rt *Router) counted(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.requests.With(path).Inc()
		h(w, r)
	}
}

// backendStatus maps a shard call failure to the status the router
// reports: the error's own status when it carries one (a shard's 421 for
// a stale partition map passes through), 502 Bad Gateway otherwise.
func backendStatus(err error) int {
	var he *wsda.HTTPError
	if errors.As(err, &he) {
		return he.StatusCode
	}
	var sc wsda.StatusCoder
	if errors.As(err, &sc) {
		return sc.HTTPStatus()
	}
	return http.StatusBadGateway
}

func (rt *Router) handlePresenter(w http.ResponseWriter, _ *http.Request) {
	desc := rt.cfg.Desc
	if desc == nil {
		desc = &wsda.Service{Name: "wsda-router"}
	}
	writeXML(w, desc.ToXML())
}

func (rt *Router) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	doc, err := xmldoc.Parse(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "publish" {
		http.Error(w, "expected <publish> element", http.StatusBadRequest)
		return
	}
	var ttl time.Duration
	if s, ok := root.Attr("ttl-ms"); ok {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad ttl-ms", http.StatusBadRequest)
			return
		}
		ttl = time.Duration(ms) * time.Millisecond
	}
	tupleEl := root.FirstChildElement("tuple")
	if tupleEl == nil {
		http.Error(w, "missing <tuple>", http.StatusBadRequest)
		return
	}
	t, err := tuple.FromXML(tupleEl)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	b, status := rt.ownerLocked(t.Link)
	if b == nil {
		http.Error(w, "router has no shards", status)
		return
	}
	granted, err := b.Publish(r.Context(), t, ttl)
	if err != nil {
		rt.shardErrors.With(b.Name()).Inc()
		http.Error(w, err.Error(), backendStatus(err))
		return
	}
	resp := xmldoc.NewElement("granted")
	resp.SetAttr("ttl-ms", strconv.FormatInt(granted.Milliseconds(), 10))
	writeXML(w, resp)
}

func (rt *Router) handleUnpublish(w http.ResponseWriter, r *http.Request) {
	link := r.URL.Query().Get("link")
	if link == "" {
		http.Error(w, "missing link parameter", http.StatusBadRequest)
		return
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	b, status := rt.ownerLocked(link)
	if b == nil {
		http.Error(w, "router has no shards", status)
		return
	}
	if err := b.Unpublish(r.Context(), link); err != nil {
		rt.shardErrors.With(b.Name()).Inc()
		http.Error(w, err.Error(), backendStatus(err))
		return
	}
	writeXML(w, xmldoc.NewElement("ok"))
}

// ownerLocked picks the shard owning link under the (already held) read
// barrier. A nil backend means the map is empty; the int is the status to
// answer with.
func (rt *Router) ownerLocked(link string) (Backend, int) {
	if len(rt.backends) == 0 {
		return nil, http.StatusServiceUnavailable
	}
	return rt.backends[Owner(link, len(rt.backends))], http.StatusOK
}

func (rt *Router) handleMinQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := registry.Filter{
		Type:       q.Get("type"),
		Context:    q.Get("ctx"),
		LinkPrefix: q.Get("prefix"),
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	backends := rt.backends
	type res struct {
		tuples []*tuple.Tuple
		err    error
	}
	results := make([]res, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			tuples, err := b.MinQuery(r.Context(), f)
			results[i] = res{tuples, err}
		}(i, b)
	}
	wg.Wait()
	var merged []*tuple.Tuple
	var shortfalls []string
	for i, rr := range results {
		if rr.err != nil {
			rt.shardErrors.With(backends[i].Name()).Inc()
			shortfalls = append(shortfalls, fmt.Sprintf("%s: %v", backends[i].Name(), rr.err))
			continue
		}
		merged = append(merged, rr.tuples...)
	}
	if len(backends) > 0 && len(shortfalls) == len(backends) {
		http.Error(w, "all shards failed: "+strings.Join(shortfalls, "; "), http.StatusBadGateway)
		return
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Link < merged[j].Link })
	root := xmldoc.NewElement("tupleset")
	if len(shortfalls) > 0 {
		root.SetAttr("complete", "false")
		root.SetAttr("shortfall", strings.Join(shortfalls, "; "))
	}
	for _, t := range merged {
		root.AppendChild(t.ToXML())
	}
	writeXML(w, root)
}

// handleQuery is the scatter-gather core behind both /wsda/xquery and
// /netquery. The compiled query's discovery plan picks the route (one
// shard, all shards, or none); targets are queried concurrently with the
// router's transaction ID, their streams merged item-by-item into the
// response as they arrive, and the trailing summary aggregates
// completeness, per-shard shortfall, and fan-out accounting. max-results
// and a client disconnect cancel the whole fan-out; one dead shard does
// not fail the response — it is named in the summary's shortfall with
// complete="false".
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, wsda.MaxQueryBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > wsda.MaxQueryBytes {
		http.Error(w, fmt.Sprintf("query exceeds %d bytes", wsda.MaxQueryBytes), http.StatusRequestEntityTooLarge)
		return
	}
	q := r.URL.Query()
	spec := QuerySpec{
		Query: string(body),
		Filter: registry.Filter{
			Type:       q.Get("type"),
			Context:    q.Get("ctx"),
			LinkPrefix: q.Get("prefix"),
		},
	}
	if s := q.Get("maxage-ms"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad maxage-ms", http.StatusBadRequest)
			return
		}
		spec.Freshness.MaxAge = time.Duration(ms) * time.Millisecond
	}
	if q.Get("pull-missing") == "true" {
		spec.Freshness.PullMissing = true
	}
	maxResults := 0
	if s := q.Get("max-results"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad max-results", http.StatusBadRequest)
			return
		}
		maxResults = v
	}
	spec.MaxResults = maxResults
	compiled, err := xq.Compile(spec.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	tx := q.Get("tx")
	if tx == "" {
		tx = rt.mintTx()
	}
	spec.TxID = tx
	fr := rt.cfg.Flight
	streamed := q.Get("stream") == "true"

	// The read barrier is held for the whole scatter-gather: a cutover
	// waits for every in-flight query, so no query spans two partition
	// maps (which could observe a moving tuple twice, or miss it).
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	backends := rt.backends
	route := RouteQuery(compiled, spec.Filter.LinkPrefix, len(backends))
	var targets []Backend
	switch {
	case len(backends) == 0:
		http.Error(w, "router has no shards", http.StatusServiceUnavailable)
		return
	case route.Never:
		rt.fanout.With("never").Inc()
	case route.Single:
		targets = backends[route.Shard : route.Shard+1]
		rt.fanout.With("single").Inc()
	default:
		targets = backends
		rt.fanout.With("scatter").Inc()
	}
	routeNote := route.Note(len(backends))
	w.Header().Set(HeaderRoute, routeNote)
	fr.Record(tx, telemetry.FlightReceived, "router", "", 1, strings.TrimPrefix(r.URL.Path, "/"))
	for _, b := range targets {
		fr.Record(tx, telemetry.FlightRouted, "router", b.Name(), 1, routeNote)
	}

	start := time.Now()
	var sw *wsda.StreamWriter
	if streamed {
		sw = wsda.NewStreamWriter(w)
		sw.SetFlight(fr, tx)
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// One mutex serializes the merge: item writes, the plan header (only
	// before the response commits), and the truncation decision.
	var mu sync.Mutex
	var collected xq.Sequence
	var firstAt time.Duration
	count := 0
	truncated := false
	planSet := false
	onPlan := func(plan string) {
		mu.Lock()
		defer mu.Unlock()
		if planSet || plan == "" || (sw != nil && sw.Started()) {
			return
		}
		w.Header().Set(wsda.HeaderPlan, plan)
		planSet = true
	}
	deliver := func(it xq.Item) bool {
		mu.Lock()
		defer mu.Unlock()
		if truncated || ctx.Err() != nil {
			return false
		}
		if count == 0 {
			firstAt = time.Since(start)
		}
		if sw != nil {
			if count == 0 {
				rt.firstItem.ObserveSince(start)
			}
			if sw.WriteItem(it) != nil {
				truncated = true
				cancel()
				return false
			}
		} else {
			collected = append(collected, it)
		}
		count++
		if maxResults > 0 && count >= maxResults {
			truncated = true
			cancel()
			return false
		}
		return true
	}

	type shardResult struct {
		sum *wsda.StreamSummary
		err error
	}
	results := make([]shardResult, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			sum, err := b.QueryStream(ctx, spec, onPlan, deliver)
			results[i] = shardResult{sum, err}
		}(i, b)
	}
	wg.Wait()

	mu.Lock() // the merge is over; lock for a consistent read of its state
	wasTruncated := truncated
	items := count
	first := firstAt
	mu.Unlock()

	responded := 0
	complete := true
	aborted := false
	var shortfalls []string
	for i, res := range results {
		if res.err != nil {
			if wasTruncated || r.Context().Err() != nil {
				// The router canceled the fan-out itself (max-results hit or
				// client gone); the resulting errors are not shard failures.
				continue
			}
			rt.shardErrors.With(targets[i].Name()).Inc()
			fr.Record(tx, telemetry.FlightShardError, "router", targets[i].Name(), 1, res.err.Error())
			rt.logger.Warn("shard failed mid-query", "shard", targets[i].Name(), "tx", tx, "err", res.err)
			shortfalls = append(shortfalls, fmt.Sprintf("%s: %v", targets[i].Name(), res.err))
			complete = false
			continue
		}
		responded++
		if res.sum != nil {
			if !res.sum.Complete {
				complete = false
			}
			if res.sum.Aborted {
				aborted = true
			}
		}
	}
	shortfall := strings.Join(shortfalls, "; ")
	elapsed := time.Since(start)
	finish := func(sumComplete bool) {
		fr.Finish(tx, telemetry.FlightSummary{
			FirstItem: first, Elapsed: elapsed, Items: items,
			Complete: sumComplete, Aborted: aborted,
			NodesContacted: len(targets), NodesResponded: responded,
			Err: shortfall,
		})
	}

	if len(targets) > 0 && responded == 0 && items == 0 && !wasTruncated && (sw == nil || !sw.Started()) {
		// Every shard failed before anything streamed: this is a gateway
		// failure, not a partial answer.
		finish(false)
		http.Error(w, "all shards failed: "+shortfall, http.StatusBadGateway)
		return
	}

	sumComplete := complete && !wasTruncated
	if sw != nil {
		_ = sw.Close(wsda.StreamSummary{
			TxID: tx, Complete: sumComplete, Aborted: aborted, Elapsed: elapsed,
			Network: true, NodesContacted: len(targets), NodesResponded: responded,
			Shortfall: shortfall,
		})
		finish(sumComplete)
		return
	}
	res := wsda.MarshalSequence(collected)
	res.SetAttr("tx", tx)
	res.SetAttr("elapsed-ms", strconv.FormatInt(elapsed.Milliseconds(), 10))
	res.SetAttr("aborted", strconv.FormatBool(aborted))
	res.SetAttr("nodes-contacted", strconv.Itoa(len(targets)))
	res.SetAttr("nodes-responded", strconv.Itoa(responded))
	res.SetAttr("complete", strconv.FormatBool(sumComplete))
	if shortfall != "" {
		res.SetAttr("shortfall", shortfall)
	}
	writeXML(w, res)
	finish(sumComplete)
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	backends := rt.Backends()
	shards := make([]map[string]any, len(backends))
	for i, b := range backends {
		shards[i] = map[string]any{"shard": b.Name(), "index": i}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"total": len(backends), "shards": shards})
}

func (rt *Router) handleCutoverHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	peersParam := r.URL.Query().Get("peers")
	if peersParam == "" {
		http.Error(w, "missing peers parameter (comma-separated shard base URLs in new shard order)", http.StatusBadRequest)
		return
	}
	var backends []Backend
	existing := make(map[string]Backend)
	for _, b := range rt.Backends() {
		existing[b.Name()] = b
	}
	for _, p := range strings.Split(peersParam, ",") {
		p = strings.TrimSpace(strings.TrimSuffix(p, "/"))
		if p == "" {
			continue
		}
		if b, ok := existing[p]; ok {
			backends = append(backends, b) // keep the live connection pool
		} else {
			backends = append(backends, rt.cfg.Dial(p))
		}
	}
	if len(backends) == 0 {
		http.Error(w, "peers parameter names no shards", http.StatusBadRequest)
		return
	}
	pruned, err := rt.CutoverTo(r.Context(), backends)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"total": len(backends), "pruned": pruned})
}

func writeXML(w http.ResponseWriter, n *xmldoc.Node) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, n.String())
}
