package shard

import (
	"fmt"
	"testing"

	"wsda/internal/xq"
)

func TestOwnerDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := 0; i < 200; i++ {
			link := fmt.Sprintf("http://host%d.example.org/svc/wsda/presenter", i)
			a, b := Owner(link, n), Owner(link, n)
			if a != b {
				t.Fatalf("Owner not deterministic for %q/%d: %d vs %d", link, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("Owner(%q, %d) = %d out of range", link, n, a)
			}
		}
	}
	if Owner("anything", 0) != 0 || Owner("anything", 1) != 0 {
		t.Fatal("degenerate totals must map to shard 0")
	}
}

func TestOwnerDistribution(t *testing.T) {
	const n, links = 8, 8000
	counts := make([]int, n)
	for i := 0; i < links; i++ {
		counts[Owner(fmt.Sprintf("http://node-%04d.cern.ch/wsda", i), n)]++
	}
	// FNV-1a over distinct URLs should land within a loose factor of the
	// mean; a pathological split here would break the scale-out claim.
	mean := links / n
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d holds %d of %d links (mean %d): unbalanced hash", s, c, links, mean)
		}
	}
}

// TestOwnerMinimalMovement pins the rendezvous-hashing property the
// rebalance protocol depends on: growing N→N+1 moves keys ONLY onto the
// new shard, never between two old shards — so a joining shard can
// bootstrap its slice from the old owners and the old owners can prune
// that same slice, with no other key touched.
func TestOwnerMinimalMovement(t *testing.T) {
	for n := 1; n <= 8; n++ {
		moved := 0
		for i := 0; i < 2000; i++ {
			link := fmt.Sprintf("http://node-%05d.example.org/wsda", i)
			before, after := Owner(link, n), Owner(link, n+1)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("growing %d→%d moved %q between old shards %d→%d", n, n+1, link, before, after)
				}
			}
		}
		if moved == 0 {
			t.Fatalf("growing %d→%d moved no keys; the new shard would stay empty", n, n+1)
		}
	}
}

func TestParseAssignment(t *testing.T) {
	a, err := ParseAssignment("2/4")
	if err != nil || a.Index != 2 || a.Total != 4 {
		t.Fatalf("ParseAssignment(2/4) = %+v, %v", a, err)
	}
	if a.String() != "2/4" {
		t.Fatalf("String() = %q", a.String())
	}
	for _, bad := range []string{"", "4/4", "-1/4", "1/0", "x/y", "3"} {
		if _, err := ParseAssignment(bad); err == nil {
			t.Fatalf("ParseAssignment(%q) accepted", bad)
		}
	}
}

func TestAssignmentOwnsPartitions(t *testing.T) {
	asgns := []Assignment{{0, 3}, {1, 3}, {2, 3}}
	for i := 0; i < 500; i++ {
		link := fmt.Sprintf("urn:svc:%d", i)
		owners := 0
		for _, a := range asgns {
			if a.Owns(link) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("link %q owned by %d shards, want exactly 1", link, owners)
		}
	}
	var unsharded Assignment
	if !unsharded.Owns("anything") || unsharded.Sharded() {
		t.Fatal("zero-value assignment must own everything")
	}
}

func TestNotOwnedErrorStatus(t *testing.T) {
	err := &NotOwnedError{Link: "urn:x", Assignment: Assignment{1, 4}, OwnedBy: 3}
	if err.HTTPStatus() != 421 {
		t.Fatalf("HTTPStatus = %d, want 421", err.HTTPStatus())
	}
	if err.Error() == "" {
		t.Fatal("empty error text")
	}
}

func compile(t *testing.T, src string) *xq.Query {
	t.Helper()
	q, err := xq.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return q
}

func TestRouteQuery(t *testing.T) {
	const total = 4
	link := "http://cern.ch/replica-catalog-0000/wsda/presenter"

	// Link equality pins the owning shard.
	rt := RouteQuery(compile(t, fmt.Sprintf(`/tupleset/tuple[@link=%q]`, link)), "", total)
	if !rt.Single || rt.Shard != Owner(link, total) || rt.Never {
		t.Fatalf("link-equality route = %+v", rt)
	}
	if rt.Note(total) != fmt.Sprintf("shard=%d/%d", rt.Shard, total) {
		t.Fatalf("Note = %q", rt.Note(total))
	}

	// A type equality scatters: every shard indexes type locally.
	rt = RouteQuery(compile(t, `/tupleset/tuple[@type="service"]`), "", total)
	if rt.Single || rt.Never {
		t.Fatalf("type-equality route = %+v, want scatter", rt)
	}
	if rt.Note(total) != "scatter=4" {
		t.Fatalf("Note = %q", rt.Note(total))
	}

	// A statically contradictory plan contacts nobody.
	rt = RouteQuery(compile(t, `/tupleset/tuple[@type="a"][@type="b"]`), "", total)
	if !rt.Never {
		t.Fatalf("contradictory route = %+v, want Never", rt)
	}

	// A link equality outside the request's link-prefix filter is also
	// statically empty.
	rt = RouteQuery(compile(t, fmt.Sprintf(`/tupleset/tuple[@link=%q]`, link)), "urn:other:", total)
	if !rt.Never {
		t.Fatalf("prefix-contradicted route = %+v, want Never", rt)
	}

	// Unplannable queries scatter.
	rt = RouteQuery(compile(t, `for $d in distinct-values(/tupleset/tuple/@type) return $d`), "", total)
	if rt.Single || rt.Never {
		t.Fatalf("unplannable route = %+v, want scatter", rt)
	}
}
