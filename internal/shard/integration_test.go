package shard

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// startHTTP binds addr (ephemeral when empty) and serves h, retrying the
// bind briefly so a just-killed address can be reclaimed — the restart
// half of the kill/restart scenario.
func startHTTP(t *testing.T, addr string, h http.Handler) (string, func()) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), func() { srv.Close() }
}

// startShardServer serves a full shard surface for reg: the WSDA binding
// behind the member guard, shard admin, and health endpoints.
func startShardServer(t *testing.T, addr string, reg *registry.Registry, m *Member, wrap func(http.Handler) http.Handler) (string, func()) {
	t.Helper()
	mux := http.NewServeMux()
	node := m.Guard(&wsda.LocalNode{Desc: &wsda.Service{Name: reg.Name()}, Registry: reg})
	mux.Handle("/wsda/", wsda.Handler(node))
	m.Mount(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !m.Ready() {
			http.Error(w, "bootstrapping", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	return startHTTP(t, addr, h)
}

// stallGate lets shard B answer everything EXCEPT /wsda/xquery, which
// signals arrival and then blocks until released — pinning the routed
// query mid-flight so the kill deterministically lands mid-stream.
type stallGate struct {
	inner   http.Handler
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *stallGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, wsda.PathXQuery) {
		g.once.Do(func() { close(g.started) })
		<-g.release
		return
	}
	g.inner.ServeHTTP(w, r)
}

// TestShardKillRestartMidStreamedQuery is the end-to-end failure
// scenario the sharded deployment must survive: one shard dies while a
// scatter-gathered streamed query is in flight and concurrent
// republishes are hitting the router. The merged stream must stay
// byte-valid XML, the summary must report the shortfall with
// complete="false", and after the shard restarts (empty — soft state) the
// republish traffic must reconverge it to exactly its key range, with a
// final routed query matching the union of direct per-shard minqueries.
func TestShardKillRestartMidStreamedQuery(t *testing.T) {
	const keys = 80
	const n = 2
	regs := []*registry.Registry{newReg("s0"), newReg("s1")}
	members := []*Member{
		NewMember(regs[0], Assignment{0, n}, nil, nil),
		NewMember(regs[1], Assignment{1, n}, nil, nil),
	}
	addr0, _ := startShardServer(t, "", regs[0], members[0], nil)
	gate := &stallGate{started: make(chan struct{}), release: make(chan struct{})}
	t.Cleanup(func() {
		gate.once.Do(func() { close(gate.started) })
		close(gate.release)
	})
	addr1, kill1 := startShardServer(t, "", regs[1], members[1], func(h http.Handler) http.Handler {
		gate.inner = h
		return gate
	})

	rt := NewRouter(Config{Backends: []Backend{
		NewHTTPBackend("http://"+addr0, nil),
		NewHTTPBackend("http://"+addr1, nil),
	}})
	routerAddr, _ := startHTTP(t, "", rt.Handler())
	routerURL := "http://" + routerAddr

	links := make([]string, keys)
	c := wsda.NewClient(routerURL)
	for i := range links {
		links[i] = fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)
		if _, err := c.Publish(testTuple(links[i]), time.Hour); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	shard1Keys := 0
	for _, l := range links {
		if Owner(l, n) == 1 {
			shard1Keys++
		}
	}

	// Concurrent republishers: soft-state refresh traffic through the
	// router for the whole scenario. Failures against the dead shard are
	// expected and tolerated; the loop is what reconverges the restarted
	// shard.
	stopRepub := make(chan struct{})
	var repubWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		repubWG.Add(1)
		go func(w int) {
			defer repubWG.Done()
			rc := wsda.NewClient(routerURL)
			for i := w; ; i = (i + 4) % keys {
				select {
				case <-stopRepub:
					return
				default:
				}
				_, _ = rc.Publish(testTuple(links[i]), time.Hour)
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	defer func() { close(stopRepub); repubWG.Wait() }()

	// Launch the streamed scatter query; shard 1 stalls it mid-flight.
	type queryOut struct {
		items []string
		sum   *wsda.StreamSummary
		err   error
	}
	out := make(chan queryOut, 1)
	go func() {
		resp, err := http.Post(routerURL+wsda.PathXQuery+"?stream=true", "text/xml",
			strings.NewReader(`/tupleset/tuple[@type="service"]`))
		if err != nil {
			out <- queryOut{err: err}
			return
		}
		defer resp.Body.Close()
		var items []string
		sum, err := wsda.DecodeStream(resp.Body, func(it xq.Item) bool {
			if node, ok := it.(*xmldoc.Node); ok {
				if l, ok := node.Attr("link"); ok {
					items = append(items, l)
				}
			}
			return true
		})
		out <- queryOut{items: items, sum: sum, err: err}
	}()

	// Kill shard 1 exactly while it holds the routed query open.
	<-gate.started
	kill1()

	res := <-out
	if res.err != nil {
		t.Fatalf("merged stream was not byte-valid after shard kill: %v", res.err)
	}
	if res.sum.Complete {
		t.Fatal("summary must report complete=false after losing a shard mid-query")
	}
	if !strings.Contains(res.sum.Shortfall, addr1) {
		t.Fatalf("shortfall %q does not name the dead shard %s", res.sum.Shortfall, addr1)
	}
	if res.sum.NodesResponded != 1 || res.sum.NodesContacted != 2 {
		t.Fatalf("fan-out accounting = %d/%d, want 1/2", res.sum.NodesResponded, res.sum.NodesContacted)
	}

	// Router health reflects the dead shard with a per-shard body.
	resp, err := http.Get(routerURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead shard = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Restart shard 1 on the SAME address with a FRESH registry: an
	// in-memory soft-state store comes back empty, and the republish
	// traffic must rebuild exactly its key range.
	freshReg := newReg("s1-restarted")
	freshMember := NewMember(freshReg, Assignment{1, n}, nil, nil)
	startShardServer(t, addr1, freshReg, freshMember, nil)

	waitFor(t, "router health to recover", func() bool {
		resp, err := http.Get(routerURL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	waitFor(t, "republishes to reconverge the restarted shard", func() bool {
		return freshReg.Len() == shard1Keys
	})

	// Exactness: the routed scatter result equals the union of direct
	// per-shard minqueries, which equals the original key set.
	finalItems, finalSum, _ := streamQuery(t, routerURL, `/tupleset/tuple[@type="service"]`, "")
	if !finalSum.Complete {
		t.Fatalf("post-restart query incomplete: %+v", finalSum)
	}
	sort.Strings(finalItems)
	var direct []string
	for _, base := range []string{"http://" + addr0, "http://" + addr1} {
		tuples, err := wsda.NewClient(base).MinQuery(registry.Filter{Type: "service"})
		if err != nil {
			t.Fatalf("direct minquery %s: %v", base, err)
		}
		for _, tp := range tuples {
			direct = append(direct, tp.Link)
		}
	}
	sort.Strings(direct)
	want := append([]string{}, links...)
	sort.Strings(want)
	if strings.Join(finalItems, "\n") != strings.Join(want, "\n") {
		t.Fatalf("routed result diverged from the published set:\n got %d items\nwant %d items", len(finalItems), len(want))
	}
	if strings.Join(direct, "\n") != strings.Join(want, "\n") {
		t.Fatalf("union of direct shard minqueries diverged from the published set: %d vs %d items", len(direct), len(want))
	}
}
