package shard

import (
	"fmt"
	"net/http"
	"strings"

	"wsda/internal/xq"
)

// FNV-1a and splitmix64 constants for the partition function.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 is the splitmix64 finalizer: it turns the link hash combined with
// a shard index into an independent, well-distributed weight.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns which of total shards owns the given content link, by
// rendezvous (highest-random-weight) hashing: the link's FNV-1a hash is
// mixed with each shard index and the highest weight wins. Every router
// and every shard computes the same function, so write routing needs no
// coordination and a link-equality query pins its shard statically.
//
// Rendezvous hashing (not hash-mod-N) is what makes the change-feed
// rebalance exact: a link's owner changes only when a NEW shard wins its
// maximum, so growing N→N+1 relocates only the ~1/(N+1) of the key space
// the joining shard wins and never moves a key between two old shards.
// The joining shard bootstraps exactly its slice from the old owners, the
// old owners prune exactly that slice at cutover, and no other key is
// touched.
func Owner(link string, total int) int {
	if total <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(link); i++ {
		h ^= uint64(link[i])
		h *= fnvPrime64
	}
	best, bestW := 0, mix64(h)
	for i := 1; i < total; i++ {
		if w := mix64(h + uint64(i)*0x9e3779b97f4a7c15); w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// Assignment is one shard's slice of the partitioned tuple space: shard
// Index out of Total. The zero value (0/0) means "unsharded": it owns
// everything.
type Assignment struct {
	Index int // this shard's index, 0-based
	Total int // total shards in the partition map; 0 = unsharded
}

// ParseAssignment parses the -shard-of flag form "K/N" (e.g. "2/4") into
// an Assignment, validating 0 <= K < N.
func ParseAssignment(s string) (Assignment, error) {
	var a Assignment
	if _, err := fmt.Sscanf(s, "%d/%d", &a.Index, &a.Total); err != nil {
		return a, fmt.Errorf("shard: bad assignment %q, want K/N: %v", s, err)
	}
	if a.Total < 1 || a.Index < 0 || a.Index >= a.Total {
		return a, fmt.Errorf("shard: assignment %q out of range, want 0 <= K < N", s)
	}
	return a, nil
}

// Sharded reports whether the assignment actually partitions anything
// (the zero value owns the whole space).
func (a Assignment) Sharded() bool { return a.Total > 0 }

// Owns reports whether this assignment's shard owns the link.
func (a Assignment) Owns(link string) bool {
	return !a.Sharded() || Owner(link, a.Total) == a.Index
}

// String renders the K/N flag form.
func (a Assignment) String() string { return fmt.Sprintf("%d/%d", a.Index, a.Total) }

// NotOwnedError is a publish or unpublish addressed to a shard that does
// not own the key — the caller consulted a stale partition map (or none).
// It maps to HTTP 421 Misdirected Request: a definitive rejection, never
// retried against the same shard.
type NotOwnedError struct {
	Link       string     // the misdirected key
	Assignment Assignment // the shard's current slice
	OwnedBy    int        // the shard that does own it
}

// Error formats the misrouting with both sides of the disagreement.
func (e *NotOwnedError) Error() string {
	return fmt.Sprintf("shard %s does not own %q (owner is shard %d)",
		e.Assignment, e.Link, e.OwnedBy)
}

// HTTPStatus implements wsda.StatusCoder: 421 Misdirected Request.
func (e *NotOwnedError) HTTPStatus() int { return http.StatusMisdirectedRequest }

// Route describes where one query must go: a single owning shard (a
// link-equality plan), nowhere (a statically empty plan), or everywhere.
type Route struct {
	Single bool // exactly one shard can hold matches
	Shard  int  // the owning shard when Single
	Never  bool // statically empty: no shard needs contacting
}

// Note renders the route for the X-Wsda-Route header and flight events.
func (rt Route) Note(total int) string {
	switch {
	case rt.Never:
		return "never"
	case rt.Single:
		return fmt.Sprintf("shard=%d/%d", rt.Shard, total)
	default:
		return fmt.Sprintf("scatter=%d", total)
	}
}

// RouteQuery computes the index-aware fan-out hint for a compiled query
// against total shards: a discovery plan with a link equality pins the
// owning shard (the partition function is the link hash), a statically
// contradictory plan needs no shard at all, and everything else — type/ctx
// equalities included, since every shard indexes those locally — scatters.
// A link-prefix filter cannot pin a shard (hashing destroys prefix
// locality), so it scatters too.
func RouteQuery(q *xq.Query, linkPrefix string, total int) Route {
	p, ok := q.DiscoveryPlan()
	if !ok || p == nil {
		return Route{}
	}
	if p.Never {
		return Route{Never: true}
	}
	link, ok := p.AttrEq["link"]
	if !ok {
		return Route{}
	}
	if linkPrefix != "" && !strings.HasPrefix(link, linkPrefix) {
		return Route{Never: true}
	}
	return Route{Single: true, Shard: Owner(link, total)}
}
