package shard

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
)

// ErrBootstrapping is what a shard's readiness probe returns while its
// rebalance bootstrap is still pulling the key range from the old owners:
// the shard is alive but cannot yet answer for its whole slice.
var ErrBootstrapping = errors.New("shard: bootstrapping")

// ShardHealth is one shard's row in the router's aggregate health report
// (the JSON body of /healthz and /readyz).
type ShardHealth struct {
	Shard  string `json:"shard"`           // backend name (base URL for HTTP shards)
	Index  int    `json:"index"`           // position in the partition map
	Status string `json:"status"`          // "ok", "bootstrapping" or "unreachable"
	Error  string `json:"error,omitempty"` // probe error for non-ok shards
}

// classifyProbe folds a probe error into the health report status: a 503
// (or ErrBootstrapping from an in-process shard) means the shard is alive
// but still bootstrapping its key range; anything else means it is
// unreachable.
func classifyProbe(err error) string {
	if err == nil {
		return "ok"
	}
	if errors.Is(err, ErrBootstrapping) {
		return "bootstrapping"
	}
	if backendStatus(err) == http.StatusServiceUnavailable {
		return "bootstrapping"
	}
	return "unreachable"
}

// CheckShards probes every shard in the current partition map in
// parallel — liveness probes for ready=false, readiness probes for
// ready=true — each bounded by the configured health timeout. It reports
// whether every shard is ok, plus the per-shard rows.
func (rt *Router) CheckShards(ctx context.Context, ready bool) (bool, []ShardHealth) {
	backends := rt.Backends()
	rows := make([]ShardHealth, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
			defer cancel()
			var err error
			if ready {
				err = b.Ready(pctx)
			} else {
				err = b.Healthy(pctx)
			}
			row := ShardHealth{Shard: b.Name(), Index: i, Status: classifyProbe(err)}
			if err != nil {
				row.Error = err.Error()
			}
			rows[i] = row
		}(i, b)
	}
	wg.Wait()
	ok := true
	for _, row := range rows {
		if row.Status != "ok" {
			ok = false
		}
	}
	return ok, rows
}

// handleHealth serves the router's aggregate /healthz and /readyz: 200
// with the per-shard report when every shard passes its probe, 503 with
// the same JSON body — naming each failing shard and whether it is
// bootstrapping or unreachable — when any does not. A router with an
// empty partition map is not healthy: it can serve nothing.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	ready := r.URL.Path == "/readyz"
	ok, rows := rt.CheckShards(r.Context(), ready)
	if len(rows) == 0 {
		ok = false
	}
	status := "ok"
	code := http.StatusOK
	if !ok {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"status": status, "shards": rows})
}
