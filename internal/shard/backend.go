package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xq"
)

// QuerySpec is one query as the router forwards it to a shard: the query
// source plus the wire-crossing options and the router-minted transaction
// ID that threads the shard's flight events into the routed recording.
type QuerySpec struct {
	Query      string             // XQuery source
	Filter     registry.Filter    // attribute pre-filter
	Freshness  registry.Freshness // content freshness bounds
	MaxResults int                // per-shard item bound; 0 = unlimited
	TxID       string             // router-minted transaction ID ("" = none)
}

// Backend is one shard as the router sees it: the WSDA write and query
// primitives plus health and partition-map administration. HTTPBackend
// talks to a registryd across the network; LocalBackend wraps an
// in-process registry for tests and experiments, where an HTTP hop per
// operation would measure the transport instead of the sharding.
type Backend interface {
	// Name identifies the shard in metrics, flight events and shortfall
	// text (the base URL for HTTP backends).
	Name() string
	// Publish inserts or refreshes a tuple on the shard.
	Publish(ctx context.Context, t *tuple.Tuple, ttl time.Duration) (time.Duration, error)
	// Unpublish removes a tuple from the shard.
	Unpublish(ctx context.Context, link string) error
	// MinQuery runs the minimal query primitive on the shard.
	MinQuery(ctx context.Context, f registry.Filter) ([]*tuple.Tuple, error)
	// QueryStream evaluates spec on the shard, streaming items through
	// onItem as they are produced; onPlan delivers the shard's query plan
	// (X-Wsda-Plan form) before the first item. Canceling ctx stops the
	// shard-side evaluation. onItem returning false stops delivery.
	QueryStream(ctx context.Context, spec QuerySpec, onPlan func(plan string), onItem func(it xq.Item) bool) (*wsda.StreamSummary, error)
	// Healthy reports liveness (nil = the shard process answers).
	Healthy(ctx context.Context) error
	// Ready reports readiness to serve reads; a shard still bootstrapping
	// its key range returns an error carrying HTTP 503.
	Ready(ctx context.Context) error
	// Assign installs a new partition assignment on the shard (stopping
	// any rebalance tailers and pruning keys outside the new range) and
	// returns how many tuples the shard pruned.
	Assign(ctx context.Context, a Assignment) (pruned int, err error)
}

// LocalBackend adapts an in-process registry (optionally fronted by a
// Member guard) to the Backend interface. It is what the scale-out
// experiments and unit tests run against: all routing and merge logic is
// exercised, none of the HTTP transport.
type LocalBackend struct {
	Label  string             // shard name for accounting
	Reg    *registry.Registry // the shard's tuple store
	Member *Member            // optional guard/rebalance state
	// ReadyErr, when non-nil, is returned by Ready — a test hook for
	// simulating a bootstrapping or unreachable shard.
	ReadyErr error
}

var _ Backend = (*LocalBackend)(nil)

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.Label }

// Publish implements Backend; with a Member attached, out-of-range keys
// are rejected exactly as the HTTP guard would.
func (b *LocalBackend) Publish(_ context.Context, t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	if b.Member != nil {
		if err := b.Member.CheckOwns(t.Link); err != nil {
			return 0, err
		}
	}
	return b.Reg.Publish(t, ttl)
}

// Unpublish implements Backend.
func (b *LocalBackend) Unpublish(_ context.Context, link string) error {
	if b.Member != nil {
		if err := b.Member.CheckOwns(link); err != nil {
			return err
		}
	}
	b.Reg.Unpublish(link)
	return nil
}

// MinQuery implements Backend.
func (b *LocalBackend) MinQuery(_ context.Context, f registry.Filter) ([]*tuple.Tuple, error) {
	return b.Reg.MinQuery(f), nil
}

// QueryStream implements Backend by evaluating on the local registry with
// Emit delivery, honoring ctx cancellation between items.
func (b *LocalBackend) QueryStream(ctx context.Context, spec QuerySpec, onPlan func(string), onItem func(xq.Item) bool) (*wsda.StreamSummary, error) {
	start := time.Now()
	var plan registry.PlanInfo
	opts := registry.QueryOptions{
		Filter:    spec.Filter,
		Freshness: spec.Freshness,
		TxID:      spec.TxID,
		Explain:   &plan,
	}
	count := 0
	truncated := false
	deliver := func(it xq.Item) bool {
		if ctx.Err() != nil {
			truncated = true
			return false
		}
		if count == 0 && onPlan != nil {
			onPlan(plan.String())
		}
		if !onItem(it) {
			truncated = true
			return false
		}
		count++
		if spec.MaxResults > 0 && count >= spec.MaxResults {
			truncated = true
			return false
		}
		return true
	}
	opts.Emit = deliver
	seq, err := b.Reg.Query(spec.Query, opts)
	if err != nil {
		return nil, err
	}
	// The registry honors Emit, but keep the buffered fallback the HTTP
	// binding has, for engines that return the sequence instead.
	if count == 0 && len(seq) > 0 {
		for _, it := range seq {
			if !deliver(it) {
				break
			}
		}
	}
	return &wsda.StreamSummary{
		Count:    count,
		Complete: !truncated,
		Elapsed:  time.Since(start),
		Plan:     plan.String(),
	}, nil
}

// Healthy implements Backend: an in-process registry is always live.
func (b *LocalBackend) Healthy(context.Context) error { return nil }

// Ready implements Backend: ready unless a test hook or an attached
// Member's unfinished bootstrap says otherwise.
func (b *LocalBackend) Ready(context.Context) error {
	if b.ReadyErr != nil {
		return b.ReadyErr
	}
	if b.Member != nil && !b.Member.Ready() {
		return fmt.Errorf("shard %s: %w", b.Label, ErrBootstrapping)
	}
	return nil
}

// Assign implements Backend.
func (b *LocalBackend) Assign(_ context.Context, a Assignment) (int, error) {
	if b.Member != nil {
		return b.Member.SetAssignment(a), nil
	}
	return b.Reg.PruneLinks(a.Owns), nil
}

// HTTPBackend is a shard reached over the WSDA HTTP binding — the shape
// routerd deploys against real registryd shards.
type HTTPBackend struct {
	base   string
	client *wsda.Client
	hc     *http.Client
}

var _ Backend = (*HTTPBackend)(nil)

// NewHTTPBackend returns a backend for the shard at base (scheme://host:
// port). hc is shared across backends so the router reuses keep-alive
// connections per shard; nil uses a client with a generous default
// timeout for writes and health probes (streamed queries carry their own
// cancellation via ctx).
func NewHTTPBackend(base string, hc *http.Client) *HTTPBackend {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	base = strings.TrimSuffix(base, "/")
	return &HTTPBackend{
		base:   base,
		client: &wsda.Client{BaseURL: base, HTTP: hc},
		hc:     hc,
	}
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.base }

// Publish implements Backend.
func (b *HTTPBackend) Publish(_ context.Context, t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	return b.client.Publish(t, ttl)
}

// Unpublish implements Backend.
func (b *HTTPBackend) Unpublish(_ context.Context, link string) error {
	return b.client.Unpublish(link)
}

// MinQuery implements Backend.
func (b *HTTPBackend) MinQuery(_ context.Context, f registry.Filter) ([]*tuple.Tuple, error) {
	return b.client.MinQuery(f)
}

// QueryStream implements Backend: POST /wsda/xquery?stream=true with the
// spec's parameters, decoding the chunked response incrementally. The
// request rides ctx, so a router-side cancel (max-results reached, client
// gone) tears the shard's evaluation down mid-stream.
func (b *HTTPBackend) QueryStream(ctx context.Context, spec QuerySpec, onPlan func(string), onItem func(xq.Item) bool) (*wsda.StreamSummary, error) {
	q := url.Values{}
	if spec.Filter.Type != "" {
		q.Set("type", spec.Filter.Type)
	}
	if spec.Filter.Context != "" {
		q.Set("ctx", spec.Filter.Context)
	}
	if spec.Filter.LinkPrefix != "" {
		q.Set("prefix", spec.Filter.LinkPrefix)
	}
	if spec.Freshness.MaxAge > 0 {
		q.Set("maxage-ms", strconv.FormatInt(spec.Freshness.MaxAge.Milliseconds(), 10))
	}
	if spec.Freshness.PullMissing {
		q.Set("pull-missing", "true")
	}
	if spec.TxID != "" {
		q.Set("tx", spec.TxID)
	}
	if spec.MaxResults > 0 {
		q.Set("max-results", strconv.Itoa(spec.MaxResults))
	}
	q.Set("stream", "true")

	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.base+wsda.PathXQuery+"?"+q.Encode(), strings.NewReader(spec.Query))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/xml")
	resp, err := b.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, &wsda.HTTPError{StatusCode: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	plan := resp.Header.Get(wsda.HeaderPlan)
	if onPlan != nil {
		onPlan(plan)
	}
	sum, err := wsda.DecodeStream(resp.Body, onItem)
	if sum != nil {
		sum.Plan = plan
	}
	return sum, err
}

// Healthy implements Backend via GET /healthz.
func (b *HTTPBackend) Healthy(ctx context.Context) error {
	return b.probe(ctx, "/healthz")
}

// Ready implements Backend via GET /readyz; a 503 (bootstrapping shard)
// comes back as a wsda.HTTPError so the router can tell "not yet" from
// "not there".
func (b *HTTPBackend) Ready(ctx context.Context) error {
	return b.probe(ctx, "/readyz")
}

func (b *HTTPBackend) probe(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return &wsda.HTTPError{StatusCode: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	return nil
}

// Assign implements Backend via POST /wsda/shard/cutover?of=K/N.
func (b *HTTPBackend) Assign(ctx context.Context, a Assignment) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.base+PathShardCutover+"?of="+url.QueryEscape(a.String()), nil)
	if err != nil {
		return 0, err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, &wsda.HTTPError{StatusCode: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	var out struct {
		Pruned int `json:"pruned"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return 0, fmt.Errorf("shard: bad cutover response from %s: %w", b.base, err)
	}
	return out.Pruned, nil
}
