// Package shard partitions the hyper registry's tuple space across N
// registry shards behind a streaming scatter-gather router — the thesis's
// virtual-node containers (Ch. 6.8–6.9) promoted from a simnet experiment
// to a real deployment shape.
//
// The pieces:
//
//   - A deterministic partition function: Owner assigns a tuple's content
//     link to one of N shards by rendezvous (highest-random-weight)
//     hashing, and Assignment ("K/N") is one shard's slice of that space.
//     Partitioning is by link because the link is the tuple's primary key:
//     writes route with no coordination, and a link-equality discovery
//     query pins a single shard. Rendezvous hashing keeps rebalancing
//     minimal — growing N→N+1 moves only the keys the new shard wins,
//     never a key between two old shards.
//   - A guard for shard members: Member wraps a registry so publishes for
//     keys outside the shard's range are rejected with 421 Misdirected
//     Request (definitive, non-retryable) instead of silently accepted
//     into the wrong partition.
//   - A router that owns no tuples: Router accepts the full WSDA HTTP
//     surface, routes writes to the owning shard, and scatter-gathers
//     queries across all shards with streamed merge — per-item flushes
//     begin as soon as the first shard responds, the trailing <summary>
//     aggregates tx/count/complete/nodes across shards, and max-results
//     plus client disconnect cancel the fan-out network-wide.
//   - Rebalancing over the change feed: a shard joining at N→N+1
//     bootstraps its key range via /wsda/snapshot and tails /wsda/feed
//     from each old owner (changefeed.Config.Filter keeps the ranges
//     disjoint), and the router's cutover barrier swaps the partition map
//     with no query in flight, so no query observes a tuple twice or not
//     at all.
//
// Planner pushdown (X-Wsda-Plan), flight-recorder events and per-shard
// metrics survive the hop: the router forwards its minted transaction ID
// to every shard, reflects the first shard plan it sees, and adds an
// X-Wsda-Route header describing the routing decision.
package shard
