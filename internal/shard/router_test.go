package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsda/internal/registry"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

func newReg(name string) *registry.Registry {
	return registry.New(registry.Config{Name: name})
}

func testTuple(link string) *tuple.Tuple {
	return &tuple.Tuple{Link: link, Type: "service", Context: "child"}
}

// newLocalRouter builds a router over n in-process shards, returning the
// router and the per-shard registries.
func newLocalRouter(t *testing.T, n int) (*Router, []*registry.Registry) {
	t.Helper()
	regs := make([]*registry.Registry, n)
	backends := make([]Backend, n)
	for i := range regs {
		regs[i] = newReg(fmt.Sprintf("shard%d", i))
		backends[i] = &LocalBackend{
			Label:  fmt.Sprintf("shard%d", i),
			Reg:    regs[i],
			Member: NewMember(regs[i], Assignment{Index: i, Total: n}, nil, nil),
		}
	}
	return NewRouter(Config{Backends: backends}), regs
}

// publishVia publishes count tuples through the router's HTTP surface and
// returns their links.
func publishVia(t *testing.T, baseURL string, count int) []string {
	t.Helper()
	c := wsda.NewClient(baseURL)
	links := make([]string, count)
	for i := range links {
		links[i] = fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)
		if _, err := c.Publish(testTuple(links[i]), time.Hour); err != nil {
			t.Fatalf("publish %s: %v", links[i], err)
		}
	}
	return links
}

// streamQuery POSTs a streamed xquery at the router and decodes the
// response, returning the delivered item links (for tuple items), the
// summary, and the response headers.
func streamQuery(t *testing.T, baseURL, query string, params string) ([]string, *wsda.StreamSummary, http.Header) {
	t.Helper()
	url := baseURL + wsda.PathXQuery + "?stream=true" + params
	resp, err := http.Post(url, "text/xml", strings.NewReader(query))
	if err != nil {
		t.Fatalf("xquery: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xquery status %d", resp.StatusCode)
	}
	var links []string
	sum, err := wsda.DecodeStream(resp.Body, func(it xq.Item) bool {
		if n, ok := it.(*xmldoc.Node); ok {
			if l, ok := n.Attr("link"); ok {
				links = append(links, l)
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("decode stream: %v", err)
	}
	return links, sum, resp.Header
}

func TestRouterPublishRoutesToOwner(t *testing.T) {
	rt, regs := newLocalRouter(t, 3)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	links := publishVia(t, srv.URL, 60)
	total := 0
	for i, reg := range regs {
		n := reg.Len()
		total += n
		for _, l := range reg.LiveLinks() {
			if Owner(l, 3) != i {
				t.Fatalf("shard %d holds %q owned by shard %d", i, l, Owner(l, 3))
			}
		}
		if n == 0 {
			t.Fatalf("shard %d received no tuples out of %d", i, len(links))
		}
	}
	if total != len(links) {
		t.Fatalf("shards hold %d tuples, want %d", total, len(links))
	}

	// Unpublish routes by the same function.
	c := wsda.NewClient(srv.URL)
	if err := c.Unpublish(links[0]); err != nil {
		t.Fatalf("unpublish: %v", err)
	}
	if total := regs[0].Len() + regs[1].Len() + regs[2].Len(); total != len(links)-1 {
		t.Fatalf("after unpublish shards hold %d, want %d", total, len(links)-1)
	}
}

func TestRouterScatterGatherStreamed(t *testing.T) {
	rt, _ := newLocalRouter(t, 3)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	links := publishVia(t, srv.URL, 45)

	got, sum, hdr := streamQuery(t, srv.URL, `/tupleset/tuple[@type="service"]`, "")
	if len(got) != len(links) {
		t.Fatalf("streamed %d items, want %d", len(got), len(links))
	}
	seen := make(map[string]bool)
	for _, l := range got {
		if seen[l] {
			t.Fatalf("duplicate item %q in merged stream", l)
		}
		seen[l] = true
	}
	if !sum.Complete {
		t.Fatalf("summary incomplete: %+v", sum)
	}
	if sum.NodesContacted != 3 || sum.NodesResponded != 3 {
		t.Fatalf("fan-out accounting = %d/%d, want 3/3", sum.NodesResponded, sum.NodesContacted)
	}
	if hdr.Get(HeaderRoute) != "scatter=3" {
		t.Fatalf("route header = %q", hdr.Get(HeaderRoute))
	}
	if hdr.Get(wsda.HeaderPlan) == "" {
		t.Fatal("plan header did not survive the hop")
	}
	if sum.TxID == "" {
		t.Fatal("summary carries no router transaction ID")
	}
}

// countingBackend counts QueryStream dispatches, to prove single-shard
// routing really skips the other shards.
type countingBackend struct {
	Backend
	calls int
}

func (c *countingBackend) QueryStream(ctx context.Context, spec QuerySpec, onPlan func(string), onItem func(xq.Item) bool) (*wsda.StreamSummary, error) {
	c.calls++
	return c.Backend.QueryStream(ctx, spec, onPlan, onItem)
}

func TestRouterSingleShardRoute(t *testing.T) {
	regs := make([]*registry.Registry, 4)
	counters := make([]*countingBackend, 4)
	backends := make([]Backend, 4)
	for i := range regs {
		regs[i] = newReg(fmt.Sprintf("shard%d", i))
		counters[i] = &countingBackend{Backend: &LocalBackend{Label: fmt.Sprintf("shard%d", i), Reg: regs[i]}}
		backends[i] = counters[i]
	}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	link := "http://node-042.example.org/wsda/presenter"
	owner := Owner(link, 4)
	if _, err := regs[owner].Publish(testTuple(link), time.Hour); err != nil {
		t.Fatal(err)
	}
	got, sum, hdr := streamQuery(t, srv.URL, fmt.Sprintf(`/tupleset/tuple[@link=%q]`, link), "")
	if len(got) != 1 || got[0] != link {
		t.Fatalf("got %v, want [%s]", got, link)
	}
	if want := fmt.Sprintf("shard=%d/4", owner); hdr.Get(HeaderRoute) != want {
		t.Fatalf("route header = %q, want %q", hdr.Get(HeaderRoute), want)
	}
	if sum.NodesContacted != 1 {
		t.Fatalf("contacted %d shards, want 1", sum.NodesContacted)
	}
	for i, c := range counters {
		want := 0
		if i == owner {
			want = 1
		}
		if c.calls != want {
			t.Fatalf("shard %d queried %d times, want %d", i, c.calls, want)
		}
	}
}

func TestRouterMaxResultsCancelsFanOut(t *testing.T) {
	rt, _ := newLocalRouter(t, 3)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	publishVia(t, srv.URL, 60)

	got, sum, _ := streamQuery(t, srv.URL, `/tupleset/tuple[@type="service"]`, "&max-results=7")
	if len(got) != 7 {
		t.Fatalf("streamed %d items, want exactly 7", len(got))
	}
	if sum.Complete {
		t.Fatal("truncated stream must report complete=false")
	}
	if sum.Shortfall != "" {
		t.Fatalf("router-initiated truncation is not a shard failure, shortfall = %q", sum.Shortfall)
	}
}

// failingBackend errors on every query — a dead shard.
type failingBackend struct {
	Backend
}

func (f *failingBackend) QueryStream(context.Context, QuerySpec, func(string), func(xq.Item) bool) (*wsda.StreamSummary, error) {
	return nil, errors.New("connection refused")
}

func (f *failingBackend) Healthy(context.Context) error { return errors.New("connection refused") }
func (f *failingBackend) Ready(context.Context) error   { return errors.New("connection refused") }

func TestRouterDeadShardYieldsPartialNot5xx(t *testing.T) {
	regs := make([]*registry.Registry, 3)
	backends := make([]Backend, 3)
	for i := range regs {
		regs[i] = newReg(fmt.Sprintf("shard%d", i))
		backends[i] = &LocalBackend{Label: fmt.Sprintf("shard%d", i), Reg: regs[i]}
	}
	alive := 0
	for i := 0; i < 90; i++ {
		link := fmt.Sprintf("http://node-%03d.example.org/wsda/presenter", i)
		owner := Owner(link, 3)
		if _, err := regs[owner].Publish(testTuple(link), time.Hour); err != nil {
			t.Fatal(err)
		}
		if owner != 1 {
			alive++
		}
	}
	backends[1] = &failingBackend{Backend: backends[1]}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	got, sum, _ := streamQuery(t, srv.URL, `/tupleset/tuple[@type="service"]`, "")
	if len(got) != alive {
		t.Fatalf("streamed %d items, want the %d from live shards", len(got), alive)
	}
	if sum.Complete {
		t.Fatal("a dead shard must yield complete=false")
	}
	if !strings.Contains(sum.Shortfall, "shard1") {
		t.Fatalf("shortfall %q does not name the dead shard", sum.Shortfall)
	}
	if sum.NodesContacted != 3 || sum.NodesResponded != 2 {
		t.Fatalf("fan-out accounting = %d/%d, want 2/3", sum.NodesResponded, sum.NodesContacted)
	}
}

func TestRouterAllShardsDeadIs502(t *testing.T) {
	backends := []Backend{
		&failingBackend{Backend: &LocalBackend{Label: "shard0", Reg: newReg("shard0")}},
		&failingBackend{Backend: &LocalBackend{Label: "shard1", Reg: newReg("shard1")}},
	}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+wsda.PathXQuery+"?stream=true", "text/xml",
		strings.NewReader(`/tupleset/tuple[@type="service"]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 when every shard fails before streaming", resp.StatusCode)
	}
}

func TestRouterBufferedQueryCarriesAccounting(t *testing.T) {
	rt, _ := newLocalRouter(t, 2)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	links := publishVia(t, srv.URL, 20)

	resp, err := http.Post(srv.URL+wsda.PathXQuery, "text/xml",
		strings.NewReader(`/tupleset/tuple[@type="service"]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := xmldoc.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "results" {
		t.Fatal("expected <results>")
	}
	if v, _ := root.Attr("count"); v != fmt.Sprint(len(links)) {
		t.Fatalf("count = %q, want %d", v, len(links))
	}
	if v, _ := root.Attr("complete"); v != "true" {
		t.Fatalf("complete = %q", v)
	}
	if v, _ := root.Attr("nodes-contacted"); v != "2" {
		t.Fatalf("nodes-contacted = %q", v)
	}
	if v, _ := root.Attr("tx"); v == "" {
		t.Fatal("buffered results carry no tx")
	}
}

func TestRouterMinQueryMergesSorted(t *testing.T) {
	rt, _ := newLocalRouter(t, 3)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	links := publishVia(t, srv.URL, 30)

	c := wsda.NewClient(srv.URL)
	tuples, err := c.MinQuery(registry.Filter{Type: "service"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != len(links) {
		t.Fatalf("minquery returned %d, want %d", len(tuples), len(links))
	}
	for i := 1; i < len(tuples); i++ {
		if tuples[i-1].Link >= tuples[i].Link {
			t.Fatalf("merged minquery not sorted at %d: %q >= %q", i, tuples[i-1].Link, tuples[i].Link)
		}
	}
}

func TestRouterHealthAggregation(t *testing.T) {
	regs := make([]*registry.Registry, 3)
	backends := make([]Backend, 3)
	locals := make([]*LocalBackend, 3)
	for i := range regs {
		regs[i] = newReg(fmt.Sprintf("shard%d", i))
		locals[i] = &LocalBackend{Label: fmt.Sprintf("shard%d", i), Reg: regs[i]}
		backends[i] = locals[i]
	}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	check := func(path string, wantCode int) map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s status = %d, want %d", path, resp.StatusCode, wantCode)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s body not JSON: %v", path, err)
		}
		return body
	}

	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)

	// A bootstrapping shard degrades readiness, classified as such.
	locals[1].ReadyErr = fmt.Errorf("shard shard1: %w", ErrBootstrapping)
	body := check("/readyz", http.StatusServiceUnavailable)
	shards := body["shards"].([]any)
	if len(shards) != 3 {
		t.Fatalf("report has %d shards, want 3", len(shards))
	}
	row := shards[1].(map[string]any)
	if row["status"] != "bootstrapping" {
		t.Fatalf("shard1 status = %v, want bootstrapping", row["status"])
	}
	// Liveness is unaffected by a bootstrap in progress.
	check("/healthz", http.StatusOK)

	// An unreachable shard degrades both, named in the body.
	backends[2] = &failingBackend{Backend: locals[2]}
	rt2 := NewRouter(Config{Backends: backends})
	srv2 := httptest.NewServer(rt2.Handler())
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead shard = %d, want 503", resp.StatusCode)
	}
	var rep struct {
		Shards []ShardHealth `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shards[2].Status != "unreachable" {
		t.Fatalf("shard2 status = %q, want unreachable", rep.Shards[2].Status)
	}
}

func TestRouterNeverRouteContactsNobody(t *testing.T) {
	rt, _ := newLocalRouter(t, 3)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	publishVia(t, srv.URL, 9)

	got, sum, hdr := streamQuery(t, srv.URL, `/tupleset/tuple[@type="a"][@type="b"]`, "")
	if len(got) != 0 {
		t.Fatalf("statically empty query streamed %d items", len(got))
	}
	if !sum.Complete || sum.NodesContacted != 0 {
		t.Fatalf("never-route summary = %+v, want complete with 0 contacted", sum)
	}
	if hdr.Get(HeaderRoute) != "never" {
		t.Fatalf("route header = %q", hdr.Get(HeaderRoute))
	}
}

func TestRouterPublishGuardRejectsMisdirected(t *testing.T) {
	// A shard whose member thinks it owns a DIFFERENT slice than the
	// router's map answers 421, which the router passes through untouched
	// (the operator's signal that maps have diverged).
	reg := newReg("shard0")
	backends := []Backend{
		&LocalBackend{Label: "shard0", Reg: reg, Member: NewMember(reg, Assignment{Index: 1, Total: 16}, nil, nil)},
	}
	rt := NewRouter(Config{Backends: backends})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	c := wsda.NewClient(srv.URL)
	var misdirected error
	for i := 0; i < 64; i++ {
		link := fmt.Sprintf("urn:probe:%d", i)
		if Owner(link, 16) != 1 {
			_, misdirected = c.Publish(testTuple(link), time.Hour)
			break
		}
	}
	var he *wsda.HTTPError
	if !errors.As(misdirected, &he) || he.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misdirected publish = %v, want HTTP 421", misdirected)
	}
	if he.Retryable() {
		t.Fatal("421 must not be retryable")
	}
}
