package xq

import (
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the on-demand lexer. Direct
// element constructors are parsed at the character level, calling back into
// the token-level parser for embedded {expressions}.
type parser struct {
	lx *lexer
}

// parse compiles a complete query: an optional prolog (variable and
// function declarations) followed by an expression and end of input.
func (p *parser) parse() (Expr, []varDecl, map[string]*userFunc, error) {
	decls, funcs, err := p.parseProlog()
	if err != nil {
		return nil, nil, nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, nil, nil, err
	}
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, nil, nil, err
	}
	if t.kind != tokEOF {
		return nil, nil, nil, p.lx.errorf(t.pos, "unexpected %s %q after expression", t.kind, t.text)
	}
	return e, decls, funcs, nil
}

// parseProlog parses "declare variable" and "declare function" clauses.
func (p *parser) parseProlog() ([]varDecl, map[string]*userFunc, error) {
	var decls []varDecl
	funcs := map[string]*userFunc{}
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, nil, err
		}
		if t.kind != tokName || t.text != "declare" {
			return decls, funcs, nil
		}
		t1, err := p.lx.peek(1)
		if err != nil {
			return nil, nil, err
		}
		if t1.kind != tokName || (t1.text != "variable" && t1.text != "function") {
			// "declare" used as an element name in a path; not a prolog.
			return decls, funcs, nil
		}
		p.lx.next()
		p.lx.next()
		switch t1.text {
		case "variable":
			name, err := p.expectVar()
			if err != nil {
				return nil, nil, err
			}
			d := varDecl{name: name}
			if ok, err := p.acceptName("external"); err != nil {
				return nil, nil, err
			} else if ok {
				d.external = true
			} else {
				if err := p.expectSymbol(":="); err != nil {
					return nil, nil, err
				}
				init, err := p.parseExprSingle()
				if err != nil {
					return nil, nil, err
				}
				d.init = init
			}
			decls = append(decls, d)
		case "function":
			ft, err := p.lx.next()
			if err != nil {
				return nil, nil, err
			}
			if ft.kind != tokName {
				return nil, nil, p.lx.errorf(ft.pos, "expected function name, got %q", ft.text)
			}
			name := strings.TrimPrefix(ft.text, "local:")
			if err := p.expectSymbol("("); err != nil {
				return nil, nil, err
			}
			uf := &userFunc{name: name}
			nt, err := p.lx.peek(0)
			if err != nil {
				return nil, nil, err
			}
			if !(nt.kind == tokSymbol && nt.text == ")") {
				for {
					v, err := p.expectVar()
					if err != nil {
						return nil, nil, err
					}
					uf.params = append(uf.params, v)
					ok, err := p.acceptSymbol(",")
					if err != nil {
						return nil, nil, err
					}
					if !ok {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, nil, err
			}
			if err := p.expectSymbol("{"); err != nil {
				return nil, nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expectSymbol("}"); err != nil {
				return nil, nil, err
			}
			uf.body = body
			if _, dup := funcs[name]; dup {
				return nil, nil, p.lx.errorf(ft.pos, "function %s declared twice", name)
			}
			funcs[name] = uf
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, nil, err
		}
	}
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for {
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &seqExpr{parts: parts}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	if t.kind == tokName {
		t1, err := p.lx.peek(1)
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "for", "let":
			if t1.kind == tokVar {
				return p.parseFLWOR()
			}
		case "some", "every":
			if t1.kind == tokVar {
				return p.parseQuantified()
			}
		case "if":
			if t1.kind == tokSymbol && t1.text == "(" {
				return p.parseIf()
			}
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (Expr, error) {
	var fl flworExpr
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || (t.text != "for" && t.text != "let") {
			break
		}
		p.lx.next()
		isLet := t.text == "let"
		for {
			v, err := p.expectVar()
			if err != nil {
				return nil, err
			}
			cl := flworClause{isLet: isLet, varName: v}
			if !isLet {
				if ok, err := p.acceptName("at"); err != nil {
					return nil, err
				} else if ok {
					pv, err := p.expectVar()
					if err != nil {
						return nil, err
					}
					cl.posVar = pv
				}
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
			} else {
				if err := p.expectSymbol(":="); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.expr = e
			fl.clauses = append(fl.clauses, cl)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if len(fl.clauses) == 0 {
		t, _ := p.lx.peek(0)
		return nil, p.lx.errorf(t.pos, "expected for/let clause")
	}
	if ok, err := p.acceptName("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.where = w
	}
	if ok, err := p.acceptName("order"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := orderSpec{key: key, emptyLeast: true}
			if ok, err := p.acceptName("ascending"); err != nil {
				return nil, err
			} else if !ok {
				if ok, err := p.acceptName("descending"); err != nil {
					return nil, err
				} else if ok {
					spec.descending = true
				}
			}
			// "empty greatest|least"
			if ok, err := p.acceptName("empty"); err != nil {
				return nil, err
			} else if ok {
				if ok, err := p.acceptName("greatest"); err != nil {
					return nil, err
				} else if ok {
					spec.emptyLeast = false
				} else if err := p.expectName("least"); err != nil {
					return nil, err
				}
			}
			fl.orderBy = append(fl.orderBy, spec)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.ret = ret
	return &fl, nil
}

func (p *parser) parseQuantified() (Expr, error) {
	t, err := p.lx.next()
	if err != nil {
		return nil, err
	}
	q := quantExpr{every: t.text == "every"}
	for {
		v, err := p.expectVar()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("in"); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.binds = append(q.binds, flworClause{varName: v, expr: e})
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.sat = sat
	return &q, nil
}

func (p *parser) parseIf() (Expr, error) {
	p.lx.next() // "if"
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &ifExpr{cond: cond, then: then, els: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for {
		ok, err := p.acceptName("or")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return &orExpr{args: args}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for {
		ok, err := p.acceptName("and")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return &andExpr{args: args}, nil
}

var generalCompOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}
var valueCompOps = map[string]bool{"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	if t.kind == tokSymbol && generalCompOps[t.text] {
		p.lx.next()
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return &compExpr{op: t.text, general: true, l: l, r: r}, nil
	}
	if t.kind == tokName && valueCompOps[t.text] {
		p.lx.next()
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return &compExpr{op: t.text, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseConcat() (Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptSymbol("||")
		if err != nil {
			return nil, err
		}
		if !ok {
			return l, nil
		}
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		l = &concatExpr{l: l, r: r}
	}
}

func (p *parser) parseRange() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	ok, err := p.acceptName("to")
	if err != nil {
		return nil, err
	}
	if !ok {
		return l, nil
	}
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &rangeExpr{l: l, r: r}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.lx.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &arithExpr{op: t.text, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		var op string
		if t.kind == tokSymbol && t.text == "*" {
			op = "*"
		} else if t.kind == tokName && (t.text == "div" || t.text == "idiv" || t.text == "mod") {
			op = t.text
		} else {
			return l, nil
		}
		p.lx.next()
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = &arithExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		isUnion := (t.kind == tokSymbol && t.text == "|") || (t.kind == tokName && t.text == "union")
		if !isUnion {
			break
		}
		p.lx.next()
		e, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return &unionExpr{args: args}, nil
}

func (p *parser) parseIntersectExcept() (Expr, error) {
	l, err := p.parseInstanceOf()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		if t.kind != tokName || (t.text != "intersect" && t.text != "except") {
			return l, nil
		}
		p.lx.next()
		r, err := p.parseInstanceOf()
		if err != nil {
			return nil, err
		}
		l = &intersectExceptExpr{intersect: t.text == "intersect", l: l, r: r}
	}
}

func (p *parser) parseInstanceOf() (Expr, error) {
	x, err := p.parseCastable()
	if err != nil {
		return nil, err
	}
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	if t.kind == tokName && t.text == "instance" {
		t1, err := p.lx.peek(1)
		if err != nil {
			return nil, err
		}
		if t1.kind == tokName && t1.text == "of" {
			p.lx.next()
			p.lx.next()
			st, err := p.parseSeqType()
			if err != nil {
				return nil, err
			}
			return &instanceOfExpr{x: x, t: st}, nil
		}
	}
	return x, nil
}

func (p *parser) parseCastable() (Expr, error) {
	x, err := p.parseCast()
	if err != nil {
		return nil, err
	}
	ok, err := p.acceptTwoNames("castable", "as")
	if err != nil {
		return nil, err
	}
	if !ok {
		return x, nil
	}
	st, err := p.parseSeqType()
	if err != nil {
		return nil, err
	}
	return &castExpr{x: x, t: st, castable: true}, nil
}

func (p *parser) parseCast() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	ok, err := p.acceptTwoNames("cast", "as")
	if err != nil {
		return nil, err
	}
	if !ok {
		return x, nil
	}
	st, err := p.parseSeqType()
	if err != nil {
		return nil, err
	}
	return &castExpr{x: x, t: st}, nil
}

// acceptTwoNames consumes the two-keyword sequence if present.
func (p *parser) acceptTwoNames(a, b string) (bool, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return false, err
	}
	if t.kind != tokName || t.text != a {
		return false, nil
	}
	t1, err := p.lx.peek(1)
	if err != nil {
		return false, err
	}
	if t1.kind != tokName || t1.text != b {
		return false, nil
	}
	p.lx.next()
	p.lx.next()
	return true, nil
}

// parseSeqType parses a sequence type: an optionally xs:-prefixed name,
// optional "()" for kind tests, and an occurrence indicator (?, *, +)
// attached without whitespace.
func (p *parser) parseSeqType() (seqType, error) {
	t, err := p.lx.next()
	if err != nil {
		return seqType{}, err
	}
	if t.kind != tokName {
		return seqType{}, p.lx.errorf(t.pos, "expected type name, got %q", t.text)
	}
	name := strings.TrimPrefix(t.text, "xs:")
	if !knownSeqTypeNames[name] {
		return seqType{}, p.lx.errorf(t.pos, "unknown type %q", t.text)
	}
	end := t.end
	// Kind tests take parens: element(), node(), empty-sequence(), item().
	nt, err := p.lx.peek(0)
	if err != nil {
		return seqType{}, err
	}
	if nt.kind == tokSymbol && nt.text == "(" && nt.pos == end {
		p.lx.next()
		close, err := p.lx.next()
		if err != nil {
			return seqType{}, err
		}
		if close.kind != tokSymbol || close.text != ")" {
			return seqType{}, p.lx.errorf(close.pos, "expected ) in type, got %q", close.text)
		}
		end = close.end
		if nt, err = p.lx.peek(0); err != nil {
			return seqType{}, err
		}
	}
	st := seqType{name: name}
	if nt.kind == tokSymbol && nt.pos == end && (nt.text == "?" || nt.text == "*" || nt.text == "+") {
		// Adjacent occurrence indicator (no whitespace) binds to the type.
		p.lx.next()
		st.occurrence = nt.text[0]
	}
	return st, nil
}

func (p *parser) parseUnary() (Expr, error) {
	neg := false
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		if t.kind == tokSymbol && (t.text == "-" || t.text == "+") {
			p.lx.next()
			if t.text == "-" {
				neg = !neg
			}
			continue
		}
		break
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if neg {
		return &unaryExpr{neg: true, x: e}, nil
	}
	return e, nil
}

// parsePath parses a path expression (possibly a single primary).
func (p *parser) parsePath() (Expr, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	pe := &pathExpr{}
	if t.kind == tokSymbol && (t.text == "/" || t.text == "//") {
		p.lx.next()
		pe.absolute = true
		pe.doubleSlash = t.text == "//"
		if !pe.doubleSlash {
			// "/" alone selects the root; a following step is optional.
			nt, err := p.lx.peek(0)
			if err != nil {
				return nil, err
			}
			if !p.startsStep(nt) {
				return pe, nil
			}
		}
	}
	st, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	pe.steps = append(pe.steps, st)
	for {
		t, err := p.lx.peek(0)
		if err != nil {
			return nil, err
		}
		if t.kind != tokSymbol || (t.text != "/" && t.text != "//") {
			break
		}
		p.lx.next()
		if t.text == "//" {
			pe.steps = append(pe.steps, pathStep{axis: axisDescOrSelf, test: nodeTest{kind: "node"}})
		}
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
	}
	// A bare primary with no predicates and no slashes needs no path wrapper.
	if !pe.absolute && len(pe.steps) == 1 && pe.steps[0].primary != nil && len(pe.steps[0].preds) == 0 {
		return pe.steps[0].primary, nil
	}
	return pe, nil
}

// startsStep reports whether the token can begin a path step.
func (p *parser) startsStep(t token) bool {
	switch t.kind {
	case tokName, tokVar, tokString, tokInteger, tokDecimal:
		return true
	case tokSymbol:
		switch t.text {
		case "@", "..", ".", "*", "(", "<":
			return true
		}
	}
	return false
}

var kindTests = map[string]string{
	"text": "text", "node": "node", "comment": "comment",
	"element": "element", "document-node": "document-node",
}

// parseStep parses one path step, including its predicates.
func (p *parser) parseStep() (pathStep, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return pathStep{}, err
	}
	var st pathStep
	switch {
	case t.kind == tokSymbol && t.text == "@":
		p.lx.next()
		name, err := p.expectNameOrStar()
		if err != nil {
			return pathStep{}, err
		}
		st = pathStep{axis: axisAttribute, test: nodeTest{name: name}}
	case t.kind == tokSymbol && t.text == "..":
		p.lx.next()
		st = pathStep{axis: axisParent, test: nodeTest{kind: "node"}}
	case t.kind == tokSymbol && t.text == "*":
		p.lx.next()
		st = pathStep{axis: axisChild, test: nodeTest{name: "*"}}
	case t.kind == tokName && strings.Contains(t.text, "::"):
		// Explicit axis syntax: the lexer merges "axis::name" into one
		// token (":" is a name character for QNames); split it here.
		parts := strings.SplitN(t.text, "::", 2)
		ax, ok := axisByName[parts[0]]
		if !ok {
			return pathStep{}, p.lx.errorf(t.pos, "unknown axis %q", parts[0])
		}
		p.lx.next()
		st = pathStep{axis: ax}
		rest := parts[1]
		switch {
		case rest == "":
			// Test is the next token: * (or a parse error).
			nt, err := p.lx.next()
			if err != nil {
				return pathStep{}, err
			}
			if nt.kind == tokSymbol && nt.text == "*" {
				st.test = nodeTest{name: "*"}
			} else {
				return pathStep{}, p.lx.errorf(nt.pos, "expected node test after %s::", parts[0])
			}
		default:
			// Possibly a kind test: axis::node() etc.
			nt, err := p.lx.peek(0)
			if err != nil {
				return pathStep{}, err
			}
			if kind, isKind := kindTests[rest]; isKind && nt.kind == tokSymbol && nt.text == "(" && nt.pos == t.end {
				p.lx.next()
				if err := p.expectSymbol(")"); err != nil {
					return pathStep{}, err
				}
				st.test = nodeTest{kind: kind}
			} else {
				st.test = nodeTest{name: rest}
			}
		}
	case t.kind == tokName:
		t1, err := p.lx.peek(1)
		if err != nil {
			return pathStep{}, err
		}
		isCall := t1.kind == tokSymbol && t1.text == "(" && t1.pos == t.end
		if isCall {
			if kind, ok := kindTests[t.text]; ok {
				p.lx.next()
				p.lx.next()
				if err := p.expectSymbol(")"); err != nil {
					return pathStep{}, err
				}
				st = pathStep{axis: axisChild, test: nodeTest{kind: kind}}
				break
			}
			prim, err := p.parsePrimary()
			if err != nil {
				return pathStep{}, err
			}
			st = pathStep{primary: prim}
			break
		}
		// Keywords that begin computed constructors are primaries.
		if (t.text == "element" || t.text == "attribute" || t.text == "text") &&
			(t1.kind == tokName || (t1.kind == tokSymbol && t1.text == "{")) {
			prim, err := p.parsePrimary()
			if err != nil {
				return pathStep{}, err
			}
			st = pathStep{primary: prim}
			break
		}
		p.lx.next()
		st = pathStep{axis: axisChild, test: nodeTest{name: t.text}}
	default:
		prim, err := p.parsePrimary()
		if err != nil {
			return pathStep{}, err
		}
		st = pathStep{primary: prim}
	}
	// Predicates.
	for {
		ok, err := p.acceptSymbol("[")
		if err != nil {
			return pathStep{}, err
		}
		if !ok {
			break
		}
		pred, err := p.parseExpr()
		if err != nil {
			return pathStep{}, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return pathStep{}, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

// parsePrimary parses a primary expression.
func (p *parser) parsePrimary() (Expr, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokString:
		p.lx.next()
		return &literal{val: t.text}, nil
	case tokInteger:
		p.lx.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.lx.errorf(t.pos, "bad integer literal %q", t.text)
		}
		return &literal{val: i}, nil
	case tokDecimal:
		p.lx.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.lx.errorf(t.pos, "bad decimal literal %q", t.text)
		}
		return &literal{val: f}, nil
	case tokVar:
		p.lx.next()
		return &varRef{name: t.text}, nil
	case tokSymbol:
		switch t.text {
		case ".":
			p.lx.next()
			return &ctxItemExpr{}, nil
		case "(":
			p.lx.next()
			// Possibly the empty sequence "()".
			nt, err := p.lx.peek(0)
			if err != nil {
				return nil, err
			}
			if nt.kind == tokSymbol && nt.text == ")" {
				p.lx.next()
				return &seqExpr{}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "<":
			return p.parseDirectCtor(t)
		}
	case tokName:
		t1, err := p.lx.peek(1)
		if err != nil {
			return nil, err
		}
		if t1.kind == tokSymbol && t1.text == "(" {
			p.lx.next()
			p.lx.next()
			var args []Expr
			nt, err := p.lx.peek(0)
			if err != nil {
				return nil, err
			}
			if !(nt.kind == tokSymbol && nt.text == ")") {
				for {
					a, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					ok, err := p.acceptSymbol(",")
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			name := strings.TrimPrefix(strings.TrimPrefix(t.text, "fn:"), "local:")
			return &funcCall{name: name, args: args}, nil
		}
		// Computed constructors.
		switch t.text {
		case "element":
			return p.parseComputedElem()
		case "attribute":
			return p.parseComputedAttr()
		case "text":
			if t1.kind == tokSymbol && t1.text == "{" {
				p.lx.next()
				p.lx.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol("}"); err != nil {
					return nil, err
				}
				return &textCtor{expr: e}, nil
			}
		}
	}
	return nil, p.lx.errorf(t.pos, "unexpected %s %q", t.kind, t.text)
}

func (p *parser) parseComputedElem() (Expr, error) {
	p.lx.next() // "element"
	t, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	ctor := &elemCtor{}
	if t.kind == tokName {
		p.lx.next()
		ctor.name = t.text
	} else if t.kind == tokSymbol && t.text == "{" {
		p.lx.next()
		ne, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		ctor.nameExpr = ne
	} else {
		return nil, p.lx.errorf(t.pos, "expected element name")
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	nt, err := p.lx.peek(0)
	if err != nil {
		return nil, err
	}
	if !(nt.kind == tokSymbol && nt.text == "}") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ctor.content = []Expr{e}
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return ctor, nil
}

func (p *parser) parseComputedAttr() (Expr, error) {
	p.lx.next() // "attribute"
	t, err := p.lx.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokName {
		return nil, p.lx.errorf(t.pos, "expected attribute name")
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return &attrExpr{name: t.text, val: e}, nil
}

// --- token helpers ---

func (p *parser) acceptSymbol(s string) (bool, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return false, err
	}
	if t.kind == tokSymbol && t.text == s {
		p.lx.next()
		return true, nil
	}
	return false, nil
}

func (p *parser) expectSymbol(s string) error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	if t.kind != tokSymbol || t.text != s {
		return p.lx.errorf(t.pos, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) acceptName(s string) (bool, error) {
	t, err := p.lx.peek(0)
	if err != nil {
		return false, err
	}
	if t.kind == tokName && t.text == s {
		p.lx.next()
		return true, nil
	}
	return false, nil
}

func (p *parser) expectName(s string) error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	if t.kind != tokName || t.text != s {
		return p.lx.errorf(t.pos, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectVar() (string, error) {
	t, err := p.lx.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokVar {
		return "", p.lx.errorf(t.pos, "expected variable, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) expectNameOrStar() (string, error) {
	t, err := p.lx.next()
	if err != nil {
		return "", err
	}
	if t.kind == tokName {
		return t.text, nil
	}
	if t.kind == tokSymbol && t.text == "*" {
		return "*", nil
	}
	return "", p.lx.errorf(t.pos, "expected name or *, got %q", t.text)
}
