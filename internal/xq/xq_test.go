package xq

import (
	"strings"
	"testing"

	"wsda/internal/xmldoc"
)

// testDoc is a miniature tuple set in the shape the hyper registry exposes.
const testDoc = `<tupleset>
  <tuple link="http://cms.cern.ch/rc" type="service">
    <content>
      <service name="replica-catalog" domain="cern.ch">
        <interface type="XQuery"><operation name="query"/></interface>
        <load>0.35</load><uptime>9500</uptime>
      </service>
    </content>
  </tuple>
  <tuple link="http://atlas.cern.ch/sched" type="service">
    <content>
      <service name="scheduler" domain="cern.ch">
        <interface type="Presenter"><operation name="getServiceDescription"/></interface>
        <load>0.80</load><uptime>100</uptime>
      </service>
    </content>
  </tuple>
  <tuple link="http://infn.it/store" type="service">
    <content>
      <service name="storage" domain="infn.it">
        <interface type="XQuery"><operation name="query"/></interface>
        <interface type="Consumer"><operation name="publish"/></interface>
        <load>0.10</load><uptime>20000</uptime>
      </service>
    </content>
  </tuple>
</tupleset>`

func doc(t *testing.T) *xmldoc.Node {
	t.Helper()
	d, err := xmldoc.ParseString(testDoc)
	if err != nil {
		t.Fatalf("parse test doc: %v", err)
	}
	return d
}

// evalStrings evaluates src against the test doc and returns item string
// values.
func evalStrings(t *testing.T, src string) []string {
	t.Helper()
	seq, err := EvalString(src, doc(t))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	out := make([]string, len(seq))
	for i, it := range seq {
		out[i] = StringValue(it)
	}
	return out
}

func evalOne(t *testing.T, src string) string {
	t.Helper()
	got := evalStrings(t, src)
	if len(got) != 1 {
		t.Fatalf("eval %q: got %d items %v, want 1", src, len(got), got)
	}
	return got[0]
}

func TestLiterals(t *testing.T) {
	cases := map[string]string{
		`42`:          "42",
		`4.5`:         "4.5",
		`"hello"`:     "hello",
		`'world'`:     "world",
		`"a""b"`:      `a"b`,
		`true()`:      "true",
		`false()`:     "false",
		`1 + 2 * 3`:   "7",
		`(1 + 2) * 3`: "9",
		`7 mod 3`:     "1",
		`7 idiv 2`:    "3",
		`10 div 4`:    "2.5",
		`-5 + 2`:      "-3",
		`2 - -3`:      "5",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestSequences(t *testing.T) {
	if got := evalStrings(t, `(1, 2, 3)`); len(got) != 3 {
		t.Errorf("(1,2,3) has %d items", len(got))
	}
	if got := evalStrings(t, `1 to 4`); strings.Join(got, ",") != "1,2,3,4" {
		t.Errorf("1 to 4 = %v", got)
	}
	if got := evalStrings(t, `()`); len(got) != 0 {
		t.Errorf("() has %d items", len(got))
	}
	if got := evalOne(t, `count((1, 2, (), (3, 4)))`); got != "4" {
		t.Errorf("count = %s", got)
	}
	if got := evalStrings(t, `4 to 2`); len(got) != 0 {
		t.Errorf("4 to 2 should be empty, got %v", got)
	}
}

func TestPaths(t *testing.T) {
	if got := evalStrings(t, `/tupleset/tuple`); len(got) != 3 {
		t.Fatalf("tuples = %d, want 3", len(got))
	}
	if got := evalStrings(t, `//service/@name`); strings.Join(got, ",") != "replica-catalog,scheduler,storage" {
		t.Errorf("names = %v", got)
	}
	if got := evalStrings(t, `//interface[@type="XQuery"]`); len(got) != 2 {
		t.Errorf("XQuery interfaces = %d, want 2", len(got))
	}
	if got := evalOne(t, `count(//operation)`); got != "4" {
		t.Errorf("operations = %s, want 4", got)
	}
	if got := evalOne(t, `//service[@name="storage"]/load`); got != "0.10" {
		t.Errorf("storage load = %q", got)
	}
	// Positional predicate.
	if got := evalOne(t, `string(/tupleset/tuple[2]/content/service/@name)`); got != "scheduler" {
		t.Errorf("tuple[2] = %q", got)
	}
	// last()
	if got := evalOne(t, `string(/tupleset/tuple[last()]/content/service/@name)`); got != "storage" {
		t.Errorf("tuple[last()] = %q", got)
	}
	// Parent axis.
	if got := evalOne(t, `string((//load)[1]/../@name)`); got != "replica-catalog" {
		t.Errorf("parent nav = %q", got)
	}
	// Wildcard.
	if got := evalOne(t, `count(/tupleset/*)`); got != "3" {
		t.Errorf("wildcard = %s", got)
	}
	// text()
	if got := evalOne(t, `string((//load/text())[1])`); got != "0.35" {
		t.Errorf("text() = %q", got)
	}
	// Document order and dedup through union.
	if got := evalStrings(t, `(//load | //load)`); len(got) != 3 {
		t.Errorf("union dedup: %d items", len(got))
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]string{
		`1 < 2`:                   "true",
		`2 <= 2`:                  "true",
		`"a" = "a"`:               "true",
		`"a" != "a"`:              "false",
		`1 eq 1`:                  "true",
		`1 ne 2`:                  "true",
		`"abc" lt "abd"`:          "true",
		`//load > 0.5`:            "true", // existential: 0.80 matches
		`//load > 0.9`:            "false",
		`count(//tuple) ge 3`:     "true",
		`not(1 = 2)`:              "true",
		`true() and not(false())`: "true",
		`false() or true()`:       "true",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestFLWOR(t *testing.T) {
	got := evalStrings(t, `
		for $s in //service
		where $s/load < 0.5
		return string($s/@name)`)
	if strings.Join(got, ",") != "replica-catalog,storage" {
		t.Errorf("FLWOR where = %v", got)
	}

	got = evalStrings(t, `
		for $s in //service
		order by number($s/load)
		return string($s/@name)`)
	if strings.Join(got, ",") != "storage,replica-catalog,scheduler" {
		t.Errorf("order by = %v", got)
	}

	got = evalStrings(t, `
		for $s in //service
		order by number($s/load) descending
		return string($s/@name)`)
	if strings.Join(got, ",") != "scheduler,replica-catalog,storage" {
		t.Errorf("order by desc = %v", got)
	}

	got = evalStrings(t, `
		let $n := count(//service)
		return $n * 10`)
	if strings.Join(got, ",") != "30" {
		t.Errorf("let = %v", got)
	}

	got = evalStrings(t, `
		for $s at $i in //service
		return concat($i, ":", $s/@name)`)
	if strings.Join(got, "|") != "1:replica-catalog|2:scheduler|3:storage" {
		t.Errorf("at = %v", got)
	}

	// Nested for (join).
	got = evalStrings(t, `
		for $a in //service, $b in //service
		where $a/@domain = $b/@domain and $a/@name lt $b/@name
		return concat($a/@name, "+", $b/@name)`)
	if strings.Join(got, ",") != "replica-catalog+scheduler" {
		t.Errorf("join = %v", got)
	}
}

func TestQuantified(t *testing.T) {
	if got := evalOne(t, `some $s in //service satisfies $s/load > 0.5`); got != "true" {
		t.Errorf("some = %s", got)
	}
	if got := evalOne(t, `every $s in //service satisfies $s/load < 0.9`); got != "true" {
		t.Errorf("every = %s", got)
	}
	if got := evalOne(t, `every $s in //service satisfies $s/load < 0.5`); got != "false" {
		t.Errorf("every2 = %s", got)
	}
}

func TestConditional(t *testing.T) {
	if got := evalOne(t, `if (count(//tuple) > 2) then "many" else "few"`); got != "many" {
		t.Errorf("if = %s", got)
	}
	if got := evalOne(t, `if (()) then "y" else "n"`); got != "n" {
		t.Errorf("if empty = %s", got)
	}
}

func TestStringFunctions(t *testing.T) {
	cases := map[string]string{
		`concat("a", "b", "c")`:           "abc",
		`contains("hello world", "lo w")`: "true",
		`starts-with("cern.ch", "cern")`:  "true",
		`ends-with("cern.ch", ".ch")`:     "true",
		`substring("12345", 2, 3)`:        "234",
		`substring("12345", 2)`:           "2345",
		`substring-before("a=b", "=")`:    "a",
		`substring-after("a=b", "=")`:     "b",
		`string-length("abcd")`:           "4",
		`normalize-space("  a   b ")`:     "a b",
		`upper-case("abc")`:               "ABC",
		`lower-case("ABC")`:               "abc",
		`translate("abcb", "b", "x")`:     "axcx",
		`string-join(("a","b","c"), "-")`: "a-b-c",
		`"a" || "b" || "c"`:               "abc",
		`count(tokenize("a,b,c", ","))`:   "3",
		`matches("cern.ch", "^cern")`:     "true",
		`replace("a-b-c", "-", "+")`:      "a+b+c",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestNumericFunctions(t *testing.T) {
	cases := map[string]string{
		`sum((1, 2, 3))`:            "6",
		`sum(())`:                   "0",
		`avg((2, 4))`:               "3",
		`min((3, 1, 2))`:            "1",
		`max((3.5, 1.0))`:           "3.5",
		`round(2.5)`:                "3",
		`floor(2.9)`:                "2",
		`ceiling(2.1)`:              "3",
		`abs(-4)`:                   "4",
		`number("1.5") * 2`:         "3",
		`sum(//service/load) > 1.2`: "true",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestSequenceFunctions(t *testing.T) {
	cases := map[string]string{
		`empty(())`:                                 "true",
		`exists(//tuple)`:                           "true",
		`count(distinct-values((1, 2, 1)))`:         "2",
		`count(distinct-values(//service/@domain))`: "2",
		`string-join(reverse(("a","b")), "")`:       "ba",
		`count(subsequence((1,2,3,4), 2, 2))`:       "2",
		`index-of((10, 20, 30), 20)`:                "2",
		`count(insert-before((1,2), 2, (9)))`:       "3",
		`count(remove((1,2,3), 2))`:                 "2",
		`deep-equal((1, 2), (1, 2))`:                "true",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestNodeFunctions(t *testing.T) {
	if got := evalOne(t, `name((//service)[1])`); got != "service" {
		t.Errorf("name = %s", got)
	}
	if got := evalOne(t, `local-name((//service)[1])`); got != "service" {
		t.Errorf("local-name = %s", got)
	}
}

func TestConstructors(t *testing.T) {
	seq, err := EvalString(`<result n="{count(//service)}">{
		for $s in //service where $s/load < 0.2 return <hit>{string($s/@name)}</hit>
	}</result>`, doc(t))
	if err != nil {
		t.Fatalf("constructor: %v", err)
	}
	if len(seq) != 1 {
		t.Fatalf("constructor result = %d items", len(seq))
	}
	n, ok := seq[0].(*xmldoc.Node)
	if !ok {
		t.Fatalf("constructor result is %T", seq[0])
	}
	if v, _ := n.Attr("n"); v != "3" {
		t.Errorf("attr n = %q, want 3", v)
	}
	hits := n.ChildElements()
	if len(hits) != 1 || hits[0].StringValue() != "storage" {
		t.Errorf("hits = %v", n.String())
	}

	// Literal text and escaped braces.
	s := mustEvalOneNode(t, `<a>x {{y}} z</a>`)
	if got := s.StringValue(); got != "x {y} z" {
		t.Errorf("escaped braces text = %q", got)
	}

	// Nested constructors with static attributes.
	s = mustEvalOneNode(t, `<a p="1"><b q="2">t</b></a>`)
	if s.String() != `<a p="1"><b q="2">t</b></a>` {
		t.Errorf("nested ctor = %s", s.String())
	}

	// Computed constructors.
	s = mustEvalOneNode(t, `element res { attribute k {"v"}, text {"body"} }`)
	if s.String() != `<res k="v">body</res>` {
		t.Errorf("computed ctor = %s", s.String())
	}
	s = mustEvalOneNode(t, `element {concat("a","b")} {"x"}`)
	if s.String() != `<ab>x</ab>` {
		t.Errorf("computed name ctor = %s", s.String())
	}
}

func mustEvalOneNode(t *testing.T, src string) *xmldoc.Node {
	t.Helper()
	seq, err := EvalString(src, doc(t))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	if len(seq) != 1 {
		t.Fatalf("eval %q: %d items", src, len(seq))
	}
	n, ok := seq[0].(*xmldoc.Node)
	if !ok {
		t.Fatalf("eval %q: item is %T", src, seq[0])
	}
	return n
}

func TestVariables(t *testing.T) {
	q := MustCompile(`for $s in //service where $s/load < $max return string($s/@name)`)
	seq, err := q.Eval(&Options{
		Context: doc(t),
		Vars:    map[string]Sequence{"max": Singleton(0.5)},
	})
	if err != nil {
		t.Fatalf("eval with vars: %v", err)
	}
	if len(seq) != 2 {
		t.Errorf("got %d services, want 2", len(seq))
	}
	// Undefined variable errors.
	if _, err := EvalString(`$nope`, doc(t)); err == nil {
		t.Error("undefined variable did not error")
	}
}

func TestThesisQueries(t *testing.T) {
	// The three query classes from thesis Ch. 3: simple (exact-match),
	// medium (predicates + navigation), complex (join/aggregate + restructure).
	simple := `//service[@name="scheduler"]`
	if got := evalStrings(t, simple); len(got) != 1 {
		t.Errorf("simple query hits = %d", len(got))
	}
	medium := `for $s in //service
		where $s/interface/@type = "XQuery" and $s/load < 0.5
		return $s/@name`
	if got := evalStrings(t, medium); strings.Join(got, ",") != "replica-catalog,storage" {
		t.Errorf("medium query = %v", got)
	}
	complexQ := `<summary total="{count(//service)}">{
		for $d in distinct-values(//service/@domain)
		let $svcs := //service[@domain = $d]
		order by $d
		return <domain name="{$d}" services="{count($svcs)}" avgload="{avg(for $l in $svcs/load return number($l))}"/>
	}</summary>`
	n := mustEvalOneNode(t, complexQ)
	if v, _ := n.Attr("total"); v != "3" {
		t.Errorf("total = %q", v)
	}
	doms := n.ChildElements()
	if len(doms) != 2 {
		t.Fatalf("domains = %d", len(doms))
	}
	if v, _ := doms[0].Attr("name"); v != "cern.ch" {
		t.Errorf("first domain = %q", v)
	}
	if v, _ := doms[1].Attr("services"); v != "1" {
		t.Errorf("infn services = %q", v)
	}
}

func TestStreaming(t *testing.T) {
	q := MustCompile(`for $s in //service return string($s/@name)`)
	if !q.Pipelineable() {
		t.Error("FLWOR without order by should be pipelineable")
	}
	var got []string
	_, err := q.Eval(&Options{Context: doc(t), Emit: func(it Item) bool {
		got = append(got, StringValue(it))
		return len(got) < 2
	}})
	if err != nil {
		t.Fatalf("streaming eval: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("emitted %d, want 2 (early stop)", len(got))
	}

	qo := MustCompile(`for $s in //service order by $s/@name return $s`)
	if qo.Pipelineable() {
		t.Error("ordered FLWOR should not be pipelineable")
	}
	qa := MustCompile(`count(//service)`)
	if qa.Pipelineable() {
		t.Error("aggregate should not be pipelineable")
	}
	// Non-FLWOR query still delivers via Emit.
	var n int
	_, err = qa.Eval(&Options{Context: doc(t), Emit: func(Item) bool { n++; return true }})
	if err != nil || n != 1 {
		t.Errorf("emit aggregate: n=%d err=%v", n, err)
	}
}

func TestMaxSteps(t *testing.T) {
	q := MustCompile(`for $a in 1 to 1000, $b in 1 to 1000 return $a*$b`)
	_, err := q.Eval(&Options{MaxSteps: 10000})
	if err == nil {
		t.Error("expected step-limit error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x in`,
		`1 +`,
		`//[`,
		`<a>`,
		`<a></b>`,
		`let $x = 1 return $x`, // needs :=
		`"unterminated`,
		`(1, 2`,
		`if (1) then 2`,
		`fn:no-such-fn(1) no`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
	// Unknown function is a runtime error.
	if _, err := EvalString(`no-such-fn(1)`, nil); err == nil {
		t.Error("unknown function did not error")
	}
}

func TestComments(t *testing.T) {
	if got := evalOne(t, `(: outer (: inner :) still comment :) 1 + 1`); got != "2" {
		t.Errorf("comment skip = %s", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{`1 div 0`, `1 idiv 0`, `1 mod 0`} {
		if _, err := EvalString(src, nil); err == nil {
			t.Errorf("%s did not error", src)
		}
	}
}
