package xq

import (
	"strings"
	"testing"

	"wsda/internal/xmldoc"
)

// corpusDoc is a richer document exercising nesting, mixed content,
// numeric data and repeated structure.
const corpusDoc = `<library site="geneva">
  <shelf id="s1" floor="1">
    <book isbn="111" year="1999" price="10.50" lang="en">
      <title>Distributed Systems</title>
      <author>Tanenbaum</author><author>van Steen</author>
    </book>
    <book isbn="222" year="2003" price="25.00" lang="en">
      <title>Grid Computing</title>
      <author>Foster</author><author>Kesselman</author>
    </book>
  </shelf>
  <shelf id="s2" floor="2">
    <book isbn="333" year="2002" price="99.99" lang="de">
      <title>Peer-to-Peer Datenbanken</title>
      <author>Hoschek</author>
    </book>
    <book isbn="444" year="1994" price="5.25" lang="en">
      <title>TCP/IP Illustrated</title>
      <author>Stevens</author>
    </book>
  </shelf>
</library>`

// corpus is a single table covering the language surface end to end. Each
// entry is (expression, expected newline-joined string values).
var corpus = []struct{ src, want string }{
	// Arithmetic and precedence.
	{`2 + 3 * 4`, "14"},
	{`(2 + 3) * 4`, "20"},
	{`2 - 3 - 4`, "-5"},
	{`-2 * -3`, "6"},
	{`17 mod 5`, "2"},
	{`17 idiv 5`, "3"},
	{`1 div 8`, "0.125"},
	{`0.1 + 0.2 < 0.4`, "true"},

	// Comparisons: value vs general.
	{`5 eq 5`, "true"},
	{`5 ne 5.0`, "false"},
	{`"b" gt "a"`, "true"},
	{`(1, 2, 3) = 2`, "true"},
	{`(1, 2, 3) != 2`, "true"}, // existential: 1 != 2
	{`(1, 2) = (3, 4)`, "false"},
	{`() = 1`, "false"},

	// Sequences.
	{`count((1, (2, 3), ()))`, "3"},
	{`count(1 to 10)`, "10"},
	{`(1 to 3)[2]`, "2"},
	{`reverse(1 to 3)[1]`, "3"},
	{`subsequence(5 to 10, 2, 2)[2]`, "7"},
	{`string-join(for $i in 1 to 4 return string($i), "")`, "1234"},

	// Paths, axes, predicates.
	{`count(//book)`, "4"},
	{`count(/library/shelf)`, "2"},
	{`count(//book[@lang="en"])`, "3"},
	{`string(//book[@isbn="333"]/title)`, "Peer-to-Peer Datenbanken"},
	{`count(//book[@price > 20])`, "2"},
	{`string((//book)[last()]/title)`, "TCP/IP Illustrated"},
	{`string(//shelf[2]/book[1]/author)`, "Hoschek"},
	{`count(//book/author)`, "6"},
	{`count(//author/parent::book)`, "4"},
	{`string((//author)[1]/ancestor::shelf/@id)`, "s1"},
	{`count(//shelf[@floor="1"]/descendant::author)`, "4"},
	{`string(//book[@isbn="222"]/preceding-sibling::book/@isbn)`, "111"},
	{`string(//book[@isbn="111"]/following-sibling::book/@isbn)`, "222"},
	{`count(//book[author="Foster"])`, "1"},
	{`count(//*)`, "17"},
	{`count(//@isbn)`, "4"},
	{`count(//book[not(@lang="en")])`, "1"},

	// FLWOR.
	{`for $b in //book where $b/@year > 2000 order by $b/@isbn return string($b/@isbn)`, "222\n333"},
	{`for $b in //book order by number($b/@price) return string($b/@isbn)`, "444\n111\n222\n333"},
	{`for $b in //book order by number($b/@price) descending return string($b/@isbn)`, "333\n222\n111\n444"},
	{`for $s in //shelf, $b in $s/book where $b/@lang = "de" return concat($s/@id, "/", $b/@isbn)`, "s2/333"},
	{`let $cheap := //book[@price < 20] return count($cheap)`, "2"},
	{`for $b at $i in //book where $i mod 2 = 0 return string($b/@isbn)`, "222\n444"},
	{`for $y in distinct-values(//book/@year) order by $y return $y`, "1994\n1999\n2002\n2003"},

	// Quantifiers and conditionals.
	{`some $b in //book satisfies $b/@price > 90`, "true"},
	{`every $b in //book satisfies $b/@price > 5`, "true"},
	{`every $b in //book satisfies $b/@lang = "en"`, "false"},
	{`if (count(//book) > 3) then "big" else "small"`, "big"},

	// Aggregates over node data.
	{`sum(for $p in //book/@price return number($p))`, "140.74"},
	{`avg(for $p in //book/@price return number($p)) > 35`, "true"},
	{`min(//book/@year)`, "1994"},
	{`max(for $b in //book return number($b/@price))`, "99.99"},
	{`count(distinct-values(//book/@lang))`, "2"},

	// String functions on document data.
	{`upper-case(substring(string((//book)[1]/title), 1, 4))`, "DIST"},
	{`string-join(//shelf/@id, "+")`, "s1+s2"},
	{`contains(string((//title)[3]), "Peer")`, "true"},
	{`starts-with(string((//title)[4]), "TCP")`, "true"},
	{`substring-before("isbn:111", ":")`, "isbn"},
	{`substring-after("isbn:111", ":")`, "111"},
	{`normalize-space("  a   b  ")`, "a b"},
	{`translate("2002", "02", "13")`, "3113"},
	{`concat("x", 1, true())`, "x1true"},
	{`string-length(string((//title)[1]))`, "19"},
	{`count(tokenize("a b c d", " "))`, "4"},
	{`replace("1994-2003", "\d+", "Y")`, "Y-Y"},
	{`matches("isbn-444", "^isbn-\d+$")`, "true"},

	// Types.
	{`(//book)[1]/@year castable as xs:integer`, "true"},
	{`number((//book)[1]/@price) instance of xs:double`, "true"},
	{`"99" cast as xs:integer + 1`, "100"},
	{`count(//book[@price castable as xs:double])`, "4"},

	// Set operators.
	{`count(//book[@lang="en"] | //book[@year="2002"])`, "4"},
	{`count(//book[@lang="en"] intersect //book[@price < 20])`, "2"},
	{`count(//book except //shelf[@floor="1"]/book)`, "2"},

	// Constructors.
	{`<x>{count(//book)}</x>`, "<x>4</x>"},
	{`<t a="{//shelf[1]/@id}">{string((//book)[1]/@isbn)}</t>`, `<t a="s1">111</t>`},
	{`element tag { attribute n {1 + 1}, "body" }`, `<tag n="2">body</tag>`},
	{`<list>{for $a in //book[@isbn="222"]/author return <a>{string($a)}</a>}</list>`,
		"<list><a>Foster</a><a>Kesselman</a></list>"},
	{`string(<deep><in>{40 + 2}</in></deep>)`, "42"},
	{`text {"plain"}`, "plain"},

	// Prolog.
	{`declare variable $limit := 20; count(//book[@price < $limit])`, "2"},
	{`declare function local:span($b) { 2026 - number($b/@year) };
	  min(for $b in //book return local:span($b))`, "23"},
	{`declare variable $f := 2;
	  declare function local:scale($x) { $x * $f };
	  local:scale(21)`, "42"},

	// Node identity and document order.
	{`count((//book, //book))`, "8"},               // sequences keep duplicates
	{`count(//book | //book)`, "4"},                // union dedupes
	{`(//book/@isbn)[1] << (//book/@isbn)[2]`, ""}, // << unsupported: see below
}

func TestCorpus(t *testing.T) {
	d, err := xmldoc.ParseString(corpusDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corpus {
		if strings.Contains(c.src, "<<") {
			// Node-order comparisons are deliberately unsupported; ensure
			// they fail loudly rather than silently misparse.
			if _, err := EvalString(c.src, d); err == nil {
				t.Errorf("%s unexpectedly succeeded", c.src)
			}
			continue
		}
		seq, err := EvalString(c.src, d)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		parts := make([]string, len(seq))
		for i, it := range seq {
			if n, ok := it.(*xmldoc.Node); ok {
				parts[i] = n.String()
			} else {
				parts[i] = StringValue(it)
			}
		}
		if got := strings.Join(parts, "\n"); got != c.want {
			t.Errorf("%s\n  got  %q\n  want %q", c.src, got, c.want)
		}
	}
}
