package xq

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"wsda/internal/xmldoc"
)

// Evaluation of the type operators: instance of, cast as, castable as,
// intersect and except.

func (e *instanceOfExpr) eval(c *evalCtx) (Sequence, error) {
	v, err := e.x.eval(c)
	if err != nil {
		return nil, err
	}
	return Singleton(matchesSeqType(v, e.t)), nil
}

func matchesSeqType(v Sequence, t seqType) bool {
	if t.name == "empty-sequence" {
		return len(v) == 0
	}
	switch t.occurrence {
	case 0:
		if len(v) != 1 {
			return false
		}
	case '?':
		if len(v) > 1 {
			return false
		}
	case '+':
		if len(v) < 1 {
			return false
		}
	case '*':
		// any length
	}
	for _, it := range v {
		if !matchesItemType(it, t.name) {
			return false
		}
	}
	return true
}

func matchesItemType(it Item, name string) bool {
	if name == "item" {
		return true
	}
	n, isNode := it.(*xmldoc.Node)
	switch name {
	case "node":
		return isNode
	case "element":
		return isNode && n.Kind == xmldoc.ElementNode
	case "attribute":
		return isNode && n.Kind == xmldoc.AttributeNode
	case "text":
		return isNode && n.Kind == xmldoc.TextNode
	case "comment":
		return isNode && n.Kind == xmldoc.CommentNode
	case "document-node":
		return isNode && n.Kind == xmldoc.DocumentNode
	}
	if isNode {
		return false
	}
	switch name {
	case "anyAtomicType":
		return true
	case "integer":
		_, ok := it.(int64)
		return ok
	case "decimal", "double", "float":
		switch it.(type) {
		case float64, int64:
			return name != "integer"
		}
		return false
	case "string", "untypedAtomic", "anyURI":
		_, ok := it.(string)
		return ok
	case "boolean":
		_, ok := it.(bool)
		return ok
	}
	return false
}

func (e *castExpr) eval(c *evalCtx) (Sequence, error) {
	v, err := e.x.eval(c)
	if err != nil {
		return nil, err
	}
	v = Atomize(v)
	if len(v) == 0 {
		if e.t.occurrence == '?' {
			if e.castable {
				return Singleton(true), nil
			}
			return Empty, nil
		}
		if e.castable {
			return Singleton(false), nil
		}
		return nil, fmt.Errorf("xq: cannot cast empty sequence to %s", e.t.name)
	}
	if len(v) > 1 {
		if e.castable {
			return Singleton(false), nil
		}
		return nil, fmt.Errorf("xq: cannot cast sequence of %d items", len(v))
	}
	out, err := castAtomic(v[0], e.t.name)
	if e.castable {
		return Singleton(err == nil), nil
	}
	if err != nil {
		return nil, err
	}
	return Singleton(out), nil
}

// castAtomic converts one atomic value to the named xs type.
func castAtomic(it Item, name string) (Item, error) {
	s := strings.TrimSpace(StringValue(it))
	switch name {
	case "string", "untypedAtomic", "anyURI":
		return StringValue(it), nil
	case "integer":
		switch v := it.(type) {
		case int64:
			return v, nil
		case float64:
			return int64(v), nil
		case bool:
			if v {
				return int64(1), nil
			}
			return int64(0), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			// XPath permits casting decimal strings via truncation only
			// through xs:decimal; a plain integer cast of "1.5" fails.
			return nil, fmt.Errorf("xq: cannot cast %q to xs:integer", s)
		}
		return i, nil
	case "decimal", "double", "float":
		switch v := it.(type) {
		case float64:
			return v, nil
		case int64:
			return float64(v), nil
		case bool:
			if v {
				return 1.0, nil
			}
			return 0.0, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(f) && s != "NaN" {
			return nil, fmt.Errorf("xq: cannot cast %q to xs:%s", s, name)
		}
		return f, nil
	case "boolean":
		switch v := it.(type) {
		case bool:
			return v, nil
		case int64:
			return v != 0, nil
		case float64:
			return v != 0 && !math.IsNaN(v), nil
		}
		switch s {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		}
		return nil, fmt.Errorf("xq: cannot cast %q to xs:boolean", s)
	}
	return nil, fmt.Errorf("xq: unknown cast target xs:%s", name)
}

func (e *intersectExceptExpr) eval(c *evalCtx) (Sequence, error) {
	lv, err := e.l.eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.eval(c)
	if err != nil {
		return nil, err
	}
	inRight := make(map[*xmldoc.Node]bool, len(rv))
	for _, it := range rv {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			return nil, fmt.Errorf("xq: intersect/except operand contains non-node %T", it)
		}
		inRight[n] = true
	}
	var out Sequence
	for _, it := range lv {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			return nil, fmt.Errorf("xq: intersect/except operand contains non-node %T", it)
		}
		if inRight[n] == e.intersect {
			out = append(out, n)
		}
	}
	return sortNodesDocOrder(out), nil
}

// knownSeqTypeNames are the sequence-type names the parser accepts (with
// or without the xs: prefix for the atomic ones).
var knownSeqTypeNames = map[string]bool{
	"integer": true, "decimal": true, "double": true, "float": true,
	"string": true, "boolean": true, "untypedAtomic": true,
	"anyAtomicType": true, "anyURI": true,
	"item": true, "node": true, "element": true, "attribute": true,
	"text": true, "comment": true, "document-node": true,
	"empty-sequence": true,
}
