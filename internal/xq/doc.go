// Package xq implements the XQuery subset used by the WSDA hyper registry
// and the Unified Peer-to-Peer Database Framework (thesis Ch. 3). It covers
// FLWOR expressions, path expressions with predicates, quantified and
// conditional expressions, direct and computed element constructors, and a
// library of about forty built-in functions — enough to express every
// simple, medium and complex discovery query the thesis formulates.
//
// The engine is written from scratch on the Go standard library: a
// hand-rolled lexer and recursive-descent parser produce an AST that is
// evaluated against trees from internal/xmldoc.
package xq
