package xq

// Expr is a compiled XQuery expression node. Every expression evaluates to
// a Sequence.
type Expr interface {
	eval(c *evalCtx) (Sequence, error)
}

// seqExpr is the comma operator: sequence concatenation.
type seqExpr struct{ parts []Expr }

// flworClause is one for/let clause of a FLWOR expression.
type flworClause struct {
	isLet   bool
	varName string
	posVar  string // "at $i" positional variable; for-clauses only
	expr    Expr
}

// orderSpec is one "order by" key.
type orderSpec struct {
	key        Expr
	descending bool
	emptyLeast bool
}

// flworExpr is a FLWOR expression: for/let clauses, optional where,
// optional stable order by, and a return expression.
type flworExpr struct {
	clauses []flworClause
	where   Expr
	orderBy []orderSpec
	ret     Expr
}

// quantExpr is "some/every $v in E satisfies P".
type quantExpr struct {
	every bool
	binds []flworClause // isLet always false
	sat   Expr
}

// ifExpr is "if (C) then T else E".
type ifExpr struct{ cond, then, els Expr }

// orExpr / andExpr are short-circuit boolean connectives.
type orExpr struct{ args []Expr }
type andExpr struct{ args []Expr }

// compExpr is a general (=, <, ...) or value (eq, lt, ...) comparison.
type compExpr struct {
	op      string
	general bool
	l, r    Expr
}

// rangeExpr is the integer range constructor "l to r".
type rangeExpr struct{ l, r Expr }

// arithExpr is +, -, *, div, idiv, mod.
type arithExpr struct {
	op   string
	l, r Expr
}

// unaryExpr is unary minus (and the no-op unary plus).
type unaryExpr struct {
	neg bool
	x   Expr
}

// unionExpr is the node-set union operator "|".
type unionExpr struct{ args []Expr }

// intersectExceptExpr is "intersect" (both = true) or "except".
type intersectExceptExpr struct {
	intersect bool
	l, r      Expr
}

// seqType is a parsed sequence type like "xs:integer*" or "element()?".
type seqType struct {
	name string // "integer", "decimal", "double", "string", "boolean",
	// "untypedAtomic", "anyAtomicType", "item", "node", "element", "text",
	// "comment", "document-node", "empty-sequence"
	occurrence byte // 0 (exactly one), '?', '*', '+'
}

// instanceOfExpr is "E instance of T".
type instanceOfExpr struct {
	x Expr
	t seqType
}

// castExpr is "E cast as T" (castable = false) or "E castable as T".
type castExpr struct {
	x        Expr
	t        seqType
	castable bool
}

// concatExpr is the string concatenation operator "||".
type concatExpr struct{ l, r Expr }

// axis enumerates the supported axes (abbreviated and explicit syntax).
type axis int

const (
	axisChild axis = iota
	axisDescOrSelf
	axisAttribute
	axisSelf
	axisParent
	axisDescendant
	axisAncestor
	axisAncestorOrSelf
	axisFollowingSibling
	axisPrecedingSibling
)

// axisByName maps explicit axis syntax (axis::test) to axes.
var axisByName = map[string]axis{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"descendant-or-self": axisDescOrSelf,
	"attribute":          axisAttribute,
	"self":               axisSelf,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"ancestor-or-self":   axisAncestorOrSelf,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
}

// userFunc is a user-declared function from the query prolog.
type userFunc struct {
	name   string
	params []string
	body   Expr
}

// varDecl is a prolog variable declaration; external declarations must be
// bound by the caller.
type varDecl struct {
	name     string
	external bool
	init     Expr
}

// nodeTest matches nodes on an axis.
type nodeTest struct {
	name string // element/attribute name; "*" matches any; "" with kind set
	kind string // "", "text", "node", "comment", "element", "document-node"
}

// pathStep is one step of a path expression: either an axis step or a
// filter step (a primary expression filtered by predicates).
type pathStep struct {
	axis    axis
	test    nodeTest
	primary Expr // non-nil for filter steps; axis/test ignored then
	preds   []Expr
}

// pathExpr is a path expression. If absolute, evaluation starts at the root
// of the context node; if doubleSlash, a descendant-or-self step is
// prepended.
type pathExpr struct {
	absolute    bool
	doubleSlash bool
	steps       []pathStep
}

// varRef references a bound variable.
type varRef struct{ name string }

// literal is a constant atomic value.
type literal struct{ val Item }

// ctxItemExpr is ".".
type ctxItemExpr struct{}

// funcCall calls a built-in function.
type funcCall struct {
	name string
	args []Expr
}

// attrPart is a fragment of an attribute value template: either raw text
// (expr == nil) or an embedded expression.
type attrPart struct {
	text string
	expr Expr
}

// attrCtor constructs one attribute of a direct element constructor.
type attrCtor struct {
	name  string
	parts []attrPart
}

// elemCtor is a direct or computed element constructor. For direct
// constructors name is static; for computed ones nameExpr yields the name.
type elemCtor struct {
	name     string
	nameExpr Expr
	attrs    []attrCtor
	content  []Expr
}

// textCtor is a text{...} constructor or literal text inside an element
// constructor (expr == nil, text used verbatim).
type textCtor struct {
	text string
	expr Expr
}
