package xq

import (
	"testing"

	"wsda/internal/xmldoc"
)

// FuzzCompile checks the parser never panics and compiled queries never
// panic during evaluation — hostile query text is everyday input for a
// public registry endpoint.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"", "1", "1+", "//a", "//a[", "for $x in //a return $x",
		`<a b="{1}">{2}</a>`, "(((((", `"unterminated`,
		"declare variable $x := 1; $x",
		"declare function local:f($a) { local:f($a) }; local:f(1)",
		"1 to 9999999999999", "$x", ". instance of xs:integer",
		"some $x in 1 satisfies", "a/b/c/@d", "-(-(-1))",
		"let $x := <a/> return $x//b", "1 cast as xs:boolean",
		"(: comment :) 1", "(: unterminated", "a | b | @c",
		"//a[position() = last()]", "fn:count(1)", "xs:integer('3')",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := xmldoc.MustParse(`<r><a x="1">t</a><a x="2"/></r>`)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Compile(src)
		if err != nil {
			return
		}
		// Bound evaluation so pathological-but-valid queries terminate.
		_, _ = q.Eval(&Options{Context: doc, MaxSteps: 50_000})
	})
}
