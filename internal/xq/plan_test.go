package xq

import (
	"strings"
	"testing"

	"wsda/internal/xmldoc"
)

func mustPlan(t *testing.T, src string) *TuplePlan {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	p, ok := q.DiscoveryPlan()
	if !ok {
		t.Fatalf("expected %q to be plannable", src)
	}
	return p
}

func TestDiscoveryPlanShapes(t *testing.T) {
	plannable := []string{
		`/tupleset/tuple`,
		`/tupleset/tuple[@link="http://a/b"]`,
		`/tupleset/tuple[@type="service"][@ctx="child"]`,
		`/tupleset/tuple[@type="service" and @owner="cms"]`,
		`/tupleset/tuple[@type="service" or @ctx="child"]`,
		`/tupleset/tuple[@ctx=""]`,
		`/tupleset/tuple[content]`,
		`/tupleset/tuple[content/service/@domain="cern.ch"]`,
		`/tupleset/tuple[@type="service"]/@link`,
		`/tupleset/tuple/@*`,
		`/tupleset/tuple/content/service[@domain="cern.ch"]`,
		`/tupleset/tuple/content/service[attr[@name="kind"]/@value="replica-catalog"]`,
		`/tupleset/tuple/content/service[interface[@type="XQuery"]/operation/bind/@protocol="http"]`,
		`/tupleset/tuple/content/service[@load=0.25]`,
		`/tupleset/tuple["x"=@type]`, // literal on the left
	}
	for _, src := range plannable {
		mustPlan(t, src)
	}

	unplannable := []string{
		`count(/tupleset/tuple)`,          // function call root
		`string(/tupleset/@registry)`,     // not the tuple path shape
		`/tupleset`,                       // too short
		`/tupleset/tuple[1]`,              // positional predicate
		`/tupleset/tuple[last()]`,         // function in predicate
		`/tupleset/tuple[@type!="x"]`,     // unsupported operator
		`/tupleset/tuple[@year>2000]`,     // ordering comparison
		`/tupleset/tuple[not(@type="x")]`, // function in predicate
		`//tuple`,                         // descendant axis
		`/tupleset/tuple/..`,              // non-child/attribute step
		`/tupleset/tuple[$v=@type]`,       // external variable
		`/tupleset/tuple[@type=$v]`,       // external variable
		`for $t in /tupleset/tuple return $t`,
		`declare variable $x := 1; /tupleset/tuple`,
		`/tupleset/tuple[text()]`,       // kind test
		`/tupleset/tuple[@a="1" + "2"]`, // computed operand
	}
	for _, src := range unplannable {
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if p, ok := q.DiscoveryPlan(); ok {
			t.Errorf("expected %q to be unplannable, got plan %+v", src, p)
		}
	}
}

func TestDiscoveryPlanAttrEq(t *testing.T) {
	p := mustPlan(t, `/tupleset/tuple[@type="service" and @owner="cms"][content]`)
	if p.AttrEq["type"] != "service" || p.AttrEq["owner"] != "cms" {
		t.Fatalf("AttrEq = %v", p.AttrEq)
	}
	if len(p.Residual) != 1 {
		t.Fatalf("residual = %d, want 1 (the existence test)", len(p.Residual))
	}
	if p.Never {
		t.Fatal("unexpected Never")
	}

	// Contradictory equalities are statically empty.
	p = mustPlan(t, `/tupleset/tuple[@type="a"][@type="b"]`)
	if !p.Never {
		t.Fatal("expected Never for contradictory equalities")
	}
	// Repeating the same equality is satisfiable.
	p = mustPlan(t, `/tupleset/tuple[@type="a" and @type="a"]`)
	if p.Never {
		t.Fatal("unexpected Never for duplicate identical equality")
	}

	// Empty literals must stay residual: an absent attribute is not an
	// empty one.
	p = mustPlan(t, `/tupleset/tuple[@ctx=""]`)
	if _, ok := p.AttrEq["ctx"]; ok {
		t.Fatal("empty-string equality must not be pushed into AttrEq")
	}
	if len(p.Residual) != 1 {
		t.Fatalf("residual = %d, want 1", len(p.Residual))
	}
}

func TestWalkPlan(t *testing.T) {
	doc, err := xmldoc.ParseString(
		`<tuple link="l" type="service"><content><service domain="cern.ch">` +
			`<attr name="kind" value="monitor"/><attr name="load" value="0.25"/>` +
			`</service></content></tuple>`)
	if err != nil {
		t.Fatal(err)
	}
	el := doc.DocumentElement()

	p := mustPlan(t, `/tupleset/tuple/content/service/attr[@name="kind"]/@value`)
	var got []string
	WalkPlan(el, p.Proj, func(n *xmldoc.Node) bool {
		got = append(got, n.StringValue())
		return true
	})
	if strings.Join(got, ",") != "monitor" {
		t.Fatalf("walk = %v", got)
	}

	// Early stop.
	p = mustPlan(t, `/tupleset/tuple/content/service/attr`)
	calls := 0
	completed := WalkPlan(el, p.Proj, func(*xmldoc.Node) bool { calls++; return false })
	if completed || calls != 1 {
		t.Fatalf("early stop: completed=%v calls=%d", completed, calls)
	}

	// Numeric-literal predicate uses number coercion.
	p = mustPlan(t, `/tupleset/tuple[content/service/attr/@value=0.25]`)
	for _, pred := range p.Residual {
		if !pred(el) {
			t.Fatal("numeric residual predicate should match 0.25")
		}
	}
	p = mustPlan(t, `/tupleset/tuple[content/service/attr/@value=0.26]`)
	for _, pred := range p.Residual {
		if pred(el) {
			t.Fatal("numeric residual predicate should not match 0.26")
		}
	}
}
