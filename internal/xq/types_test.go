package xq

import (
	"strings"
	"testing"
)

func TestInstanceOf(t *testing.T) {
	cases := map[string]string{
		`1 instance of xs:integer`:                     "true",
		`1 instance of xs:string`:                      "false",
		`1.5 instance of xs:decimal`:                   "true",
		`1.5 instance of xs:integer`:                   "false",
		`"x" instance of xs:string`:                    "true",
		`true() instance of xs:boolean`:                "true",
		`(1, 2) instance of xs:integer`:                "false",
		`(1, 2) instance of xs:integer*`:               "true",
		`(1, 2) instance of xs:integer+`:               "true",
		`() instance of xs:integer?`:                   "true",
		`() instance of xs:integer+`:                   "false",
		`() instance of empty-sequence()`:              "true",
		`1 instance of empty-sequence()`:               "false",
		`(//service)[1] instance of element()`:         "true",
		`(//service)[1] instance of node()`:            "true",
		`(//service)[1] instance of xs:string`:         "false",
		`//service instance of element()*`:             "true",
		`//service instance of element()`:              "false", // three of them
		`(//load/text())[1] instance of text()`:        "true",
		`(1, "x") instance of item()*`:                 "true",
		`(/) instance of document-node()`:              "true",
		`(//service/@name)[1] instance of attribute()`: "true",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestCastAs(t *testing.T) {
	cases := map[string]string{
		`"42" cast as xs:integer`:                   "42",
		`"4.5" cast as xs:double`:                   "4.5",
		`42 cast as xs:string`:                      "42",
		`1 cast as xs:boolean`:                      "true",
		`0 cast as xs:boolean`:                      "false",
		`"true" cast as xs:boolean`:                 "true",
		`3.9 cast as xs:integer`:                    "3",
		`true() cast as xs:integer`:                 "1",
		`("5") cast as xs:integer + 1`:              "6",
		`string((//load)[1]) cast as xs:double * 2`: "0.7",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	// The cast result is typed, not just stringly.
	if got := evalOne(t, `("7" cast as xs:integer) instance of xs:integer`); got != "true" {
		t.Errorf("cast type = %s", got)
	}
	// Failing casts error.
	for _, src := range []string{
		`"abc" cast as xs:integer`,
		`"1.5" cast as xs:integer`,
		`"maybe" cast as xs:boolean`,
		`() cast as xs:integer`,
		`(1, 2) cast as xs:integer`,
	} {
		if _, err := EvalString(src, doc(t)); err == nil {
			t.Errorf("%s succeeded", src)
		}
	}
	// Empty with optional target yields empty.
	if got := evalStrings(t, `() cast as xs:integer?`); len(got) != 0 {
		t.Errorf("empty cast = %v", got)
	}
}

func TestCastableAs(t *testing.T) {
	cases := map[string]string{
		`"42" castable as xs:integer`:  "true",
		`"4x2" castable as xs:integer`: "false",
		`"4.5" castable as xs:double`:  "true",
		`"yes" castable as xs:boolean`: "false",
		`"1" castable as xs:boolean`:   "true",
		`() castable as xs:integer?`:   "true",
		`() castable as xs:integer`:    "false",
		`(1, 2) castable as xs:string`: "false",
	}
	for src, want := range cases {
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	// Discovery use: validate attributes before numeric filtering.
	got := evalOne(t, `count(//service[load castable as xs:double])`)
	if got != "3" {
		t.Errorf("castable filter = %s", got)
	}
}

func TestIntersectExcept(t *testing.T) {
	if got := evalOne(t, `count(//service intersect //service[@domain="cern.ch"])`); got != "2" {
		t.Errorf("intersect = %s", got)
	}
	if got := evalOne(t, `count(//service except //service[@domain="cern.ch"])`); got != "1" {
		t.Errorf("except = %s", got)
	}
	if got := evalOne(t, `count(//service except //service)`); got != "0" {
		t.Errorf("self except = %s", got)
	}
	// Results come back in document order.
	got := evalStrings(t, `for $s in (//service except //service[@name="scheduler"]) return string($s/@name)`)
	if strings.Join(got, ",") != "replica-catalog,storage" {
		t.Errorf("except order = %v", got)
	}
	// Atomics are rejected.
	if _, err := EvalString(`(1, 2) intersect (2)`, doc(t)); err == nil {
		t.Error("atomic intersect accepted")
	}
}

func TestTypeParseErrors(t *testing.T) {
	for _, src := range []string{
		`1 instance of xs:nosuch`,
		`1 cast as`,
		`1 castable as 5`,
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
	// Occurrence indicator must be adjacent: "xs:integer *" is a type then
	// a multiplication, which needs a right operand.
	if _, err := Compile(`(1,2) instance of xs:integer *`); err == nil {
		t.Error("dangling * accepted")
	}
	// And with an operand it IS a multiplication over the boolean... which
	// fails at eval (boolean arithmetic), not parse.
	q, err := Compile(`(1 instance of xs:integer) * 2`)
	if err != nil {
		t.Fatalf("parenthesized: %v", err)
	}
	_ = q
}
