package xq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF     tokKind = iota
	tokName            // identifier or keyword: for, let, div, element names
	tokVar             // $name
	tokString          // "..." or '...'
	tokInteger         // 42
	tokDecimal         // 4.2
	tokSymbol          // punctuation and operators
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokName:
		return "name"
	case tokVar:
		return "variable"
	case tokString:
		return "string literal"
	case tokInteger:
		return "integer literal"
	case tokDecimal:
		return "decimal literal"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is a single lexical token with its source span.
type token struct {
	kind tokKind
	text string
	pos  int // byte offset of the first character
	end  int // byte offset just past the token
}

// lexer scans tokens on demand from src. The parser can rewind it to an
// arbitrary byte offset, which is how direct element constructors switch
// between expression tokens and raw XML content.
type lexer struct {
	src string
	pos int
	buf []token // lookahead buffer
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// errorf produces a positioned syntax error.
func (lx *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("xq: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// rewind discards buffered lookahead and continues scanning at off.
func (lx *lexer) rewind(off int) {
	lx.buf = lx.buf[:0]
	lx.pos = off
}

// peek returns the i-th upcoming token (0 = next) without consuming it.
func (lx *lexer) peek(i int) (token, error) {
	for len(lx.buf) <= i {
		t, err := lx.scan()
		if err != nil {
			return token{}, err
		}
		lx.buf = append(lx.buf, t)
	}
	return lx.buf[i], nil
}

// next consumes and returns the next token.
func (lx *lexer) next() (token, error) {
	t, err := lx.peek(0)
	if err != nil {
		return token{}, err
	}
	lx.buf = lx.buf[1:]
	return t, nil
}

var twoCharSymbols = []string{"//", "..", ":=", "<=", ">=", "!=", "<<", ">>", "||"}

// scan reads one token from the raw input.
func (lx *lexer) scan() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start, end: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '$':
		lx.pos++
		name := lx.scanName()
		if name == "" {
			return token{}, lx.errorf(start, "expected variable name after $")
		}
		return token{kind: tokVar, text: name, pos: start, end: lx.pos}, nil
	case c == '"' || c == '\'':
		s, err := lx.scanString(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start, end: lx.pos}, nil
	case c >= '0' && c <= '9' || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		return lx.scanNumber()
	case isNameStart(rune(c)) || c >= utf8.RuneSelf:
		name := lx.scanName()
		if name == "" {
			return token{}, lx.errorf(start, "unexpected character %q", c)
		}
		return token{kind: tokName, text: name, pos: start, end: lx.pos}, nil
	}
	// Symbols.
	if lx.pos+1 < len(lx.src) {
		two := lx.src[lx.pos : lx.pos+2]
		for _, s := range twoCharSymbols {
			if two == s {
				lx.pos += 2
				return token{kind: tokSymbol, text: s, pos: start, end: lx.pos}, nil
			}
		}
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', '.', '/', '@', '|', '+', '-', '*', '=', '<', '>', ';', '?':
		lx.pos++
		return token{kind: tokSymbol, text: string(c), pos: start, end: lx.pos}, nil
	}
	return token{}, lx.errorf(start, "unexpected character %q", c)
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		// XQuery comments: (: ... :) with nesting.
		if c == '(' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == ':' {
			depth := 0
			i := lx.pos
			for i < len(lx.src) {
				if i+1 < len(lx.src) && lx.src[i] == '(' && lx.src[i+1] == ':' {
					depth++
					i += 2
					continue
				}
				if i+1 < len(lx.src) && lx.src[i] == ':' && lx.src[i+1] == ')' {
					depth--
					i += 2
					if depth == 0 {
						break
					}
					continue
				}
				i++
			}
			lx.pos = i
			continue
		}
		return
	}
}

func (lx *lexer) scanName() string {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if lx.pos == start {
			if !isNameStart(r) {
				break
			}
		} else if !isNameChar(r) {
			break
		}
		lx.pos += size
	}
	return lx.src[start:lx.pos]
}

func (lx *lexer) scanString(quote byte) (string, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == quote {
				sb.WriteByte(quote)
				lx.pos += 2
				continue
			}
			lx.pos++
			return sb.String(), nil
		}
		if c == '&' {
			rep, n, ok := scanEntity(lx.src[lx.pos:])
			if ok {
				sb.WriteString(rep)
				lx.pos += n
				continue
			}
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return "", lx.errorf(start, "unterminated string literal")
}

func (lx *lexer) scanNumber() (token, error) {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if isDigit(c) {
			lx.pos++
			continue
		}
		if c == '.' && !seenDot && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			seenDot = true
			lx.pos++
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	kind := tokInteger
	if seenDot {
		kind = tokDecimal
	}
	return token{kind: kind, text: text, pos: start, end: lx.pos}, nil
}

// scanEntity decodes a leading XML entity reference like &lt; returning the
// replacement, the number of bytes consumed, and whether it matched.
func scanEntity(s string) (string, int, bool) {
	ents := map[string]string{
		"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": `"`, "&apos;": "'",
	}
	for e, rep := range ents {
		if strings.HasPrefix(s, e) {
			return rep, len(e), true
		}
	}
	return "", 0, false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	// Allows QName-ish names with prefixes and hyphens (fn names like
	// starts-with, local-name).
	return r == '_' || r == '-' || r == '.' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
