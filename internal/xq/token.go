package xq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF     tokKind = iota
	tokName            // identifier or keyword: for, let, div, element names
	tokVar             // $name
	tokString          // "..." or '...'
	tokInteger         // 42
	tokDecimal         // 4.2
	tokSymbol          // punctuation and operators
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokName:
		return "name"
	case tokVar:
		return "variable"
	case tokString:
		return "string literal"
	case tokInteger:
		return "integer literal"
	case tokDecimal:
		return "decimal literal"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is a single lexical token with its source span.
type token struct {
	kind tokKind
	text string
	pos  int // byte offset of the first character
	end  int // byte offset just past the token
}

// The scanner is a table-driven DFA over byte classes: every input byte
// maps through byteClass to a small alphabet, and dfa[state][class] gives
// the next scanner state (stateStop ends the token). ASCII names, numbers
// and whitespace run entirely through the tables; bytes >= 0x80 drop to a
// rune-decoding slow path with the same unicode name rules as before.

// Byte classes — the DFA's input alphabet.
const (
	classOther  uint8 = iota // bytes that can never start or extend a token
	classSpace               // space, tab, CR, LF
	classDigit               // 0-9
	classNameA               // ASCII letter or '_': starts and extends names
	classNameC               // '-' and ':': extend names, never start them
	classDot                 // '.': extends names, starts numbers and symbols
	classQuote               // '"' and '\''
	classDollar              // '$'
	classSym                 // punctuation that starts a symbol token
	classHigh                // bytes >= 0x80 (multi-byte UTF-8)
	numClasses
)

// Scanner states. stateStop is the zero value so that every transition
// the tables leave unspecified terminates the current token.
const (
	stateStop uint8 = iota // terminal: token ends before this byte
	stateName              // inside a name
	stateInt               // inside the integer part of a number
	stateFrac              // inside the fractional part of a number
	numStates
)

// byteClass maps each input byte to its DFA class.
var byteClass [256]uint8

// dfa is the transition table: dfa[state][class] = next state. The
// stateInt -> stateFrac edge on classDot is additionally guarded by a
// one-byte digit lookahead in scan (so "1.2.3" lexes as "1.2" ".3" and
// "1." as "1" "."), matching the previous hand-rolled scanner.
var dfa [numStates][numClasses]uint8

// singleSym marks the one-character symbol tokens.
var singleSym [256]bool

func init() {
	for c := 0x80; c < 0x100; c++ {
		byteClass[c] = classHigh
	}
	for _, c := range []byte{' ', '\t', '\n', '\r'} {
		byteClass[c] = classSpace
	}
	for c := '0'; c <= '9'; c++ {
		byteClass[c] = classDigit
	}
	for c := 'a'; c <= 'z'; c++ {
		byteClass[c] = classNameA
	}
	for c := 'A'; c <= 'Z'; c++ {
		byteClass[c] = classNameA
	}
	byteClass['_'] = classNameA
	byteClass['-'] = classNameC
	byteClass[':'] = classNameC
	byteClass['.'] = classDot
	byteClass['"'] = classQuote
	byteClass['\''] = classQuote
	byteClass['$'] = classDollar
	for _, c := range []byte("()[]{},/@|+*=<>;?!") {
		byteClass[c] = classSym
	}

	dfa[stateName][classNameA] = stateName
	dfa[stateName][classNameC] = stateName
	dfa[stateName][classDigit] = stateName
	dfa[stateName][classDot] = stateName
	dfa[stateName][classHigh] = stateName // verified by rune decode in scan
	dfa[stateInt][classDigit] = stateInt
	dfa[stateInt][classDot] = stateFrac // guarded by digit lookahead
	dfa[stateFrac][classDigit] = stateFrac

	for _, c := range []byte("()[]{},./@|+-*=<>;?") {
		singleSym[c] = true
	}
}

// lexer scans tokens on demand from src. The parser can rewind it to an
// arbitrary byte offset, which is how direct element constructors switch
// between expression tokens and raw XML content.
type lexer struct {
	src string
	pos int
	buf []token  // lookahead buffer, backed by arr until it overflows
	arr [8]token // inline backing store: lookahead never allocates
}

func newLexer(src string) *lexer {
	lx := &lexer{src: src}
	lx.buf = lx.arr[:0]
	return lx
}

// errorf produces a positioned syntax error.
func (lx *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("xq: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// rewind discards buffered lookahead and continues scanning at off.
func (lx *lexer) rewind(off int) {
	lx.buf = lx.buf[:0]
	lx.pos = off
}

// peek returns the i-th upcoming token (0 = next) without consuming it.
func (lx *lexer) peek(i int) (token, error) {
	for len(lx.buf) <= i {
		t, err := lx.scan()
		if err != nil {
			return token{}, err
		}
		lx.buf = append(lx.buf, t)
	}
	return lx.buf[i], nil
}

// next consumes and returns the next token. The buffer shifts down in
// place so its capacity (and inline backing array) is reused instead of
// reallocating as the slice head advances.
func (lx *lexer) next() (token, error) {
	t, err := lx.peek(0)
	if err != nil {
		return token{}, err
	}
	n := copy(lx.buf, lx.buf[1:])
	lx.buf = lx.buf[:n]
	return t, nil
}

// ScanTokens lexes src to end of input and returns the number of tokens
// scanned (excluding EOF). It exists so benchmarks and tests can drive
// the scanner directly, without the parser on top.
func ScanTokens(src string) (int, error) {
	lx := newLexer(src)
	n := 0
	for {
		t, err := lx.scan()
		if err != nil {
			return n, err
		}
		if t.kind == tokEOF {
			return n, nil
		}
		n++
	}
}

// scan reads one token from the raw input by running the DFA.
func (lx *lexer) scan() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start, end: start}, nil
	}
	c := lx.src[lx.pos]
	switch byteClass[c] {
	case classDollar:
		lx.pos++
		name := lx.scanName()
		if name == "" {
			return token{}, lx.errorf(start, "expected variable name after $")
		}
		return token{kind: tokVar, text: name, pos: start, end: lx.pos}, nil
	case classQuote:
		s, err := lx.scanString(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start, end: lx.pos}, nil
	case classDigit:
		return lx.runDFA(stateInt), nil
	case classDot:
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			lx.pos++ // consume '.'; the digit run continues in stateFrac
			t := lx.runDFA(stateFrac)
			t.pos = start
			t.text = lx.src[start:lx.pos]
			t.kind = tokDecimal
			return t, nil
		}
		// Falls through to symbol handling below ('.' or "..").
	case classNameA:
		return lx.runDFA(stateName), nil
	case classHigh:
		name := lx.scanName()
		if name == "" {
			return token{}, lx.errorf(start, "unexpected character %q", c)
		}
		return token{kind: tokName, text: name, pos: start, end: lx.pos}, nil
	}
	// Symbols.
	if lx.pos+1 < len(lx.src) {
		switch lx.src[lx.pos : lx.pos+2] {
		case "//", "..", ":=", "<=", ">=", "!=", "<<", ">>", "||":
			two := lx.src[lx.pos : lx.pos+2]
			lx.pos += 2
			return token{kind: tokSymbol, text: two, pos: start, end: lx.pos}, nil
		}
	}
	if singleSym[c] {
		lx.pos++
		return token{kind: tokSymbol, text: string(c), pos: start, end: lx.pos}, nil
	}
	return token{}, lx.errorf(start, "unexpected character %q", c)
}

// runDFA consumes input from the given start state until the transition
// table stops, producing the finished name or number token. High bytes
// inside a name re-check the decoded rune against the unicode name rules;
// the stateInt -> stateFrac edge applies the one-digit lookahead guard.
func (lx *lexer) runDFA(state uint8) token {
	src := lx.src
	start := lx.pos
	seenFrac := state == stateFrac
	for lx.pos < len(src) {
		cl := byteClass[src[lx.pos]]
		next := dfa[state][cl]
		if next == stateStop {
			break
		}
		if cl == classHigh {
			// Multi-byte rune inside a name: decode and apply the full
			// unicode name-character rule.
			r, size := utf8.DecodeRuneInString(src[lx.pos:])
			if !isNameChar(r) {
				break
			}
			lx.pos += size
			continue
		}
		if state == stateInt && next == stateFrac {
			if lx.pos+1 >= len(src) || !isDigit(src[lx.pos+1]) {
				break
			}
			seenFrac = true
		}
		state = next
		lx.pos++
	}
	kind := tokName
	switch {
	case state == stateInt:
		kind = tokInteger
	case state == stateFrac || seenFrac:
		kind = tokDecimal
	}
	return token{kind: kind, text: src[start:lx.pos], pos: start, end: lx.pos}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if byteClass[c] == classSpace {
			lx.pos++
			continue
		}
		// XQuery comments: (: ... :) with nesting.
		if c == '(' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == ':' {
			depth := 0
			i := lx.pos
			for i < len(lx.src) {
				if i+1 < len(lx.src) && lx.src[i] == '(' && lx.src[i+1] == ':' {
					depth++
					i += 2
					continue
				}
				if i+1 < len(lx.src) && lx.src[i] == ':' && lx.src[i+1] == ')' {
					depth--
					i += 2
					if depth == 0 {
						break
					}
					continue
				}
				i++
			}
			lx.pos = i
			continue
		}
		return
	}
}

// scanName scans a name whose first rune may be outside ASCII; ASCII-only
// names are handled by the DFA and never reach here.
func (lx *lexer) scanName() string {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if lx.pos == start {
			if !isNameStart(r) {
				break
			}
		} else if !isNameChar(r) {
			break
		}
		lx.pos += size
	}
	return lx.src[start:lx.pos]
}

// scanString scans a quoted literal. The common case — no entity
// references, no doubled-quote escapes — returns a substring of the
// source without copying; only literals that actually need rewriting
// build a new string.
func (lx *lexer) scanString(quote byte) (string, error) {
	start := lx.pos
	lx.pos++ // opening quote
	i := lx.pos
	for i < len(lx.src) {
		c := lx.src[i]
		if c == quote {
			if i+1 < len(lx.src) && lx.src[i+1] == quote {
				break // doubled-quote escape: rewrite needed
			}
			s := lx.src[lx.pos:i]
			lx.pos = i + 1
			return s, nil
		}
		if c == '&' {
			if _, _, ok := scanEntity(lx.src[i:]); ok {
				break // entity reference: rewrite needed
			}
		}
		i++
	}
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == quote {
				sb.WriteByte(quote)
				lx.pos += 2
				continue
			}
			lx.pos++
			return sb.String(), nil
		}
		if c == '&' {
			rep, n, ok := scanEntity(lx.src[lx.pos:])
			if ok {
				sb.WriteString(rep)
				lx.pos += n
				continue
			}
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return "", lx.errorf(start, "unterminated string literal")
}

// entities are the predeclared XML entity references recognized in string
// literals and constructor content.
var entities = [...]struct{ name, rep string }{
	{"&lt;", "<"}, {"&gt;", ">"}, {"&amp;", "&"}, {"&quot;", `"`}, {"&apos;", "'"},
}

// scanEntity decodes a leading XML entity reference like &lt; returning the
// replacement, the number of bytes consumed, and whether it matched.
func scanEntity(s string) (string, int, bool) {
	for _, e := range &entities {
		if strings.HasPrefix(s, e.name) {
			return e.rep, len(e.name), true
		}
	}
	return "", 0, false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	// Allows QName-ish names with prefixes and hyphens (fn names like
	// starts-with, local-name).
	return r == '_' || r == '-' || r == '.' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
