package xq

import (
	"strings"
	"unicode/utf8"

	"wsda/internal/xmldoc"
)

// attrExpr is a computed attribute constructor: attribute name {expr}.
type attrExpr struct {
	name string
	val  Expr
}

func (e *attrExpr) eval(c *evalCtx) (Sequence, error) {
	v, err := e.val.eval(c)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for i, it := range Atomize(v) {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(StringValue(it))
	}
	return Singleton(xmldoc.NewAttr(e.name, sb.String())), nil
}

// parseDirectCtor parses a direct element constructor like
//
//	<result count="{count($x)}">{$x/name} items</result>
//
// The '<' token lt has been peeked but not consumed; parsing proceeds at the
// character level from lt.end, calling back into the token parser for
// embedded expressions, and finally rewinds the lexer past the constructor.
func (p *parser) parseDirectCtor(lt token) (Expr, error) {
	// Constructor only if '<' is immediately followed by a name character.
	r, _ := utf8.DecodeRuneInString(p.lx.src[lt.end:])
	if !isNameStart(r) {
		return nil, p.lx.errorf(lt.pos, "unexpected %q", "<")
	}
	p.lx.next() // consume '<'
	ctor, off, err := p.parseCtorAt(lt.end)
	if err != nil {
		return nil, err
	}
	p.lx.rewind(off)
	return ctor, nil
}

// parseCtorAt parses an element constructor whose tag name starts at byte
// offset off (just past '<'). It returns the constructor and the offset just
// past the closing tag.
func (p *parser) parseCtorAt(off int) (*elemCtor, int, error) {
	src := p.lx.src
	name, off := scanRawName(src, off)
	if name == "" {
		return nil, 0, p.lx.errorf(off, "expected element name in constructor")
	}
	ctor := &elemCtor{name: name}
	// Attributes.
	for {
		off = skipRawSpace(src, off)
		if off >= len(src) {
			return nil, 0, p.lx.errorf(off, "unterminated start tag <%s", name)
		}
		if src[off] == '/' {
			if off+1 >= len(src) || src[off+1] != '>' {
				return nil, 0, p.lx.errorf(off, "expected /> in start tag")
			}
			return ctor, off + 2, nil
		}
		if src[off] == '>' {
			off++
			break
		}
		var attr attrCtor
		attr.name, off = scanRawName(src, off)
		if attr.name == "" {
			return nil, 0, p.lx.errorf(off, "expected attribute name in <%s>", name)
		}
		off = skipRawSpace(src, off)
		if off >= len(src) || src[off] != '=' {
			return nil, 0, p.lx.errorf(off, "expected = after attribute %s", attr.name)
		}
		off = skipRawSpace(src, off+1)
		if off >= len(src) || (src[off] != '"' && src[off] != '\'') {
			return nil, 0, p.lx.errorf(off, "expected quoted value for attribute %s", attr.name)
		}
		var err error
		attr.parts, off, err = p.parseAttrValue(off)
		if err != nil {
			return nil, 0, err
		}
		ctor.attrs = append(ctor.attrs, attr)
	}
	// Content until matching </name>.
	var text strings.Builder
	flush := func() {
		if text.Len() == 0 {
			return
		}
		s := text.String()
		text.Reset()
		// Boundary whitespace is stripped (XQuery default boundary-space).
		if strings.TrimSpace(s) == "" {
			return
		}
		ctor.content = append(ctor.content, &textCtor{text: s})
	}
	for off < len(src) {
		c := src[off]
		switch c {
		case '{':
			if off+1 < len(src) && src[off+1] == '{' {
				text.WriteByte('{')
				off += 2
				continue
			}
			flush()
			e, n, err := p.parseEmbedded(off + 1)
			if err != nil {
				return nil, 0, err
			}
			ctor.content = append(ctor.content, e)
			off = n
		case '}':
			if off+1 < len(src) && src[off+1] == '}' {
				text.WriteByte('}')
				off += 2
				continue
			}
			return nil, 0, p.lx.errorf(off, "unescaped } in element content")
		case '<':
			if strings.HasPrefix(src[off:], "</") {
				flush()
				end, o := scanRawName(src, off+2)
				o = skipRawSpace(src, o)
				if o >= len(src) || src[o] != '>' {
					return nil, 0, p.lx.errorf(off, "malformed end tag")
				}
				if end != name {
					return nil, 0, p.lx.errorf(off, "end tag </%s> does not match <%s>", end, name)
				}
				return ctor, o + 1, nil
			}
			if strings.HasPrefix(src[off:], "<!--") {
				i := strings.Index(src[off+4:], "-->")
				if i < 0 {
					return nil, 0, p.lx.errorf(off, "unterminated comment")
				}
				off += 4 + i + 3
				continue
			}
			flush()
			child, n, err := p.parseCtorAt(off + 1)
			if err != nil {
				return nil, 0, err
			}
			ctor.content = append(ctor.content, child)
			off = n
		case '&':
			if rep, n, ok := scanEntity(src[off:]); ok {
				text.WriteString(rep)
				off += n
				continue
			}
			text.WriteByte('&')
			off++
		default:
			text.WriteByte(c)
			off++
		}
	}
	return nil, 0, p.lx.errorf(off, "missing end tag </%s>", name)
}

// parseAttrValue parses a quoted attribute value template starting at the
// opening quote, returning its parts and the offset past the closing quote.
func (p *parser) parseAttrValue(off int) ([]attrPart, int, error) {
	src := p.lx.src
	quote := src[off]
	off++
	var parts []attrPart
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, attrPart{text: text.String()})
			text.Reset()
		}
	}
	for off < len(src) {
		c := src[off]
		switch {
		case c == quote:
			flush()
			return parts, off + 1, nil
		case c == '{':
			if off+1 < len(src) && src[off+1] == '{' {
				text.WriteByte('{')
				off += 2
				continue
			}
			flush()
			e, n, err := p.parseEmbedded(off + 1)
			if err != nil {
				return nil, 0, err
			}
			parts = append(parts, attrPart{expr: e})
			off = n
		case c == '}':
			if off+1 < len(src) && src[off+1] == '}' {
				text.WriteByte('}')
				off += 2
				continue
			}
			return nil, 0, p.lx.errorf(off, "unescaped } in attribute value")
		case c == '&':
			if rep, n, ok := scanEntity(src[off:]); ok {
				text.WriteString(rep)
				off += n
				continue
			}
			text.WriteByte('&')
			off++
		default:
			text.WriteByte(c)
			off++
		}
	}
	return nil, 0, p.lx.errorf(off, "unterminated attribute value")
}

// parseEmbedded parses an embedded {expression} starting just past the '{'.
// It returns the expression and the offset just past the matching '}'.
func (p *parser) parseEmbedded(off int) (Expr, int, error) {
	p.lx.rewind(off)
	e, err := p.parseExpr()
	if err != nil {
		return nil, 0, err
	}
	t, err := p.lx.next()
	if err != nil {
		return nil, 0, err
	}
	if t.kind != tokSymbol || t.text != "}" {
		return nil, 0, p.lx.errorf(t.pos, "expected } after embedded expression, got %q", t.text)
	}
	return e, t.end, nil
}

func scanRawName(src string, off int) (string, int) {
	start := off
	for off < len(src) {
		r, size := utf8.DecodeRuneInString(src[off:])
		if off == start {
			if !isNameStart(r) {
				break
			}
		} else if !isNameChar(r) {
			break
		}
		off += size
	}
	return src[start:off], off
}

func skipRawSpace(src string, off int) int {
	for off < len(src) {
		switch src[off] {
		case ' ', '\t', '\n', '\r':
			off++
		default:
			return off
		}
	}
	return off
}
