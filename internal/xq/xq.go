package xq

import (
	"errors"
	"fmt"
	"sync"

	"wsda/internal/xmldoc"
)

// Query is a compiled, reusable, goroutine-safe XQuery expression,
// together with its prolog's variable and function declarations.
type Query struct {
	src   string
	expr  Expr
	decls []varDecl
	funcs map[string]*userFunc

	// Discovery-plan memo: DiscoveryPlan pattern-matches the AST at most
	// once per compiled query (nil plan = not plannable).
	planOnce sync.Once
	plan     *TuplePlan
}

// Compile parses src into a Query.
func Compile(src string) (*Query, error) {
	p := &parser{lx: newLexer(src)}
	e, decls, funcs, err := p.parse()
	if err != nil {
		return nil, err
	}
	return &Query{src: src, expr: e, decls: decls, funcs: funcs}, nil
}

// MustCompile compiles src and panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the query text.
func (q *Query) Source() string { return q.src }

// Options configures one evaluation of a Query.
type Options struct {
	// Context is the initial context item (usually a document node). May be
	// nil for queries that do not navigate from the context.
	Context *xmldoc.Node
	// Vars provides external variable bindings ($name -> sequence).
	Vars map[string]Sequence
	// MaxSteps bounds evaluation work; 0 means unlimited. Exceeding it
	// returns an error (used by the registry to throttle hostile queries).
	MaxSteps int
	// Emit, when non-nil, receives each result item as soon as it is
	// produced. Returning false stops evaluation early without error
	// (pipelined execution, thesis Ch. 6.5). Eval then returns the items
	// produced so far only if they were also accumulated; with Emit set the
	// returned sequence is nil.
	Emit func(Item) bool
}

// Eval evaluates the query and returns the result sequence. With
// opts.Emit set, results are streamed to the callback instead and the
// returned sequence is nil.
func (q *Query) Eval(opts *Options) (Sequence, error) {
	if opts == nil {
		opts = &Options{}
	}
	ctx := &evalCtx{limit: opts.MaxSteps, steps: new(int), funcs: q.funcs}
	if opts.Context != nil {
		ctx.item = opts.Context
		ctx.pos, ctx.size = 1, 1
	}
	for name, val := range opts.Vars {
		ctx.vars = &env{name: name, val: val, parent: ctx.vars}
	}
	// Prolog variable declarations evaluate in order; external ones must
	// have been supplied through opts.Vars.
	for _, d := range q.decls {
		if d.external {
			if _, ok := ctx.vars.lookup(d.name); !ok {
				return nil, fmt.Errorf("xq: external variable $%s not bound", d.name)
			}
			continue
		}
		v, err := d.init.eval(ctx)
		if err != nil {
			return nil, fmt.Errorf("xq: declare variable $%s: %w", d.name, err)
		}
		ctx.vars = &env{name: d.name, val: v, parent: ctx.vars}
	}
	ctx.globals = ctx.vars
	if opts.Emit == nil {
		return q.expr.eval(ctx)
	}
	// Streaming mode: a top-level FLWOR pipes items out as they are
	// produced; any other expression emits its final sequence.
	ctx.emit = opts.Emit
	res, err := q.expr.eval(ctx)
	if errors.Is(err, errAborted) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if _, isFLWOR := q.expr.(*flworExpr); !isFLWOR {
		for _, it := range res {
			if !opts.Emit(it) {
				break
			}
		}
	}
	return nil, nil
}

// EvalDoc is a convenience wrapper: evaluate against a context document.
func (q *Query) EvalDoc(doc *xmldoc.Node) (Sequence, error) {
	return q.Eval(&Options{Context: doc})
}

// EvalString compiles and evaluates src against doc in one shot.
func EvalString(src string, doc *xmldoc.Node) (Sequence, error) {
	q, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return q.EvalDoc(doc)
}

// Serialize renders a result sequence as text: nodes as XML, atomics as
// their string values, items separated by newlines.
func Serialize(seq Sequence) string {
	out := ""
	for i, it := range seq {
		if i > 0 {
			out += "\n"
		}
		if n, ok := it.(*xmldoc.Node); ok {
			out += n.String()
		} else {
			out += StringValue(it)
		}
	}
	return out
}

// ErrNotPipelineable reports that a query's shape cannot stream results
// early (e.g. it aggregates or sorts).
var ErrNotPipelineable = fmt.Errorf("xq: query is not pipelineable")

// Pipelineable reports whether the compiled query can deliver results
// incrementally: a top-level FLWOR without order-by (thesis Ch. 6.5
// classifies such queries as having the "potential to immediately start
// piping in early results"). Aggregating functions at the top level and
// sorted FLWORs must see all input first.
func (q *Query) Pipelineable() bool {
	fl, ok := q.expr.(*flworExpr)
	if !ok {
		return false
	}
	return len(fl.orderBy) == 0
}
