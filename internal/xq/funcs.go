package xq

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"

	"wsda/internal/xmldoc"
)

// builtin describes a built-in function.
type builtin struct {
	minArgs int
	maxArgs int // -1 = variadic
	impl    func(c *evalCtx, args []Sequence) (Sequence, error)
}

// builtins is the function library. Names follow the XPath/XQuery core
// function namespace (fn:), written without prefix.
var builtins map[string]*builtin

func init() {
	builtins = map[string]*builtin{
		"true":  {0, 0, func(*evalCtx, []Sequence) (Sequence, error) { return Singleton(true), nil }},
		"false": {0, 0, func(*evalCtx, []Sequence) (Sequence, error) { return Singleton(false), nil }},
		"not": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			b, err := EffectiveBool(a[0])
			if err != nil {
				return nil, err
			}
			return Singleton(!b), nil
		}},
		"boolean": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			b, err := EffectiveBool(a[0])
			if err != nil {
				return nil, err
			}
			return Singleton(b), nil
		}},

		"count": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			return Singleton(int64(len(a[0]))), nil
		}},
		"empty": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			return Singleton(len(a[0]) == 0), nil
		}},
		"exists": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			return Singleton(len(a[0]) > 0), nil
		}},
		"sum": {1, 2, fnSum},
		"avg": {1, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			if len(a[0]) == 0 {
				return Empty, nil
			}
			s, err := fnSum(c, a[:1])
			if err != nil {
				return nil, err
			}
			return Singleton(NumberValue(s[0]) / float64(len(a[0]))), nil
		}},
		"min": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) { return fnMinMax(a[0], true) }},
		"max": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) { return fnMinMax(a[0], false) }},
		"number": {0, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			it, err := argOrCtx(c, a, 0)
			if err != nil {
				return nil, err
			}
			if it == nil {
				return Singleton(math.NaN()), nil
			}
			return Singleton(NumberValue(it)), nil
		}},
		"round":   {1, 1, fnNum1(func(f float64) float64 { return math.Floor(f + 0.5) })},
		"floor":   {1, 1, fnNum1(math.Floor)},
		"ceiling": {1, 1, fnNum1(math.Ceil)},
		"abs":     {1, 1, fnNum1(math.Abs)},

		"string": {0, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			it, err := argOrCtx(c, a, 0)
			if err != nil {
				return nil, err
			}
			if it == nil {
				return Singleton(""), nil
			}
			return Singleton(StringValue(it)), nil
		}},
		"concat": {2, -1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			var sb strings.Builder
			for _, s := range a {
				if len(s) > 1 {
					return nil, fmt.Errorf("xq: concat() argument is a sequence of %d items", len(s))
				}
				if len(s) == 1 {
					sb.WriteString(StringValue(s[0]))
				}
			}
			return Singleton(sb.String()), nil
		}},
		"contains":    {2, 2, fnStr2(strings.Contains)},
		"starts-with": {2, 2, fnStr2(strings.HasPrefix)},
		"ends-with":   {2, 2, fnStr2(strings.HasSuffix)},
		"substring-before": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			s, t := seqString(a[0]), seqString(a[1])
			if i := strings.Index(s, t); i >= 0 {
				return Singleton(s[:i]), nil
			}
			return Singleton(""), nil
		}},
		"substring-after": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			s, t := seqString(a[0]), seqString(a[1])
			if i := strings.Index(s, t); i >= 0 {
				return Singleton(s[i+len(t):]), nil
			}
			return Singleton(""), nil
		}},
		"substring": {2, 3, fnSubstring},
		"string-length": {0, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			it, err := argOrCtx(c, a, 0)
			if err != nil {
				return nil, err
			}
			if it == nil {
				return Singleton(int64(0)), nil
			}
			return Singleton(int64(len([]rune(StringValue(it))))), nil
		}},
		"normalize-space": {0, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			it, err := argOrCtx(c, a, 0)
			if err != nil {
				return nil, err
			}
			if it == nil {
				return Singleton(""), nil
			}
			return Singleton(strings.Join(strings.Fields(StringValue(it)), " ")), nil
		}},
		"upper-case": {1, 1, fnStr1(strings.ToUpper)},
		"lower-case": {1, 1, fnStr1(strings.ToLower)},
		"translate": {3, 3, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			s, from, to := seqString(a[0]), []rune(seqString(a[1])), []rune(seqString(a[2]))
			var sb strings.Builder
			for _, r := range s {
				idx := -1
				for i, f := range from {
					if f == r {
						idx = i
						break
					}
				}
				if idx < 0 {
					sb.WriteRune(r)
				} else if idx < len(to) {
					sb.WriteRune(to[idx])
				}
			}
			return Singleton(sb.String()), nil
		}},
		"string-join": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			parts := make([]string, len(a[0]))
			for i, it := range Atomize(a[0]) {
				parts[i] = StringValue(it)
			}
			return Singleton(strings.Join(parts, seqString(a[1]))), nil
		}},
		"tokenize": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			re, err := regexp.Compile(seqString(a[1]))
			if err != nil {
				return nil, fmt.Errorf("xq: tokenize: %w", err)
			}
			var out Sequence
			for _, p := range re.Split(seqString(a[0]), -1) {
				out = append(out, p)
			}
			return out, nil
		}},
		"matches": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			re, err := regexp.Compile(seqString(a[1]))
			if err != nil {
				return nil, fmt.Errorf("xq: matches: %w", err)
			}
			return Singleton(re.MatchString(seqString(a[0]))), nil
		}},
		"replace": {3, 3, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			re, err := regexp.Compile(seqString(a[1]))
			if err != nil {
				return nil, fmt.Errorf("xq: replace: %w", err)
			}
			return Singleton(re.ReplaceAllString(seqString(a[0]), seqString(a[2]))), nil
		}},

		"distinct-values": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			seen := make(map[string]bool)
			var out Sequence
			for _, it := range Atomize(a[0]) {
				k := fmt.Sprintf("%T\x00%s", it, StringValue(it))
				if isNumeric(it) {
					k = "num\x00" + StringValue(it)
				}
				if !seen[k] {
					seen[k] = true
					out = append(out, it)
				}
			}
			return out, nil
		}},
		"reverse": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			out := make(Sequence, len(a[0]))
			for i, it := range a[0] {
				out[len(a[0])-1-i] = it
			}
			return out, nil
		}},
		"subsequence": {2, 3, fnSubsequence},
		"index-of": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			var out Sequence
			if len(a[1]) != 1 {
				return nil, fmt.Errorf("xq: index-of() needs a singleton search value")
			}
			target := Atomize(a[1])[0]
			for i, it := range Atomize(a[0]) {
				if c, err := compareAtomic(it, target); err == nil && c == 0 {
					out = append(out, int64(i+1))
				}
			}
			return out, nil
		}},
		"insert-before": {3, 3, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			pos := int(NumberValue(Atomize(a[1])[0]))
			if pos < 1 {
				pos = 1
			}
			if pos > len(a[0])+1 {
				pos = len(a[0]) + 1
			}
			out := make(Sequence, 0, len(a[0])+len(a[2]))
			out = append(out, a[0][:pos-1]...)
			out = append(out, a[2]...)
			out = append(out, a[0][pos-1:]...)
			return out, nil
		}},
		"remove": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			pos := int(NumberValue(Atomize(a[1])[0]))
			if pos < 1 || pos > len(a[0]) {
				return a[0], nil
			}
			out := make(Sequence, 0, len(a[0])-1)
			out = append(out, a[0][:pos-1]...)
			out = append(out, a[0][pos:]...)
			return out, nil
		}},
		"deep-equal": {2, 2, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			return Singleton(DeepEqual(a[0], a[1])), nil
		}},
		"zero-or-one": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			if len(a[0]) > 1 {
				return nil, fmt.Errorf("xq: zero-or-one() got %d items", len(a[0]))
			}
			return a[0], nil
		}},
		"exactly-one": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			if len(a[0]) != 1 {
				return nil, fmt.Errorf("xq: exactly-one() got %d items", len(a[0]))
			}
			return a[0], nil
		}},

		"position": {0, 0, func(c *evalCtx, _ []Sequence) (Sequence, error) {
			if c.pos == 0 {
				return nil, fmt.Errorf("xq: position() outside of a context")
			}
			return Singleton(int64(c.pos)), nil
		}},
		"last": {0, 0, func(c *evalCtx, _ []Sequence) (Sequence, error) {
			if c.size == 0 {
				return nil, fmt.Errorf("xq: last() outside of a context")
			}
			return Singleton(int64(c.size)), nil
		}},

		"name":       {0, 1, fnName(func(n *xmldoc.Node) string { return n.Name })},
		"local-name": {0, 1, fnName(func(n *xmldoc.Node) string { return n.LocalName() })},
		"root": {0, 1, func(c *evalCtx, a []Sequence) (Sequence, error) {
			it, err := argOrCtx(c, a, 0)
			if err != nil {
				return nil, err
			}
			n, ok := it.(*xmldoc.Node)
			if !ok {
				return nil, fmt.Errorf("xq: root() requires a node")
			}
			return Singleton(n.Root()), nil
		}},
		"data": {1, 1, func(_ *evalCtx, a []Sequence) (Sequence, error) {
			return Atomize(a[0]), nil
		}},
	}
}

func fnSum(_ *evalCtx, a []Sequence) (Sequence, error) {
	if len(a[0]) == 0 {
		if len(a) == 2 {
			return a[1], nil
		}
		return Singleton(int64(0)), nil
	}
	allInt := true
	var fi float64
	var ii int64
	for _, it := range Atomize(a[0]) {
		if i, ok := it.(int64); ok {
			ii += i
			fi += float64(i)
			continue
		}
		allInt = false
		f := NumberValue(it)
		if math.IsNaN(f) {
			return nil, fmt.Errorf("xq: sum() over non-numeric value %q", StringValue(it))
		}
		fi += f
	}
	if allInt {
		return Singleton(ii), nil
	}
	return Singleton(fi), nil
}

func fnMinMax(seq Sequence, min bool) (Sequence, error) {
	if len(seq) == 0 {
		return Empty, nil
	}
	atoms := Atomize(seq)
	numeric := true
	for _, it := range atoms {
		if math.IsNaN(NumberValue(it)) {
			numeric = false
			break
		}
	}
	if numeric {
		best := NumberValue(atoms[0])
		for _, it := range atoms[1:] {
			f := NumberValue(it)
			if (min && f < best) || (!min && f > best) {
				best = f
			}
		}
		if best == math.Trunc(best) {
			return Singleton(int64(best)), nil
		}
		return Singleton(best), nil
	}
	strs := make([]string, len(atoms))
	for i, it := range atoms {
		strs[i] = StringValue(it)
	}
	sort.Strings(strs)
	if min {
		return Singleton(strs[0]), nil
	}
	return Singleton(strs[len(strs)-1]), nil
}

func fnSubstring(_ *evalCtx, a []Sequence) (Sequence, error) {
	s := []rune(seqString(a[0]))
	start := NumberValue(Atomize(a[1])[0])
	if math.IsNaN(start) {
		return Singleton(""), nil
	}
	end := float64(len(s)) + 1
	if len(a) == 3 {
		l := NumberValue(Atomize(a[2])[0])
		if math.IsNaN(l) {
			return Singleton(""), nil
		}
		end = math.Floor(start+0.5) + math.Floor(l+0.5)
	}
	lo := int(math.Floor(start + 0.5))
	hi := int(end)
	if lo < 1 {
		lo = 1
	}
	if hi > len(s)+1 {
		hi = len(s) + 1
	}
	if lo >= hi {
		return Singleton(""), nil
	}
	return Singleton(string(s[lo-1 : hi-1])), nil
}

func fnSubsequence(_ *evalCtx, a []Sequence) (Sequence, error) {
	start := int(math.Floor(NumberValue(Atomize(a[1])[0]) + 0.5))
	n := len(a[0])
	end := n + 1
	if len(a) == 3 {
		end = start + int(math.Floor(NumberValue(Atomize(a[2])[0])+0.5))
	}
	if start < 1 {
		start = 1
	}
	if end > n+1 {
		end = n + 1
	}
	if start >= end {
		return Empty, nil
	}
	out := make(Sequence, end-start)
	copy(out, a[0][start-1:end-1])
	return out, nil
}

// fnNum1 lifts a float64 function to a builtin over an optional-empty
// singleton. Integer inputs stay integral for floor/ceiling/round/abs.
func fnNum1(f func(float64) float64) func(*evalCtx, []Sequence) (Sequence, error) {
	return func(_ *evalCtx, a []Sequence) (Sequence, error) {
		if len(a[0]) == 0 {
			return Empty, nil
		}
		at := Atomize(a[0])
		if len(at) != 1 {
			return nil, fmt.Errorf("xq: numeric function on sequence of %d items", len(at))
		}
		if i, ok := at[0].(int64); ok {
			return Singleton(int64(f(float64(i)))), nil
		}
		v := NumberValue(at[0])
		if math.IsNaN(v) {
			return nil, fmt.Errorf("xq: numeric function on non-numeric value %q", StringValue(at[0]))
		}
		return Singleton(f(v)), nil
	}
}

func fnStr1(f func(string) string) func(*evalCtx, []Sequence) (Sequence, error) {
	return func(_ *evalCtx, a []Sequence) (Sequence, error) {
		return Singleton(f(seqString(a[0]))), nil
	}
}

func fnStr2(f func(string, string) bool) func(*evalCtx, []Sequence) (Sequence, error) {
	return func(_ *evalCtx, a []Sequence) (Sequence, error) {
		return Singleton(f(seqString(a[0]), seqString(a[1]))), nil
	}
}

func fnName(get func(*xmldoc.Node) string) func(*evalCtx, []Sequence) (Sequence, error) {
	return func(c *evalCtx, a []Sequence) (Sequence, error) {
		it, err := argOrCtx(c, a, 0)
		if err != nil {
			return nil, err
		}
		if it == nil {
			return Singleton(""), nil
		}
		n, ok := it.(*xmldoc.Node)
		if !ok {
			return nil, fmt.Errorf("xq: name function requires a node, got %T", it)
		}
		return Singleton(get(n)), nil
	}
}

// seqString converts a (possibly empty) singleton sequence to a string.
func seqString(s Sequence) string {
	if len(s) == 0 {
		return ""
	}
	return StringValue(s[0])
}

// argOrCtx returns args[i][0] if present, else the context item (which may
// be nil only when the sequence argument is explicitly empty).
func argOrCtx(c *evalCtx, args []Sequence, i int) (Item, error) {
	if len(args) > i {
		if len(args[i]) == 0 {
			return nil, nil
		}
		if len(args[i]) > 1 {
			return nil, fmt.Errorf("xq: expected singleton argument, got %d items", len(args[i]))
		}
		return args[i][0], nil
	}
	if c.item == nil {
		return nil, fmt.Errorf("xq: context item is undefined")
	}
	return c.item, nil
}
