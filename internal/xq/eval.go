package xq

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wsda/internal/xmldoc"
)

// env is a lexically scoped variable environment (immutable linked list).
type env struct {
	name   string
	val    Sequence
	parent *env
}

func (e *env) lookup(name string) (Sequence, bool) {
	for ; e != nil; e = e.parent {
		if e.name == name {
			return e.val, true
		}
	}
	return nil, false
}

// evalCtx is the dynamic evaluation context.
type evalCtx struct {
	item Item // context item (nil if absent)
	pos  int  // context position (1-based)
	size int  // context size
	vars *env
	// emit, when non-nil, receives items produced by the top-level FLWOR
	// return clause as soon as they are computed (pipelined evaluation,
	// thesis Ch. 6.5). It may return false to abort evaluation early.
	emit  func(Item) bool
	steps *int // shared work counter for resource limiting
	limit int  // max steps; 0 = unlimited

	// funcs are the user-declared functions of the query prolog; globals
	// the prolog-declared variable bindings visible inside function bodies.
	funcs   map[string]*userFunc
	globals *env
	depth   int // user-function call depth
}

// maxCallDepth bounds user-function recursion to keep runaway queries from
// exhausting the goroutine stack.
const maxCallDepth = 1024

// errAborted is returned internally when an emit callback stops evaluation.
var errAborted = fmt.Errorf("xq: evaluation aborted by consumer")

func (c *evalCtx) withVar(name string, val Sequence) *evalCtx {
	cc := *c
	cc.vars = &env{name: name, val: val, parent: c.vars}
	cc.emit = nil
	return &cc
}

func (c *evalCtx) withItem(item Item, pos, size int) *evalCtx {
	cc := *c
	cc.item, cc.pos, cc.size = item, pos, size
	cc.emit = nil
	return &cc
}

// tick accounts one unit of evaluation work and enforces the step limit.
func (c *evalCtx) tick() error {
	if c.steps == nil {
		return nil
	}
	*c.steps++
	if c.limit > 0 && *c.steps > c.limit {
		return fmt.Errorf("xq: evaluation exceeded %d steps", c.limit)
	}
	return nil
}

func (e *seqExpr) eval(c *evalCtx) (Sequence, error) {
	var out Sequence
	for _, p := range e.parts {
		v, err := p.eval(c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (e *flworExpr) eval(c *evalCtx) (Sequence, error) {
	emit := c.emit
	if len(e.orderBy) > 0 {
		return e.evalOrdered(c, emit)
	}

	var out Sequence
	var run func(ci *evalCtx, i int) error
	run = func(ci *evalCtx, i int) error {
		if err := ci.tick(); err != nil {
			return err
		}
		if i == len(e.clauses) {
			ok, err := e.whereHolds(ci)
			if err != nil || !ok {
				return err
			}
			v, err := e.ret.eval(ci)
			if err != nil {
				return err
			}
			if emit != nil {
				for _, it := range v {
					if !emit(it) {
						return errAborted
					}
				}
				return nil
			}
			out = append(out, v...)
			return nil
		}
		return e.bindClause(ci, i, run)
	}

	cc := *c
	cc.emit = nil
	if err := run(&cc, 0); err != nil {
		return nil, err
	}

	return out, nil
}

// whereHolds evaluates the optional where clause.
func (e *flworExpr) whereHolds(ci *evalCtx) (bool, error) {
	if e.where == nil {
		return true, nil
	}
	v, err := e.where.eval(ci)
	if err != nil {
		return false, err
	}
	return EffectiveBool(v)
}

// bindClause evaluates clause i (for or let) and recurses via cont.
func (e *flworExpr) bindClause(ci *evalCtx, i int, cont func(*evalCtx, int) error) error {
	cl := e.clauses[i]
	if cl.isLet {
		v, err := cl.expr.eval(ci)
		if err != nil {
			return err
		}
		return cont(ci.withVar(cl.varName, v), i+1)
	}
	seq, err := cl.expr.eval(ci)
	if err != nil {
		return err
	}
	for idx, it := range seq {
		child := ci.withVar(cl.varName, Singleton(it))
		if cl.posVar != "" {
			child = child.withVar(cl.posVar, Singleton(int64(idx+1)))
		}
		if err := cont(child, i+1); err != nil {
			return err
		}
	}
	return nil
}

// evalOrdered materializes all FLWOR tuples, sorts them stably by the
// order-by keys, then concatenates (and optionally emits) the results.
func (e *flworExpr) evalOrdered(c *evalCtx, emit func(Item) bool) (Sequence, error) {
	var tuples []Sequence
	var keys []Sequence
	cc := *c
	cc.emit = nil
	if err := runOrdered(e, &cc, &tuples, &keys); err != nil {
		return nil, err
	}

	idx := make([]int, len(tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for k := range e.orderBy {
			cmp := compareKeys(ka[k], kb[k], e.orderBy[k])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	var res Sequence
	for _, i := range idx {
		if emit != nil {
			for _, it := range tuples[i] {
				if !emit(it) {
					return nil, errAborted
				}
			}
			continue
		}
		res = append(res, tuples[i]...)
	}
	return res, nil
}

// runOrdered enumerates FLWOR tuples collecting per-tuple return values and
// order-by keys.
func runOrdered(e *flworExpr, c *evalCtx, tuples *[]Sequence, keys *[]Sequence) error {
	var run func(ci *evalCtx, i int) error
	run = func(ci *evalCtx, i int) error {
		if err := ci.tick(); err != nil {
			return err
		}
		if i == len(e.clauses) {
			ok, err := e.whereHolds(ci)
			if err != nil || !ok {
				return err
			}
			var key Sequence
			for _, os := range e.orderBy {
				kv, err := os.key.eval(ci)
				if err != nil {
					return err
				}
				var k Item
				if len(kv) > 0 {
					k = Atomize(kv[:1])[0]
				}
				key = append(key, k)
			}
			v, err := e.ret.eval(ci)
			if err != nil {
				return err
			}
			*tuples = append(*tuples, v)
			*keys = append(*keys, key)
			return nil
		}
		return e.bindClause(ci, i, run)
	}
	return run(c, 0)
}

// compareKeys compares two order-by keys under the given spec. Empty (nil)
// keys sort least by default.
func compareKeys(a, b Item, spec orderSpec) int {
	var cmp int
	switch {
	case a == nil && b == nil:
		cmp = 0
	case a == nil:
		cmp = -1
	case b == nil:
		cmp = 1
	default:
		c, err := compareAtomic(a, b)
		if err != nil || c == 2 {
			cmp = 0
		} else {
			cmp = c
		}
	}
	if spec.descending {
		cmp = -cmp
	}
	return cmp
}

func (e *quantExpr) eval(c *evalCtx) (Sequence, error) {
	var run func(ci *evalCtx, i int) (bool, error)
	run = func(ci *evalCtx, i int) (bool, error) {
		if err := ci.tick(); err != nil {
			return false, err
		}
		if i == len(e.binds) {
			v, err := e.sat.eval(ci)
			if err != nil {
				return false, err
			}
			return EffectiveBool(v)
		}
		seq, err := e.binds[i].expr.eval(ci)
		if err != nil {
			return false, err
		}
		for _, it := range seq {
			ok, err := run(ci.withVar(e.binds[i].varName, Singleton(it)), i+1)
			if err != nil {
				return false, err
			}
			if ok && !e.every {
				return true, nil
			}
			if !ok && e.every {
				return false, nil
			}
		}
		return e.every, nil
	}
	ok, err := run(c, 0)
	if err != nil {
		return nil, err
	}
	return Singleton(ok), nil
}

func (e *ifExpr) eval(c *evalCtx) (Sequence, error) {
	v, err := e.cond.eval(c)
	if err != nil {
		return nil, err
	}
	ok, err := EffectiveBool(v)
	if err != nil {
		return nil, err
	}
	if ok {
		return e.then.eval(c)
	}
	return e.els.eval(c)
}

func (e *orExpr) eval(c *evalCtx) (Sequence, error) {
	for _, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		ok, err := EffectiveBool(v)
		if err != nil {
			return nil, err
		}
		if ok {
			return Singleton(true), nil
		}
	}
	return Singleton(false), nil
}

func (e *andExpr) eval(c *evalCtx) (Sequence, error) {
	for _, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		ok, err := EffectiveBool(v)
		if err != nil {
			return nil, err
		}
		if !ok {
			return Singleton(false), nil
		}
	}
	return Singleton(true), nil
}

func (e *compExpr) eval(c *evalCtx) (Sequence, error) {
	l, err := e.l.eval(c)
	if err != nil {
		return nil, err
	}
	r, err := e.r.eval(c)
	if err != nil {
		return nil, err
	}
	if e.general {
		ok, err := generalCompare(e.op, l, r)
		if err != nil {
			return nil, err
		}
		return Singleton(ok), nil
	}
	return valueCompare(e.op, l, r)
}

func (e *rangeExpr) eval(c *evalCtx) (Sequence, error) {
	l, err := evalSingletonInt(e.l, c)
	if err != nil {
		return nil, err
	}
	r, err := evalSingletonInt(e.r, c)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil || *l > *r {
		return Empty, nil
	}
	n := *r - *l + 1
	if n > 10_000_000 {
		return nil, fmt.Errorf("xq: range %d to %d too large", *l, *r)
	}
	out := make(Sequence, 0, n)
	for i := *l; i <= *r; i++ {
		out = append(out, i)
	}
	return out, nil
}

func evalSingletonInt(e Expr, c *evalCtx) (*int64, error) {
	v, err := e.eval(c)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return nil, nil
	}
	f := NumberValue(Atomize(v)[0])
	if math.IsNaN(f) {
		return nil, fmt.Errorf("xq: range bound is not a number")
	}
	i := int64(f)
	return &i, nil
}

func (e *arithExpr) eval(c *evalCtx) (Sequence, error) {
	lv, err := e.l.eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.eval(c)
	if err != nil {
		return nil, err
	}
	if len(lv) == 0 || len(rv) == 0 {
		return Empty, nil
	}
	la, ra := Atomize(lv), Atomize(rv)
	if len(la) != 1 || len(ra) != 1 {
		return nil, fmt.Errorf("xq: arithmetic on non-singleton sequence")
	}
	li, lok := la[0].(int64)
	ri, rok := ra[0].(int64)
	if lok && rok {
		switch e.op {
		case "+":
			return Singleton(li + ri), nil
		case "-":
			return Singleton(li - ri), nil
		case "*":
			return Singleton(li * ri), nil
		case "idiv":
			if ri == 0 {
				return nil, fmt.Errorf("xq: integer division by zero")
			}
			return Singleton(li / ri), nil
		case "mod":
			if ri == 0 {
				return nil, fmt.Errorf("xq: modulo by zero")
			}
			return Singleton(li % ri), nil
		case "div":
			if ri == 0 {
				return nil, fmt.Errorf("xq: division by zero")
			}
			return Singleton(float64(li) / float64(ri)), nil
		}
	}
	lf, rf := NumberValue(la[0]), NumberValue(ra[0])
	if math.IsNaN(lf) || math.IsNaN(rf) {
		return nil, fmt.Errorf("xq: arithmetic on non-numeric value")
	}
	switch e.op {
	case "+":
		return Singleton(lf + rf), nil
	case "-":
		return Singleton(lf - rf), nil
	case "*":
		return Singleton(lf * rf), nil
	case "div":
		if rf == 0 {
			return nil, fmt.Errorf("xq: division by zero")
		}
		return Singleton(lf / rf), nil
	case "idiv":
		if rf == 0 {
			return nil, fmt.Errorf("xq: integer division by zero")
		}
		return Singleton(int64(lf / rf)), nil
	case "mod":
		if rf == 0 {
			return nil, fmt.Errorf("xq: modulo by zero")
		}
		return Singleton(math.Mod(lf, rf)), nil
	}
	return nil, fmt.Errorf("xq: unknown arithmetic operator %q", e.op)
}

func (e *unaryExpr) eval(c *evalCtx) (Sequence, error) {
	v, err := e.x.eval(c)
	if err != nil {
		return nil, err
	}
	if !e.neg {
		return v, nil
	}
	if len(v) == 0 {
		return Empty, nil
	}
	a := Atomize(v)
	if len(a) != 1 {
		return nil, fmt.Errorf("xq: unary minus on non-singleton")
	}
	if i, ok := a[0].(int64); ok {
		return Singleton(-i), nil
	}
	f := NumberValue(a[0])
	if math.IsNaN(f) {
		return nil, fmt.Errorf("xq: unary minus on non-numeric value")
	}
	return Singleton(-f), nil
}

func (e *unionExpr) eval(c *evalCtx) (Sequence, error) {
	var all Sequence
	for _, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		for _, it := range v {
			if !IsNode(it) {
				return nil, fmt.Errorf("xq: union operand contains non-node %T", it)
			}
		}
		all = append(all, v...)
	}
	return sortNodesDocOrder(all), nil
}

func (e *concatExpr) eval(c *evalCtx) (Sequence, error) {
	l, err := e.l.eval(c)
	if err != nil {
		return nil, err
	}
	r, err := e.r.eval(c)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, it := range Atomize(l) {
		sb.WriteString(StringValue(it))
	}
	for _, it := range Atomize(r) {
		sb.WriteString(StringValue(it))
	}
	return Singleton(sb.String()), nil
}

func (e *varRef) eval(c *evalCtx) (Sequence, error) {
	if v, ok := c.vars.lookup(e.name); ok {
		return v, nil
	}
	return nil, fmt.Errorf("xq: undefined variable $%s", e.name)
}

func (e *literal) eval(*evalCtx) (Sequence, error) { return Singleton(e.val), nil }

func (e *ctxItemExpr) eval(c *evalCtx) (Sequence, error) {
	if c.item == nil {
		return nil, fmt.Errorf("xq: context item is undefined")
	}
	return Singleton(c.item), nil
}

func (e *funcCall) eval(c *evalCtx) (Sequence, error) {
	if uf, ok := c.funcs[e.name]; ok {
		return e.evalUser(c, uf)
	}
	fn, ok := builtins[e.name]
	if !ok {
		return nil, fmt.Errorf("xq: unknown function %s()", e.name)
	}
	if len(e.args) < fn.minArgs || (fn.maxArgs >= 0 && len(e.args) > fn.maxArgs) {
		return nil, fmt.Errorf("xq: %s() takes %d..%d arguments, got %d", e.name, fn.minArgs, fn.maxArgs, len(e.args))
	}
	args := make([]Sequence, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.impl(c, args)
}

// evalUser applies a user-declared function: arguments are evaluated in
// the caller's context, the body in a fresh context whose variables are
// the parameters chained onto the query's globals (no context item, per
// XQuery function semantics).
func (e *funcCall) evalUser(c *evalCtx, uf *userFunc) (Sequence, error) {
	if len(e.args) != len(uf.params) {
		return nil, fmt.Errorf("xq: %s() takes %d arguments, got %d", e.name, len(uf.params), len(e.args))
	}
	if c.depth+1 > maxCallDepth {
		return nil, fmt.Errorf("xq: %s() exceeded recursion depth %d", e.name, maxCallDepth)
	}
	frame := c.globals
	for i, a := range e.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		frame = &env{name: uf.params[i], val: v, parent: frame}
	}
	cc := *c
	cc.item = nil
	cc.pos, cc.size = 0, 0
	cc.emit = nil
	cc.vars = frame
	cc.depth = c.depth + 1
	return uf.body.eval(&cc)
}

// --- Path evaluation ---

func (e *pathExpr) eval(c *evalCtx) (Sequence, error) {
	var cur Sequence
	if e.absolute || e.doubleSlash {
		n, ok := c.item.(*xmldoc.Node)
		if !ok {
			return nil, fmt.Errorf("xq: absolute path requires a node context item")
		}
		cur = Singleton(n.Root())
		if e.doubleSlash {
			var err error
			cur, err = applyAxisStep(c, cur, pathStep{axis: axisDescOrSelf, test: nodeTest{kind: "node"}})
			if err != nil {
				return nil, err
			}
		}
	} else if len(e.steps) > 0 && e.steps[0].primary != nil {
		// A path headed by a primary expression ($v/..., f()/...) does not
		// need a context item: the primary supplies the start sequence.
		v, err := e.steps[0].primary.eval(c)
		if err != nil {
			return nil, err
		}
		cur, err = applyPredicates(c, v, e.steps[0].preds)
		if err != nil {
			return nil, err
		}
		if len(e.steps) > 1 {
			cur = sortNodesDocOrder(cur)
		}
		return e.evalSteps(c, cur, e.steps[1:])
	} else {
		if c.item == nil {
			return nil, fmt.Errorf("xq: relative path requires a context item")
		}
		cur = Singleton(c.item)
	}
	return e.evalSteps(c, cur, e.steps)
}

// evalSteps applies the remaining path steps to cur.
func (e *pathExpr) evalSteps(c *evalCtx, cur Sequence, steps []pathStep) (Sequence, error) {
	for i, st := range steps {
		var err error
		cur, err = applyStep(c, cur, st)
		if err != nil {
			return nil, err
		}
		// Between steps, node sequences are kept in document order.
		if i < len(steps)-1 || st.primary == nil {
			cur = sortNodesDocOrder(cur)
		}
	}
	return cur, nil
}

// applyStep applies one path step to each item of the input sequence.
func applyStep(c *evalCtx, input Sequence, st pathStep) (Sequence, error) {
	if st.primary != nil {
		// Filter step: evaluate primary for each context item, concatenate,
		// then filter by predicates over the whole sequence.
		var all Sequence
		for i, it := range input {
			ci := c.withItem(it, i+1, len(input))
			v, err := st.primary.eval(ci)
			if err != nil {
				return nil, err
			}
			all = append(all, v...)
		}
		return applyPredicates(c, all, st.preds)
	}
	return applyAxisStepWithPreds(c, input, st)
}

func applyAxisStepWithPreds(c *evalCtx, input Sequence, st pathStep) (Sequence, error) {
	var out Sequence
	for _, it := range input {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			return nil, fmt.Errorf("xq: path step on atomic value %T", it)
		}
		axisSeq := axisNodes(n, st.axis, st.test)
		filtered, err := applyPredicates(c, axisSeq, st.preds)
		if err != nil {
			return nil, err
		}
		out = append(out, filtered...)
	}
	return out, nil
}

func applyAxisStep(c *evalCtx, input Sequence, st pathStep) (Sequence, error) {
	return applyAxisStepWithPreds(c, input, st)
}

// axisNodes returns the nodes reachable from n on the axis that match the
// node test, in axis order.
func axisNodes(n *xmldoc.Node, ax axis, test nodeTest) Sequence {
	var out Sequence
	add := func(m *xmldoc.Node) {
		if matchTest(m, test, ax) {
			out = append(out, m)
		}
	}
	var walkDesc func(m *xmldoc.Node)
	walkDesc = func(m *xmldoc.Node) {
		add(m)
		for _, ch := range m.Children {
			walkDesc(ch)
		}
	}
	switch ax {
	case axisChild:
		for _, ch := range n.Children {
			add(ch)
		}
	case axisAttribute:
		for _, a := range n.Attrs {
			add(a)
		}
	case axisSelf:
		add(n)
	case axisParent:
		if n.Parent != nil {
			add(n.Parent)
		}
	case axisDescOrSelf:
		walkDesc(n)
	case axisDescendant:
		for _, ch := range n.Children {
			walkDesc(ch)
		}
	case axisAncestor:
		for p := n.Parent; p != nil; p = p.Parent {
			add(p)
		}
	case axisAncestorOrSelf:
		for p := n; p != nil; p = p.Parent {
			add(p)
		}
	case axisFollowingSibling, axisPrecedingSibling:
		if n.Parent == nil {
			break
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		if ax == axisFollowingSibling {
			for _, s := range sibs[idx+1:] {
				add(s)
			}
		} else {
			// Preceding-sibling axis order is reverse document order.
			for i := idx - 1; i >= 0; i-- {
				add(sibs[i])
			}
		}
	}
	return out
}

func matchTest(n *xmldoc.Node, test nodeTest, ax axis) bool {
	switch test.kind {
	case "node":
		return true
	case "text":
		return n.Kind == xmldoc.TextNode
	case "comment":
		return n.Kind == xmldoc.CommentNode
	case "element":
		return n.Kind == xmldoc.ElementNode
	case "document-node":
		return n.Kind == xmldoc.DocumentNode
	}
	// Name test. On the attribute axis it selects attributes; elsewhere,
	// elements.
	want := xmldoc.ElementNode
	if ax == axisAttribute {
		want = xmldoc.AttributeNode
	}
	if n.Kind != want {
		return false
	}
	if test.name == "*" {
		return true
	}
	return n.Name == test.name || n.LocalName() == test.name
}

// applyPredicates filters seq by each predicate in turn. A numeric
// predicate value selects by position.
func applyPredicates(c *evalCtx, seq Sequence, preds []Expr) (Sequence, error) {
	for _, p := range preds {
		var kept Sequence
		size := len(seq)
		for i, it := range seq {
			if err := c.tick(); err != nil {
				return nil, err
			}
			ci := c.withItem(it, i+1, size)
			v, err := p.eval(ci)
			if err != nil {
				return nil, err
			}
			if len(v) == 1 {
				switch num := v[0].(type) {
				case int64:
					if int(num) == i+1 {
						kept = append(kept, it)
					}
					continue
				case float64:
					if num == float64(i+1) {
						kept = append(kept, it)
					}
					continue
				}
			}
			ok, err := EffectiveBool(v)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, it)
			}
		}
		seq = kept
	}
	return seq, nil
}

// --- Constructors ---

func (e *elemCtor) eval(c *evalCtx) (Sequence, error) {
	name := e.name
	if e.nameExpr != nil {
		v, err := e.nameExpr.eval(c)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return nil, fmt.Errorf("xq: computed element name must be a single item")
		}
		name = StringValue(v[0])
	}
	el := xmldoc.NewElement(name)
	for _, a := range e.attrs {
		var sb strings.Builder
		for _, p := range a.parts {
			if p.expr == nil {
				sb.WriteString(p.text)
				continue
			}
			v, err := p.expr.eval(c)
			if err != nil {
				return nil, err
			}
			for i, it := range Atomize(v) {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(StringValue(it))
			}
		}
		el.SetAttr(a.name, sb.String())
	}
	for _, ce := range e.content {
		v, err := ce.eval(c)
		if err != nil {
			return nil, err
		}
		if err := appendContent(el, v); err != nil {
			return nil, err
		}
	}
	el.Normalize()
	el.Renumber()
	return Singleton(el), nil
}

// appendContent adds evaluated content to an element under construction:
// nodes are deep-copied in, atomics become text (space-separated runs).
func appendContent(el *xmldoc.Node, v Sequence) error {
	prevAtomic := false
	for _, it := range v {
		switch n := it.(type) {
		case *xmldoc.Node:
			switch n.Kind {
			case xmldoc.AttributeNode:
				el.SetAttr(n.Name, n.Data)
			case xmldoc.DocumentNode:
				for _, ch := range n.Children {
					el.AppendChild(ch.Clone())
				}
			default:
				el.AppendChild(n.Clone())
			}
			prevAtomic = false
		default:
			s := StringValue(it)
			if prevAtomic {
				s = " " + s
			}
			el.AppendChild(xmldoc.NewText(s))
			prevAtomic = true
		}
	}
	return nil
}

func (e *textCtor) eval(c *evalCtx) (Sequence, error) {
	if e.expr == nil {
		return Singleton(xmldoc.NewText(e.text)), nil
	}
	v, err := e.expr.eval(c)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for i, it := range Atomize(v) {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(StringValue(it))
	}
	return Singleton(xmldoc.NewText(sb.String())), nil
}
