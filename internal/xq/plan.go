// Discovery-query planning: recognizing the compiled AST shapes of the
// thesis' "simple"/"medium" discovery queries so the registry can answer
// them straight from its soft-state indexes instead of evaluating the
// interpreted AST over a materialized <tupleset> document.
//
// The plannable grammar is deliberately narrow — exactly the query family
// that dominates registry traffic:
//
//	/tupleset/tuple[P1][P2].../step/step...
//
// where each predicate P is a conjunction/disjunction of attribute or
// child-path `=` string comparisons (and bare path-existence tests), and
// every trailing step is a child-element or attribute name step, itself
// optionally predicated by the same predicate grammar. Anything else —
// prologs, FLWOR, functions, positional predicates, ordering comparisons,
// descendant axes — is rejected, and the caller falls back to the full
// interpreter. Predicates compile once into closure chains over document
// nodes, so repeated execution does no tree-walking of the AST.
package xq

import (
	"math"
	"strconv"
	"strings"

	"wsda/internal/xmldoc"
)

// NodePred is one compiled predicate closure over a document node: the
// planner's replacement for interpreting a predicate's AST per candidate.
type NodePred func(n *xmldoc.Node) bool

// PlanStep is one compiled path step below the <tuple> element: a child
// element (Attr false) or attribute (Attr true) name test plus the step's
// compiled predicates. Name "*" matches any node of the step's kind,
// mirroring the interpreter's name-test semantics.
type PlanStep struct {
	Attr  bool       // attribute axis instead of child-element axis
	Name  string     // name test; "*" matches any node of the axis kind
	Preds []NodePred // compiled predicates, all must hold
}

// TuplePlan is the compiled pushdown form of a plannable discovery query.
// The executing registry turns AttrEq entries for tuple fields (link,
// type, ctx, owner) into index probes and field-equality closures; any
// other pushed attribute falls back to its compiled AttrPred. Residual
// holds the predicate closures that need the rendered <tuple> element,
// and Proj the steps projecting below it (empty: the tuple itself is the
// result).
type TuplePlan struct {
	// AttrEq maps attribute names to the (non-empty) string literal each
	// must equal, extracted from top-level conjunctive predicates.
	AttrEq map[string]string
	// AttrPred holds, for every AttrEq entry, the equivalent compiled
	// node predicate — the executor's fallback for attributes that do not
	// correspond to an indexed tuple field.
	AttrPred map[string]NodePred
	// Residual are the tuple-level predicate closures that were not
	// extracted into AttrEq.
	Residual []NodePred
	// Proj are the compiled steps below the tuple element.
	Proj []PlanStep
	// Never reports a statically contradictory plan (two different
	// equality literals for the same attribute): the result is empty.
	Never bool
}

// DiscoveryPlan returns the compiled pushdown plan for the query if its
// shape is plannable, memoizing the (possibly negative) answer on the
// query: planning runs once per compiled query, not once per evaluation.
func (q *Query) DiscoveryPlan() (*TuplePlan, bool) {
	q.planOnce.Do(func() { q.plan = buildDiscoveryPlan(q) })
	return q.plan, q.plan != nil
}

// buildDiscoveryPlan pattern-matches the compiled AST; nil means "not
// plannable, use the interpreter".
func buildDiscoveryPlan(q *Query) *TuplePlan {
	if len(q.decls) > 0 || len(q.funcs) > 0 {
		return nil
	}
	pe, ok := q.expr.(*pathExpr)
	if !ok || !pe.absolute || pe.doubleSlash || len(pe.steps) < 2 {
		return nil
	}
	s0, s1 := pe.steps[0], pe.steps[1]
	if !isChildNameStep(s0, "tupleset") || len(s0.preds) > 0 {
		return nil
	}
	if !isChildNameStep(s1, "tuple") {
		return nil
	}
	p := &TuplePlan{AttrEq: map[string]string{}, AttrPred: map[string]NodePred{}}
	for _, pred := range s1.preds {
		if !p.addTuplePred(pred) {
			return nil
		}
	}
	for _, st := range pe.steps[2:] {
		ps, ok := compilePlanStep(st)
		if !ok {
			return nil
		}
		p.Proj = append(p.Proj, ps)
	}
	return p
}

// isChildNameStep reports whether st is a plain child::name axis step.
func isChildNameStep(st pathStep, name string) bool {
	return st.primary == nil && st.axis == axisChild &&
		st.test.kind == "" && st.test.name == name
}

// addTuplePred folds one tuple-step predicate into the plan: top-level
// conjuncts are scanned for pushdown-eligible @attr = "literal" equalities;
// everything else compiles to a residual closure. It reports whether the
// predicate is plannable at all.
func (p *TuplePlan) addTuplePred(e Expr) bool {
	if and, ok := e.(*andExpr); ok {
		for _, a := range and.args {
			if !p.addTuplePred(a) {
				return false
			}
		}
		return true
	}
	if name, val, ok := simpleAttrEq(e); ok && val != "" {
		// A tuple attribute equal to a non-empty literal is pushdown
		// material; empty literals are not (an absent attribute and an
		// empty field are different things to the interpreter) and stay
		// residual via the generic compiler below.
		if prev, dup := p.AttrEq[name]; dup {
			if prev != val {
				p.Never = true
			}
			return true
		}
		pred, ok := compilePred(e)
		if !ok {
			return false
		}
		p.AttrEq[name] = val
		p.AttrPred[name] = pred
		return true
	}
	pred, ok := compilePred(e)
	if !ok {
		return false
	}
	p.Residual = append(p.Residual, pred)
	return true
}

// simpleAttrEq recognizes `@name = "literal"` (either operand order) with
// a plain single-attribute path and a string literal, returning the
// attribute name and literal.
func simpleAttrEq(e Expr) (name, val string, ok bool) {
	cmp, isCmp := e.(*compExpr)
	if !isCmp || !cmp.general || cmp.op != "=" {
		return "", "", false
	}
	pathSide, litSide := cmp.l, cmp.r
	if _, isLit := pathSide.(*literal); isLit {
		pathSide, litSide = litSide, pathSide
	}
	lit, isLit := litSide.(*literal)
	if !isLit {
		return "", "", false
	}
	s, isStr := lit.val.(string)
	if !isStr {
		return "", "", false
	}
	pp, isPath := pathSide.(*pathExpr)
	if !isPath || pp.absolute || pp.doubleSlash || len(pp.steps) != 1 {
		return "", "", false
	}
	st := pp.steps[0]
	if st.primary != nil || st.axis != axisAttribute || st.test.kind != "" ||
		st.test.name == "*" || len(st.preds) > 0 {
		return "", "", false
	}
	return st.test.name, s, true
}

// compilePred compiles one predicate expression to a node closure, or
// reports it unplannable. The supported grammar: and/or connectives,
// general `=` comparisons between a relative child/attribute path and an
// atomic literal, and bare relative paths (existence tests). All forms
// are boolean-valued, so the interpreter's positional-predicate rule
// (numeric value selects by position) can never apply to a compiled
// predicate.
func compilePred(e Expr) (NodePred, bool) {
	switch x := e.(type) {
	case *andExpr:
		preds, ok := compilePreds(x.args)
		if !ok {
			return nil, false
		}
		return func(n *xmldoc.Node) bool {
			for _, p := range preds {
				if !p(n) {
					return false
				}
			}
			return true
		}, true
	case *orExpr:
		preds, ok := compilePreds(x.args)
		if !ok {
			return nil, false
		}
		return func(n *xmldoc.Node) bool {
			for _, p := range preds {
				if p(n) {
					return true
				}
			}
			return false
		}, true
	case *compExpr:
		return compileEq(x)
	case *pathExpr:
		steps, ok := compileRelPath(x)
		if !ok {
			return nil, false
		}
		return func(n *xmldoc.Node) bool {
			return !WalkPlan(n, steps, func(*xmldoc.Node) bool { return false })
		}, true
	}
	return nil, false
}

// compilePreds compiles every expression or reports the lot unplannable.
func compilePreds(args []Expr) ([]NodePred, bool) {
	preds := make([]NodePred, 0, len(args))
	for _, a := range args {
		p, ok := compilePred(a)
		if !ok {
			return nil, false
		}
		preds = append(preds, p)
	}
	return preds, true
}

// compileEq compiles a general `=` comparison between a relative path and
// an atomic literal into an existential closure, replicating the
// interpreter's general-comparison coercion: node string values compare
// as strings against string literals and numerically against numeric
// literals (non-numeric node text then compares unequal, like NaN).
func compileEq(cmp *compExpr) (NodePred, bool) {
	if !cmp.general || cmp.op != "=" {
		return nil, false
	}
	pathSide, litSide := cmp.l, cmp.r
	if _, isLit := pathSide.(*literal); isLit {
		pathSide, litSide = litSide, pathSide
	}
	lit, isLit := litSide.(*literal)
	if !isLit {
		return nil, false
	}
	var match func(string) bool
	switch v := lit.val.(type) {
	case string:
		match = func(s string) bool { return s == v }
	case int64:
		f := float64(v)
		match = numericMatch(f)
	case float64:
		match = numericMatch(v)
	default:
		return nil, false
	}
	pp, isPath := pathSide.(*pathExpr)
	if !isPath {
		return nil, false
	}
	steps, ok := compileRelPath(pp)
	if !ok {
		return nil, false
	}
	return func(n *xmldoc.Node) bool {
		found := false
		WalkPlan(n, steps, func(leaf *xmldoc.Node) bool {
			if match(leaf.StringValue()) {
				found = true
				return false
			}
			return true
		})
		return found
	}, true
}

// numericMatch compares a node's string value against a numeric literal
// with fn:number coercion; unparsable (or NaN) values compare unequal.
func numericMatch(f float64) func(string) bool {
	return func(s string) bool {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		return err == nil && !math.IsNaN(v) && v == f
	}
}

// compileRelPath compiles a relative child/attribute name-step path (each
// step optionally predicated) to plan steps.
func compileRelPath(pe *pathExpr) ([]PlanStep, bool) {
	if pe.absolute || pe.doubleSlash || len(pe.steps) == 0 {
		return nil, false
	}
	steps := make([]PlanStep, 0, len(pe.steps))
	for _, st := range pe.steps {
		ps, ok := compilePlanStep(st)
		if !ok {
			return nil, false
		}
		steps = append(steps, ps)
	}
	return steps, true
}

// compilePlanStep compiles one axis step (child or attribute name test
// plus plannable predicates).
func compilePlanStep(st pathStep) (PlanStep, bool) {
	if st.primary != nil || st.test.kind != "" {
		return PlanStep{}, false
	}
	if st.axis != axisChild && st.axis != axisAttribute {
		return PlanStep{}, false
	}
	preds, ok := compilePreds(st.preds)
	if !ok {
		return PlanStep{}, false
	}
	return PlanStep{Attr: st.axis == axisAttribute, Name: st.test.name, Preds: preds}, true
}

// WalkPlan walks every node reached from n through the compiled steps, in
// document order, calling visit per reached node (with no steps, n
// itself). visit returning false stops the walk; WalkPlan reports whether
// the walk ran to completion. Attribute steps yield attribute nodes;
// child steps yield elements — the same node-test semantics as the
// interpreter's axis evaluation, including prefix-insensitive QName
// matching.
func WalkPlan(n *xmldoc.Node, steps []PlanStep, visit func(*xmldoc.Node) bool) bool {
	if len(steps) == 0 {
		return visit(n)
	}
	st := steps[0]
	nodes := n.Children
	want := xmldoc.ElementNode
	if st.Attr {
		nodes = n.Attrs
		want = xmldoc.AttributeNode
	}
outer:
	for _, c := range nodes {
		if c.Kind != want {
			continue
		}
		if st.Name != "*" && c.Name != st.Name && c.LocalName() != st.Name {
			continue
		}
		for _, p := range st.Preds {
			if !p(c) {
				continue outer
			}
		}
		if !WalkPlan(c, steps[1:], visit) {
			return false
		}
	}
	return true
}
