package xq

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wsda/internal/xmldoc"
)

// Item is a single item in the XQuery data model: either a node
// (*xmldoc.Node) or an atomic value (string, float64, int64, bool).
type Item any

// Sequence is an ordered sequence of items, the universal value of every
// expression.
type Sequence []Item

// Singleton wraps one item in a sequence.
func Singleton(it Item) Sequence { return Sequence{it} }

// Empty is the empty sequence.
var Empty = Sequence{}

// StringValue converts an item to its string value.
func StringValue(it Item) string {
	switch v := it.(type) {
	case *xmldoc.Node:
		return v.StringValue()
	case string:
		return v
	case bool:
		if v {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return formatFloat(v)
	case nil:
		return ""
	default:
		return fmt.Sprint(v)
	}
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 && !math.Signbit(f) || (f == math.Trunc(f) && math.Abs(f) < 1e15) {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// NumberValue converts an item to a float64, returning NaN if it does not
// parse as a number (XPath fn:number semantics).
func NumberValue(it Item) float64 {
	switch v := it.(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case bool:
		if v {
			return 1
		}
		return 0
	default:
		s := strings.TrimSpace(StringValue(it))
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// IsNode reports whether the item is a node.
func IsNode(it Item) bool {
	_, ok := it.(*xmldoc.Node)
	return ok
}

// EffectiveBool implements the XPath effective boolean value.
func EffectiveBool(seq Sequence) (bool, error) {
	if len(seq) == 0 {
		return false, nil
	}
	if _, ok := seq[0].(*xmldoc.Node); ok {
		return true, nil
	}
	if len(seq) > 1 {
		return false, fmt.Errorf("xq: effective boolean value of sequence of %d atomic items", len(seq))
	}
	switch v := seq[0].(type) {
	case bool:
		return v, nil
	case string:
		return v != "", nil
	case int64:
		return v != 0, nil
	case float64:
		return v != 0 && !math.IsNaN(v), nil
	default:
		return false, fmt.Errorf("xq: no effective boolean value for %T", seq[0])
	}
}

// Atomize converts a sequence of items to their typed values: nodes become
// their string values (untyped atomics), atomics pass through.
func Atomize(seq Sequence) Sequence {
	out := make(Sequence, len(seq))
	for i, it := range seq {
		if n, ok := it.(*xmldoc.Node); ok {
			out[i] = n.StringValue()
		} else {
			out[i] = it
		}
	}
	return out
}

// compareAtomic compares two atomic values with XPath general-comparison
// coercion: if either side is numeric (or both untyped strings that look
// numeric when the other is numeric), compare numerically; booleans compare
// as booleans; otherwise compare as strings. Returns -1, 0, +1.
func compareAtomic(a, b Item) (int, error) {
	if ab, ok := a.(bool); ok {
		bb, err := toBool(b)
		if err != nil {
			return 0, err
		}
		return boolCmp(ab, bb), nil
	}
	if bb, ok := b.(bool); ok {
		ab, err := toBool(a)
		if err != nil {
			return 0, err
		}
		return boolCmp(ab, bb), nil
	}
	if isNumeric(a) || isNumeric(b) {
		fa, fb := NumberValue(a), NumberValue(b)
		if math.IsNaN(fa) || math.IsNaN(fb) {
			// NaN compares unequal to everything; signal with sentinel.
			return 2, nil
		}
		return floatCmp(fa, fb), nil
	}
	sa, sb := StringValue(a), StringValue(b)
	return strings.Compare(sa, sb), nil
}

func toBool(it Item) (bool, error) {
	switch v := it.(type) {
	case bool:
		return v, nil
	case string:
		switch strings.TrimSpace(v) {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		}
		return false, fmt.Errorf("xq: cannot cast %q to boolean", v)
	default:
		return false, fmt.Errorf("xq: cannot compare %T with boolean", it)
	}
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func floatCmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func isNumeric(it Item) bool {
	switch it.(type) {
	case int64, float64:
		return true
	}
	return false
}

// generalCompare implements XPath general comparisons (=, !=, <, <=, >, >=)
// with existential semantics over two sequences.
func generalCompare(op string, left, right Sequence) (bool, error) {
	left, right = Atomize(left), Atomize(right)
	for _, a := range left {
		for _, b := range right {
			c, err := compareAtomic(a, b)
			if err != nil {
				return false, err
			}
			if c == 2 { // NaN involved: only != can hold
				if op == "!=" {
					return true, nil
				}
				continue
			}
			ok := false
			switch op {
			case "=":
				ok = c == 0
			case "!=":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			default:
				return false, fmt.Errorf("xq: unknown comparison %q", op)
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// valueCompare implements XQuery value comparisons (eq, ne, lt, le, gt, ge)
// on singleton sequences; empty operands yield the empty sequence (nil, no
// error, signalled by the second return).
func valueCompare(op string, left, right Sequence) (Sequence, error) {
	if len(left) == 0 || len(right) == 0 {
		return Empty, nil
	}
	left, right = Atomize(left), Atomize(right)
	if len(left) != 1 || len(right) != 1 {
		return nil, fmt.Errorf("xq: value comparison %s requires singletons", op)
	}
	c, err := compareAtomic(left[0], right[0])
	if err != nil {
		return nil, err
	}
	if c == 2 {
		return Singleton(op == "ne"), nil
	}
	var ok bool
	switch op {
	case "eq":
		ok = c == 0
	case "ne":
		ok = c != 0
	case "lt":
		ok = c < 0
	case "le":
		ok = c <= 0
	case "gt":
		ok = c > 0
	case "ge":
		ok = c >= 0
	default:
		return nil, fmt.Errorf("xq: unknown value comparison %q", op)
	}
	return Singleton(ok), nil
}

// sortNodesDocOrder sorts a node sequence into document order and removes
// duplicates. Mixed sequences are returned unchanged.
func sortNodesDocOrder(seq Sequence) Sequence {
	nodes := make([]*xmldoc.Node, 0, len(seq))
	for _, it := range seq {
		n, ok := it.(*xmldoc.Node)
		if !ok {
			return seq
		}
		nodes = append(nodes, n)
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Order() < nodes[j].Order() })
	out := make(Sequence, 0, len(nodes))
	var prev *xmldoc.Node
	for _, n := range nodes {
		if n == prev {
			continue
		}
		out = append(out, n)
		prev = n
	}
	return out
}

// DeepEqual reports whether two sequences are deep-equal in the sense of
// fn:deep-equal: same length, pairwise equal atomics and structurally equal
// nodes.
func DeepEqual(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		an, aok := a[i].(*xmldoc.Node)
		bn, bok := b[i].(*xmldoc.Node)
		if aok != bok {
			return false
		}
		if aok {
			if !an.Equal(bn) {
				return false
			}
			continue
		}
		c, err := compareAtomic(a[i], b[i])
		if err != nil || c != 0 {
			return false
		}
	}
	return true
}
