package xq

import (
	"strings"
	"testing"

	"wsda/internal/xmldoc"
)

// Tests for explicit axes, prolog variable declarations, and user-defined
// functions.

func TestExplicitAxes(t *testing.T) {
	cases := map[string]string{
		`string((//operation)[1]/ancestor::service/@name)`:                             "replica-catalog",
		`count((//operation)[1]/ancestor::*)`:                                          "4", // interface, service, content, tuple... plus tupleset = 5? counted below
		`count((//service)[1]/descendant::operation)`:                                  "1",
		`count(/tupleset/descendant::service)`:                                         "3",
		`string(/tupleset/tuple[1]/following-sibling::tuple[1]/content/service/@name)`: "scheduler",
		`string(/tupleset/tuple[3]/preceding-sibling::tuple[1]/content/service/@name)`: "scheduler",
		`count(/tupleset/tuple[2]/preceding-sibling::tuple)`:                           "1",
		`string((//load)[1]/parent::service/@name)`:                                    "replica-catalog",
		`count((//load)[1]/ancestor-or-self::*) >= 2`:                                  "true",
		`count(/tupleset/child::tuple)`:                                                "3",
		`string((//service)[1]/self::service/@name)`:                                   "replica-catalog",
		`count(//service/attribute::name)`:                                             "3",
	}
	for src, want := range cases {
		if src == `count((//operation)[1]/ancestor::*)` {
			continue // counted explicitly below
		}
		if got := evalOne(t, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	// ancestor::* from an operation: interface, service, content, tuple,
	// tupleset = 5 elements (document node is not an element).
	if got := evalOne(t, `count((//operation)[1]/ancestor::*)`); got != "5" {
		t.Errorf("ancestor::* count = %s", got)
	}
	// Unknown axis errors at compile time.
	if _, err := Compile(`//sideways::x`); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestAxisKindTests(t *testing.T) {
	if got := evalOne(t, `count(/tupleset/tuple[1]/descendant::node()) > 3`); got != "true" {
		t.Errorf("descendant::node() = %s", got)
	}
	if got := evalOne(t, `count((//load)[1]/child::text())`); got != "1" {
		t.Errorf("child::text() = %s", got)
	}
}

func TestPrologVariables(t *testing.T) {
	got := evalStrings(t, `
		declare variable $threshold := 0.5;
		declare variable $suffix := concat("-", "x");
		for $s in //service
		where $s/load < $threshold
		return concat($s/@name, $suffix)`)
	if strings.Join(got, ",") != "replica-catalog-x,storage-x" {
		t.Errorf("prolog vars = %v", got)
	}
}

func TestPrologExternalVariable(t *testing.T) {
	q := MustCompile(`
		declare variable $max external;
		count(//service[load < $max])`)
	seq, err := q.Eval(&Options{Context: doc(t), Vars: map[string]Sequence{"max": Singleton(0.5)}})
	if err != nil || StringValue(seq[0]) != "2" {
		t.Errorf("external var: %v %v", seq, err)
	}
	// Unbound external variable errors.
	if _, err := q.Eval(&Options{Context: doc(t)}); err == nil {
		t.Error("unbound external accepted")
	}
}

func TestUserFunctions(t *testing.T) {
	got := evalOne(t, `
		declare function local:double($x) { $x * 2 };
		declare function local:apply-twice($x) { local:double(local:double($x)) };
		local:apply-twice(3)`)
	if got != "12" {
		t.Errorf("user function = %s", got)
	}
	// Functions see prolog globals but not the caller's locals.
	got = evalOne(t, `
		declare variable $g := 10;
		declare function local:addg($x) { $x + $g };
		local:addg(5)`)
	if got != "15" {
		t.Errorf("global in function = %s", got)
	}
	// Recursion (factorial).
	got = evalOne(t, `
		declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
		local:fact(10)`)
	if got != "3628800" {
		t.Errorf("fact(10) = %s", got)
	}
	// Functions over nodes.
	got = evalOne(t, `
		declare function local:loadof($s) { number($s/load) };
		max(for $s in //service return local:loadof($s))`)
	if got != "0.8" {
		t.Errorf("loadof = %s", got)
	}
}

func TestUserFunctionErrors(t *testing.T) {
	// Wrong arity.
	if _, err := EvalString(`
		declare function local:f($a, $b) { $a + $b };
		local:f(1)`, nil); err == nil {
		t.Error("wrong arity accepted")
	}
	// Unbounded recursion trips the depth limit, not the stack.
	if _, err := EvalString(`
		declare function local:loop($n) { local:loop($n + 1) };
		local:loop(0)`, nil); err == nil || !strings.Contains(err.Error(), "recursion depth") {
		t.Errorf("runaway recursion: %v", err)
	}
	// Duplicate declaration.
	if _, err := Compile(`
		declare function local:f() { 1 };
		declare function local:f() { 2 };
		local:f()`); err == nil {
		t.Error("duplicate function accepted")
	}
	// Missing semicolon.
	if _, err := Compile(`declare variable $x := 1 $x`); err == nil {
		t.Error("missing semicolon accepted")
	}
}

func TestPrologDoesNotShadowPathUse(t *testing.T) {
	// "declare" as a plain element name must still work.
	d := xmldoc.MustParse(`<declare>v</declare>`)
	seq, err := EvalString(`string(/declare)`, d)
	if err != nil || StringValue(seq[0]) != "v" {
		t.Errorf("declare as element: %v %v", seq, err)
	}
}

func TestFunctionNoContextItem(t *testing.T) {
	// The context item is not visible inside a function body.
	if _, err := EvalString(`
		declare function local:bad() { ./service };
		local:bad()`, doc(t)); err == nil {
		t.Error("context item leaked into function body")
	}
}
