// Package container implements centralized virtual node hosting (thesis
// Ch. 6.8–6.9): a container concentrates many UPDF database nodes into one
// hosting environment. Virtual nodes keep their identity — address, local
// registry, neighbor links — but messages between two nodes of the same
// container short-circuit the network stack, and the container can answer a
// query over all of its virtual nodes with a single local evaluation pass.
//
// Virtual nodes are ordinary internal/updf nodes over ordinary
// internal/registry databases; only the internal/pdp transport between
// co-hosted nodes is short-circuited.
package container
