package container

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/updf"
	"wsda/internal/xq"
)

// Config configures a Container.
type Config struct {
	// Host is the container's address prefix; virtual node i gets the
	// address "<Host>/<i>".
	Host string
	// Net is the inter-container network. Intra-container messages bypass
	// it entirely.
	Net pdp.Network
	// Now is the clock.
	Now func() time.Time
}

// Container hosts virtual nodes.
type Container struct {
	cfg   Config
	inner *shortCircuitNet
	nodes []*updf.Node

	shortCircuited atomic.Int64 // intra-container messages
	forwarded      atomic.Int64 // messages that crossed the real network
}

// New creates an empty container.
func New(cfg Config) (*Container, error) {
	if cfg.Host == "" {
		return nil, fmt.Errorf("container: needs a host prefix")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("container: needs a network")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Container{cfg: cfg}
	c.inner = &shortCircuitNet{c: c, handlers: make(map[string]pdp.Handler)}
	return c, nil
}

// Host returns the container's address prefix.
func (c *Container) Host() string { return c.cfg.Host }

// AddrOf returns the address of virtual node i.
func (c *Container) AddrOf(i int) string { return fmt.Sprintf("%s/%d", c.cfg.Host, i) }

// AddNode creates virtual node i backed by the given registry and returns
// it. The node is registered both inside the container (short-circuit) and
// on the outer network (so remote peers can reach it).
func (c *Container) AddNode(i int, reg *registry.Registry) (*updf.Node, error) {
	addr := c.AddrOf(i)
	n, err := updf.NewNode(updf.Config{
		Addr:     addr,
		Net:      c.inner,
		Registry: reg,
		Now:      c.cfg.Now,
		Seed:     int64(i + 1),
	})
	if err != nil {
		return nil, err
	}
	c.nodes = append(c.nodes, n)
	return n, nil
}

// Nodes returns the hosted virtual nodes.
func (c *Container) Nodes() []*updf.Node { return c.nodes }

// Close unregisters every virtual node from the outer network.
func (c *Container) Close() {
	c.inner.mu.Lock()
	addrs := make([]string, 0, len(c.inner.handlers))
	for addr := range c.inner.handlers {
		addrs = append(addrs, addr)
	}
	c.inner.mu.Unlock()
	for _, addr := range addrs {
		c.cfg.Net.Unregister(addr)
	}
}

// Stats reports how many messages were short-circuited inside the
// container versus sent over the real network.
func (c *Container) Stats() (shortCircuited, forwarded int64) {
	return c.shortCircuited.Load(), c.forwarded.Load()
}

// QueryAll answers a query over the union of all virtual nodes' tuple sets
// with one pass — the container-level optimization of thesis Ch. 6.9 that
// avoids the message flood entirely when all nodes are co-hosted.
func (c *Container) QueryAll(query string, opts registry.QueryOptions) (xq.Sequence, error) {
	q, err := xq.Compile(query)
	if err != nil {
		return nil, err
	}
	var all xq.Sequence
	for _, n := range c.nodes {
		seq, err := n.Registry().QueryCompiled(q, opts)
		if err != nil {
			return nil, err
		}
		all = append(all, seq...)
	}
	return all, nil
}

// shortCircuitNet is the network the virtual nodes see: local destinations
// are dispatched synchronously in-process, everything else goes out over
// the real network. It also registers each virtual node on the outer
// network so that remote messages find their way in.
type shortCircuitNet struct {
	c        *Container
	mu       sync.RWMutex
	handlers map[string]pdp.Handler
}

var _ pdp.Network = (*shortCircuitNet)(nil)

func (s *shortCircuitNet) lookup(addr string) (pdp.Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[addr]
	return h, ok
}

func (s *shortCircuitNet) Register(addr string, h pdp.Handler) error {
	s.mu.Lock()
	s.handlers[addr] = h
	s.mu.Unlock()
	// Outer registration delegates into the container.
	return s.c.cfg.Net.Register(addr, func(m *pdp.Message) {
		if hh, ok := s.lookup(addr); ok {
			hh(m)
		}
	})
}

func (s *shortCircuitNet) Unregister(addr string) {
	s.mu.Lock()
	delete(s.handlers, addr)
	s.mu.Unlock()
	s.c.cfg.Net.Unregister(addr)
}

func (s *shortCircuitNet) Send(m *pdp.Message) error {
	if h, ok := s.lookup(m.To); ok {
		s.c.shortCircuited.Add(1)
		// Dispatch asynchronously to preserve the node's non-blocking send
		// semantics (a synchronous call could recurse query->result->...
		// arbitrarily deep).
		go h(m)
		return nil
	}
	s.c.forwarded.Add(1)
	return s.c.cfg.Net.Send(m)
}
