package container

import (
	"fmt"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/tuple"
	"wsda/internal/updf"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

func regWith(name string, i int) *registry.Registry {
	r := registry.New(registry.Config{Name: name})
	content := xmldoc.MustParse(fmt.Sprintf(`<service name="svc%d"><load>0.%d</load></service>`, i, i%10)).DocumentElement().Clone()
	if _, err := r.Publish(&tuple.Tuple{
		Link:    fmt.Sprintf("http://%s/svc%d", name, i),
		Type:    tuple.TypeService,
		Content: content,
	}, time.Hour); err != nil {
		panic(err)
	}
	return r
}

// buildContainer hosts n virtual nodes in a ring inside one container.
func buildContainer(t *testing.T, net pdp.Network, host string, n int) *Container {
	t.Helper()
	c, err := New(Config{Host: host, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(i, regWith(host, i)); err != nil {
			t.Fatalf("add node: %v", err)
		}
	}
	for i, node := range c.Nodes() {
		node.SetNeighbors([]string{c.AddrOf((i + 1) % n), c.AddrOf((i + n - 1) % n)})
	}
	return c
}

func TestIntraContainerShortCircuit(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	c := buildContainer(t, net, "hostA", 6)
	defer c.Close()

	o, err := updf.NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rs, err := o.Submit(updf.QuerySpec{
		Query: `for $s in //service return string($s/@name)`,
		Entry: c.AddrOf(0), Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Items) != 6 {
		t.Fatalf("hits = %d, want 6", len(rs.Items))
	}
	sc, fwd := c.Stats()
	if sc == 0 {
		t.Error("no messages short-circuited")
	}
	// Only the replies to the external originator cross the network.
	if fwd == 0 {
		t.Error("originator replies must cross the network")
	}
	if netMsgs := net.Stats().Messages; netMsgs >= sc {
		t.Errorf("network messages (%d) should be far fewer than short-circuited (%d)", netMsgs, sc)
	}
}

func TestCrossContainerTraffic(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	a := buildContainer(t, net, "hostA", 3)
	defer a.Close()
	b := buildContainer(t, net, "hostB", 3)
	defer b.Close()
	// Bridge the two rings.
	a.Nodes()[0].SetNeighbors(append(a.Nodes()[0].Neighbors(), b.AddrOf(0)))
	b.Nodes()[0].SetNeighbors(append(b.Nodes()[0].Neighbors(), a.AddrOf(0)))

	o, _ := updf.NewOriginator("orig", net, nil)
	defer o.Close()
	rs, err := o.Submit(updf.QuerySpec{
		Query: `count(//service)`,
		Entry: a.AddrOf(0), Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six nodes each counting their local tuple: six 1s.
	if len(rs.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(rs.Items))
	}
}

func TestQueryAllSinglePass(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	c := buildContainer(t, net, "hostA", 8)
	defer c.Close()

	seq, err := c.QueryAll(`for $s in //service return string($s/@name)`, registry.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 8 {
		t.Fatalf("hits = %d, want 8", len(seq))
	}
	// No messages at all: the pass is purely local.
	if net.Stats().Messages != 0 {
		t.Errorf("network messages = %d, want 0", net.Stats().Messages)
	}
	if _, err := c.QueryAll(`for $x in`, registry.QueryOptions{}); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestContainerValidation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	if _, err := New(Config{Net: net}); err == nil {
		t.Error("missing host accepted")
	}
	if _, err := New(Config{Host: "h"}); err == nil {
		t.Error("missing net accepted")
	}
}

func TestExternalReachability(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	c := buildContainer(t, net, "hostA", 2)
	defer c.Close()
	// A remote peer (plain node outside any container) can query into the
	// container through the outer network.
	reg := regWith("solo", 99)
	n, err := updf.NewNode(updf.Config{Addr: "solo/0", Net: net, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetNeighbors([]string{c.AddrOf(0)})
	c.Nodes()[0].SetNeighbors(append(c.Nodes()[0].Neighbors(), "solo/0"))

	o, _ := updf.NewOriginator("orig", net, nil)
	defer o.Close()
	rs, err := o.Submit(updf.QuerySpec{
		Query: `for $s in //service return string($s/@name)`,
		Entry: "solo/0", Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Items) != 3 {
		t.Fatalf("hits = %d, want 3 (solo + 2 virtual)", len(rs.Items))
	}
	var gotNames []string
	for _, it := range rs.Items {
		gotNames = append(gotNames, xq.StringValue(it))
	}
	found := false
	for _, s := range gotNames {
		if s == "svc99" {
			found = true
		}
	}
	if !found {
		t.Errorf("solo node results missing: %v", gotNames)
	}
}
