package tenant

import "net/http"

// Transport is an http.RoundTripper that attaches a bearer token to every
// request — how a daemon's own outbound clients (replica feed tails,
// shard-bootstrap pulls, router→shard backends) authenticate against
// peers that run behind a tenant gate.
type Transport struct {
	Token string            // bearer token attached to every request
	Base  http.RoundTripper // nil uses http.DefaultTransport
}

// RoundTrip implements http.RoundTripper. The request is cloned before
// the header is set, per the RoundTripper contract.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Token == "" {
		return base.RoundTrip(req)
	}
	req = req.Clone(req.Context())
	req.Header.Set("Authorization", "Bearer "+t.Token)
	return base.RoundTrip(req)
}

// WithToken wraps an http.Client so every request carries the bearer
// token. A nil client wraps http.DefaultClient's configuration; an empty
// token returns the client unchanged.
func WithToken(hc *http.Client, token string) *http.Client {
	if hc == nil {
		hc = &http.Client{}
	}
	if token == "" {
		return hc
	}
	wrapped := *hc
	wrapped.Transport = &Transport{Token: token, Base: hc.Transport}
	return &wrapped
}
