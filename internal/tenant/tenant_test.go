package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseTenantsFile(t *testing.T) {
	src := `
# comment line
alice  token=sesame rate=50 burst=100 concurrent=8
mon    key=6162636465666768 rate=5 concurrent=2 priority=bulk   # monitors
bare   token=justatoken
both   token=t2 key=00ff
`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("got %d tenants, want 4", s.Len())
	}
	alice := s.Lookup("alice")
	if alice == nil || alice.Token != "sesame" || alice.Rate != 50 ||
		alice.Burst != 100 || alice.MaxConcurrent != 8 || alice.Bulk {
		t.Fatalf("alice parsed wrong: %+v", alice)
	}
	mon := s.Lookup("mon")
	if mon == nil || string(mon.Key) != "abcdefgh" || !mon.Bulk || mon.MaxConcurrent != 2 {
		t.Fatalf("mon parsed wrong: %+v", mon)
	}
	if mon.Burst != 5 {
		t.Fatalf("mon burst should default to ceil(rate)=5, got %d", mon.Burst)
	}
	if bare := s.Lookup("bare"); bare == nil || bare.Rate != 0 || bare.Burst != 0 {
		t.Fatalf("bare should have unlimited quotas: %+v", s.Lookup("bare"))
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"no credential", "alice rate=5", "token= or key="},
		{"dup name", "a token=x\na token=y", "duplicate name"},
		{"dup token", "a token=x\nb token=x", "already in use"},
		{"bad option", "a token=x color=red", "unknown option"},
		{"bad rate", "a token=x rate=fast", "rate"},
		{"negative rate", "a token=x rate=-1", "negative rate"},
		{"bad priority", "a token=x priority=vip", "unknown priority"},
		{"bad key hex", "a key=zz", "key"},
		{"bare option", "a token", "not key=value"},
		{"dotted name", "a.b token=x", "invalid name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Parse(%q) err = %v, want substring %q", c.src, err, c.want)
			}
		})
	}
}

func TestAuthenticate(t *testing.T) {
	key := []byte("super-secret-hmac-key")
	s, err := NewSet(
		&Tenant{Name: "alice", Token: "sesame"},
		&Tenant{Name: "svc", Key: key},
	)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	now := time.Unix(1_700_000_000, 0)
	good := Mint("svc", key, now.Add(time.Hour))
	expired := Mint("svc", key, now.Add(-time.Minute))
	forged := Mint("svc", []byte("wrong-key"), now.Add(time.Hour))
	wrongName := Mint("ghost", key, now.Add(time.Hour))

	cases := []struct {
		name   string
		header string
		tenant string // expected tenant name, "" = error expected
		err    error  // expected sentinel when tenant == ""
	}{
		{"static bare", "sesame", "alice", nil},
		{"static bearer", "Bearer sesame", "alice", nil},
		{"scheme case-insensitive", "bearer sesame", "alice", nil},
		{"minted ok", "Bearer " + good, "svc", nil},
		{"minted bare", good, "svc", nil},
		{"empty", "", "", ErrNoToken},
		{"blank bearer", "Bearer   ", "", ErrNoToken},
		{"unknown static", "open-sesame", "", ErrUnknownToken},
		{"minted expired", expired, "", ErrExpired},
		{"minted forged", forged, "", ErrBadSignature},
		{"minted unknown tenant", wrongName, "", ErrUnknownToken},
		{"minted truncated", good[:len(good)-10], "", ErrBadSignature},
		{"minted malformed", "wsda1.svc.notanumber", "", ErrUnknownToken},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := s.Authenticate(c.header, now)
			if c.tenant == "" {
				if !errors.Is(err, c.err) {
					t.Fatalf("Authenticate(%q) err = %v, want %v", c.header, err, c.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Authenticate(%q): %v", c.header, err)
			}
			if got.Name != c.tenant {
				t.Fatalf("Authenticate(%q) = %s, want %s", c.header, got.Name, c.tenant)
			}
		})
	}
}

func TestMintedTokenTamperedExpiry(t *testing.T) {
	key := []byte("k")
	s, _ := NewSet(&Tenant{Name: "svc", Key: key})
	now := time.Unix(1_700_000_000, 0)
	tok := Mint("svc", key, now.Add(-time.Minute))
	// Stretch the expiry without re-signing: signature must fail before
	// the verifier even looks at the new expiry.
	parts := strings.Split(tok, ".")
	parts[2] = "9999999999"
	if _, err := s.Authenticate(strings.Join(parts, "."), now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered expiry err = %v, want ErrBadSignature", err)
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"/wsda/publish":       ClassControl,
		"/wsda/unpublish":     ClassControl,
		"/wsda/shard":         ClassControl,
		"/wsda/shard/cutover": ClassControl,
		"/router/cutover":     ClassControl,
		"/wsda/xquery":        ClassQuery,
		"/netquery":           ClassQuery,
		"/wsda/minquery":      ClassBrowse,
		"/wsda/presenter":     ClassBrowse,
		"/wsda/feed":          ClassBrowse,
		"/wsda/snapshot":      ClassBrowse,
		"/debug/slowlog":      ClassBrowse,
	}
	for path, want := range cases {
		if got := Classify(path); got != want {
			t.Errorf("Classify(%s) = %s, want %s", path, got, want)
		}
	}
}

func TestBucketRefillAndRetryAfter(t *testing.T) {
	var b bucket
	b.reset(2)
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(1, 2, now); !ok {
			t.Fatalf("take %d refused inside burst", i)
		}
	}
	ok, retry := b.take(1, 2, now)
	if ok {
		t.Fatal("take succeeded on empty bucket")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	// Half a second refills half a token at rate 1: still refused.
	if ok, _ = b.take(1, 2, now.Add(500*time.Millisecond)); ok {
		t.Fatal("take succeeded after half a refill")
	}
	// A full second refills the whole token.
	if ok, _ = b.take(1, 2, now.Add(1600*time.Millisecond)); !ok {
		t.Fatal("take refused after full refill")
	}
	// The bucket never overflows the burst.
	if got := b.peek(1, 2, now.Add(time.Hour)); got != 2 {
		t.Fatalf("peek after long idle = %v, want burst cap 2", got)
	}
}

func TestAdmissionLadder(t *testing.T) {
	a := newAdmission(10) // browse limit 5, query 9, control 10
	var held int
	for a.tryAcquire(ClassBrowse) {
		held++
	}
	if held != 5 {
		t.Fatalf("browse filled %d slots, want 5", held)
	}
	for a.tryAcquire(ClassQuery) {
		held++
	}
	if held != 9 {
		t.Fatalf("browse+query filled %d slots, want 9", held)
	}
	if !a.tryAcquire(ClassControl) {
		t.Fatal("control refused with a free slot")
	}
	held++
	if a.tryAcquire(ClassControl) {
		t.Fatal("control admitted past capacity")
	}
	a.release()
	held--
	if a.tryAcquire(ClassBrowse) {
		t.Fatal("browse admitted while gate above its tier")
	}
	if !a.tryAcquire(ClassControl) {
		t.Fatal("control refused the freed slot")
	}
	for i := 0; i < held; i++ {
		a.release()
	}
}
