package tenant

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Class buckets the WSDA surface into shedding tiers. When the global
// admission gate saturates, lower classes lose their slots first: browse
// work is refused once half the capacity is busy, queries at 90%, and
// control-plane writes only when the gate is completely full (the S29
// priority ladder).
type Class int

const (
	// ClassBrowse is cheap, retryable read traffic — minquery,
	// presenter lookups, snapshot pulls and feed view refreshes. Shed
	// first.
	ClassBrowse Class = iota
	// ClassQuery is real query work: /wsda/xquery and /netquery fan-outs
	// whose loss wastes downstream effort. Shed only under heavy load.
	ClassQuery
	// ClassControl is state-changing or administrative work — publish,
	// unpublish, shard admin. Shed last: refusing writes loses data that
	// soft-state expiry will not bring back.
	ClassControl
)

// String names the class for metric labels and flight-event notes.
func (c Class) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassControl:
		return "control"
	default:
		return "browse"
	}
}

// Classify maps a request path to its shedding class. Unknown paths
// default to browse, the first tier to shed.
func Classify(path string) Class {
	switch path {
	case "/wsda/publish", "/wsda/unpublish":
		return ClassControl
	case "/wsda/xquery", "/netquery":
		return ClassQuery
	}
	switch {
	case path == "/wsda/shard" || path == "/wsda/shard/cutover":
		return ClassControl
	case len(path) >= 8 && path[:8] == "/router/":
		return ClassControl
	}
	return ClassBrowse
}

// classFrac is the fraction of the global capacity each class may fill
// before its requests are shed — the admission ladder itself.
var classFrac = [3]float64{0.5, 0.9, 1.0}

// admission is the global in-flight gate shared by every tenant on a
// node. A single atomic counter tracks busy slots; a class is admitted
// while the counter is below its fraction of the capacity, so headroom
// above the browse threshold stays reserved for queries and control.
type admission struct {
	capacity int64
	limits   [3]int64 // per-class in-flight ceilings, derived from capacity
	inflight atomic.Int64
}

func newAdmission(capacity int) *admission {
	a := &admission{capacity: int64(capacity)}
	for c, f := range classFrac {
		l := int64(math.Ceil(float64(capacity) * f))
		if l < 1 {
			l = 1
		}
		a.limits[c] = l
	}
	return a
}

// tryAcquire claims a slot for the class, reporting false when the
// class's tier of the ladder is full. The caller must release() iff it
// got true.
func (a *admission) tryAcquire(c Class) bool {
	if a.inflight.Add(1) > a.limits[c] {
		a.inflight.Add(-1)
		return false
	}
	return true
}

func (a *admission) release() { a.inflight.Add(-1) }

// Inflight reports the busy admission slots (for the gauge and tests).
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// bucket is a lazily refilled token bucket. It is deliberately tiny: one
// mutex, refilled from the elapsed wall clock on each take, no timers.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *bucket) reset(tokens float64) {
	b.mu.Lock()
	b.tokens = tokens
	b.last = time.Time{}
	b.mu.Unlock()
}

// take spends one token, refilling first from the time elapsed since the
// last call. When the bucket is empty it reports how long until a token
// is available — the Retry-After hint.
func (b *bucket) take(rate float64, burst float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// peek reports the tokens currently available without spending one (for
// the per-tenant quota gauge).
func (b *bucket) peek(rate float64, burst float64, now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tokens
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			t = math.Min(burst, t+dt*rate)
		}
	}
	return t
}
