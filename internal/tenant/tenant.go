// Package tenant authenticates the WSDA HTTP surface and admission-controls
// it per tenant, so one flooding client cannot starve everyone else on a
// shared deployment (DESIGN.md S29).
//
// A deployment declares its tenants in a flat file (one tenant per line,
// see Parse) loaded with -tenants=FILE on registryd and routerd. Each
// tenant authenticates with a bearer token — either the static token from
// the file or a minted, expiring HMAC-SHA256 token (Mint) verified against
// the tenant's shared key — and carries its own quota envelope: a
// token-bucket sustained request rate and an in-flight concurrency cap.
// Above the per-tenant quotas sits one global admission gate whose slots
// are handed out by work class, so that when the node saturates, cheap
// browse traffic (minquery, presenter lookups, feed refreshes) is shed
// first and in-flight network queries and control-plane writes keep their
// headroom. Rejections are always whole-request 429s with a Retry-After
// hint, decided before the handler runs — an admitted stream is never cut
// mid-delivery.
package tenant

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Authentication failures. All of them surface to the client as an opaque
// 401; the distinctions exist for logs and tests.
var (
	// ErrNoToken means the request carried no bearer token at all.
	ErrNoToken = errors.New("tenant: no bearer token")
	// ErrUnknownToken means the token matched no configured tenant.
	ErrUnknownToken = errors.New("tenant: unknown token")
	// ErrExpired means a minted token's expiry is in the past.
	ErrExpired = errors.New("tenant: token expired")
	// ErrBadSignature means a minted token failed HMAC verification.
	ErrBadSignature = errors.New("tenant: bad token signature")
)

// mintPrefix versions the minted-token wire format:
//
//	wsda1.<tenant>.<expiry-unix>.<base64url(HMAC-SHA256(key, payload))>
//
// where payload is everything before the final dot.
const mintPrefix = "wsda1"

// Tenant is one authenticated principal and its quota envelope. The
// zero-value quotas mean "unlimited"; Parse applies the file defaults.
type Tenant struct {
	// Name identifies the tenant in metrics, logs and flight events.
	Name string
	// Token is the static bearer token ("" = minted tokens only).
	Token string
	// Key is the HMAC-SHA256 secret verifying minted tokens
	// (nil = static token only).
	Key []byte
	// Rate is the sustained admitted-request rate in requests/second
	// refilling the tenant's token bucket (0 = unlimited).
	Rate float64
	// Burst is the token-bucket depth — how far above Rate a tenant may
	// spike before throttling (defaults to ceil(Rate) when Rate > 0).
	Burst int
	// MaxConcurrent caps the tenant's in-flight admitted requests
	// (0 = unlimited).
	MaxConcurrent int
	// Bulk marks a background/monitoring tenant: all of its work sheds
	// at the browse threshold of the admission ladder, whatever the
	// endpoint (file option priority=bulk).
	Bulk bool

	inflight atomic.Int64
	bucket   bucket
}

// Inflight reports the tenant's currently admitted in-flight requests
// (exported for quota gauges and tests).
func (t *Tenant) Inflight() int64 { return t.inflight.Load() }

// Set is an immutable, concurrency-safe collection of tenants indexed by
// name and by static token.
type Set struct {
	byName  map[string]*Tenant
	byToken map[string]*Tenant
	order   []*Tenant
}

// NewSet builds a Set from already-constructed tenants, validating the
// same invariants as Parse. It backs tests and experiments that have no
// tenants file on disk.
func NewSet(tenants ...*Tenant) (*Set, error) {
	s := &Set{byName: map[string]*Tenant{}, byToken: map[string]*Tenant{}}
	for _, t := range tenants {
		if err := s.add(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Set) add(t *Tenant) error {
	if t.Name == "" || strings.ContainsAny(t.Name, " \t.") {
		return fmt.Errorf("tenant: invalid name %q (must be non-empty, no whitespace or dots)", t.Name)
	}
	if t.Token == "" && len(t.Key) == 0 {
		return fmt.Errorf("tenant %s: needs token= or key= to be authenticatable", t.Name)
	}
	if _, dup := s.byName[t.Name]; dup {
		return fmt.Errorf("tenant %s: duplicate name", t.Name)
	}
	if t.Token != "" {
		if _, dup := s.byToken[t.Token]; dup {
			return fmt.Errorf("tenant %s: static token already in use", t.Name)
		}
		s.byToken[t.Token] = t
	}
	if t.Rate < 0 {
		return fmt.Errorf("tenant %s: negative rate", t.Name)
	}
	if t.Rate > 0 && t.Burst <= 0 {
		t.Burst = int(math.Ceil(t.Rate))
	}
	t.bucket.reset(float64(t.Burst))
	s.byName[t.Name] = t
	s.order = append(s.order, t)
	return nil
}

// Lookup returns the tenant with the given name, or nil.
func (s *Set) Lookup(name string) *Tenant { return s.byName[name] }

// Tenants returns every tenant in file order.
func (s *Set) Tenants() []*Tenant { return s.order }

// Len reports the number of tenants in the set.
func (s *Set) Len() int { return len(s.order) }

// LoadFile reads a tenants file from disk (the -tenants=FILE flag).
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse reads the tenants file format: one tenant per line,
//
//	<name> key=value [key=value ...]
//
// with '#' comments and blank lines ignored. Options:
//
//	token=SECRET     static bearer token
//	key=HEX          hex-encoded HMAC-SHA256 secret for minted tokens
//	rate=N           sustained admitted requests/second (float, 0 = unlimited)
//	burst=N          token-bucket depth (default ceil(rate))
//	concurrent=N     in-flight admitted-request cap (0 = unlimited)
//	priority=P       "interactive" (default) or "bulk" (sheds first)
//
// Every tenant needs token= or key= (or both). Names and static tokens
// must be unique across the file.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{byName: map[string]*Tenant{}, byToken: map[string]*Tenant{}}
	sc := bufio.NewScanner(r)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		t := &Tenant{Name: fields[0]}
		for _, opt := range fields[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: option %q is not key=value", ln, opt)
			}
			var err error
			switch k {
			case "token":
				t.Token = v
			case "key":
				t.Key, err = hex.DecodeString(v)
				if err == nil && len(t.Key) == 0 {
					err = errors.New("empty key")
				}
			case "rate":
				t.Rate, err = strconv.ParseFloat(v, 64)
			case "burst":
				t.Burst, err = strconv.Atoi(v)
			case "concurrent":
				t.MaxConcurrent, err = strconv.Atoi(v)
			case "priority":
				switch v {
				case "interactive":
				case "bulk":
					t.Bulk = true
				default:
					err = fmt.Errorf("unknown priority %q", v)
				}
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("line %d: %s: %v", ln, k, err)
			}
		}
		if err := s.add(t); err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Mint signs an expiring bearer token for the named tenant with the
// tenant's HMAC key. The result is self-describing —
// wsda1.<name>.<expiry-unix>.<signature> — so the verifier can find the
// tenant and its key without a token database.
func Mint(name string, key []byte, expiry time.Time) string {
	payload := mintPrefix + "." + name + "." + strconv.FormatInt(expiry.Unix(), 10)
	return payload + "." + signPayload(key, payload)
}

func signPayload(key []byte, payload string) string {
	mac := hmac.New(sha256.New, key)
	io.WriteString(mac, payload)
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}

// Authenticate resolves an Authorization header value (or a bare token)
// to a tenant. Minted tokens are recognised by the wsda1. prefix and
// verified against the named tenant's key and expiry; anything else is
// looked up as a static token.
func (s *Set) Authenticate(authorization string, now time.Time) (*Tenant, error) {
	tok := strings.TrimSpace(authorization)
	if rest, ok := cutPrefixFold(tok, "bearer"); ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
		tok = strings.TrimSpace(rest)
	}
	if tok == "" {
		return nil, ErrNoToken
	}
	if strings.HasPrefix(tok, mintPrefix+".") {
		return s.verifyMinted(tok, now)
	}
	if t, ok := s.byToken[tok]; ok {
		return t, nil
	}
	return nil, ErrUnknownToken
}

func (s *Set) verifyMinted(tok string, now time.Time) (*Tenant, error) {
	parts := strings.Split(tok, ".")
	if len(parts) != 4 {
		return nil, ErrUnknownToken
	}
	name, expStr, sig := parts[1], parts[2], parts[3]
	t, ok := s.byName[name]
	if !ok || len(t.Key) == 0 {
		return nil, ErrUnknownToken
	}
	payload := tok[:len(tok)-len(sig)-1]
	if !hmac.Equal([]byte(sig), []byte(signPayload(t.Key, payload))) {
		return nil, ErrBadSignature
	}
	exp, err := strconv.ParseInt(expStr, 10, 64)
	if err != nil {
		return nil, ErrUnknownToken
	}
	if now.Unix() >= exp {
		return nil, ErrExpired
	}
	return t, nil
}

// cutPrefixFold is strings.CutPrefix with ASCII case folding, because
// the Authorization scheme is case-insensitive (RFC 9110 §11.1).
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}
