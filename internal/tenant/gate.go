package tenant

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"time"

	"wsda/internal/telemetry"
	"wsda/internal/wlog"
)

// DefaultCapacity is the global admission gate size when Config.Capacity
// is zero — the -admit-max flag default on registryd and routerd.
const DefaultCapacity = 256

// bypassPaths are served without authentication or admission control:
// liveness/readiness probes and metric scrapers carry no tokens, and a
// deployment whose health checks 401 flaps for no reason. Everything
// else — including /debug/* — requires a token once a gate is installed.
var bypassPaths = map[string]bool{
	"/healthz": true,
	"/readyz":  true,
	"/metrics": true,
	"/slo":     true,
}

// Bypassed reports whether the path skips the tenant gate entirely.
func Bypassed(path string) bool { return bypassPaths[path] }

// Config assembles a Gate. Set is required; everything else has a
// working zero value (telemetry handles nil receivers, the logger
// defaults to discard-level-nothing slog.Default()).
type Config struct {
	// Set holds the authenticatable tenants.
	Set *Set
	// Capacity is the global in-flight admission gate size
	// (0 = DefaultCapacity).
	Capacity int
	// Node names this process in flight events.
	Node string
	// Metrics receives the wsda_tenant_* families (nil ok).
	Metrics *telemetry.Metrics
	// Flight records tenant-admit/shed/throttle events for requests that
	// arrive with a ?tx= transaction (nil ok).
	Flight *telemetry.FlightRecorder
	// Log receives per-rejection debug lines (nil = slog.Default()).
	Log *slog.Logger
	// Now overrides the clock for tests (nil = time.Now).
	Now func() time.Time
}

// Gate is the multi-tenant edge middleware: bearer auth, per-tenant
// quotas and the priority-aware admission ladder, applied in front of an
// http.Handler via Wrap.
type Gate struct {
	set    *Set
	admit  *admission
	node   string
	flight *telemetry.FlightRecorder
	log    *slog.Logger
	now    func() time.Time

	admitted  *telemetry.CounterVec // by tenant
	shed      *telemetry.CounterVec // by tenant, class
	throttled *telemetry.CounterVec // by tenant, reason
	unauth    *telemetry.Counter
}

// NewGate builds a Gate and registers its metric families, including one
// quota gauge set per configured tenant.
func NewGate(cfg Config) *Gate {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	g := &Gate{
		set:    cfg.Set,
		admit:  newAdmission(capacity),
		node:   cfg.Node,
		flight: cfg.Flight,
		log:    cfg.Log,
		now:    cfg.Now,
	}
	if g.log == nil {
		g.log = slog.Default()
	}
	if g.now == nil {
		g.now = time.Now
	}
	m := cfg.Metrics
	g.admitted = m.CounterVec("wsda_tenant_admitted_total",
		"Requests admitted past auth, quotas and the admission gate.", "tenant")
	g.shed = m.CounterVec("wsda_tenant_shed_total",
		"Requests shed by the global admission ladder.", "tenant", "class")
	g.throttled = m.CounterVec("wsda_tenant_throttled_total",
		"Requests rejected on a per-tenant quota.", "tenant", "reason")
	g.unauth = m.Counter("wsda_tenant_unauthenticated_total",
		"Requests refused with 401: missing, unknown, expired or forged tokens.")
	m.GaugeFunc("wsda_admission_inflight",
		"Busy slots in the global admission gate.",
		func() float64 { return float64(g.admit.Inflight()) })
	m.GaugeFunc("wsda_admission_capacity",
		"Size of the global admission gate (-admit-max).",
		func() float64 { return float64(capacity) })
	inflight := m.GaugeFuncVec("wsda_tenant_inflight",
		"Admitted in-flight requests per tenant.", "tenant")
	tokens := m.GaugeFuncVec("wsda_tenant_rate_tokens",
		"Token-bucket tokens currently available per tenant.", "tenant")
	rateLim := m.GaugeFuncVec("wsda_tenant_rate_limit",
		"Configured sustained requests/second per tenant (0 = unlimited).", "tenant")
	concLim := m.GaugeFuncVec("wsda_tenant_concurrency_limit",
		"Configured in-flight cap per tenant (0 = unlimited).", "tenant")
	for _, t := range g.set.Tenants() {
		t := t
		inflight.With(func() float64 { return float64(t.Inflight()) }, t.Name)
		tokens.With(func() float64 {
			if t.Rate <= 0 {
				return float64(t.Burst)
			}
			return t.bucket.peek(t.Rate, float64(t.Burst), g.now())
		}, t.Name)
		rateLim.With(func() float64 { return t.Rate }, t.Name)
		concLim.With(func() float64 { return float64(t.MaxConcurrent) }, t.Name)
	}
	return g
}

// ctxKey carries the authenticated tenant name in the request context.
type ctxKey struct{}

// From returns the tenant name the Gate authenticated for this request
// context, or "" outside a gated request.
func From(ctx context.Context) string {
	name, _ := ctx.Value(ctxKey{}).(string)
	return name
}

// Wrap applies the gate in front of next: bypass paths pass straight
// through, everything else is authenticated (401), quota-checked and
// admission-checked (429 + Retry-After) before next runs. Slots are held
// until next returns, so admitted streams are never cut mid-delivery.
func (g *Gate) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if Bypassed(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		now := g.now()
		t, err := g.set.Authenticate(r.Header.Get("Authorization"), now)
		if err != nil {
			g.unauth.Inc()
			g.log.Debug("request unauthenticated",
				"path", r.URL.Path, "err", err.Error())
			w.Header().Set("WWW-Authenticate", `Bearer realm="wsda"`)
			http.Error(w, "unauthenticated", http.StatusUnauthorized)
			return
		}
		tx := r.URL.Query().Get("tx")
		class := Classify(r.URL.Path)
		if t.Bulk && class != ClassControl {
			class = ClassBrowse
		}
		if t.Rate > 0 {
			if ok, retry := t.bucket.take(t.Rate, float64(t.Burst), now); !ok {
				g.reject(w, r, t, tx, "rate", class, retry)
				return
			}
		}
		if t.MaxConcurrent > 0 && t.inflight.Add(1) > int64(t.MaxConcurrent) {
			t.inflight.Add(-1)
			g.reject(w, r, t, tx, "concurrency", class, time.Second)
			return
		} else if t.MaxConcurrent <= 0 {
			t.inflight.Add(1)
		}
		if !g.admit.tryAcquire(class) {
			t.inflight.Add(-1)
			g.shed.With(t.Name, class.String()).Inc()
			g.flight.Record(tx, telemetry.FlightTenantShed, g.node, t.Name, g.admit.Inflight(), class.String())
			g.log.Debug("request shed", wlog.AttrTenant, t.Name,
				"class", class.String(), "path", r.URL.Path)
			retryAfter(w, time.Second)
			http.Error(w, "overloaded: "+class.String()+" work shed", http.StatusTooManyRequests)
			return
		}
		defer func() {
			g.admit.release()
			t.inflight.Add(-1)
		}()
		g.admitted.With(t.Name).Inc()
		g.flight.Record(tx, telemetry.FlightTenantAdmit, g.node, t.Name, t.Inflight(), class.String())
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, t.Name)))
	})
}

// reject writes the per-tenant-quota 429 and records it.
func (g *Gate) reject(w http.ResponseWriter, r *http.Request, t *Tenant, tx, reason string, class Class, retry time.Duration) {
	g.throttled.With(t.Name, reason).Inc()
	g.flight.Record(tx, telemetry.FlightTenantThrottle, g.node, t.Name, 0, reason)
	g.log.Debug("request throttled", wlog.AttrTenant, t.Name,
		"reason", reason, "path", r.URL.Path)
	retryAfter(w, retry)
	http.Error(w, "tenant quota exceeded ("+reason+")", http.StatusTooManyRequests)
}

// retryAfter sets the Retry-After header, rounded up to whole seconds
// with a floor of 1 as the header only speaks integral seconds.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}
