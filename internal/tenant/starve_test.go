package tenant

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFloodingTenantCannotStarveAnother is the fairness guarantee behind
// the whole subsystem, run under -race in make check: a tenant saturating
// the edge with closed-loop floods must not move another tenant's
// admission latency, because its footprint is pinned by its concurrency
// quota. The well-behaved tenant's p99 time-to-handler is asserted
// against an absolute bound.
func TestFloodingTenantCannotStarveAnother(t *testing.T) {
	const (
		serviceTime = 2 * time.Millisecond
		floodCap    = 8
		samples     = 60
	)
	s, err := NewSet(
		&Tenant{Name: "alice", Token: "a", MaxConcurrent: 4},
		&Tenant{Name: "flood", Token: "f", MaxConcurrent: floodCap},
	)
	if err != nil {
		t.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(serviceTime)
	})
	h := NewGate(Config{Set: s, Capacity: 64}).Wrap(inner)

	stop := make(chan struct{})
	var floodSent, floodShed atomic.Int64
	var wg sync.WaitGroup
	// 64 closed-loop flooders against an 8-slot quota: at any instant
	// ~56 of them are being bounced with instant 429s.
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/wsda/xquery", nil)
				req.Header.Set("Authorization", "Bearer f")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				floodSent.Add(1)
				if w.Code == http.StatusTooManyRequests {
					floodShed.Add(1)
					time.Sleep(time.Millisecond) // honest client backoff
				}
			}
		}()
	}

	// Alice sends paced sequential queries and measures time-to-admission
	// (the handler's entry is its first instruction, so total latency ≈
	// admission wait + serviceTime).
	lat := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		req := httptest.NewRequest(http.MethodGet, "/wsda/xquery", nil)
		req.Header.Set("Authorization", "Bearer a")
		w := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(w, req)
		d := time.Since(t0)
		if w.Code != http.StatusOK {
			t.Fatalf("alice request %d rejected with %d under flood", i, w.Code)
		}
		lat = append(lat, d)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if floodShed.Load() == 0 {
		t.Fatalf("flood was never throttled (sent %d) — not a flood", floodSent.Load())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	// Alice's requests never queue behind the flood: the gate has 64
	// slots, the flood holds at most 8, so admission is immediate and
	// latency is serviceTime plus scheduling noise. 25x headroom keeps
	// this robust on loaded CI machines; without per-tenant caps the
	// flood would hold all 64 slots and push this into the hundreds of
	// milliseconds.
	if limit := 50 * time.Millisecond; p99 > limit {
		t.Fatalf("alice p99 = %v under flood, want < %v (flood sent %d, shed %d)",
			p99, limit, floodSent.Load(), floodShed.Load())
	}
}
