package tenant

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/telemetry"
)

func okHandler() (http.Handler, *atomic.Int64) {
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprintln(w, "served "+r.URL.Path+" for "+From(r.Context()))
	}), &served
}

func do(h http.Handler, path, token string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestGateAuthMatrix(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame"})
	inner, served := okHandler()
	m := telemetry.NewMetrics()
	h := NewGate(Config{Set: s, Metrics: m}).Wrap(inner)

	if w := do(h, "/wsda/minquery", ""); w.Code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", w.Code)
	} else if w.Header().Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	if w := do(h, "/wsda/minquery", "wrong"); w.Code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", w.Code)
	}
	w := do(h, "/wsda/minquery", "sesame")
	if w.Code != http.StatusOK {
		t.Fatalf("good token: %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), "for alice") {
		t.Fatalf("tenant identity not in context: %q", w.Body.String())
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", served.Load())
	}
}

// TestGateBypassesProbePaths is the regression test for the probe/scraper
// bugfix: health checks and metric scrapes carry no tokens and must never
// be gated, or every -tenants deployment flaps.
func TestGateBypassesProbePaths(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame", Rate: 0.0001, Burst: 1})
	inner, _ := okHandler()
	h := NewGate(Config{Set: s}).Wrap(inner)

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/slo"} {
		// Repeatedly, far beyond any quota, with no token at all.
		for i := 0; i < 20; i++ {
			if w := do(h, path, ""); w.Code != http.StatusOK {
				t.Fatalf("%s probe %d: %d, want 200 (bypass)", path, i, w.Code)
			}
		}
	}
	// The same unauthenticated request anywhere else is refused.
	if w := do(h, "/wsda/minquery", ""); w.Code != http.StatusUnauthorized {
		t.Fatalf("/wsda/minquery without token: %d, want 401", w.Code)
	}
}

func TestGateRateQuota(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame", Rate: 1, Burst: 2})
	inner, served := okHandler()
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := telemetry.NewMetrics()
	h := NewGate(Config{Set: s, Metrics: m, Now: clock}).Wrap(inner)

	for i := 0; i < 2; i++ {
		if w := do(h, "/wsda/minquery", "sesame"); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d, want 200", i, w.Code)
		}
	}
	w := do(h, "/wsda/minquery", "sesame")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over rate: %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	now = now.Add(time.Second) // one token refills
	if w := do(h, "/wsda/minquery", "sesame"); w.Code != http.StatusOK {
		t.Fatalf("after refill: %d, want 200", w.Code)
	}
	if served.Load() != 3 {
		t.Fatalf("handler ran %d times, want 3", served.Load())
	}
}

func TestGateConcurrencyQuotaAndRelease(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame", MaxConcurrent: 2})
	enter := make(chan struct{}, 8)
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enter <- struct{}{}
		<-release
	})
	h := NewGate(Config{Set: s}).Wrap(inner)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do(h, "/wsda/xquery", "sesame")
		}()
	}
	<-enter
	<-enter // both slots busy inside the handler
	if w := do(h, "/wsda/xquery", "sesame"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("third concurrent request: %d, want 429", w.Code)
	}
	close(release)
	wg.Wait()
	// Slots released: admitted again.
	rel2 := make(chan struct{})
	close(rel2)
	if got := s.Lookup("alice").Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
	h2 := NewGate(Config{Set: s}).Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	if w := do(h2, "/wsda/xquery", "sesame"); w.Code != http.StatusOK {
		t.Fatalf("after release: %d, want 200", w.Code)
	}
}

func TestGateShedsBrowseBeforeQuery(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame"})
	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
	})
	m := telemetry.NewMetrics()
	// Capacity 4: browse limit 2, query 4 (ceil(3.6)), control 4.
	h := NewGate(Config{Set: s, Capacity: 4, Metrics: m}).Wrap(inner)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do(h, "/wsda/minquery", "sesame")
		}()
	}
	<-entered
	<-entered // gate half full with browse work
	// The browse tier is saturated...
	if w := do(h, "/wsda/minquery", "sesame"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("browse at 50%%: %d, want 429 shed", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	// ...but queries and writes still have reserved headroom.
	wg.Add(2)
	go func() { defer wg.Done(); do(h, "/wsda/xquery", "sesame") }()
	go func() { defer wg.Done(); do(h, "/wsda/publish", "sesame") }()
	<-entered
	<-entered
	close(block)
	wg.Wait()
}

// TestGateBulkTenantShedsFirst checks that priority=bulk demotes even a
// bulk tenant's queries to the browse tier.
func TestGateBulkTenantShedsFirst(t *testing.T) {
	s, _ := NewSet(
		&Tenant{Name: "live", Token: "a"},
		&Tenant{Name: "mon", Token: "b", Bulk: true},
	)
	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
	})
	h := NewGate(Config{Set: s, Capacity: 4}).Wrap(inner)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do(h, "/wsda/xquery", "b")
		}()
	}
	<-entered
	<-entered
	// mon's xquery work classifies as browse: tier full, shed.
	if w := do(h, "/wsda/xquery", "b"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("bulk tenant query at browse tier: %d, want 429", w.Code)
	}
	// live's identical query uses the query tier: admitted.
	wg.Add(1)
	go func() { defer wg.Done(); do(h, "/wsda/xquery", "a") }()
	<-entered
	close(block)
	wg.Wait()
}

func TestGateFlightAndMetrics(t *testing.T) {
	s, _ := NewSet(&Tenant{Name: "alice", Token: "sesame", Rate: 1, Burst: 1})
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{})
	m := telemetry.NewMetrics()
	inner, _ := okHandler()
	h := NewGate(Config{Set: s, Metrics: m, Flight: fr, Node: "edge"}).Wrap(inner)

	do(h, "/wsda/minquery?tx=t1", "sesame") // admitted
	do(h, "/wsda/minquery?tx=t1", "sesame") // throttled (burst 1)
	info := fr.Tx("t1")
	if info == nil {
		t.Fatal("no flight recording for t1")
	}
	var kinds []string
	for _, ev := range info.Events {
		kinds = append(kinds, ev.Kind)
		if ev.Peer != "alice" || ev.Node != "edge" {
			t.Fatalf("event %+v: peer/node not tenant/edge", ev)
		}
	}
	sort.Strings(kinds)
	if strings.Join(kinds, ",") != telemetry.FlightTenantAdmit+","+telemetry.FlightTenantThrottle {
		t.Fatalf("flight kinds = %v", kinds)
	}

	var buf strings.Builder
	m.WritePrometheus(&buf)
	for _, want := range []string{
		`wsda_tenant_admitted_total{tenant="alice"} 1`,
		`wsda_tenant_throttled_total{tenant="alice",reason="rate"} 1`,
		`wsda_tenant_rate_limit{tenant="alice"} 1`,
		`wsda_tenant_inflight{tenant="alice"} 0`,
		`wsda_admission_capacity 256`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
