package updf

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/topology"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// testCluster builds a cluster over g where node i holds one service tuple
// named svc<i> in domain dom<i%2>.
func testCluster(t *testing.T, g *topology.Graph, net pdp.Network) *Cluster {
	t.Helper()
	c, err := BuildCluster(g, ClusterConfig{
		Net: net,
		// Tests drive sub-second deadlines; keep the halving floor tiny so
		// the dynamic abort behaviour is observable.
		AbortFloor: time.Millisecond,
		RegistryFor: func(i int) *registry.Registry {
			r := registry.New(registry.Config{Name: fmt.Sprintf("reg%d", i)})
			content := xmldoc.MustParse(fmt.Sprintf(
				`<service name="svc%d" domain="dom%d"><load>0.%d</load></service>`,
				i, i%2, i%10)).DocumentElement().Clone()
			if _, err := r.Publish(&tuple.Tuple{
				Link:    fmt.Sprintf("http://dom%d/svc%d", i%2, i),
				Type:    tuple.TypeService,
				Content: content,
			}, time.Hour); err != nil {
				t.Fatalf("publish: %v", err)
			}
			return r
		},
	})
	if err != nil {
		t.Fatalf("build cluster: %v", err)
	}
	return c
}

const allNames = `for $s in //service return string($s/@name)`

func names(rs *ResultSet) []string {
	out := make([]string, len(rs.Items))
	for i, it := range rs.Items {
		out[i] = xq.StringValue(it)
	}
	return out
}

func submit(t *testing.T, o *Originator, spec QuerySpec) *ResultSet {
	t.Helper()
	rs, err := o.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return rs
}

func newTestNet() *simnet.Network { return simnet.New(simnet.Config{}) }

func TestRoutedFloodLine(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(4), net)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1})
	if rs.Aborted {
		t.Fatal("aborted")
	}
	got := names(rs)
	if len(got) != 4 {
		t.Fatalf("hits = %d (%v), want 4", len(got), got)
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("svc%d", i)
		found := false
		for _, n := range got {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s in %v", want, got)
		}
	}
}

func TestRadiusScoping(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(6), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	for radius, want := range map[int]int{0: 1, 1: 2, 2: 3, 5: 6, -1: 6} {
		rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: radius})
		if len(rs.Items) != want {
			t.Errorf("radius %d: hits = %d, want %d", radius, len(rs.Items), want)
		}
	}
}

func TestLoopDetectionRing(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	g := topology.Ring(8)
	c := testCluster(t, g, net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1})
	if len(rs.Items) != 8 {
		t.Fatalf("hits = %d, want 8 (each node exactly once)", len(rs.Items))
	}
	st := c.TotalStats()
	if st.Evals != 8 {
		t.Errorf("evals = %d, want 8", st.Evals)
	}
	if st.Duplicates == 0 {
		t.Error("a ring flood must hit duplicates")
	}
}

func TestDirectResponse(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Tree(7, 2), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Direct, Radius: -1})
	if rs.Aborted {
		t.Fatal("aborted")
	}
	if len(rs.Items) != 7 {
		t.Fatalf("hits = %d, want 7", len(rs.Items))
	}
	if rs.ExpectedHits != 7 {
		t.Errorf("expected hits = %d", rs.ExpectedHits)
	}
	// Every node delivered directly: sources are the nodes themselves.
	if len(rs.Sources) != 7 {
		t.Errorf("sources = %v", rs.Sources)
	}
}

func TestMetadataResponse(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Tree(7, 2), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	// Only dom0 services match: nodes 0, 2, 4, 6.
	q := `for $s in //service[@domain="dom0"] return string($s/@name)`
	rs := submit(t, o, QuerySpec{Query: q, Entry: "node/0", Mode: pdp.Metadata, Radius: -1})
	if rs.Aborted {
		t.Fatal("aborted")
	}
	got := names(rs)
	if len(got) != 4 {
		t.Fatalf("hits = %d (%v), want 4", len(got), got)
	}
	for _, n := range got {
		if !strings.HasPrefix(n, "svc") {
			t.Errorf("bad item %q", n)
		}
	}
	if len(rs.Sources) != 4 {
		t.Errorf("sources = %v", rs.Sources)
	}
}

func TestReferralResponse(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Ring(6), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Referral, Radius: -1})
	if rs.Aborted {
		t.Fatal("aborted")
	}
	if len(rs.Items) != 6 {
		t.Fatalf("hits = %d, want 6", len(rs.Items))
	}
	if rs.NodesVisited != 6 {
		t.Errorf("visited = %d", rs.NodesVisited)
	}
	// Referral radius limits the frontier depth.
	rs = submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Referral, Radius: 1})
	if len(rs.Items) != 3 { // node 0 plus its two ring neighbors
		t.Errorf("radius-1 referral hits = %d, want 3", len(rs.Items))
	}
}

func TestPipelinedStreaming(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(5), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	var mu sync.Mutex
	var streamed []string
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1, Pipeline: true,
		OnItem: func(it xq.Item, source string) bool {
			mu.Lock()
			streamed = append(streamed, xq.StringValue(it))
			mu.Unlock()
			return true
		},
	})
	if len(rs.Items) != 5 {
		t.Fatalf("hits = %d, want 5", len(rs.Items))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(streamed) != 5 {
		t.Errorf("streamed = %d", len(streamed))
	}
	if rs.TimeToFirst > rs.Elapsed {
		t.Error("first-result latency exceeds total latency")
	}
}

func TestOnItemCancellation(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(10), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	count := 0
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1, Pipeline: true,
		OnItem: func(xq.Item, string) bool {
			count++
			return count < 3
		},
	})
	if len(rs.Items) != 3 {
		t.Errorf("items = %d, want 3 (early close)", len(rs.Items))
	}
}

func TestStaticLoopTimeoutDropsQuery(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(2), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	// A loop timeout in the past: every node drops the query; the
	// originator times out with nothing.
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: -time.Second, AbortTimeout: 100 * time.Millisecond,
	})
	if !rs.Aborted || len(rs.Items) != 0 {
		t.Errorf("rs = %+v", rs)
	}
	if c.TotalStats().DroppedExpired == 0 {
		t.Error("no drops recorded")
	}
}

func TestDynamicAbortDeliversPartial(t *testing.T) {
	net := simnet.New(simnet.Config{Delay: func(from, to string) time.Duration {
		// The link into node/3 is pathologically slow.
		if to == "node/3" || from == "node/3" {
			return 400 * time.Millisecond
		}
		return time.Millisecond
	}})
	defer net.Close()
	c := testCluster(t, topology.Line(4), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 2 * time.Second, AbortTimeout: 200 * time.Millisecond,
	})
	// Node 3 is unreachable within the budget, but 0..2 must arrive.
	if len(rs.Items) < 3 {
		t.Errorf("partial hits = %d, want >= 3", len(rs.Items))
	}
	if len(rs.Items) > 3 {
		t.Errorf("hits = %d: node/3 should not have made it", len(rs.Items))
	}
	if c.TotalStats().Aborts == 0 {
		t.Error("no aborts recorded")
	}
}

func TestNeighborPolicies(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	g := topology.Random(24, 5, 11)
	c := testCluster(t, g, net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	flood := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1, Policy: PolicyFlood})
	if len(flood.Items) != 24 {
		t.Errorf("flood hits = %d, want 24", len(flood.Items))
	}
	k1 := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1, Policy: PolicyRandom, Fanout: 1})
	if len(k1.Items) >= 24 || len(k1.Items) == 0 {
		t.Errorf("random-1 hits = %d, want partial coverage", len(k1.Items))
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(2), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: `no-such-fn(1)`, Entry: "node/0", Mode: pdp.Routed, Radius: -1})
	if rs.Aborted {
		t.Fatal("aborted rather than completed with errors")
	}
	if len(rs.Errs) == 0 {
		t.Error("evaluation errors not propagated")
	}
	if c.TotalStats().EvalErrors != 2 {
		t.Errorf("eval errors = %d", c.TotalStats().EvalErrors)
	}
}

func TestStateTableGC(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(2), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 50 * time.Millisecond, AbortTimeout: 40 * time.Millisecond,
	})
	if c.Nodes[0].StateTableSize() == 0 {
		t.Error("state entry should exist right after query")
	}
	time.Sleep(80 * time.Millisecond)
	if c.Nodes[0].StateTableSize() != 0 {
		t.Error("state entry survived past loop timeout")
	}
	c.Nodes[0].SweepStates()
}

func TestConcurrentQueries(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Random(16, 4, 3), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := o.Submit(QuerySpec{
				Query: allNames, Entry: fmt.Sprintf("node/%d", i), Mode: pdp.Routed, Radius: -1,
			})
			if err != nil {
				errs <- err
				return
			}
			if len(rs.Items) != 16 {
				errs <- fmt.Errorf("query %d: hits = %d", i, len(rs.Items))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServentModel(t *testing.T) {
	// Servent model: the originator's own node is the entry; agent model
	// was exercised by every other test (remote entry).
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(3), net)
	defer c.Close()
	// Co-located: originator shares the address space of node/0's host.
	o, _ := NewOriginator("node/0-origin", net, nil)
	defer o.Close()
	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1})
	if len(rs.Items) != 3 {
		t.Errorf("hits = %d", len(rs.Items))
	}
}

func TestNodeValidation(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewNode(Config{Addr: "a"}); err == nil {
		t.Error("missing net accepted")
	}
	if _, err := NewNode(Config{Addr: "a", Net: net}); err == nil {
		t.Error("missing registry accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()
	if _, err := o.Submit(QuerySpec{Query: "1"}); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := o.Submit(QuerySpec{Query: "1", Entry: "nobody"}); err == nil {
		t.Error("unknown entry accepted")
	}
}
