package updf

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// memberNode builds a node with one tuple and no static neighbors.
func memberNode(t *testing.T, net pdp.Network, i int) *Node {
	t.Helper()
	r := registry.New(registry.Config{Name: fmt.Sprintf("mreg%d", i), DefaultTTL: time.Hour})
	content := xmldoc.MustParse(fmt.Sprintf(`<service name="msvc%d"/>`, i)).DocumentElement()
	if _, err := r.Publish(&tuple.Tuple{
		Link: fmt.Sprintf("http://m/%d", i), Type: tuple.TypeService, Content: content,
	}, time.Hour); err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{
		Addr: fmt.Sprintf("node/%d", i), Net: net, Registry: r,
		AbortFloor: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func waitFor(t *testing.T, deadline time.Duration, cond func() bool, msg string) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestMembershipBootstrap(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	const n = 6
	nodes := make([]*Node, n)
	mems := make([]*Membership, n)
	for i := 0; i < n; i++ {
		nodes[i] = memberNode(t, net, i)
		defer nodes[i].Close()
	}
	// Everyone bootstraps off node/0 only; transitive discovery must
	// connect the rest.
	for i := 0; i < n; i++ {
		m, err := nodes[i].StartMembership(MembershipConfig{
			Seeds:  []string{"node/0"},
			Period: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
	}
	defer func() {
		for _, m := range mems {
			if m != nil {
				m.Stop()
			}
		}
	}()

	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if len(nodes[i].Neighbors()) < n-1 {
				return false
			}
		}
		return true
	}, "full mesh never formed")

	// A network query now reaches everyone without any static wiring.
	o, err := NewOriginator("orig-m", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	rs, err := o.Submit(QuerySpec{
		Query: `for $s in //service return string($s/@name)`,
		Entry: "node/3", Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Items) != n {
		t.Errorf("hits = %d, want %d", len(rs.Items), n)
	}
}

func TestMembershipChurn(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	const n = 5
	nodes := make([]*Node, n)
	mems := make([]*Membership, n)
	for i := 0; i < n; i++ {
		nodes[i] = memberNode(t, net, i)
	}
	for i := 0; i < n; i++ {
		m, err := nodes[i].StartMembership(MembershipConfig{
			Seeds:  []string{"node/0", "node/1"},
			Period: 15 * time.Millisecond,
			TTL:    50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
	}
	waitFor(t, 3*time.Second, func() bool {
		return len(nodes[2].Neighbors()) >= n-1
	}, "mesh never formed")

	// node/4 departs abruptly (no goodbye).
	mems[4].Stop()
	nodes[4].Close()
	mems[4] = nil

	waitFor(t, 3*time.Second, func() bool {
		for _, nb := range nodes[2].Neighbors() {
			if nb == "node/4" {
				return false
			}
		}
		return len(nodes[2].Neighbors()) >= 3
	}, "departed peer never aged out")

	// Queries still cover the survivors.
	o, _ := NewOriginator("orig-c", net, nil)
	defer o.Close()
	rs, err := o.Submit(QuerySpec{
		Query: `count(//service)`, Entry: "node/2", Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Items) != n-1 {
		t.Errorf("answers = %d, want %d survivors", len(rs.Items), n-1)
	}
	for i := 0; i < 4; i++ {
		mems[i].Stop()
		nodes[i].Close()
	}
}

func TestMembershipDoubleStart(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	node := memberNode(t, net, 0)
	defer node.Close()
	m, err := node.StartMembership(MembershipConfig{Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.StartMembership(MembershipConfig{}); err == nil {
		t.Error("double start accepted")
	}
	m.Stop()
	// After stopping, a fresh membership may start.
	m2, err := node.StartMembership(MembershipConfig{Period: time.Hour})
	if err != nil {
		t.Errorf("restart failed: %v", err)
	}
	m2.Stop()
}

func TestAdvertiseSelfMapsOverlay(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	const n = 4
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = memberNode(t, net, i)
		defer nodes[i].Close()
	}
	for i := 0; i < n; i++ {
		nodes[i].SetNeighbors([]string{
			fmt.Sprintf("node/%d", (i+1)%n),
			fmt.Sprintf("node/%d", (i+n-1)%n),
		})
		if err := nodes[i].AdvertiseSelf(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// A network query over node tuples maps the whole overlay.
	o, _ := NewOriginator("orig-adv", net, nil)
	defer o.Close()
	rs, err := o.Submit(QuerySpec{
		Query: `for $n in /tupleset/tuple[@type="node"]/content/node
		        return concat($n/@addr, "(", count($n/neighbor), ")")`,
		Entry: "node/0", Mode: pdp.Routed, Radius: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Items) != n {
		t.Fatalf("overlay map entries = %d, want %d", len(rs.Items), n)
	}
	// Each node orders its own results; cross-node arrival order is
	// unspecified, so sort client-side.
	var got []string
	for _, it := range rs.Items {
		got = append(got, xq.StringValue(it))
	}
	sort.Strings(got)
	for i, g := range got {
		want := fmt.Sprintf("node/%d(2)", i)
		if g != want {
			t.Errorf("entry %d = %q, want %q", i, g, want)
		}
	}
}

func TestMembershipMaxNeighbors(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	const n = 6
	nodes := make([]*Node, n)
	mems := make([]*Membership, n)
	for i := 0; i < n; i++ {
		nodes[i] = memberNode(t, net, i)
		defer nodes[i].Close()
	}
	for i := 0; i < n; i++ {
		m, err := nodes[i].StartMembership(MembershipConfig{
			Seeds: []string{"node/0"}, Period: 15 * time.Millisecond, MaxNeighbors: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		defer m.Stop()
	}
	waitFor(t, 3*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if len(nodes[i].Neighbors()) == 0 {
				return false
			}
		}
		return true
	}, "no neighbors formed")
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < n; i++ {
		if got := len(nodes[i].Neighbors()); got > 2 {
			t.Errorf("node %d neighbors = %d, want <= 2", i, got)
		}
	}
}
