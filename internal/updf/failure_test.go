package updf

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/simnet"
	"wsda/internal/topology"
)

// TestMessageLossStillTerminates injects heavy message loss and checks
// that queries still terminate (via the abort timeout) with partial
// results instead of hanging — the reliability property of thesis Ch. 6.6.
func TestMessageLossStillTerminates(t *testing.T) {
	var dropCounter atomic.Int64
	net := simnet.New(simnet.Config{
		Drop: func(m *pdp.Message) bool {
			// Never drop at the originator boundary, so the run is not
			// trivially empty; drop ~30% of inter-node traffic (Drop is
			// called concurrently, so no shared rand.Rand here).
			if m.From == "orig" || m.To == "orig" {
				return false
			}
			return dropCounter.Add(1)%10 < 3
		},
	})
	defer net.Close()
	c := testCluster(t, topology.Random(16, 4, 6), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	done := make(chan *ResultSet, 1)
	go func() {
		rs, err := o.Submit(QuerySpec{
			Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
			LoopTimeout: 2 * time.Second, AbortTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Error(err)
		}
		done <- rs
	}()
	select {
	case rs := <-done:
		if len(rs.Items) == 0 && !rs.Aborted {
			t.Error("no results and no abort — silent failure")
		}
		if len(rs.Items) > 16 {
			t.Errorf("hits = %d > nodes", len(rs.Items))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query hung under message loss")
	}
}

// TestDeadNeighborIgnored checks that a neighbor that disappeared from the
// network does not break queries: sends to it fail silently and the abort
// timeout reclaims the subtree.
func TestDeadNeighborIgnored(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(3), net)
	defer c.Close()
	// node/1 names a phantom neighbor.
	c.Nodes[1].SetNeighbors(append(c.Nodes[1].Neighbors(), "node/ghost"))
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 2 * time.Second, AbortTimeout: 500 * time.Millisecond,
	})
	if len(rs.Items) != 3 {
		t.Errorf("hits = %d, want 3", len(rs.Items))
	}
}

// TestPropertyExactlyOnceAcrossTopologies is the loop-detection invariant
// over randomized topologies: an unbounded flood evaluates every node
// exactly once and collects exactly one answer per node.
func TestPropertyExactlyOnceAcrossTopologies(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, build := range []func() *topology.Graph{
			func() *topology.Graph { return topology.Random(12, 3, seed) },
			func() *topology.Graph { return topology.PowerLaw(12, 2, seed) },
		} {
			g := build()
			net := newTestNet()
			c := testCluster(t, g, net)
			o, _ := NewOriginator("orig", net, nil)
			rs, err := o.Submit(QuerySpec{
				Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
			})
			st := c.TotalStats()
			o.Close()
			c.Close()
			net.Close()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(rs.Items) != 12 || st.Evals != 12 {
				t.Errorf("seed %d: hits=%d evals=%d want 12/12 (dups=%d)",
					seed, len(rs.Items), st.Evals, st.Duplicates)
			}
		}
	}
}

// TestPropertyRadiusMatchesBFS checks that radius scoping reaches exactly
// the BFS horizon when links have uniform latency. (With wildly skewed
// latencies the horizon is only an upper bound: a query can first reach a
// node over a longer path and the loop-detected duplicate arriving later
// over the shorter path cannot restore the larger hop budget — the classic
// TTL-scoping approximation of Gnutella-style floods.)
func TestPropertyRadiusMatchesBFS(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := topology.Random(14, 3, seed)
		net := simnet.New(simnet.Config{Delay: simnet.UniformDelay(2 * time.Millisecond)})
		c := testCluster(t, g, net)
		o, _ := NewOriginator("orig", net, nil)
		for radius := 0; radius <= 3; radius++ {
			want := g.ReachableWithin(0, radius)
			rs, err := o.Submit(QuerySpec{
				Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: radius,
			})
			if err != nil {
				t.Fatalf("seed %d r %d: %v", seed, radius, err)
			}
			if len(rs.Items) != want {
				t.Errorf("seed %d radius %d: hits=%d, BFS horizon=%d", seed, radius, len(rs.Items), want)
			}
		}
		o.Close()
		c.Close()
		net.Close()
	}
}

// TestAllResponseModesAgree checks that the four response modes return the
// same multiset of items on the same network.
func TestAllResponseModesAgree(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Random(10, 3, 21), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	counts := map[pdp.ResponseMode]map[string]int{}
	for _, mode := range []pdp.ResponseMode{pdp.Routed, pdp.Direct, pdp.Metadata, pdp.Referral} {
		rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: mode, Radius: -1})
		m := map[string]int{}
		for _, n := range names(rs) {
			m[n]++
		}
		counts[mode] = m
	}
	want := counts[pdp.Routed]
	if len(want) != 10 {
		t.Fatalf("routed found %d distinct items", len(want))
	}
	for mode, got := range counts {
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("mode %s disagrees: %v vs %v", mode, got, want)
		}
	}
}
