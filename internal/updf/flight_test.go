package updf

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/telemetry"
	"wsda/internal/topology"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// flightCluster is testCluster plus a shared flight recorder and the
// retry knobs the flight tests exercise.
func flightCluster(t *testing.T, g *topology.Graph, net pdp.Network, fr *telemetry.FlightRecorder, retries int, retryIval time.Duration) *Cluster {
	t.Helper()
	c, err := BuildCluster(g, ClusterConfig{
		Net:           net,
		AbortFloor:    time.Millisecond,
		Flight:        fr,
		MaxRetries:    retries,
		RetryInterval: retryIval,
		RegistryFor: func(i int) *registry.Registry {
			r := registry.New(registry.Config{Name: fmt.Sprintf("reg%d", i)})
			content := xmldoc.MustParse(fmt.Sprintf(
				`<service name="svc%d" domain="dom%d"/>`, i, i%2)).DocumentElement().Clone()
			if _, err := r.Publish(&tuple.Tuple{
				Link:    fmt.Sprintf("http://dom%d/svc%d", i%2, i),
				Type:    tuple.TypeService,
				Content: content,
			}, time.Hour); err != nil {
				t.Fatalf("publish: %v", err)
			}
			return r
		},
	})
	if err != nil {
		t.Fatalf("build cluster: %v", err)
	}
	return c
}

// Concurrent streamed queries through the HTTP edge, all writing into ONE
// shared flight recorder from every node's goroutines at once. Run under
// -race this proves the recorder's synchronization; afterwards every
// transaction must still have a coherent recording: its stream-item
// events match the items the client saw, and the summary event is last.
func TestFlightRecorderConcurrentStreamedQueries(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{Capacity: 64})
	c := flightCluster(t, topology.Random(10, 3, 5), net, fr, 0, 0)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.SetFlight(fr)
	srv := httptest.NewServer(NetQueryHandler(o, "node/0", nil, fr))
	defer srv.Close()
	cl := wsda.NewClient(srv.URL)

	const workers = 8
	type outcome struct {
		tx    string
		items int
	}
	outcomes := make([]outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items := 0
			sum, err := cl.NetQueryStream(allNames, streamParams("stream", "true"),
				func(xq.Item) bool { items++; return true })
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			outcomes[w] = outcome{tx: sum.TxID, items: items}
		}(w)
	}
	wg.Wait()

	for w, out := range outcomes {
		if out.tx == "" {
			continue // worker already reported its error
		}
		info := fr.Tx(out.tx)
		if info == nil {
			t.Fatalf("worker %d: tx %s has no recording", w, out.tx)
		}
		streamItems, summaries, summaryIdx := 0, 0, -1
		var lastSeq uint64
		for i, ev := range info.Events {
			if ev.Seq <= lastSeq && i > 0 {
				t.Fatalf("worker %d: event %d seq %d not increasing (prev %d)", w, i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			switch ev.Kind {
			case telemetry.FlightStreamItem:
				streamItems++
			case telemetry.FlightSummaryKind:
				summaries++
				summaryIdx = i
			default:
				// The only events allowed after the network summary are the
				// HTTP stream writer's own close bookkeeping, which fires
				// after Submit returns.
				if summaryIdx >= 0 && ev.Kind != telemetry.FlightStreamClose {
					t.Errorf("worker %d: event %q recorded after the summary", w, ev.Kind)
				}
			}
		}
		if streamItems != out.items {
			t.Errorf("worker %d: %d stream-item events, client saw %d items", w, streamItems, out.items)
		}
		if summaries != 1 {
			t.Errorf("worker %d: %d summary events, want exactly 1", w, summaries)
		}
		if info.Summary == nil || !info.Summary.Complete {
			t.Errorf("worker %d: summary missing or incomplete: %+v", w, info.Summary)
		}
	}
}

// An 8-node chain with one fully dead mid-chain link: /debug/query/<tx>
// must reconstruct the whole lifecycle over HTTP — submit, per-node
// receipt and forwarding, the retransmissions against the dead link, the
// incomplete finals — and /debug/slowlog must capture the transaction,
// which breached the first-item threshold (nothing streams, so the first
// item only arrives once the abort cascade resolves).
func TestFlightLifecycleHTTPWithLoss(t *testing.T) {
	const n = 8
	faults := simnet.NewFaults(3)
	faults.SetLinkDrop("node/3", "node/4", 1.0)
	net := simnet.New(simnet.Config{Faults: faults})
	defer net.Close()
	const slowThreshold = 10 * time.Millisecond
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{SlowThreshold: slowThreshold})
	c := flightCluster(t, topology.Line(n), net, fr, 2, 10*time.Millisecond)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.SetFlight(fr)

	var tx string
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 2 * time.Second, AbortTimeout: 400 * time.Millisecond,
		MaxRetries: 2, RetryInterval: 10 * time.Millisecond,
		OnTx: func(id string) { tx = id },
	})
	if rs.Complete {
		t.Fatal("complete = true across a dead link")
	}
	if len(rs.Items) != 4 {
		t.Fatalf("items = %d, want the 4 reachable nodes", len(rs.Items))
	}

	mux := http.NewServeMux()
	telemetry.MountObservability(mux, fr, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/query/" + url.PathEscape(tx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/query/%s: status %d", tx, resp.StatusCode)
	}
	var info telemetry.FlightInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.TxID != tx || info.Dropped != 0 {
		t.Fatalf("info tx=%q dropped=%d, want tx=%q dropped=0", info.TxID, info.Dropped, tx)
	}

	// Reconstruct the lifecycle: the query must have been received by
	// every node up to the cut, forwarded down the chain, retransmitted
	// against the dead link, and finalized incomplete.
	received := map[string]bool{}
	kinds := map[string]int{}
	retransmitHitDeadLink := false
	for _, ev := range info.Events {
		kinds[ev.Kind]++
		if ev.Kind == telemetry.FlightReceived {
			received[ev.Node] = true
		}
		if ev.Kind == telemetry.FlightRetransmit && ev.Node == "node/3" && ev.Peer == "node/4" {
			retransmitHitDeadLink = true
		}
	}
	for i := 0; i < 4; i++ {
		if node := fmt.Sprintf("node/%d", i); !received[node] {
			t.Errorf("no received event for %s", node)
		}
	}
	if kinds[telemetry.FlightSubmit] != 1 {
		t.Errorf("submit events = %d, want 1", kinds[telemetry.FlightSubmit])
	}
	if kinds[telemetry.FlightForward] < 3 {
		t.Errorf("forward events = %d, want >=3 (down the chain)", kinds[telemetry.FlightForward])
	}
	if !retransmitHitDeadLink {
		t.Error("no retransmit event on the dead node/3->node/4 link")
	}
	if kinds[telemetry.FlightNodeFinal] == 0 {
		t.Error("no node-final events")
	}
	last := info.Events[len(info.Events)-1]
	if last.Kind != telemetry.FlightSummaryKind || !strings.Contains(last.Note, "incomplete") {
		t.Errorf("last event = %q note %q, want an incomplete summary", last.Kind, last.Note)
	}
	if info.Summary == nil {
		t.Fatal("no summary on a finished transaction")
	}
	if info.Summary.FirstItem <= slowThreshold {
		t.Errorf("first item %v did not breach the %v threshold the test relies on",
			info.Summary.FirstItem, slowThreshold)
	}

	// The same transaction must be in the slowlog, admitted for breaching
	// the first-item threshold (or, equivalently here, for being
	// incomplete — both reasons describe this query).
	resp2, err := http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var slow telemetry.SlowlogResponse
	if err := json.NewDecoder(resp2.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range slow.Entries {
		if e.TxID == tx {
			found = true
			if e.Reason == "" {
				t.Error("slowlog entry has no admission reason")
			}
		}
	}
	if !found {
		t.Fatalf("tx %s not in slowlog (%d entries)", tx, len(slow.Entries))
	}
}

// The flight recording must agree with the PR-5 reordering semantics: on
// a transport that delivers the entry final BEFORE the pipelined partial
// results, the recorded event order still shows every delivered item
// preceding the closing summary, and the summary says complete — the
// final is never misreported as complete while declared items are
// outstanding, and no item events leak in after Finish.
func TestFlightEventOrderUnderReordering(t *testing.T) {
	inner := newTestNet()
	defer inner.Close()
	net := &partialDelayNet{Network: inner, to: "orig"}
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{})
	c := flightCluster(t, topology.Line(4), net, fr, 0, 0)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.SetFlight(fr)

	var tx string
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		Pipeline:     true,
		AbortTimeout: 500 * time.Millisecond,
		OnTx:         func(id string) { tx = id },
	})
	if len(rs.Items) != 4 || !rs.Complete || rs.Aborted {
		t.Fatalf("items=%d complete=%v aborted=%v, want a clean 4-item result",
			len(rs.Items), rs.Complete, rs.Aborted)
	}

	info := fr.Tx(tx)
	if info == nil {
		t.Fatalf("no recording for %s", tx)
	}
	itemEvents, firstItems, summaryIdx := 0, 0, -1
	for i, ev := range info.Events {
		switch ev.Kind {
		case telemetry.FlightItem:
			itemEvents++
		case telemetry.FlightFirstItem:
			firstItems++
		case telemetry.FlightSummaryKind:
			summaryIdx = i
		}
		if summaryIdx >= 0 && i > summaryIdx {
			t.Fatalf("event %d (%s) recorded after the summary", i, ev.Kind)
		}
	}
	if firstItems != 1 {
		t.Errorf("first-item events = %d, want exactly 1", firstItems)
	}
	if itemEvents+firstItems != 4 {
		t.Errorf("item events = %d, want 4 — the reordered partials must all be recorded before Finish", itemEvents+firstItems)
	}
	if summaryIdx != len(info.Events)-1 {
		t.Errorf("summary at index %d of %d events, want last", summaryIdx, len(info.Events))
	}
	if info.Summary == nil || !info.Summary.Complete || info.Summary.Items != 4 {
		t.Errorf("summary %+v, want complete with 4 items", info.Summary)
	}
}
