package updf

import (
	"sync"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/telemetry"
	"wsda/internal/xq"
)

// txState is one entry of a node's state table (thesis Ch. 7.6): everything
// the node remembers about an in-flight transaction. Entries are soft
// state: they are retained until the query's static loop timeout and then
// garbage collected, which is what makes loop detection via transaction
// IDs reliable — a transaction ID cannot be mistaken for new after every
// node has forgotten it, because by then it is past its loop timeout and
// would be dropped anyway.
type txState struct {
	mu sync.Mutex

	parent   string // node/originator the query arrived from
	origin   string // originator address (Direct/Metadata/Fetch)
	mode     pdp.ResponseMode
	pipeline bool

	pending map[string]bool // children still owing a final message

	// children tracks every neighbor this node forwarded the query to,
	// keyed by address — the retransmission and completeness bookkeeping
	// that pending alone (which only shrinks) cannot carry.
	children map[string]*childState

	// skipped counts neighbors the circuit breaker excluded from
	// forwarding. They are not contacted, but their absence makes the
	// subtree's answer incomplete.
	skipped int

	// Subtree accounting aggregated from child finals (thesis-level
	// partial-result semantics; see DESIGN.md "Fault model and resilience").
	childContacted  int  // Σ nodes-contacted over child finals
	childResponded  int  // Σ nodes-responded over child finals
	childIncomplete bool // some child final carried complete="false"

	// finalOut records the final upstream message so a parent's
	// retransmitted query can be answered by resending it instead of
	// re-running the transaction.
	finalOut *pdp.Message

	// buffered holds items not yet sent upstream (store-and-forward mode)
	// or, in Metadata mode, the local items retained for a later Fetch.
	buffered xq.Sequence

	localHits   int // items this node produced locally
	subtreeHits int // items produced in the whole subtree

	// localDone marks the local evaluation complete. Completion requires
	// it: without this gate, a fast child's final arriving while the local
	// evaluation is still running would finalize the transaction and drop
	// the node's own results (transports may deliver concurrently).
	localDone bool

	finalSent bool
	aborted   bool
	timer     *time.Timer // dynamic abort timer
	evalErr   string

	// span covers this transaction's residency on the node, from query
	// arrival to the final upstream message. Nil when tracing is off.
	span *telemetry.Span
}

// childState is the per-child retransmission record: the exact query
// message sent (deadlines are absolute, so a resend is byte-identical),
// the retry timer, and how many retransmissions remain.
type childState struct {
	msg      *pdp.Message
	timer    *time.Timer
	left     int           // retransmissions remaining
	interval time.Duration // next retry delay (doubles per attempt)
	done     bool          // child delivered its final

	// Routed-mode drain accounting: received counts result items that
	// arrived from this child, promised is the subtree item total its
	// final declared (pdp.Message.HitCount). Pipelined partials travel on
	// their own messages and a reordering transport can deliver them
	// after the final — the subtree must not finalize while a child's
	// declared items are still in flight, or they are dropped as late.
	received int
	promised int
}

// childrenDrainedLocked reports whether every finalized routed child has
// delivered as many result items as its final declared. Always true
// outside Routed mode (Direct/Metadata items bypass the parent). st.mu
// must be held.
func (st *txState) childrenDrainedLocked() bool {
	if st.mode != pdp.Routed {
		return true
	}
	for _, cs := range st.children {
		if cs.done && cs.received < cs.promised {
			return false
		}
	}
	return true
}
