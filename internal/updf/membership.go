package updf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/softstate"
)

// MembershipConfig configures soft-state neighbor discovery. Nodes learn
// peers by pinging bootstrap seeds and the peers referenced in pongs; a
// peer stays in the neighbor set only while it keeps answering within the
// liveness TTL. Dynamic, fluid collaborations — nodes joining and leaving
// frequently — are exactly the environment the thesis targets (Ch. 1.1),
// and soft state makes departure handling automatic.
type MembershipConfig struct {
	// Seeds are bootstrap addresses pinged on every round.
	Seeds []string
	// Period is the gossip round interval. Default 1s.
	Period time.Duration
	// TTL is how long a peer stays live without a fresh pong. Default
	// 3×Period.
	TTL time.Duration
	// MaxNeighbors caps the published neighbor set (0 = unlimited).
	MaxNeighbors int
	// SampleSize bounds how many known candidates are pinged per round in
	// addition to the seeds (0 = all).
	SampleSize int
}

// Membership runs neighbor discovery for a node.
type Membership struct {
	node *Node
	cfg  MembershipConfig

	alive *softstate.Store[struct{}]

	mu         sync.Mutex
	candidates map[string]bool

	stop chan struct{}
	done chan struct{}
}

// StartMembership begins gossip rounds. The node's neighbor set is
// rewritten from the live peer table after every round; manual
// SetNeighbors calls will be overwritten while membership runs.
func (n *Node) StartMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Period == 0 {
		cfg.Period = time.Second
	}
	if cfg.TTL == 0 {
		cfg.TTL = 3 * cfg.Period
	}
	m := &Membership{
		node:       n,
		cfg:        cfg,
		alive:      softstate.New[struct{}](n.now),
		candidates: make(map[string]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, s := range cfg.Seeds {
		if s != n.cfg.Addr {
			m.candidates[s] = true
		}
	}
	n.mu.Lock()
	if n.membership != nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("updf: membership already running on %s", n.cfg.Addr)
	}
	n.membership = m
	n.mu.Unlock()
	go m.loop()
	return m, nil
}

// Stop ends the gossip rounds. The current neighbor set stays in place and
// ages out naturally on the peers.
func (m *Membership) Stop() {
	close(m.stop)
	<-m.done
	m.node.mu.Lock()
	m.node.membership = nil
	m.node.mu.Unlock()
}

// LivePeers returns the currently live peer addresses, sorted.
func (m *Membership) LivePeers() []string {
	entries := m.alive.Live()
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Key)
	}
	sort.Strings(out)
	return out
}

func (m *Membership) loop() {
	defer close(m.done)
	// An immediate first round accelerates bootstrap.
	m.round()
	t := time.NewTicker(m.cfg.Period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.round()
			m.publishNeighbors()
		case <-m.stop:
			return
		}
	}
}

// round pings the seeds plus a sample of known candidates.
func (m *Membership) round() {
	targets := map[string]bool{}
	for _, s := range m.cfg.Seeds {
		if s != m.node.cfg.Addr {
			targets[s] = true
		}
	}
	m.mu.Lock()
	sampled := 0
	for c := range m.candidates {
		if m.cfg.SampleSize > 0 && sampled >= m.cfg.SampleSize {
			break
		}
		targets[c] = true
		sampled++
	}
	m.mu.Unlock()
	for t := range targets {
		_ = m.node.cfg.Net.Send(&pdp.Message{
			Kind: pdp.KindPing, TxID: "membership", From: m.node.cfg.Addr, To: t,
		})
	}
	m.alive.Sweep()
}

// observe records gossip evidence: a ping or pong from a peer proves it
// alive; pong-carried neighbor lists seed future rounds.
func (m *Membership) observe(from string, neighbors []string, provenAlive bool) {
	if from != "" && from != m.node.cfg.Addr {
		m.mu.Lock()
		m.candidates[from] = true
		m.mu.Unlock()
		if provenAlive {
			m.alive.Put(from, struct{}{}, m.cfg.TTL)
		}
	}
	m.mu.Lock()
	for _, nb := range neighbors {
		if nb != "" && nb != m.node.cfg.Addr {
			m.candidates[nb] = true
		}
	}
	m.mu.Unlock()
}

// publishNeighbors rewrites the node's neighbor set from the live table.
func (m *Membership) publishNeighbors() {
	live := m.LivePeers()
	if m.cfg.MaxNeighbors > 0 && len(live) > m.cfg.MaxNeighbors {
		live = live[:m.cfg.MaxNeighbors]
	}
	m.node.SetNeighbors(live)
}
