package updf

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/telemetry"
	"wsda/internal/topology"
	"wsda/internal/tuple"
	"wsda/internal/wsda"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// capture is a scriptable network endpoint that records everything
// delivered to it.
type capture struct {
	mu   sync.Mutex
	msgs []*pdp.Message
}

func (c *capture) handler(m *pdp.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m.Clone())
	c.mu.Unlock()
}

func (c *capture) all() []*pdp.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*pdp.Message(nil), c.msgs...)
}

// fakeMetaNode registers a scripted Metadata-mode responder at addr: the
// query is answered with a record promising `promise` hits plus a clean
// receipt, and a later fetch is answered by fetchReply.
func fakeMetaNode(net *simnet.Network, addr string, promise int, fetchReply func(m *pdp.Message) *pdp.Message) {
	_ = net.Register(addr, func(m *pdp.Message) {
		switch m.Kind {
		case pdp.KindQuery:
			_ = net.Send(&pdp.Message{
				Kind: pdp.KindResult, TxID: m.TxID, From: addr, To: m.Origin,
				Source: addr, HitCount: promise,
			})
			_ = net.Send(&pdp.Message{
				Kind: pdp.KindReceipt, TxID: m.TxID, From: addr, To: m.From,
				HitCount: promise, Final: true,
				NodesContacted: 1, NodesResponded: 1, Complete: true,
			})
		case pdp.KindFetch:
			_ = net.Send(fetchReply(m))
		}
	})
}

// A metadata record promises hits, the fetch errs (state expired): the
// receipt's Complete=true verdict must not survive — items are provably
// missing.
func TestMetadataFetchExpiredForcesIncomplete(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	fakeMetaNode(net, "meta/fake", 3, func(m *pdp.Message) *pdp.Message {
		return &pdp.Message{
			Kind: pdp.KindResult, TxID: m.TxID, From: "meta/fake", To: m.From,
			Source: "meta/fake", Final: true, Err: "state expired",
		}
	})
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "meta/fake", Mode: pdp.Metadata, Radius: -1})
	if rs.Complete {
		t.Fatal("Complete = true after an expired fetch; the promised items never arrived")
	}
	if len(rs.Items) != 0 {
		t.Fatalf("items = %d, want 0", len(rs.Items))
	}
	found := false
	for _, e := range rs.Errs {
		if strings.Contains(e, "fetch delivered 0 of 3 promised items") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shortfall note in errs %v", rs.Errs)
	}
}

// The fetch answers, but with fewer items than the record promised.
func TestMetadataFetchShortDeliveryForcesIncomplete(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	fakeMetaNode(net, "meta/fake", 3, func(m *pdp.Message) *pdp.Message {
		return &pdp.Message{
			Kind: pdp.KindResult, TxID: m.TxID, From: "meta/fake", To: m.From,
			Source: "meta/fake", Final: true,
			Items: xq.Sequence{"a", "b"}, HitCount: 2,
		}
	})
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "meta/fake", Mode: pdp.Metadata, Radius: -1})
	if rs.Complete {
		t.Fatal("Complete = true after a short fetch (2 of 3 items)")
	}
	if len(rs.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(rs.Items))
	}
	found := false
	for _, e := range rs.Errs {
		if strings.Contains(e, "fetch delivered 2 of 3 promised items") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shortfall note in errs %v", rs.Errs)
	}
}

// A fetch against a live Routed transaction must not leak the node's
// buffered partial results.
func TestFetchRejectedForRoutedTx(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(1), net)
	defer c.Close()
	// A black-hole neighbor keeps the routed transaction (and its result
	// buffer) alive: node/0 waits for the child that never answers.
	_ = net.Register("hole", func(*pdp.Message) {})
	c.Nodes[0].SetNeighbors([]string{"hole"})

	orig := &capture{}
	_ = net.Register("orig", orig.handler)
	attacker := &capture{}
	_ = net.Register("attacker", attacker.handler)

	now := time.Now()
	_ = net.Send(&pdp.Message{
		Kind: pdp.KindQuery, TxID: "tx-routed", From: "orig", To: "node/0",
		Query: allNames, Mode: pdp.Routed, Origin: "orig",
		Scope: pdp.Scope{Radius: -1, LoopTimeout: now.Add(10 * time.Second), AbortTimeout: now.Add(10 * time.Second)},
	})
	// Wait until the local evaluation has buffered its hit.
	waitFor(t, 2*time.Second, func() bool { return c.Nodes[0].Stats().Evals >= 1 }, "local eval")

	_ = net.Send(&pdp.Message{Kind: pdp.KindFetch, TxID: "tx-routed", From: "attacker", To: "node/0"})
	waitFor(t, 2*time.Second, func() bool { return len(attacker.all()) >= 1 }, "fetch answer")
	for _, m := range attacker.all() {
		if len(m.Items) > 0 {
			t.Fatalf("fetch against a routed tx leaked %d buffered items", len(m.Items))
		}
		if m.Kind == pdp.KindResult && !strings.Contains(m.Err, "not a metadata transaction") {
			t.Fatalf("fetch answer err = %q, want a mode rejection", m.Err)
		}
	}
}

// A fetch for a Metadata transaction is answered only toward the
// originator the node recorded, never toward the requester address.
func TestFetchAnsweredOnlyToRecordedOrigin(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Line(1), net)
	defer c.Close()

	orig := &capture{}
	_ = net.Register("orig", orig.handler)
	attacker := &capture{}
	_ = net.Register("attacker", attacker.handler)

	now := time.Now()
	_ = net.Send(&pdp.Message{
		Kind: pdp.KindQuery, TxID: "tx-meta", From: "orig", To: "node/0",
		Query: allNames, Mode: pdp.Metadata, Origin: "orig",
		Scope: pdp.Scope{Radius: 0, LoopTimeout: now.Add(10 * time.Second), AbortTimeout: now.Add(10 * time.Second)},
	})
	// Record + receipt arrive at the originator once evaluation is done.
	waitFor(t, 2*time.Second, func() bool { return len(orig.all()) >= 2 }, "metadata record and receipt")

	_ = net.Send(&pdp.Message{Kind: pdp.KindFetch, TxID: "tx-meta", From: "attacker", To: "node/0"})
	waitFor(t, 2*time.Second, func() bool {
		for _, m := range orig.all() {
			if m.Kind == pdp.KindResult && m.Final && len(m.Items) == 1 {
				return true
			}
		}
		return false
	}, "fetch answer redirected to the recorded origin")
	if got := len(attacker.all()); got != 0 {
		t.Fatalf("attacker received %d messages, want 0 (answer must go to the recorded origin)", got)
	}
}

// Relayed pipelined results must stay attached to the hop tree: every
// net.hop event parents under a real span, so the reconstructed trace has
// exactly one root (the originator's submit span).
func TestRelayedResultsCarryTraceParent(t *testing.T) {
	tr := telemetry.NewTracer(256)
	net := simnet.New(simnet.Config{Tracer: tr})
	defer net.Close()
	c, err := BuildCluster(topology.Line(3), ClusterConfig{
		Net: net, Tracer: tr, AbortFloor: time.Millisecond,
		RegistryFor: func(i int) *registry.Registry {
			r := registry.New(registry.Config{Name: fmt.Sprintf("reg%d", i)})
			content := xmldoc.MustParse(fmt.Sprintf(`<service name="svc%d"/>`, i)).DocumentElement().Clone()
			if _, err := r.Publish(&tuple.Tuple{
				Link: fmt.Sprintf("http://svc%d", i), Type: tuple.TypeService, Content: content,
			}, time.Hour); err != nil {
				t.Fatalf("publish: %v", err)
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.SetTelemetry(nil, tr)

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1, Pipeline: true})
	if rs.Aborted {
		t.Fatal("aborted")
	}
	// Trailing hop events race with Submit returning; give them a moment.
	time.Sleep(50 * time.Millisecond)
	ti := tr.Trace(rs.TxID)
	if ti == nil {
		t.Fatal("no trace recorded")
	}
	if len(ti.Roots) != 1 {
		t.Fatalf("trace has %d roots, want 1 (relayed results detached from the hop tree)", len(ti.Roots))
	}
}

// The breaker gauge must report the breaker's state at scrape time: a
// circuit whose cooldown has expired reads 0 even though no breaker event
// fired in between.
func TestBreakerGaugeReadsAtScrapeTime(t *testing.T) {
	m := telemetry.NewMetrics()
	net := newTestNet()
	defer net.Close()
	c, err := BuildCluster(topology.Line(1), ClusterConfig{
		Net: net, Metrics: m,
		BreakerThreshold: 1, BreakerCooldown: 300 * time.Millisecond,
		AbortFloor: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An unregistered neighbor never answers; the abort deadline marks it
	// failed and trips the breaker.
	c.Nodes[0].SetNeighbors([]string{"node/dead"})
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	_ = submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 2 * time.Second, AbortTimeout: 200 * time.Millisecond,
	})
	waitFor(t, 2*time.Second, func() bool { return c.Nodes[0].BreakerOpenCount() == 1 }, "breaker to open")

	scrape := func() string {
		var sb strings.Builder
		m.WritePrometheus(&sb)
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, "wsda_pdp_breaker_open{") {
				return line
			}
		}
		return ""
	}
	if line := scrape(); !strings.HasSuffix(line, " 1") {
		t.Fatalf("gauge while open = %q, want value 1", line)
	}
	// No breaker events fire from here on; only time passes.
	time.Sleep(400 * time.Millisecond)
	if line := scrape(); !strings.HasSuffix(line, " 0") {
		t.Fatalf("gauge after cooldown expiry = %q, want value 0 without any breaker event", line)
	}
}

// newStreamServer wires a delayed simnet chain behind a real HTTP server
// mounting the /netquery handler.
// partialDelayNet reorders delivery to one address: non-final results are
// held until the final has gone through — the worst case a real transport
// (independent HTTP connections) can produce for pipelined delivery.
type partialDelayNet struct {
	pdp.Network
	to string

	mu    sync.Mutex
	held  []*pdp.Message
	final bool
}

func (p *partialDelayNet) Send(m *pdp.Message) error {
	if m.To != p.to || m.Kind != pdp.KindResult {
		return p.Network.Send(m)
	}
	p.mu.Lock()
	if !m.Final && !p.final {
		p.held = append(p.held, m.Clone())
		p.mu.Unlock()
		return nil
	}
	release := !p.final
	p.final = true
	held := p.held
	p.held = nil
	p.mu.Unlock()
	if err := p.Network.Send(m); err != nil {
		return err
	}
	if release {
		for _, h := range held {
			_ = p.Network.Send(h)
		}
	}
	return nil
}

// Pipelined partials that arrive after the entry final (a reordering
// transport can deliver them on any schedule) must still be drained
// before Submit returns — not silently dropped under complete=true.
func TestSubmitDrainsPartialsBehindFinal(t *testing.T) {
	inner := newTestNet()
	defer inner.Close()
	net := &partialDelayNet{Network: inner, to: "orig"}
	c := testCluster(t, topology.Line(4), net)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var streamed int
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		Pipeline:     true,
		AbortTimeout: 500 * time.Millisecond,
		OnItem:       func(xq.Item, string) bool { streamed++; return true },
	})
	if len(rs.Items) != 4 || streamed != 4 {
		t.Fatalf("got %d items (%d streamed), want 4 — partials behind the final were dropped", len(rs.Items), streamed)
	}
	if !rs.Complete {
		t.Fatalf("complete = false: %+v", rs)
	}
	if rs.Aborted {
		t.Fatal("draining the trailing partials should not need the abort timer")
	}
}

// The same reordering one hop down: an intermediate node must not
// finalize while its child's declared items are still in flight — the
// child final's hit count says how many items to drain first.
func TestNodeDrainsChildPartialsBehindFinal(t *testing.T) {
	inner := newTestNet()
	defer inner.Close()
	net := &partialDelayNet{Network: inner, to: "node/0"}
	c := testCluster(t, topology.Line(3), net)
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		Pipeline:     true,
		AbortTimeout: 500 * time.Millisecond,
	})
	if len(rs.Items) != 3 {
		t.Fatalf("got %d items, want 3 — the entry node finalized past its child's in-flight partials", len(rs.Items))
	}
	if !rs.Complete || rs.Aborted {
		t.Fatalf("complete=%v aborted=%v, want a clean complete result", rs.Complete, rs.Aborted)
	}
}

func newStreamServer(t *testing.T, n int, delay time.Duration) (*Cluster, *wsda.Client) {
	t.Helper()
	net := simnet.New(simnet.Config{Delay: simnet.UniformDelay(delay)})
	t.Cleanup(net.Close)
	c := testCluster(t, topology.Line(n), net)
	t.Cleanup(c.Close)
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	srv := httptest.NewServer(NetQueryHandler(o, "node/0", nil, nil))
	t.Cleanup(srv.Close)
	return c, wsda.NewClient(srv.URL)
}

func totalCloses(c *Cluster) int64 {
	var n int64
	for _, node := range c.Nodes {
		n += node.Stats().Closes
	}
	return n
}

func streamParams(kv ...string) url.Values {
	p := url.Values{}
	p.Set("mode", "routed")
	p.Set("radius", "-1")
	p.Set("pipeline", "true")
	for i := 0; i+1 < len(kv); i += 2 {
		p.Set(kv[i], kv[i+1])
	}
	return p
}

// max-results=N must deliver exactly N items and close the transaction
// network-wide while it is still running.
func TestNetQueryStreamMaxResults(t *testing.T) {
	c, cl := newStreamServer(t, 5, 15*time.Millisecond)
	var items []xq.Item
	sum, err := cl.NetQueryStream(allNames, streamParams("stream", "true", "max-results", "2"),
		func(it xq.Item) bool { items = append(items, it); return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || sum.Count != 2 {
		t.Fatalf("delivered %d items, summary count %d, want exactly 2", len(items), sum.Count)
	}
	if sum.Complete {
		t.Fatal("truncated stream reported complete=true")
	}
	// The KindClose must reach nodes whose part of the transaction was
	// still live (the chain tail is ~60ms of link delay away).
	waitFor(t, 2*time.Second, func() bool { return totalCloses(c) >= 1 },
		"a downstream node to observe KindClose")
}

// A client that walks away mid-stream must close the transaction
// network-wide instead of leaving the query running to its abort deadline.
func TestNetQueryStreamDisconnectClosesTx(t *testing.T) {
	c, cl := newStreamServer(t, 6, 15*time.Millisecond)
	// Stop decoding after the first item: NetQueryStream returns and closes
	// the response body, which cancels the server's request context.
	sum, err := cl.NetQueryStream(allNames, streamParams("stream", "true"),
		func(it xq.Item) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 1 {
		t.Fatalf("decoded %d items before disconnecting, want 1", sum.Count)
	}
	waitFor(t, 2*time.Second, func() bool { return totalCloses(c) >= 1 },
		"a downstream node to observe KindClose after the disconnect")
}

// Streamed and buffered delivery must carry the same items with the same
// accounting.
func TestStreamedBufferedEquivalence(t *testing.T) {
	_, cl := newStreamServer(t, 4, time.Millisecond)
	collect := func(params url.Values) ([]string, *wsda.StreamSummary) {
		var got []string
		sum, err := cl.NetQueryStream(allNames, params, func(it xq.Item) bool {
			got = append(got, xq.Serialize(xq.Sequence{it}))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got, sum
	}
	buffered, bufSum := collect(streamParams())
	streamed, strSum := collect(streamParams("stream", "true"))
	if len(buffered) != 4 || len(streamed) != 4 {
		t.Fatalf("buffered %d / streamed %d items, want 4 each", len(buffered), len(streamed))
	}
	for i := range buffered {
		if buffered[i] != streamed[i] {
			t.Fatalf("item %d differs:\nbuffered: %s\nstreamed: %s", i, buffered[i], streamed[i])
		}
	}
	if !bufSum.Complete || !strSum.Complete {
		t.Fatalf("complete: buffered=%v streamed=%v, want true/true", bufSum.Complete, strSum.Complete)
	}
	if !bufSum.Network || !strSum.Network {
		t.Fatalf("network accounting: buffered=%v streamed=%v, want true/true", bufSum.Network, strSum.Network)
	}
	if bufSum.NodesContacted != strSum.NodesContacted || bufSum.NodesResponded != strSum.NodesResponded {
		t.Fatalf("accounting differs: buffered %d/%d, streamed %d/%d",
			bufSum.NodesResponded, bufSum.NodesContacted, strSum.NodesResponded, strSum.NodesContacted)
	}
}

// Oversized /netquery bodies are rejected outright instead of silently
// truncating the query text.
func TestNetQueryOversizeBody(t *testing.T) {
	_, cl := newStreamServer(t, 1, 0)
	big := strings.Repeat("x", wsda.MaxQueryBytes+1)
	resp, err := http.Post(cl.BaseURL+wsda.PathNetQuery, "text/xml", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}
