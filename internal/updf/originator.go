package updf

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/telemetry"
	"wsda/internal/xq"
)

// QuerySpec describes one network query submission.
type QuerySpec struct {
	Query string // XQuery text
	Entry string // address of the entry node (agent model) — may be the
	// originator's own co-located node (servent model)

	Mode     pdp.ResponseMode // how results travel back (routed/direct/metadata/referral)
	Pipeline bool             // stream items across nodes (Routed mode only)

	// Scope.
	// Radius is the hop budget; 0 = entry node only; -1 = unbounded. Like
	// Gnutella TTLs, the reachable set equals the BFS horizon only when
	// shortest-path messages arrive first; under skewed latencies the
	// horizon is an upper bound.
	Radius int
	Policy string // neighbor selection policy (default flood)
	Fanout int    // per-hop neighbor bound (0 = all)

	// LoopTimeout is the static loop timeout, relative to submission.
	// Default 10s.
	LoopTimeout time.Duration
	// AbortTimeout is the user's answer deadline (dynamic abort timeout at
	// the entry node), relative to submission. Default = LoopTimeout/2.
	AbortTimeout time.Duration

	// OnItem, if set, streams result items as they arrive; returning false
	// closes the transaction network-wide.
	OnItem func(item xq.Item, source string) bool

	// OnTx, if set, is called with the minted transaction ID before the
	// query enters the network, so callers (e.g. the HTTP stream edge) can
	// correlate their own instrumentation with the flight recording.
	OnTx func(tx string)

	// Cancel, if set, aborts the submission early when it becomes
	// readable or closed (e.g. an HTTP request context's Done channel):
	// the transaction is closed network-wide with KindClose instead of
	// running to the abort deadline, and the partial ResultSet comes back
	// with Complete forced to false. Nil never cancels.
	Cancel <-chan struct{}

	// MaxRetries retransmits the entry query while no final has arrived
	// from the entry node — the first hop's counterpart of the per-node
	// child retransmission (Config.MaxRetries). Zero disables.
	MaxRetries int
	// RetryInterval is the delay before the first entry retransmission;
	// successive delays double. Zero means 200ms when MaxRetries > 0.
	RetryInterval time.Duration
}

// ResultSet is the outcome of one network query.
type ResultSet struct {
	TxID  string      // the query's transaction ID
	Items xq.Sequence // every delivered result item
	// Sources counts items per producing node address (where known).
	Sources map[string]int
	// ExpectedHits is the subtree hit total the network promised: receipts
	// report it in Direct and Metadata modes, and the entry node's routed
	// final carries it as the count of items relayed upstream — Submit
	// drains until the delivered items reach it, so pipelined partials
	// that race the final over a reordering transport are not dropped.
	ExpectedHits int
	// TimeToFirst is the latency until the first item arrived (0 if none).
	TimeToFirst time.Duration
	// Elapsed is the total latency until completion.
	Elapsed time.Duration
	// Aborted reports that the deadline cut collection short.
	Aborted bool
	// NodesVisited is the number of distinct responding nodes (Referral
	// mode: nodes queried).
	NodesVisited int
	// Errs carries best-effort downstream failure notes.
	Errs []string

	// Partial-result accounting from the entry node's final (see
	// pdp.Message): how many nodes the query tried to reach, how many
	// answered, and whether the network believes nothing was lost. An
	// originator-side abort forces Complete to false.
	NodesContacted int  // nodes the query reached or tried to reach
	NodesResponded int  // nodes whose final answer arrived
	Complete       bool // true only when nothing is known to be missing
}

// Completeness returns responded/contacted as a ratio in [0, 1] — the
// value fed into the wsda_query_completeness histogram. It reports 0 when
// no accounting arrived (e.g. the query never reached the entry node).
func (rs *ResultSet) Completeness() float64 {
	if rs.NodesContacted <= 0 {
		return 0
	}
	return float64(rs.NodesResponded) / float64(rs.NodesContacted)
}

// Originator submits queries into a UPDF network and collects responses.
// One Originator can run many concurrent submissions; each gets a unique
// transaction ID.
type Originator struct {
	addr string
	net  pdp.Network
	now  func() time.Time

	mu      sync.Mutex
	pending map[string]chan *pdp.Message

	seq atomic.Int64

	// Telemetry handles; nil until SetTelemetry/SetFlight/SetSLO.
	tracer        *telemetry.Tracer
	flight        *telemetry.FlightRecorder
	slo           *telemetry.SLO
	submitSeconds *telemetry.Histogram
	firstSeconds  *telemetry.Histogram
	completeness  *telemetry.Histogram
}

// NewOriginator registers an originator endpoint on the network.
func NewOriginator(addr string, net pdp.Network, now func() time.Time) (*Originator, error) {
	if now == nil {
		now = time.Now
	}
	o := &Originator{addr: addr, net: net, now: now, pending: make(map[string]chan *pdp.Message)}
	if err := net.Register(addr, o.handle); err != nil {
		return nil, err
	}
	return o, nil
}

// SetTelemetry wires metrics and tracing into the originator: a span per
// submission (traced under the query's transaction ID, so it roots the
// network hop tree) plus end-to-end and time-to-first-item histograms.
// Call it during setup; nil arguments disable the respective facility.
func (o *Originator) SetTelemetry(m *telemetry.Metrics, tr *telemetry.Tracer) {
	o.tracer = tr
	if m != nil {
		o.submitSeconds = m.HistogramVec("wsda_updf_submit_seconds",
			"End-to-end latency of network query submissions.", nil, "originator").With(o.addr)
		o.firstSeconds = m.HistogramVec("wsda_updf_time_to_first_seconds",
			"Latency until the first result item of a submission.", nil, "originator").With(o.addr)
		o.completeness = m.Histogram("wsda_query_completeness",
			"Nodes-responded over nodes-contacted per submission (1 = nothing lost).",
			[]float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1})
	}
}

// SetFlight wires a flight recorder into the originator: every submission
// records its lifecycle (submit, first-item, items, entry retransmits) and
// finishes the recording with the result-set summary, which is also what
// gates the transaction into /debug/slowlog. Nil disables.
func (o *Originator) SetFlight(fr *telemetry.FlightRecorder) { o.flight = fr }

// SetSLO wires an SLO engine into the originator: each finished submission
// feeds the first-item and completeness objectives. Nil disables.
func (o *Originator) SetSLO(s *telemetry.SLO) { o.slo = s }

// Addr returns the originator's network address.
func (o *Originator) Addr() string { return o.addr }

// Close unregisters the originator.
func (o *Originator) Close() { o.net.Unregister(o.addr) }

func (o *Originator) handle(m *pdp.Message) {
	o.mu.Lock()
	ch, ok := o.pending[m.TxID]
	o.mu.Unlock()
	if !ok {
		return // late message for a finished submission
	}
	// The channel is buffered generously; a stuck consumer sheds load
	// rather than blocking the delivery goroutine.
	select {
	case ch <- m:
	default:
	}
}

func (o *Originator) newTx() string {
	return fmt.Sprintf("%s#%d", o.addr, o.seq.Add(1))
}

func (spec *QuerySpec) withDefaults() QuerySpec {
	s := *spec
	if s.LoopTimeout == 0 {
		s.LoopTimeout = 10 * time.Second
	}
	if s.AbortTimeout == 0 {
		s.AbortTimeout = s.LoopTimeout / 2
	}
	if s.Policy == "" {
		s.Policy = PolicyFlood
	}
	return s
}

// Submit runs one query to completion (final message, deadline, or OnItem
// cancellation) and returns the collected results.
func (o *Originator) Submit(spec QuerySpec) (*ResultSet, error) {
	s := spec.withDefaults()
	if s.Entry == "" {
		return nil, fmt.Errorf("updf: query needs an entry node")
	}
	if s.Mode == pdp.Referral {
		return o.submitReferral(s)
	}
	tx := o.newTx()
	if s.OnTx != nil {
		s.OnTx(tx)
	}
	ch := make(chan *pdp.Message, 4096)
	o.mu.Lock()
	o.pending[tx] = ch
	o.mu.Unlock()
	defer func() {
		o.mu.Lock()
		delete(o.pending, tx)
		o.mu.Unlock()
	}()

	start := o.now()
	loopDeadline := start.Add(s.LoopTimeout)
	abortDeadline := start.Add(s.AbortTimeout)
	o.flight.Record(tx, telemetry.FlightSubmit, o.addr, s.Entry, int64(s.Radius), s.Mode.String())
	sp := o.tracer.StartSpan(tx, nil, "updf.submit")
	sp.SetAttr(telemetry.String("originator", o.addr),
		telemetry.String("entry", s.Entry),
		telemetry.String("mode", s.Mode.String()),
		telemetry.Int("radius", int64(s.Radius)))
	queryMsg := &pdp.Message{
		Kind: pdp.KindQuery, TxID: tx, From: o.addr, To: s.Entry,
		Query: s.Query, Mode: s.Mode, Origin: o.addr, Pipeline: s.Pipeline,
		Scope: pdp.Scope{
			Radius: s.Radius, LoopTimeout: loopDeadline, AbortTimeout: abortDeadline,
			Policy: s.Policy, Fanout: s.Fanout,
		},
		TraceParent: sp.ID(),
	}
	if err := o.net.Send(queryMsg); err != nil {
		sp.SetAttr(telemetry.String("err", err.Error()))
		sp.End()
		return nil, fmt.Errorf("updf: submit to %s: %w", s.Entry, err)
	}

	rs := &ResultSet{TxID: tx, Sources: make(map[string]int)}
	// Metadata mode: a fetch that errs (state expired) or delivers fewer
	// items than its record promised means items are provably missing —
	// the entry receipt's Complete verdict must not survive that.
	fetchShortfall := false
	finish := func() {
		if fetchShortfall {
			rs.Complete = false
		}
		o.submitSeconds.ObserveDuration(rs.Elapsed)
		if rs.TimeToFirst > 0 {
			o.firstSeconds.ObserveDuration(rs.TimeToFirst)
		}
		if o.completeness != nil {
			o.completeness.Observe(rs.Completeness())
		}
		o.flight.Finish(tx, telemetry.FlightSummary{
			FirstItem: rs.TimeToFirst, Elapsed: rs.Elapsed, Items: len(rs.Items),
			Complete: rs.Complete, Aborted: rs.Aborted,
			NodesContacted: rs.NodesContacted, NodesResponded: rs.NodesResponded,
			Err: strings.Join(rs.Errs, "; "),
		})
		if o.slo != nil {
			// A query with no items is scored on its total elapsed time:
			// fast empty completions pass, slow or aborted ones burn budget.
			d := rs.TimeToFirst
			if d == 0 {
				d = rs.Elapsed
			}
			o.slo.ObserveFirstItem(d)
			o.slo.ObserveCompleteness(rs.Completeness())
		}
		if sp != nil {
			sp.SetAttr(telemetry.Int("items", int64(len(rs.Items))),
				telemetry.Bool("aborted", rs.Aborted),
				telemetry.Int("nodes_contacted", int64(rs.NodesContacted)),
				telemetry.Int("nodes_responded", int64(rs.NodesResponded)),
				telemetry.Bool("complete", rs.Complete))
			sp.End()
		}
	}
	// The originator grants itself a grace period beyond the entry node's
	// abort deadline so finals emitted exactly at the deadline can arrive.
	timer := time.NewTimer(s.AbortTimeout + s.AbortTimeout/2 + 50*time.Millisecond)
	defer timer.Stop()

	// Entry-link retransmission: while the entry node has not delivered its
	// final, resend the query on an exponential schedule. The entry node
	// treats resends idempotently (in-flight transactions ignore them;
	// finalized ones re-answer with the recorded final), so a lost first
	// hop no longer kills the whole submission. The timer fires into the
	// collection loop below, keeping all retry state on this goroutine.
	var retryC <-chan time.Time
	var retryTimer *time.Timer
	retriesLeft := s.MaxRetries
	retryInterval := s.RetryInterval
	if retriesLeft > 0 {
		if retryInterval == 0 {
			retryInterval = 200 * time.Millisecond
		}
		retryTimer = time.NewTimer(retryInterval)
		defer retryTimer.Stop()
		retryC = retryTimer.C
	}

	entryFinal := false                 // entry node reported completion
	fetchesPending := map[string]bool{} // Metadata mode: outstanding fetches
	metaRecords := map[string]int{}     // Metadata mode: source -> hits
	metaHits := 0                       // Metadata mode: hits accounted for by records

	addItems := func(items xq.Sequence, source string) bool {
		for _, it := range items {
			if len(rs.Items) == 0 {
				rs.TimeToFirst = o.now().Sub(start)
				o.flight.Record(tx, telemetry.FlightFirstItem, o.addr, source, 1, "")
			} else {
				o.flight.Record(tx, telemetry.FlightItem, o.addr, source, int64(len(rs.Items)+1), "")
			}
			rs.Items = append(rs.Items, it)
			if source != "" {
				rs.Sources[source]++
			}
			if s.OnItem != nil && !s.OnItem(it, source) {
				return false
			}
		}
		return true
	}

	done := func() bool {
		if !entryFinal {
			return false
		}
		switch s.Mode {
		case pdp.Routed:
			// Pipelined partials travel on their own messages and may trail
			// the entry final on a reordering transport; the final's hit
			// count says how many items must arrive before returning.
			return len(rs.Items) >= rs.ExpectedHits
		case pdp.Direct:
			return len(rs.Items) >= rs.ExpectedHits
		case pdp.Metadata:
			// Receipts and relayed records race on independent links, so a
			// record may trail the entry receipt; the receipt's hit total
			// says how many hits the records must account for.
			return metaHits >= rs.ExpectedHits && len(fetchesPending) == 0
		}
		return true
	}

	closeTx := func() {
		_ = o.net.Send(&pdp.Message{Kind: pdp.KindClose, TxID: tx, From: o.addr, To: s.Entry})
	}

	for !done() {
		select {
		case m := <-ch:
			if m.Err != "" {
				rs.Errs = append(rs.Errs, m.From+": "+m.Err)
			}
			switch m.Kind {
			case pdp.KindResult:
				if s.Mode == pdp.Metadata && m.Source != "" && len(m.Items) == 0 && m.HitCount > 0 && !m.Final {
					// Metadata record from the count phase.
					if _, seen := metaRecords[m.Source]; !seen {
						metaRecords[m.Source] = m.HitCount
						metaHits += m.HitCount
						fetchesPending[m.Source] = true
						_ = o.net.Send(&pdp.Message{
							Kind: pdp.KindFetch, TxID: tx, From: o.addr, To: m.Source,
							Origin: o.addr,
						})
					}
				} else {
					if s.Mode == pdp.Metadata && m.Final && !fetchesPending[m.Source] {
						// A fetch answer we did not (or no longer) expect —
						// a retransmission or a response to a forged fetch.
						// Counting its items again would corrupt the result.
						continue
					}
					if !addItems(m.Items, m.Source) {
						closeTx()
						rs.Complete = false // cancelled by the consumer
						rs.Elapsed = o.now().Sub(start)
						finish()
						return rs, nil
					}
					if m.Final {
						switch {
						case s.Mode == pdp.Metadata:
							delete(fetchesPending, m.Source)
							if promised := metaRecords[m.Source]; m.Err != "" || len(m.Items) < promised {
								fetchShortfall = true
								rs.Errs = append(rs.Errs, fmt.Sprintf(
									"%s: fetch delivered %d of %d promised items",
									m.Source, len(m.Items), promised))
							}
						case s.Mode == pdp.Routed && m.From == s.Entry:
							entryFinal = true
							rs.ExpectedHits = m.HitCount
							rs.NodesContacted = m.NodesContacted
							rs.NodesResponded = m.NodesResponded
							rs.Complete = m.Complete
						case s.Mode == pdp.Direct:
							// per-node final; counted via Sources
						}
					}
				}
			case pdp.KindReceipt:
				if m.Final && m.From == s.Entry {
					entryFinal = true
					rs.ExpectedHits = m.HitCount
					rs.NodesContacted = m.NodesContacted
					rs.NodesResponded = m.NodesResponded
					rs.Complete = m.Complete
				}
			}
		case <-retryC:
			if !entryFinal && retriesLeft > 0 {
				retriesLeft--
				o.flight.Record(tx, telemetry.FlightRetransmit, o.addr, s.Entry, int64(retriesLeft), "entry")
				_ = o.net.Send(queryMsg)
				if retriesLeft > 0 {
					retryInterval *= 2
					retryTimer.Reset(retryInterval)
				}
			}
		case <-s.Cancel:
			// The consumer went away (e.g. HTTP client disconnect): close
			// the transaction network-wide now instead of letting it run
			// to the abort deadline.
			closeTx()
			rs.Complete = false
			rs.Elapsed = o.now().Sub(start)
			rs.NodesVisited = len(rs.Sources)
			finish()
			return rs, nil
		case <-timer.C:
			rs.Aborted = true
			rs.Complete = false
			closeTx()
			rs.Elapsed = o.now().Sub(start)
			rs.NodesVisited = len(rs.Sources)
			finish()
			return rs, nil
		}
	}
	rs.Elapsed = o.now().Sub(start)
	rs.NodesVisited = len(rs.Sources)
	finish()
	return rs, nil
}

// submitReferral drives the referral response mode: the originator itself
// expands the topology, querying one node at a time and following the
// neighbor links returned with each answer (thesis Ch. 6.4).
func (o *Originator) submitReferral(s QuerySpec) (*ResultSet, error) {
	tx := o.newTx()
	if s.OnTx != nil {
		s.OnTx(tx)
	}
	o.flight.Record(tx, telemetry.FlightSubmit, o.addr, s.Entry, int64(s.Radius), "referral")
	ch := make(chan *pdp.Message, 4096)
	o.mu.Lock()
	o.pending[tx] = ch
	o.mu.Unlock()
	defer func() {
		o.mu.Lock()
		delete(o.pending, tx)
		o.mu.Unlock()
	}()

	start := o.now()
	loopDeadline := start.Add(s.LoopTimeout)
	deadline := time.NewTimer(s.AbortTimeout)
	defer deadline.Stop()

	rs := &ResultSet{TxID: tx, Sources: make(map[string]int)}
	visited := map[string]bool{}
	depth := map[string]int{}
	outstanding := 0

	sp := o.tracer.StartSpan(tx, nil, "updf.submit")
	sp.SetAttr(telemetry.String("originator", o.addr),
		telemetry.String("entry", s.Entry),
		telemetry.String("mode", "referral"),
		telemetry.Int("radius", int64(s.Radius)))
	finish := func() {
		o.submitSeconds.ObserveDuration(rs.Elapsed)
		if rs.TimeToFirst > 0 {
			o.firstSeconds.ObserveDuration(rs.TimeToFirst)
		}
		o.flight.Finish(tx, telemetry.FlightSummary{
			FirstItem: rs.TimeToFirst, Elapsed: rs.Elapsed, Items: len(rs.Items),
			Complete: rs.Complete, Aborted: rs.Aborted,
			NodesContacted: rs.NodesContacted, NodesResponded: rs.NodesResponded,
			Err: strings.Join(rs.Errs, "; "),
		})
		if o.slo != nil {
			d := rs.TimeToFirst
			if d == 0 {
				d = rs.Elapsed
			}
			o.slo.ObserveFirstItem(d)
			o.slo.ObserveCompleteness(rs.Completeness())
		}
		if sp != nil {
			sp.SetAttr(telemetry.Int("items", int64(len(rs.Items))),
				telemetry.Bool("aborted", rs.Aborted))
			sp.End()
		}
	}

	ask := func(addr string) {
		visited[addr] = true
		outstanding++
		// Referral queries execute on the target only; the per-node tx must
		// be unique because every node keeps per-tx loop-detection state.
		_ = o.net.Send(&pdp.Message{
			Kind: pdp.KindQuery, TxID: tx + "@" + addr, From: o.addr, To: addr,
			Query: s.Query, Mode: pdp.Referral, Origin: o.addr,
			Scope:       pdp.Scope{Radius: 0, LoopTimeout: loopDeadline},
			TraceParent: sp.ID(),
		})
	}
	// Register the per-node transaction IDs as they share the tx prefix:
	// the originator dispatches on exact TxID, so register a catch-all by
	// rewriting incoming IDs is not possible — instead nodes answer with
	// the per-node ID, which we register eagerly below.
	askAll := func(addrs []string, d int) {
		for _, a := range addrs {
			if visited[a] {
				continue
			}
			if s.Radius >= 0 && d > s.Radius {
				continue
			}
			depth[a] = d
			o.mu.Lock()
			o.pending[tx+"@"+a] = ch
			o.mu.Unlock()
			ask(a)
		}
	}
	defer func() {
		o.mu.Lock()
		for a := range visited {
			delete(o.pending, tx+"@"+a)
		}
		o.mu.Unlock()
	}()

	askAll([]string{s.Entry}, 0)
	for outstanding > 0 {
		select {
		case m := <-ch:
			if m.Kind != pdp.KindResult {
				continue
			}
			outstanding--
			rs.NodesVisited++
			if m.Err != "" {
				rs.Errs = append(rs.Errs, m.From+": "+m.Err)
			}
			for _, it := range m.Items {
				if len(rs.Items) == 0 {
					rs.TimeToFirst = o.now().Sub(start)
				}
				rs.Items = append(rs.Items, it)
				rs.Sources[m.Source]++
				if s.OnItem != nil && !s.OnItem(it, m.Source) {
					rs.Elapsed = o.now().Sub(start)
					finish()
					return rs, nil
				}
			}
			askAll(m.Neighbors, depth[m.From]+1)
		case <-s.Cancel:
			// Consumer gone; referral queries are single-node and already
			// in flight, so there is nothing to close — stop expanding.
			rs.NodesContacted = len(visited)
			rs.NodesResponded = rs.NodesVisited
			rs.Complete = false
			rs.Elapsed = o.now().Sub(start)
			finish()
			return rs, nil
		case <-deadline.C:
			rs.Aborted = true
			rs.NodesContacted = len(visited)
			rs.NodesResponded = rs.NodesVisited
			rs.Complete = false
			rs.Elapsed = o.now().Sub(start)
			finish()
			return rs, nil
		}
	}
	// Every node the originator asked has answered: referral expansion has
	// exact accounting by construction.
	rs.NodesContacted = len(visited)
	rs.NodesResponded = rs.NodesVisited
	rs.Complete = true
	rs.Elapsed = o.now().Sub(start)
	finish()
	return rs, nil
}
