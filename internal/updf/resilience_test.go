package updf

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/topology"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// resilienceCluster is testCluster with the retry/breaker knobs exposed and
// an abort floor large enough that deep hops can still afford a retry.
func resilienceCluster(t *testing.T, g *topology.Graph, net pdp.Network, cfg ClusterConfig) *Cluster {
	t.Helper()
	cfg.Net = net
	if cfg.AbortFloor == 0 {
		cfg.AbortFloor = 150 * time.Millisecond
	}
	cfg.RegistryFor = func(i int) *registry.Registry {
		r := registry.New(registry.Config{Name: fmt.Sprintf("reg%d", i)})
		content := xmldoc.MustParse(fmt.Sprintf(
			`<service name="svc%d" domain="dom%d"/>`, i, i%2)).DocumentElement().Clone()
		if _, err := r.Publish(&tuple.Tuple{
			Link:    fmt.Sprintf("http://dom%d/svc%d", i%2, i),
			Type:    tuple.TypeService,
			Content: content,
		}, time.Hour); err != nil {
			t.Fatalf("publish: %v", err)
		}
		return r
	}
	c, err := BuildCluster(g, cfg)
	if err != nil {
		t.Fatalf("build cluster: %v", err)
	}
	return c
}

// runLossy submits `queries` concurrent floods over a fresh 12-node random
// graph behind a 20% lossy fault model and reports how many came back
// complete and the mean completeness ratio.
func runLossy(t *testing.T, seed int64, retries int) (successes int, meanCompleteness float64) {
	t.Helper()
	f := simnet.NewFaults(seed)
	f.SetDrop(0.20)
	net := simnet.New(simnet.Config{Faults: f})
	defer net.Close()
	c := resilienceCluster(t, topology.Random(12, 3, seed), net, ClusterConfig{
		MaxRetries:    retries,
		RetryInterval: 30 * time.Millisecond,
	})
	defer c.Close()
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const queries = 10
	var mu sync.Mutex
	var wg sync.WaitGroup
	var sum float64
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := o.Submit(QuerySpec{
				Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
				LoopTimeout: 5 * time.Second, AbortTimeout: 1200 * time.Millisecond,
				MaxRetries: retries, RetryInterval: 30 * time.Millisecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if rs.Complete && len(rs.Items) == 12 {
				successes++
			}
			sum += rs.Completeness()
			mu.Unlock()
		}()
	}
	wg.Wait()
	return successes, sum / queries
}

// TestRetriesBeatDropsAt20Percent is the headline resilience claim: at 20%
// link drop, retransmission-enabled queries succeed more often and account
// for strictly more of the network than the retry-disabled baseline.
func TestRetriesBeatDropsAt20Percent(t *testing.T) {
	baseOK, baseCompl := runLossy(t, 11, 0)
	retryOK, retryCompl := runLossy(t, 11, 3)
	t.Logf("baseline: %d/10 complete, mean completeness %.2f", baseOK, baseCompl)
	t.Logf("retries:  %d/10 complete, mean completeness %.2f", retryOK, retryCompl)
	if retryOK <= baseOK {
		t.Errorf("success rate with retries (%d/10) not above baseline (%d/10)", retryOK, baseOK)
	}
	if retryCompl <= baseCompl {
		t.Errorf("completeness with retries (%.2f) not above baseline (%.2f)", retryCompl, baseCompl)
	}
}

// TestBreakerSkipsPartitionedNeighbor checks the breaker feedback loop: a
// neighbor behind a partition trips its circuit after repeated abort-timeout
// failures, after which queries skip it — fast, incomplete by admission, and
// well inside their abort deadline instead of stalled against it.
func TestBreakerSkipsPartitionedNeighbor(t *testing.T) {
	f := simnet.NewFaults(3)
	net := simnet.New(simnet.Config{Faults: f})
	defer net.Close()
	// Line 0-1-2; node/2 is crashed (silent loss) from the start.
	c := resilienceCluster(t, topology.Line(3), net, ClusterConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	defer c.Close()
	f.Crash("node/2")
	o, err := NewOriginator("orig", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const abort = time.Second
	spec := QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 10 * time.Second, AbortTimeout: abort,
	}

	// Two queries fail into the dead neighbor and trip node/1's circuit.
	for i := 0; i < 2; i++ {
		rs := submit(t, o, spec)
		if rs.Complete {
			t.Fatalf("query %d complete despite a crashed node", i)
		}
	}
	if n := c.Nodes[1].Stats().BreakerOpens; n < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", n)
	}
	if n := c.Nodes[1].BreakerOpenCount(); n != 1 {
		t.Fatalf("BreakerOpenCount = %d, want 1", n)
	}

	// The third query skips node/2: fast, two answers, honestly incomplete.
	rs := submit(t, o, spec)
	if rs.Aborted {
		t.Error("breaker did not prevent the abort-timeout stall")
	}
	if rs.Elapsed >= abort {
		t.Errorf("elapsed %v not under the abort timeout %v", rs.Elapsed, abort)
	}
	if len(rs.Items) != 2 {
		t.Errorf("items = %d, want 2 (node/0 and node/1)", len(rs.Items))
	}
	if rs.Complete {
		t.Error("skipping a neighbor must mark the result incomplete")
	}
	if rs.NodesContacted != 2 || rs.NodesResponded != 2 {
		t.Errorf("accounting = %d/%d, want 2/2 (skipped peer is not contacted)",
			rs.NodesResponded, rs.NodesContacted)
	}
	if n := c.Nodes[1].Stats().BreakerSkips; n < 1 {
		t.Errorf("BreakerSkips = %d, want >= 1", n)
	}

	// Healing the partition and closing the circuit restores full coverage.
	f.Restart("node/2")
	c.Nodes[1].breaker.Reset()
	rs = submit(t, o, spec)
	if !rs.Complete || len(rs.Items) != 3 {
		t.Errorf("after heal: complete=%v items=%d, want true/3", rs.Complete, len(rs.Items))
	}
}

// TestCompletenessAccountingClean checks the accounting on a healthy
// network: every mode that carries the envelope reports full coverage.
func TestCompletenessAccountingClean(t *testing.T) {
	net := newTestNet()
	defer net.Close()
	c := testCluster(t, topology.Random(10, 3, 5), net)
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	for _, mode := range []pdp.ResponseMode{pdp.Routed, pdp.Direct, pdp.Metadata} {
		rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: mode, Radius: -1})
		if !rs.Complete {
			t.Errorf("mode %s: complete=false on a clean network", mode)
		}
		if rs.NodesContacted != 10 || rs.NodesResponded != 10 {
			t.Errorf("mode %s: accounting %d/%d, want 10/10",
				mode, rs.NodesResponded, rs.NodesContacted)
		}
		if got := rs.Completeness(); got != 1 {
			t.Errorf("mode %s: completeness %v, want 1", mode, got)
		}
	}

	rs := submit(t, o, QuerySpec{Query: allNames, Entry: "node/0", Mode: pdp.Referral, Radius: -1})
	if !rs.Complete || rs.NodesContacted != 10 || rs.NodesResponded != 10 {
		t.Errorf("referral: complete=%v %d/%d, want true 10/10",
			rs.Complete, rs.NodesResponded, rs.NodesContacted)
	}
}

// TestRetransmissionIsIdempotent floods retransmissions at a slow network
// and checks the exactly-once execution invariant holds: duplicates are
// absorbed, not re-evaluated, and no item is delivered twice.
func TestRetransmissionIsIdempotent(t *testing.T) {
	net := simnet.New(simnet.Config{Delay: simnet.UniformDelay(40 * time.Millisecond)})
	defer net.Close()
	c := resilienceCluster(t, topology.Line(4), net, ClusterConfig{
		MaxRetries:    4,
		RetryInterval: 10 * time.Millisecond, // far below the round trip: every child retries
	})
	defer c.Close()
	o, _ := NewOriginator("orig", net, nil)
	defer o.Close()

	rs := submit(t, o, QuerySpec{
		Query: allNames, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
		LoopTimeout: 10 * time.Second, AbortTimeout: 4 * time.Second,
		MaxRetries: 4, RetryInterval: 10 * time.Millisecond,
	})
	st := c.TotalStats()
	if st.Retries == 0 {
		t.Error("expected retransmissions at a 10ms interval over 40ms links")
	}
	if st.Evals != 4 {
		t.Errorf("evals = %d, want 4 (retransmission re-executed a query)", st.Evals)
	}
	if len(rs.Items) != 4 {
		t.Errorf("items = %d, want 4 (duplicate finals double-delivered)", len(rs.Items))
	}
	if !rs.Complete || rs.NodesContacted != 4 || rs.NodesResponded != 4 {
		t.Errorf("accounting: complete=%v %d/%d, want true 4/4",
			rs.Complete, rs.NodesResponded, rs.NodesContacted)
	}
}
