package updf

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/telemetry"
	"wsda/internal/wsda"
	"wsda/internal/xq"
)

// NetQueryHandler builds the HTTP handler behind a peer's /netquery
// endpoint: it submits the POSTed XQuery through the originator and
// delivers the results either buffered (one <results> document with
// accounting attributes on the root) or, with stream=true, as a chunked
// stream of per-item elements terminated by a <summary> trailer — the
// HTTP edge of pipelined routed execution (thesis Ch. 6.5).
//
// Query parameters: mode (routed|direct|metadata|referral), radius,
// timeout-ms, pipeline, policy, fanout, retries, stream, max-results.
// max-results=N closes the transaction network-wide (KindClose) as soon
// as N items have been delivered; a client disconnect does the same
// instead of letting the query run to its abort deadline.
//
// m, when non-nil, records the edge time-to-first-item histogram
// (wsda_http_first_item_seconds, path="netquery") for streamed requests.
// fr, when non-nil, ties streamed deliveries into the flight recorder:
// the minted transaction ID is bound to the stream writer so per-item
// stream-item events and the stream-close trailer land in the same
// /debug/query/<tx> recording as the network-side events.
func NetQueryHandler(o *Originator, entry string, m *telemetry.Metrics, fr *telemetry.FlightRecorder) http.HandlerFunc {
	var firstItem *telemetry.Histogram
	if m != nil {
		firstItem = m.HistogramVec(wsda.MetricFirstItemSeconds,
			"Time from request start to the first streamed result item leaving the HTTP edge.",
			nil, "path").With("netquery")
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, wsda.MaxQueryBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > wsda.MaxQueryBytes {
			http.Error(w, "query too large", http.StatusRequestEntityTooLarge)
			return
		}
		q := r.URL.Query()
		spec := QuerySpec{
			Query:  string(body),
			Entry:  entry,
			Mode:   pdp.Routed,
			Cancel: r.Context().Done(),
		}
		switch q.Get("mode") {
		case "", "routed":
		case "direct":
			spec.Mode = pdp.Direct
		case "metadata":
			spec.Mode = pdp.Metadata
		case "referral":
			spec.Mode = pdp.Referral
		default:
			http.Error(w, "unknown mode", http.StatusBadRequest)
			return
		}
		spec.Radius = -1
		if s := q.Get("radius"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad radius", http.StatusBadRequest)
				return
			}
			spec.Radius = v
		}
		if s := q.Get("timeout-ms"); s != "" {
			ms, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad timeout-ms", http.StatusBadRequest)
				return
			}
			spec.AbortTimeout = time.Duration(ms) * time.Millisecond
			spec.LoopTimeout = 2 * spec.AbortTimeout
		}
		spec.Pipeline = q.Get("pipeline") == "true"
		spec.Policy = q.Get("policy")
		if s := q.Get("retries"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad retries", http.StatusBadRequest)
				return
			}
			spec.MaxRetries = v
		}
		if s := q.Get("fanout"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad fanout", http.StatusBadRequest)
				return
			}
			spec.Fanout = v
		}
		maxResults := 0
		if s := q.Get("max-results"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad max-results", http.StatusBadRequest)
				return
			}
			maxResults = v
		}

		start := time.Now()
		var sw *wsda.StreamWriter
		if q.Get("stream") == "true" {
			sw = wsda.NewStreamWriter(w)
			if fr != nil {
				stream := sw
				spec.OnTx = func(tx string) { stream.SetFlight(fr, tx) }
			}
		}
		count := 0
		if sw != nil || maxResults > 0 {
			// Items leave through the callback the moment they arrive from
			// the network; returning false closes the transaction with
			// KindClose so every node downstream stops working for us.
			spec.OnItem = func(it xq.Item, source string) bool {
				if sw != nil {
					if count == 0 {
						firstItem.ObserveSince(start)
					}
					if sw.WriteItem(it) != nil {
						return false
					}
				}
				count++
				return maxResults == 0 || count < maxResults
			}
		}
		rs, err := o.Submit(spec)
		if err != nil {
			if sw == nil || !sw.Started() {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			_ = sw.Close(wsda.StreamSummary{Complete: false, Elapsed: time.Since(start), Network: true})
			return
		}
		// An incomplete answer names its shortfall (the downstream failure
		// notes) so clients can report what is missing instead of just that
		// something is.
		shortfall := ""
		if !rs.Complete && len(rs.Errs) > 0 {
			shortfall = strings.Join(rs.Errs, "; ")
		}
		if sw != nil {
			_ = sw.Close(wsda.StreamSummary{
				TxID:     rs.TxID,
				Complete: rs.Complete,
				Aborted:  rs.Aborted,
				Elapsed:  rs.Elapsed,
				Network:  true, NodesContacted: rs.NodesContacted, NodesResponded: rs.NodesResponded,
				Shortfall: shortfall,
			})
			return
		}
		res := wsda.MarshalSequence(rs.Items)
		res.SetAttr("tx", rs.TxID)
		res.SetAttr("elapsed-ms", strconv.FormatInt(rs.Elapsed.Milliseconds(), 10))
		res.SetAttr("aborted", strconv.FormatBool(rs.Aborted))
		res.SetAttr("nodes-contacted", strconv.Itoa(rs.NodesContacted))
		res.SetAttr("nodes-responded", strconv.Itoa(rs.NodesResponded))
		res.SetAttr("complete", strconv.FormatBool(rs.Complete))
		if shortfall != "" {
			res.SetAttr("shortfall", shortfall)
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, res.String())
	}
}
