package updf

import (
	"fmt"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/telemetry"
	"wsda/internal/topology"
)

// Cluster is a set of UPDF nodes wired along a topology graph — the unit
// the experiments and examples operate on.
type Cluster struct {
	Nodes []*Node         // one node per graph vertex, index-aligned
	Graph *topology.Graph // the wiring the neighbor sets follow
}

// ClusterConfig configures BuildCluster.
type ClusterConfig struct {
	// Net is the shared transport every node registers on.
	Net pdp.Network
	// AddrFor names node i; nil means "node/<i>".
	AddrFor func(i int) string
	// RegistryFor supplies node i's local database; nil creates an empty
	// registry named after the node.
	RegistryFor func(i int) *registry.Registry
	// Now is the shared clock.
	Now func() time.Time
	// DefaultStateTTL is passed through to each node.
	DefaultStateTTL time.Duration
	// AbortPolicy is passed through to each node.
	AbortPolicy string
	// AbortFloor is passed through to each node.
	AbortFloor time.Duration
	// MaxRetries is passed through to each node (child-query
	// retransmission budget; 0 disables).
	MaxRetries int
	// RetryInterval is passed through to each node.
	RetryInterval time.Duration
	// BreakerThreshold is passed through to each node (per-neighbor
	// circuit breaker; 0 disables).
	BreakerThreshold int
	// BreakerCooldown is passed through to each node.
	BreakerCooldown time.Duration
	// Metrics, when set, instruments every node (see Config.Metrics).
	Metrics *telemetry.Metrics
	// Tracer, when set, records per-node transaction spans (see
	// Config.Tracer).
	Tracer *telemetry.Tracer
	// Flight, when set, records per-transaction lifecycle events on every
	// node (see Config.Flight).
	Flight *telemetry.FlightRecorder
}

// BuildCluster creates one node per graph vertex and wires neighbor sets
// from the edges.
func BuildCluster(g *topology.Graph, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("updf: cluster needs a network")
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(i int) string { return fmt.Sprintf("node/%d", i) }
	}
	regFor := cfg.RegistryFor
	if regFor == nil {
		regFor = func(i int) *registry.Registry {
			return registry.New(registry.Config{Name: addrFor(i), Now: cfg.Now})
		}
	}
	c := &Cluster{Graph: g, Nodes: make([]*Node, g.N())}
	for i := 0; i < g.N(); i++ {
		n, err := NewNode(Config{
			Addr:             addrFor(i),
			Net:              cfg.Net,
			Registry:         regFor(i),
			Now:              cfg.Now,
			DefaultStateTTL:  cfg.DefaultStateTTL,
			AbortPolicy:      cfg.AbortPolicy,
			AbortFloor:       cfg.AbortFloor,
			MaxRetries:       cfg.MaxRetries,
			RetryInterval:    cfg.RetryInterval,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Metrics:          cfg.Metrics,
			Tracer:           cfg.Tracer,
			Flight:           cfg.Flight,
			Seed:             int64(i + 1),
		})
		if err != nil {
			for _, m := range c.Nodes {
				if m != nil {
					m.Close()
				}
			}
			return nil, err
		}
		c.Nodes[i] = n
	}
	for i := 0; i < g.N(); i++ {
		nbs := g.Neighbors(i)
		addrs := make([]string, len(nbs))
		for j, nb := range nbs {
			addrs[j] = addrFor(nb)
		}
		c.Nodes[i].SetNeighbors(addrs)
	}
	return c, nil
}

// Close unregisters every node.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Close()
	}
}

// TotalStats sums the node counters across the cluster.
func (c *Cluster) TotalStats() Stats {
	var s Stats
	for _, n := range c.Nodes {
		ns := n.Stats()
		s.QueriesSeen += ns.QueriesSeen
		s.Duplicates += ns.Duplicates
		s.DroppedExpired += ns.DroppedExpired
		s.Evals += ns.Evals
		s.EvalErrors += ns.EvalErrors
		s.Forwards += ns.Forwards
		s.Aborts += ns.Aborts
		s.LateMessages += ns.LateMessages
		s.Retries += ns.Retries
		s.BreakerOpens += ns.BreakerOpens
		s.BreakerSkips += ns.BreakerSkips
	}
	return s
}
