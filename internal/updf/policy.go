package updf

import (
	"math/rand"
	"sync"
)

// Neighbor selection policies (thesis Ch. 6.7): given the node's neighbor
// set and the query's sender, a policy picks the neighbors the query is
// forwarded to.
const (
	// PolicyFlood forwards to every neighbor except the sender (Gnutella
	// style breadth-first flooding).
	PolicyFlood = "flood"
	// PolicyRandom forwards to at most Fanout random neighbors (excluding
	// the sender) — the random-walk family of policies.
	PolicyRandom = "random"
	// PolicyOrdered forwards to the first Fanout neighbors in address
	// order; deterministic, used by tests.
	PolicyOrdered = "ordered"
)

// selectNeighbors applies a policy. fanout == 0 means unbounded.
func selectNeighbors(policy string, neighbors []string, sender string, fanout int, rng *lockedRand) []string {
	candidates := make([]string, 0, len(neighbors))
	seen := make(map[string]bool, len(neighbors))
	for _, nb := range neighbors {
		// The sender is excluded; duplicates are dropped — forwarding the
		// same transaction twice to one neighbor would earn both a result
		// and a duplicate-receipt from it, confusing completion tracking.
		if nb != sender && !seen[nb] {
			seen[nb] = true
			candidates = append(candidates, nb)
		}
	}
	switch policy {
	case PolicyRandom:
		rng.shuffle(candidates)
	case PolicyFlood, PolicyOrdered, "":
		// keep order
	default:
		// Unknown policies degrade to flooding: a query must never be
		// silently swallowed because of a policy typo.
	}
	if fanout > 0 && len(candidates) > fanout {
		candidates = candidates[:fanout]
	}
	return candidates
}

// lockedRand is a mutex-guarded rand.Rand (nodes share one per Node).
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) shuffle(s []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

func (l *lockedRand) int63() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63()
}
