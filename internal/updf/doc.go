// Package updf implements the Unified Peer-to-Peer Database Framework of
// thesis Ch. 6: peer nodes that each hold a local hyper registry, forward
// XQueries along a link topology under a query scope (radius, static loop
// timeout, dynamic abort timeout, neighbor selection policy), detect loops
// via transaction IDs in a soft-state node state table, and deliver results
// under four response modes — routed, direct, direct-with-metadata and
// referral — with optional cross-node pipelining.
//
// The framework supports both P2P models of Ch. 6.2: in the servent model
// the originator is co-located with a node (query its own registry plus the
// network); in the agent model the originator is a plain client that
// submits to a remote entry node.
//
// Query-plane resilience is opt-in per node: bounded retransmission of
// child queries, a per-neighbor circuit breaker (internal/resilience)
// feeding back into neighbor selection, and partial-result accounting
// (nodes contacted/responded, completeness) carried on every final
// internal/pdp response. See DESIGN.md, "Fault model and resilience".
package updf
