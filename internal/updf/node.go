package updf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/resilience"
	"wsda/internal/softstate"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// Config configures a Node.
type Config struct {
	Addr     string             // the node's PDP address
	Net      pdp.Network        // transport to register on and send through
	Registry *registry.Registry // the local hyper registry queries run against

	// QueryOptions are applied to every local evaluation (freshness,
	// filter scope).
	QueryOptions registry.QueryOptions

	// DefaultStateTTL bounds state-table retention when a query carries no
	// loop timeout. Zero means 30s.
	DefaultStateTTL time.Duration

	// AbortPolicy controls how the dynamic abort timeout shrinks per hop:
	// AbortHalve (default) gives each child half the remaining budget so
	// answers can travel back through every level; AbortInherit passes the
	// deadline through unchanged (the naive static variant ablated in
	// experiment E7).
	AbortPolicy string

	// AbortFloor bounds how small halving can make the remaining budget:
	// without a floor, a node at hop k is left budget/2^k, which dips under
	// its own processing time on deep topologies and makes healthy nodes
	// abort spuriously. Zero means 500ms.
	AbortFloor time.Duration

	// MaxRetries is how many times a child query left unanswered is
	// retransmitted before the node gives up and lets the abort timeout
	// account for the child. Zero disables retransmission. Resends are
	// byte-identical (deadlines are absolute), so the receiving child
	// either ignores them (transaction in flight) or re-answers with its
	// recorded final — retransmission can never double-execute a query.
	MaxRetries int

	// RetryInterval is the delay before the first retransmission;
	// successive delays double (exponential backoff). The effective budget
	// is still capped by the query's abort timeout: finalization stops all
	// retry timers. Zero means 200ms when MaxRetries > 0.
	RetryInterval time.Duration

	// BreakerThreshold enables a per-neighbor circuit breaker: after this
	// many consecutive abort-timeout failures a neighbor is skipped during
	// neighbor selection until BreakerCooldown elapses (then one probe
	// query is let through). Skipping marks results incomplete but keeps
	// persistently dead peers from costing every query its full retry
	// budget. Zero disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is how long an open neighbor circuit rejects
	// forwarding before a probe. Zero means 5s (when the breaker is on).
	BreakerCooldown time.Duration

	// Seed seeds the neighbor-selection RNG; 0 derives one from the
	// address so distinct nodes shuffle differently but deterministically.
	Seed int64

	// Now is the clock; nil means time.Now.
	Now func() time.Time

	// Metrics, when set, receives per-node latency histograms (query
	// handling, local evaluation, loop-detect check, state sweeps),
	// labeled by node address. Nil disables collection.
	Metrics *telemetry.Metrics

	// Tracer, when set, records one span per transaction residency on
	// this node, parented under the sending hop's span (carried in
	// pdp.Message.TraceParent) so a query's full hop tree reconstructs.
	Tracer *telemetry.Tracer

	// Flight, when set, receives per-transaction lifecycle events
	// (received, forward, retransmit, breaker trips, partials, finals) so
	// /debug/query/<tx> can replay exactly what this node did for a query.
	// Nil disables recording.
	Flight *telemetry.FlightRecorder
}

// Abort-timeout shrink policies.
const (
	// AbortHalve halves the remaining abort budget per hop (default).
	AbortHalve = "halve"
	// AbortInherit passes the deadline through unchanged.
	AbortInherit = "inherit"
)

// Stats are cumulative node counters.
type Stats struct {
	QueriesSeen    int64 // query messages received
	Duplicates     int64 // loop-detected duplicates
	DroppedExpired int64 // queries past their loop timeout
	Evals          int64 // local query evaluations
	EvalErrors     int64 // local evaluations that failed
	Forwards       int64 // query messages forwarded to neighbors
	Aborts         int64 // transactions cut short by the abort timeout
	LateMessages   int64 // results/receipts arriving after finalization
	Retries        int64 // child-query retransmissions
	BreakerOpens   int64 // neighbor circuits tripped open
	BreakerSkips   int64 // forwards suppressed by an open circuit
	Closes         int64 // live transactions cancelled by a KindClose
}

// Node is one UPDF peer. It is driven entirely by messages delivered from
// the pdp.Network; all its sends are asynchronous.
type Node struct {
	cfg Config
	now func() time.Time

	mu         sync.RWMutex
	neighbors  []string
	membership *Membership

	states *softstate.Store[*txState]
	rng    *lockedRand

	// breaker is nil unless Config.BreakerThreshold > 0; a nil breaker
	// never trips, so the fast path stays branch-free.
	breaker *resilience.Breaker

	queriesSeen, duplicates, droppedExpired atomic.Int64
	evals, evalErrors, forwards             atomic.Int64
	aborts, lateMessages                    atomic.Int64
	retries, breakerOpens, breakerSkips     atomic.Int64
	closes                                  atomic.Int64

	// Telemetry handles; nil when Config.Metrics/Tracer/Flight are unset.
	flight           *telemetry.FlightRecorder
	tracer           *telemetry.Tracer
	handleSeconds    *telemetry.Histogram
	evalSeconds      *telemetry.Histogram
	loopCheckSeconds *telemetry.Histogram
	retriesMetric    *telemetry.Counter
}

// NewNode creates a node and registers it on the network.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("updf: node needs an address")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("updf: node needs a network")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("updf: node needs a registry")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.DefaultStateTTL == 0 {
		cfg.DefaultStateTTL = 30 * time.Second
	}
	if cfg.AbortFloor == 0 {
		cfg.AbortFloor = 500 * time.Millisecond
	}
	if cfg.MaxRetries > 0 && cfg.RetryInterval == 0 {
		cfg.RetryInterval = 200 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, b := range []byte(cfg.Addr) {
			seed = seed*131 + int64(b)
		}
	}
	n := &Node{
		cfg:    cfg,
		now:    cfg.Now,
		states: softstate.New[*txState](cfg.Now),
		rng:    newLockedRand(seed),
		tracer: cfg.Tracer,
		flight: cfg.Flight,
	}
	if m := cfg.Metrics; m != nil {
		n.handleSeconds = m.HistogramVec("wsda_updf_query_handle_seconds",
			"Latency of query-message handling (loop check, forward, local eval).",
			nil, "node").With(cfg.Addr)
		n.evalSeconds = m.HistogramVec("wsda_updf_eval_seconds",
			"Latency of local query evaluations.", nil, "node").With(cfg.Addr)
		n.loopCheckSeconds = m.HistogramVec("wsda_updf_loop_check_seconds",
			"Latency of the state-table loop-detection check.", nil, "node").With(cfg.Addr)
		n.states.InstrumentSweeps(m.HistogramVec("wsda_updf_state_sweep_seconds",
			"Latency of state-table sweeps.", nil, "node").With(cfg.Addr))
		n.retriesMetric = m.CounterVec("wsda_pdp_retries_total",
			"Child-query retransmissions to unresponsive neighbors.", "node").With(cfg.Addr)
		// Read the breaker at exposition time rather than on breaker
		// events: cooldown expiry closes circuits silently, so an
		// event-updated gauge would stay stuck high until the next trip.
		m.GaugeFuncVec("wsda_pdp_breaker_open",
			"Neighbor circuits currently open (read at scrape time).", "node").
			With(func() float64 { return float64(n.BreakerOpenCount()) }, cfg.Addr)
	}
	if cfg.BreakerThreshold > 0 {
		n.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
			Now:       cfg.Now,
			OnOpen:    func(string) { n.breakerOpens.Add(1) },
		})
	}
	if err := cfg.Net.Register(cfg.Addr, n.handle); err != nil {
		return nil, err
	}
	return n, nil
}

// Addr returns the node's network address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Registry returns the node's local database.
func (n *Node) Registry() *registry.Registry { return n.cfg.Registry }

// SetNeighbors replaces the node's neighbor set.
func (n *Node) SetNeighbors(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.neighbors = append([]string(nil), addrs...)
}

// Neighbors returns a copy of the neighbor set.
func (n *Node) Neighbors() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]string(nil), n.neighbors...)
}

// Close unregisters the node from the network.
func (n *Node) Close() { n.cfg.Net.Unregister(n.cfg.Addr) }

// Stats returns a snapshot of the node counters.
func (n *Node) Stats() Stats {
	return Stats{
		QueriesSeen:    n.queriesSeen.Load(),
		Duplicates:     n.duplicates.Load(),
		DroppedExpired: n.droppedExpired.Load(),
		Evals:          n.evals.Load(),
		EvalErrors:     n.evalErrors.Load(),
		Forwards:       n.forwards.Load(),
		Aborts:         n.aborts.Load(),
		LateMessages:   n.lateMessages.Load(),
		Retries:        n.retries.Load(),
		BreakerOpens:   n.breakerOpens.Load(),
		BreakerSkips:   n.breakerSkips.Load(),
		Closes:         n.closes.Load(),
	}
}

// BreakerOpenCount returns how many neighbor circuits are currently open —
// the value behind the wsda_pdp_breaker_open gauge. Zero when the breaker
// is disabled.
func (n *Node) BreakerOpenCount() int { return n.breaker.OpenCount() }

// StateTableSize returns the number of live state-table entries (loop
// detection memory).
func (n *Node) StateTableSize() int { return n.states.Len() }

// SweepStates garbage-collects expired state-table entries.
func (n *Node) SweepStates() int { return n.states.Sweep() }

// AdvertiseSelf publishes a node tuple describing this peer — address and
// current neighbor links — into its own registry under the given lifetime.
// Node tuples make the P2P network itself discoverable through the very
// query mechanism it implements: a network query for //node/@addr maps the
// overlay (thesis Ch. 4: tuple type "node" advertises registry nodes).
func (n *Node) AdvertiseSelf(ttl time.Duration) error {
	content := xmldoc.NewElement("node")
	content.SetAttr("addr", n.cfg.Addr)
	content.SetAttr("registry", n.cfg.Registry.Name())
	for _, nb := range n.Neighbors() {
		e := xmldoc.NewElement("neighbor")
		e.SetAttr("addr", nb)
		content.AppendChild(e)
	}
	content.Renumber()
	_, err := n.cfg.Registry.Publish(&tuple.Tuple{
		Link:    "pdp://" + n.cfg.Addr,
		Type:    tuple.TypeNode,
		Context: "self",
		Content: content,
	}, ttl)
	return err
}

// handle dispatches one incoming message. It runs on the network's
// delivery goroutine for this address.
func (n *Node) handle(m *pdp.Message) {
	switch m.Kind {
	case pdp.KindQuery:
		n.handleQuery(m)
	case pdp.KindResult:
		n.handleResult(m)
	case pdp.KindReceipt:
		n.handleReceipt(m)
	case pdp.KindFetch:
		n.handleFetch(m)
	case pdp.KindClose:
		n.handleClose(m)
	case pdp.KindPing:
		if mem := n.currentMembership(); mem != nil {
			mem.observe(m.From, nil, true)
		}
		n.send(&pdp.Message{
			Kind: pdp.KindPong, TxID: m.TxID, From: n.cfg.Addr, To: m.From,
			Neighbors: n.Neighbors(),
		})
	case pdp.KindPong:
		if mem := n.currentMembership(); mem != nil {
			mem.observe(m.From, m.Neighbors, true)
		}
	}
}

func (n *Node) currentMembership() *Membership {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.membership
}

func (n *Node) handleQuery(m *pdp.Message) {
	if n.handleSeconds != nil {
		defer n.handleSeconds.ObserveSince(time.Now())
	}
	sp := n.tracer.StartSpanID(m.TxID, m.TraceParent, "updf.query")
	sp.SetAttr(telemetry.String("node", n.cfg.Addr),
		telemetry.String("from", m.From),
		telemetry.Int("hop", int64(m.Hop)),
		telemetry.Int("radius", int64(m.Scope.Radius)))
	n.queriesSeen.Add(1)
	n.flight.Record(m.TxID, telemetry.FlightReceived, n.cfg.Addr, m.From, int64(m.Hop), "")
	now := n.now()

	// Static loop timeout: queries past their deadline are silently
	// dropped everywhere, bounding both traffic and state retention.
	if !m.Scope.LoopTimeout.IsZero() && now.After(m.Scope.LoopTimeout) {
		n.droppedExpired.Add(1)
		n.flight.Record(m.TxID, telemetry.FlightExpired, n.cfg.Addr, m.From, 0, "")
		sp.SetAttr(telemetry.String("outcome", "dropped-expired"))
		sp.End()
		return
	}

	// Loop detection (thesis Ch. 6.3): a transaction already in the state
	// table is a duplicate. Three cases:
	//
	//   - same parent, transaction still running: a retransmission of a
	//     query we are already working on — ignore it; the parent will get
	//     the final when it is ready. Answering it with an empty final
	//     (the pre-resilience behavior) would cancel live work.
	//   - same parent, transaction finalized: the parent missed our final;
	//     resend the recorded one.
	//   - different sender: a genuine loop over another path — answer with
	//     an immediate empty final (complete, zero nodes counted, so the
	//     alternate parent does not double count this subtree) so the
	//     upstream node does not wait for the abort timeout.
	st := &txState{
		parent:   m.From,
		origin:   m.Origin,
		mode:     m.Mode,
		pipeline: m.Pipeline,
		pending:  make(map[string]bool),
		children: make(map[string]*childState),
		span:     sp,
	}
	ttl := n.cfg.DefaultStateTTL
	if !m.Scope.LoopTimeout.IsZero() {
		ttl = m.Scope.LoopTimeout.Sub(now)
	}
	var lc0 time.Time
	if n.loopCheckSeconds != nil {
		lc0 = time.Now()
	}
	cur, isNew := n.states.PutIfAbsent(m.TxID, st, ttl)
	if n.loopCheckSeconds != nil {
		n.loopCheckSeconds.ObserveSince(lc0)
	}
	if !isNew {
		n.duplicates.Add(1)
		n.flight.Record(m.TxID, telemetry.FlightDuplicate, n.cfg.Addr, m.From, 0, "")
		sp.SetAttr(telemetry.String("outcome", "duplicate"))
		sp.End()
		cur.mu.Lock()
		sameParent := cur.parent == m.From
		finalOut := cur.finalOut
		cur.mu.Unlock()
		if sameParent {
			if finalOut != nil {
				n.send(finalOut)
			}
			return
		}
		n.send(&pdp.Message{
			Kind: pdp.KindReceipt, TxID: m.TxID, From: n.cfg.Addr, To: m.From,
			Final: true, Complete: true, TraceParent: sp.ID(),
		})
		return
	}

	// Forward to selected neighbors while the radius allows. Referral mode
	// never forwards: expansion is originator-driven.
	if m.Mode != pdp.Referral && m.Scope.Radius != 0 {
		children := selectNeighbors(m.Scope.Policy, n.Neighbors(), m.From, m.Scope.Fanout, n.rng)
		// The circuit breaker feeds back into neighbor selection: peers
		// whose circuit is open are skipped entirely. Their subtree is not
		// contacted, which makes this node's answer incomplete — the honest
		// trade against stalling every query on a known-dead peer.
		if n.breaker != nil {
			kept := children[:0]
			for _, child := range children {
				if n.breaker.Allow(child) {
					kept = append(kept, child)
				} else {
					n.breakerSkips.Add(1)
					n.flight.Record(m.TxID, telemetry.FlightBreakerSkip, n.cfg.Addr, child, 0, "")
					st.skipped++
				}
			}
			children = kept
		}
		childScope := m.Scope
		if childScope.Radius > 0 {
			childScope.Radius--
		}
		if !childScope.AbortTimeout.IsZero() && n.cfg.AbortPolicy != AbortInherit {
			// Dynamic abort timeout (thesis Ch. 6.6): each hop halves the
			// remaining budget so partial results can flow back through
			// every level before the originator's own deadline passes. The
			// floor keeps deep hops from being starved below their own
			// processing time.
			remaining := childScope.AbortTimeout.Sub(now)
			budget := remaining / 2
			if budget < n.cfg.AbortFloor {
				budget = n.cfg.AbortFloor
				if budget > remaining {
					budget = remaining
				}
			}
			childScope.AbortTimeout = now.Add(budget)
		}
		st.mu.Lock()
		for _, child := range children {
			st.pending[child] = true
			st.children[child] = &childState{
				msg: &pdp.Message{
					Kind: pdp.KindQuery, TxID: m.TxID, From: n.cfg.Addr, To: child,
					Hop: m.Hop + 1, Query: m.Query, Mode: m.Mode, Origin: m.Origin,
					Pipeline: m.Pipeline, Scope: childScope, TraceParent: sp.ID(),
				},
				left:     n.cfg.MaxRetries,
				interval: n.cfg.RetryInterval,
			}
		}
		st.mu.Unlock()
		for _, child := range children {
			n.forwards.Add(1)
			n.flight.Record(m.TxID, telemetry.FlightForward, n.cfg.Addr, child, int64(m.Hop+1), "")
			st.mu.Lock()
			cs := st.children[child]
			msg := cs.msg
			if cs.left > 0 {
				child := child
				cs.timer = time.AfterFunc(cs.interval, func() { n.retryChild(m.TxID, child) })
			}
			st.mu.Unlock()
			n.send(msg)
		}
	}

	// Arm the dynamic abort timer before evaluating, so a pathological
	// local evaluation cannot block the deadline.
	if !m.Scope.AbortTimeout.IsZero() {
		d := m.Scope.AbortTimeout.Sub(now)
		if d < 0 {
			d = 0
		}
		st.mu.Lock()
		st.timer = time.AfterFunc(d, func() { n.abortTx(m.TxID) })
		st.mu.Unlock()
	}

	n.evalLocal(m, st)
	st.mu.Lock()
	st.localDone = true
	st.mu.Unlock()
	n.checkCompletion(m.TxID, st)
}

// retryChild fires when a forwarded child query has gone unanswered for
// one backoff interval: the recorded message is resent verbatim (its
// deadlines are absolute) and the timer re-arms with a doubled delay until
// the retransmission budget is spent or the transaction finalizes, which
// stops every child timer. The abort timeout therefore remains the hard
// cap on how long retries can keep a transaction alive.
func (n *Node) retryChild(tx, child string) {
	st, ok := n.states.Get(tx)
	if !ok {
		return
	}
	st.mu.Lock()
	cs := st.children[child]
	if cs == nil || cs.done || st.finalSent || cs.left <= 0 {
		st.mu.Unlock()
		return
	}
	cs.left--
	cs.interval *= 2
	msg := cs.msg
	if cs.left > 0 {
		cs.timer = time.AfterFunc(cs.interval, func() { n.retryChild(tx, child) })
	}
	left := cs.left
	st.mu.Unlock()
	n.retries.Add(1)
	if n.retriesMetric != nil {
		n.retriesMetric.Inc()
	}
	n.flight.Record(tx, telemetry.FlightRetransmit, n.cfg.Addr, child, int64(left), "")
	n.send(msg)
}

// childFinalLocked books a final message from a child: cancels its retry
// timer, removes it from pending, and folds its subtree accounting into
// ours. It reports false when the final is a duplicate (a retransmission
// race) that must be ignored. st.mu must be held.
func (st *txState) childFinalLocked(m *pdp.Message) bool {
	if cs := st.children[m.From]; cs != nil {
		if cs.done {
			return false
		}
		cs.done = true
		if cs.timer != nil {
			cs.timer.Stop()
		}
	}
	delete(st.pending, m.From)
	st.childContacted += m.NodesContacted
	st.childResponded += m.NodesResponded
	if !m.Complete {
		st.childIncomplete = true
	}
	return true
}

// evalLocal runs the query against the node's own registry and disposes of
// the local results per the response mode.
func (n *Node) evalLocal(m *pdp.Message, st *txState) {
	if n.evalSeconds != nil {
		defer n.evalSeconds.ObserveSince(time.Now())
	}
	if esp := n.tracer.StartSpan(m.TxID, st.span, "updf.eval"); esp != nil {
		defer func() {
			st.mu.Lock()
			hits, evalErr := st.localHits, st.evalErr
			st.mu.Unlock()
			esp.SetAttr(telemetry.Int("hits", int64(hits)))
			if evalErr != "" {
				esp.SetAttr(telemetry.String("err", evalErr))
			}
			esp.End()
		}()
	}
	n.evals.Add(1)
	opts := n.cfg.QueryOptions
	// Stamp the transaction onto the evaluation so the registry's own
	// flight events (planned, plan-fallback, view-hit/miss) land in the
	// same recording, and capture the chosen plan so the eval event says
	// how the local engine answered.
	opts.TxID = m.TxID
	var plan registry.PlanInfo
	opts.Explain = &plan
	defer func() {
		st.mu.Lock()
		hits, evalErr := st.localHits, st.evalErr
		st.mu.Unlock()
		note := evalErr
		if note == "" {
			note = plan.String()
		}
		n.flight.Record(m.TxID, telemetry.FlightEval, n.cfg.Addr, "", int64(hits), note)
	}()

	if st.mode == pdp.Routed && st.pipeline {
		// Pipelined routed execution: every item is relayed upstream the
		// moment the local engine produces it (thesis Ch. 6.5).
		opts.Emit = func(it xq.Item) bool {
			st.mu.Lock()
			aborted := st.finalSent
			st.localHits++
			st.subtreeHits++
			st.mu.Unlock()
			if aborted {
				return false
			}
			n.send(&pdp.Message{
				Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.parent,
				Items: xq.Sequence{it}, HitCount: 1, Source: n.cfg.Addr,
				TraceParent: st.span.ID(),
			})
			return true
		}
		if _, err := n.cfg.Registry.Query(m.Query, opts); err != nil {
			n.evalErrors.Add(1)
			st.mu.Lock()
			st.evalErr = err.Error()
			st.mu.Unlock()
		}
		return
	}

	seq, err := n.cfg.Registry.Query(m.Query, opts)
	if err != nil {
		n.evalErrors.Add(1)
		st.mu.Lock()
		st.evalErr = err.Error()
		st.mu.Unlock()
		return
	}
	st.mu.Lock()
	st.localHits = len(seq)
	st.subtreeHits += len(seq)
	aborted := st.finalSent
	st.mu.Unlock()
	if aborted {
		return
	}
	switch st.mode {
	case pdp.Routed:
		st.mu.Lock()
		st.buffered = append(st.buffered, seq...)
		st.mu.Unlock()
	case pdp.Direct:
		// Only matching nodes answer directly; completion is detected via
		// the routed receipts, whose hit totals tell the originator how
		// many items to expect.
		if len(seq) > 0 {
			n.send(&pdp.Message{
				Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.origin,
				Items: seq, HitCount: len(seq), Source: n.cfg.Addr, Final: true,
				TraceParent: st.span.ID(),
			})
		}
	case pdp.Metadata:
		st.mu.Lock()
		st.buffered = seq // retained for a later Fetch
		st.mu.Unlock()
		if len(seq) > 0 {
			// Metadata record: count + source, routed upstream.
			n.send(&pdp.Message{
				Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.parent,
				HitCount: len(seq), Source: n.cfg.Addr, TraceParent: st.span.ID(),
			})
		}
	case pdp.Referral:
		n.send(&pdp.Message{
			Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.origin,
			Items: seq, HitCount: len(seq), Source: n.cfg.Addr, Final: true,
			Neighbors: n.Neighbors(), TraceParent: st.span.ID(),
			NodesContacted: 1, NodesResponded: 1, Complete: true,
		})
	}
}

func (n *Node) handleResult(m *pdp.Message) {
	st, ok := n.states.Get(m.TxID)
	if !ok {
		n.lateMessages.Add(1)
		return
	}
	st.mu.Lock()
	if st.finalSent {
		st.mu.Unlock()
		n.lateMessages.Add(1)
		return
	}
	if m.Final && !st.childFinalLocked(m) {
		st.mu.Unlock()
		n.lateMessages.Add(1)
		return
	}
	var relay *pdp.Message
	switch st.mode {
	case pdp.Routed:
		st.subtreeHits += len(m.Items)
		if cs := st.children[m.From]; cs != nil {
			cs.received += len(m.Items)
			if m.Final {
				cs.promised = m.HitCount
			}
		}
		if st.pipeline {
			if len(m.Items) > 0 {
				// The relay carries this node's span as its trace parent —
				// like evalLocal's pipelined send — so relayed items stay
				// attached to the hop tree instead of surfacing as orphan
				// roots.
				relay = &pdp.Message{
					Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.parent,
					Items: m.Items, HitCount: len(m.Items), Source: m.Source,
					TraceParent: st.span.ID(),
				}
			}
		} else {
			st.buffered = append(st.buffered, m.Items...)
		}
	case pdp.Metadata:
		// Relay the metadata record upstream verbatim (source preserved).
		if m.HitCount > 0 && m.Source != "" {
			relay = &pdp.Message{
				Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: st.parent,
				HitCount: m.HitCount, Source: m.Source, TraceParent: st.span.ID(),
			}
		}
	}
	st.mu.Unlock()
	if m.Final {
		n.flight.Record(m.TxID, telemetry.FlightChildFinal, n.cfg.Addr, m.From, int64(m.HitCount), "")
	} else if len(m.Items) > 0 {
		n.flight.Record(m.TxID, telemetry.FlightPartial, n.cfg.Addr, m.From, int64(len(m.Items)), "")
	}
	if relay != nil {
		n.send(relay)
	}
	if m.Final {
		n.breaker.Success(m.From)
	}
	n.checkCompletion(m.TxID, st)
}

func (n *Node) handleReceipt(m *pdp.Message) {
	st, ok := n.states.Get(m.TxID)
	if !ok {
		n.lateMessages.Add(1)
		return
	}
	st.mu.Lock()
	if st.finalSent {
		st.mu.Unlock()
		n.lateMessages.Add(1)
		return
	}
	if !st.childFinalLocked(m) {
		st.mu.Unlock()
		n.lateMessages.Add(1)
		return
	}
	st.subtreeHits += m.HitCount
	st.mu.Unlock()
	n.flight.Record(m.TxID, telemetry.FlightChildFinal, n.cfg.Addr, m.From, int64(m.HitCount), "receipt")
	n.breaker.Success(m.From)
	n.checkCompletion(m.TxID, st)
}

// handleFetch serves the items retained for Metadata mode directly to the
// originator. Only Metadata-mode state is fetchable, and the answer goes to
// the origin recorded when the query arrived, never to an address the Fetch
// message claims: a Fetch against a Routed transaction (whose buffer holds
// in-flight results bound for the parent) or with a forged Origin must not
// leak the buffer.
func (n *Node) handleFetch(m *pdp.Message) {
	resp := &pdp.Message{
		Kind: pdp.KindResult, TxID: m.TxID, From: n.cfg.Addr, To: m.From,
		Source: n.cfg.Addr, Final: true,
	}
	st, ok := n.states.Get(m.TxID)
	if !ok {
		resp.Err = "state expired"
		n.send(resp)
		return
	}
	st.mu.Lock()
	mode, origin := st.mode, st.origin
	if mode == pdp.Metadata {
		resp.Items = append(xq.Sequence(nil), st.buffered...)
		resp.HitCount = len(resp.Items)
	}
	st.mu.Unlock()
	if mode != pdp.Metadata {
		resp.Err = "fetch: not a metadata transaction"
		n.send(resp)
		return
	}
	if origin != "" {
		resp.To = origin
	}
	n.send(resp)
}

// handleClose aborts a transaction on request of the originator and
// propagates the close to children still pending.
func (n *Node) handleClose(m *pdp.Message) {
	st, ok := n.states.Get(m.TxID)
	if !ok {
		return
	}
	st.mu.Lock()
	if st.finalSent {
		st.mu.Unlock()
		return
	}
	st.finalSent = true
	n.closes.Add(1)
	if st.timer != nil {
		st.timer.Stop()
	}
	for _, cs := range st.children {
		if cs.timer != nil {
			cs.timer.Stop()
		}
	}
	if st.span != nil {
		st.span.SetAttr(telemetry.String("outcome", "closed"))
		st.span.End()
	}
	children := make([]string, 0, len(st.pending))
	for c := range st.pending {
		children = append(children, c)
	}
	st.pending = map[string]bool{}
	st.buffered = nil
	st.mu.Unlock()
	n.flight.Record(m.TxID, telemetry.FlightClose, n.cfg.Addr, m.From, int64(len(children)), "")
	for _, c := range children {
		n.send(&pdp.Message{Kind: pdp.KindClose, TxID: m.TxID, From: n.cfg.Addr, To: c})
	}
}

// checkCompletion finalizes the transaction once the local evaluation is
// done, every child has reported, and every routed child's declared items
// have been drained (see childrenDrainedLocked); until then each arriving
// result re-triggers this check.
func (n *Node) checkCompletion(tx string, st *txState) {
	st.mu.Lock()
	if st.finalSent || !st.localDone || len(st.pending) > 0 || !st.childrenDrainedLocked() {
		st.mu.Unlock()
		return
	}
	n.finalizeLocked(tx, st, "")
}

// abortTx fires when the dynamic abort timeout elapses: whatever is
// buffered is flushed upstream with a final marker, and later child
// messages are dropped.
func (n *Node) abortTx(tx string) {
	st, ok := n.states.Get(tx)
	if !ok {
		return
	}
	st.mu.Lock()
	if st.finalSent {
		st.mu.Unlock()
		return
	}
	n.aborts.Add(1)
	n.flight.Record(tx, telemetry.FlightAbort, n.cfg.Addr, "", int64(len(st.pending)), "abort-timeout")
	n.finalizeLocked(tx, st, "abort-timeout")
}

// finalizeLocked sends the final upstream message. st.mu must be held; it
// is released before returning.
//
// The final carries the subtree's partial-result accounting: contacted is
// this node plus everything its answered children report plus one for each
// child that never answered (we reached for it, it stayed silent); responded
// is this node plus the answered subtrees. The answer is complete only if
// nothing was lost anywhere below: no abort, no local eval error, no silent
// children, no incomplete child subtree, and no breaker-skipped neighbor
// (skipped peers were never contacted, but their absence still means the
// network was not fully covered).
func (n *Node) finalizeLocked(tx string, st *txState, abortErr string) {
	st.finalSent = true
	if st.timer != nil {
		st.timer.Stop()
	}
	for _, cs := range st.children {
		if cs.timer != nil {
			cs.timer.Stop()
		}
	}
	contacted := 1 + st.childContacted + len(st.pending)
	responded := 1 + st.childResponded
	complete := abortErr == "" && st.evalErr == "" && len(st.pending) == 0 &&
		!st.childIncomplete && st.skipped == 0
	// Children still pending at an abort are delivery failures: feed the
	// circuit breaker so persistently dead peers get skipped next time.
	var failed []string
	if abortErr != "" && n.breaker != nil {
		for c := range st.pending {
			failed = append(failed, c)
		}
	}
	if st.span != nil {
		st.span.SetAttr(telemetry.Int("local_hits", int64(st.localHits)),
			telemetry.Int("subtree_hits", int64(st.subtreeHits)),
			telemetry.Int("nodes_contacted", int64(contacted)),
			telemetry.Int("nodes_responded", int64(responded)),
			telemetry.Bool("complete", complete))
		if abortErr != "" {
			st.span.SetAttr(telemetry.String("outcome", abortErr))
		}
		st.span.End()
	}
	errStr := st.evalErr
	if abortErr != "" {
		if errStr != "" {
			errStr += "; "
		}
		errStr += abortErr
	}
	var out *pdp.Message
	switch st.mode {
	case pdp.Routed:
		out = &pdp.Message{
			Kind: pdp.KindResult, TxID: tx, From: n.cfg.Addr, To: st.parent,
			Items: st.buffered, HitCount: st.subtreeHits, Final: true,
			Source: n.cfg.Addr, Err: errStr, TraceParent: st.span.ID(),
			NodesContacted: contacted, NodesResponded: responded, Complete: complete,
		}
		st.buffered = nil
	case pdp.Direct, pdp.Metadata:
		out = &pdp.Message{
			Kind: pdp.KindReceipt, TxID: tx, From: n.cfg.Addr, To: st.parent,
			HitCount: st.subtreeHits, Final: true, Err: errStr,
			TraceParent:    st.span.ID(),
			NodesContacted: contacted, NodesResponded: responded, Complete: complete,
		}
	case pdp.Referral:
		// Referral answered directly in evalLocal; nothing upstream.
	}
	st.finalOut = out
	subtreeHits := st.subtreeHits
	st.mu.Unlock()
	note := "complete"
	if !complete {
		note = "incomplete"
	}
	if abortErr != "" {
		note += "," + abortErr
	}
	n.flight.Record(tx, telemetry.FlightNodeFinal, n.cfg.Addr, "", int64(subtreeHits), note)
	if out != nil {
		n.send(out)
	}
	for _, c := range failed {
		if n.breaker.Failure(c) {
			// Failure reports true when this failure tripped the circuit:
			// record the trip against the transaction that caused it so the
			// flight shows exactly when a neighbor went dark.
			n.flight.Record(tx, telemetry.FlightBreakerOpen, n.cfg.Addr, c, 0, "")
		}
	}
}

func (n *Node) send(m *pdp.Message) {
	// Best effort: unknown addresses (departed peers) are ignored, exactly
	// like a connectionless network.
	_ = n.cfg.Net.Send(m)
}
