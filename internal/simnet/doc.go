// Package simnet provides the simulated network substrate substituted for
// the paper's wide-area Grid testbed (see DESIGN.md). It implements
// pdp.Network with a configurable per-link latency model, optional message
// loss injection, and message/byte accounting. Delivery preserves per-
// destination ordering for equal-latency links.
//
// Beyond the static latency/loss hooks, the Faults type injects runtime
// faults — per-link drop probability, delay jitter, reordering, network
// partitions, node crash/restart — and FaultSchedule scripts timed fault
// sequences, both seedable for reproducible chaos experiments (E16).
// internal/updf and internal/experiments are the main consumers.
package simnet
