package simnet

import (
	"sync"
	"sync/atomic"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/telemetry"
)

// DelayFunc returns the one-way latency of the link from -> to.
type DelayFunc func(from, to string) time.Duration

// DropFunc reports whether a given message should be lost in transit.
type DropFunc func(msg *pdp.Message) bool

// Config configures a simulated network.
type Config struct {
	// Delay computes per-link latency; nil means zero latency everywhere.
	Delay DelayFunc
	// Drop injects message loss; nil delivers everything.
	Drop DropFunc
	// CountBytes enables wire-size accounting (serializes every message
	// once; costs CPU, so benchmarks opt in).
	CountBytes bool

	// Bandwidth, when positive, models link capacity in bytes per second:
	// each message's transfer adds WireSize/Bandwidth on top of the
	// propagation delay, and messages on one link serialize behind each
	// other (a busy link backs up). Implies byte accounting.
	Bandwidth int64

	// Metrics, when set, exports the network counters and a per-message
	// link-delay histogram.
	Metrics *telemetry.Metrics

	// Tracer, when set, records one hop event per accepted message —
	// annotated with from/to/kind/hop and parented under the sender's
	// span — so a network query's traffic is visible in its hop tree.
	Tracer *telemetry.Tracer

	// Faults, when set, attaches a scriptable fault model (loss, jitter,
	// reordering, partitions, crashes) consulted on every Send after the
	// static Drop hook. See Faults and FaultSchedule.
	Faults *Faults
}

// Stats are cumulative network counters.
type Stats struct {
	Messages int64 // messages accepted for delivery
	Bytes    int64 // wire bytes (0 unless CountBytes)
	Dropped  int64 // messages lost by Drop injection
	DeadAddr int64 // messages to unregistered addresses
}

// Network is an in-process pdp.Network. The zero value is not usable; call
// New.
//
// Delivery is FIFO per (from, to) link even when the link has latency,
// matching the ordered-stream semantics of the HTTP/TCP binding the
// protocol runs over in a real deployment.
type Network struct {
	cfg Config

	mu      sync.RWMutex
	boxes   map[string]*mailbox
	crashed map[string]pdp.Handler // handlers saved across Crash/Restart

	linkMu sync.Mutex
	links  map[string]*link

	messages, bytes, dropped, deadAddr atomic.Int64

	perKind [8]atomic.Int64 // messages by pdp.Kind

	delaySeconds *telemetry.Histogram
}

// New creates a network.
func New(cfg Config) *Network {
	n := &Network{
		cfg:     cfg,
		boxes:   make(map[string]*mailbox),
		crashed: make(map[string]pdp.Handler),
		links:   make(map[string]*link),
	}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("wsda_simnet_messages_total",
			"Messages accepted for delivery.", n.messages.Load)
		m.CounterFunc("wsda_simnet_bytes_total",
			"Wire bytes (0 unless byte accounting is on).", n.bytes.Load)
		m.CounterFunc("wsda_simnet_dropped_total",
			"Messages lost by drop injection.", n.dropped.Load)
		m.CounterFunc("wsda_simnet_dead_addr_total",
			"Messages to unregistered addresses.", n.deadAddr.Load)
		n.delaySeconds = m.Histogram("wsda_simnet_delay_seconds",
			"Modeled link delay per delivered message.", nil)
	}
	return n
}

// link serializes delayed deliveries on one (from, to) pair.
type link struct {
	mu     sync.Mutex
	queue  []delivery
	armed  bool
	lastAt time.Time
}

type delivery struct {
	msg     *pdp.Message
	box     *mailbox
	readyAt time.Time
}

// push enqueues a delivery and arms the link timer if idle. Ready times
// are forced non-decreasing so reordering cannot happen even if the delay
// model is non-constant.
func (l *link) push(msg *pdp.Message, box *mailbox, readyAt time.Time) {
	l.mu.Lock()
	if readyAt.Before(l.lastAt) {
		readyAt = l.lastAt
	}
	l.lastAt = readyAt
	l.queue = append(l.queue, delivery{msg: msg, box: box, readyAt: readyAt})
	if !l.armed {
		l.armed = true
		l.arm()
	}
	l.mu.Unlock()
}

// arm schedules delivery of the queue head. Caller holds l.mu.
func (l *link) arm() {
	d := time.Until(l.queue[0].readyAt)
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, l.fire)
}

func (l *link) fire() {
	l.mu.Lock()
	head := l.queue[0]
	l.queue = l.queue[1:]
	if len(l.queue) > 0 {
		l.arm()
	} else {
		l.armed = false
	}
	l.mu.Unlock()
	head.box.put(head.msg)
}

// Register implements pdp.Network.
func (n *Network) Register(addr string, h pdp.Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.boxes[addr]; ok {
		old.close()
	}
	n.boxes[addr] = newMailbox(h)
	return nil
}

// Unregister implements pdp.Network.
func (n *Network) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if b, ok := n.boxes[addr]; ok {
		b.close()
		delete(n.boxes, addr)
	}
}

// Send implements pdp.Network.
func (n *Network) Send(msg *pdp.Message) error {
	if n.cfg.Drop != nil && n.cfg.Drop(msg) {
		n.dropped.Add(1)
		return nil // silent loss, like the real network
	}
	var bypassFIFO bool
	var faultDelay time.Duration
	if f := n.cfg.Faults; f != nil {
		var drop bool
		drop, bypassFIFO, faultDelay = f.filter(msg)
		if drop {
			n.dropped.Add(1)
			return nil
		}
	}
	n.mu.RLock()
	box, ok := n.boxes[msg.To]
	n.mu.RUnlock()
	if !ok {
		n.deadAddr.Add(1)
		return pdp.ErrUnknownAddr
	}
	n.messages.Add(1)
	if int(msg.Kind) < len(n.perKind) {
		n.perKind[msg.Kind].Add(1)
	}
	var size int64
	if n.cfg.CountBytes || n.cfg.Bandwidth > 0 {
		size = int64(msg.WireSize())
		n.bytes.Add(size)
	}
	delay := faultDelay
	if n.cfg.Delay != nil {
		delay += n.cfg.Delay(msg.From, msg.To)
	}
	if n.cfg.Bandwidth > 0 {
		delay += time.Duration(size * int64(time.Second) / n.cfg.Bandwidth)
	}
	n.delaySeconds.ObserveDuration(delay)
	if tr := n.cfg.Tracer; tr != nil && msg.TxID != "" {
		tr.Event(msg.TxID, msg.TraceParent, "net.hop",
			telemetry.String("from", msg.From),
			telemetry.String("to", msg.To),
			telemetry.String("kind", msg.Kind.String()),
			telemetry.Int("hop", int64(msg.Hop)),
			telemetry.Int("delay_us", delay.Microseconds()))
	}
	if delay <= 0 {
		box.put(msg)
		return nil
	}
	if bypassFIFO {
		// Reorder injection: deliver on an independent timer so this
		// message can overtake earlier ones queued on the same link.
		time.AfterFunc(delay, func() { box.put(msg) })
		return nil
	}
	// The link queue enforces per-link FIFO; with a bandwidth model its
	// non-decreasing ready times also serialize transfers behind each
	// other, so a large message delays the ones queued after it.
	n.linkOf(msg.From, msg.To).push(msg, box, time.Now().Add(delay))
	return nil
}

// Crash simulates a node dying at the transport layer: the address is
// unregistered — pending mail is discarded and senders get
// pdp.ErrUnknownAddr — but its handler is remembered so Restart can bring
// the node back without the caller re-plumbing it. For silent loss with the
// mailbox kept alive, use Faults.Crash instead.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	if box, ok := n.boxes[addr]; ok {
		n.crashed[addr] = box.h
		box.close()
		delete(n.boxes, addr)
	}
	n.mu.Unlock()
}

// Restart re-registers an address previously taken down by Crash with its
// saved handler. Restarting an address that was never crashed is a no-op.
func (n *Network) Restart(addr string) {
	n.mu.Lock()
	h, ok := n.crashed[addr]
	if ok {
		delete(n.crashed, addr)
	}
	n.mu.Unlock()
	if ok {
		_ = n.Register(addr, h)
	}
}

func (n *Network) linkOf(from, to string) *link {
	key := from + "\x00" + to
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	l, ok := n.links[key]
	if !ok {
		l = &link{}
		n.links[key] = l
	}
	return l
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages: n.messages.Load(),
		Bytes:    n.bytes.Load(),
		Dropped:  n.dropped.Load(),
		DeadAddr: n.deadAddr.Load(),
	}
}

// KindCount returns how many messages of the given kind were sent.
func (n *Network) KindCount(k pdp.Kind) int64 {
	if int(k) >= len(n.perKind) {
		return 0
	}
	return n.perKind[k].Load()
}

// ResetStats zeroes all counters (between benchmark phases).
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytes.Store(0)
	n.dropped.Store(0)
	n.deadAddr.Store(0)
	for i := range n.perKind {
		n.perKind[i].Store(0)
	}
}

// Close shuts down all mailboxes.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for a, b := range n.boxes {
		b.close()
		delete(n.boxes, a)
	}
}

// mailbox is an unbounded FIFO draining into a handler on one goroutine,
// so a flood can never deadlock on a full channel.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*pdp.Message
	closed bool
	h      pdp.Handler
}

func newMailbox(h pdp.Handler) *mailbox {
	b := &mailbox{h: h}
	b.cond = sync.NewCond(&b.mu)
	go b.drain()
	return b
}

func (b *mailbox) put(m *pdp.Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *mailbox) drain() {
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		m := b.queue[0]
		b.queue = b.queue[1:]
		b.mu.Unlock()
		b.h(m)
	}
}

// UniformDelay returns a DelayFunc with one latency for every link.
func UniformDelay(d time.Duration) DelayFunc {
	return func(string, string) time.Duration { return d }
}

// HostAwareDelay models container co-location (thesis Ch. 6.8): links
// between addresses on the same host (identical prefix before the last
// '/') are intra-container and take local; all others take remote.
func HostAwareDelay(local, remote time.Duration) DelayFunc {
	return func(from, to string) time.Duration {
		if hostOf(from) == hostOf(to) {
			return local
		}
		return remote
	}
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == '/' {
			return addr[:i]
		}
	}
	return addr
}
