package simnet

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"wsda/internal/pdp"
)

// Faults is a seedable, runtime-mutable fault model consulted on every
// Send. It composes four failure classes, each independently scriptable:
//
//   - message loss: a default drop probability plus per-link overrides;
//   - delay jitter: a uniform random addition to the link delay;
//   - reordering: with some probability a message bypasses the per-link
//     FIFO queue and may overtake messages sent before it;
//   - partitions and crashes: messages crossing a partition boundary, or
//     touching a crashed address, vanish silently.
//
// All randomness comes from one seeded source, so a fault run is
// reproducible. The zero value is not usable; call NewFaults. Faults is
// safe for concurrent use (Send paths and fault-schedule timers race by
// design).
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	defaultDrop float64
	linkDrop    map[string]float64 // from\x00to -> probability

	jitter  time.Duration
	reorder float64

	group map[string]int // partition group per address; absent = talks to all
	down  map[string]bool

	// drop causes, for diagnostics and E16 tables.
	lossDrops, partitionDrops, crashDrops int64
}

// FaultStats breaks injected message loss down by cause.
type FaultStats struct {
	// LossDrops counts messages lost to random per-link loss.
	LossDrops int64
	// PartitionDrops counts messages that tried to cross a partition.
	PartitionDrops int64
	// CrashDrops counts messages from or to a crashed address.
	CrashDrops int64
}

// NewFaults creates a fault model with no faults armed. seed 0 is replaced
// by 1 so the zero seed is still deterministic.
func NewFaults(seed int64) *Faults {
	if seed == 0 {
		seed = 1
	}
	return &Faults{
		rng:      rand.New(rand.NewSource(seed)),
		linkDrop: make(map[string]float64),
		group:    make(map[string]int),
		down:     make(map[string]bool),
	}
}

// SetDrop sets the default per-message loss probability for every link.
func (f *Faults) SetDrop(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.defaultDrop = p
}

// SetLinkDrop overrides the loss probability of one directed link.
func (f *Faults) SetLinkDrop(from, to string, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.linkDrop[from+"\x00"+to] = p
}

// SetJitter adds a uniform random delay in [0, d) to every delivery.
func (f *Faults) SetJitter(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.jitter = d
}

// SetReorder sets the probability that a message bypasses its link's FIFO
// queue, letting it overtake earlier messages on the same link.
func (f *Faults) SetReorder(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reorder = p
}

// Partition splits the network: addresses in different groups cannot
// exchange messages. Addresses in no group keep talking to everyone (so an
// experiment can partition the peer overlay while leaving its originator
// connected). Calling Partition replaces any previous partition.
func (f *Faults) Partition(groups ...[]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group = make(map[string]int)
	for i, g := range groups {
		for _, addr := range g {
			f.group[addr] = i
		}
	}
}

// Heal removes all partitions.
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group = make(map[string]int)
}

// Crash marks an address down: everything it sends or receives is lost
// silently, like a killed process whose peers get no RST. The mailbox
// stays registered, so Restart is instantaneous.
func (f *Faults) Crash(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[addr] = true
}

// Restart brings a crashed address back.
func (f *Faults) Restart(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.down, addr)
}

// Stats returns the per-cause drop counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{
		LossDrops:      f.lossDrops,
		PartitionDrops: f.partitionDrops,
		CrashDrops:     f.crashDrops,
	}
}

// filter decides one message's fate: lost (drop=true) or delivered with
// extra delay and possibly outside the link FIFO (bypass=true).
func (f *Faults) filter(msg *pdp.Message) (drop, bypass bool, extra time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[msg.From] || f.down[msg.To] {
		f.crashDrops++
		return true, false, 0
	}
	if gf, okf := f.group[msg.From]; okf {
		if gt, okt := f.group[msg.To]; okt && gf != gt {
			f.partitionDrops++
			return true, false, 0
		}
	}
	p := f.defaultDrop
	if lp, ok := f.linkDrop[msg.From+"\x00"+msg.To]; ok {
		p = lp
	}
	if p > 0 && f.rng.Float64() < p {
		f.lossDrops++
		return true, false, 0
	}
	if f.jitter > 0 {
		extra = time.Duration(f.rng.Int63n(int64(f.jitter)))
	}
	if f.reorder > 0 && f.rng.Float64() < f.reorder {
		bypass = true
	}
	return false, bypass, extra
}

// FaultEvent is one timed step of a fault schedule.
type FaultEvent struct {
	// At is the event's offset from Schedule.Run.
	At time.Duration
	// Name labels the event in logs and experiment notes.
	Name string
	// Apply mutates the fault model (and may touch the network, e.g.
	// Unregister a node to simulate a crash that severs the mailbox).
	Apply func(f *Faults, n *Network)
}

// FaultSchedule is a scripted sequence of timed fault events — the
// reproducible "chaos script" an experiment or test plays against a
// network. Build it with At, then Run it.
type FaultSchedule struct {
	events []FaultEvent
}

// At appends an event and returns the schedule for chaining.
func (s *FaultSchedule) At(d time.Duration, name string, apply func(f *Faults, n *Network)) *FaultSchedule {
	s.events = append(s.events, FaultEvent{At: d, Name: name, Apply: apply})
	return s
}

// Events returns the schedule's events sorted by offset.
func (s *FaultSchedule) Events() []FaultEvent {
	out := append([]FaultEvent(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Run arms one timer per event against the network's fault model and
// returns a stop function that cancels the events still pending. Events
// whose offset already passed fire immediately. Run panics if the network
// was built without a Faults model.
func (s *FaultSchedule) Run(n *Network) (stop func()) {
	f := n.cfg.Faults
	if f == nil {
		panic("simnet: FaultSchedule.Run on a network without Config.Faults")
	}
	timers := make([]*time.Timer, 0, len(s.events))
	for _, ev := range s.Events() {
		ev := ev
		d := ev.At
		if d < 0 {
			d = 0
		}
		timers = append(timers, time.AfterFunc(d, func() { ev.Apply(f, n) }))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}
