package simnet

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsda/internal/pdp"
)

func msg(from, to string) *pdp.Message {
	return &pdp.Message{Kind: pdp.KindPing, TxID: "t", From: from, To: to}
}

func TestDeliver(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got atomic.Int64
	done := make(chan struct{}, 1)
	if err := n.Register("b", func(m *pdp.Message) {
		got.Add(1)
		done <- struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(msg("a", "b")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	if n.Stats().Messages != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestUnknownAddress(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	if err := n.Send(msg("a", "nobody")); err != pdp.ErrUnknownAddr {
		t.Errorf("err = %v", err)
	}
	if n.Stats().DeadAddr != 1 {
		t.Errorf("dead addr = %d", n.Stats().DeadAddr)
	}
}

func TestDropInjection(t *testing.T) {
	n := New(Config{Drop: func(m *pdp.Message) bool { return m.To == "b" }})
	defer n.Close()
	delivered := make(chan struct{}, 10)
	n.Register("b", func(*pdp.Message) { delivered <- struct{}{} }) //nolint:errcheck
	n.Register("c", func(*pdp.Message) { delivered <- struct{}{} }) //nolint:errcheck
	n.Send(msg("a", "b"))                                           //nolint:errcheck
	n.Send(msg("a", "c"))                                           //nolint:errcheck
	select {
	case <-delivered:
	case <-time.After(time.Second):
		t.Fatal("c never got its message")
	}
	st := n.Stats()
	if st.Dropped != 1 || st.Messages != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatency(t *testing.T) {
	n := New(Config{Delay: UniformDelay(30 * time.Millisecond)})
	defer n.Close()
	done := make(chan time.Time, 1)
	n.Register("b", func(*pdp.Message) { done <- time.Now() }) //nolint:errcheck
	start := time.Now()
	n.Send(msg("a", "b")) //nolint:errcheck
	select {
	case at := <-done:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Errorf("delivered after %v, want >= ~30ms", d)
		}
	case <-time.After(time.Second):
		t.Fatal("not delivered")
	}
}

func TestHostAwareDelay(t *testing.T) {
	d := HostAwareDelay(0, 10*time.Millisecond)
	if d("host1/0", "host1/1") != 0 {
		t.Error("intra-host link should be local")
	}
	if d("host1/0", "host2/0") != 10*time.Millisecond {
		t.Error("inter-host link should be remote")
	}
	if d("bare", "bare2") != 10*time.Millisecond {
		t.Error("prefixless addresses are distinct hosts")
	}
	if d("bare", "bare") != 0 {
		t.Error("same bare address is the same host")
	}
}

func TestBandwidthModel(t *testing.T) {
	// ~600-byte messages over a 10 kB/s link: each transfer costs ~60ms.
	n := New(Config{Bandwidth: 10_000})
	defer n.Close()
	done := make(chan time.Time, 2)
	n.Register("b", func(*pdp.Message) { done <- time.Now() }) //nolint:errcheck
	big := &pdp.Message{Kind: pdp.KindQuery, TxID: "t", From: "a", To: "b",
		Query: strings.Repeat("x", 500)}
	start := time.Now()
	n.Send(big)         //nolint:errcheck
	n.Send(big.Clone()) //nolint:errcheck
	first := <-done
	second := <-done
	if d := first.Sub(start); d < 40*time.Millisecond {
		t.Errorf("first transfer took %v, want >= ~60ms", d)
	}
	if second.Before(first) {
		t.Error("bandwidth link reordered messages")
	}
	if n.Stats().Bytes == 0 {
		t.Error("bandwidth model must account bytes")
	}
}

func TestOrderingPerDestination(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var mu sync.Mutex
	var got []string
	donech := make(chan struct{})
	n.Register("b", func(m *pdp.Message) { //nolint:errcheck
		mu.Lock()
		got = append(got, m.TxID)
		l := len(got)
		mu.Unlock()
		if l == 100 {
			close(donech)
		}
	})
	for i := 0; i < 100; i++ {
		n.Send(&pdp.Message{Kind: pdp.KindPing, TxID: string(rune('0' + i%10)), From: "a", To: "b"}) //nolint:errcheck
	}
	select {
	case <-donech:
	case <-time.After(2 * time.Second):
		t.Fatal("not all delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 100; i++ {
		if got[i] != string(rune('0'+i%10)) {
			t.Fatalf("out of order at %d: %q", i, got[i])
		}
	}
}

func TestByteCounting(t *testing.T) {
	n := New(Config{CountBytes: true})
	defer n.Close()
	n.Register("b", func(*pdp.Message) {}) //nolint:errcheck
	n.Send(msg("a", "b"))                  //nolint:errcheck
	if n.Stats().Bytes <= 0 {
		t.Error("bytes not counted")
	}
	if n.KindCount(pdp.KindPing) != 1 {
		t.Error("kind count wrong")
	}
	n.ResetStats()
	if n.Stats().Messages != 0 || n.KindCount(pdp.KindPing) != 0 {
		t.Error("reset failed")
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("b", func(*pdp.Message) { t.Error("delivered after unregister") }) //nolint:errcheck
	n.Unregister("b")
	if err := n.Send(msg("a", "b")); err != pdp.ErrUnknownAddr {
		t.Errorf("err = %v", err)
	}
	time.Sleep(20 * time.Millisecond)
}

func TestReregisterReplaces(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("b", func(*pdp.Message) { t.Error("old handler invoked") }) //nolint:errcheck
	ok := make(chan struct{}, 1)
	n.Register("b", func(*pdp.Message) { ok <- struct{}{} }) //nolint:errcheck
	n.Send(msg("a", "b"))                                    //nolint:errcheck
	select {
	case <-ok:
	case <-time.After(time.Second):
		t.Fatal("new handler not invoked")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var count atomic.Int64
	n.Register("b", func(*pdp.Message) { count.Add(1) }) //nolint:errcheck
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n.Send(msg("a", "b")) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	deadline := time.After(2 * time.Second)
	for count.Load() < 4000 {
		select {
		case <-deadline:
			t.Fatalf("delivered %d of 4000", count.Load())
		case <-time.After(time.Millisecond):
		}
	}
}
