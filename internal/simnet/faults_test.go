package simnet

import (
	"sync"
	"testing"
	"time"

	"wsda/internal/pdp"
)

// collector registers an address and records everything delivered to it.
type collector struct {
	mu   sync.Mutex
	got  []*pdp.Message
	cond *sync.Cond
}

func newCollector(t *testing.T, n *Network, addr string) *collector {
	t.Helper()
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	if err := n.Register(addr, func(m *pdp.Message) {
		c.mu.Lock()
		c.got = append(c.got, m)
		c.mu.Unlock()
		c.cond.Broadcast()
	}); err != nil {
		t.Fatalf("Register(%s): %v", addr, err)
	}
	return c
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) waitFor(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d messages", len(c.got), want)
		}
		c.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		c.mu.Lock()
	}
}

func TestFaultsDropAll(t *testing.T) {
	f := NewFaults(7)
	f.SetDrop(1.0)
	n := New(Config{Faults: f})
	defer n.Close()
	c := newCollector(t, n, "b")
	for i := 0; i < 20; i++ {
		if err := n.Send(msg("a", "b")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatalf("got %d messages through a 100%% lossy net", c.count())
	}
	if st := f.Stats(); st.LossDrops != 20 {
		t.Fatalf("LossDrops = %d, want 20", st.LossDrops)
	}
	if ns := n.Stats(); ns.Dropped != 20 {
		t.Fatalf("network Dropped = %d, want 20", ns.Dropped)
	}
}

func TestFaultsLinkDropOverride(t *testing.T) {
	f := NewFaults(7)
	f.SetDrop(1.0)
	f.SetLinkDrop("a", "b", 0) // the one clean link
	n := New(Config{Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")
	c := newCollector(t, n, "c")
	for i := 0; i < 10; i++ {
		_ = n.Send(msg("a", "b"))
		_ = n.Send(msg("a", "c"))
	}
	b.waitFor(t, 10, time.Second)
	if c.count() != 0 {
		t.Fatalf("lossy link delivered %d messages", c.count())
	}
}

func TestFaultsPartition(t *testing.T) {
	f := NewFaults(1)
	f.Partition([]string{"a"}, []string{"b"})
	n := New(Config{Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")
	free := newCollector(t, n, "free") // in no group: reachable by all

	_ = n.Send(msg("a", "b"))    // crosses the cut: dropped
	_ = n.Send(msg("a", "free")) // to ungrouped: delivered
	free.waitFor(t, 1, time.Second)
	if b.count() != 0 {
		t.Fatal("message crossed the partition")
	}
	if st := f.Stats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}

	f.Heal()
	_ = n.Send(msg("a", "b"))
	b.waitFor(t, 1, time.Second)
}

func TestFaultsCrashRestart(t *testing.T) {
	f := NewFaults(1)
	n := New(Config{Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")

	f.Crash("b")
	if err := n.Send(msg("a", "b")); err != nil {
		t.Fatalf("send to crashed node must be silent loss, got %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if b.count() != 0 {
		t.Fatal("crashed node received a message")
	}
	if st := f.Stats(); st.CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d, want 1", st.CrashDrops)
	}

	f.Restart("b")
	_ = n.Send(msg("a", "b"))
	b.waitFor(t, 1, time.Second)
}

func TestNetworkCrashRestart(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	b := newCollector(t, n, "b")

	n.Crash("b")
	if err := n.Send(msg("a", "b")); err != pdp.ErrUnknownAddr {
		t.Fatalf("send to hard-crashed node: %v, want ErrUnknownAddr", err)
	}
	n.Restart("b")
	if err := n.Send(msg("a", "b")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	b.waitFor(t, 1, time.Second)

	// Restarting an address that was never crashed is a no-op.
	n.Restart("ghost")
}

func TestFaultsJitterDelays(t *testing.T) {
	f := NewFaults(3)
	f.SetJitter(30 * time.Millisecond)
	n := New(Config{Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")
	start := time.Now()
	for i := 0; i < 50; i++ {
		_ = n.Send(msg("a", "b"))
	}
	b.waitFor(t, 50, 2*time.Second)
	// With uniform jitter in [0, 30ms) over 50 messages, at least one draw
	// lands above 10ms with overwhelming probability.
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("jitter added no measurable delay")
	}
}

func TestFaultsReorderBypassesFIFO(t *testing.T) {
	f := NewFaults(5)
	f.SetReorder(0.5)
	n := New(Config{Delay: UniformDelay(5 * time.Millisecond), Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")
	const total = 200
	for i := 0; i < total; i++ {
		m := msg("a", "b")
		m.Hop = i // tag with the send sequence number
		_ = n.Send(m)
	}
	b.waitFor(t, total, 5*time.Second)
	b.mu.Lock()
	defer b.mu.Unlock()
	inversions := 0
	for i := 1; i < len(b.got); i++ {
		if b.got[i].Hop < b.got[i-1].Hop {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("reorder injection produced a perfectly ordered stream")
	}
}

func TestFaultsDeterministicSeed(t *testing.T) {
	run := func(seed int64) int64 {
		f := NewFaults(seed)
		f.SetDrop(0.5)
		n := New(Config{Faults: f})
		defer n.Close()
		newCollector(t, n, "b")
		for i := 0; i < 100; i++ {
			_ = n.Send(msg("a", "b"))
		}
		return f.Stats().LossDrops
	}
	if a, b := run(42), run(42); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
}

func TestFaultSchedule(t *testing.T) {
	f := NewFaults(1)
	n := New(Config{Faults: f})
	defer n.Close()
	b := newCollector(t, n, "b")

	var sched FaultSchedule
	sched.At(20*time.Millisecond, "heal", func(f *Faults, _ *Network) { f.SetDrop(0) }).
		At(0, "break", func(f *Faults, _ *Network) { f.SetDrop(1.0) })

	evs := sched.Events()
	if len(evs) != 2 || evs[0].Name != "break" || evs[1].Name != "heal" {
		t.Fatalf("events not sorted by offset: %+v", evs)
	}

	stop := sched.Run(n)
	defer stop()
	time.Sleep(5 * time.Millisecond) // "break" has fired
	_ = n.Send(msg("a", "b"))
	time.Sleep(40 * time.Millisecond) // "heal" has fired
	if b.count() != 0 {
		t.Fatal("message delivered while schedule had the net broken")
	}
	_ = n.Send(msg("a", "b"))
	b.waitFor(t, 1, time.Second)
}

func TestFaultScheduleStop(t *testing.T) {
	f := NewFaults(1)
	n := New(Config{Faults: f})
	defer n.Close()
	newCollector(t, n, "b")

	var sched FaultSchedule
	fired := make(chan struct{})
	sched.At(25*time.Millisecond, "late", func(*Faults, *Network) { close(fired) })
	stop := sched.Run(n)
	stop()
	select {
	case <-fired:
		t.Fatal("stopped schedule still fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestFaultScheduleRunWithoutFaultsPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run without Config.Faults must panic")
		}
	}()
	var sched FaultSchedule
	sched.At(0, "x", func(*Faults, *Network) {})
	sched.Run(n)
}
