package registry

// Planned query execution: the registry-side executor for the pushdown
// plans produced by xq.DiscoveryPlan. A plannable discovery query never
// builds or locks a <tupleset> view — candidate tuples come straight from
// the soft-state store (point lookup by link, secondary index by type or
// context, or a plain live scan), tuple-field equalities run as compiled
// closures over *tuple.Tuple, and only the survivors are rendered to XML,
// through a per-revision memo so an unchanged tuple is serialized once,
// not once per query. Unplannable queries fall back to the interpreter
// with unchanged behavior.
//
// Two observable (and intended) differences from the view path, results
// being equal: planned evaluations do not consume MaxQuerySteps (there is
// no interpreter to meter), and freshness pulls apply only to candidates
// that survive the index and field filters rather than to every
// filter-matching tuple.

import (
	"fmt"
	"sort"
	"strings"

	"wsda/internal/softstate"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// PlanInfo describes how one query evaluation was (or would be) executed;
// it backs the X-Wsda-Plan response header and wsdaquery -explain.
type PlanInfo struct {
	// Mode is "index" (softstate index or point lookup), "scan" (live
	// store scan, still view-free) or "view" (interpreter fallback).
	Mode string
	// Index names the access path for index mode: "link", "type", "ctx",
	// or "empty" for a statically contradictory query.
	Index string
	// Residual counts the predicate closures evaluated against rendered
	// tuple XML after index and field filtering.
	Residual int
}

// String renders the plan in the compact form used by the X-Wsda-Plan
// header, e.g. "index(link) residual=0" or "view".
func (p PlanInfo) String() string {
	switch p.Mode {
	case "index":
		return fmt.Sprintf("index(%s) residual=%d", p.Index, p.Residual)
	case "scan":
		return fmt.Sprintf("scan residual=%d", p.Residual)
	default:
		return "view"
	}
}

// ParsePlanInfo inverts String, so clients can reconstruct the plan from
// the X-Wsda-Plan header. Anything unrecognized (including an absent
// header) parses as the view fallback.
func ParsePlanInfo(s string) PlanInfo {
	var p PlanInfo
	switch {
	case strings.HasPrefix(s, "index("):
		rest := s[len("index("):]
		i := strings.IndexByte(rest, ')')
		if i < 0 {
			return PlanInfo{Mode: "view"}
		}
		p.Mode, p.Index = "index", rest[:i]
		fmt.Sscanf(rest[i:], ") residual=%d", &p.Residual)
	case strings.HasPrefix(s, "scan"):
		p.Mode = "scan"
		fmt.Sscanf(s, "scan residual=%d", &p.Residual)
	default:
		p.Mode = "view"
	}
	return p
}

// execPlan is a TuplePlan bound to the registry's execution machinery:
// tuple-field equalities split out as typed probes and closures, with
// everything else kept as node predicates over the rendered element.
type execPlan struct {
	never bool   // statically empty result
	link  string // exact-link point lookup, "" if none
	typ   string // type-index equality, "" if none
	ctx   string // context-index equality, "" if none
	// fields are the compiled tuple-field equality closures (link, type,
	// ctx, owner), applied before any XML is rendered.
	fields []func(t *tuple.Tuple) bool
	// residual are the predicates that need the rendered <tuple> element.
	residual []xq.NodePred
	// proj are the projection steps below the tuple element.
	proj []xq.PlanStep
}

// compileExecPlan lowers a TuplePlan: AttrEq entries over real tuple
// fields become index probes plus field closures; pushed equalities over
// any other attribute fall back to their compiled node predicates.
func compileExecPlan(p *xq.TuplePlan) *execPlan {
	ep := &execPlan{never: p.Never, proj: p.Proj}
	// Copy, never append to, the plan's residual slice: the plan is
	// shared by every registry that executes the query.
	ep.residual = append(ep.residual, p.Residual...)
	for name, val := range p.AttrEq {
		v := val
		switch name {
		case "link":
			ep.link = v
			ep.fields = append(ep.fields, func(t *tuple.Tuple) bool { return t.Link == v })
		case "type":
			ep.typ = v
			ep.fields = append(ep.fields, func(t *tuple.Tuple) bool { return t.Type == v })
		case "ctx":
			ep.ctx = v
			ep.fields = append(ep.fields, func(t *tuple.Tuple) bool { return t.Context == v })
		case "owner":
			ep.fields = append(ep.fields, func(t *tuple.Tuple) bool { return t.Owner == v })
		default:
			ep.residual = append(ep.residual, p.AttrPred[name])
		}
	}
	return ep
}

// maxCachedPlans bounds the per-registry executable-plan cache, and
// maxMemoTuples the rendered-tuple memo.
const (
	maxCachedPlans = 1024
	maxMemoTuples  = 8192
)

// memoTuple is one rendered-tuple memo entry, valid while the stored
// tuple's revision is unchanged. The element is shared read-only between
// queries; every result item handed out is a clone.
type memoTuple struct {
	rev  int64
	elem *xmldoc.Node
}

// execPlanFor returns the registry's cached executable form of the
// query's discovery plan, lowering it on first use.
func (r *Registry) execPlanFor(q *xq.Query, p *xq.TuplePlan) *execPlan {
	r.planMu.RLock()
	ep, ok := r.planCache[q]
	r.planMu.RUnlock()
	if ok {
		return ep
	}
	ep = compileExecPlan(p)
	r.planMu.Lock()
	if cached, ok := r.planCache[q]; ok {
		ep = cached
	} else {
		if len(r.planCache) >= maxCachedPlans {
			for k := range r.planCache {
				delete(r.planCache, k)
				break
			}
		}
		r.planCache[q] = ep
	}
	r.planMu.Unlock()
	return ep
}

// tupleElem returns the tuple rendered as a <tuple> element, memoized per
// (link, revision) when t is the stored value itself; a freshness-
// substituted copy is rendered directly and not memoized (the pull that
// produced it has already bumped the stored revision for next time).
func (r *Registry) tupleElem(e softstate.Entry[*tuple.Tuple], t *tuple.Tuple) *xmldoc.Node {
	if t != e.Value {
		elem := t.ToXML()
		elem.Renumber()
		return elem
	}
	r.memoMu.RLock()
	m, ok := r.planMemo[e.Key]
	r.memoMu.RUnlock()
	if ok && m.rev == e.Rev {
		return m.elem
	}
	elem := t.ToXML()
	elem.Renumber()
	r.memoMu.Lock()
	if m, ok := r.planMemo[e.Key]; ok && m.rev == e.Rev {
		elem = m.elem // lost the render race; share the winner
	} else {
		if len(r.planMemo) >= maxMemoTuples {
			for k := range r.planMemo {
				delete(r.planMemo, k)
				break
			}
		}
		r.planMemo[e.Key] = memoTuple{rev: e.Rev, elem: elem}
	}
	r.memoMu.Unlock()
	return elem
}

// planCandidates picks the narrowest access path the plan and filter
// allow, returning the candidate entries (sorted by link when more than
// one, matching view document order) and the chosen path name. The ok
// result is false when the chosen path would yield more candidates than
// the rendered-tuple memo holds — sized with O(1) store probes, before
// anything is materialized or sorted — telling the caller to decline the
// plan rather than thrash the memo.
func (r *Registry) planCandidates(ep *execPlan, f Filter) ([]softstate.Entry[*tuple.Tuple], string, string, bool) {
	sized := func(entries func() []softstate.Entry[*tuple.Tuple], count int, mode, index string) ([]softstate.Entry[*tuple.Tuple], string, string, bool) {
		if count > maxMemoTuples {
			return nil, mode, index, false
		}
		return sortEntries(entries()), mode, index, true
	}
	switch {
	case ep.never:
		return nil, "index", "empty", true
	case ep.link != "":
		if e, ok := r.store.GetEntry(ep.link); ok {
			return []softstate.Entry[*tuple.Tuple]{e}, "index", "link", true
		}
		return nil, "index", "link", true
	case ep.typ != "":
		return sized(func() []softstate.Entry[*tuple.Tuple] { return r.store.LiveBy(indexType, ep.typ) },
			r.store.CountBy(indexType, ep.typ), "index", "type")
	case f.Type != "":
		return sized(func() []softstate.Entry[*tuple.Tuple] { return r.store.LiveBy(indexType, f.Type) },
			r.store.CountBy(indexType, f.Type), "index", "type")
	case ep.ctx != "":
		return sized(func() []softstate.Entry[*tuple.Tuple] { return r.store.LiveBy(indexContext, ep.ctx) },
			r.store.CountBy(indexContext, ep.ctx), "index", "ctx")
	case f.Context != "":
		return sized(func() []softstate.Entry[*tuple.Tuple] { return r.store.LiveBy(indexContext, f.Context) },
			r.store.CountBy(indexContext, f.Context), "index", "ctx")
	}
	return sized(r.store.Live, r.store.Size(), "scan", "")
}

// sortEntries orders candidates by link, the view's document order.
func sortEntries(es []softstate.Entry[*tuple.Tuple]) []softstate.Entry[*tuple.Tuple] {
	if len(es) > 1 {
		sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	}
	return es
}

// runPlan executes a lowered plan: index probe, field closures, freshness,
// memoized render, residual predicates, projection. Results are clones,
// never aliases of memoized or stored state. With opts.Emit set items
// stream out as produced (the returned sequence is nil, like the
// interpreter's Emit mode) and a false return stops the walk early.
//
// The ran result is false when the plan declined to execute: a candidate
// set larger than the rendered-tuple memo would thrash it and re-render
// most tuples on every query, while the shared view already holds every
// rendered tuple — so huge-result plans are handed back to the view path
// before anything is emitted.
func (r *Registry) runPlan(ep *execPlan, opts QueryOptions) (seq xq.Sequence, info PlanInfo, ran bool) {
	now := r.cfg.Now()
	candidates, mode, index, ok := r.planCandidates(ep, opts.Filter)
	if !ok {
		return nil, info, false
	}
	info = PlanInfo{Mode: mode, Index: index, Residual: len(ep.residual)}
	if opts.Explain != nil {
		// Filled before the first Emit so streaming callers can surface
		// the plan (e.g. as a response header) ahead of the first item.
		*opts.Explain = info
	}
	stopped := false
	deliver := func(n *xmldoc.Node) bool {
		c := n.Clone()
		if opts.Emit != nil {
			if !opts.Emit(c) {
				stopped = true
				return false
			}
			return true
		}
		seq = append(seq, c)
		return true
	}
candidates:
	for _, e := range candidates {
		if stopped {
			break
		}
		t := e.Value
		if !opts.Filter.match(t) {
			continue
		}
		for _, fp := range ep.fields {
			if !fp(t) {
				continue candidates
			}
		}
		ft := r.ensureFresh(t, opts.Freshness, now)
		elem := r.tupleElem(e, ft)
		for _, pred := range ep.residual {
			if !pred(elem) {
				continue candidates
			}
		}
		xq.WalkPlan(elem, ep.proj, deliver)
	}
	return seq, info, true
}
