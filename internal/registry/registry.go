package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode"
	"unicode/utf8"

	"wsda/internal/softstate"
	"wsda/internal/telemetry"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// Fetcher retrieves the current content of a content link (the registry's
// pull side of the hybrid pull/push model).
type Fetcher interface {
	// Fetch dereferences one content link to its current XML document.
	Fetch(link string) (*xmldoc.Node, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(link string) (*xmldoc.Node, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(link string) (*xmldoc.Node, error) { return f(link) }

// Config configures a Registry.
type Config struct {
	Name string // registry identifier, e.g. "registry.cern.ch"

	// DefaultTTL applies when a publication does not carry an explicit
	// expiry; MinTTL/MaxTTL clamp client-requested lifetimes (a registry is
	// free to shorten or lengthen requested TTLs, thesis Ch. 4.6).
	DefaultTTL time.Duration
	MinTTL     time.Duration // lower clamp on granted lifetimes
	MaxTTL     time.Duration // upper clamp on granted lifetimes

	// Fetcher pulls content copies from providers; nil disables pulls
	// (cached or inline-pushed content only).
	Fetcher Fetcher

	// MinPullInterval throttles pulls per content link: a second pull for
	// the same link within the interval is suppressed and stale content is
	// served instead (thesis Ch. 4.7.1).
	MinPullInterval time.Duration

	// MaxQuerySteps bounds the work of a single XQuery evaluation; 0 means
	// unlimited.
	MaxQuerySteps int

	// JournalCap sets the soft-state change-journal capacity: how many of
	// the most recent mutations incremental readers (cached views, the
	// replication feed) can replay before being forced into a full resync
	// or snapshot re-bootstrap. 0 uses softstate.DefaultJournalCap.
	JournalCap int

	// Now is the clock; nil means time.Now. Benchmarks inject virtual time.
	Now func() time.Time

	// Metrics, when set, receives latency histograms for the publish,
	// minquery, xquery and sweep paths, labeled by registry name. Nil
	// disables metric collection at near-zero cost.
	Metrics *telemetry.Metrics

	// Tracer, when set, records a span per XQuery evaluation. Nil
	// disables tracing.
	Tracer *telemetry.Tracer

	// Flight, when set, receives per-transaction planning events
	// (planned, plan-fallback, view-hit, view-miss) for evaluations that
	// carry a QueryOptions.TxID. Nil disables recording.
	Flight *telemetry.FlightRecorder

	// NoPlanner disables the discovery-query pushdown planner, forcing
	// every evaluation through the interpreted view path. Used for
	// differential testing and as an operational escape hatch.
	NoPlanner bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "registry"
	}
	if c.DefaultTTL == 0 {
		c.DefaultTTL = 10 * time.Minute
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 24 * time.Hour
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats are cumulative registry counters.
type Stats struct {
	Publishes   int64 // first-time publications
	Refreshes   int64 // soft-state refreshes
	Expirations int64 // tuples swept after expiry
	Queries     int64 // XQuery evaluations
	MinQueries  int64 // minimal-interface queries
	CacheHits   int64 // queries served from fresh cached content
	CacheMisses int64 // tuples needing a pull at query time
	Pulls       int64 // successful content pulls
	PullErrors  int64 // failed pulls
	Throttled   int64 // pulls suppressed by MinPullInterval

	ViewHits     int64 // queries served from an already-synced cached view
	ViewMisses   int64 // queries that had to (re)build a view
	ViewRebuilds int64 // view (re)build passes, full or incremental

	PlanHits      int64 // queries answered by the pushdown planner, view-free
	PlanFallbacks int64 // queries the planner rejected to the view path
}

// Registry is a hyper registry node. It is safe for concurrent use.
type Registry struct {
	cfg   Config
	store *softstate.Store[*tuple.Tuple]

	pullMu   sync.Mutex
	lastPull map[string]time.Time

	// queryCache memoizes compiled queries by source text; discovery
	// clients re-issue the same query shapes constantly.
	cacheMu    sync.RWMutex
	queryCache map[string]*xq.Query

	// views are the incrementally maintained per-filter tuple-set views
	// (see view.go); flights single-flight concurrent content pulls per
	// link so a freshness stampede issues one fetch.
	viewMu    sync.Mutex
	views     map[Filter]*filterView
	viewClock uint64 // LRU clock for view eviction; guarded by viewMu
	flightMu  sync.Mutex
	flights   map[string]*pullFlight

	// planCache holds the lowered executable form of each plannable
	// compiled query; planMemo the per-revision rendered-tuple elements
	// the planned path serves clones from (see plan.go).
	planMu    sync.RWMutex
	planCache map[*xq.Query]*execPlan
	memoMu    sync.RWMutex
	planMemo  map[string]memoTuple

	queries, minQueries                atomic.Int64
	cacheHits, cacheMisses             atomic.Int64
	pulls, pullErrors, throttledCnt    atomic.Int64
	viewHits, viewMisses, viewRebuilds atomic.Int64
	planHits, planFallbacks            atomic.Int64

	// Telemetry handles; all nil when Config.Metrics/Tracer are unset, in
	// which case every observation below is a nil-check no-op.
	publishSeconds   *telemetry.Histogram
	minQuerySeconds  *telemetry.Histogram
	xquerySeconds    *telemetry.Histogram
	viewBuildSeconds *telemetry.Histogram
	planHitIndex     *telemetry.Counter
	planHitScan      *telemetry.Counter
	planFallback     *telemetry.Counter
	tracer           *telemetry.Tracer
	flight           *telemetry.FlightRecorder
}

// New creates a registry.
func New(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:        cfg,
		store:      softstate.New[*tuple.Tuple](cfg.Now, softstate.WithJournalCap(cfg.JournalCap)),
		lastPull:   make(map[string]time.Time),
		queryCache: make(map[string]*xq.Query),
		views:      make(map[Filter]*filterView),
		flights:    make(map[string]*pullFlight),
		planCache:  make(map[*xq.Query]*execPlan),
		planMemo:   make(map[string]memoTuple),
		tracer:     cfg.Tracer,
		flight:     cfg.Flight,
	}
	r.store.AddIndex(indexType, func(t *tuple.Tuple) string { return t.Type })
	r.store.AddIndex(indexContext, func(t *tuple.Tuple) string { return t.Context })
	if m := cfg.Metrics; m != nil {
		r.publishSeconds = m.HistogramVec("wsda_registry_publish_seconds",
			"Latency of tuple publications.", nil, "registry").With(cfg.Name)
		r.minQuerySeconds = m.HistogramVec("wsda_registry_minquery_seconds",
			"Latency of minimal-interface queries.", nil, "registry").With(cfg.Name)
		r.xquerySeconds = m.HistogramVec("wsda_registry_xquery_seconds",
			"Latency of XQuery evaluations over the tuple-set view.", nil, "registry").With(cfg.Name)
		r.viewBuildSeconds = m.HistogramVec("wsda_registry_view_build_seconds",
			"Latency of tuple-set view builds, full or incremental.", nil, "registry").With(cfg.Name)
		r.store.InstrumentSweeps(m.HistogramVec("wsda_registry_sweep_seconds",
			"Latency of expired-tuple sweeps.", nil, "registry").With(cfg.Name))
		r.store.InstrumentJournalTruncations(m.CounterVec("wsda_softstate_journal_truncations_total",
			"Change reads that fell off the bounded journal, forcing a full resync or replica re-bootstrap.",
			"registry").With(cfg.Name))
		planHits := m.CounterVec("wsda_registry_plan_hit_total",
			"XQuery evaluations answered by the pushdown planner without building a view, by access mode.",
			"registry", "mode")
		r.planHitIndex = planHits.With(cfg.Name, "index")
		r.planHitScan = planHits.With(cfg.Name, "scan")
		r.planFallback = m.CounterVec("wsda_registry_plan_fallback_total",
			"XQuery evaluations whose shape the pushdown planner rejected, served by the interpreted view path.",
			"registry").With(cfg.Name)
	}
	return r
}

// Name returns the registry identifier.
func (r *Registry) Name() string { return r.cfg.Name }

// ErrBadTTL reports a nonsensical requested lifetime.
var ErrBadTTL = errors.New("registry: negative TTL")

// Publish inserts or refreshes a tuple with the requested soft-state
// lifetime (0 uses the registry default; the registry clamps to its
// configured bounds). A refresh without content keeps the previously cached
// content copy — re-publication doubles as a heartbeat. It returns the
// granted TTL.
func (r *Registry) Publish(t *tuple.Tuple, ttl time.Duration) (time.Duration, error) {
	if r.publishSeconds != nil {
		defer r.publishSeconds.ObserveSince(time.Now())
	}
	now := r.cfg.Now()
	if ttl < 0 {
		return 0, ErrBadTTL
	}
	if err := t.Validate(now); err != nil {
		return 0, err
	}
	granted := r.clampTTL(ttl)
	pub := t.Clone()
	if pub.Content != nil && pub.TS4.IsZero() {
		pub.TS4 = now // provider pushed content inline
	}
	r.store.Upsert(t.Link, granted, func(old *tuple.Tuple, exists bool) *tuple.Tuple {
		if exists {
			pub.TS1 = old.TS1
			if pub.Content == nil && old.Content != nil {
				pub.Content = old.Content
				pub.TS4 = old.TS4
			}
		} else {
			pub.TS1 = now
		}
		pub.TS2 = now
		pub.TS3 = now.Add(granted)
		return pub
	})
	return granted, nil
}

func (r *Registry) clampTTL(ttl time.Duration) time.Duration {
	if ttl == 0 {
		ttl = r.cfg.DefaultTTL
	}
	if r.cfg.MinTTL > 0 && ttl < r.cfg.MinTTL {
		ttl = r.cfg.MinTTL
	}
	if r.cfg.MaxTTL > 0 && ttl > r.cfg.MaxTTL {
		ttl = r.cfg.MaxTTL
	}
	return ttl
}

// Unpublish removes a tuple explicitly, reporting whether it existed.
func (r *Registry) Unpublish(link string) bool { return r.store.Delete(link) }

// Get returns a copy of the live tuple under link.
func (r *Registry) Get(link string) (*tuple.Tuple, bool) {
	t, ok := r.store.Get(link)
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// Len returns the number of live tuples.
func (r *Registry) Len() int { return r.store.Len() }

// Sweep removes expired tuples, returning how many were collected.
func (r *Registry) Sweep() int { return r.store.Sweep() }

// Filter selects tuples by attribute for the minimal query interface
// (thesis Ch. 5.2: MinQuery primitive). Zero fields match everything.
type Filter struct {
	Type       string // exact tuple type, e.g. "service"
	Context    string // exact tuple context
	LinkPrefix string // prefix match on the tuple link
}

// Matches reports whether t passes the filter. The client SDK uses it for
// exact cache invalidation: a feed upsert kills exactly the cached result
// sets whose filter the new tuple state matches.
func (f Filter) Matches(t *tuple.Tuple) bool { return f.match(t) }

func (f Filter) match(t *tuple.Tuple) bool {
	if f.Type != "" && t.Type != f.Type {
		return false
	}
	if f.Context != "" && t.Context != f.Context {
		return false
	}
	if f.LinkPrefix != "" && !strings.HasPrefix(t.Link, f.LinkPrefix) {
		return false
	}
	return true
}

// MinQuery returns copies of all live tuples matching the filter, sorted by
// link for determinism.
func (r *Registry) MinQuery(f Filter) []*tuple.Tuple {
	if r.minQuerySeconds != nil {
		defer r.minQuerySeconds.ObserveSince(time.Now())
	}
	r.minQueries.Add(1)
	entries := r.liveMatching(f)
	out := make([]*tuple.Tuple, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Value.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// Freshness is the client-driven content freshness policy of a query
// (thesis Ch. 4.7): the client bounds how stale cached content copies may
// be, and whether missing content must be pulled.
type Freshness struct {
	// MaxAge is the oldest acceptable cached copy. Zero accepts any cached
	// copy (including none).
	MaxAge time.Duration
	// PullMissing pulls content for tuples that have no cached copy at all.
	PullMissing bool
}

// QueryOptions configure one XQuery evaluation.
type QueryOptions struct {
	Filter    Filter    // pre-filter applied before the view is built
	Freshness Freshness // content freshness demands
	// Emit streams result items as they are produced (pipelined queries,
	// thesis Ch. 6.5). Return false to stop early.
	Emit func(xq.Item) bool
	// Vars are external variable bindings.
	Vars map[string]xq.Sequence
	// TxID, when set, tags this evaluation's flight-recorder events with
	// the discovery transaction it serves.
	TxID string
	// Explain, when non-nil, receives a description of how the evaluation
	// was executed (pushdown plan or view fallback).
	Explain *PlanInfo
}

// Query evaluates an XQuery over the registry's tuple-set view. The view is
// a synthetic document
//
//	<tupleset registry="NAME"> <tuple ...>...</tuple>* </tupleset>
//
// so queries navigate /tupleset/tuple/content/... as in the thesis
// examples. Content freshness is enforced per the options before the view
// is built.
func (r *Registry) Query(query string, opts QueryOptions) (xq.Sequence, error) {
	// The cache key is the canonicalized source, so trivially reformatted
	// copies of one query share a slot (and a compiled plan) instead of
	// crowding each other out.
	key := canonicalQuerySource(query)
	r.cacheMu.RLock()
	q, ok := r.queryCache[key]
	r.cacheMu.RUnlock()
	if !ok {
		var err error
		q, err = xq.Compile(query)
		if err != nil {
			return nil, err
		}
		r.cacheMu.Lock()
		// Bound the cache with random-victim eviction (Go's randomized map
		// iteration picks the victim), so a hot steady-state query mix is
		// never dropped en masse.
		if len(r.queryCache) >= maxCachedQueries {
			for k := range r.queryCache {
				delete(r.queryCache, k)
				break
			}
		}
		r.queryCache[key] = q
		r.cacheMu.Unlock()
	}
	return r.QueryCompiled(q, opts)
}

// canonicalQuerySource normalizes query text for cache keying: leading and
// trailing space is trimmed and interior whitespace runs collapse to one
// space, except inside string literals. A query containing a direct
// element constructor (a '<' followed by a name character, outside any
// string) is only trimmed, since constructor content is whitespace-
// sensitive raw text. Canonicalization never changes query semantics, so
// distinct keys always mean distinct queries.
func canonicalQuerySource(src string) string {
	src = strings.TrimSpace(src)
	var sb strings.Builder
	sb.Grow(len(src))
	var quote byte // active string-literal delimiter, 0 outside literals
	space := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			sb.WriteByte(c)
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case ' ', '\t', '\n', '\r':
			space = true
			continue
		case '<':
			if i+1 < len(src) {
				r, _ := utf8.DecodeRuneInString(src[i+1:])
				if isConstructorStart(r) {
					return src // constructor: raw text, keep verbatim
				}
			}
		}
		if space {
			sb.WriteByte(' ')
			space = false
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// isConstructorStart reports whether a rune after '<' begins an element
// constructor name (mirroring the parser's constructor detection).
func isConstructorStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// maxCachedQueries bounds the compiled-query cache.
const maxCachedQueries = 1024

// QueryCompiled is Query for a pre-compiled expression. Queries whose
// shape the pushdown planner recognizes are answered straight from the
// soft-state store and its secondary indexes (see plan.go); everything
// else evaluates over the tuple-set view as before.
func (r *Registry) QueryCompiled(q *xq.Query, opts QueryOptions) (xq.Sequence, error) {
	if r.xquerySeconds != nil {
		defer r.xquerySeconds.ObserveSince(time.Now())
	}
	sp := r.tracer.StartSpan("", nil, "registry.xquery")
	sp.SetAttr(telemetry.String("registry", r.cfg.Name))
	r.queries.Add(1)
	var seq xq.Sequence
	var err error
	if plan, ok := q.DiscoveryPlan(); ok && !r.cfg.NoPlanner {
		// A plan can still decline to run (candidate set larger than the
		// rendered-tuple memo); it then falls through to the view path
		// below like any unplannable query.
		if planned, info, ran := r.runPlan(r.execPlanFor(q, plan), opts); ran {
			r.planHits.Add(1)
			if info.Mode == "scan" {
				r.planHitScan.Inc()
			} else {
				r.planHitIndex.Inc()
			}
			if r.flight != nil {
				r.flight.Record(opts.TxID, telemetry.FlightPlanned, r.cfg.Name, "", 0, info.String())
			}
			if sp != nil {
				sp.SetAttr(telemetry.Int("items", int64(len(planned))))
				sp.End()
			}
			return planned, nil
		}
	}
	r.planFallbacks.Add(1)
	r.planFallback.Inc()
	if opts.Explain != nil {
		*opts.Explain = PlanInfo{Mode: "view"}
	}
	if opts.Emit != nil {
		// Streaming queries evaluate over a private materialized view:
		// Emit callbacks run arbitrary user code, and a long-running
		// callback must not hold the shared view's read lease.
		r.flight.Record(opts.TxID, telemetry.FlightPlanFallback, r.cfg.Name, "", 0, "streamed")
		view := r.BuildView(opts.Filter, opts.Freshness)
		seq, err = q.Eval(&xq.Options{
			Context:  view,
			MaxSteps: r.cfg.MaxQuerySteps,
			Emit:     opts.Emit,
			Vars:     opts.Vars,
		})
	} else {
		r.flight.Record(opts.TxID, telemetry.FlightPlanFallback, r.cfg.Name, "", 0, "shared-view")
		seq, err = r.querySharedView(q, opts)
	}
	if sp != nil {
		sp.SetAttr(telemetry.Int("items", int64(len(seq))))
		if err != nil {
			sp.SetAttr(telemetry.String("err", err.Error()))
		}
		sp.End()
	}
	return seq, err
}

// querySharedView evaluates q over the shared cached view under its read
// lease. The release is deferred so a panicking evaluation cannot leak the
// view's read lock, and node items are detached before the lease ends:
// later rebuilds mutate the shared document in place, so results handed to
// the caller must not alias it.
func (r *Registry) querySharedView(q *xq.Query, opts QueryOptions) (xq.Sequence, error) {
	view, release, hit := r.leaseView(opts.Filter, opts.Freshness)
	defer release()
	if hit {
		r.flight.Record(opts.TxID, telemetry.FlightViewHit, r.cfg.Name, "", 0, "")
	} else {
		r.flight.Record(opts.TxID, telemetry.FlightViewMiss, r.cfg.Name, "", 0, "")
	}
	seq, err := q.Eval(&xq.Options{
		Context:  view,
		MaxSteps: r.cfg.MaxQuerySteps,
		Vars:     opts.Vars,
	})
	return detachItems(seq), err
}

// detachItems replaces node items with deep copies so the sequence stays
// valid after the view lease is released. Atomic items pass through.
func detachItems(seq xq.Sequence) xq.Sequence {
	for i, it := range seq {
		if n, ok := it.(*xmldoc.Node); ok {
			seq[i] = n.Clone()
		}
	}
	return seq
}

// BuildView materializes a private tuple-set document for a query,
// refreshing content copies as demanded by the freshness policy. Most
// queries are served from the incrementally maintained shared view instead
// (leaseView); this path remains for streaming queries and as the fallback
// when the store mutates faster than the view can sync.
func (r *Registry) BuildView(f Filter, fresh Freshness) *xmldoc.Node {
	return r.buildViewLegacy(f, fresh, true)
}

// buildViewLegacy is BuildView with the per-tuple freshness pass optional:
// leaseView's fallback has already applied freshness (and counted the
// cache hits and misses) and must not double-count.
func (r *Registry) buildViewLegacy(f Filter, fresh Freshness, applyFresh bool) *xmldoc.Node {
	now := r.cfg.Now()
	root := xmldoc.NewElement("tupleset")
	root.SetAttr("registry", r.cfg.Name)
	entries := r.liveMatching(f)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	for _, e := range entries {
		t := e.Value
		if applyFresh {
			t = r.ensureFresh(t, fresh, now)
		}
		root.AppendChild(t.ToXML())
	}
	doc := xmldoc.NewDocument()
	doc.AppendChild(root)
	doc.Renumber()
	return doc
}

// ensureFresh applies the freshness policy to one tuple, pulling content
// when demanded and permitted by the throttle. On pull failure or throttle
// suppression the stale copy (possibly nil) is served.
func (r *Registry) ensureFresh(t *tuple.Tuple, fresh Freshness, now time.Time) *tuple.Tuple {
	needPull := false
	if t.Content == nil {
		if fresh.PullMissing {
			needPull = true
		}
	} else if fresh.MaxAge > 0 {
		if age, ok := t.ContentAge(now); ok && age > fresh.MaxAge {
			needPull = true
		}
	}
	if !needPull {
		if t.Content != nil {
			r.cacheHits.Add(1)
		}
		return t
	}
	r.cacheMisses.Add(1)
	if r.cfg.Fetcher == nil {
		return t
	}
	content, ok := r.pullContent(t, now)
	if !ok {
		return t
	}
	c := t.Clone()
	c.Content = content
	c.TS4 = now
	return c
}

// pullFlight is one in-progress content pull; concurrent callers for the
// same link wait on done and share the result instead of issuing duplicate
// fetches.
type pullFlight struct {
	done    chan struct{}
	content *xmldoc.Node
	err     error
}

// pullContent fetches the current content of t's link, single-flighted per
// link: one goroutine leads the fetch while concurrent callers wait for its
// result. The throttle applies only to the leader — joining an in-flight
// pull is free. On success the stored tuple's cached copy is updated
// without touching its soft-state deadline: a pull is not a publication.
func (r *Registry) pullContent(t *tuple.Tuple, now time.Time) (*xmldoc.Node, bool) {
	link := t.Link
	r.flightMu.Lock()
	if fl, ok := r.flights[link]; ok {
		r.flightMu.Unlock()
		<-fl.done
		return fl.content, fl.err == nil
	}
	if !r.admitPull(link, now) {
		r.flightMu.Unlock()
		r.throttledCnt.Add(1)
		return nil, false
	}
	fl := &pullFlight{done: make(chan struct{})}
	r.flights[link] = fl
	r.flightMu.Unlock()

	fl.content, fl.err = r.cfg.Fetcher.Fetch(link)
	if fl.err != nil {
		r.pullErrors.Add(1)
	} else {
		r.pulls.Add(1)
		content := fl.content
		r.store.Upsert(link, r.remainingTTL(t, now), func(old *tuple.Tuple, exists bool) *tuple.Tuple {
			upd := t
			if exists {
				upd = old
			}
			c := upd.Clone()
			c.Content = content
			c.TS4 = now
			return c
		})
	}
	r.flightMu.Lock()
	delete(r.flights, link)
	r.flightMu.Unlock()
	close(fl.done)
	return fl.content, fl.err == nil
}

func (r *Registry) remainingTTL(t *tuple.Tuple, now time.Time) time.Duration {
	if t.TS3.IsZero() {
		return 0
	}
	d := t.TS3.Sub(now)
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// admitPull enforces the per-link pull throttle.
func (r *Registry) admitPull(link string, now time.Time) bool {
	if r.cfg.MinPullInterval <= 0 {
		return true
	}
	r.pullMu.Lock()
	defer r.pullMu.Unlock()
	if last, ok := r.lastPull[link]; ok && now.Sub(last) < r.cfg.MinPullInterval {
		return false
	}
	r.lastPull[link] = now
	return true
}

// Stats returns a snapshot of cumulative counters.
func (r *Registry) Stats() Stats {
	puts, refreshes, expirations := r.store.Stats()
	return Stats{
		Publishes:   puts,
		Refreshes:   refreshes,
		Expirations: expirations,
		Queries:     r.queries.Load(),
		MinQueries:  r.minQueries.Load(),
		CacheHits:   r.cacheHits.Load(),
		CacheMisses: r.cacheMisses.Load(),
		Pulls:       r.pulls.Load(),
		PullErrors:  r.pullErrors.Load(),
		Throttled:   r.throttledCnt.Load(),

		ViewHits:     r.viewHits.Load(),
		ViewMisses:   r.viewMisses.Load(),
		ViewRebuilds: r.viewRebuilds.Load(),

		PlanHits:      r.planHits.Load(),
		PlanFallbacks: r.planFallbacks.Load(),
	}
}

// String summarizes the registry state.
func (r *Registry) String() string {
	return fmt.Sprintf("registry %s: %d live tuples", r.cfg.Name, r.Len())
}
