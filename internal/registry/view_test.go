package registry

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

func countTuples(t *testing.T, r *Registry, opts QueryOptions) int {
	t.Helper()
	seq, err := r.Query(`count(/tupleset/tuple)`, opts)
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	return int(xq.NumberValue(seq[0]))
}

func TestViewCacheHit(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	r.Publish(svcTuple("b", "cern.ch", 0.2), 0)

	if got := countTuples(t, r, QueryOptions{}); got != 2 {
		t.Fatalf("count = %d", got)
	}
	st := r.Stats()
	if st.ViewMisses != 1 || st.ViewRebuilds != 1 {
		t.Fatalf("first query: misses=%d rebuilds=%d, want 1/1", st.ViewMisses, st.ViewRebuilds)
	}
	for i := 0; i < 5; i++ {
		if got := countTuples(t, r, QueryOptions{}); got != 2 {
			t.Fatalf("count = %d", got)
		}
	}
	st = r.Stats()
	if st.ViewHits != 5 {
		t.Errorf("hits = %d, want 5", st.ViewHits)
	}
	if st.ViewRebuilds != 1 {
		t.Errorf("rebuilds = %d: unchanged store must not rebuild", st.ViewRebuilds)
	}
}

func TestViewInvalidationOnPublishAndUnpublish(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	if got := countTuples(t, r, QueryOptions{}); got != 1 {
		t.Fatalf("count = %d", got)
	}
	ts := svcTuple("b", "cern.ch", 0.2)
	r.Publish(ts, 0)
	if got := countTuples(t, r, QueryOptions{}); got != 2 {
		t.Fatalf("count after publish = %d", got)
	}
	r.Unpublish(ts.Link)
	if got := countTuples(t, r, QueryOptions{}); got != 1 {
		t.Fatalf("count after unpublish = %d", got)
	}
	seq, err := r.Query(fmt.Sprintf(`count(/tupleset/tuple[@link=%q])`, ts.Link), QueryOptions{})
	if err != nil || xq.StringValue(seq[0]) != "0" {
		t.Errorf("unpublished tuple still visible: %v %v", seq, err)
	}
}

func TestViewPassiveExpiry(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), time.Hour)
	r.Publish(svcTuple("b", "cern.ch", 0.2), 30*time.Second)
	if got := countTuples(t, r, QueryOptions{}); got != 2 {
		t.Fatalf("count = %d", got)
	}
	// "b" crosses its deadline with no Sweep and no journal record; the
	// cached view must still exclude it.
	clk.Advance(time.Minute)
	if got := countTuples(t, r, QueryOptions{}); got != 1 {
		t.Fatalf("count after passive expiry = %d, want 1", got)
	}
}

func TestViewHeartbeatRefresh(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	ts := svcTuple("a", "cern.ch", 0.1)
	r.Publish(ts, 0)
	seq, err := r.Query(`string(/tupleset/tuple/@ts2)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := xq.StringValue(seq[0])
	clk.Advance(10 * time.Second)
	r.Publish(ts, 0) // heartbeat: same link, refreshed timestamps
	seq, err = r.Query(`string(/tupleset/tuple/@ts2)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second := xq.StringValue(seq[0]); second == first {
		t.Errorf("ts2 not re-rendered after refresh: %s", second)
	}
}

func TestViewDocumentOrderAfterIncrementalEdits(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	// Publish out of link order, interleaved with queries so every
	// mutation is applied to the cached view incrementally.
	names := []string{"m", "c", "x", "a", "t"}
	for _, n := range names {
		r.Publish(svcTuple(n, "cern.ch", 0.1), 0)
		countTuples(t, r, QueryOptions{})
	}
	r.Unpublish("http://cern.ch/m")
	seq, err := r.Query(`for $t in /tupleset/tuple return string($t/@link)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var links []string
	for _, it := range seq {
		links = append(links, xq.StringValue(it))
	}
	want := "http://cern.ch/a,http://cern.ch/c,http://cern.ch/t,http://cern.ch/x"
	if strings.Join(links, ",") != want {
		t.Errorf("links = %v, want sorted %s", links, want)
	}
}

func TestViewPerFilterIsolation(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	nodeTuple := &tuple.Tuple{Link: "http://cern.ch/node", Type: tuple.TypeNode, Context: "peer"}
	r.Publish(nodeTuple, 0)

	if got := countTuples(t, r, QueryOptions{Filter: Filter{Type: tuple.TypeService}}); got != 1 {
		t.Errorf("service filter = %d", got)
	}
	if got := countTuples(t, r, QueryOptions{Filter: Filter{Context: "peer"}}); got != 1 {
		t.Errorf("context filter = %d", got)
	}
	if got := countTuples(t, r, QueryOptions{}); got != 2 {
		t.Errorf("unfiltered = %d", got)
	}
	// A mutation that only affects one filter's membership is reflected in
	// every cached view.
	r.Unpublish(nodeTuple.Link)
	if got := countTuples(t, r, QueryOptions{Filter: Filter{Context: "peer"}}); got != 0 {
		t.Errorf("context filter after unpublish = %d", got)
	}
	if got := countTuples(t, r, QueryOptions{}); got != 1 {
		t.Errorf("unfiltered after unpublish = %d", got)
	}
}

// TestViewRepublishAfterUnpublish guards against revision collision across
// incarnations of a link: unpublish + republish with different content
// between two view syncs must re-render the tuple's subtree, not be
// mistaken for a deadline touch of the cached (stale) rendering.
func TestViewRepublishAfterUnpublish(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	if got := countTuples(t, r, QueryOptions{}); got != 1 { // prime the view
		t.Fatalf("count = %d", got)
	}
	// Both mutations land before the next query syncs the view.
	r.Unpublish("http://cern.ch/a")
	r.Publish(svcTuple("a", "cern.ch", 0.9), 0)
	seq, err := r.Query(`string(/tupleset/tuple/content/service/load)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := xq.StringValue(seq[0]); got != "0.90" {
		t.Errorf("view served stale incarnation: load = %s, want 0.90", got)
	}
}

// TestQueryResultsDetachedFromSharedView asserts node results survive the
// end of their view lease: a later rebuild mutates the shared document in
// place, so results must be detached copies, not aliases into it.
func TestQueryResultsDetachedFromSharedView(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	seq, err := r.Query(`/tupleset`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root, ok := seq[0].(*xmldoc.Node)
	if !ok {
		t.Fatalf("item = %T, want node", seq[0])
	}
	before := root.String()
	// Mutate the store and sync the shared view to it.
	r.Publish(svcTuple("b", "cern.ch", 0.2), 0)
	if got := countTuples(t, r, QueryOptions{}); got != 2 {
		t.Fatalf("count = %d", got)
	}
	if after := root.String(); after != before {
		t.Errorf("held query result mutated by a later rebuild:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestViewEvictionKeepsHotFilter asserts LRU eviction: a stream of one-off
// filters must evict each other, not the constantly re-used hot filter's
// view.
func TestViewEvictionKeepsHotFilter(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("hot", "cern.ch", 0.1), 0)
	hot := Filter{LinkPrefix: "http://cern.ch/hot"}
	if got := countTuples(t, r, QueryOptions{Filter: hot}); got != 1 {
		t.Fatalf("count = %d", got)
	}
	rebuilds := r.Stats().ViewRebuilds
	for i := 0; i < 3*maxCachedViews; i++ {
		f := Filter{LinkPrefix: fmt.Sprintf("http://one-off%d.net/", i)}
		countTuples(t, r, QueryOptions{Filter: f})
		if got := countTuples(t, r, QueryOptions{Filter: hot}); got != 1 {
			t.Fatalf("round %d: hot filter count = %d", i, got)
		}
	}
	st := r.Stats()
	if hotRebuilds := st.ViewRebuilds - rebuilds - int64(3*maxCachedViews); hotRebuilds != 0 {
		t.Errorf("hot filter's view was evicted and rebuilt %d times", hotRebuilds)
	}
}

func TestViewCacheEviction(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	for i := 0; i < 3; i++ {
		r.Publish(svcTuple(fmt.Sprintf("s%d", i), "cern.ch", 0.1), 0)
	}
	// Far more distinct filters than the view cache holds; every answer
	// must stay correct while victims are evicted and rebuilt on demand.
	for i := 0; i < 3*maxCachedViews; i++ {
		f := Filter{LinkPrefix: fmt.Sprintf("http://cern.ch/s%d", i%3)}
		if got := countTuples(t, r, QueryOptions{Filter: f}); got != 1 {
			t.Fatalf("filter %d: count = %d", i, got)
		}
	}
	r.viewMu.Lock()
	cached := len(r.views)
	r.viewMu.Unlock()
	if cached > maxCachedViews {
		t.Errorf("view cache grew to %d, cap %d", cached, maxCachedViews)
	}
}

func TestViewJournalOverflowResync(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	for i := 0; i < 5; i++ {
		r.Publish(svcTuple(fmt.Sprintf("s%d", i), "cern.ch", 0.1), 0)
	}
	if got := countTuples(t, r, QueryOptions{}); got != 5 {
		t.Fatalf("count = %d", got)
	}
	// Overflow the store's bounded journal so the next query must take
	// the full-resync path rather than incremental changes.
	hot := svcTuple("hot", "cern.ch", 0.5)
	for i := 0; i < 5000; i++ {
		r.Publish(hot, 0)
	}
	r.Unpublish("http://cern.ch/s0")
	if got := countTuples(t, r, QueryOptions{}); got != 5 {
		t.Fatalf("count after resync = %d, want 5", got)
	}
}

func TestViewFreshnessStillPulls(t *testing.T) {
	clk := newFakeClock()
	f := &trackingFetcher{}
	r := newTestRegistry(clk, f)
	bare := &tuple.Tuple{Link: "http://cern.ch/bare", Type: tuple.TypeService}
	r.Publish(bare, 0)
	// Warm the no-freshness view first: a later PullMissing query must
	// still trigger the pull even though a cached view exists.
	if got := countTuples(t, r, QueryOptions{}); got != 1 {
		t.Fatalf("count = %d", got)
	}
	seq, err := r.Query(`count(/tupleset/tuple/content/service)`, QueryOptions{
		Freshness: Freshness{PullMissing: true},
	})
	if err != nil || xq.StringValue(seq[0]) != "1" {
		t.Fatalf("pulled content not in view: %v %v", seq, err)
	}
	if f.count(bare.Link) != 1 {
		t.Errorf("pulls = %d, want 1", f.count(bare.Link))
	}
	// Steady state: content cached, no more pulls, view served warm.
	for i := 0; i < 3; i++ {
		r.Query(`count(/tupleset/tuple/content/service)`, QueryOptions{ //nolint:errcheck
			Freshness: Freshness{PullMissing: true},
		})
	}
	if f.count(bare.Link) != 1 {
		t.Errorf("pulls after steady state = %d, want 1", f.count(bare.Link))
	}
}
