// Incremental maintenance of the registry's tuple-set view (thesis Ch. 4).
//
// Every XQuery is answered over a synthetic <tupleset> document. Instead of
// re-materializing that document per query, the registry keeps one cached
// view per query filter and maintains it incrementally: the soft-state
// store's generation counter detects "nothing changed", its change journal
// names the tuples that did change, and each tuple's rendered XML subtree
// is memoized by entry revision so ToXML runs once per revision, not once
// per query. Document order is kept with sparse indices so a localized edit
// renumbers only the edited subtree.
//
// Concurrency follows a copy-on-read discipline without the copy: queries
// hold a read lease (RLock) on the view for the duration of evaluation, and
// rebuilds mutate the document in place only under the write lock. A
// query's snapshot is therefore exactly the store state some rebuild synced
// to — a tuple unpublished before the query began can never appear.
package registry

import (
	"math"
	"sort"
	"sync"
	"time"

	"wsda/internal/softstate"
	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// Secondary-index names registered on the store so selective filters skip
// the full scan.
const (
	indexType    = "type"
	indexContext = "ctx"
)

// maxCachedViews bounds the number of per-filter cached views. Discovery
// traffic concentrates on a handful of filter shapes; beyond that, the
// least recently used view is evicted and rebuilt on demand, so a burst of
// one-off filters cannot displace the hot filters' views.
const maxCachedViews = 16

// viewOrderStride is the gap RenumberSparse leaves between document-order
// indices of a cached view, so replacing or inserting one tuple's subtree
// usually renumbers just that subtree.
const viewOrderStride = 16

// viewEntry is the memoized rendering of one tuple: the element attached to
// the view document plus the store revision it was rendered from and the
// soft-state facts the view needs without re-reading the store.
type viewEntry struct {
	elem       *xmldoc.Node
	rev        int64
	expires    time.Time
	ts4        time.Time
	hasContent bool
}

// filterView is the cached tuple-set view for one filter.
type filterView struct {
	mu     sync.RWMutex
	doc    *xmldoc.Node // <tupleset> document; nil until first build
	root   *xmldoc.Node // the <tupleset> element; children sorted by link
	gen    uint64       // store generation the view is synced to
	byLink map[string]*viewEntry

	// lastUse is the Registry.viewClock reading of the most recent lookup,
	// guarded by Registry.viewMu (not v.mu): the eviction scan must read it
	// without taking each view's own lock.
	lastUse uint64

	// Aggregates for O(1) staleness checks at query time.
	minExpiry time.Time // earliest soft-state deadline of included tuples
	minTS4    time.Time // oldest cached-content timestamp (content tuples)
	missing   int       // included tuples without a cached content copy
}

// expiryOK reports whether no included tuple has passively expired.
func (v *filterView) expiryOK(now time.Time) bool {
	return v.minExpiry.IsZero() || v.minExpiry.After(now)
}

// freshnessSuspect reports whether the view cannot prove the freshness
// demands are already met, so a pull pass over the store is needed.
func (v *filterView) freshnessSuspect(fresh Freshness, now time.Time) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.doc == nil {
		return true
	}
	if fresh.PullMissing && v.missing > 0 {
		return true
	}
	if fresh.MaxAge > 0 && !v.minTS4.IsZero() && now.Sub(v.minTS4) > fresh.MaxAge {
		return true
	}
	return false
}

// viewFor returns (creating if needed) the cached view for a filter,
// evicting the least recently used view when the cache is full. An evicted
// view's in-flight lessees keep working against the orphaned document.
func (r *Registry) viewFor(f Filter) *filterView {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	r.viewClock++
	if v, ok := r.views[f]; ok {
		v.lastUse = r.viewClock
		return v
	}
	if len(r.views) >= maxCachedViews {
		var victim Filter
		oldest := uint64(math.MaxUint64)
		for k, v := range r.views {
			if v.lastUse < oldest {
				oldest, victim = v.lastUse, k
			}
		}
		delete(r.views, victim)
	}
	v := &filterView{lastUse: r.viewClock}
	r.views[f] = v
	return v
}

// leaseView returns the shared tuple-set view for the filter, synced at
// least to the store generation observed at call time, plus a release
// function and whether the first lease attempt was served from an
// already-synced view (the value behind ViewHits, reported per query to
// the flight recorder). The document is valid only until release: rebuilds
// mutate it in place under the write lock, so the read lease is what keeps
// the query's snapshot stable. Callers must not mutate the document.
func (r *Registry) leaseView(f Filter, fresh Freshness) (*xmldoc.Node, func(), bool) {
	v := r.viewFor(f)
	now := r.cfg.Now()
	freshPass := false
	if (fresh.PullMissing || fresh.MaxAge > 0) && v.freshnessSuspect(fresh, now) {
		// Pull against the store first; successful pulls bump the store
		// generation and flow into the rebuild below. ensureFresh does the
		// per-tuple cache-hit/miss accounting on this path.
		freshPass = true
		r.applyFreshness(f, fresh, now)
	}
	target := r.store.Gen()
	for attempt := 0; ; attempt++ {
		v.mu.RLock()
		if v.doc != nil && v.gen >= target && v.expiryOK(now) {
			if attempt == 0 {
				r.viewHits.Add(1)
			}
			if !freshPass {
				// Every content-bearing tuple served from cache is a hit,
				// mirroring the per-tuple accounting of the materializing
				// path.
				r.cacheHits.Add(int64(len(v.byLink) - v.missing))
			}
			return v.doc, v.mu.RUnlock, attempt == 0
		}
		v.mu.RUnlock()
		if attempt == 0 {
			r.viewMisses.Add(1)
		} else if attempt >= 3 {
			// The store is mutating faster than we can re-acquire the
			// lease; serve a private materialized view instead of spinning.
			return r.buildViewLegacy(f, fresh, !freshPass), func() {}, false
		}
		v.mu.Lock()
		if v.doc == nil || v.gen < r.store.Gen() || !v.expiryOK(now) {
			r.rebuildView(v, f, now)
		}
		v.mu.Unlock()
	}
}

// rebuildView syncs v to the current store generation. Callers must hold
// v.mu for writing.
func (r *Registry) rebuildView(v *filterView, f Filter, now time.Time) {
	t0 := time.Now()
	r.viewRebuilds.Add(1)
	storeGen := r.store.Gen()
	switch {
	case v.doc == nil:
		r.buildViewFull(v, f)
	default:
		keys, ok := r.store.ChangesSince(v.gen)
		if ok {
			for _, k := range keys {
				r.applyViewChange(v, f, k)
			}
		} else {
			r.resyncView(v, f)
		}
	}
	v.pruneExpired(now)
	v.recomputeMeta()
	v.gen = storeGen
	r.viewBuildSeconds.ObserveSince(t0)
}

// buildViewFull materializes v from scratch.
func (r *Registry) buildViewFull(v *filterView, f Filter) {
	entries := r.liveMatching(f)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	root := xmldoc.NewElement("tupleset")
	root.SetAttr("registry", r.cfg.Name)
	root.Children = make([]*xmldoc.Node, 0, len(entries))
	byLink := make(map[string]*viewEntry, len(entries))
	for _, e := range entries {
		elem := e.Value.ToXML()
		root.AppendChild(elem)
		byLink[e.Key] = newViewEntry(elem, e)
	}
	doc := xmldoc.NewDocument()
	doc.AppendChild(root)
	doc.RenumberSparse(viewOrderStride)
	v.doc, v.root, v.byLink = doc, root, byLink
}

func newViewEntry(elem *xmldoc.Node, e softstate.Entry[*tuple.Tuple]) *viewEntry {
	return &viewEntry{
		elem:       elem,
		rev:        e.Rev,
		expires:    e.Expires,
		ts4:        e.Value.TS4,
		hasContent: e.Value.Content != nil,
	}
}

// applyViewChange folds one journaled store mutation into the view.
func (r *Registry) applyViewChange(v *filterView, f Filter, key string) {
	e, live := r.store.GetEntry(key)
	matches := live && f.match(e.Value)
	cur := v.byLink[key]
	switch {
	case !matches && cur == nil:
		// Never in this view (filtered out, or insert+delete between syncs).
	case !matches:
		v.removeTuple(key)
	case cur == nil:
		v.insertTuple(key, e)
	case cur.rev == e.Rev:
		cur.expires = e.Expires // Touch: deadline moved, value unchanged
	default:
		v.replaceTuple(key, e)
	}
}

// resyncView reconciles the whole view against the live store — the
// fallback when the change journal no longer covers the view's generation.
// Unchanged tuples keep their memoized subtrees.
func (r *Registry) resyncView(v *filterView, f Filter) {
	entries := r.liveMatching(f)
	seen := make(map[string]struct{}, len(entries))
	for _, e := range entries {
		seen[e.Key] = struct{}{}
		cur := v.byLink[e.Key]
		switch {
		case cur == nil:
			v.insertTuple(e.Key, e)
		case cur.rev != e.Rev:
			v.replaceTuple(e.Key, e)
		default:
			cur.expires = e.Expires
		}
	}
	var gone []string
	for k := range v.byLink {
		if _, ok := seen[k]; !ok {
			gone = append(gone, k)
		}
	}
	for _, k := range gone {
		v.removeTuple(k)
	}
}

// liveMatching snapshots the live entries matching a filter, using the
// store's secondary indexes to avoid full scans for selective filters.
func (r *Registry) liveMatching(f Filter) []softstate.Entry[*tuple.Tuple] {
	var entries []softstate.Entry[*tuple.Tuple]
	switch {
	case f.Type != "":
		entries = r.store.LiveBy(indexType, f.Type)
	case f.Context != "":
		entries = r.store.LiveBy(indexContext, f.Context)
	default:
		entries = r.store.Live()
	}
	out := entries[:0]
	for _, e := range entries {
		if f.match(e.Value) {
			out = append(out, e)
		}
	}
	return out
}

// childLink returns the link attribute of a <tuple> child element.
func childLink(n *xmldoc.Node) string {
	s, _ := n.Attr("link")
	return s
}

// childIndex returns the position of link in the sorted children, or the
// insertion point if absent.
func (v *filterView) childIndex(link string) int {
	return sort.Search(len(v.root.Children), func(i int) bool {
		return childLink(v.root.Children[i]) >= link
	})
}

// orderBounds returns the exclusive document-order bounds available to the
// subtree at child position i: the highest index before it and the lowest
// index after it.
func (v *filterView) orderBounds(i int) (lo, hi int) {
	if i == 0 {
		if n := len(v.root.Attrs); n > 0 {
			lo = v.root.Attrs[n-1].Order()
		} else {
			lo = v.root.Order()
		}
	} else {
		lo = v.root.Children[i-1].MaxOrder()
	}
	if i == len(v.root.Children)-1 {
		hi = math.MaxInt
	} else {
		hi = v.root.Children[i+1].Order()
	}
	return lo, hi
}

// placeSubtree numbers the subtree at child position i, falling back to a
// full sparse renumber when the local gap is exhausted.
func (v *filterView) placeSubtree(i int) {
	lo, hi := v.orderBounds(i)
	if !v.root.Children[i].SubtreeRenumber(lo, hi) {
		v.doc.RenumberSparse(viewOrderStride)
	}
}

func (v *filterView) insertTuple(key string, e softstate.Entry[*tuple.Tuple]) {
	elem := e.Value.ToXML()
	i := v.childIndex(key)
	v.root.InsertChildAt(i, elem)
	v.byLink[key] = newViewEntry(elem, e)
	v.placeSubtree(i)
}

func (v *filterView) replaceTuple(key string, e softstate.Entry[*tuple.Tuple]) {
	elem := e.Value.ToXML()
	i := v.childIndex(key)
	old := v.root.Children[i]
	old.Parent = nil
	elem.Parent = v.root
	v.root.Children[i] = elem
	v.byLink[key] = newViewEntry(elem, e)
	v.placeSubtree(i)
}

func (v *filterView) removeTuple(key string) {
	i := v.childIndex(key)
	if i < len(v.root.Children) && childLink(v.root.Children[i]) == key {
		v.root.RemoveChildAt(i) // neighbors keep their sparse orders
	}
	delete(v.byLink, key)
}

// pruneExpired structurally drops tuples whose soft-state deadline passed
// without an explicit journal record (passive expiry).
func (v *filterView) pruneExpired(now time.Time) {
	if v.expiryOK(now) {
		return
	}
	var dead []string
	for k, ve := range v.byLink {
		if !ve.expires.IsZero() && !ve.expires.After(now) {
			dead = append(dead, k)
		}
	}
	for _, k := range dead {
		v.removeTuple(k)
	}
}

// recomputeMeta refreshes the O(1)-staleness aggregates from byLink.
func (v *filterView) recomputeMeta() {
	v.minExpiry, v.minTS4, v.missing = time.Time{}, time.Time{}, 0
	for _, ve := range v.byLink {
		if !ve.expires.IsZero() && (v.minExpiry.IsZero() || ve.expires.Before(v.minExpiry)) {
			v.minExpiry = ve.expires
		}
		if !ve.hasContent {
			v.missing++
		} else if !ve.ts4.IsZero() && (v.minTS4.IsZero() || ve.ts4.Before(v.minTS4)) {
			v.minTS4 = ve.ts4
		}
	}
}

// applyFreshness runs the per-tuple freshness policy against the store for
// every tuple matching the filter — the pull side of a cached-view query.
// Successful pulls update the store (bumping its generation), so the
// subsequent rebuild folds the fresh content into the cached view.
func (r *Registry) applyFreshness(f Filter, fresh Freshness, now time.Time) {
	for _, e := range r.liveMatching(f) {
		r.ensureFresh(e.Value, fresh, now)
	}
}
