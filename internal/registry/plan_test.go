package registry

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// planTuple builds a discovery-workload-shaped tuple deterministically
// from an index, mirroring the canonical generator's service shape without
// importing the workload package (which itself imports registry).
func planTuple(i int, rng *rand.Rand) *tuple.Tuple {
	domains := []string{"cern.ch", "infn.it", "fnal.gov"}
	kinds := []string{"replica-catalog", "monitor", "gatekeeper"}
	vos := []string{"cms", "atlas", "alice"}
	d := domains[i%len(domains)]
	k := kinds[i%len(kinds)]
	name := fmt.Sprintf("%s-%04d", k, i)
	load := 0.01 * float64(rng.Intn(100))
	content := xmldoc.MustParse(fmt.Sprintf(
		`<service name=%q domain=%q>`+
			`<interface type="XQuery"><operation name="query"><bind protocol="http"/></operation></interface>`+
			`<attr name="kind" value=%q/><attr name="load" value="%.2f"/>`+
			`</service>`,
		name, d, k, load)).DocumentElement().Clone()
	return &tuple.Tuple{
		Link:    fmt.Sprintf("http://%s/%s/wsda/presenter", d, name),
		Type:    tuple.TypeService,
		Context: "child",
		Owner:   vos[i%len(vos)],
		Content: content,
	}
}

// planCorpus is the differential query corpus: every shape the planner
// claims to handle, plus a spread of shapes it must reject, all run
// against both engines and compared byte for byte.
var planCorpus = []string{
	// Plannable: pushdown-eligible discovery shapes.
	`/tupleset/tuple`,
	`/tupleset/tuple[@link="http://cern.ch/replica-catalog-0000/wsda/presenter"]`,
	`/tupleset/tuple[@link="http://nowhere.example/absent"]`,
	`/tupleset/tuple[@type="service"]`,
	`/tupleset/tuple[@type="service"][@ctx="child"]`,
	`/tupleset/tuple[@ctx="child" and @owner="cms"]`,
	`/tupleset/tuple[@type="a"][@type="b"]`, // statically empty (Never)
	`/tupleset/tuple[@ctx=""]`,              // empty literal stays residual
	`/tupleset/tuple[content]`,
	`/tupleset/tuple[content/service/@domain="cern.ch"]`,
	`/tupleset/tuple[@type="service"]/@link`,
	`/tupleset/tuple/@owner`,
	`/tupleset/tuple/content/service[@domain="infn.it"]`,
	`/tupleset/tuple/content/service[attr[@name="kind"]/@value="replica-catalog"]`,
	`/tupleset/tuple/content/service[interface[@type="XQuery"]/operation/bind/@protocol="http"]`,
	`/tupleset/tuple/content/service/attr[@name="load"]/@value`,
	`/tupleset/tuple[content/service/attr[@name="load"]/@value=0.25]`,
	// Unplannable: must fall back to the interpreted view, identically.
	`count(/tupleset/tuple)`,
	`string(/tupleset/@registry)`,
	`/tupleset/tuple[1]`,
	`/tupleset/tuple[@type!="service"]`,
	`/tupleset/tuple[number(content/service/attr[@name="load"]/@value) < 0.5]`,
	`for $t in /tupleset/tuple where $t/@owner="cms" return $t/@link`,
	`//service/@domain`,
}

// newPlanTestPair returns two identically populated registries, one with
// the pushdown planner and one pinned to the interpreted view path.
func newPlanTestPair(t *testing.T, n int, seed int64) (planned, view *Registry) {
	t.Helper()
	clk := newFakeClock()
	planned = New(Config{Name: "r", DefaultTTL: time.Hour, MaxTTL: time.Hour, Now: clk.Now})
	view = New(Config{Name: "r", DefaultTTL: time.Hour, MaxTTL: time.Hour, Now: clk.Now, NoPlanner: true})
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	for _, i := range order {
		// Same index stream for both stores: content must be identical.
		tp := planTuple(i, rand.New(rand.NewSource(seed+int64(i))))
		for _, r := range []*Registry{planned, view} {
			if _, err := r.Publish(tp.Clone(), 0); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}
	return planned, view
}

// TestPlannerDifferential proves the planner is invisible: for every query
// in the corpus, the planned registry and the view-only registry return
// byte-identical serialized sequences and identical errors.
func TestPlannerDifferential(t *testing.T) {
	planned, view := newPlanTestPair(t, 60, 7)
	filters := []Filter{
		{},
		{Type: tuple.TypeService},
		{Context: "child"},
		{LinkPrefix: "http://cern.ch/"},
		{Type: "no-such-type"},
	}
	for _, f := range filters {
		for _, src := range planCorpus {
			got, gotErr := planned.Query(src, QueryOptions{Filter: f})
			want, wantErr := view.Query(src, QueryOptions{Filter: f})
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("filter %+v query %q: err %v vs %v", f, src, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if g, w := xq.Serialize(got), xq.Serialize(want); g != w {
				t.Errorf("filter %+v query %q:\nplanned: %s\nview:    %s", f, src, g, w)
			}
		}
	}
	st := planned.Stats()
	if st.PlanHits == 0 || st.PlanFallbacks == 0 {
		t.Fatalf("stats: hits=%d fallbacks=%d, want both > 0", st.PlanHits, st.PlanFallbacks)
	}
	if st := view.Stats(); st.PlanHits != 0 {
		t.Fatalf("NoPlanner registry recorded %d plan hits", st.PlanHits)
	}
}

// TestPlannerDifferentialEmit repeats the comparison in streaming mode,
// including the early-stop contract (Emit returning false).
func TestPlannerDifferentialEmit(t *testing.T) {
	planned, view := newPlanTestPair(t, 40, 11)
	collect := func(r *Registry, src string, stopAfter int) ([]string, xq.Sequence, error) {
		var items []string
		seq, err := r.Query(src, QueryOptions{Emit: func(it xq.Item) bool {
			items = append(items, xq.Serialize(xq.Sequence{it}))
			return stopAfter == 0 || len(items) < stopAfter
		}})
		return items, seq, err
	}
	for _, src := range planCorpus {
		for _, stopAfter := range []int{0, 1, 3} {
			gotItems, gotSeq, gotErr := collect(planned, src, stopAfter)
			wantItems, wantSeq, wantErr := collect(view, src, stopAfter)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("query %q stop %d: err %v vs %v", src, stopAfter, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if strings.Join(gotItems, "\n") != strings.Join(wantItems, "\n") {
				t.Errorf("query %q stop %d:\nplanned: %v\nview:    %v", src, stopAfter, gotItems, wantItems)
			}
			// Emit mode returns a nil sequence on both paths.
			if gotSeq != nil || wantSeq != nil {
				t.Errorf("query %q: emit mode returned non-nil sequence", src)
			}
		}
	}
}

// TestPlannerConcurrent hammers the plan and memo caches from parallel
// queries racing live publishes; run under -race this checks the locking
// in execPlanFor and tupleElem.
func TestPlannerConcurrent(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Name: "r", DefaultTTL: time.Hour, MaxTTL: time.Hour, Now: clk.Now})
	for i := 0; i < 32; i++ {
		if _, err := r.Publish(planTuple(i, rand.New(rand.NewSource(int64(i)))), 0); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`/tupleset/tuple[@type="service"]/@link`,
		`/tupleset/tuple[content/service/@domain="cern.ch"]`,
		`/tupleset/tuple[@ctx="child"]`,
		`count(/tupleset/tuple)`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := r.Query(queries[(w+i)%len(queries)], QueryOptions{}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			// Republishing bumps the store revision, invalidating memos.
			if _, err := r.Publish(planTuple(i%32, rand.New(rand.NewSource(int64(i)))), 0); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestPlannerExplain checks that Explain reports the chosen access path.
func TestPlannerExplain(t *testing.T) {
	planned, _ := newPlanTestPair(t, 12, 3)
	cases := []struct {
		src  string
		want PlanInfo
	}{
		{`/tupleset/tuple[@link="http://cern.ch/replica-catalog-0000/wsda/presenter"]`,
			PlanInfo{Mode: "index", Index: "link"}},
		{`/tupleset/tuple[@type="service"]`, PlanInfo{Mode: "index", Index: "type"}},
		{`/tupleset/tuple[@ctx="child"]`, PlanInfo{Mode: "index", Index: "ctx"}},
		{`/tupleset/tuple[@type="a"][@type="b"]`, PlanInfo{Mode: "index", Index: "empty"}},
		{`/tupleset/tuple[content]`, PlanInfo{Mode: "scan", Residual: 1}},
		{`count(/tupleset/tuple)`, PlanInfo{Mode: "view"}},
	}
	for _, tc := range cases {
		var got PlanInfo
		if _, err := planned.Query(tc.src, QueryOptions{Explain: &got}); err != nil {
			t.Fatalf("query %q: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("query %q: explain %+v, want %+v", tc.src, got, tc.want)
		}
	}
}

// TestPlanInfoRoundTrip checks String/ParsePlanInfo are inverses.
func TestPlanInfoRoundTrip(t *testing.T) {
	infos := []PlanInfo{
		{Mode: "index", Index: "link"},
		{Mode: "index", Index: "type", Residual: 2},
		{Mode: "scan", Residual: 1},
		{Mode: "view"},
	}
	for _, in := range infos {
		if out := ParsePlanInfo(in.String()); out != in {
			t.Errorf("round trip %+v -> %q -> %+v", in, in.String(), out)
		}
	}
	if out := ParsePlanInfo(""); out.Mode != "view" {
		t.Errorf("absent header should parse as view, got %+v", out)
	}
	if out := ParsePlanInfo("garbage"); out.Mode != "view" {
		t.Errorf("unrecognized text should parse as view, got %+v", out)
	}
}

// TestQueryCacheCanonicalization checks that reformatted copies of one
// query share a compiled-cache slot while semantically distinct queries
// never collide.
func TestQueryCacheCanonicalization(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	variants := []string{
		`/tupleset/tuple[ @type = "service" ]`,
		`  /tupleset/tuple[ @type = "service" ]  `,
		"/tupleset/tuple[\n@type\t=  \"service\" ]",
		"/tupleset/tuple[ @type =\t\"service\"\n]",
	}
	for _, v := range variants {
		if _, err := r.Query(v, QueryOptions{}); err != nil {
			t.Fatalf("query %q: %v", v, err)
		}
	}
	// All four reformatted copies canonicalize to one key and must share
	// a single compiled-cache slot.
	r.cacheMu.RLock()
	n := len(r.queryCache)
	r.cacheMu.RUnlock()
	if n != 1 {
		t.Fatalf("cache holds %d entries for reformatted variants, want 1", n)
	}
	// Literal content is semantic: these must get distinct slots.
	if _, err := r.Query(`/tupleset/tuple[@type="other"]`, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	r.cacheMu.RLock()
	n2 := len(r.queryCache)
	r.cacheMu.RUnlock()
	if n2 != n+1 {
		t.Fatalf("distinct literal shared a cache slot: %d -> %d", n, n2)
	}
}

// TestCanonicalQuerySource pins the normalization rules directly.
func TestCanonicalQuerySource(t *testing.T) {
	cases := []struct{ in, want string }{
		{`/tupleset/tuple`, `/tupleset/tuple`},
		{"  /tupleset/tuple  ", `/tupleset/tuple`},
		{"/tupleset\n\t/tuple", `/tupleset /tuple`},
		{`/tupleset/tuple[@a="x  y"]`, `/tupleset/tuple[@a="x  y"]`}, // literal kept
		{"for  $t  in  /tupleset/tuple  return  $t", "for $t in /tupleset/tuple return $t"},
		// Direct element constructors are whitespace-sensitive raw text.
		{"<out>  spaced  </out>", "<out>  spaced  </out>"},
		{"1  <  2", "1 < 2"}, // '<' as operator still collapses
	}
	for _, tc := range cases {
		if got := canonicalQuerySource(tc.in); got != tc.want {
			t.Errorf("canonicalQuerySource(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
