package registry

import (
	"testing"
	"time"
)

func TestChangesSinceDeltas(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	g0 := r.Gen()
	r.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute) //nolint:errcheck
	r.Publish(svcTuple("b", "infn.it", 0.2), time.Minute) //nolint:errcheck
	r.Unpublish("http://cern.ch/a")

	to, changes, ok := r.ChangesSince(g0)
	if !ok {
		t.Fatal("journal should cover 3 mutations")
	}
	if to != r.Gen() {
		t.Fatalf("to = %d, want %d", to, r.Gen())
	}
	if len(changes) != 2 {
		t.Fatalf("changes = %v, want 2 deduplicated keys", changes)
	}
	byKey := map[string]Change{}
	for _, c := range changes {
		byKey[c.Key] = c
	}
	if c := byKey["http://cern.ch/a"]; c.Tuple != nil {
		t.Fatalf("unpublished key shipped as live: %+v", c)
	}
	b := byKey["http://infn.it/b"]
	if b.Tuple == nil {
		t.Fatal("live key shipped as deleted")
	}
	// The shipped deadline is the entry's authoritative Expires.
	if want := clk.Now().Add(time.Minute); !b.Tuple.TS3.Equal(want) {
		t.Fatalf("shipped TS3 = %v, want %v", b.Tuple.TS3, want)
	}

	// A caught-up reader gets an empty, ok result.
	if to, changes, ok := r.ChangesSince(r.Gen()); !ok || len(changes) != 0 || to != r.Gen() {
		t.Fatalf("caught-up ChangesSince = %d %v %v", to, changes, ok)
	}
}

func TestChangesSinceTruncation(t *testing.T) {
	clk := newFakeClock()
	r := New(Config{Name: "trunc", DefaultTTL: time.Hour, JournalCap: 4, Now: clk.Now})
	g0 := r.Gen()
	for i := 0; i < 5; i++ {
		r.Publish(svcTuple(string(rune('a'+i)), "cern.ch", 0.1), time.Minute) //nolint:errcheck
	}
	if _, _, ok := r.ChangesSince(g0); ok {
		t.Fatal("reader behind a 4-entry journal must be told to re-bootstrap")
	}
}

func TestApplyReplicatedPreservesLifetime(t *testing.T) {
	clk := newFakeClock()
	src := newTestRegistry(clk, nil)
	dst := newTestRegistry(clk, nil)
	src.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute) //nolint:errcheck

	_, changes, _ := src.ChangesSince(0)
	clk.Advance(30 * time.Second) // half the lifetime elapses in transit
	for _, c := range changes {
		dst.ApplyReplicated(c)
	}
	got, ok := dst.Get("http://cern.ch/a")
	if !ok {
		t.Fatal("replicated tuple missing")
	}
	// Original publication timestamps survive replication verbatim.
	if !got.TS1.Equal(time.UnixMilli(0)) {
		t.Fatalf("TS1 rewritten: %v", got.TS1)
	}
	// The replica enforces the remainder of the source deadline, not a
	// fresh full lifetime: 30s remain, so 31s later the tuple is gone.
	clk.Advance(31 * time.Second)
	if _, ok := dst.Get("http://cern.ch/a"); ok {
		t.Error("replicated tuple outlived the source deadline")
	}

	// A change that fully expired in transit acts as a deletion.
	clk2 := newFakeClock()
	src2 := newTestRegistry(clk2, nil)
	dst2 := newTestRegistry(clk2, nil)
	src2.Publish(svcTuple("b", "infn.it", 0.2), time.Minute) //nolint:errcheck
	_, changes2, _ := src2.ChangesSince(0)
	clk2.Advance(2 * time.Minute)
	if dst2.ApplyReplicated(changes2[0]) {
		t.Error("expired-in-transit change reported as applied")
	}
	if dst2.Len() != 0 {
		t.Error("expired-in-transit change retained")
	}
}

func TestApplyReplicatedDelete(t *testing.T) {
	clk := newFakeClock()
	dst := newTestRegistry(clk, nil)
	dst.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute) //nolint:errcheck
	if !dst.ApplyReplicated(Change{Key: "http://cern.ch/a"}) {
		t.Fatal("delete change not applied")
	}
	if dst.Len() != 0 {
		t.Fatal("deleted tuple survived")
	}
	// Deleting an absent key is a no-op, not an error.
	if dst.ApplyReplicated(Change{Key: "http://cern.ch/a"}) {
		t.Fatal("absent-key delete reported as a change")
	}
}
