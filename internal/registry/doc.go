// Package registry implements the hyper registry of thesis Ch. 4: a
// centralized database node for discovery of dynamic distributed content.
// It maintains a soft-state tuple set populated by autonomous remote
// content providers, caches content copies, supports flexible freshness
// driven by provider, registry and client, throttles content pulls, and
// answers both minimal queries (attribute filters) and full XQueries over
// the tuple-set view.
//
// The data model lives in internal/tuple (over internal/xmldoc trees),
// queries are evaluated by internal/xq, and lifetimes are enforced by the
// generic internal/softstate store. internal/changefeed replicates the
// registry's journal to read replicas.
package registry
