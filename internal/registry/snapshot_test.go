package registry

import (
	"strings"
	"testing"
	"time"

	"wsda/internal/tuple"
)

func TestSnapshotRestore(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute)   //nolint:errcheck
	r.Publish(svcTuple("b", "infn.it", 0.2), 2*time.Minute) //nolint:errcheck
	short := svcTuple("c", "cern.ch", 0.3)
	r.Publish(short, time.Second) //nolint:errcheck

	var sb strings.Builder
	if err := r.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh registry 30s later: a and b survive with their
	// remaining lifetime; c has expired on disk.
	clk.Advance(30 * time.Second)
	r2 := newTestRegistry(clk, nil)
	n, skipped, err := r2.Restore(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || skipped != 0 || r2.Len() != 2 {
		t.Fatalf("restored %d (skipped %d), live %d, want 2", n, skipped, r2.Len())
	}
	got, ok := r2.Get("http://cern.ch/a")
	if !ok || got.Content == nil {
		t.Fatalf("tuple a lost: %v %v", got, ok)
	}
	// Remaining lifetime honored: a expires ~30s after restore.
	clk.Advance(31 * time.Second)
	if _, ok := r2.Get("http://cern.ch/a"); ok {
		t.Error("tuple a outlived its original deadline")
	}
	// b had 2 minutes: still alive.
	if _, ok := r2.Get("http://infn.it/b"); !ok {
		t.Error("tuple b should still be alive")
	}
}

func TestSnapshotWithGen(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute) //nolint:errcheck
	var sb strings.Builder
	gen, err := r.SnapshotWithGen(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if gen != r.Gen() {
		t.Fatalf("snapshot gen = %d, registry gen = %d", gen, r.Gen())
	}
	if !strings.Contains(sb.String(), `gen="`) {
		t.Fatalf("snapshot missing gen attribute: %s", sb.String())
	}
	// Mutations after the snapshot are visible from its generation.
	r.Publish(svcTuple("b", "infn.it", 0.2), time.Minute) //nolint:errcheck
	to, changes, ok := r.ChangesSince(gen)
	if !ok || len(changes) != 1 || changes[0].Key != "http://infn.it/b" {
		t.Fatalf("ChangesSince(snapshot gen) = %d %v %v", to, changes, ok)
	}
}

func TestRestoreErrors(t *testing.T) {
	r := newTestRegistry(newFakeClock(), nil)
	if _, _, err := r.Restore(strings.NewReader("not xml")); err == nil {
		t.Error("bad xml accepted")
	}
	if _, _, err := r.Restore(strings.NewReader("<wrong/>")); err == nil {
		t.Error("wrong root accepted")
	}
	_ = tuple.TypeService
}

// TestRestoreSkipsMalformed guards the warm-restart contract: one corrupt
// tuple element must not abort the whole restore — it is skipped and
// counted while every healthy sibling is restored.
func TestRestoreSkipsMalformed(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	snap := `<snapshot>
		<tuple link="http://cern.ch/good1" type="service" ts3="120000"><content/></tuple>
		<tuple link="http://cern.ch/bad" type="service" ts1="zzz"><content/></tuple>
		<tuple type="service"><content/></tuple>
		<tuple link="http://cern.ch/good2" type="service" ts3="120000"><content/></tuple>
	</snapshot>`
	restored, skipped, err := r.Restore(strings.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 || skipped != 2 {
		t.Fatalf("restored %d skipped %d, want 2 and 2", restored, skipped)
	}
	for _, link := range []string{"http://cern.ch/good1", "http://cern.ch/good2"} {
		if _, ok := r.Get(link); !ok {
			t.Errorf("healthy tuple %s lost to a corrupt sibling", link)
		}
	}
}

// TestRestoreViewCoherence guards the generation/revision interaction of
// incremental view maintenance across a restore: a registry with warm
// cached views must serve the restored tuples, not a stale rendering.
func TestRestoreViewCoherence(t *testing.T) {
	clk := newFakeClock()
	src := newTestRegistry(clk, nil)
	src.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute) //nolint:errcheck
	src.Publish(svcTuple("b", "infn.it", 0.2), time.Minute) //nolint:errcheck
	var sb strings.Builder
	if err := src.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}

	// Warm the target's cached views (filtered and unfiltered) before the
	// restore so both must sync incrementally from the restore's journal.
	dst := newTestRegistry(clk, nil)
	dst.Publish(svcTuple("old", "desy.de", 0.9), time.Minute) //nolint:errcheck
	warm := func() (int64, int64) {
		all, err := dst.Query(`count(/tupleset/tuple)`, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cern, err := dst.Query(`count(/tupleset/tuple)`, QueryOptions{
			Filter: Filter{LinkPrefix: "http://cern.ch/"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return all[0].(int64), cern[0].(int64)
	}
	if all, cern := warm(); all != 1 || cern != 0 {
		t.Fatalf("pre-restore view = %d all, %d cern", all, cern)
	}

	restored, skipped, err := dst.Restore(strings.NewReader(sb.String()))
	if err != nil || restored != 2 || skipped != 0 {
		t.Fatalf("restore = %d, %d, %v", restored, skipped, err)
	}
	if all, cern := warm(); all != 3 || cern != 1 {
		t.Fatalf("post-restore view = %d all, %d cern; want 3 and 1", all, cern)
	}
	// The restored rendering must reflect the restored content, not a
	// cached subtree from a previous revision.
	seq, err := dst.Query(
		`string(/tupleset/tuple[@link="http://cern.ch/a"]/content/service/@name)`,
		QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || seq[0].(string) != "a" {
		t.Fatalf("restored content rendering = %v", seq)
	}
}
