package registry

import (
	"strings"
	"testing"
	"time"

	"wsda/internal/tuple"
)

func TestSnapshotRestore(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), time.Minute)   //nolint:errcheck
	r.Publish(svcTuple("b", "infn.it", 0.2), 2*time.Minute) //nolint:errcheck
	short := svcTuple("c", "cern.ch", 0.3)
	r.Publish(short, time.Second) //nolint:errcheck

	var sb strings.Builder
	if err := r.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh registry 30s later: a and b survive with their
	// remaining lifetime; c has expired on disk.
	clk.Advance(30 * time.Second)
	r2 := newTestRegistry(clk, nil)
	n, err := r2.Restore(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || r2.Len() != 2 {
		t.Fatalf("restored %d, live %d, want 2", n, r2.Len())
	}
	got, ok := r2.Get("http://cern.ch/a")
	if !ok || got.Content == nil {
		t.Fatalf("tuple a lost: %v %v", got, ok)
	}
	// Remaining lifetime honored: a expires ~30s after restore.
	clk.Advance(31 * time.Second)
	if _, ok := r2.Get("http://cern.ch/a"); ok {
		t.Error("tuple a outlived its original deadline")
	}
	// b had 2 minutes: still alive.
	if _, ok := r2.Get("http://infn.it/b"); !ok {
		t.Error("tuple b should still be alive")
	}
}

func TestRestoreErrors(t *testing.T) {
	r := newTestRegistry(newFakeClock(), nil)
	if _, err := r.Restore(strings.NewReader("not xml")); err == nil {
		t.Error("bad xml accepted")
	}
	if _, err := r.Restore(strings.NewReader("<wrong/>")); err == nil {
		t.Error("wrong root accepted")
	}
	if _, err := r.Restore(strings.NewReader(`<snapshot><tuple ts1="zzz"/></snapshot>`)); err == nil {
		t.Error("bad tuple accepted")
	}
	_ = tuple.TypeService
}
