package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// TestStressViewCoherence interleaves every mutating and querying operation
// of the registry under the race detector and asserts view-cache coherence:
// a query must never observe a tuple that was unpublished before the query
// began its snapshot.
func TestStressViewCoherence(t *testing.T) {
	r := New(Config{Name: "stress", DefaultTTL: time.Minute})
	const (
		publishers = 4
		queriers   = 4
		rounds     = 200
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Background publishers churn their own disjoint key ranges.
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				link := fmt.Sprintf("http://churn%d.net/s%d", p, i%8)
				switch i % 4 {
				case 0, 1, 2:
					ts := &tuple.Tuple{Link: link, Type: tuple.TypeService, Context: "churn"}
					if _, err := r.Publish(ts, 0); err != nil {
						t.Error(err)
						return
					}
				case 3:
					r.Unpublish(link)
				}
			}
		}(p)
	}
	// Background sweeper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Sweep()
			}
		}
	}()
	// Queriers mixing cached-view XQueries and indexed MinQueries. The
	// node-returning query's results are read after Query returns — they
	// must be detached copies, not aliases into the shared view document
	// that concurrent rebuilds mutate in place.
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Query(`count(/tupleset/tuple)`, QueryOptions{}); err != nil {
					t.Error(err)
					return
				}
				seq, err := r.Query(`/tupleset/tuple[@context="churn"]`, QueryOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				for _, it := range seq {
					n, ok := it.(*xmldoc.Node)
					if !ok {
						t.Error("node query returned non-node item")
						return
					}
					if link, _ := n.Attr("link"); link == "" {
						t.Error("detached result tuple lost its link attribute")
						return
					}
					_ = n.String()
				}
				// The root element aliases the view's mutating child list
				// unless results are detached; serializing it after return
				// races with rebuilds if the copy was skipped.
				seq, err = r.Query(`/tupleset`, QueryOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				if root, ok := seq[0].(*xmldoc.Node); ok {
					_ = root.String()
				}
				r.MinQuery(Filter{Context: "churn"})
			}
		}()
	}

	// The coherence checker owns one link nobody else touches: after its
	// unpublish returns, no subsequent snapshot may contain the tuple.
	link := "http://coherence.net/svc"
	q := fmt.Sprintf(`count(/tupleset/tuple[@link=%q])`, link)
	for i := 0; i < rounds; i++ {
		ts := &tuple.Tuple{Link: link, Type: tuple.TypeService, Context: "coherence"}
		if _, err := r.Publish(ts, 0); err != nil {
			t.Fatal(err)
		}
		if got := r.MinQuery(Filter{LinkPrefix: link}); len(got) != 1 {
			t.Fatalf("round %d: published tuple invisible to MinQuery", i)
		}
		r.Unpublish(link)
		if got := r.MinQuery(Filter{LinkPrefix: link}); len(got) != 0 {
			t.Fatalf("round %d: unpublished tuple visible to MinQuery", i)
		}
		seq, err := r.Query(q, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if n := int(xq.NumberValue(seq[0])); n != 0 {
			t.Fatalf("round %d: unpublished tuple visible in view snapshot (count=%d)", i, n)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSingleFlightPull asserts that concurrent queries needing the same
// missing content issue exactly one fetch.
func TestSingleFlightPull(t *testing.T) {
	block := make(chan struct{})
	var calls int
	var mu sync.Mutex
	fetcher := FetcherFunc(func(link string) (*xmldoc.Node, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-block
		return svcContent("fresh", "cern.ch", 0.5), nil
	})
	r := New(Config{Name: "sf", DefaultTTL: time.Minute, Fetcher: fetcher,
		MinPullInterval: time.Hour})
	bare := &tuple.Tuple{Link: "http://cern.ch/bare", Type: tuple.TypeService}
	if _, err := r.Publish(bare, 0); err != nil {
		t.Fatal(err)
	}

	const concurrent = 8
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Query(`count(/tupleset/tuple/content/service)`, QueryOptions{
				Freshness: Freshness{PullMissing: true},
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Give every querier time to reach the flight, then release the fetch.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("fetch calls = %d, want 1 (single-flight)", calls)
	}
	st := r.Stats()
	if st.Pulls != 1 {
		t.Errorf("pulls = %d, want 1", st.Pulls)
	}
	if st.Throttled != 0 {
		t.Errorf("throttled = %d: flight joiners must not count as throttled", st.Throttled)
	}
}
