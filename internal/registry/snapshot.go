package registry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// Snapshot serializes the live tuple set (including soft-state deadlines)
// as a <snapshot> document — an operational convenience for backup and
// warm restarts, and the bootstrap payload of the change-feed replication
// subsystem. Soft state makes snapshots safe by construction: a stale
// snapshot's tuples simply expire after restore unless providers refresh
// them.
func (r *Registry) Snapshot(w io.Writer) error {
	_, err := r.SnapshotWithGen(w)
	return err
}

// SnapshotWithGen is Snapshot plus the store generation the snapshot
// corresponds to, read atomically with the tuple set: a replica that
// restores the snapshot and then tails changes from the returned
// generation misses no mutation. The generation is also stamped on the
// root element as gen="N".
//
// Each tuple is serialized compactly on its own line: pretty-printing
// inside tuples would inject whitespace text nodes into their content on
// re-parse, making a restored registry differ from its source.
func (r *Registry) SnapshotWithGen(w io.Writer) (uint64, error) {
	root := xmldoc.NewElement("snapshot")
	root.SetAttr("registry", r.cfg.Name)
	root.SetAttr("at", strconv.FormatInt(r.cfg.Now().UnixMilli(), 10))
	entries, gen := r.store.LiveAndGen()
	root.SetAttr("gen", strconv.FormatUint(gen, 10))
	var sb strings.Builder
	sb.WriteString(strings.TrimSuffix(root.String(), "/>"))
	sb.WriteString(">\n")
	for _, e := range entries {
		sb.WriteString("  ")
		sb.WriteString(e.Value.ToXML().String())
		sb.WriteByte('\n')
	}
	sb.WriteString("</snapshot>\n")
	_, err := io.WriteString(w, sb.String())
	return gen, err
}

// Restore loads a snapshot, publishing each tuple with the remainder of
// its original lifetime. Already-expired tuples are skipped silently;
// malformed or unpublishable tuple elements are skipped and counted, so a
// snapshot with one corrupt entry cannot prevent a warm restart. It
// returns how many tuples were restored and how many were skipped as
// malformed. err is non-nil only when the document itself is unusable.
func (r *Registry) Restore(rd io.Reader) (restored, skipped int, err error) {
	doc, err := xmldoc.Parse(rd)
	if err != nil {
		return 0, 0, fmt.Errorf("registry: restore: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "snapshot" {
		return 0, 0, fmt.Errorf("registry: restore: expected <snapshot>")
	}
	now := r.cfg.Now()
	for _, el := range root.ChildElements() {
		if el.LocalName() != "tuple" {
			continue
		}
		t, err := tuple.FromXML(el)
		if err != nil {
			skipped++
			continue
		}
		ttl := time.Duration(0)
		if !t.TS3.IsZero() {
			ttl = t.TS3.Sub(now)
			if ttl <= 0 {
				continue // expired while on disk
			}
		}
		// Clear the deadline so Publish re-derives it from the granted ttl.
		t.TS3 = time.Time{}
		if _, err := r.Publish(t, ttl); err != nil {
			skipped++
			continue
		}
		restored++
	}
	return restored, skipped, nil
}
