package registry

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// Snapshot serializes the live tuple set (including soft-state deadlines)
// as a <snapshot> document — an operational convenience for backup and
// warm restarts. Soft state makes snapshots safe by construction: a stale
// snapshot's tuples simply expire after restore unless providers refresh
// them.
func (r *Registry) Snapshot(w io.Writer) error {
	root := xmldoc.NewElement("snapshot")
	root.SetAttr("registry", r.cfg.Name)
	root.SetAttr("at", strconv.FormatInt(r.cfg.Now().UnixMilli(), 10))
	for _, e := range r.store.Live() {
		root.AppendChild(e.Value.ToXML())
	}
	root.Renumber()
	_, err := io.WriteString(w, root.Indent())
	return err
}

// Restore loads a snapshot, publishing each tuple with the remainder of
// its original lifetime. Already-expired tuples are skipped. It returns
// how many tuples were restored.
func (r *Registry) Restore(rd io.Reader) (int, error) {
	doc, err := xmldoc.Parse(rd)
	if err != nil {
		return 0, fmt.Errorf("registry: restore: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "snapshot" {
		return 0, fmt.Errorf("registry: restore: expected <snapshot>")
	}
	now := r.cfg.Now()
	n := 0
	for _, el := range root.ChildElements() {
		if el.LocalName() != "tuple" {
			continue
		}
		t, err := tuple.FromXML(el)
		if err != nil {
			return n, fmt.Errorf("registry: restore: %w", err)
		}
		ttl := time.Duration(0)
		if !t.TS3.IsZero() {
			ttl = t.TS3.Sub(now)
			if ttl <= 0 {
				continue // expired while on disk
			}
		}
		// Clear the deadline so Publish re-derives it from the granted ttl.
		t.TS3 = time.Time{}
		if _, err := r.Publish(t, ttl); err != nil {
			return n, fmt.Errorf("registry: restore %s: %w", t.Link, err)
		}
		n++
	}
	return n, nil
}
