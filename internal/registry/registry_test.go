package registry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
	"wsda/internal/xq"
)

// fakeClock is a manually advanced clock shared across the test registry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.UnixMilli(0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func svcContent(name, domain string, load float64) *xmldoc.Node {
	return xmldoc.MustParse(fmt.Sprintf(
		`<service name=%q domain=%q><interface type="XQuery"/><load>%.2f</load></service>`,
		name, domain, load)).DocumentElement().Clone()
}

func svcTuple(name, domain string, load float64) *tuple.Tuple {
	return &tuple.Tuple{
		Link:    "http://" + domain + "/" + name,
		Type:    tuple.TypeService,
		Context: "child",
		Content: svcContent(name, domain, load),
	}
}

func newTestRegistry(clk *fakeClock, fetcher Fetcher) *Registry {
	return New(Config{
		Name:            "test-registry",
		DefaultTTL:      time.Minute,
		MinTTL:          time.Second,
		MaxTTL:          time.Hour,
		Fetcher:         fetcher,
		MinPullInterval: 10 * time.Second,
		Now:             clk.Now,
	})
}

func TestPublishAndGet(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	tp := svcTuple("rc", "cern.ch", 0.3)
	granted, err := r.Publish(tp, 0)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if granted != time.Minute {
		t.Errorf("granted = %v, want default 1m", granted)
	}
	got, ok := r.Get(tp.Link)
	if !ok {
		t.Fatal("tuple not found")
	}
	if !got.TS1.Equal(clk.Now()) || !got.TS3.Equal(clk.Now().Add(time.Minute)) {
		t.Errorf("timestamps: TS1=%v TS3=%v", got.TS1, got.TS3)
	}
	if got.TS4.IsZero() {
		t.Error("inline content should set TS4")
	}
}

func TestPublishValidation(t *testing.T) {
	r := newTestRegistry(newFakeClock(), nil)
	if _, err := r.Publish(&tuple.Tuple{Type: "x"}, 0); err == nil {
		t.Error("missing link accepted")
	}
	if _, err := r.Publish(svcTuple("a", "b.c", 0), -time.Second); err != ErrBadTTL {
		t.Errorf("negative ttl: %v", err)
	}
}

func TestTTLClamping(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	if g, _ := r.Publish(svcTuple("a", "x.y", 0), time.Millisecond); g != time.Second {
		t.Errorf("min clamp: %v", g)
	}
	if g, _ := r.Publish(svcTuple("b", "x.y", 0), 100*time.Hour); g != time.Hour {
		t.Errorf("max clamp: %v", g)
	}
}

func TestRefreshKeepsContentAndTS1(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	tp := svcTuple("rc", "cern.ch", 0.3)
	if _, err := r.Publish(tp, time.Minute); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	// Heartbeat refresh: no content.
	hb := &tuple.Tuple{Link: tp.Link, Type: tp.Type, Context: tp.Context}
	if _, err := r.Publish(hb, time.Minute); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(tp.Link)
	if got.Content == nil {
		t.Error("refresh dropped cached content")
	}
	if !got.TS1.Equal(time.UnixMilli(0)) {
		t.Errorf("TS1 = %v, want original", got.TS1)
	}
	if !got.TS2.Equal(clk.Now()) {
		t.Errorf("TS2 = %v, want refresh time", got.TS2)
	}
	st := r.Stats()
	if st.Publishes != 1 || st.Refreshes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSoftStateExpiry(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "x.y", 0), time.Second)
	r.Publish(svcTuple("b", "x.y", 0), time.Hour)
	clk.Advance(2 * time.Second)
	if r.Len() != 1 {
		t.Errorf("live = %d, want 1", r.Len())
	}
	if n := r.Sweep(); n != 1 {
		t.Errorf("swept = %d", n)
	}
	if _, ok := r.Get("http://x.y/a"); ok {
		t.Error("expired tuple still visible")
	}
}

func TestMinQuery(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	r.Publish(svcTuple("b", "cern.ch", 0.2), 0)
	r.Publish(svcTuple("c", "infn.it", 0.3), 0)
	nodeT := svcTuple("d", "cern.ch", 0)
	nodeT.Type = tuple.TypeNode
	r.Publish(nodeT, 0)

	if got := r.MinQuery(Filter{}); len(got) != 4 {
		t.Errorf("all = %d", len(got))
	}
	if got := r.MinQuery(Filter{Type: tuple.TypeService}); len(got) != 3 {
		t.Errorf("services = %d", len(got))
	}
	if got := r.MinQuery(Filter{LinkPrefix: "http://cern.ch/"}); len(got) != 3 {
		t.Errorf("cern = %d", len(got))
	}
	if got := r.MinQuery(Filter{Type: tuple.TypeService, LinkPrefix: "http://infn.it/"}); len(got) != 1 {
		t.Errorf("infn services = %d", len(got))
	}
	// Sorted by link.
	got := r.MinQuery(Filter{})
	for i := 1; i < len(got); i++ {
		if got[i-1].Link > got[i].Link {
			t.Error("MinQuery result not sorted")
		}
	}
}

func TestXQueryOverView(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("rc", "cern.ch", 0.35), 0)
	r.Publish(svcTuple("sched", "cern.ch", 0.80), 0)
	r.Publish(svcTuple("store", "infn.it", 0.10), 0)

	seq, err := r.Query(`
		for $t in /tupleset/tuple
		let $s := $t/content/service
		where $s/load < 0.5
		order by $s/@name
		return string($s/@name)`, QueryOptions{})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var names []string
	for _, it := range seq {
		names = append(names, xq.StringValue(it))
	}
	if strings.Join(names, ",") != "rc,store" {
		t.Errorf("names = %v", names)
	}

	// The view exposes registry name and timestamps.
	seq, err = r.Query(`string(/tupleset/@registry)`, QueryOptions{})
	if err != nil || len(seq) != 1 || xq.StringValue(seq[0]) != "test-registry" {
		t.Errorf("registry attr: %v %v", seq, err)
	}
	seq, err = r.Query(`count(/tupleset/tuple[@ts1])`, QueryOptions{})
	if err != nil || xq.StringValue(seq[0]) != "3" {
		t.Errorf("ts1 attrs: %v %v", seq, err)
	}
}

func TestQueryFilterScope(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	r.Publish(svcTuple("a", "cern.ch", 0.1), 0)
	r.Publish(svcTuple("b", "infn.it", 0.1), 0)
	seq, err := r.Query(`count(/tupleset/tuple)`, QueryOptions{
		Filter: Filter{LinkPrefix: "http://cern.ch/"},
	})
	if err != nil || xq.StringValue(seq[0]) != "1" {
		t.Errorf("scoped count: %v %v", seq, err)
	}
}

// trackingFetcher counts pulls and serves generated content.
type trackingFetcher struct {
	mu    sync.Mutex
	calls map[string]int
	fail  bool
}

func (f *trackingFetcher) Fetch(link string) (*xmldoc.Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls == nil {
		f.calls = make(map[string]int)
	}
	f.calls[link]++
	if f.fail {
		return nil, fmt.Errorf("provider down")
	}
	return xmldoc.MustParse(`<service name="fresh"><load>0.99</load></service>`), nil
}

func (f *trackingFetcher) count(link string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[link]
}

func TestFreshnessPullMissing(t *testing.T) {
	clk := newFakeClock()
	f := &trackingFetcher{}
	r := newTestRegistry(clk, f)
	bare := &tuple.Tuple{Link: "http://x.y/bare", Type: tuple.TypeService}
	r.Publish(bare, 0)

	// Without PullMissing, content stays absent.
	seq, err := r.Query(`count(/tupleset/tuple/content/service)`, QueryOptions{})
	if err != nil || xq.StringValue(seq[0]) != "0" {
		t.Fatalf("unexpected content: %v %v", seq, err)
	}
	// With PullMissing the registry pulls.
	seq, err = r.Query(`count(/tupleset/tuple/content/service)`, QueryOptions{
		Freshness: Freshness{PullMissing: true},
	})
	if err != nil || xq.StringValue(seq[0]) != "1" {
		t.Fatalf("content not pulled: %v %v", seq, err)
	}
	if f.count(bare.Link) != 1 {
		t.Errorf("pulls = %d", f.count(bare.Link))
	}
	// Pulled content is now cached: next query is a cache hit, no new pull.
	r.Query(`count(/tupleset/tuple)`, QueryOptions{Freshness: Freshness{PullMissing: true}}) //nolint:errcheck
	if f.count(bare.Link) != 1 {
		t.Errorf("cache not used, pulls = %d", f.count(bare.Link))
	}
}

func TestFreshnessMaxAge(t *testing.T) {
	clk := newFakeClock()
	f := &trackingFetcher{}
	r := newTestRegistry(clk, f)
	tp := svcTuple("rc", "cern.ch", 0.3)
	r.Publish(tp, time.Hour)

	clk.Advance(30 * time.Second)
	// Cached copy is 30s old; demand at most 60s: no pull.
	_, err := r.Query(`/tupleset`, QueryOptions{Freshness: Freshness{MaxAge: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	if f.count(tp.Link) != 0 {
		t.Error("fresh content was re-pulled")
	}
	// Demand at most 10s: pull happens.
	_, err = r.Query(`/tupleset`, QueryOptions{Freshness: Freshness{MaxAge: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if f.count(tp.Link) != 1 {
		t.Errorf("stale content not pulled: %d", f.count(tp.Link))
	}
	st := r.Stats()
	if st.CacheHits == 0 || st.Pulls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPullThrottle(t *testing.T) {
	clk := newFakeClock()
	f := &trackingFetcher{}
	r := newTestRegistry(clk, f) // MinPullInterval = 10s
	bare := &tuple.Tuple{Link: "http://x.y/bare", Type: tuple.TypeService}
	r.Publish(bare, 0)

	fresh := Freshness{MaxAge: time.Millisecond, PullMissing: true}
	r.Query(`/tupleset`, QueryOptions{Freshness: fresh}) //nolint:errcheck
	clk.Advance(time.Second)
	r.Query(`/tupleset`, QueryOptions{Freshness: fresh}) //nolint:errcheck
	if f.count(bare.Link) != 1 {
		t.Errorf("throttle failed: %d pulls", f.count(bare.Link))
	}
	if r.Stats().Throttled != 1 {
		t.Errorf("throttled = %d", r.Stats().Throttled)
	}
	clk.Advance(11 * time.Second)
	r.Query(`/tupleset`, QueryOptions{Freshness: fresh}) //nolint:errcheck
	if f.count(bare.Link) != 2 {
		t.Errorf("pull after interval: %d", f.count(bare.Link))
	}
}

func TestPullFailureServesStale(t *testing.T) {
	clk := newFakeClock()
	f := &trackingFetcher{fail: true}
	r := newTestRegistry(clk, f)
	tp := svcTuple("rc", "cern.ch", 0.3)
	r.Publish(tp, time.Hour)
	clk.Advance(time.Hour / 2)
	seq, err := r.Query(`string(/tupleset/tuple/content/service/@name)`, QueryOptions{
		Freshness: Freshness{MaxAge: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if xq.StringValue(seq[0]) != "rc" {
		t.Errorf("stale content lost: %v", seq)
	}
	if r.Stats().PullErrors != 1 {
		t.Errorf("pull errors = %d", r.Stats().PullErrors)
	}
}

func TestStreamingQuery(t *testing.T) {
	clk := newFakeClock()
	r := newTestRegistry(clk, nil)
	for i := 0; i < 10; i++ {
		r.Publish(svcTuple(fmt.Sprintf("s%02d", i), "cern.ch", float64(i)/10), 0)
	}
	var got int
	_, err := r.Query(`for $t in /tupleset/tuple return $t/content/service/@name`, QueryOptions{
		Emit: func(xq.Item) bool {
			got++
			return got < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("streamed %d, want 3 (early stop)", got)
	}
}

func TestQuerySyntaxError(t *testing.T) {
	r := newTestRegistry(newFakeClock(), nil)
	if _, err := r.Query(`for $x in`, QueryOptions{}); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestUnpublish(t *testing.T) {
	r := newTestRegistry(newFakeClock(), nil)
	tp := svcTuple("a", "x.y", 0)
	r.Publish(tp, 0)
	if !r.Unpublish(tp.Link) {
		t.Error("unpublish failed")
	}
	if r.Unpublish(tp.Link) {
		t.Error("double unpublish succeeded")
	}
	if r.Len() != 0 {
		t.Error("tuple still present")
	}
}

func TestConcurrentPublishQuery(t *testing.T) {
	r := New(Config{Name: "conc", DefaultTTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tp := svcTuple(fmt.Sprintf("s%d-%d", g, i), "cern.ch", 0.5)
				if _, err := r.Publish(tp, 0); err != nil {
					t.Errorf("publish: %v", err)
				}
				if _, err := r.Query(`count(/tupleset/tuple)`, QueryOptions{}); err != nil {
					t.Errorf("query: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 200 {
		t.Errorf("len = %d, want 200", r.Len())
	}
}
