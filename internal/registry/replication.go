// Replication hooks: the registry side of the change-feed subsystem
// (internal/changefeed). The soft-state store's generation counter and
// bounded change journal already support incremental view maintenance;
// these methods expose the same machinery as a consumable change stream —
// deltas by cursor, an atomic snapshot+generation pair for bootstrap, and
// an apply path that preserves remaining lifetimes so the paper's
// soft-state argument survives replication: a stale replica is safe
// because its copies expire unless the primary keeps refreshing them.

package registry

import (
	"wsda/internal/tuple"
)

// Change is one replicated mutation. A nil Tuple means the key is gone on
// the source (unpublished or expired); otherwise Tuple is the key's current
// state with TS3 carrying the absolute soft-state deadline, from which the
// applier derives the remaining lifetime under its own clock.
type Change struct {
	Key   string       // the tuple key (its link)
	Tuple *tuple.Tuple // current state; nil = deleted/expired
}

// Gen returns the registry's store generation — the replication cursor
// space. Feed responses report it so replicas can measure lag.
func (r *Registry) Gen() uint64 { return r.store.Gen() }

// ChangesSince returns the mutations a reader at cursor gen has missed,
// oldest first, and the generation `to` the reader may advance its cursor
// to after applying them. ok is false when gen has fallen off the bounded
// change journal: the reader's only correct move is a snapshot
// re-bootstrap.
//
// The store generation is read before the journal, so `to` never exceeds
// the journal read's coverage; a mutation racing between the two reads is
// simply re-delivered on the next call, which is harmless because changes
// carry full per-key state and applying them is idempotent.
func (r *Registry) ChangesSince(gen uint64) (to uint64, changes []Change, ok bool) {
	to = r.store.Gen()
	keys, ok := r.store.ChangesSince(gen)
	if !ok {
		return to, nil, false
	}
	changes = make([]Change, 0, len(keys))
	for _, k := range keys {
		c := Change{Key: k}
		if e, live := r.store.GetEntry(k); live {
			c.Tuple = e.Value.Clone()
			// Ship the deadline the tuple itself advertises (TS3): it is what
			// both sides serialize, so replication is byte-faithful. The
			// entry's enforced Expires can trail it by a clock tick (Publish
			// and the store read the clock separately); fall back to it only
			// when the value predates soft-state stamping.
			if c.Tuple.TS3.IsZero() {
				c.Tuple.TS3 = e.Expires
			}
		}
		changes = append(changes, c)
	}
	return to, changes, true
}

// ApplyReplicated folds one change-feed mutation into the registry,
// bypassing TTL clamping and timestamp rewriting: the tuple is stored
// verbatim with the remainder of the source's deadline (TS3) as its local
// lifetime, so expiry semantics survive replication. A change that expired
// in transit acts as a deletion. It reports whether the local tuple set
// changed.
func (r *Registry) ApplyReplicated(c Change) bool {
	if c.Tuple == nil {
		return r.store.Delete(c.Key)
	}
	// A zero deadline on the source means immortal here too.
	if !c.Tuple.TS3.IsZero() && !c.Tuple.TS3.After(r.cfg.Now()) {
		return r.store.Delete(c.Key) // expired in transit
	}
	r.store.PutUntil(c.Key, c.Tuple.Clone(), c.Tuple.TS3)
	return true
}

// PruneLinks deletes every live tuple whose link the keep predicate
// rejects, in one store pass, and returns how many were dropped. It backs
// the shard-rebalance cutover: once a partition map changes, the old owner
// prunes the key range that moved away, and the prunes ride the change
// feed as ordinary deletions so any tailer of this node stays consistent.
func (r *Registry) PruneLinks(keep func(link string) bool) int {
	return r.store.DeleteIf(func(key string, _ *tuple.Tuple) bool { return !keep(key) })
}

// LiveLinks returns the links of all live tuples, in unspecified order —
// what a re-bootstrapping replica diffs against a fresh snapshot to drop
// tuples deleted on the primary while the replica was disconnected.
func (r *Registry) LiveLinks() []string {
	entries := r.store.Live()
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Key)
	}
	return out
}
