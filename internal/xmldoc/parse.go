package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads a complete XML document (or fragment with a single root
// element) and returns its document node. Document order is assigned.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	doc := NewDocument()
	cur := doc
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(qualName(t.Name))
			for _, a := range t.Attr {
				// Drop namespace declarations; prefixes are kept verbatim in
				// element/attribute names, which suffices for discovery data.
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				el.SetAttr(qualName(a.Name), a.Value)
			}
			cur.AppendChild(el)
			cur = el
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xmldoc: parse: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			s := string(t)
			// Skip inter-element whitespace at document level.
			if cur == doc && strings.TrimSpace(s) == "" {
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			cur.AppendChild(NewComment(string(t)))
		case xml.ProcInst, xml.Directive:
			// Ignored: not part of the discovery data model.
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmldoc: parse: unclosed element %s", cur.Name)
	}
	doc.Renumber()
	return doc, nil
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse parses s and panics on error. Intended for tests and statically
// known documents.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

func qualName(n xml.Name) string {
	// encoding/xml resolves prefixes to namespace URIs in Name.Space. For the
	// discovery data model we keep the local name only unless the URI is a
	// conventional short prefix; full namespace support is out of scope and
	// unused by the thesis queries.
	return n.Local
}
