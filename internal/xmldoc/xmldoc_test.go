package xmldoc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDoc = `<service name="replica-catalog" domain="cern.ch">
  <interface type="Presenter">
    <operation name="getServiceDescription"/>
  </interface>
  <interface type="XQuery">
    <operation name="query"><bind protocol="http" url="http://cms.cern.ch/rc"/></operation>
  </interface>
  <load>0.35</load>
</service>`

func TestParseBasic(t *testing.T) {
	doc, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name != "service" {
		t.Fatalf("root = %v, want service element", root)
	}
	if got, _ := root.Attr("name"); got != "replica-catalog" {
		t.Errorf("name attr = %q", got)
	}
	if got, _ := root.Attr("domain"); got != "cern.ch" {
		t.Errorf("domain attr = %q", got)
	}
	ifaces := 0
	for _, c := range root.ChildElements() {
		if c.Name == "interface" {
			ifaces++
		}
	}
	if ifaces != 2 {
		t.Errorf("interfaces = %d, want 2", ifaces)
	}
	if got := root.ChildText("load"); got != "0.35" {
		t.Errorf("load text = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"<a><b></a>",
		"<a>",
		"text only is not a document </a>",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	doc := MustParse(sampleDoc)
	out := doc.String()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !doc.Equal(doc2) {
		t.Errorf("round trip not equal:\n%s\nvs\n%s", out, doc2.String())
	}
}

func TestEscaping(t *testing.T) {
	el := NewElement("x")
	el.SetAttr("a", `va<l"ue&`)
	el.AppendChild(NewText("a<b&c>d"))
	s := el.String()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse escaped: %v (%s)", err, s)
	}
	got := doc.DocumentElement()
	if v, _ := got.Attr("a"); v != `va<l"ue&` {
		t.Errorf("attr = %q", v)
	}
	if got.StringValue() != "a<b&c>d" {
		t.Errorf("text = %q", got.StringValue())
	}
}

func TestStringValue(t *testing.T) {
	doc := MustParse("<a>one<b>two</b>three</a>")
	if got := doc.StringValue(); got != "onetwothree" {
		t.Errorf("string value = %q", got)
	}
}

func TestDocumentOrder(t *testing.T) {
	doc := MustParse("<a><b/><c><d/></c><e/></a>")
	var names []string
	prev := -1
	doc.Walk(func(n *Node) bool {
		if n.Order() <= prev {
			t.Errorf("order not strictly increasing at %v", n.Name)
		}
		prev = n.Order()
		if n.Kind == ElementNode {
			names = append(names, n.Name)
		}
		return true
	})
	want := "a b c d e"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("walk order = %q, want %q", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := MustParse(sampleDoc)
	c := doc.Clone()
	if !doc.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.DocumentElement().SetAttr("name", "changed")
	if v, _ := doc.DocumentElement().Attr("name"); v != "replica-catalog" {
		t.Error("mutating clone affected original")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	doc := MustParse("<a><b/><c/><d/></a>")
	count := 0
	doc.Walk(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestFirstChildElementMissing(t *testing.T) {
	doc := MustParse("<a><b/></a>")
	if doc.DocumentElement().FirstChildElement("zz") != nil {
		t.Error("expected nil for missing child")
	}
	if doc.DocumentElement().ChildText("zz") != "" {
		t.Error("expected empty text for missing child")
	}
}

// randomTree builds a random well-formed tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"svc", "iface", "op", "load", "host"}
	el := NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		el.SetAttr("id", string(rune('a'+r.Intn(26))))
	}
	n := r.Intn(3)
	for i := 0; i < n; i++ {
		if depth <= 0 || r.Intn(2) == 0 {
			el.AppendChild(NewText(string(rune('a' + r.Intn(26)))))
		} else {
			el.AppendChild(randomTree(r, depth-1))
		}
	}
	return el
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument()
		doc.AppendChild(randomTree(r, 4))
		doc.Normalize()
		doc.Renumber()
		out := doc.String()
		doc2, err := ParseString(out)
		if err != nil {
			return false
		}
		return doc.Equal(doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		return n.Equal(n.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
