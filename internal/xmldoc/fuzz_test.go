package xmldoc

import "testing"

// FuzzParse checks the XML parser never panics and that anything it
// accepts survives a serialize→parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(`<a/>`)
	f.Add(`<a b="c">text<d/><!--x--></a>`)
	f.Add(`<a>&lt;&amp;&gt;</a>`)
	f.Add(`<a><b></a></b>`)
	f.Add(``)
	f.Add(`<?xml version="1.0"?><a/>`)
	f.Add(`<a xmlns:x="urn:y"><x:b/></a>`)
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return
		}
		doc.Normalize()
		out := doc.String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput: %q", err, out)
		}
		doc2.Normalize()
		if !doc.Equal(doc2) {
			t.Fatalf("round trip not stable:\n%q\nvs\n%q", out, doc2.String())
		}
	})
}
