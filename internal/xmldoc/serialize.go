package xmldoc

import (
	"io"
	"strings"
)

// String serializes the subtree rooted at n to compact XML text.
func (n *Node) String() string {
	var sb strings.Builder
	n.write(&sb, -1, 0)
	return sb.String()
}

// Indent serializes the subtree rooted at n with two-space indentation.
func (n *Node) Indent() string {
	var sb strings.Builder
	n.write(&sb, 0, 0)
	return sb.String()
}

// WriteTo serializes n compactly to w.
func (n *Node) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	n.write(&sb, -1, 0)
	m, err := io.WriteString(w, sb.String())
	return int64(m), err
}

// write emits the node. indent < 0 means compact output.
func (n *Node) write(sb *strings.Builder, indent, depth int) {
	switch n.Kind {
	case DocumentNode:
		for i, c := range n.Children {
			if indent >= 0 && i > 0 {
				sb.WriteByte('\n')
			}
			c.write(sb, indent, depth)
		}
	case TextNode:
		escapeText(sb, n.Data)
	case CommentNode:
		sb.WriteString("<!--")
		sb.WriteString(n.Data)
		sb.WriteString("-->")
	case AttributeNode:
		sb.WriteString(n.Name)
		sb.WriteString(`="`)
		escapeAttr(sb, n.Data)
		sb.WriteByte('"')
	case ElementNode:
		pad := ""
		if indent >= 0 {
			pad = strings.Repeat("  ", depth)
			sb.WriteString(pad)
		}
		sb.WriteByte('<')
		sb.WriteString(n.Name)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			a.write(sb, -1, 0)
		}
		if len(n.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		onlyText := true
		for _, c := range n.Children {
			if c.Kind != TextNode {
				onlyText = false
				break
			}
		}
		if indent < 0 || onlyText {
			for _, c := range n.Children {
				c.write(sb, -1, 0)
			}
		} else {
			for _, c := range n.Children {
				sb.WriteByte('\n')
				if c.Kind == TextNode {
					if strings.TrimSpace(c.Data) == "" {
						continue
					}
					sb.WriteString(strings.Repeat("  ", depth+1))
					escapeText(sb, strings.TrimSpace(c.Data))
					continue
				}
				c.write(sb, indent, depth+1)
			}
			sb.WriteByte('\n')
			sb.WriteString(pad)
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteByte('>')
	}
}

func escapeText(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		default:
			sb.WriteRune(r)
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
