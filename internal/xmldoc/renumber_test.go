package xmldoc

import "testing"

func buildTree(children int) *Node {
	doc := NewDocument()
	root := NewElement("root")
	root.SetAttr("name", "r")
	doc.AppendChild(root)
	for i := 0; i < children; i++ {
		c := NewElement("c")
		c.SetAttr("i", string(rune('a'+i)))
		c.AppendChild(NewText("x"))
		root.AppendChild(c)
	}
	return doc
}

// collectOrders returns the document-order indices in walk order.
func collectOrders(n *Node) []int {
	var out []int
	n.Walk(func(m *Node) bool { out = append(out, m.Order()); return true })
	return out
}

func assertStrictlyIncreasing(t *testing.T, orders []int) {
	t.Helper()
	for i := 1; i < len(orders); i++ {
		if orders[i] <= orders[i-1] {
			t.Fatalf("orders not strictly increasing at %d: %v", i, orders)
		}
	}
}

func TestRenumberSparse(t *testing.T) {
	doc := buildTree(3)
	doc.RenumberSparse(16)
	orders := collectOrders(doc)
	assertStrictlyIncreasing(t, orders)
	for i, o := range orders {
		if o != i*16 {
			t.Fatalf("order[%d] = %d, want %d", i, o, i*16)
		}
	}
}

func TestSubtreeRenumber(t *testing.T) {
	doc := buildTree(3)
	doc.RenumberSparse(16)
	root := doc.DocumentElement()
	mid := root.Children[1]
	lo := root.Children[0].MaxOrder()
	hi := root.Children[2].Order()
	if !mid.SubtreeRenumber(lo, hi) {
		t.Fatalf("subtree of size %d should fit in (%d,%d)", mid.SubtreeSize(), lo, hi)
	}
	assertStrictlyIncreasing(t, collectOrders(doc))

	// A gap too small for the subtree must refuse and leave orders intact.
	before := collectOrders(doc)
	if mid.SubtreeRenumber(10, 10+mid.SubtreeSize()) {
		t.Fatal("subtree renumber should refuse an exhausted gap")
	}
	after := collectOrders(doc)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("failed SubtreeRenumber mutated orders")
		}
	}
}

func TestInsertRemoveChildAt(t *testing.T) {
	doc := buildTree(3)
	root := doc.DocumentElement()
	n := NewElement("new")
	root.InsertChildAt(1, n)
	if len(root.Children) != 4 || root.Children[1] != n || n.Parent != root {
		t.Fatalf("insert failed: %v", root.Children)
	}
	got := root.RemoveChildAt(1)
	if got != n || got.Parent != nil || len(root.Children) != 3 {
		t.Fatalf("remove failed: got %v, children %v", got, root.Children)
	}
	// The detached subtree stays intact and the remaining children are the
	// original ones in order.
	for i, want := range []string{"a", "b", "c"} {
		if v, _ := root.Children[i].Attr("i"); v != want {
			t.Fatalf("child %d = %q, want %q", i, v, want)
		}
	}
}
