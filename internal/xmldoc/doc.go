// Package xmldoc implements the generic XML data model underlying the WSDA
// tuple space (thesis Ch. 3). Every tuple element holds an arbitrary
// well-formed XML document or fragment; the query engine (internal/xq)
// navigates trees of Node values.
//
// The model is deliberately simple: a Node is a document, element,
// attribute, text, or comment. Namespaces are carried as plain prefixed
// names, which is sufficient for the discovery queries of the thesis.
package xmldoc
