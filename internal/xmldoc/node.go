package xmldoc

import (
	"fmt"
	"strings"
)

// Kind discriminates the node types of the data model.
type Kind int

// Node kinds, mirroring the XPath/XQuery data model subset used by the
// thesis queries.
const (
	DocumentNode Kind = iota
	ElementNode
	AttributeNode
	TextNode
	CommentNode
)

// String returns the node-test spelling of the kind.
func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document-node()"
	case ElementNode:
		return "element()"
	case AttributeNode:
		return "attribute()"
	case TextNode:
		return "text()"
	case CommentNode:
		return "comment()"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a single node in an XML tree. The zero value is an empty document.
//
// Children holds element, text and comment children in document order.
// Attrs holds attribute nodes; they are not part of Children, matching the
// XPath data model.
type Node struct {
	Kind     Kind    // node kind (document/element/text/...)
	Name     string  // element/attribute name, possibly "prefix:local"
	Data     string  // text/comment content, attribute value
	Attrs    []*Node // attribute nodes (Kind == AttributeNode)
	Children []*Node // child nodes in document order
	Parent   *Node   // enclosing node; nil at the root

	// order is the document-order index assigned when the tree is built or
	// renumbered; it makes sorting node sequences cheap.
	order int
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentNode} }

// NewElement returns a detached element node with the given name.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a detached text node.
func NewText(data string) *Node { return &Node{Kind: TextNode, Data: data} }

// NewComment returns a detached comment node.
func NewComment(data string) *Node { return &Node{Kind: CommentNode, Data: data} }

// NewAttr returns a detached attribute node.
func NewAttr(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Data: value}
}

// AppendChild appends c to n's children and sets the parent link.
// It returns n to allow chaining.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// SetAttr sets (or replaces) an attribute on the element.
func (n *Node) SetAttr(name, value string) *Node {
	for _, a := range n.Attrs {
		if a.Name == name {
			a.Data = value
			return n
		}
	}
	a := NewAttr(name, value)
	a.Parent = n
	n.Attrs = append(n.Attrs, a)
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Data, true
		}
	}
	return "", false
}

// LocalName returns the name with any namespace prefix stripped.
func (n *Node) LocalName() string {
	if i := strings.IndexByte(n.Name, ':'); i >= 0 {
		return n.Name[i+1:]
	}
	return n.Name
}

// Root returns the topmost ancestor of n (the document node if present).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// DocumentElement returns the first element child of a document node, or n
// itself if n is already an element, or nil.
func (n *Node) DocumentElement() *Node {
	if n.Kind == ElementNode {
		return n
	}
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// StringValue returns the XPath string value: the concatenation of all
// descendant text for documents and elements, and Data otherwise.
func (n *Node) StringValue() string {
	switch n.Kind {
	case TextNode, CommentNode, AttributeNode:
		return n.Data
	default:
		var sb strings.Builder
		n.appendText(&sb)
		return sb.String()
	}
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Data)
		case ElementNode, DocumentNode:
			c.appendText(sb)
		}
	}
}

// ChildElements returns the element children of n in document order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given local
// name, or nil.
func (n *Node) FirstChildElement(local string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.LocalName() == local {
			return c
		}
	}
	return nil
}

// ChildText returns the string value of the first child element with the
// given local name, or "".
func (n *Node) ChildText(local string) string {
	if c := n.FirstChildElement(local); c != nil {
		return c.StringValue()
	}
	return ""
}

// Walk visits n and every descendant (elements, text, comments; attributes
// are visited right after their owner element) in document order. The walk
// stops early if f returns false.
func (n *Node) Walk(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, a := range n.Attrs {
		if !f(a) {
			return false
		}
	}
	for _, c := range n.Children {
		if !c.Walk(f) {
			return false
		}
	}
	return true
}

// Renumber assigns document-order indices to the whole tree rooted at the
// root of n. It must be called after structural mutation if document-order
// sorting is required; Parse does it automatically.
func (n *Node) Renumber() {
	i := 0
	n.Root().Walk(func(m *Node) bool {
		m.order = i
		i++
		return true
	})
}

// Order returns the document-order index assigned by Renumber/Parse.
func (n *Node) Order() int { return n.order }

// RenumberSparse assigns document-order indices to the whole tree rooted at
// the root of n, spaced stride apart. The gaps let a localized structural
// edit renumber only the edited subtree (SubtreeRenumber) instead of the
// whole document — the incremental-maintenance counterpart of Renumber.
// Ordering comparisons only need relative order, so sparse indices are
// interchangeable with dense ones.
func (n *Node) RenumberSparse(stride int) {
	if stride < 1 {
		stride = 1
	}
	i := 0
	n.Root().Walk(func(m *Node) bool {
		m.order = i
		i += stride
		return true
	})
}

// SubtreeSize returns the number of nodes in n's subtree, n and its
// attributes included.
func (n *Node) SubtreeSize() int {
	size := 0
	n.Walk(func(*Node) bool { size++; return true })
	return size
}

// MaxOrder returns the largest document-order index in n's subtree.
func (n *Node) MaxOrder() int {
	max := n.order
	n.Walk(func(m *Node) bool {
		if m.order > max {
			max = m.order
		}
		return true
	})
	return max
}

// SubtreeRenumber assigns sequential document-order indices to n's subtree
// strictly inside the exclusive bounds (lo, hi). It reports whether the
// subtree fits; on false the tree is left unchanged and the caller must
// fall back to a full Renumber or RenumberSparse.
func (n *Node) SubtreeRenumber(lo, hi int) bool {
	size := n.SubtreeSize()
	if hi <= lo || hi-lo-1 < size {
		return false
	}
	i := lo + 1
	n.Walk(func(m *Node) bool {
		m.order = i
		i++
		return true
	})
	return true
}

// InsertChildAt inserts c as n's i-th child, shifting later siblings right.
// It returns n to allow chaining.
func (n *Node) InsertChildAt(i int, c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
	return n
}

// RemoveChildAt removes and returns n's i-th child, clearing its parent
// link. The detached subtree itself is left intact.
func (n *Node) RemoveChildAt(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children[len(n.Children)-1] = nil
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// Clone returns a deep copy of n with no parent.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	for _, a := range n.Attrs {
		ac := &Node{Kind: AttributeNode, Name: a.Name, Data: a.Data, Parent: c}
		c.Attrs = append(c.Attrs, ac)
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Normalize merges adjacent text-node siblings and removes empty text nodes
// throughout the subtree, so that serialization followed by parsing yields a
// structurally equal tree.
func (n *Node) Normalize() {
	out := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind == TextNode {
			if c.Data == "" {
				continue
			}
			if len(out) > 0 && out[len(out)-1].Kind == TextNode {
				out[len(out)-1].Data += c.Data
				continue
			}
		} else {
			c.Normalize()
		}
		out = append(out, c)
	}
	n.Children = out
}

// Equal reports deep structural equality (names, data, attributes and
// children), ignoring parents and document order.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Name != m.Name || n.Data != m.Data ||
		len(n.Attrs) != len(m.Attrs) || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Attrs {
		if n.Attrs[i].Name != m.Attrs[i].Name || n.Attrs[i].Data != m.Attrs[i].Data {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}
