package baseline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wsda/internal/tuple"
	"wsda/internal/xmldoc"
)

// KeyLookup is a key→tuple index: the query model of DNS, Gnutella,
// Freenet, Tapestry, Chord and Globe, which "only support lookup by key
// (e.g. globally unique name)".
type KeyLookup struct {
	mu sync.RWMutex
	m  map[string]*tuple.Tuple
}

// NewKeyLookup returns an empty index.
func NewKeyLookup() *KeyLookup {
	return &KeyLookup{m: make(map[string]*tuple.Tuple)}
}

// Put indexes a tuple under its content link.
func (k *KeyLookup) Put(t *tuple.Tuple) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.m[t.Link] = t
}

// Lookup returns the tuple under the exact key, if any. This is the entire
// query interface.
func (k *KeyLookup) Lookup(key string) (*tuple.Tuple, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	t, ok := k.m[key]
	return t, ok
}

// Len returns the number of indexed tuples.
func (k *KeyLookup) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.m)
}

// Directory is an LDAP-style service directory: every tuple is flattened
// into an attribute map, and queries are filter expressions in (a subset
// of) RFC 2254 syntax: (&(a=b)(c>=5)), (|(x=*sub*)(y=1)), (!(z=1)).
type Directory struct {
	mu      sync.RWMutex
	entries []dirEntry
}

type dirEntry struct {
	link  string
	attrs map[string]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{} }

// Put flattens and indexes a tuple. Flattening keeps top-level service
// attributes and <attr name value> pairs — nested structure (interfaces,
// operations, bindings) is lost, which is exactly the expressiveness gap
// the thesis points out for LDAP-style systems.
func (d *Directory) Put(t *tuple.Tuple) {
	attrs := map[string]string{"link": t.Link, "type": t.Type}
	if t.Context != "" {
		attrs["ctx"] = t.Context
	}
	if c := t.Content; c != nil {
		el := c
		if el.Kind == xmldoc.DocumentNode {
			el = el.DocumentElement()
		}
		if el != nil {
			for _, a := range el.Attrs {
				attrs[a.Name] = a.Data
			}
			for _, ch := range el.ChildElements() {
				if ch.LocalName() == "attr" {
					k, _ := ch.Attr("name")
					v, _ := ch.Attr("value")
					attrs[k] = v
				}
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = append(d.entries, dirEntry{link: t.Link, attrs: attrs})
}

// Len returns the number of entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Search evaluates an LDAP filter and returns matching links, sorted.
func (d *Directory) Search(filter string) ([]string, error) {
	f, rest, err := parseFilter(strings.TrimSpace(filter))
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("baseline: trailing input %q", rest)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for _, e := range d.entries {
		if f.match(e.attrs) {
			out = append(out, e.link)
		}
	}
	sort.Strings(out)
	return out, nil
}

// filter is a parsed LDAP filter node.
type filter interface {
	match(attrs map[string]string) bool
}

type andFilter struct{ fs []filter }
type orFilter struct{ fs []filter }
type notFilter struct{ f filter }

// cmpFilter compares an attribute: op is one of "=", ">=", "<=", "~substr"
// (internal marker for substring matches), "present".
type cmpFilter struct {
	attr, op, val  string
	parts          []string // substring parts for "~substr"
	prefix, suffix string
}

func (f andFilter) match(a map[string]string) bool {
	for _, x := range f.fs {
		if !x.match(a) {
			return false
		}
	}
	return true
}

func (f orFilter) match(a map[string]string) bool {
	for _, x := range f.fs {
		if x.match(a) {
			return true
		}
	}
	return false
}

func (f notFilter) match(a map[string]string) bool { return !f.f.match(a) }

func (f cmpFilter) match(a map[string]string) bool {
	v, ok := a[f.attr]
	if !ok {
		return false
	}
	switch f.op {
	case "present":
		return true
	case "=":
		return v == f.val
	case ">=", "<=":
		// Numeric when both parse, else lexicographic (LDAP ordering match).
		fv, err1 := strconv.ParseFloat(v, 64)
		ff, err2 := strconv.ParseFloat(f.val, 64)
		if err1 == nil && err2 == nil {
			if f.op == ">=" {
				return fv >= ff
			}
			return fv <= ff
		}
		if f.op == ">=" {
			return v >= f.val
		}
		return v <= f.val
	case "~substr":
		s := v
		if !strings.HasPrefix(s, f.prefix) {
			return false
		}
		s = s[len(f.prefix):]
		if len(f.suffix) > len(s) || !strings.HasSuffix(s, f.suffix) {
			return false
		}
		s = s[:len(s)-len(f.suffix)]
		for _, p := range f.parts {
			i := strings.Index(s, p)
			if i < 0 {
				return false
			}
			s = s[i+len(p):]
		}
		return true
	}
	return false
}

// parseFilter parses one parenthesized filter, returning the remainder.
func parseFilter(s string) (filter, string, error) {
	if !strings.HasPrefix(s, "(") {
		return nil, "", fmt.Errorf("baseline: filter must start with '(' at %q", s)
	}
	s = s[1:]
	if s == "" {
		return nil, "", fmt.Errorf("baseline: unterminated filter")
	}
	switch s[0] {
	case '&', '|':
		op := s[0]
		s = s[1:]
		var fs []filter
		for strings.HasPrefix(strings.TrimSpace(s), "(") {
			s = strings.TrimSpace(s)
			f, rest, err := parseFilter(s)
			if err != nil {
				return nil, "", err
			}
			fs = append(fs, f)
			s = rest
		}
		if !strings.HasPrefix(s, ")") {
			return nil, "", fmt.Errorf("baseline: expected ')' at %q", s)
		}
		if len(fs) == 0 {
			return nil, "", fmt.Errorf("baseline: empty composite filter")
		}
		if op == '&' {
			return andFilter{fs}, s[1:], nil
		}
		return orFilter{fs}, s[1:], nil
	case '!':
		f, rest, err := parseFilter(strings.TrimSpace(s[1:]))
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimSpace(rest)
		if !strings.HasPrefix(rest, ")") {
			return nil, "", fmt.Errorf("baseline: expected ')' after ! at %q", rest)
		}
		return notFilter{f}, rest[1:], nil
	}
	// Simple comparison: attr op value )
	end := strings.IndexByte(s, ')')
	if end < 0 {
		return nil, "", fmt.Errorf("baseline: unterminated comparison %q", s)
	}
	body, rest := s[:end], s[end+1:]
	var attr, op, val string
	switch {
	case strings.Contains(body, ">="):
		parts := strings.SplitN(body, ">=", 2)
		attr, op, val = parts[0], ">=", parts[1]
	case strings.Contains(body, "<="):
		parts := strings.SplitN(body, "<=", 2)
		attr, op, val = parts[0], "<=", parts[1]
	case strings.Contains(body, "="):
		parts := strings.SplitN(body, "=", 2)
		attr, op, val = parts[0], "=", parts[1]
	default:
		return nil, "", fmt.Errorf("baseline: bad comparison %q", body)
	}
	attr = strings.TrimSpace(attr)
	if attr == "" {
		return nil, "", fmt.Errorf("baseline: missing attribute in %q", body)
	}
	if op == "=" {
		if val == "*" {
			return cmpFilter{attr: attr, op: "present"}, rest, nil
		}
		if strings.Contains(val, "*") {
			segs := strings.Split(val, "*")
			return cmpFilter{
				attr: attr, op: "~substr",
				prefix: segs[0], suffix: segs[len(segs)-1],
				parts: segs[1 : len(segs)-1],
			}, rest, nil
		}
	}
	return cmpFilter{attr: attr, op: op, val: val}, rest, nil
}
