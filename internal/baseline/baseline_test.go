package baseline

import (
	"testing"
	"time"

	"wsda/internal/workload"
)

func populated(t *testing.T) (*KeyLookup, *Directory) {
	t.Helper()
	kl, dir := NewKeyLookup(), NewDirectory()
	g := workload.NewGen(42)
	for i := 0; i < 100; i++ {
		tp := g.Tuple(i)
		kl.Put(tp)
		dir.Put(tp)
	}
	return kl, dir
}

func TestKeyLookup(t *testing.T) {
	kl, _ := populated(t)
	if kl.Len() != 100 {
		t.Fatalf("len = %d", kl.Len())
	}
	link := workload.NewGen(42).Tuple(5).Link
	tp, ok := kl.Lookup(link)
	if !ok || tp.Link != link {
		t.Errorf("lookup failed: %v %v", tp, ok)
	}
	if _, ok := kl.Lookup("http://nowhere/else"); ok {
		t.Error("phantom hit")
	}
}

func TestDirectoryEquality(t *testing.T) {
	_, dir := populated(t)
	got, err := dir.Search(`(domain=cern.ch)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("cern.ch services = %d, want 10", len(got))
	}
	got, err = dir.Search(`(&(domain=cern.ch)(kind=replica-catalog))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("conjunction found nothing")
	}
}

func TestDirectoryComparisonsAndSubstring(t *testing.T) {
	_, dir := populated(t)
	low, err := dir.Search(`(load<=0.5)`)
	if err != nil {
		t.Fatal(err)
	}
	high, err := dir.Search(`(load>=0.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(low)+len(high) < 100 {
		t.Errorf("load partition: %d + %d", len(low), len(high))
	}
	sub, err := dir.Search(`(name=replica-*)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) == 0 {
		t.Error("substring found nothing")
	}
	pres, err := dir.Search(`(vo=*)`)
	if err != nil || len(pres) != 100 {
		t.Errorf("presence = %d %v", len(pres), err)
	}
	neg, err := dir.Search(`(!(vo=cms))`)
	if err != nil {
		t.Fatal(err)
	}
	cms, _ := dir.Search(`(vo=cms)`)
	if len(neg)+len(cms) != 100 {
		t.Errorf("negation: %d + %d != 100", len(neg), len(cms))
	}
	or, err := dir.Search(`(|(vo=cms)(vo=atlas))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(or) <= len(cms) {
		t.Errorf("disjunction = %d", len(or))
	}
}

func TestDirectoryParseErrors(t *testing.T) {
	_, dir := populated(t)
	bad := []string{
		``, `no-parens`, `(unclosed`, `(&)`, `(a=b)(c=d)`, `(!(a=b)`, `(=x)`,
	}
	for _, f := range bad {
		if _, err := dir.Search(f); err == nil {
			t.Errorf("Search(%q) succeeded", f)
		}
	}
}

func TestExpressivenessGap(t *testing.T) {
	// The structural query Q5 (services with an XQuery interface bound to
	// HTTP) cannot be expressed over the flattened directory: the
	// interface structure is simply absent from the attribute map. This is
	// the capability gap of experiment E1.
	_, dir := populated(t)
	got, err := dir.Search(`(interface=XQuery)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("flattened directory should not see interface structure, got %d", len(got))
	}
}

func TestDirectorySubstringAnchors(t *testing.T) {
	dir := NewDirectory()
	g := workload.NewGen(1)
	tp := g.Tuple(0)
	dir.Put(tp)
	// Prefix, suffix and middle anchors.
	cases := map[string]bool{
		`(name=replica-catalog-0000)`: true,
		`(name=replica*)`:             true,
		`(name=*0000)`:                true,
		`(name=*catalog*)`:            true,
		`(name=*nope*)`:               false,
		`(name=0000*)`:                false,
	}
	for f, want := range cases {
		got, err := dir.Search(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if (len(got) == 1) != want {
			t.Errorf("%s = %v, want match=%v", f, got, want)
		}
	}
	_ = time.Now
}
