// Package baseline implements the comparison systems of the thesis's
// related-work discussion (Ch. 3.5, 6.10): a pure key-lookup index in the
// style of DNS/Gnutella/Chord (lookup by globally unique name only) and an
// LDAP-style attribute-filter directory. Experiment E1 uses them to show
// which discovery query classes each paradigm can and cannot express.
//
// The experiment harness (internal/experiments, E1) runs the canonical
// query mix of internal/workload against these baselines to compare
// expressiveness with the XQuery registry of internal/registry.
package baseline
