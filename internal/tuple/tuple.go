package tuple

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"wsda/internal/xmldoc"
)

// Well-known tuple types. Arbitrary other types (any MIME type) are legal;
// these are the ones the discovery architecture itself uses.
const (
	TypeService = "service" // SWSDL service description
	TypeNode    = "node"    // P2P registry node advertisement
	TypeData    = "data"    // application payload
)

// Tuple is one entry of a registry's tuple set.
//
// The four timestamps implement the soft-state and caching model of thesis
// Ch. 4.6–4.7: TS1 is the time of first publication, TS2 the time of the
// most recent refresh (re-publication), TS3 the expiry deadline after which
// the tuple is dead and may be swept, and TS4 the time the cached Content
// copy was obtained from the provider (zero if Content is nil).
type Tuple struct {
	Link    string // content link (primary key)
	Type    string // content type, e.g. "service"
	Context string // deployment-model context, e.g. "child", "cms-experiment"
	Owner   string // publishing principal (informational)

	TS1 time.Time // first published
	TS2 time.Time // last refreshed
	TS3 time.Time // expires (soft-state deadline)
	TS4 time.Time // content cached at (zero if no cached content)

	Content  *xmldoc.Node      // cached content copy (nil if link-only)
	Metadata map[string]string // free-form annotations
}

// Validation errors.
var (
	ErrNoLink  = errors.New("tuple: missing content link")
	ErrNoType  = errors.New("tuple: missing type")
	ErrExpired = errors.New("tuple: already expired at publication time")
)

// Validate checks structural invariants at publication time.
func (t *Tuple) Validate(now time.Time) error {
	if t.Link == "" {
		return ErrNoLink
	}
	if t.Type == "" {
		return ErrNoType
	}
	if !t.TS3.IsZero() && !t.TS3.After(now) {
		return fmt.Errorf("%w: expires %v, now %v", ErrExpired, t.TS3, now)
	}
	return nil
}

// Expired reports whether the tuple's soft-state deadline has passed.
func (t *Tuple) Expired(now time.Time) bool {
	return !t.TS3.IsZero() && !t.TS3.After(now)
}

// HasContent reports whether a cached content copy is present.
func (t *Tuple) HasContent() bool { return t.Content != nil }

// ContentAge returns how stale the cached content copy is, and false if
// there is no cached copy at all.
func (t *Tuple) ContentAge(now time.Time) (time.Duration, bool) {
	if t.Content == nil || t.TS4.IsZero() {
		return 0, false
	}
	return now.Sub(t.TS4), true
}

// Clone returns a deep copy (content tree included).
func (t *Tuple) Clone() *Tuple {
	c := *t
	if t.Content != nil {
		c.Content = t.Content.Clone()
	}
	if t.Metadata != nil {
		c.Metadata = make(map[string]string, len(t.Metadata))
		for k, v := range t.Metadata {
			c.Metadata[k] = v
		}
	}
	return &c
}

// ToXML renders the tuple as a <tuple> element in the form the registry's
// query interface exposes: attributes for link/type/context and timestamps,
// the cached content under <content>.
//
// Rendering is the per-tuple cost of every registry view (re)build, so the
// attribute and child slices are sized up front and the common no-metadata
// tuple takes no sorting detour.
func (t *Tuple) ToXML() *xmldoc.Node {
	el := xmldoc.NewElement("tuple")
	el.Attrs = make([]*xmldoc.Node, 0, 8)
	el.Children = make([]*xmldoc.Node, 0, 1+len(t.Metadata))
	el.SetAttr("link", t.Link)
	el.SetAttr("type", t.Type)
	if t.Context != "" {
		el.SetAttr("ctx", t.Context)
	}
	if t.Owner != "" {
		el.SetAttr("owner", t.Owner)
	}
	if !t.TS1.IsZero() {
		el.SetAttr("ts1", strconv.FormatInt(t.TS1.UnixMilli(), 10))
	}
	if !t.TS2.IsZero() {
		el.SetAttr("ts2", strconv.FormatInt(t.TS2.UnixMilli(), 10))
	}
	if !t.TS3.IsZero() {
		el.SetAttr("ts3", strconv.FormatInt(t.TS3.UnixMilli(), 10))
	}
	if !t.TS4.IsZero() {
		el.SetAttr("ts4", strconv.FormatInt(t.TS4.UnixMilli(), 10))
	}
	if len(t.Metadata) > 0 {
		metaKeys := make([]string, 0, len(t.Metadata))
		for k := range t.Metadata {
			metaKeys = append(metaKeys, k)
		}
		if len(metaKeys) > 1 {
			sort.Strings(metaKeys)
		}
		for _, k := range metaKeys {
			m := xmldoc.NewElement("meta")
			m.SetAttr("name", k)
			m.SetAttr("value", t.Metadata[k])
			el.AppendChild(m)
		}
	}
	content := xmldoc.NewElement("content")
	if t.Content != nil {
		body := t.Content
		if body.Kind == xmldoc.DocumentNode {
			body = body.DocumentElement()
		}
		if body != nil {
			content.AppendChild(body.Clone())
		}
	}
	el.AppendChild(content)
	return el
}

// FromXML parses a <tuple> element produced by ToXML.
func FromXML(el *xmldoc.Node) (*Tuple, error) {
	if el.Kind == xmldoc.DocumentNode {
		el = el.DocumentElement()
	}
	if el == nil || el.LocalName() != "tuple" {
		return nil, fmt.Errorf("tuple: expected <tuple> element")
	}
	t := &Tuple{}
	t.Link, _ = el.Attr("link")
	t.Type, _ = el.Attr("type")
	t.Context, _ = el.Attr("ctx")
	t.Owner, _ = el.Attr("owner")
	getTS := func(name string) (time.Time, error) {
		s, ok := el.Attr(name)
		if !ok {
			return time.Time{}, nil
		}
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("tuple: bad timestamp %s=%q", name, s)
		}
		return time.UnixMilli(ms), nil
	}
	var err error
	if t.TS1, err = getTS("ts1"); err != nil {
		return nil, err
	}
	if t.TS2, err = getTS("ts2"); err != nil {
		return nil, err
	}
	if t.TS3, err = getTS("ts3"); err != nil {
		return nil, err
	}
	if t.TS4, err = getTS("ts4"); err != nil {
		return nil, err
	}
	for _, c := range el.ChildElements() {
		switch c.LocalName() {
		case "meta":
			if t.Metadata == nil {
				t.Metadata = make(map[string]string)
			}
			k, _ := c.Attr("name")
			v, _ := c.Attr("value")
			t.Metadata[k] = v
		case "content":
			if inner := firstElem(c); inner != nil {
				t.Content = inner.Clone()
			}
		}
	}
	return t, nil
}

func firstElem(n *xmldoc.Node) *xmldoc.Node {
	for _, c := range n.Children {
		if c.Kind == xmldoc.ElementNode {
			return c
		}
	}
	return nil
}
