// Package tuple defines the data model of the hyper registry (thesis
// Ch. 4): a tuple associates a content link — an HTTP URL under which the
// current content of a remote provider can be retrieved — with type and
// context attributes, soft-state timestamps, and an optional cached copy of
// the content.
//
// Content is an internal/xmldoc element tree; internal/registry stores
// and queries sets of these tuples.
package tuple
