package tuple

import (
	"testing"
	"time"

	"wsda/internal/xmldoc"
)

func sampleTuple() *Tuple {
	return &Tuple{
		Link:    "http://cms.cern.ch/rc",
		Type:    TypeService,
		Context: "child",
		Owner:   "cms",
		TS1:     time.UnixMilli(1000),
		TS2:     time.UnixMilli(2000),
		TS3:     time.UnixMilli(90000),
		TS4:     time.UnixMilli(2500),
		Content: xmldoc.MustParse(`<service name="rc"><load>0.5</load></service>`).DocumentElement(),
		Metadata: map[string]string{
			"quality": "gold",
		},
	}
}

func TestValidate(t *testing.T) {
	now := time.UnixMilli(5000)
	tp := sampleTuple()
	if err := tp.Validate(now); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	tp2 := sampleTuple()
	tp2.Link = ""
	if err := tp2.Validate(now); err != ErrNoLink {
		t.Errorf("missing link: %v", err)
	}
	tp3 := sampleTuple()
	tp3.Type = ""
	if err := tp3.Validate(now); err != ErrNoType {
		t.Errorf("missing type: %v", err)
	}
	tp4 := sampleTuple()
	tp4.TS3 = time.UnixMilli(4000)
	if err := tp4.Validate(now); err == nil {
		t.Error("expired tuple accepted")
	}
}

func TestExpired(t *testing.T) {
	tp := sampleTuple()
	if tp.Expired(time.UnixMilli(80000)) {
		t.Error("not yet expired")
	}
	if !tp.Expired(time.UnixMilli(90000)) {
		t.Error("deadline reached means expired")
	}
	tp.TS3 = time.Time{}
	if tp.Expired(time.UnixMilli(1 << 40)) {
		t.Error("immortal tuple expired")
	}
}

func TestContentAge(t *testing.T) {
	tp := sampleTuple()
	age, ok := tp.ContentAge(time.UnixMilli(3500))
	if !ok || age != time.Second {
		t.Errorf("age = %v ok=%v", age, ok)
	}
	tp.Content = nil
	if _, ok := tp.ContentAge(time.UnixMilli(3500)); ok {
		t.Error("no content should have no age")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tp := sampleTuple()
	el := tp.ToXML()
	got, err := FromXML(el)
	if err != nil {
		t.Fatalf("FromXML: %v", err)
	}
	if got.Link != tp.Link || got.Type != tp.Type || got.Context != tp.Context || got.Owner != tp.Owner {
		t.Errorf("attrs mismatch: %+v", got)
	}
	if !got.TS1.Equal(tp.TS1) || !got.TS2.Equal(tp.TS2) || !got.TS3.Equal(tp.TS3) || !got.TS4.Equal(tp.TS4) {
		t.Errorf("timestamps mismatch: %+v", got)
	}
	if got.Metadata["quality"] != "gold" {
		t.Errorf("metadata = %v", got.Metadata)
	}
	if got.Content == nil || !got.Content.Equal(tp.Content) {
		t.Errorf("content mismatch: %v", got.Content)
	}
}

func TestXMLNoContent(t *testing.T) {
	tp := sampleTuple()
	tp.Content = nil
	tp.TS4 = time.Time{}
	got, err := FromXML(tp.ToXML())
	if err != nil {
		t.Fatalf("FromXML: %v", err)
	}
	if got.Content != nil {
		t.Error("expected nil content")
	}
	if !got.TS4.IsZero() {
		t.Error("expected zero TS4")
	}
}

func TestFromXMLErrors(t *testing.T) {
	if _, err := FromXML(xmldoc.NewElement("nottuple")); err == nil {
		t.Error("wrong element accepted")
	}
	el := xmldoc.NewElement("tuple")
	el.SetAttr("ts1", "notanumber")
	if _, err := FromXML(el); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	tp := sampleTuple()
	c := tp.Clone()
	c.Content.SetAttr("name", "mutated")
	c.Metadata["quality"] = "lead"
	if v, _ := tp.Content.Attr("name"); v != "rc" {
		t.Error("clone shares content tree")
	}
	if tp.Metadata["quality"] != "gold" {
		t.Error("clone shares metadata map")
	}
}

func TestToXMLDocumentContent(t *testing.T) {
	tp := sampleTuple()
	tp.Content = xmldoc.MustParse("<x><y/></x>") // document node
	el := tp.ToXML()
	got, err := FromXML(el)
	if err != nil {
		t.Fatalf("FromXML: %v", err)
	}
	if got.Content == nil || got.Content.Name != "x" {
		t.Errorf("document content not unwrapped: %v", got.Content)
	}
}
