// Package resilience holds the small fault-handling primitives shared by
// the query plane: a per-key circuit Breaker (consecutive-failure
// threshold, cooldown, half-open probe) and an exponential Backoff series.
//
// internal/updf keys its Breaker by neighbor address so persistently dead
// peers stop being selected for query forwarding; internal/broker keys one
// by service name so invocation failover skips services that just failed
// for someone else. Both knobs surface in telemetry as
// wsda_pdp_breaker_open / wsda_broker_breaker_open. See DESIGN.md, "Fault
// model and resilience".
package resilience
