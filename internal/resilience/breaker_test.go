package resilience

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	now := time.UnixMilli(0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second,
		Now: func() time.Time { return now }})

	if !b.Allow("peer") {
		t.Fatal("fresh key must be allowed")
	}
	if b.Failure("peer") || b.Failure("peer") {
		t.Fatal("circuit opened before threshold")
	}
	if !b.Allow("peer") {
		t.Fatal("still closed at 2 failures")
	}
	if !b.Failure("peer") {
		t.Fatal("third failure must open the circuit")
	}
	if b.Allow("peer") {
		t.Fatal("open circuit must reject")
	}
	if !b.Open("peer") || b.OpenCount() != 1 {
		t.Fatalf("Open=%v OpenCount=%d", b.Open("peer"), b.OpenCount())
	}
	// Other keys are unaffected.
	if !b.Allow("other") {
		t.Fatal("unrelated key rejected")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.UnixMilli(0)
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second,
		Now: func() time.Time { return now }})
	b.Failure("peer")
	if b.Allow("peer") {
		t.Fatal("open circuit must reject")
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow("peer") {
		t.Fatal("cooldown elapsed: one probe must pass")
	}
	if b.Allow("peer") {
		t.Fatal("second call during probe must reject")
	}
	// Probe fails: re-opens for another cooldown.
	if !b.Failure("peer") {
		t.Fatal("failed probe must re-open")
	}
	if b.Allow("peer") {
		t.Fatal("re-opened circuit must reject")
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow("peer") {
		t.Fatal("second probe must pass")
	}
	b.Success("peer")
	if !b.Allow("peer") || b.OpenCount() != 0 {
		t.Fatal("successful probe must close the circuit")
	}
}

func TestBreakerOnOpenHook(t *testing.T) {
	opens := 0
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute,
		OnOpen: func(string) { opens++ }})
	b.Failure("a")
	b.Failure("a") // already open: no second event
	b.Failure("b")
	if opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if !b.Allow("x") || b.Failure("x") || b.Open("x") || b.OpenCount() != 0 {
		t.Fatal("nil breaker must never trip")
	}
	b.Success("x")
	b.Reset()
}

func TestBackoffSeries(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second)
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: %v, want %v", i, got, w)
		}
	}
	if b.Attempt() != len(want) {
		t.Fatalf("Attempt = %d", b.Attempt())
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after reset: %v", got)
	}
}

func TestBackoffNoOverflow(t *testing.T) {
	b := NewBackoff(time.Second, 0)
	var last time.Duration
	for i := 0; i < 80; i++ {
		d := b.Next()
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", i, d)
		}
		last = d
	}
	if last != time.Second {
		// With no cap, overflowing shifts fall back to Initial.
		t.Fatalf("uncapped overflow fallback = %v, want Initial", last)
	}
}
