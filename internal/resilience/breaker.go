package resilience

import (
	"sync"
	"time"
)

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open a key's circuit.
	// Zero means 3.
	Threshold int
	// Cooldown is how long an opened circuit rejects traffic before one
	// probe is allowed through again. Zero means 5s.
	Cooldown time.Duration
	// Now is the clock; nil means time.Now.
	Now func() time.Time

	// OnOpen, when set, is called (outside the breaker lock) each time a
	// key's circuit transitions from closed to open — the hook the callers
	// use to count circuit openings in telemetry.
	OnOpen func(key string)
}

// Breaker is a per-key circuit breaker: after Threshold consecutive
// failures on a key, Allow rejects that key for Cooldown, after which a
// single probe is let through (half-open); a success closes the circuit, a
// failure re-opens it for another Cooldown. Keys are typically peer
// addresses (updf) or service names (broker). All methods are safe for
// concurrent use.
//
// The breaker is the feedback path between delivery failures and neighbor
// selection: a peer that keeps timing out stops being selected at all
// instead of costing every future query its full retry budget.
type Breaker struct {
	cfg BreakerConfig

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	failures  int       // consecutive failures
	openUntil time.Time // zero when closed
	probing   bool      // half-open probe in flight
}

// NewBreaker creates a breaker. A nil *Breaker is valid and never trips:
// Allow returns true and Success/Failure are no-ops, so callers can wire
// the breaker optionally without branching.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, states: make(map[string]*breakerState)}
}

// Allow reports whether traffic to key may proceed. While a circuit is
// open, Allow returns false until the cooldown elapses; the first Allow
// after the cooldown returns true exactly once (the half-open probe) and
// further calls keep rejecting until that probe settles via Success or
// Failure.
func (b *Breaker) Allow(key string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[key]
	if !ok || st.openUntil.IsZero() {
		return true
	}
	if b.cfg.Now().Before(st.openUntil) {
		return false
	}
	if st.probing {
		return false
	}
	st.probing = true
	return true
}

// Success records a successful interaction with key, closing its circuit
// and zeroing its consecutive-failure count.
func (b *Breaker) Success(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.states[key]; ok {
		st.failures = 0
		st.openUntil = time.Time{}
		st.probing = false
	}
}

// Failure records a failed interaction with key and returns true when this
// failure opened (or re-opened) the circuit.
func (b *Breaker) Failure(key string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	st, ok := b.states[key]
	if !ok {
		st = &breakerState{}
		b.states[key] = st
	}
	st.failures++
	opened := false
	if st.failures >= b.cfg.Threshold || st.probing {
		wasOpen := !st.openUntil.IsZero() && b.cfg.Now().Before(st.openUntil)
		st.openUntil = b.cfg.Now().Add(b.cfg.Cooldown)
		st.probing = false
		opened = !wasOpen
	}
	b.mu.Unlock()
	if opened && b.cfg.OnOpen != nil {
		b.cfg.OnOpen(key)
	}
	return opened
}

// Open reports whether key's circuit is currently open (rejecting).
func (b *Breaker) Open(key string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[key]
	return ok && !st.openUntil.IsZero() && b.cfg.Now().Before(st.openUntil)
}

// OpenCount returns how many keys currently have an open circuit — the
// value behind the wsda_pdp_breaker_open gauge.
func (b *Breaker) OpenCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	n := 0
	for _, st := range b.states {
		if !st.openUntil.IsZero() && now.Before(st.openUntil) {
			n++
		}
	}
	return n
}

// Reset forgets all state (between test runs or topology rebuilds).
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states = make(map[string]*breakerState)
}
