package resilience

import "time"

// Backoff produces an exponential retry-delay series: Initial, 2·Initial,
// 4·Initial, … capped at Max. The zero value is not usable; fill Initial
// (and optionally Max) or use NewBackoff. Backoff is a value type — copy
// it per retry loop; it is not safe for concurrent use.
type Backoff struct {
	// Initial is the first delay. Required.
	Initial time.Duration
	// Max caps the delay; zero means no cap.
	Max time.Duration

	attempt int
}

// NewBackoff returns a Backoff starting at initial and capped at max.
func NewBackoff(initial, max time.Duration) Backoff {
	return Backoff{Initial: initial, Max: max}
}

// Next returns the delay before the next attempt and advances the series.
func (b *Backoff) Next() time.Duration {
	d := b.Initial << b.attempt
	if b.attempt < 62 { // avoid shifting into the sign bit
		b.attempt++
	}
	if d <= 0 || (b.Max > 0 && d > b.Max) {
		d = b.Max
		if d <= 0 {
			d = b.Initial
		}
	}
	return d
}

// Attempt returns how many delays have been handed out so far.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset restarts the series from Initial.
func (b *Backoff) Reset() { b.attempt = 0 }
