package softstate

import (
	"fmt"
	"testing"
	"time"

	"wsda/internal/telemetry"
)

func TestGenMonotonic(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	g0 := s.Gen()
	s.Put("a", "1", time.Minute)
	g1 := s.Gen()
	if g1 <= g0 {
		t.Fatalf("Put did not bump gen: %d -> %d", g0, g1)
	}
	s.Touch("a", time.Minute)
	g2 := s.Gen()
	if g2 <= g1 {
		t.Fatalf("Touch did not bump gen: %d -> %d", g1, g2)
	}
	s.Delete("a")
	g3 := s.Gen()
	if g3 <= g2 {
		t.Fatalf("Delete did not bump gen: %d -> %d", g2, g3)
	}
	if g := s.Gen(); g != g3 {
		t.Fatalf("Gen moved without mutation: %d -> %d", g3, g)
	}
}

func TestRevBumpsOnValueChangeOnly(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	s.Put("a", "1", time.Minute)
	e, ok := s.GetEntry("a")
	if !ok {
		t.Fatal("entry missing")
	}
	rev := e.Rev
	s.Touch("a", time.Minute)
	if e, _ := s.GetEntry("a"); e.Rev != rev {
		t.Errorf("Touch changed Rev: %d -> %d", rev, e.Rev)
	}
	s.Put("a", "2", time.Minute)
	if e, _ := s.GetEntry("a"); e.Rev <= rev {
		t.Errorf("Put did not bump Rev: %d -> %d", rev, e.Rev)
	}
	rev, _ = func() (int64, bool) { e, ok := s.GetEntry("a"); return e.Rev, ok }()
	s.Upsert("a", time.Minute, func(old string, exists bool) string { return old + "x" })
	if e, _ := s.GetEntry("a"); e.Rev <= rev {
		t.Errorf("Upsert did not bump Rev: %d -> %d", rev, e.Rev)
	}
}

// TestRevMonotonicAcrossIncarnations guards the revision contract external
// caches rely on: a key's revision must never repeat across delete/re-insert
// or expire/re-insert, or a cache that compares revisions would mistake a
// new incarnation for the value it already holds.
func TestRevMonotonicAcrossIncarnations(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	s.Put("a", "1", time.Minute)
	e, _ := s.GetEntry("a")
	rev := e.Rev

	s.Delete("a")
	s.Put("a", "2", time.Minute)
	e, _ = s.GetEntry("a")
	if e.Rev <= rev {
		t.Fatalf("Rev reused after delete+reinsert: %d -> %d", rev, e.Rev)
	}
	rev = e.Rev

	clk.Advance(2 * time.Minute) // passive expiry, no sweep
	s.Put("a", "3", time.Minute)
	e, _ = s.GetEntry("a")
	if e.Rev <= rev {
		t.Fatalf("Rev reused after expiry+reinsert: %d -> %d", rev, e.Rev)
	}
	rev = e.Rev

	s.Delete("a")
	if _, created := s.PutIfAbsent("a", "4", time.Minute); !created {
		t.Fatal("PutIfAbsent did not insert")
	}
	e, _ = s.GetEntry("a")
	if e.Rev <= rev {
		t.Fatalf("Rev reused after delete+PutIfAbsent: %d -> %d", rev, e.Rev)
	}
}

func TestChangesSince(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	g0 := s.Gen()
	s.Put("a", "1", time.Minute)
	s.Put("b", "1", time.Minute)
	s.Put("a", "2", time.Minute) // duplicate key must be deduplicated
	keys, ok := s.ChangesSince(g0)
	if !ok {
		t.Fatal("journal should cover 3 mutations")
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v, want [a b]", keys)
	}
	// Caught-up readers get an empty, ok result.
	keys, ok = s.ChangesSince(s.Gen())
	if !ok || len(keys) != 0 {
		t.Fatalf("caught-up ChangesSince = %v %v", keys, ok)
	}
}

func TestChangesSinceOverflow(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	g0 := s.Gen()
	for i := 0; i < DefaultJournalCap+1; i++ {
		s.Put(fmt.Sprintf("k%d", i), "v", time.Minute)
	}
	if _, ok := s.ChangesSince(g0); ok {
		t.Fatal("reader behind the bounded journal must be told to resync")
	}
	// A reader within the window still gets the tail.
	keys, ok := s.ChangesSince(s.Gen() - 2)
	if !ok || len(keys) != 2 {
		t.Fatalf("tail ChangesSince = %v %v", keys, ok)
	}
}

func TestJournalCapOption(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now, WithJournalCap(8))
	var truncations telemetry.Counter
	s.InstrumentJournalTruncations(&truncations)
	g0 := s.Gen()
	for i := 0; i < 9; i++ {
		s.Put(fmt.Sprintf("k%d", i), "v", time.Minute)
	}
	if _, ok := s.ChangesSince(g0); ok {
		t.Fatal("reader behind an 8-entry journal must be told to resync")
	}
	if got := truncations.Value(); got != 1 {
		t.Fatalf("truncations = %d, want 1", got)
	}
	// A reader within the shrunken window is still served, and served reads
	// do not count as truncations.
	if keys, ok := s.ChangesSince(s.Gen() - 8); !ok || len(keys) != 8 {
		t.Fatalf("tail ChangesSince = %v %v", keys, ok)
	}
	if got := truncations.Value(); got != 1 {
		t.Fatalf("truncations after served read = %d, want 1", got)
	}
	// Non-positive caps fall back to the default.
	d := New[string](clk.Now, WithJournalCap(0))
	if d.journalCap != DefaultJournalCap {
		t.Fatalf("journalCap = %d, want default %d", d.journalCap, DefaultJournalCap)
	}
}

func TestLiveAndGen(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	s.Put("a", "1", time.Minute)
	s.Put("b", "1", time.Minute)
	entries, gen := s.LiveAndGen()
	if len(entries) != 2 {
		t.Fatalf("live = %d, want 2", len(entries))
	}
	if gen != s.Gen() {
		t.Fatalf("gen = %d, want %d", gen, s.Gen())
	}
	// Every mutation journaled after the snapshot is visible from its gen.
	s.Put("c", "1", time.Minute)
	keys, ok := s.ChangesSince(gen)
	if !ok || len(keys) != 1 || keys[0] != "c" {
		t.Fatalf("ChangesSince(snapshot gen) = %v %v", keys, ok)
	}
}

func TestSecondaryIndex(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	s.Put("a", "red", time.Minute)
	s.AddIndex("color", func(v string) string { return v }) // backfill
	s.Put("b", "red", time.Minute)
	s.Put("c", "blue", time.Minute)

	if got := s.LiveBy("color", "red"); len(got) != 2 {
		t.Fatalf("red = %d entries, want 2", len(got))
	}
	// Value change migrates buckets.
	s.Put("b", "blue", time.Minute)
	if got := s.LiveBy("color", "red"); len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("red after migration = %v", got)
	}
	if got := s.LiveBy("color", "blue"); len(got) != 2 {
		t.Fatalf("blue after migration = %d entries, want 2", len(got))
	}
	// Delete removes from buckets.
	s.Delete("c")
	if got := s.LiveBy("color", "blue"); len(got) != 1 || got[0].Key != "b" {
		t.Fatalf("blue after delete = %v", got)
	}
	// Expired entries are filtered out of LiveBy, and a sweep drops them
	// from the buckets for good.
	clk.Advance(2 * time.Minute)
	if got := s.LiveBy("color", "red"); len(got) != 0 {
		t.Fatalf("red after expiry = %v", got)
	}
	s.Sweep()
	if got := s.LiveBy("color", "red"); len(got) != 0 {
		t.Fatalf("red after sweep = %v", got)
	}
}

func TestIndexReplaceDeadEntry(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	s.AddIndex("color", func(v string) string { return v })
	s.Put("a", "red", time.Minute)
	clk.Advance(2 * time.Minute) // "a" passively expires
	s.Put("a", "blue", time.Minute)
	if got := s.LiveBy("color", "red"); len(got) != 0 {
		t.Fatalf("stale bucket entry survived dead-entry replacement: %v", got)
	}
	if got := s.LiveBy("color", "blue"); len(got) != 1 {
		t.Fatalf("blue = %v, want the replacement entry", got)
	}
}
