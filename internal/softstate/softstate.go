// Package softstate implements the generic soft-state maintenance mechanism
// of thesis Ch. 2.6: state that is not refreshed before its time-to-live
// elapses silently expires. This yields reliable, predictable and simple
// distributed state maintenance in the presence of provider failure,
// misbehavior or change — a dead provider's entries vanish on their own.
//
// The store is generic over the value type and is used by the hyper
// registry (tuples) and by the P2P layer (node state table entries).
package softstate

import (
	"sync"
	"time"

	"wsda/internal/telemetry"
)

// Entry is one soft-state entry.
type Entry[V any] struct {
	Key       string
	Value     V
	Inserted  time.Time // first Put
	Refreshed time.Time // most recent Put
	Expires   time.Time // deadline; zero = immortal
}

// Expired reports whether the entry is past its deadline.
func (e *Entry[V]) Expired(now time.Time) bool {
	return !e.Expires.IsZero() && !e.Expires.After(now)
}

// Store is a concurrency-safe soft-state table. The zero value is not
// usable; call New.
type Store[V any] struct {
	mu      sync.RWMutex
	entries map[string]*Entry[V]
	now     func() time.Time

	// statistics
	puts, refreshes, expirations int64

	// sweepSeconds, when set, observes the latency of every Sweep — the
	// soft-state churn series of the thesis experiments (Ch. 4.6/E4).
	sweepSeconds *telemetry.Histogram
}

// New returns an empty store using the given clock (nil means time.Now).
func New[V any](now func() time.Time) *Store[V] {
	if now == nil {
		now = time.Now
	}
	return &Store[V]{entries: make(map[string]*Entry[V]), now: now}
}

// Put inserts or refreshes an entry with the given time-to-live. A
// non-positive ttl makes the entry immortal (strong state). It reports
// whether the entry was newly created (false means this was a refresh).
func (s *Store[V]) Put(key string, value V, ttl time.Duration) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	isNew := !ok || e.Expired(now)
	if isNew {
		e = &Entry[V]{Key: key, Inserted: now}
		s.entries[key] = e
		s.puts++
	} else {
		s.refreshes++
	}
	e.Value = value
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	return isNew
}

// Upsert atomically inserts or merges an entry. fn receives the old value
// (zero value if absent) and whether a live entry existed, and returns the
// new value. It reports whether the entry was newly created.
func (s *Store[V]) Upsert(key string, ttl time.Duration, fn func(old V, exists bool) V) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok && e.Expired(now) {
		delete(s.entries, key)
		ok = false
	}
	var old V
	if ok {
		old = e.Value
	} else {
		e = &Entry[V]{Key: key, Inserted: now}
		s.entries[key] = e
	}
	e.Value = fn(old, ok)
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	if ok {
		s.refreshes++
	} else {
		s.puts++
	}
	return !ok
}

// Touch extends the deadline of an existing live entry without changing its
// value, reporting whether the entry was found.
func (s *Store[V]) Touch(key string, ttl time.Duration) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return false
	}
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	s.refreshes++
	return true
}

// PutIfAbsent inserts the entry only if no live entry exists under key. It
// returns the value now stored (the existing one on conflict) and whether
// the insert happened. Unlike Put, a conflict leaves the existing entry
// completely untouched — no refresh, no deadline extension.
func (s *Store[V]) PutIfAbsent(key string, value V, ttl time.Duration) (V, bool) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok && !e.Expired(now) {
		return e.Value, false
	}
	e := &Entry[V]{Key: key, Value: value, Inserted: now, Refreshed: now}
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	}
	s.entries[key] = e
	s.puts++
	return value, true
}

// Get returns the live value for key.
func (s *Store[V]) Get(key string) (V, bool) {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		var zero V
		return zero, false
	}
	return e.Value, true
}

// GetEntry returns a copy of the live entry for key (value plus soft-state
// timestamps). The copy is a snapshot: later refreshes do not alter it.
func (s *Store[V]) GetEntry(key string) (Entry[V], bool) {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return Entry[V]{}, false
	}
	return *e, true
}

// Delete removes an entry explicitly (the "unpublish" operation).
func (s *Store[V]) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	return ok
}

// Live returns snapshot copies of all non-expired entries, in unspecified
// order.
func (s *Store[V]) Live() []Entry[V] {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry[V], 0, len(s.entries))
	for _, e := range s.entries {
		if !e.Expired(now) {
			out = append(out, *e)
		}
	}
	return out
}

// Len returns the number of live entries.
func (s *Store[V]) Len() int {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.entries {
		if !e.Expired(now) {
			n++
		}
	}
	return n
}

// InstrumentSweeps observes every Sweep's latency into h (nil disables).
// Call it during setup, before the store is shared across goroutines.
func (s *Store[V]) InstrumentSweeps(h *telemetry.Histogram) { s.sweepSeconds = h }

// Sweep removes expired entries and returns how many were collected.
func (s *Store[V]) Sweep() int {
	if s.sweepSeconds != nil {
		defer s.sweepSeconds.ObserveSince(time.Now())
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, e := range s.entries {
		if e.Expired(now) {
			delete(s.entries, k)
			n++
		}
	}
	s.expirations += int64(n)
	return n
}

// Stats reports cumulative counters: first-time puts, refreshes and swept
// expirations.
func (s *Store[V]) Stats() (puts, refreshes, expirations int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.refreshes, s.expirations
}

// Sweeper runs Sweep every interval until stop is closed. It is the
// background counterpart to explicit sweeping and is optional: Get/Live
// already never return expired entries.
func (s *Store[V]) Sweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sweep()
		case <-stop:
			return
		}
	}
}
