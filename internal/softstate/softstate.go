package softstate

import (
	"sync"
	"time"

	"wsda/internal/telemetry"
)

// Entry is one soft-state entry.
type Entry[V any] struct {
	Key       string    // lookup key
	Value     V         // the cached state
	Inserted  time.Time // first Put
	Refreshed time.Time // most recent Put
	Expires   time.Time // deadline; zero = immortal

	// Rev is the value revision, derived from the store generation so it is
	// monotonic across incarnations of a key: deleting (or passively
	// expiring) a key and re-inserting it can never reuse a revision, which
	// keeps revision comparison a sound change detector for external caches.
	Rev int64
}

// Expired reports whether the entry is past its deadline.
func (e *Entry[V]) Expired(now time.Time) bool {
	return !e.Expires.IsZero() && !e.Expires.After(now)
}

// DefaultJournalCap bounds the change journal unless WithJournalCap
// overrides it. The journal covers the most recent mutations; a reader
// further behind must resynchronize with a full scan (ChangesSince reports
// this by returning ok == false).
const DefaultJournalCap = 4096

// Option configures a Store at construction time.
type Option func(*options)

type options struct {
	journalCap int
}

// WithJournalCap sets the change-journal capacity: how many of the most
// recent mutations ChangesSince can replay before forcing readers (cached
// views, replication feeds) into a full resynchronization. Larger journals
// let replicas survive longer disconnections at the cost of memory;
// non-positive values keep DefaultJournalCap.
func WithJournalCap(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.journalCap = n
		}
	}
}

// journalRec is one journaled mutation: the generation it produced and the
// key it touched.
type journalRec struct {
	gen uint64
	key string
}

// index is one secondary index: value-derived key → set of live entries.
type index[V any] struct {
	keyOf   func(V) string
	buckets map[string]map[string]*Entry[V]
}

// Store is a concurrency-safe soft-state table. The zero value is not
// usable; call New.
type Store[V any] struct {
	mu      sync.RWMutex
	entries map[string]*Entry[V]
	now     func() time.Time

	// gen is the store generation: a monotonic counter bumped by every
	// mutation (insert, refresh, touch, delete, sweep removal), so callers
	// can cheaply detect "anything changed since generation G?". The
	// journal records the key touched by each of the last journalCap
	// generations for incremental change propagation.
	gen        uint64
	journalCap int
	jbuf       []journalRec
	jstart     int // ring start (index of the oldest record)
	jlen       int

	// indexes are secondary indexes over live entries, maintained on every
	// mutation so lookups by a value attribute avoid full scans.
	indexes map[string]*index[V]

	// statistics
	puts, refreshes, expirations int64

	// sweepSeconds, when set, observes the latency of every Sweep — the
	// soft-state churn series of the thesis experiments (Ch. 4.6/E4).
	sweepSeconds *telemetry.Histogram

	// journalTruncations, when set, counts ChangesSince calls that could
	// not be served because the requested generation had fallen off the
	// bounded journal — each one is a reader (cached view, replica) forced
	// into a full resynchronization.
	journalTruncations *telemetry.Counter
}

// New returns an empty store using the given clock (nil means time.Now).
func New[V any](now func() time.Time, opts ...Option) *Store[V] {
	if now == nil {
		now = time.Now
	}
	o := options{journalCap: DefaultJournalCap}
	for _, opt := range opts {
		opt(&o)
	}
	return &Store[V]{entries: make(map[string]*Entry[V]), now: now, journalCap: o.journalCap}
}

// bump advances the store generation and journals the mutated key.
// Callers must hold mu.
func (s *Store[V]) bump(key string) {
	s.gen++
	rec := journalRec{gen: s.gen, key: key}
	if len(s.jbuf) < s.journalCap {
		s.jbuf = append(s.jbuf, rec)
		s.jlen++
		return
	}
	// Ring is full: overwrite the oldest record.
	s.jbuf[s.jstart] = rec
	s.jstart = (s.jstart + 1) % s.journalCap
}

// idxAdd registers e under every secondary index. Callers must hold mu.
func (s *Store[V]) idxAdd(e *Entry[V]) {
	for _, ix := range s.indexes {
		k := ix.keyOf(e.Value)
		b := ix.buckets[k]
		if b == nil {
			b = make(map[string]*Entry[V])
			ix.buckets[k] = b
		}
		b[e.Key] = e
	}
}

// idxRemove unregisters e from every secondary index. It must run while
// e.Value still holds the indexed value. Callers must hold mu.
func (s *Store[V]) idxRemove(e *Entry[V]) {
	for _, ix := range s.indexes {
		k := ix.keyOf(e.Value)
		if b := ix.buckets[k]; b != nil {
			delete(b, e.Key)
			if len(b) == 0 {
				delete(ix.buckets, k)
			}
		}
	}
}

// setValue replaces e's value, bumping its revision and migrating index
// membership. Callers must hold mu; hadValue says whether e currently holds
// an indexed value (false for a freshly created entry).
func (s *Store[V]) setValue(e *Entry[V], value V, hadValue bool) {
	if hadValue {
		s.idxRemove(e)
	}
	e.Value = value
	// Every setValue is followed by exactly one bump, so gen+1 is the
	// generation this mutation will carry — unique per value change and
	// monotonic even across delete/re-insert of the same key.
	e.Rev = int64(s.gen) + 1
	s.idxAdd(e)
}

// Put inserts or refreshes an entry with the given time-to-live. A
// non-positive ttl makes the entry immortal (strong state). It reports
// whether the entry was newly created (false means this was a refresh).
func (s *Store[V]) Put(key string, value V, ttl time.Duration) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	isNew := !ok || e.Expired(now)
	if isNew {
		if ok {
			s.idxRemove(e) // replacing a dead entry: drop its index slots
		}
		e = &Entry[V]{Key: key, Inserted: now}
		s.entries[key] = e
		s.puts++
	} else {
		s.refreshes++
	}
	s.setValue(e, value, !isNew)
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	s.bump(key)
	return isNew
}

// PutUntil is Put with an absolute deadline instead of a relative ttl — the
// replication apply path, where the source's enforced expiry must survive
// verbatim rather than be re-derived from a second clock read. A zero
// expires makes the entry immortal; an expires at or before now is the
// caller's responsibility to treat as a deletion.
func (s *Store[V]) PutUntil(key string, value V, expires time.Time) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	isNew := !ok || e.Expired(now)
	if isNew {
		if ok {
			s.idxRemove(e) // replacing a dead entry: drop its index slots
		}
		e = &Entry[V]{Key: key, Inserted: now}
		s.entries[key] = e
		s.puts++
	} else {
		s.refreshes++
	}
	s.setValue(e, value, !isNew)
	e.Refreshed = now
	e.Expires = expires
	s.bump(key)
	return isNew
}

// Upsert atomically inserts or merges an entry. fn receives the old value
// (zero value if absent) and whether a live entry existed, and returns the
// new value. It reports whether the entry was newly created.
func (s *Store[V]) Upsert(key string, ttl time.Duration, fn func(old V, exists bool) V) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok && e.Expired(now) {
		s.idxRemove(e)
		delete(s.entries, key)
		ok = false
	}
	var old V
	if ok {
		old = e.Value
	} else {
		e = &Entry[V]{Key: key, Inserted: now}
		s.entries[key] = e
	}
	s.setValue(e, fn(old, ok), ok)
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	if ok {
		s.refreshes++
	} else {
		s.puts++
	}
	s.bump(key)
	return !ok
}

// Touch extends the deadline of an existing live entry without changing its
// value, reporting whether the entry was found.
func (s *Store[V]) Touch(key string, ttl time.Duration) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return false
	}
	e.Refreshed = now
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	} else {
		e.Expires = time.Time{}
	}
	s.refreshes++
	s.bump(key) // deadline moved; the value revision is unchanged
	return true
}

// PutIfAbsent inserts the entry only if no live entry exists under key. It
// returns the value now stored (the existing one on conflict) and whether
// the insert happened. Unlike Put, a conflict leaves the existing entry
// completely untouched — no refresh, no deadline extension.
func (s *Store[V]) PutIfAbsent(key string, value V, ttl time.Duration) (V, bool) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok && !e.Expired(now) {
		return e.Value, false
	}
	if ok {
		s.idxRemove(e) // replacing a dead entry
	}
	e = &Entry[V]{Key: key, Inserted: now, Refreshed: now}
	if ttl > 0 {
		e.Expires = now.Add(ttl)
	}
	s.entries[key] = e
	s.setValue(e, value, false)
	s.puts++
	s.bump(key)
	return value, true
}

// Get returns the live value for key.
func (s *Store[V]) Get(key string) (V, bool) {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		var zero V
		return zero, false
	}
	return e.Value, true
}

// GetEntry returns a copy of the live entry for key (value plus soft-state
// timestamps). The copy is a snapshot: later refreshes do not alter it.
func (s *Store[V]) GetEntry(key string) (Entry[V], bool) {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return Entry[V]{}, false
	}
	return *e, true
}

// Delete removes an entry explicitly (the "unpublish" operation).
func (s *Store[V]) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok {
		s.idxRemove(e)
		delete(s.entries, key)
		s.bump(key)
	}
	return ok
}

// DeleteIf removes every entry whose (key, value) the predicate selects,
// under a single write lock, and returns how many were removed. Each
// removal is journaled like an individual Delete, so change-feed tailers
// observe the prunes as ordinary deletions. It is the bulk primitive
// behind shard rebalancing: after a partition cutover the old owner drops
// every tuple it no longer owns in one pass instead of one lease
// acquisition per key.
func (s *Store[V]) DeleteIf(pred func(key string, value V) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, e := range s.entries {
		if pred(k, e.Value) {
			s.idxRemove(e)
			delete(s.entries, k)
			s.bump(k)
			n++
		}
	}
	return n
}

// Live returns snapshot copies of all non-expired entries, in unspecified
// order.
func (s *Store[V]) Live() []Entry[V] {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry[V], 0, len(s.entries))
	for _, e := range s.entries {
		if !e.Expired(now) {
			out = append(out, *e)
		}
	}
	return out
}

// LiveAndGen returns Live's snapshot together with the store generation it
// corresponds to, atomically — the pair a replication bootstrap needs so
// that a cursor derived from the generation misses no later mutation.
func (s *Store[V]) LiveAndGen() ([]Entry[V], uint64) {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry[V], 0, len(s.entries))
	for _, e := range s.entries {
		if !e.Expired(now) {
			out = append(out, *e)
		}
	}
	return out, s.gen
}

// Len returns the number of live entries.
func (s *Store[V]) Len() int {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.entries {
		if !e.Expired(now) {
			n++
		}
	}
	return n
}

// InstrumentSweeps observes every Sweep's latency into h (nil disables).
// Call it during setup, before the store is shared across goroutines.
func (s *Store[V]) InstrumentSweeps(h *telemetry.Histogram) { s.sweepSeconds = h }

// InstrumentJournalTruncations counts every ChangesSince request that fell
// off the bounded journal into c (nil disables). Call it during setup,
// before the store is shared across goroutines.
func (s *Store[V]) InstrumentJournalTruncations(c *telemetry.Counter) { s.journalTruncations = c }

// Sweep removes expired entries and returns how many were collected.
func (s *Store[V]) Sweep() int {
	if s.sweepSeconds != nil {
		defer s.sweepSeconds.ObserveSince(time.Now())
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, e := range s.entries {
		if e.Expired(now) {
			s.idxRemove(e)
			delete(s.entries, k)
			s.bump(k)
			n++
		}
	}
	s.expirations += int64(n)
	return n
}

// Gen returns the store generation: a monotonic counter bumped by every
// mutation. Two equal Gen readings bracket a window in which no entry was
// inserted, refreshed, touched or removed (passive expiry excepted — an
// entry silently crossing its deadline does not bump the generation, so
// deadline-sensitive callers must track the earliest deadline themselves).
func (s *Store[V]) Gen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// ChangesSince returns the deduplicated keys mutated after generation gen,
// oldest first. ok is false when gen is too far behind the bounded journal,
// in which case the caller must resynchronize with a full scan.
func (s *Store[V]) ChangesSince(gen uint64) (keys []string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if gen >= s.gen {
		return nil, true
	}
	missing := s.gen - gen
	if missing > uint64(s.jlen) {
		s.journalTruncations.Inc()
		return nil, false
	}
	seen := make(map[string]struct{}, missing)
	keys = make([]string, 0, missing)
	start := s.jlen - int(missing)
	for i := start; i < s.jlen; i++ {
		rec := s.jbuf[(s.jstart+i)%len(s.jbuf)]
		if _, dup := seen[rec.key]; dup {
			continue
		}
		seen[rec.key] = struct{}{}
		keys = append(keys, rec.key)
	}
	return keys, true
}

// AddIndex registers a named secondary index keyed by keyOf over entry
// values. Existing entries are indexed immediately; later mutations keep
// the index current. Registering an existing name replaces it.
func (s *Store[V]) AddIndex(name string, keyOf func(V) string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexes == nil {
		s.indexes = make(map[string]*index[V])
	}
	ix := &index[V]{keyOf: keyOf, buckets: make(map[string]map[string]*Entry[V])}
	s.indexes[name] = ix
	for _, e := range s.entries {
		k := keyOf(e.Value)
		b := ix.buckets[k]
		if b == nil {
			b = make(map[string]*Entry[V])
			ix.buckets[k] = b
		}
		b[e.Key] = e
	}
}

// LiveBy returns snapshot copies of the non-expired entries whose indexed
// key equals key, in unspecified order. It panics on an unregistered index
// name (a programming error, not a data condition).
func (s *Store[V]) LiveBy(name, key string) []Entry[V] {
	now := s.now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.indexes[name]
	if ix == nil {
		panic("softstate: LiveBy on unregistered index " + name)
	}
	b := ix.buckets[key]
	if len(b) == 0 {
		return nil
	}
	out := make([]Entry[V], 0, len(b))
	for _, e := range b {
		if !e.Expired(now) {
			out = append(out, *e)
		}
	}
	return out
}

// CountBy returns the number of entries currently in the named index
// bucket, expired-but-unswept entries included: an O(1) upper bound on
// len(LiveBy(name, key)), cheap enough for per-query access-path sizing
// decisions. Like LiveBy it panics on an unregistered index name.
func (s *Store[V]) CountBy(name, key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.indexes[name]
	if ix == nil {
		panic("softstate: CountBy on unregistered index " + name)
	}
	return len(ix.buckets[key])
}

// Size returns the number of entries in the store, expired-but-unswept
// entries included: an O(1) upper bound on Len.
func (s *Store[V]) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats reports cumulative counters: first-time puts, refreshes and swept
// expirations.
func (s *Store[V]) Stats() (puts, refreshes, expirations int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.refreshes, s.expirations
}

// Sweeper runs Sweep every interval until stop is closed. It is the
// background counterpart to explicit sweeping and is optional: Get/Live
// already never return expired entries.
func (s *Store[V]) Sweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sweep()
		case <-stop:
			return
		}
	}
}
