package softstate

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.UnixMilli(0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestPutGetExpire(t *testing.T) {
	clk := newFakeClock()
	s := New[string](clk.Now)
	if isNew := s.Put("a", "1", time.Second); !isNew {
		t.Error("first put should be new")
	}
	if isNew := s.Put("a", "2", time.Second); isNew {
		t.Error("second put should be a refresh")
	}
	v, ok := s.Get("a")
	if !ok || v != "2" {
		t.Fatalf("get = %v %v", v, ok)
	}
	clk.Advance(999 * time.Millisecond)
	if _, ok := s.Get("a"); !ok {
		t.Error("entry expired too early")
	}
	clk.Advance(time.Millisecond)
	if _, ok := s.Get("a"); ok {
		t.Error("entry should be expired")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
	if n := s.Sweep(); n != 1 {
		t.Errorf("swept %d, want 1", n)
	}
}

func TestRefreshExtends(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("k", 1, time.Second)
	clk.Advance(900 * time.Millisecond)
	s.Put("k", 2, time.Second) // refresh
	clk.Advance(900 * time.Millisecond)
	e, ok := s.GetEntry("k")
	if !ok || e.Value != 2 {
		t.Fatal("refresh did not extend lifetime")
	}
	if !e.Inserted.Equal(time.UnixMilli(0)) {
		t.Error("refresh must preserve insertion time")
	}
}

func TestReinsertAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("k", 1, time.Second)
	clk.Advance(2 * time.Second)
	if isNew := s.Put("k", 2, time.Second); !isNew {
		t.Error("put after expiry should count as new")
	}
	e, _ := s.GetEntry("k")
	if !e.Inserted.Equal(time.UnixMilli(2000)) {
		t.Error("expired entry must not donate its insertion time")
	}
}

func TestImmortal(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("k", 1, 0)
	clk.Advance(1000 * time.Hour)
	if _, ok := s.Get("k"); !ok {
		t.Error("immortal entry expired")
	}
}

func TestTouch(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("k", 7, time.Second)
	clk.Advance(900 * time.Millisecond)
	if !s.Touch("k", time.Second) {
		t.Fatal("touch failed")
	}
	clk.Advance(900 * time.Millisecond)
	v2, ok := s.Get("k")
	if !ok || v2 != 7 {
		t.Error("touch did not extend without changing value")
	}
	if s.Touch("missing", time.Second) {
		t.Error("touch on missing key succeeded")
	}
}

func TestUpsertMerge(t *testing.T) {
	clk := newFakeClock()
	s := New[[]int](clk.Now)
	s.Upsert("k", time.Second, func(old []int, exists bool) []int {
		if exists {
			t.Error("first upsert sees exists=true")
		}
		return []int{1}
	})
	s.Upsert("k", time.Second, func(old []int, exists bool) []int {
		if !exists {
			t.Error("second upsert sees exists=false")
		}
		return append(old, 2)
	})
	mv, _ := s.Get("k")
	if len(mv) != 2 {
		t.Errorf("merged value = %v", mv)
	}
	// Upsert over an expired entry behaves like an insert.
	clk.Advance(2 * time.Second)
	s.Upsert("k", time.Second, func(old []int, exists bool) []int {
		if exists {
			t.Error("upsert over expired entry sees exists=true")
		}
		return []int{9}
	})
}

func TestPutIfAbsent(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	if v, inserted := s.PutIfAbsent("k", 1, time.Second); !inserted || v != 1 {
		t.Errorf("first PutIfAbsent = %d %v", v, inserted)
	}
	clk.Advance(900 * time.Millisecond)
	// Conflict: existing value returned, deadline NOT extended.
	if v, inserted := s.PutIfAbsent("k", 2, time.Second); inserted || v != 1 {
		t.Errorf("conflicting PutIfAbsent = %d %v", v, inserted)
	}
	clk.Advance(101 * time.Millisecond)
	if _, ok := s.Get("k"); ok {
		t.Error("conflicting PutIfAbsent extended the deadline")
	}
	// After expiry, insert happens again.
	if v, inserted := s.PutIfAbsent("k", 3, time.Second); !inserted || v != 3 {
		t.Errorf("post-expiry PutIfAbsent = %d %v", v, inserted)
	}
}

func TestDeleteAndLive(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("a", 1, time.Second)
	s.Put("b", 2, time.Second)
	s.Put("c", 3, time.Millisecond)
	clk.Advance(500 * time.Millisecond)
	if !s.Delete("a") {
		t.Error("delete existing failed")
	}
	if s.Delete("a") {
		t.Error("double delete succeeded")
	}
	live := s.Live()
	if len(live) != 1 || live[0].Key != "b" {
		t.Errorf("live = %v", live)
	}
}

func TestStats(t *testing.T) {
	clk := newFakeClock()
	s := New[int](clk.Now)
	s.Put("a", 1, time.Second)
	s.Put("a", 2, time.Second)
	s.Put("b", 1, time.Millisecond)
	clk.Advance(time.Second)
	s.Sweep()
	puts, refreshes, exps := s.Stats()
	if puts != 2 || refreshes != 1 || exps != 2 {
		t.Errorf("stats = %d %d %d, want 2 1 2", puts, refreshes, exps)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New[int](nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g%4))
			for i := 0; i < 1000; i++ {
				s.Put(key, i, time.Minute)
				s.Get(key)
				s.Live()
				if i%100 == 0 {
					s.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("len = %d, want 4", s.Len())
	}
}

// Property: availability follows the soft-state rule — an entry is visible
// iff it was refreshed within its TTL.
func TestPropertySoftState(t *testing.T) {
	f := func(ttlMs uint16, advanceMs uint16) bool {
		ttl := time.Duration(ttlMs%5000+1) * time.Millisecond
		adv := time.Duration(advanceMs%10000) * time.Millisecond
		clk := newFakeClock()
		s := New[int](clk.Now)
		s.Put("k", 1, ttl)
		clk.Advance(adv)
		_, ok := s.Get("k")
		return ok == (adv < ttl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSweeper(t *testing.T) {
	s := New[int](nil)
	s.Put("k", 1, time.Millisecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		s.Sweeper(5*time.Millisecond, stop)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for {
		if _, _, exps := s.Stats(); exps > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sweeper never swept")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done
}
