// Package softstate implements the generic soft-state maintenance mechanism
// of thesis Ch. 2.6: state that is not refreshed before its time-to-live
// elapses silently expires. This yields reliable, predictable and simple
// distributed state maintenance in the presence of provider failure,
// misbehavior or change — a dead provider's entries vanish on their own.
//
// The store is generic over the value type and is used by the hyper
// registry (tuples) and by the P2P layer (node state table entries).
package softstate
