package experiments

import (
	"fmt"
	"sort"
	"time"

	"wsda/internal/pdp"
	"wsda/internal/registry"
	"wsda/internal/simnet"
	"wsda/internal/telemetry"
	"wsda/internal/topology"
	"wsda/internal/updf"
	"wsda/internal/workload"
)

// E18OverloadTriage demonstrates the observability triage chain on a
// fault that aggregate metrics cannot localize: one lossy directed link
// in the middle of an n-node chain. The experiment runs a healthy phase
// and a faulted phase through the same SLO engine + flight recorder a
// peer daemon ships with, and shows
//
//   - the completeness SLO burn rate flagging the faulted phase (the
//     alert),
//   - /debug/slowlog filling with the incomplete transactions (the
//     shortlist), and
//   - the flight recordings naming the culprit link (the diagnosis):
//     per-link counts of retransmits to peers that never answered that
//     query (a slow subtree makes its parent retransmit too, but the
//     child still answers), minus the healthy-phase baseline — something
//     the cluster-wide retry counter, which only says "retries
//     happened", cannot do.
//
// The run self-validates: it fails if the healthy phase burns, the
// faulted phase doesn't, the slowlog stays empty, or the flight-derived
// culprit is not the injected link.
func E18OverloadTriage(n, queries int) (*Table, error) {
	if n < 8 {
		n = 8
	}
	// The injected fault: the forward direction of one mid-chain link
	// loses most messages, cutting the chain's tail off from most queries.
	faultFrom := fmt.Sprintf("node/%d", n/2-1)
	faultTo := fmt.Sprintf("node/%d", n/2)

	t := &Table{
		ID:    "E18",
		Title: fmt.Sprintf("Overload triage via SLO burn + flight recorder, %d-node chain, %d queries/phase", n, queries),
		Note: fmt.Sprintf("faulted phase drops 90%% of %s->%s traffic. burn is the completeness\n"+
			"error-budget burn rate (>1 = burning); the triage row is derived only from\n"+
			"flight-recorder events — retransmits to peers that never answered, minus\n"+
			"the healthy-phase baseline — not from the injected-fault config.",
			faultFrom, faultTo),
		Header: []string{"phase", "p99-first-item", "completeness", "burn(short)", "burn(long)", "slowlog", "breach"},
	}

	faults := simnet.NewFaults(7)
	net := simnet.New(simnet.Config{Faults: faults})
	defer net.Close()
	gen := workload.NewGen(1)
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{
		Capacity:      4 * queries,
		SlowThreshold: 150 * time.Millisecond,
	})
	c, err := updf.BuildCluster(topology.Line(n), updf.ClusterConfig{
		Net:           net,
		MaxRetries:    2,
		RetryInterval: 25 * time.Millisecond,
		Flight:        fr,
		RegistryFor: func(i int) *registry.Registry {
			r := registry.New(registry.Config{Name: fmt.Sprintf("reg%d", i), DefaultTTL: time.Hour})
			if _, err := r.Publish(gen.Tuple(i), time.Hour); err != nil {
				panic(err)
			}
			return r
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	o, err := updf.NewOriginator("originator", net, nil)
	if err != nil {
		return nil, err
	}
	defer o.Close()
	o.SetFlight(fr)

	windows := []time.Duration{5 * time.Second, time.Minute}
	phases := []struct {
		name  string
		setup func()
	}{
		{"healthy", func() {}},
		{"faulted", func() { faults.SetLinkDrop(faultFrom, faultTo, 0.9) }},
	}
	type phaseOut struct {
		status   telemetry.SLOStatus
		slowlog  int
		links    map[string]int
		p99First time.Duration
		compl    float64
	}
	outs := make([]phaseOut, 0, len(phases))

	for _, ph := range phases {
		ph.setup()
		// A fresh engine per phase keeps the burn comparison clean: each
		// phase's windows contain only that phase's events.
		slo := telemetry.NewSLO(telemetry.SLOConfig{
			FirstItemTarget: 150 * time.Millisecond,
			Windows:         windows,
		})
		o.SetSLO(slo)
		out := phaseOut{links: map[string]int{}}
		var firsts []time.Duration
		slowBefore, _ := fr.Slowlog()
		for q := 0; q < queries; q++ {
			var tx string
			rs, err := o.Submit(updf.QuerySpec{
				Query: allServicesQuery, Entry: "node/0", Mode: pdp.Routed, Radius: -1,
				Pipeline:    true,
				LoopTimeout: 2 * time.Second, AbortTimeout: 400 * time.Millisecond,
				MaxRetries: 2, RetryInterval: 25 * time.Millisecond,
				OnTx: func(id string) { tx = id },
			})
			if err != nil {
				return nil, err
			}
			if info := fr.Tx(tx); info != nil {
				// Per-link retransmits for this query, and which of those
				// links eventually produced an answer. A slow subtree makes
				// its parent retransmit too, but the child still answers;
				// only the truly dead link retransmits AND stays silent.
				retr := map[string]int{}
				responded := map[string]bool{}
				for _, ev := range info.Events {
					link := ev.Node + "->" + ev.Peer
					switch ev.Kind {
					case telemetry.FlightRetransmit:
						if ev.Peer != "" {
							retr[link]++
						}
					case telemetry.FlightPartial, telemetry.FlightChildFinal,
						telemetry.FlightItem, telemetry.FlightFirstItem:
						// Partial/child-final is a node hearing from a child;
						// item/first-item is the originator hearing from a node.
						responded[link] = true
					}
				}
				for link, cnt := range retr {
					if !responded[link] {
						out.links[link] += cnt
					}
				}
			}
			first := rs.TimeToFirst
			if first == 0 {
				first = rs.Elapsed
			}
			firsts = append(firsts, first)
			out.compl += rs.Completeness()
		}
		out.compl /= float64(queries)
		sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
		out.p99First = firsts[(len(firsts)*99)/100]
		out.status = slo.Status()
		slowNow, _ := fr.Slowlog()
		out.slowlog = len(slowNow) - len(slowBefore)
		if out.slowlog < 0 { // ring evicted older entries
			out.slowlog = len(slowNow)
		}
		outs = append(outs, out)

		burn := func(w time.Duration) string {
			return fmt.Sprintf("%.1f", slo.BurnRate(telemetry.SLOCompleteness, w))
		}
		t.Add(ph.name, fdur(out.p99First), ffloat(out.compl),
			burn(windows[0]), burn(windows[1]), fint(out.slowlog),
			fmt.Sprintf("%v", out.status.Breach))
	}

	// Triage: attribute retransmissions to links using only the flight
	// recordings, subtracting the healthy-phase counts so uniform
	// slowness (which retransmits a little everywhere) cancels out and
	// only the fault-induced excess remains.
	culprit, culpritRetries := "", 0
	for link, cnt := range outs[1].links {
		if excess := cnt - outs[0].links[link]; excess > culpritRetries {
			culprit, culpritRetries = link, excess
		}
	}
	t.Add("triage", "", "", "", "", fint(len(outs[1].links)),
		fmt.Sprintf("%s (+%d retransmits over baseline)", culprit, culpritRetries))

	// Self-validation: the chain must actually have triaged the fault.
	if outs[0].status.Breach {
		return nil, fmt.Errorf("E18: healthy phase breached its SLO")
	}
	if !outs[1].status.Breach {
		return nil, fmt.Errorf("E18: faulted phase did not breach (completeness %.2f)", outs[1].compl)
	}
	if outs[1].slowlog == 0 {
		return nil, fmt.Errorf("E18: slowlog empty despite faulted phase")
	}
	if want := faultFrom + "->" + faultTo; culprit != want {
		return nil, fmt.Errorf("E18: flight triage named %q, injected fault was %q", culprit, want)
	}
	return t, nil
}
